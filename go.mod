module x3

go 1.24
