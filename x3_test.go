package x3

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const paperXML = `
<database>
  <publication id="1">
    <author id="a1"><name>John</name></author>
    <author id="a2"><name>Jane</name></author>
    <publisher id="p1"/>
    <year>2003</year>
  </publication>
  <publication id="2">
    <author id="a3"><name>Bob</name></author>
    <publisher id="p1"/>
    <year>2004</year>
    <year>2005</year>
  </publication>
  <publication id="3">
    <authors><author id="a1"><name>John</name></author></authors>
    <year>2003</year>
  </publication>
  <publication id="4">
    <author id="a4"><name>Amy</name></author>
    <pubData><publisher id="p2"/><year>2005</year></pubData>
  </publication>
</database>`

const query1 = `
for $b in doc("book.xml")//publication,
    $n in $b/author/name,
    $p in $b//publisher/@id,
    $y in $b/year
X^3 $b/@id by $n (LND, SP, PC-AD), $p (LND, PC-AD), $y (LND)
return COUNT($b).`

func loadPaper(t *testing.T) (*Database, *Query) {
	t.Helper()
	db, err := LoadXMLString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(query1)
	if err != nil {
		t.Fatal(err)
	}
	return db, q
}

func TestQueryIntrospection(t *testing.T) {
	_, q := loadPaper(t)
	if q.NumAxes() != 3 || q.NumCuboids() != 16 {
		t.Fatalf("axes=%d cuboids=%d", q.NumAxes(), q.NumCuboids())
	}
	if got := q.AxisVars(); strings.Join(got, " ") != "$n $p $y" {
		t.Fatalf("AxisVars = %v", got)
	}
	lad, err := q.Ladder("$n")
	if err != nil || strings.Join(lad, ">") != "rigid>PC-AD>SP>LND" {
		t.Fatalf("Ladder($n) = %v, %v", lad, err)
	}
	if _, err := q.Ladder("$zz"); err == nil {
		t.Error("Ladder of unknown axis accepted")
	}
	if !strings.Contains(q.MostRelaxedPattern(), "//name*") {
		t.Errorf("MostRelaxedPattern:\n%s", q.MostRelaxedPattern())
	}
	if !strings.Contains(q.RigidPattern(), "/author") {
		t.Errorf("RigidPattern:\n%s", q.RigidPattern())
	}
	if !strings.Contains(q.String(), "COUNT") {
		t.Errorf("String: %s", q.String())
	}
}

func TestCubePaperNumbers(t *testing.T) {
	db, q := loadPaper(t)
	res, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFacts() != 4 {
		t.Fatalf("facts = %d", res.NumFacts())
	}
	// Year-only cuboid.
	c, err := res.Cuboid(map[string]string{"$y": "rigid"})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get("2003"); !ok || v != 2 {
		t.Errorf("year 2003 = %v, %v", v, ok)
	}
	rows := c.Rows()
	if len(rows) != 3 {
		t.Fatalf("year cuboid rows = %v", rows)
	}
	// Rows are sorted by value.
	if rows[0].Values[0] != "2003" || rows[2].Values[0] != "2005" {
		t.Errorf("rows order: %v", rows)
	}
	// SP state finds the nested author of publication 3.
	c, err = res.Cuboid(map[string]string{"$n": "SP"})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get("John"); !ok || v != 2 {
		t.Errorf("SP John = %v, %v", v, ok)
	}
	// The all-relaxed cuboid has the grand total.
	c, err = res.Cuboid(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get(); !ok || v != 4 {
		t.Errorf("grand total = %v, %v", v, ok)
	}
	if c.Size() != 1 {
		t.Errorf("bottom size = %d", c.Size())
	}
	if !strings.Contains(c.Label(), "LND") {
		t.Errorf("label = %s", c.Label())
	}
	if !strings.Contains((&strings.Builder{}).String()+c.Pattern(), "publication") {
		t.Errorf("pattern:\n%s", c.Pattern())
	}
}

func TestCuboidErrors(t *testing.T) {
	db, q := loadPaper(t)
	res, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Cuboid(map[string]string{"$n": "sideways"}); err == nil {
		t.Error("bad state label accepted")
	}
	if _, err := res.Cuboid(map[string]string{"$zz": "rigid"}); err == nil {
		t.Error("unknown axis accepted")
	}
}

func TestAllAlgorithmsAgreeViaFacade(t *testing.T) {
	db, q := loadPaper(t)
	want, err := db.Cube(q) // COUNTER
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"BUC", "BUCCUST", "TD", "TDCUST"} {
		got, err := db.Cube(q, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if got.TotalCells() != want.TotalCells() {
			t.Errorf("%s cells = %d, want %d", alg, got.TotalCells(), want.TotalCells())
		}
		c1, _ := want.Cuboid(map[string]string{"$y": "rigid"})
		c2, _ := got.Cuboid(map[string]string{"$y": "rigid"})
		for _, row := range c1.Rows() {
			if v, ok := c2.Get(row.Values...); !ok || v != row.Value {
				t.Errorf("%s year %v = %v, want %v", alg, row.Values, v, row.Value)
			}
		}
	}
	if _, err := db.Cube(q, WithAlgorithm("NOPE")); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCubeWithDTDDrivenCust(t *testing.T) {
	const dtd = `
<!ELEMENT database (publication*)>
<!ELEMENT publication (author*, authors?, publisher?, year*, pubData?)>
<!ELEMENT authors (author+)>
<!ELEMENT author (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT publisher EMPTY>
<!ELEMENT year (#PCDATA)>
<!ELEMENT pubData (publisher, year)>
<!ATTLIST publication id ID #REQUIRED>
<!ATTLIST author id ID #REQUIRED>
<!ATTLIST publisher id ID #REQUIRED>`
	db, q := loadPaper(t)
	want, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Cube(q, WithAlgorithm("TDCUST"), WithDTD(dtd))
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalCells() != want.TotalCells() {
		t.Errorf("TDCUST with DTD cells = %d, want %d", got.TotalCells(), want.TotalCells())
	}
	if _, err := db.Cube(q, WithDTD("not a dtd")); err == nil {
		t.Error("garbage DTD accepted")
	}
}

func TestCubeOverStore(t *testing.T) {
	db, q := loadPaper(t)
	path := filepath.Join(t.TempDir(), "pub.x3st")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	sdb, err := OpenStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if sdb.NumNodes() != db.NumNodes() {
		t.Fatalf("store nodes %d vs %d", sdb.NumNodes(), db.NumNodes())
	}
	want, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sdb.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalCells() != want.TotalCells() {
		t.Errorf("store-backed cube cells = %d, want %d", got.TotalCells(), want.TotalCells())
	}
	c, _ := got.Cuboid(map[string]string{"$y": "rigid"})
	if v, ok := c.Get("2003"); !ok || v != 2 {
		t.Errorf("store-backed 2003 = %v, %v", v, ok)
	}
	// Save from a store-backed database is rejected.
	if err := sdb.Save(filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("Save from store accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	db, q := loadPaper(t)
	res, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cuboid,n,p,y,value") {
		t.Errorf("csv header: %s", strings.SplitN(out, "\n", 2)[0])
	}
	if !strings.Contains(out, "2003") || !strings.Contains(out, "John") {
		t.Errorf("csv missing values")
	}
	lines := strings.Count(out, "\n")
	if int64(lines-1) != res.TotalCells() {
		t.Errorf("csv lines = %d, cells = %d", lines-1, res.TotalCells())
	}
}

func TestCuboidsAndEach(t *testing.T) {
	db, q := loadPaper(t)
	res, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Cuboids()); got != 16 {
		t.Fatalf("Cuboids = %d", got)
	}
	n := 0
	err = res.EachCuboid(func(c *Cuboid) error { n++; return nil })
	if err != nil || n != 16 {
		t.Fatalf("EachCuboid visited %d, err %v", n, err)
	}
}

func TestMemoryBudgetOption(t *testing.T) {
	db, q := loadPaper(t)
	res, err := db.Cube(q, WithMemoryBudget(1<<20), WithTempDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats().PeakBytes == 0 {
		t.Error("budgeted run recorded no peak memory")
	}
	if len(Algorithms()) != 10 {
		t.Errorf("Algorithms() = %v", Algorithms())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadXMLString("<a><b></a>"); err == nil {
		t.Error("bad XML accepted")
	}
	if _, err := LoadXMLFile("/nonexistent/x.xml"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ParseQuery("not a query"); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := OpenStore("/nonexistent/s.x3st", 0); err == nil {
		t.Error("missing store accepted")
	}
}
