#!/bin/sh
# Per-package coverage gate: every package listed in cover_floors.txt
# (one "import/path floor-percent" per line) must meet its floor of
# statement coverage, or the build fails.
set -eu
cd "$(dirname "$0")/.."

floors=scripts/cover_floors.txt
out=$(${GO:-go} test -cover $(awk '{print $1}' "$floors"))
echo "$out"

status=0
while read -r pkg floor; do
	[ -z "$pkg" ] && continue
	pct=$(echo "$out" | awk -v p="$pkg" '$1 == "ok" && $2 == p { sub(/%/, "", $5); print $5 }')
	if [ -z "$pct" ]; then
		echo "cover: no coverage reported for $pkg" >&2
		status=1
		continue
	fi
	# Report each package's headroom over its floor, so a shrinking delta
	# is visible in CI logs before it becomes a failure.
	delta=$(awk -v a="$pct" -v b="$floor" 'BEGIN { printf "%+.1f", a - b }')
	echo "cover: $pkg ${pct}% (floor ${floor}%, delta ${delta})"
	if ! awk -v a="$pct" -v b="$floor" 'BEGIN { exit !(a + 0 >= b + 0) }'; then
		echo "cover: $pkg at ${pct}% is below its ${floor}% floor" >&2
		status=1
	fi
done <"$floors"
exit $status
