package x3

import (
	"fmt"
	"strings"

	"x3/internal/cube"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/schema"
	"x3/internal/sjoin"
	"x3/internal/stats"
	"x3/internal/views"
)

// AxisProperties reports the schema-inferred summarizability of one
// grouping axis at one relaxation state (paper §3.7).
type AxisProperties struct {
	Axis  string // the axis variable, e.g. "$n"
	State string // ladder state label: "rigid", "PC-AD", "SP"
	// Covered: the schema guarantees every fact matches at least one
	// value (total coverage).
	Covered bool
	// Disjoint: the schema guarantees at most one value per fact
	// (pairwise disjointness of groups).
	Disjoint bool
	// MinOccurs / MaxOccurs are the inferred occurrence bounds; MaxOccurs
	// is -1 when unbounded.
	MinOccurs, MaxOccurs int
}

// Advice is the outcome of analysing a query against a DTD: which
// summarizability properties hold where, and which algorithm the paper's
// §4.6 decision rules recommend.
type Advice struct {
	Properties []AxisProperties
	// Sparse recommendation and Dense recommendation (the density of the
	// cube depends on the data, not the schema).
	SparseAlgorithm string
	DenseAlgorithm  string
	// Reason is a one-line justification.
	Reason string
}

// Advise infers the lattice properties of the query from DTD text and
// applies the paper's algorithm-selection rules (§4.6): bottom-up for
// sparse cubes and top-down roll-up for dense ones when the required
// properties hold, the customized variants when properties hold only
// locally, and the unoptimized algorithms otherwise.
func Advise(q *Query, dtdText string) (*Advice, error) {
	d, err := schema.Parse(dtdText)
	if err != nil {
		return nil, err
	}
	props, err := schema.Infer(d, q.lat)
	if err != nil {
		return nil, err
	}
	adv := &Advice{}
	allCov, allDis, anyGuarantee := true, true, false
	for a, lad := range q.lat.Ladders {
		live := lad.Len()
		if lad.HasDeleted() {
			live--
		}
		for s := 0; s < live; s++ {
			iv := props.Interval(a, s)
			p := AxisProperties{
				Axis:      lad.Spec.Var,
				State:     lad.States[s].Label,
				Covered:   props.Covered(a, s),
				Disjoint:  props.Disjoint(a, s),
				MinOccurs: iv.Min,
				MaxOccurs: iv.Max,
			}
			adv.Properties = append(adv.Properties, p)
			allCov = allCov && p.Covered
			allDis = allDis && p.Disjoint
			anyGuarantee = anyGuarantee || p.Covered || p.Disjoint
		}
	}
	switch {
	case allCov && allDis:
		adv.SparseAlgorithm, adv.DenseAlgorithm = "BUCOPT", "TDOPTALL"
		adv.Reason = "coverage and disjointness hold globally: the fully optimized variants are correct"
	case allDis:
		adv.SparseAlgorithm, adv.DenseAlgorithm = "BUCOPT", "COUNTER"
		adv.Reason = "disjointness holds globally but coverage does not: top-down roll-up is unavailable"
	case anyGuarantee:
		adv.SparseAlgorithm, adv.DenseAlgorithm = "BUCCUST", "TDCUST"
		adv.Reason = "summarizability holds only at some lattice points: the customized variants exploit it and stay correct"
	default:
		adv.SparseAlgorithm, adv.DenseAlgorithm = "BUC", "COUNTER"
		adv.Reason = "no summarizability is guaranteed: only the unoptimized algorithms are correct"
	}
	return adv, nil
}

// String renders the advice as a small report.
func (a *Advice) String() string {
	var b strings.Builder
	for _, p := range a.Properties {
		max := fmt.Sprintf("%d", p.MaxOccurs)
		if p.MaxOccurs < 0 {
			max = "*"
		}
		fmt.Fprintf(&b, "%-6s %-6s occurs [%d,%s] covered=%-5t disjoint=%t\n",
			p.Axis, p.State, p.MinOccurs, max, p.Covered, p.Disjoint)
	}
	fmt.Fprintf(&b, "sparse cube: %s; dense cube: %s\n%s\n",
		a.SparseAlgorithm, a.DenseAlgorithm, a.Reason)
	return b.String()
}

// CubeEstimate predicts the shape of a cube before computing it, from one
// statistics-collection pass over the matched facts.
type CubeEstimate struct {
	// Facts is the number of matched facts.
	Facts int
	// Cuboids is the lattice size.
	Cuboids int
	// EstimatedCells sums the per-cuboid group-count estimates.
	EstimatedCells int64
	// TopCuboidCells estimates the finest cuboid alone.
	TopCuboidCells int64
	// Dense reports whether facts outnumber the finest cuboid's groups by
	// a wide margin — the §4.6 density criterion for preferring top-down
	// or counter-based computation.
	Dense bool
}

// Estimate matches the query and predicts cuboid sizes without computing
// the cube (attribute-independence estimates; see internal/stats). Use it
// to pick between the sparse- and dense-cube recommendations of Advise,
// or to size a memory budget.
func (db *Database) Estimate(q *Query) (*CubeEstimate, error) {
	lat, err := lattice.New(q.spec)
	if err != nil {
		return nil, err
	}
	var set *match.Set
	if db.doc != nil {
		set, err = match.Evaluate(db.doc, lat)
	} else {
		set, err = sjoin.Evaluate(db.st, lat)
	}
	if err != nil {
		return nil, err
	}
	st, err := stats.Collect(lat, set)
	if err != nil {
		return nil, err
	}
	est := &CubeEstimate{Facts: set.NumFacts(), Cuboids: lat.Size()}
	for id, n := range st.EstimateAllSizes(lat) {
		est.EstimatedCells += n
		if id == lat.ID(lat.Top()) {
			est.TopCuboidCells = n
		}
	}
	est.Dense = est.TopCuboidCells > 0 && int64(est.Facts) >= 4*est.TopCuboidCells
	return est, nil
}

// ViewSuggestion is one cuboid recommended for materialization.
type ViewSuggestion struct {
	// Cuboid is the relaxation-state label, e.g. "[$n:SP $p:LND $y:rigid]".
	Cuboid string
	// Size is the cuboid's cell count.
	Size int64
	// Benefit is the total query-cost reduction credited when it was
	// greedily selected.
	Benefit int64
}

// SuggestViews picks up to k cuboids of this computed cube worth
// materializing, greedily maximizing query-cost reduction
// (Harinarayan–Rajaraman–Ullman) under the XML constraint that a
// materialized cuboid only answers coarser ones reachable through
// summarizability-safe relaxation steps. The DTD supplies those
// guarantees; pass "" to measure nothing safe (each view then only
// answers itself).
func (r *CubeResult) SuggestViews(k int, dtdText string) ([]ViewSuggestion, error) {
	lat := r.res.Lattice
	var props cube.Props
	if dtdText != "" {
		d, err := schema.Parse(dtdText)
		if err != nil {
			return nil, err
		}
		props, err = schema.Infer(d, lat)
		if err != nil {
			return nil, err
		}
	}
	sizes := map[uint32]int64{}
	for _, p := range lat.Points() {
		sizes[lat.ID(p)] = int64(r.res.CuboidSize(p))
	}
	base := int64(r.facts)
	if base < 1 {
		base = 1
	}
	sugs, err := views.Select(lat, props, sizes, base, k)
	if err != nil {
		return nil, err
	}
	out := make([]ViewSuggestion, len(sugs))
	for i, s := range sugs {
		out[i] = ViewSuggestion{Cuboid: lat.Label(s.Point), Size: s.Size, Benefit: s.Benefit}
	}
	return out, nil
}

// LatticeSketch renders every cuboid of the query's relaxed-cube lattice
// as its tree pattern — the textual form of the paper's Fig. 3.
func (q *Query) LatticeSketch() string {
	var b strings.Builder
	for _, p := range q.lat.Points() {
		fmt.Fprintf(&b, "%s\n", q.lat.Label(p))
		tree := q.lat.Tree(p).String()
		for _, line := range strings.Split(strings.TrimRight(tree, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
