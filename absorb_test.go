package x3

import (
	"strings"
	"testing"
)

// secondBatchXML holds two more publications arriving after the first cube
// was computed.
const secondBatchXML = `
<database>
  <publication id="5">
    <author id="a9"><name>John</name></author>
    <publisher id="p1"/>
    <year>2003</year>
  </publication>
  <publication id="6">
    <year>2006</year>
  </publication>
</database>`

func TestAbsorbEqualsRecompute(t *testing.T) {
	db1, q := loadPaper(t)
	res, err := db1.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := LoadXMLString(secondBatchXML)
	if err != nil {
		t.Fatal(err)
	}
	added, err := res.Absorb(db2)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 || res.NumFacts() != 6 {
		t.Fatalf("added=%d facts=%d", added, res.NumFacts())
	}

	// Recompute over the concatenated corpus and compare key cells.
	combined := strings.Replace(paperXML, "</database>",
		strings.TrimPrefix(strings.TrimSpace(secondBatchXML), "<database>"), 1)
	dbAll, err := LoadXMLString(combined)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dbAll.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	if want.NumFacts() != 6 {
		t.Fatalf("combined facts = %d", want.NumFacts())
	}
	if res.TotalCells() != want.TotalCells() {
		t.Fatalf("cells %d vs %d", res.TotalCells(), want.TotalCells())
	}
	for _, states := range []map[string]string{
		nil,
		{"$y": "rigid"},
		{"$n": "SP"},
		{"$n": "rigid", "$y": "rigid"},
		{"$p": "rigid", "$y": "rigid"},
	} {
		cw, err := want.Cuboid(states)
		if err != nil {
			t.Fatal(err)
		}
		cg, err := res.Cuboid(states)
		if err != nil {
			t.Fatal(err)
		}
		if cw.Size() != cg.Size() {
			t.Fatalf("%v: sizes %d vs %d", states, cg.Size(), cw.Size())
		}
		for _, row := range cw.Rows() {
			if v, ok := cg.Get(row.Values...); !ok || v != row.Value {
				t.Errorf("%v %v = %v, %v; want %v", states, row.Values, v, ok, row.Value)
			}
		}
	}
	// Spot checks: John now counts 3 at SP (pubs 1, 3, 5); 2003 counts 3.
	c, _ := res.Cuboid(map[string]string{"$n": "SP"})
	if v, ok := c.Get("John"); !ok || v != 3 {
		t.Errorf("absorbed SP John = %v, %v", v, ok)
	}
	c, _ = res.Cuboid(map[string]string{"$y": "rigid"})
	if v, ok := c.Get("2006"); !ok || v != 1 {
		t.Errorf("absorbed 2006 = %v, %v", v, ok)
	}
}

func TestAbsorbIcebergRefused(t *testing.T) {
	db, err := LoadXMLString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`
for $b in doc("x")//publication, $y in $b/year
x3 $b/@id by $y (LND)
return COUNT($b) having COUNT($b) >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Absorb(db); err == nil {
		t.Fatal("iceberg Absorb accepted")
	}
}
