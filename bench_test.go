package x3

// One benchmark per figure of the paper's evaluation (§4). Each
// sub-benchmark is one (axis count, algorithm) point of the figure; the
// series the paper plots is the set of sub-benchmark timings. Absolute
// numbers depend on hardware and the X3_BENCH_SCALE factor; the paper's
// qualitative shapes (who wins sparse vs dense, where COUNTER multi-passes,
// where TD melts down) are what these regenerate. cmd/x3bench prints the
// same data as figure-shaped tables.

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"x3/internal/cube"
	"x3/internal/harness"
	"x3/internal/mem"
)

// benchOptions picks a small default scale so the full matrix stays
// tractable under `go test -bench=.`; X3_BENCH_SCALE overrides it.
func benchOptions(b *testing.B) harness.Options {
	b.Helper()
	scale := 0.005
	if s := os.Getenv("X3_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			scale = v
		}
	}
	return harness.Options{
		Scale:   scale,
		Timeout: 60 * time.Second,
		TmpDir:  b.TempDir(),
		Seed:    1,
	}
}

// benchFigure runs every (axes, algorithm) point of one figure.
func benchFigure(b *testing.B, id string) {
	cfg, err := harness.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions(b)
	for _, d := range cfg.AxesSweep {
		w, err := harness.Prepare(cfg, opt, d)
		if err != nil {
			b.Fatal(err)
		}
		for _, alg := range cfg.Algorithms {
			b.Run(fmt.Sprintf("axes=%d/alg=%s", d, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					row, err := w.RunAlgorithm(alg, opt)
					if err != nil {
						b.Fatal(err)
					}
					if row.DNF != "" {
						b.Skipf("DNF: %s", row.DNF)
					}
					if i == b.N-1 {
						b.ReportMetric(float64(row.Cells), "cells")
						b.ReportMetric(float64(row.Stats.Passes), "passes")
						b.ReportMetric(float64(row.Stats.ExternalSorts), "extsorts")
					}
				}
			})
		}
		w.Remove()
	}
}

// BenchmarkFig4 — sparse cubes, 10^4 input trees, total coverage does not
// hold, disjointness holds (paper Fig. 4).
func BenchmarkFig4(b *testing.B) { benchFigure(b, "fig4") }

// BenchmarkFig5 — sparse cubes, 10^5 input trees, coverage fails,
// disjointness holds (paper Fig. 5).
func BenchmarkFig5(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkFig6 — dense cubes, 10^5 input trees, coverage fails,
// disjointness holds; TD/TDOPT/COUNTER DNF at 7 axes in the paper
// (paper Fig. 6).
func BenchmarkFig6(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7 — sparse cubes, 10^5 trees, both properties hold
// (paper Fig. 7).
func BenchmarkFig7(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8 — dense cubes, 10^5 trees, both properties hold; the
// top-down roll-up shines (paper Fig. 8).
func BenchmarkFig8(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFig9 — dense cubes, 10^5 trees, neither property holds; the
// optimized variants run fast but wrong (paper Fig. 9).
func BenchmarkFig9(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkFig10 — the DBLP experiment: cube article by /author, /month,
// /year, /journal over 220k input trees, all eight algorithms including
// the schema-customized BUCCUST/TDCUST (paper Fig. 10).
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkScaling — the §4.4 scaling experiment: the Fig. 4 configuration
// at 10^4 vs 10^5 input trees (here: 1x vs 10x of the scaled base), fixed
// 4 axes.
func BenchmarkScaling(b *testing.B) {
	cfg, err := harness.FigureByID("fig4")
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions(b)
	for _, mult := range []int{1, 10} {
		c := cfg
		c.Trees = cfg.Trees * mult
		w, err := harness.Prepare(c, opt, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, alg := range cfg.Algorithms {
			b.Run(fmt.Sprintf("trees=%dx/alg=%s", mult, alg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := w.RunAlgorithm(alg, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		w.Remove()
	}
}

// ---- ablations (DESIGN.md §7) ----

// BenchmarkAblationCounterBudget compares COUNTER with unlimited memory to
// COUNTER forced into hash-partitioned multi-pass by a tight budget.
func BenchmarkAblationCounterBudget(b *testing.B) {
	cfg, err := harness.FigureByID("fig5")
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions(b)
	w, err := harness.Prepare(cfg, opt, 5)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Remove()
	full := w.Budget
	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"unlimited", 0},
		{"paper-budget", full},
		{"tight", full / 64},
	} {
		b.Run(tc.name, func(b *testing.B) {
			w.Budget = tc.budget
			for i := 0; i < b.N; i++ {
				row, err := w.RunAlgorithm("COUNTER", opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(row.Stats.Passes), "passes")
				}
			}
		})
	}
	w.Budget = full
}

// BenchmarkAblationBUCPartitioning compares BUC's overlap-tolerant map
// partitioning with BUCOPT's in-place sorted partitioning on data where
// disjointness actually holds (both compute the same result there).
func BenchmarkAblationBUCPartitioning(b *testing.B) {
	cfg, err := harness.FigureByID("fig7")
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions(b)
	w, err := harness.Prepare(cfg, opt, 5)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Remove()
	for _, alg := range []string{"BUC", "BUCOPT", "BUCCUST"} {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.RunAlgorithm(alg, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTDIdentity compares the top-down ladder on conforming
// data: identity-retaining per-cuboid sorts (TD), shared identity-free
// sorts (TDOPT), and pure roll-up (TDOPTALL).
func BenchmarkAblationTDIdentity(b *testing.B) {
	cfg, err := harness.FigureByID("fig8")
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions(b)
	w, err := harness.Prepare(cfg, opt, 5)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Remove()
	for _, alg := range []string{"TD", "TDCUST", "TDOPT", "TDOPTALL"} {
		b.Run(alg, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := w.RunAlgorithm(alg, opt)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(row.Stats.Sorts), "sorts")
					b.ReportMetric(float64(row.Stats.Rollups), "rollups")
				}
			}
		})
	}
}

// BenchmarkCubeFacade measures the end-to-end public API on the paper's
// running example (parse, match, cube).
func BenchmarkCubeFacade(b *testing.B) {
	db, err := LoadXMLString(paperXML)
	if err != nil {
		b.Fatal(err)
	}
	q, err := ParseQuery(query1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := db.Cube(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCubeOverStore measures the paged-store path end to end:
// structural-join evaluation over the buffer pool plus cubing, cold cache
// per iteration.
func BenchmarkCubeOverStore(b *testing.B) {
	db, err := LoadXMLString(paperXML)
	if err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/bench.x3st"
	if err := db.Save(path); err != nil {
		b.Fatal(err)
	}
	sdb, err := OpenStore(path, 64)
	if err != nil {
		b.Fatal(err)
	}
	defer sdb.Close()
	q, err := ParseQuery(query1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sdb.Cube(q); err != nil {
			b.Fatal(err)
		}
	}
}

// silence unused-import when building without benchmarks.
var _ = cube.Names
var _ = mem.Unlimited
