package x3

import (
	"strings"
	"testing"
)

const dblpDTDText = `
<!ELEMENT dblp (article*)>
<!ELEMENT article (author*, title, journal, year, month?)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ATTLIST article key CDATA #REQUIRED>`

const dblpQueryText = `
for $a in doc("dblp.xml")//article,
    $au in $a/author, $m in $a/month, $y in $a/year, $j in $a/journal
x^3 $a/@key by $au (LND), $m (LND), $y (LND), $j (LND)
return COUNT($a)`

func TestAdviseDBLP(t *testing.T) {
	q, err := ParseQuery(dblpQueryText)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Advise(q, dblpDTDText)
	if err != nil {
		t.Fatal(err)
	}
	if adv.SparseAlgorithm != "BUCCUST" || adv.DenseAlgorithm != "TDCUST" {
		t.Errorf("recommendation = %s/%s, want CUST pair", adv.SparseAlgorithm, adv.DenseAlgorithm)
	}
	if len(adv.Properties) != 4 {
		t.Fatalf("properties = %d", len(adv.Properties))
	}
	byAxis := map[string]AxisProperties{}
	for _, p := range adv.Properties {
		byAxis[p.Axis] = p
	}
	if byAxis["$au"].Disjoint || byAxis["$au"].Covered {
		t.Errorf("$au = %+v", byAxis["$au"])
	}
	if !byAxis["$y"].Disjoint || !byAxis["$y"].Covered {
		t.Errorf("$y = %+v", byAxis["$y"])
	}
	if byAxis["$m"].MaxOccurs != 1 || byAxis["$au"].MaxOccurs != -1 {
		t.Errorf("occurs: m=%+v au=%+v", byAxis["$m"], byAxis["$au"])
	}
	s := adv.String()
	for _, want := range []string{"$au", "BUCCUST", "TDCUST", "[0,*]"} {
		if !strings.Contains(s, want) {
			t.Errorf("Advice.String missing %q:\n%s", want, s)
		}
	}
}

func TestAdviseAllClean(t *testing.T) {
	q, err := ParseQuery(`
for $a in doc("d")//r, $x in $a/x, $y in $a/y
x3 $a by $x (LND), $y (LND) return COUNT($a)`)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Advise(q, `
<!ELEMENT root (r*)><!ELEMENT r (x, y)>
<!ELEMENT x (#PCDATA)><!ELEMENT y (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	if adv.SparseAlgorithm != "BUCOPT" || adv.DenseAlgorithm != "TDOPTALL" {
		t.Errorf("clean schema recommendation = %s/%s", adv.SparseAlgorithm, adv.DenseAlgorithm)
	}
}

func TestAdviseNothingGuaranteed(t *testing.T) {
	q, err := ParseQuery(`
for $a in doc("d")//r, $x in $a/x, $y in $a/y
x3 $a by $x (LND), $y (LND) return COUNT($a)`)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Advise(q, `
<!ELEMENT root (r*)><!ELEMENT r (x*, y*)>
<!ELEMENT x (#PCDATA)><!ELEMENT y (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	if adv.SparseAlgorithm != "BUC" || adv.DenseAlgorithm != "COUNTER" {
		t.Errorf("pessimistic recommendation = %s/%s", adv.SparseAlgorithm, adv.DenseAlgorithm)
	}
}

func TestAdviseDisjointOnly(t *testing.T) {
	q, err := ParseQuery(`
for $a in doc("d")//r, $x in $a/x
x3 $a by $x (LND) return COUNT($a)`)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Advise(q, `
<!ELEMENT root (r*)><!ELEMENT r (x?)><!ELEMENT x (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	if adv.SparseAlgorithm != "BUCOPT" || adv.DenseAlgorithm != "COUNTER" {
		t.Errorf("disjoint-only recommendation = %s/%s", adv.SparseAlgorithm, adv.DenseAlgorithm)
	}
}

func TestAdviseErrors(t *testing.T) {
	q, err := ParseQuery(dblpQueryText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Advise(q, "garbage"); err == nil {
		t.Error("garbage DTD accepted")
	}
	if _, err := Advise(q, `<!ELEMENT other (#PCDATA)>`); err == nil {
		t.Error("DTD without the fact element accepted")
	}
}

func TestLatticeSketch(t *testing.T) {
	q, err := ParseQuery(query1)
	if err != nil {
		t.Fatal(err)
	}
	s := q.LatticeSketch()
	if got := strings.Count(s, "publication ($b)"); got != 16 {
		t.Errorf("sketch shows %d cuboids, want 16", got)
	}
	for _, want := range []string{"$n:rigid", "$n:SP", "$y:LND", "//name"} {
		if !strings.Contains(s, want) {
			t.Errorf("sketch missing %q", want)
		}
	}
}

func TestEstimate(t *testing.T) {
	db, err := LoadXMLString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(query1)
	if err != nil {
		t.Fatal(err)
	}
	est, err := db.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if est.Facts != 4 || est.Cuboids != 16 {
		t.Fatalf("estimate = %+v", est)
	}
	if est.EstimatedCells <= 0 || est.TopCuboidCells <= 0 {
		t.Fatalf("cells estimate = %+v", est)
	}
	// Four heterogeneous facts make a sparse micro-cube.
	if est.Dense {
		t.Errorf("paper example classified dense: %+v", est)
	}
	// The estimate is in the ballpark of the real cube (57 cells).
	res, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(est.EstimatedCells) / float64(res.TotalCells())
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("estimated %d cells, real %d", est.EstimatedCells, res.TotalCells())
	}
}

func TestSuggestViews(t *testing.T) {
	db, err := LoadXMLString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(query1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	const dtd = `
<!ELEMENT database (publication*)>
<!ELEMENT publication (author*, authors?, publisher?, year*, pubData?)>
<!ELEMENT authors (author+)>
<!ELEMENT author (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT publisher EMPTY>
<!ELEMENT year (#PCDATA)>
<!ELEMENT pubData (publisher, year)>
<!ATTLIST publication id ID #REQUIRED>
<!ATTLIST author id ID #REQUIRED>
<!ATTLIST publisher id ID #REQUIRED>`
	sugs, err := res.SuggestViews(3, dtd)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugs) == 0 {
		t.Fatal("no suggestions")
	}
	for _, s := range sugs {
		if s.Size <= 0 || s.Benefit <= 0 || s.Cuboid == "" {
			t.Errorf("bad suggestion %+v", s)
		}
	}
	// Without a DTD it still works (self-serving views only).
	sugs, err = res.SuggestViews(2, "")
	if err != nil || len(sugs) == 0 {
		t.Fatalf("no-DTD suggestions: %v, %v", sugs, err)
	}
	if _, err := res.SuggestViews(0, ""); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := res.SuggestViews(1, "garbage"); err == nil {
		t.Error("garbage DTD accepted")
	}
}

func TestIcebergThroughFacade(t *testing.T) {
	db, err := LoadXMLString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`
for $b in doc("book.xml")//publication,
    $n in $b/author/name, $y in $b/year
x^3 $b/@id by $n (LND, SP, PC-AD), $y (LND)
return COUNT($b) having COUNT($b) >= 2`)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"COUNTER", "BUC", "TD"} {
		res, err := db.Cube(q, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// Only groups with >= 2 publications survive: 2003 (2), John at
		// SP (2), and the coarser aggregates.
		c, err := res.Cuboid(map[string]string{"$y": "rigid"})
		if err != nil {
			t.Fatal(err)
		}
		if c.Size() != 1 {
			t.Errorf("%s: iceberg year cuboid size = %d, want 1", alg, c.Size())
		}
		if v, ok := c.Get("2003"); !ok || v != 2 {
			t.Errorf("%s: 2003 = %v, %v", alg, v, ok)
		}
		if _, ok := c.Get("2004"); ok {
			t.Errorf("%s: below-threshold group survived", alg)
		}
	}
}
