// Command x3lint runs the repo's static-analysis suite (internal/lint):
// five analyzers enforcing the pipeline's cross-cutting invariants —
// context flow, errors.Is discipline, obs key hygiene, deterministic
// iteration on output paths, unique fault-injection sites.
//
// Usage:
//
//	x3lint [-root dir] [-analyzers a,b,...]
//
// Diagnostics print as file:line:col: analyzer: message, sorted by file
// and position so CI output diffs cleanly across runs and machines. The
// exit status is 1 when any diagnostic survives suppression, 2 on a
// loading or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"x3/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root to lint (directory containing go.mod)")
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	as, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog, err := lint.Load(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "x3lint:", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, as)
	for _, d := range diags {
		// Print module-relative paths so output is machine-independent.
		if rel, err := filepath.Rel(prog.RootDir, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "x3lint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
