// Command x3lint runs the repo's static-analysis suite (internal/lint):
// ten analyzers enforcing the pipeline's cross-cutting invariants —
// context flow, errors.Is discipline, obs key hygiene, deterministic
// iteration on output paths, unique fault-injection sites, and the
// interprocedural concurrency/honesty checks (goleak, lockhold,
// atomicfield, errdrop, honestpath) built on the whole-program call
// graph.
//
// Usage:
//
//	x3lint [-root dir] [-analyzers a,b,...] [-json] [-debug]
//
// Diagnostics print as file:line:col: analyzer: message, sorted by file
// and position so CI output diffs cleanly across runs and machines.
// With -json the run emits one JSON object carrying every diagnostic —
// including the //x3:nolint-suppressed ones, marked suppressed:true —
// for machine consumers. -debug prints per-analyzer wall time to
// stderr. The exit status is 1 when any diagnostic survives
// suppression, 2 on a loading or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"x3/internal/lint"
)

// jsonDiag is the machine-readable form of one diagnostic. Paths are
// module-relative so output is machine-independent.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	root := flag.String("root", ".", "module root to lint (directory containing go.mod)")
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics (suppressed included) as JSON on stdout")
	debug := flag.Bool("debug", false, "print per-analyzer wall time to stderr")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	as, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog, err := lint.Load(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "x3lint:", err)
		os.Exit(2)
	}
	res := lint.RunDetailed(prog, as)
	if *debug {
		for _, t := range res.Timings {
			fmt.Fprintf(os.Stderr, "x3lint: %-12s %s\n", t.Analyzer, t.Elapsed.Round(10*time.Microsecond))
		}
	}

	relative := func(d *lint.Diagnostic) {
		if rel, err := filepath.Rel(prog.RootDir, d.Pos.Filename); err == nil {
			d.Pos.Filename = filepath.ToSlash(rel)
		}
	}
	if *jsonOut {
		out := struct {
			Diagnostics []jsonDiag `json:"diagnostics"`
		}{Diagnostics: []jsonDiag{}}
		emit := func(diags []lint.Diagnostic, suppressed bool) {
			for _, d := range diags {
				relative(&d)
				out.Diagnostics = append(out.Diagnostics, jsonDiag{
					File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
					Analyzer: d.Analyzer, Message: d.Message, Suppressed: suppressed,
				})
			}
		}
		emit(res.Diagnostics, false)
		emit(res.Suppressed, true)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "x3lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			relative(&d)
			fmt.Println(d.String())
		}
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "x3lint: %d violation(s)\n", len(res.Diagnostics))
		os.Exit(1)
	}
}
