// Command x3gen generates the synthetic corpora of the X³ evaluation:
// Treebank-like heterogeneous marked-up trees and DBLP-like article
// records, plus their DTDs and the matching X³ queries.
//
// Usage:
//
//	x3gen -kind treebank -facts 10000 -axes 4 -missing 0.25 -out tb.xml -dtd tb.dtd -query tb.xq
//	x3gen -kind dblp -facts 220000 -out dblp.xml -dtd dblp.dtd -query dblp.xq
//	x3gen -kind paper -out books.xml
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"x3/internal/dataset"
	"x3/internal/pattern"
	"x3/internal/xmltree"
)

// paperXML is the Figure 1 running example.
const paperXML = `<database>
  <publication id="1">
    <author id="a1"><name>John</name></author>
    <author id="a2"><name>Jane</name></author>
    <publisher id="p1"/>
    <year>2003</year>
  </publication>
  <publication id="2">
    <author id="a3"><name>Bob</name></author>
    <publisher id="p1"/>
    <year>2004</year>
    <year>2005</year>
  </publication>
  <publication id="3">
    <authors><author id="a1"><name>John</name></author></authors>
    <year>2003</year>
  </publication>
  <publication id="4">
    <author id="a4"><name>Amy</name></author>
    <pubData><publisher id="p2"/><year>2005</year></pubData>
  </publication>
</database>`

func main() {
	log.SetFlags(0)
	log.SetPrefix("x3gen: ")
	var (
		kind    = flag.String("kind", "treebank", "corpus kind: treebank, dblp or paper")
		facts   = flag.Int("facts", 10000, "number of facts (input trees)")
		axes    = flag.Int("axes", 4, "treebank: number of grouping axes")
		card    = flag.Int("card", 64, "treebank: value cardinality per axis")
		missing = flag.Float64("missing", 0, "treebank: P(axis element missing) — coverage violation")
		repeat  = flag.Float64("repeat", 0, "treebank: P(extra occurrence) — disjointness violation")
		nest    = flag.Float64("nest", 0, "treebank: P(element nested under a wrapper) — needs PC-AD")
		noise   = flag.Int("noise", 2, "treebank: filler elements per fact")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output XML path (default stdout)")
		dtdOut  = flag.String("dtd", "", "also write the corpus DTD here")
		qOut    = flag.String("query", "", "also write the matching X³ query here")
	)
	flag.Parse()

	var (
		doc   *xmltree.Document
		dtd   string
		query string
		err   error
	)
	switch *kind {
	case "treebank":
		cfg := dataset.TreebankConfig{Seed: *seed, Facts: *facts, Noise: *noise}
		for i := 0; i < *axes; i++ {
			relax := pattern.RelaxSet(0).With(pattern.LND)
			if *nest > 0 {
				relax = relax.With(pattern.PCAD)
			}
			cfg.Axes = append(cfg.Axes, dataset.AxisConfig{
				Tag:         fmt.Sprintf("w%d", i),
				Cardinality: *card,
				PMissing:    *missing,
				PRepeat:     *repeat,
				PNest:       *nest,
				Relax:       relax,
			})
		}
		doc = dataset.Treebank(cfg)
		dtd = dataset.TreebankDTD(cfg)
		query = queryText(dataset.TreebankQuery(cfg.Axes))
	case "dblp":
		doc = dataset.DBLP(dataset.DefaultDBLPConfig(*facts, *seed))
		dtd = dataset.DBLPDTD
		query = queryText(dataset.DBLPQuery())
	case "paper":
		doc, err = xmltree.ParseString(paperXML)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -kind %q (want treebank, dblp or paper)", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := doc.Write(w); err != nil {
		log.Fatal(err)
	}
	if *dtdOut != "" {
		if dtd == "" {
			log.Fatalf("-dtd not supported for kind %q", *kind)
		}
		if err := os.WriteFile(*dtdOut, []byte(dtd), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *qOut != "" {
		if query == "" {
			log.Fatalf("-query not supported for kind %q", *kind)
		}
		if err := os.WriteFile(*qOut, []byte(query), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "x3gen: %d nodes written\n", doc.Len())
}

// queryText renders a CubeQuery back to the X³ surface syntax.
func queryText(q *pattern.CubeQuery) string {
	out := fmt.Sprintf("for %s in doc(%q)%s", q.FactVar, q.Doc, q.FactPath)
	for _, a := range q.Axes {
		out += fmt.Sprintf(",\n    %s in %s%s", a.Var, q.FactVar, a.Path)
	}
	out += fmt.Sprintf("\nx^3 %s%s by", q.FactVar, q.FactIDPath)
	for i, a := range q.Axes {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf(" %s %s", a.Var, a.Relax)
	}
	out += fmt.Sprintf("\nreturn %v(%s).\n", q.Agg, q.FactVar)
	return out
}
