package main

import (
	"strings"
	"testing"

	"x3/internal/dataset"
	"x3/internal/xmltree"
	"x3/internal/xq"
)

func TestQueryTextRoundTripsThroughParser(t *testing.T) {
	// The query x3gen emits must be accepted by the xq parser and
	// describe the same axes.
	dq := dataset.DBLPQuery()
	text := queryText(dq)
	parsed, err := xq.Parse(text)
	if err != nil {
		t.Fatalf("emitted query does not parse: %v\n%s", err, text)
	}
	if len(parsed.Axes) != len(dq.Axes) {
		t.Fatalf("axes %d vs %d", len(parsed.Axes), len(dq.Axes))
	}
	for i := range dq.Axes {
		if parsed.Axes[i].Path.String() != dq.Axes[i].Path.String() {
			t.Errorf("axis %d path %s vs %s", i, parsed.Axes[i].Path, dq.Axes[i].Path)
		}
		if parsed.Axes[i].Relax != dq.Axes[i].Relax {
			t.Errorf("axis %d relax %v vs %v", i, parsed.Axes[i].Relax, dq.Axes[i].Relax)
		}
	}
}

func TestPaperXMLParses(t *testing.T) {
	doc, err := xmltree.ParseString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.ByTag("publication")); got != 4 {
		t.Fatalf("publications = %d", got)
	}
	if !strings.Contains(paperXML, "pubData") {
		t.Error("paper fixture lost the fourth publication's shape")
	}
}
