package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"x3/internal/load"
)

// ciPR8Config shrinks the sweep to CI size: two rates, both mixes, short
// phases, a small dataset.
func ciPR8Config() pr8Config {
	cfg := defaultPR8Config(40, 7)
	cfg.Rates = []float64{150, 400}
	cfg.Duration = 400 * time.Millisecond
	cfg.Warmup = 100 * time.Millisecond
	return cfg
}

// TestBenchPR8Report runs the shrunken sweep end to end and checks the
// artifact's acceptance shape: every (rate, mix) cell present with
// quantiles, the hot tenant demonstrably refused with 429s where its
// demand exceeds quota, and the in-quota population unaffected enough to
// hold the SLO.
func TestBenchPR8Report(t *testing.T) {
	cfg := ciPR8Config()
	rep, err := benchPR8Report(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Rates) * len(cfg.Mixes); len(rep.Scenarios) != want {
		t.Fatalf("%d scenarios, want %d", len(rep.Scenarios), want)
	}
	for _, s := range rep.Scenarios {
		if s.Report.Total.Sent == 0 {
			t.Fatalf("scenario %s fired nothing", s.Name)
		}
		if s.Report.Total.OK == 0 || s.InQuotaLatency.Count == 0 {
			t.Fatalf("scenario %s: no successful ops recorded (%+v)", s.Name, s.Report.Total)
		}
		if s.InQuotaLatency.P50 <= 0 || s.InQuotaLatency.P99 < s.InQuotaLatency.P50 ||
			s.InQuotaLatency.P999 < s.InQuotaLatency.P99 {
			t.Fatalf("scenario %s: malformed quantiles %+v", s.Name, s.InQuotaLatency)
		}
		// tenant0 offers 0.4*rate against a quota of 2*rate/8 = 0.25*rate:
		// it must see 429s in every scenario.
		if s.HotTenantOverQuota == 0 {
			t.Fatalf("scenario %s: hot tenant was never refused", s.Name)
		}
		// In-quota tenants offer ~0.086*rate each against 0.25*rate: they
		// must not be collateral damage of tenant0's overload.
		for label, tr := range s.Report.Tenants {
			if label == "tenant0" {
				continue
			}
			if tr.Sent > 0 && tr.OverQuota*5 > tr.Sent {
				t.Fatalf("scenario %s: in-quota tenant %s refused %d/%d times", s.Name, label, tr.OverQuota, tr.Sent)
			}
		}
	}
	if !rep.Pass {
		for _, s := range rep.Scenarios {
			t.Logf("%s: pass=%v violations=%v", s.Name, s.Pass, s.Violations)
		}
		t.Fatal("CI-sized sweep violated the SLO")
	}
}

// TestRunBenchPR8Artifact checks the writer/gate plumbing: the JSON
// artifact round-trips, and a doctored baseline that passed where the
// current run fails trips the regression gate.
func TestRunBenchPR8Artifact(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_pr8.json")
	cfg := ciPR8Config()
	cfg.Rates = []float64{150}
	cfg.Mixes = cfg.Mixes[:1]
	if err := runBenchPR8(cfg, out, ""); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep load.BenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(rep.Scenarios) != 1 || !rep.Pass {
		t.Fatalf("artifact %+v, want one passing scenario", rep)
	}
	if rep.Scenarios[0].Report.Total.OverQuota == 0 {
		t.Fatal("artifact records zero over-quota refusals")
	}

	// Regression detection: baseline passed, current fails.
	base := &load.BenchReport{Scenarios: []load.Scenario{{Name: "read@150", Pass: true}}}
	cur := &load.BenchReport{Scenarios: []load.Scenario{{Name: "read@150", Pass: false, Violations: []string{"p99 high"}}}}
	if regs := load.Regressions(base, cur); len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly one", regs)
	}
	// A scenario that failed in the baseline too is not a regression, nor
	// is a new scenario.
	base.Scenarios[0].Pass = false
	cur.Scenarios = append(cur.Scenarios, load.Scenario{Name: "new@999", Pass: false})
	if regs := load.Regressions(base, cur); len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
}
