package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"x3/internal/admit"
	"x3/internal/load"
	"x3/internal/obs"
)

// pr8Config parameterizes the sustained-load sweep so the test suite can
// shrink it to CI size.
type pr8Config struct {
	Scale    int
	Seed     int64
	Rates    []float64
	Mixes    []namedMix
	Duration time.Duration
	Warmup   time.Duration
	Tenants  int
	HotShare float64
	// MaxInFlight caps concurrency; TenantRateFactor sets each tenant's
	// quota as factor * (rate / tenants), so with a hot share well above
	// factor/tenants the hot tenant demonstrably exceeds quota while the
	// others stay inside it.
	MaxInFlight      int
	TenantRateFactor float64
	SLO              load.SLO
}

// namedMix labels a mix for the artifact.
type namedMix struct {
	Name string
	Mix  load.Mix
}

// defaultPR8Config is the committed-artifact shape: three arrival rates
// crossed with a read-only and a mixed read/append workload, eight
// tenants with tenant0 pushing 40% of the traffic against a quota of 2x
// the fair share, and an SLO with generous absolute bounds (the gate
// catches order-of-magnitude regressions, not scheduler jitter).
func defaultPR8Config(scale int, seed int64) pr8Config {
	return pr8Config{
		Scale: scale,
		Seed:  seed,
		Rates: []float64{200, 600, 1200},
		Mixes: []namedMix{
			{"read", load.Mix{Point: 0.6, Slice: 0.3, Rollup: 0.1}},
			{"mixed", load.Mix{Point: 0.45, Slice: 0.25, Rollup: 0.15, Append: 0.15}},
		},
		Duration:         2500 * time.Millisecond,
		Warmup:           500 * time.Millisecond,
		Tenants:          8,
		HotShare:         0.4,
		MaxInFlight:      256,
		TenantRateFactor: 2,
		SLO: load.SLO{
			P50:          50 * time.Millisecond,
			P99:          200 * time.Millisecond,
			P999:         500 * time.Millisecond,
			MaxErrorRate: 0.001,
		},
	}
}

// runBenchPR8 runs the sweep, writes the artifact, and — when a baseline
// is given — fails on any scenario that passed its SLO there and fails
// now.
func runBenchPR8(cfg pr8Config, outPath, baselinePath string) error {
	rep, err := benchPR8Report(cfg)
	if err != nil {
		return err
	}
	if err := writeJSON(outPath, rep); err != nil {
		return err
	}
	for _, s := range rep.Scenarios {
		verdict := "PASS"
		if !s.Pass {
			verdict = fmt.Sprintf("FAIL %v", s.Violations)
		}
		fmt.Fprintf(os.Stderr, "x3load: %-16s thr %7.0f/s  in-quota p50 %6.2fms p99 %6.2fms p999 %6.2fms  hot-429s %5d  %s\n",
			s.Name, s.Report.Throughput,
			float64(s.InQuotaLatency.P50)/1e6, float64(s.InQuotaLatency.P99)/1e6, float64(s.InQuotaLatency.P999)/1e6,
			s.HotTenantOverQuota, verdict)
	}
	if baselinePath != "" {
		if base, err := readBaseline(baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "x3load: no usable baseline at %s (%v); gating on this run only\n", baselinePath, err)
		} else if regs := load.Regressions(base, rep); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "x3load: %s\n", r)
			}
			return fmt.Errorf("bench-pr8: %d SLO regression(s) vs baseline %s", len(regs), baselinePath)
		}
	}
	if !rep.Pass {
		return fmt.Errorf("bench-pr8: SLO violations (see scenario report)")
	}
	return nil
}

// benchPR8Report executes the sweep in-process and assembles the
// artifact.
func benchPR8Report(cfg pr8Config) (*load.BenchReport, error) {
	reg := obs.New()
	store, cleanup, err := buildLadderStore(cfg.Scale, cfg.Seed, reg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	workload := load.DBLPWorkload{Journals: 50, Authors: 2000, YearFrom: 1990, YearTo: 2005}

	rep := &load.BenchReport{SLO: cfg.SLO, Pass: true}
	for _, rate := range cfg.Rates {
		for _, nm := range cfg.Mixes {
			// A fresh controller per scenario: quotas scale with the
			// offered rate, and one scenario's refusals must not leak
			// into the next.
			// Burst is an eighth of a second of quota: enough headroom for
			// Poisson clumping, small enough that a sustained over-quota
			// tenant hits refusals well inside even a short measurement
			// phase instead of coasting on the initial bucket fill.
			quota := cfg.TenantRateFactor * rate / float64(cfg.Tenants)
			ctrl := admit.New(admit.Config{
				MaxInFlight: cfg.MaxInFlight,
				Rate:        quota,
				Burst:       quota / 8,
				Registry:    reg,
			})
			lcfg := load.Config{
				Seed: cfg.Seed, Rate: rate, Duration: cfg.Duration, Warmup: cfg.Warmup,
				Mix: nm.Mix, Tenants: cfg.Tenants, HotTenantShare: cfg.HotShare,
				Workload: workload,
			}
			ops := load.Schedule(lcfg)
			r := load.Run(context.Background(), &load.StoreTarget{Store: store, Admission: ctrl}, lcfg, ops)

			// The SLO population is every tenant except the hot one:
			// admission control exists so their latency survives tenant0's
			// overload. Their histograms merge into one snapshot — the
			// cross-worker aggregation path.
			labels := lcfg.TenantLabels()[1:]
			inQuota := r.MergedLatency(labels...).Stats()
			var sent, failed int64
			for _, l := range labels {
				if tr, ok := r.Tenants[l]; ok {
					sent += tr.Sent
					failed += tr.Failed
				}
			}
			sc := load.Scenario{
				Name:           fmt.Sprintf("%s@%.0f", nm.Name, rate),
				Report:         r,
				InQuotaLatency: inQuota,
				Violations:     cfg.SLO.Check(inQuota, sent, failed),
			}
			if hot, ok := r.Tenants["tenant0"]; ok {
				sc.HotTenantOverQuota = hot.OverQuota
				// The acceptance criterion: the over-quota tenant is
				// demonstrably shed. tenant0 offers hotShare*rate against
				// a quota of factor*rate/tenants; when demand exceeds
				// quota, 429s must appear.
				if cfg.HotShare*rate > quota*1.2 && hot.OverQuota == 0 {
					sc.Violations = append(sc.Violations,
						fmt.Sprintf("hot tenant offered %.0f/s against quota %.0f/s but saw zero 429s", cfg.HotShare*rate, quota))
				}
			}
			sc.Pass = len(sc.Violations) == 0
			if !sc.Pass {
				rep.Pass = false
			}
			rep.Scenarios = append(rep.Scenarios, sc)
		}
	}
	return rep, nil
}

// readBaseline loads a previously committed artifact.
func readBaseline(path string) (*load.BenchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep load.BenchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, err
	}
	if len(rep.Scenarios) == 0 {
		return nil, fmt.Errorf("baseline has no scenarios")
	}
	return &rep, nil
}
