package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"x3/internal/dataset"
	"x3/internal/fault"
	"x3/internal/lattice"
	"x3/internal/load"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/serve"
	"x3/internal/shard"
)

// pr9Config parameterizes the sharded failure sweep so the test suite
// can shrink it to CI size.
type pr9Config struct {
	Scale    int
	Seed     int64
	Rate     float64
	Duration time.Duration
	Warmup   time.Duration
	Tenants  int
	Replicas int
	// Cells is the (shards, injected failures) grid. Failures 1 kills
	// the first replica of every shard (failover must absorb it);
	// failures 2 additionally kills the surviving replica of shard 0,
	// so every answer must degrade to an honestly labelled partial.
	Cells []pr9Cell
	SLO   load.SLO
}

// pr9Cell is one (shards, failures) grid point.
type pr9Cell struct {
	Shards   int
	Failures int
}

// pr9Scenario is one measured grid point with its verdict.
type pr9Scenario struct {
	Name     string `json:"name"`
	Shards   int    `json:"shards"`
	Replicas int    `json:"replicas"`
	Failures int    `json:"failures"`
	// ExpectPartial marks the whole-shard-loss cells where every answer
	// must be partial (and name the lost shard) rather than fabricated.
	ExpectPartial bool         `json:"expect_partial"`
	Report        *load.Report `json:"report"`
	Failovers     int64        `json:"failovers"`
	HedgesFired   int64        `json:"hedges_fired"`
	Violations    []string     `json:"violations,omitempty"`
	Pass          bool         `json:"pass"`
}

// pr9Report is the full bench-pr9 artifact.
type pr9Report struct {
	SLO       load.SLO      `json:"slo"`
	Scenarios []pr9Scenario `json:"scenarios"`
	Pass      bool          `json:"pass"`
}

// defaultPR9Config is the committed-artifact shape: shard counts 1, 2
// and 4 at zero and one injected replica failure per shard, plus the
// whole-shard-loss cells at 2 and 4 shards. The SLO bounds are generous
// absolutes — the gate catches order-of-magnitude regressions and any
// silently-wrong degradation, not scheduler jitter.
func defaultPR9Config(scale int, seed int64) pr9Config {
	return pr9Config{
		Scale: scale, Seed: seed,
		Rate: 300, Duration: 2 * time.Second, Warmup: 400 * time.Millisecond,
		Tenants: 4, Replicas: 2,
		Cells: []pr9Cell{
			{1, 0}, {2, 0}, {4, 0},
			{1, 1}, {2, 1}, {4, 1},
			{2, 2}, {4, 2},
		},
		SLO: load.SLO{
			P50:          50 * time.Millisecond,
			P99:          250 * time.Millisecond,
			MaxErrorRate: 0.001,
		},
	}
}

// runBenchPR9 runs the sweep, writes the artifact, and — when a
// baseline is given — fails on any scenario that passed there and
// fails now.
func runBenchPR9(cfg pr9Config, outPath, baselinePath string) error {
	rep, err := benchPR9Report(cfg)
	if err != nil {
		return err
	}
	if err := writeJSON(outPath, rep); err != nil {
		return err
	}
	for _, s := range rep.Scenarios {
		verdict := "PASS"
		if !s.Pass {
			verdict = fmt.Sprintf("FAIL %v", s.Violations)
		}
		fmt.Fprintf(os.Stderr, "x3load: %-14s thr %6.0f/s  p50 %6.2fms p99 %6.2fms  partial %5d/%5d  failovers %5d  hedges %4d  %s\n",
			s.Name, s.Report.Throughput,
			float64(s.Report.Total.Latency.P50)/1e6, float64(s.Report.Total.Latency.P99)/1e6,
			s.Report.Total.Partial, s.Report.Total.OK, s.Failovers, s.HedgesFired, verdict)
	}
	if baselinePath != "" {
		if base, err := readPR9Baseline(baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "x3load: no usable baseline at %s (%v); gating on this run only\n", baselinePath, err)
		} else if regs := pr9Regressions(base, rep); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "x3load: %s\n", r)
			}
			return fmt.Errorf("bench-pr9: %d regression(s) vs baseline %s", len(regs), baselinePath)
		}
	}
	if !rep.Pass {
		return fmt.Errorf("bench-pr9: violations (see scenario report)")
	}
	return nil
}

// benchPR9Report executes the grid in-process and assembles the
// artifact. Every cell gets a freshly built coordinator so one cell's
// health markings and histograms cannot leak into the next.
func benchPR9Report(cfg pr9Config) (*pr9Report, error) {
	rep := &pr9Report{SLO: cfg.SLO, Pass: true}
	for _, cell := range cfg.Cells {
		sc, err := benchPR9Cell(cfg, cell)
		if err != nil {
			return nil, err
		}
		if !sc.Pass {
			rep.Pass = false
		}
		rep.Scenarios = append(rep.Scenarios, *sc)
	}
	return rep, nil
}

// benchPR9Cell measures one (shards, failures) grid point.
func benchPR9Cell(cfg pr9Config, cell pr9Cell) (*pr9Scenario, error) {
	reg := obs.New()
	coord, cleanup, err := buildCoordinator(cfg, cell.Shards, reg)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// Failure injection. One failure kills replica 0 of every shard:
	// the scatter path must fail over to the sibling on every leg and
	// still answer exactly. Two failures additionally kill shard 0's
	// sibling, so shard 0 is gone and honesty — a partial answer naming
	// it — is the only acceptable outcome.
	if cell.Failures >= 1 {
		for si := 0; si < cell.Shards; si++ {
			coord.SetReplicaFault(si, 0, fault.New(fault.Config{Seed: cfg.Seed + int64(si), ErrEvery: 1}))
		}
	}
	expectPartial := false
	if cell.Failures >= 2 && cell.Shards > 1 {
		coord.SetReplicaFault(0, 1, fault.New(fault.Config{Seed: cfg.Seed + 100, ErrEvery: 1}))
		expectPartial = true
	}

	// Read-only mix: appends against a dead replica would mark it stale,
	// which is the append test suite's subject, not this latency grid's.
	lcfg := load.Config{
		Seed: cfg.Seed, Rate: cfg.Rate, Duration: cfg.Duration, Warmup: cfg.Warmup,
		Mix: load.Mix{Point: 0.6, Slice: 0.3, Rollup: 0.1}, Tenants: cfg.Tenants,
		Workload: load.DBLPWorkload{Journals: 50, Authors: 2000, YearFrom: 1990, YearTo: 2005},
	}
	ops := load.Schedule(lcfg)
	r := load.Run(context.Background(), &load.StoreTarget{Store: coord}, lcfg, ops)

	sc := &pr9Scenario{
		Name:   fmt.Sprintf("s%d-f%d", cell.Shards, cell.Failures),
		Shards: cell.Shards, Replicas: cfg.Replicas, Failures: cell.Failures,
		ExpectPartial: expectPartial,
		Report:        r,
		Failovers:     reg.Counter("shard.failover").Value(),
		HedgesFired:   reg.Counter("shard.hedge.fired").Value(),
	}
	sc.Violations = cfg.SLO.Check(r.Total.Latency, r.Total.Sent, r.Total.Failed)
	switch {
	case expectPartial:
		// The lost shard must surface in every answer; a single
		// non-partial OK would be a fabricated total.
		if r.Total.OK == 0 {
			sc.Violations = append(sc.Violations, "no answers completed under whole-shard loss")
		} else if r.Total.Partial != r.Total.OK {
			sc.Violations = append(sc.Violations,
				fmt.Sprintf("%d of %d answers not marked partial despite a dead shard", r.Total.OK-r.Total.Partial, r.Total.OK))
		}
	default:
		if r.Total.Partial != 0 {
			sc.Violations = append(sc.Violations,
				fmt.Sprintf("%d partial answers while every shard had a healthy replica", r.Total.Partial))
		}
	}
	if cell.Failures >= 1 && sc.Failovers == 0 {
		sc.Violations = append(sc.Violations, "injected replica failures forced zero failovers")
	}
	sc.Pass = len(sc.Violations) == 0
	return sc, nil
}

// buildCoordinator materializes the synthetic DBLP cube as a sharded
// replicated coordinator in a temp directory.
func buildCoordinator(cfg pr9Config, shards int, reg *obs.Registry) (*shard.Coordinator, func(), error) {
	doc := dataset.DBLP(dataset.DefaultDBLPConfig(cfg.Scale, cfg.Seed))
	lat, err := lattice.New(dataset.DBLPQuery())
	if err != nil {
		return nil, nil, err
	}
	set, err := match.Evaluate(doc, lat)
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.MkdirTemp("", "x3bench9")
	if err != nil {
		return nil, nil, err
	}
	coord, err := shard.New(dir, lat, set, shard.Options{
		Shards: shards, Replicas: cfg.Replicas, Registry: reg,
		Store: serve.Options{Views: 8},
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	cleanup := func() {
		coord.Close()
		os.RemoveAll(dir)
	}
	return coord, cleanup, nil
}

// pr9Regressions compares a fresh run against a baseline artifact: any
// grid point that passed there and fails now is a regression. New grid
// points only gate on themselves.
func pr9Regressions(baseline, current *pr9Report) []string {
	passed := map[string]bool{}
	for _, s := range baseline.Scenarios {
		passed[s.Name] = s.Pass
	}
	var regs []string
	for _, s := range current.Scenarios {
		if !s.Pass && passed[s.Name] {
			regs = append(regs, fmt.Sprintf("scenario %s regressed: passed in baseline, now violates %v", s.Name, s.Violations))
		}
	}
	return regs
}

// readPR9Baseline loads a previously committed artifact.
func readPR9Baseline(path string) (*pr9Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep pr9Report
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, err
	}
	if len(rep.Scenarios) == 0 {
		return nil, fmt.Errorf("baseline has no scenarios")
	}
	return &rep, nil
}
