// Command x3load is the production load harness: an open-loop workload
// generator that drives the X³ serving layer — in-process against a
// freshly built delta-ladder store, or over HTTP against a running
// x3serve — with a deterministic seeded schedule of point, slice and
// roll-up queries plus WAL appends, Zipf-skewed hot keys, and tenant
// labels that exercise the per-tenant admission control.
//
// Usage:
//
//	x3load -rate 600 -duration 5s -mix point=0.6,slice=0.3,rollup=0.1
//	x3load -rate 1200 -tenants 8 -hot-share 0.4 -tenant-rate 150
//	x3load -url http://127.0.0.1:8733 -rate 300 -duration 10s
//	x3load -bench-pr8 -scale 200 -metrics BENCH_pr8.json
//	x3load -bench-pr8 -baseline BENCH_pr8.json   # SLO regression gate
//	x3load -bench-pr9 -scale 200 -metrics BENCH_pr9.json
//
// A single run prints a JSON Report (throughput, per-tenant outcome
// counts, HDR latency quantiles). -bench-pr8 sweeps arrival rates and
// query mixes, evaluates the latency SLO on the in-quota tenant
// population, verifies the over-quota tenant is demonstrably shed with
// 429s, and writes the BENCH_pr8.json artifact `make bench` gates on.
// -bench-pr9 sweeps shard count crossed with injected replica failures
// against the sharded coordinator, gating that failover keeps answers
// exact and whole-shard loss degrades to honestly labelled partials.
// With -url and -backoff429 N the HTTP target retries 429s after the
// server's Retry-After hint (jittered), counting the absorbed pressure
// in load.backoff and per-tenant backoffs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"x3/internal/admit"
	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/load"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("x3load: ")
	var (
		rate       = flag.Float64("rate", 400, "offered arrival rate in ops/s")
		duration   = flag.Duration("duration", 3*time.Second, "measurement phase length")
		warmup     = flag.Duration("warmup", 500*time.Millisecond, "warm-up phase (executed, not recorded)")
		mixSpec    = flag.String("mix", "point=0.6,slice=0.3,rollup=0.1", "operation mix, kind=weight comma list")
		seed       = flag.Int64("seed", 1, "schedule seed (same seed, same schedule)")
		tenants    = flag.Int("tenants", 8, "tenant population size")
		hotShare   = flag.Float64("hot-share", 0.4, "fraction of arrivals from tenant0 (the over-quota tenant)")
		zipfS      = flag.Float64("zipf-s", 1.2, "hot-key Zipf exponent (> 1)")
		scale      = flag.Int("scale", 200, "in-process dataset size in DBLP articles")
		url        = flag.String("url", "", "drive a running x3serve at this base URL instead of in-process")
		backoff429 = flag.Int("backoff429", 0, "HTTP target: retry 429s up to N times, honouring Retry-After with jitter (0 = report refusals)")
		backoffCap = flag.Duration("backoff-cap", 250*time.Millisecond, "HTTP target: clamp each 429 backoff sleep")

		maxInFlight = flag.Int("max-inflight", 256, "in-process admission: max concurrent requests (0 disables)")
		bgMax       = flag.Int("background-max", 0, "in-process admission: background sub-limit (0 = half)")
		tenantRate  = flag.Float64("tenant-rate", 0, "in-process admission: per-tenant quota in req/s (0 disables)")
		tenantBurst = flag.Float64("tenant-burst", 0, "in-process admission: per-tenant burst (0 = one second of quota)")

		benchPR8 = flag.Bool("bench-pr8", false, "run the full rate x mix sweep with the SLO gate and exit")
		benchPR9 = flag.Bool("bench-pr9", false, "run the sharded failure sweep (latency vs shard count x injected replica failures) and exit")
		metrics  = flag.String("metrics", "", "write the report/artifact JSON here (default stdout)")
		baseline = flag.String("baseline", "", "bench-pr8/-pr9: compare against this baseline artifact and fail on regressions")
	)
	flag.Parse()

	if *benchPR8 {
		cfg := defaultPR8Config(*scale, *seed)
		if err := runBenchPR8(cfg, *metrics, *baseline); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchPR9 {
		cfg := defaultPR9Config(*scale, *seed)
		if err := runBenchPR9(cfg, *metrics, *baseline); err != nil {
			log.Fatal(err)
		}
		return
	}

	mix, err := load.ParseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := load.Config{
		Seed: *seed, Rate: *rate, Duration: *duration, Warmup: *warmup,
		Mix: mix, Tenants: *tenants, HotTenantShare: *hotShare, ZipfS: *zipfS,
		Workload: load.DBLPWorkload{Journals: 50, Authors: 2000, YearFrom: 1990, YearTo: 2005},
	}

	var target load.Target
	if *url != "" {
		target = &load.HTTPTarget{
			BaseURL: *url, MaxBackoffs: *backoff429, BackoffCap: *backoffCap,
			Registry: obs.New(),
		}
	} else {
		reg := obs.New()
		store, cleanup, err := buildLadderStore(*scale, *seed, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer cleanup()
		var ctrl *admit.Controller
		if *maxInFlight > 0 || *tenantRate > 0 {
			ctrl = admit.New(admit.Config{
				MaxInFlight: *maxInFlight, BackgroundMax: *bgMax,
				Rate: *tenantRate, Burst: *tenantBurst, Registry: reg,
			})
		}
		target = &load.StoreTarget{Store: store, Admission: ctrl}
	}

	ops := load.Schedule(cfg)
	fmt.Fprintf(os.Stderr, "x3load: firing %d ops at %.0f/s (mix %s, %d tenants)\n",
		len(ops), cfg.Rate, cfg.Mix, cfg.Tenants)
	rep := load.Run(context.Background(), target, cfg, ops)
	if err := writeJSON(*metrics, rep); err != nil {
		log.Fatal(err)
	}
}

// buildLadderStore materializes a synthetic DBLP cube as a delta-ladder
// store in a temp directory, so the append path is live.
func buildLadderStore(scale int, seed int64, reg *obs.Registry) (*serve.Store, func(), error) {
	doc := dataset.DBLP(dataset.DefaultDBLPConfig(scale, seed))
	lat, err := lattice.New(dataset.DBLPQuery())
	if err != nil {
		return nil, nil, err
	}
	dicts := make([]*match.Dict, lat.NumAxes())
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	set, err := match.EvaluateWith(doc, lat, dicts)
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.MkdirTemp("", "x3load")
	if err != nil {
		return nil, nil, err
	}
	store, err := serve.BuildDir(dir, lat, set, serve.Options{Registry: reg, Views: 8})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	go store.CompactLoop(ctx)
	cleanup := func() {
		cancel()
		store.Close()
		os.RemoveAll(dir)
	}
	return store, cleanup, nil
}

// writeJSON writes v as indented JSON to path, or stdout when empty.
func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
