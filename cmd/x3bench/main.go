// Command x3bench regenerates the paper's evaluation figures (§4): for
// each figure it builds the controlled workload, runs the figure's
// algorithms across the axis sweep, and prints the running-time table.
//
// Usage:
//
//	x3bench                         # all figures at the default 1/16 scale
//	x3bench -figure fig6 -scale 0.01
//	x3bench -figure fig10 -csv out.csv
//
// The scale factor multiplies the paper's input tree counts and its 512 MB
// memory budget together, preserving the crossover shapes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"x3/internal/harness"
	"x3/internal/obs"
)

// parseInts parses a comma-separated integer list ("" -> nil).
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("x3bench: bad -axes element %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// splitList splits a comma-separated list, dropping empties and spaces.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("x3bench: ")
	def := harness.DefaultOptions()
	var (
		figure  = flag.String("figure", "all", "figure id (fig4..fig10) or all")
		scale   = flag.Float64("scale", def.Scale, "input and budget scale factor")
		timeout = flag.Duration("timeout", def.Timeout, "per-run timeout (DNF beyond it)")
		seed    = flag.Int64("seed", 1, "workload seed")
		csvPath = flag.String("csv", "", "append all rows as CSV here")
		quiet   = flag.Bool("quiet", false, "suppress progress logging")
		axes    = flag.String("axes", "", `restrict the axis sweep, e.g. "2,4,7"`)
		algs    = flag.String("algorithms", "", `restrict the algorithms, e.g. "TD,BUC"`)
		metrics = flag.String("metrics", "", "write pipeline metrics as JSON here (evaluates through the paged store)")
		workers = flag.String("workers", "0", `comma-separated worker counts to sweep, e.g. "1,2,4" (0 = GOMAXPROCS)`)
	)
	flag.Parse()

	axesSweep, err := parseInts(*axes)
	if err != nil {
		log.Fatal(err)
	}
	workerSweep, err := parseInts(*workers)
	if err != nil {
		log.Fatal(err)
	}
	if len(workerSweep) == 0 {
		workerSweep = []int{0}
	}

	opt := harness.Options{Scale: *scale, Timeout: *timeout, Seed: *seed}
	if !*quiet {
		opt.Log = os.Stderr
	}
	if *metrics != "" {
		// Metrics runs evaluate through a persisted paged store so the
		// buffer-pool and structural-join counters see real page traffic.
		opt.Registry = obs.New()
		opt.UseStore = true
	}

	var figs []harness.Config
	if *figure == "all" {
		figs = harness.Figures()
	} else {
		cfg, err := harness.FigureByID(*figure)
		if err != nil {
			log.Fatal(err)
		}
		figs = []harness.Config{cfg}
	}

	var all []harness.Row
	for _, cfg := range figs {
		if len(axesSweep) > 0 {
			cfg.AxesSweep = axesSweep
		}
		if *algs != "" {
			cfg.Algorithms = splitList(*algs)
		}
		for _, nw := range workerSweep {
			opt.Workers = nw
			if len(workerSweep) > 1 {
				fmt.Printf("\n== %s: %s (workers=%d) ==\n", cfg.ID, cfg.Title, nw)
			} else {
				fmt.Printf("\n== %s: %s ==\n", cfg.ID, cfg.Title)
			}
			start := time.Now()
			rows, err := harness.Run(cfg, opt)
			if err != nil {
				log.Fatal(err)
			}
			harness.WriteTable(os.Stdout, rows)
			fmt.Printf("(%s, scale=%g, wall %.1fs)\n", cfg.ID, *scale, time.Since(start).Seconds())
			all = append(all, rows...)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		harness.WriteCSV(f, all)
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *metrics != "" {
		if err := opt.Registry.WriteJSONFile(*metrics); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "x3bench: metrics written to %s\n", *metrics)
	}
}
