package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"x3/internal/admit"
	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/serve"
	"x3/internal/servehttp"
)

// dblpInputs evaluates the test DBLP document against fresh dictionaries
// — the same inputs both a fresh build and a recovery receive.
func dblpInputs(t *testing.T) (*lattice.Lattice, *match.Set) {
	t.Helper()
	doc := dataset.DBLP(dataset.DefaultDBLPConfig(40, 7))
	lat, err := lattice.New(dataset.DBLPQuery())
	if err != nil {
		t.Fatal(err)
	}
	dicts := make([]*match.Dict, lat.NumAxes())
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	set, err := match.EvaluateWith(doc, lat, dicts)
	if err != nil {
		t.Fatal(err)
	}
	return lat, set
}

func serveStore(t *testing.T, store *serve.Store, reg *obs.Registry) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(servehttp.New(store, reg, servehttp.Options{
		Admission:      admit.New(admit.Config{MaxInFlight: 64, Registry: reg}),
		RequestTimeout: 30 * time.Second,
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestServerAppendAndGenerations drives the delta-ladder store over the
// wire: /append makes documents durable and immediately queryable,
// /generations reports the ladder shape, and a store recovered from the
// same directory serves the appended facts.
func TestServerAppendAndGenerations(t *testing.T) {
	lat, set := dblpInputs(t)
	dir := t.TempDir()
	reg := obs.New()
	opt := serve.Options{Registry: reg, Views: 5, BlockCells: 16, FlushCells: -1, CompactAfter: -1}
	store, err := serve.BuildDir(dir, lat, set, opt)
	if err != nil {
		t.Fatal(err)
	}
	srv := serveStore(t, store, reg)
	base := bottomCount(t, srv.URL)

	const deltaSize = 5
	resp, err := http.Post(srv.URL+"/append", "application/xml",
		strings.NewReader(refreshBody("a0", deltaSize)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/append: HTTP %d: %s", resp.StatusCode, b)
	}
	var out map[string]int64
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("/append: %v (%s)", err, b)
	}
	if out["added"] != deltaSize {
		t.Fatalf("/append added %d facts, want %d", out["added"], deltaSize)
	}
	if out["mem_cells"] == 0 {
		t.Fatal("/append left an empty memtable with auto-flush disabled")
	}
	if got, want := bottomCount(t, srv.URL), base+deltaSize; got != want {
		t.Fatalf("bottom count after append = %d, want %d", got, want)
	}

	// /generations reflects a flush.
	if err := store.Flush(nil); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/generations")
	if err != nil {
		t.Fatal(err)
	}
	var gens struct {
		Dir      string `json:"dir"`
		Deltas   int    `json:"deltas"`
		MemCells int64  `json:"mem_cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gens); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gens.Dir != dir || gens.Deltas != 1 || gens.MemCells != 0 {
		t.Fatalf("/generations = %+v, want dir %s, 1 delta, empty memtable", gens, dir)
	}

	// Malformed append XML is the caller's fault.
	if resp, b := postJSON(t, srv.URL+"/append", `<dblp`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad XML append: HTTP %d: %s", resp.StatusCode, b)
	}

	// Recovery: reopen the directory the way `x3serve -store` does and
	// serve the same totals.
	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	lat2, set2 := dblpInputs(t)
	store2, err := serve.OpenDir(dir, lat2, set2, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store2.Close() })
	srv2 := serveStore(t, store2, reg)
	if got, want := bottomCount(t, srv2.URL), base+deltaSize; got != want {
		t.Fatalf("bottom count after recovery = %d, want %d", got, want)
	}
}

// TestServerAppendWithoutLadder pins /append's contract on a single-file
// store: a clean 400, not a panic or a silent refresh.
func TestServerAppendWithoutLadder(t *testing.T) {
	srv, _, _ := startTestServer(t, 0)
	resp, b := postJSON(t, srv.URL+"/append", refreshBody("x", 2))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/append on a single-file store: HTTP %d: %s", resp.StatusCode, b)
	}
	var e map[string]string
	if err := json.Unmarshal(b, &e); err != nil || e["code"] != "bad_request" {
		t.Fatalf("/append error body %s, want code \"bad_request\"", b)
	}
}
