package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strconv"
	"time"

	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/serve"
)

// queryDeltaSteps are the outstanding-delta counts the query-latency
// table is measured at: the cost of per-cell re-aggregation across
// generations as the ladder grows.
var queryDeltaSteps = []int{0, 1, 4, 16}

// benchSweeps is how many full-lattice query sweeps each latency
// measurement averages over.
const benchSweeps = 3

// runBenchPR6 measures the incremental-maintenance path end to end:
//
//	bench.pr6.append     — WAL-durable append latency (parse, evaluate,
//	                       fsync, memtable fold) per document
//	bench.pr6.query.N    — full-lattice query sweep latency with N delta
//	                       generations outstanding (N in 0,1,4,16)
//	bench.pr6.compact    — merging base + 16 deltas back into one file
//
// The store runs with automatic flushing and compaction disabled so each
// measurement sees exactly the ladder shape it names.
func runBenchPR6(scale int, metricsPath string, reg *obs.Registry) error {
	lat, err := lattice.New(dataset.DBLPQuery())
	if err != nil {
		return err
	}
	baseDoc := dataset.DBLP(dataset.DefaultDBLPConfig(scale, 1))
	dicts := make([]*match.Dict, lat.NumAxes())
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	set, err := match.EvaluateWith(baseDoc, lat, dicts)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "x3serve-bench-pr6")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	s, err := serve.BuildDir(dir, lat, set, serve.Options{
		Registry: reg, CacheBlocks: 1 << 16, FlushCells: -1, CompactAfter: -1,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	ctx := context.Background()

	appendSize := scale / 8
	if appendSize < 5 {
		appendSize = 5
	}
	nextSeed := int64(100)
	appendDoc := func() ([]byte, error) {
		cfg := dataset.DefaultDBLPConfig(appendSize, nextSeed)
		nextSeed++
		var buf bytes.Buffer
		if err := dataset.DBLP(cfg).Write(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	// Append throughput: each Append parses, evaluates, fsyncs the WAL
	// record and folds the memtable.
	const throughputAppends = 8
	appendTimer := reg.Timer("bench.pr6.append")
	var appendFacts int64
	for i := 0; i < throughputAppends; i++ {
		body, err := appendDoc()
		if err != nil {
			return err
		}
		start := time.Now()
		added, err := s.Append(ctx, body)
		if err != nil {
			return err
		}
		appendTimer.Observe(time.Since(start))
		appendFacts += added
	}
	reg.Counter("bench.pr6.append.facts").Add(appendFacts)

	// Quiesce to a single base generation, then grow the ladder through
	// the delta steps, sweeping the whole lattice at each.
	if err := s.Flush(ctx); err != nil {
		return err
	}
	if err := s.Compact(ctx); err != nil {
		return err
	}
	points := lat.Points()
	for _, want := range queryDeltaSteps {
		for deltas, _ := s.Generations(); deltas < want; deltas, _ = s.Generations() {
			body, err := appendDoc()
			if err != nil {
				return err
			}
			if _, err := s.Append(ctx, body); err != nil {
				return err
			}
			if err := s.Flush(ctx); err != nil {
				return err
			}
		}
		t := reg.Timer("bench.pr6.query." + strconv.Itoa(want))
		for sweep := 0; sweep < benchSweeps; sweep++ {
			for _, p := range points {
				start := time.Now()
				if _, err := s.Answer(ctx, serve.Query{Point: p}); err != nil {
					return err
				}
				t.Observe(time.Since(start))
			}
		}
	}

	// Compaction cost: base + 16 deltas back into one file.
	compactTimer := reg.Timer("bench.pr6.compact")
	start := time.Now()
	if err := s.Compact(ctx); err != nil {
		return err
	}
	compactTimer.Observe(time.Since(start))

	fmt.Fprintf(os.Stderr, "x3serve: pr6 bench over %d base articles (+%d per append), %d cuboids\n",
		scale, appendSize, lat.Size())
	fmt.Fprintf(os.Stderr, "  append    %12v / doc (%d facts over %d appends)\n",
		appendTimer.Total()/time.Duration(throughputAppends), appendFacts, throughputAppends)
	for _, want := range queryDeltaSteps {
		t := reg.Timer("bench.pr6.query." + strconv.Itoa(want))
		n := int64(len(points) * benchSweeps)
		fmt.Fprintf(os.Stderr, "  query@%-3d %12v / query\n", want, t.Total()/time.Duration(n))
	}
	fmt.Fprintf(os.Stderr, "  compact   %12v (%d cells, %d input files)\n",
		compactTimer.Total(), reg.Counter("compact.cells").Value(), reg.Counter("compact.inputs").Value())
	if metricsPath != "" {
		if err := reg.WriteJSONFile(metricsPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "x3serve: metrics written to %s\n", metricsPath)
	}
	return nil
}
