package main

import (
	"encoding/json"
	"io"
	"net/http"

	"x3/internal/obs"
	"x3/internal/serve"
	"x3/internal/xmltree"
)

// maxBody bounds request bodies: queries are small JSON, refreshes are
// XML documents — neither should be unbounded.
const maxBody = 64 << 20

// newServer wires a serving store into an http.Handler. The handler is
// safe for concurrent use: queries run under the store's read lock and
// refreshes swap state atomically, so mixed traffic never tears.
func newServer(s *serve.Store, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req serve.Request
		if err := json.NewDecoder(io.LimitReader(r.Body, maxBody)).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := s.ServeRequest(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, resp)
	})

	mux.HandleFunc("POST /refresh", func(w http.ResponseWriter, r *http.Request) {
		doc, err := xmltree.Parse(io.LimitReader(r.Body, maxBody))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		added, err := s.RefreshDoc(doc)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, map[string]int64{"added": added})
	})

	mux.HandleFunc("GET /cuboids", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Materialized())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
	})

	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
