package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"x3/internal/obs"
	"x3/internal/serve"
	"x3/internal/xmltree"
)

// maxBody bounds request bodies: queries are small JSON, refreshes are
// XML documents — neither should be unbounded.
const maxBody = 64 << 20

// serverOptions configure the HTTP hardening middleware.
type serverOptions struct {
	// maxInFlight bounds concurrently executing requests; excess load is
	// shed with 503 + Retry-After instead of queueing without bound.
	// 0 or negative disables shedding.
	maxInFlight int
	// requestTimeout is the per-request deadline; the context handed to
	// the store expires at it, cancelling in-flight reads and
	// recomputations. 0 disables.
	requestTimeout time.Duration
}

// newServer wires a serving store into an http.Handler. The handler is
// safe for concurrent use: queries run under the store's read lock and
// refreshes, appends and flushes swap state atomically, so mixed traffic
// never tears. The
// middleware chain (outermost first) recovers panics, sheds load beyond
// maxInFlight, and imposes the per-request deadline; handlers pass the
// request context down so a client disconnect or an expired deadline
// cancels the work it was paying for.
func newServer(s *serve.Store, reg *obs.Registry, opt serverOptions) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req serve.Request
		if err := json.NewDecoder(io.LimitReader(r.Body, maxBody)).Decode(&req); err != nil {
			httpError(w, fmt.Errorf("%w: %w", serve.ErrBadRequest, err))
			return
		}
		resp, err := s.ServeRequest(r.Context(), req)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, resp)
	})

	mux.HandleFunc("POST /refresh", func(w http.ResponseWriter, r *http.Request) {
		doc, err := xmltree.Parse(io.LimitReader(r.Body, maxBody))
		if err != nil {
			httpError(w, fmt.Errorf("%w: %w", serve.ErrBadRequest, err))
			return
		}
		added, err := s.RefreshDoc(r.Context(), doc)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]int64{"added": added})
	})

	mux.HandleFunc("POST /append", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
		if err != nil {
			httpError(w, fmt.Errorf("%w: %w", serve.ErrBadRequest, err))
			return
		}
		added, err := s.Append(r.Context(), body)
		if err != nil {
			httpError(w, err)
			return
		}
		deltas, memCells := s.Generations()
		writeJSON(w, map[string]int64{"added": added, "deltas": int64(deltas), "mem_cells": memCells})
	})

	mux.HandleFunc("GET /generations", func(w http.ResponseWriter, r *http.Request) {
		deltas, memCells := s.Generations()
		writeJSON(w, map[string]any{
			"dir":       s.Dir(),
			"deltas":    deltas,
			"mem_cells": memCells,
		})
	})

	mux.HandleFunc("GET /cuboids", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.CuboidReport())
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			httpError(w, err)
		}
	})

	var h http.Handler = mux
	if opt.requestTimeout > 0 {
		h = withDeadline(opt.requestTimeout, h)
	}
	if opt.maxInFlight > 0 {
		h = withLoadShedding(reg, opt.maxInFlight, h)
	}
	return withRecovery(reg, h)
}

// withRecovery converts a handler panic into a 500 instead of tearing
// down the connection (and, with it, the whole keep-alive client).
func withRecovery(reg *obs.Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				reg.Counter("serve.panics").Inc()
				writeError(w, http.StatusInternalServerError, "panic",
					fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withLoadShedding admits at most max concurrent requests; the rest are
// answered immediately with 503 + Retry-After so clients back off
// instead of piling onto a saturated store.
func withLoadShedding(reg *obs.Registry, max int, next http.Handler) http.Handler {
	slots := make(chan struct{}, max)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
			defer func() { <-slots }()
			next.ServeHTTP(w, r)
		default:
			reg.Counter("serve.shed").Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "shed", "server at capacity")
		}
	})
}

// withDeadline bounds every request's context, so a slow query or a
// stuck refresh is cancelled rather than holding a slot forever.
func withDeadline(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// httpError maps an error to the structured JSON error form and the
// right status class: the client's fault (bad request) is 4xx, an
// expired deadline is 504, a cancelled request 503, and everything else
// — including detected corruption that even degraded serving could not
// route around — is 500.
func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serve.ErrBadRequest):
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline", err.Error())
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "cancelled", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}
