package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"x3/internal/admit"
	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/serve"
	"x3/internal/servehttp"
)

// startTestServer builds a small DBLP store and serves it over httptest.
func startTestServer(t *testing.T, views int) (*httptest.Server, *serve.Store, *obs.Registry) {
	t.Helper()
	doc := dataset.DBLP(dataset.DefaultDBLPConfig(40, 7))
	lat, err := lattice.New(dataset.DBLPQuery())
	if err != nil {
		t.Fatal(err)
	}
	dicts := make([]*match.Dict, lat.NumAxes())
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	set, err := match.EvaluateWith(doc, lat, dicts)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	store, err := serve.Build(filepath.Join(t.TempDir(), "cube.x3ci"), lat, set,
		serve.Options{Registry: reg, Views: views, BlockCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := httptest.NewServer(servehttp.New(store, reg, servehttp.Options{
		Admission:      admit.New(admit.Config{MaxInFlight: 64, Registry: reg}),
		RequestTimeout: 30 * time.Second,
	}))
	t.Cleanup(srv.Close)
	return srv, store, reg
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// refreshBody renders a small DBLP delta document with n fresh articles.
func refreshBody(tag string, n int) string {
	var sb strings.Builder
	sb.WriteString("<dblp>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `<article key="journals/%s/%d">`, tag, i)
		fmt.Fprintf(&sb, "<author>Author %s-%d</author>", tag, i)
		sb.WriteString("<title>t</title><journal>Journal 1</journal><year>2006</year><month>jan</month>")
		sb.WriteString("</article>")
	}
	sb.WriteString("</dblp>")
	return sb.String()
}

// bottomCount queries the lattice bottom (all axes LND) and returns the
// total fact count it reports.
func bottomCount(t *testing.T, url string) int64 {
	t.Helper()
	resp, b := postJSON(t, url+"/query", `{"cuboid":{"$au":"LND","$m":"LND","$y":"LND","$j":"LND"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bottom query: HTTP %d: %s", resp.StatusCode, b)
	}
	var out serve.Response
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range out.Rows {
		total += r.Count
	}
	return total
}

// TestServerConcurrentQueriesAndRefresh is the HTTP-level race workload:
// several goroutines fire mixed point/slice queries while refreshes fold
// new documents in through the same handler. Run under `make race`.
func TestServerConcurrentQueriesAndRefresh(t *testing.T) {
	srv, _, reg := startTestServer(t, 5)
	base := bottomCount(t, srv.URL)
	if base <= 0 {
		t.Fatalf("empty store (bottom count %d)", base)
	}

	queries := []string{
		`{}`,
		`{"cuboid":{"$j":"rigid"}}`,
		`{"cuboid":{"$y":"rigid","$j":"rigid"}}`,
		`{"cuboid":{"$au":"rigid"},"where":{"$au":"Author 1"}}`,
		`{"cuboid":{"$y":"rigid"},"where":{"$y":"1999"}}`,
		`{"cuboid":{"$au":"LND","$m":"LND","$y":"LND","$j":"LND"}}`,
	}
	const (
		queriers  = 6
		perWorker = 30
		refreshes = 4
		deltaSize = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, queriers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < refreshes; i++ {
			resp, err := http.Post(srv.URL+"/refresh", "application/xml",
				strings.NewReader(refreshBody(fmt.Sprintf("r%d", i), deltaSize)))
			if err != nil {
				errs <- err
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("refresh %d: HTTP %d: %s", i, resp.StatusCode, b)
				return
			}
			var out map[string]int64
			if err := json.Unmarshal(b, &out); err != nil {
				errs <- fmt.Errorf("refresh %d: %w (%s)", i, err, b)
				return
			}
			if out["added"] != deltaSize {
				errs <- fmt.Errorf("refresh %d added %d facts, want %d", i, out["added"], deltaSize)
				return
			}
		}
	}()

	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(q))
				if err != nil {
					errs <- err
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query %s: HTTP %d: %s", q, resp.StatusCode, b)
					return
				}
				var out serve.Response
				if err := json.Unmarshal(b, &out); err != nil {
					errs <- fmt.Errorf("query %s: %w (%s)", q, err, b)
					return
				}
				// A torn swap would show as a bottom total below the
				// pre-refresh baseline.
				if strings.Contains(q, `"$au":"LND","$m":"LND"`) || q == `{}` {
					var total int64
					for _, r := range out.Rows {
						total += r.Count
					}
					if total < base {
						errs <- fmt.Errorf("torn answer: bottom total %d below baseline %d", total, base)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := reg.Counter("serve.refresh.runs").Value(); got != refreshes {
		t.Fatalf("recorded %d refreshes, want %d", got, refreshes)
	}
	if got, want := bottomCount(t, srv.URL), base+refreshes*deltaSize; got != want {
		t.Fatalf("bottom count after refreshes = %d, want %d", got, want)
	}
}

func TestServerEndpoints(t *testing.T) {
	srv, store, _ := startTestServer(t, 0)

	// /cuboids reports every lattice point with its materialization state.
	resp, err := http.Get(srv.URL + "/cuboids")
	if err != nil {
		t.Fatal(err)
	}
	var cuboids []serve.CuboidStatus
	if err := json.NewDecoder(resp.Body).Decode(&cuboids); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cuboids) != store.Lattice().Size() {
		t.Fatalf("/cuboids listed %d rows, lattice has %d points", len(cuboids), store.Lattice().Size())
	}
	mat := 0
	for _, c := range cuboids {
		if c.Materialized {
			mat++
		}
	}
	if mat != len(store.Materialized()) {
		t.Fatalf("/cuboids marked %d materialized, store has %d", mat, len(store.Materialized()))
	}

	// /metrics returns the registry as JSON.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(metrics) == 0 {
		t.Error("/metrics empty after a build")
	}

	// Error paths: bad JSON, unknown axis, bad XML.
	if resp, b := postJSON(t, srv.URL+"/query", `{"cuboid":`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: HTTP %d: %s", resp.StatusCode, b)
	}
	if resp, b := postJSON(t, srv.URL+"/query", `{"cuboid":{"$nope":"LND"}}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown axis: HTTP %d: %s", resp.StatusCode, b)
	}
	if resp, b := postJSON(t, srv.URL+"/refresh", `<dblp`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad XML refresh: HTTP %d: %s", resp.StatusCode, b)
	}

	// An unseen where-value answers an empty row set, not an error.
	resp2, b := postJSON(t, srv.URL+"/query", `{"cuboid":{"$j":"rigid"},"where":{"$j":"No Such Journal"}}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("unseen value: HTTP %d: %s", resp2.StatusCode, b)
	}
	var out serve.Response
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 0 {
		t.Errorf("unseen value returned %d rows", len(out.Rows))
	}
}

// TestStructuredErrorsAndStatusSplit pins the wire error contract:
// {"error":..., "code":...} with 4xx for the caller's mistakes and 5xx
// for the server's.
func TestStructuredErrorsAndStatusSplit(t *testing.T) {
	srv, _, _ := startTestServer(t, 0)
	for _, tc := range []struct {
		body   string
		status int
		code   string
	}{
		{`{"cuboid":`, http.StatusBadRequest, "bad_request"},
		{`{"cuboid":{"$nope":"LND"}}`, http.StatusBadRequest, "bad_request"},
		{`{"cuboid":{"$j":"warp"}}`, http.StatusBadRequest, "bad_request"},
	} {
		resp, b := postJSON(t, srv.URL+"/query", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: HTTP %d, want %d", tc.body, resp.StatusCode, tc.status)
		}
		var e map[string]string
		if err := json.Unmarshal(b, &e); err != nil {
			t.Fatalf("%s: unstructured error body %q", tc.body, b)
		}
		if e["code"] != tc.code || e["error"] == "" {
			t.Errorf("%s: error body %v, want code %q", tc.body, e, tc.code)
		}
	}
}

// TestRequestDeadline pins the acceptance criterion: a request whose
// deadline has passed returns promptly with 504, not a hung connection.
func TestRequestDeadline(t *testing.T) {
	doc := dataset.DBLP(dataset.DefaultDBLPConfig(40, 7))
	lat, err := lattice.New(dataset.DBLPQuery())
	if err != nil {
		t.Fatal(err)
	}
	dicts := make([]*match.Dict, lat.NumAxes())
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	set, err := match.EvaluateWith(doc, lat, dicts)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	store, err := serve.Build(filepath.Join(t.TempDir(), "cube.x3ci"), lat, set,
		serve.Options{Registry: reg, BlockCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := httptest.NewServer(servehttp.New(store, reg, servehttp.Options{RequestTimeout: time.Nanosecond}))
	t.Cleanup(srv.Close)

	done := make(chan struct{})
	var status int
	var body []byte
	go func() {
		defer close(done)
		resp, b := postJSON(t, srv.URL+"/query", `{}`)
		status, body = resp.StatusCode, b
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("expired-deadline request did not return promptly")
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: HTTP %d (%s), want 504", status, body)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["code"] != "deadline" {
		t.Fatalf("expired deadline: body %s, want code \"deadline\"", body)
	}
}

// The load-shedding and panic-recovery middleware tests moved with the
// middleware itself into internal/servehttp.
