// Command x3serve materializes an X³ cube and serves point, slice and
// roll-up queries over HTTP from the indexed cell file, re-aggregating
// safe roll-ups from the cheapest materialized ancestor and falling back
// to base facts where summarizability does not hold.
//
// Usage:
//
//	x3serve -xml dblp.xml -queryfile q.xq -addr :8733
//	x3serve -xml dblp.xml -queryfile q.xq -views 5 -cells cube.x3ci
//	x3serve -xml dblp.xml -queryfile q.xq -store /var/lib/x3/dblp
//	x3serve -xml dblp.xml -queryfile q.xq -store /var/lib/x3/dblp -shards 4 -replicas 2
//	x3serve -bench -scale 200 -metrics BENCH_pr3.json
//	x3serve -bench-pr6 -scale 200 -metrics BENCH_pr6.json
//
// With -store DIR the cube lives as a delta-ladder store: a manifest of
// generation cell files plus a write-ahead log. Appends are fsynced to
// the log before they are served, flushed delta generations accumulate,
// and a background compactor merges them back into a single base file.
// If DIR already holds a manifest the store is recovered from it (the
// WAL replay rebuilds anything not yet flushed); otherwise it is built
// fresh from the -xml input.
//
// With -shards N (N > 1) the facts are partitioned by key hash into N
// replicated delta-ladder stores under DIR and every query is
// scatter-gathered across them with per-shard deadlines, failover and
// hedged requests. When every replica of a shard is unreachable the
// answer is marked partial and names the missing key range — it is
// never passed off as a total.
//
// Endpoints:
//
//	POST /query       {"cuboid":{"$a":"LND"},"where":{"$j":"tods"}} → rows
//	POST /refresh     XML document body → facts folded into the cube
//	POST /append      XML document body → WAL-durable incremental append
//	GET  /generations delta-ladder shape: outstanding deltas, memtable cells
//	GET  /cuboids     per-cuboid materialization state, query counts, and
//	                  (under -space-budget) the cost model's decisions
//	GET  /metrics     serve.* counters, cache hit rates, latency timers
//	GET  /topology    sharded mode: per-shard key ranges and replica health
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"x3/internal/admit"
	"x3/internal/cube"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/schema"
	"x3/internal/serve"
	"x3/internal/servehttp"
	"x3/internal/shard"
	"x3/internal/xmltree"
	"x3/internal/xq"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("x3serve: ")
	var (
		xmlPath   = flag.String("xml", "", "XML input file")
		queryText = flag.String("query", "", "X³ query text")
		queryFile = flag.String("queryfile", "", "file containing the X³ query")
		dtdFile   = flag.String("dtdfile", "", "DTD certifying summarizability (default: measure from data)")
		algorithm = flag.String("algorithm", "COUNTER", "cube algorithm for the initial build")
		views     = flag.Int("views", 0, "materialize only the top-k cuboids by greedy view selection (0 = all)")
		budget    = flag.Int64("space-budget", 0, "materialize only the cuboids the cost model picks within this many encoded bytes (0 = no budget; overrides -views)")
		cellsPath = flag.String("cells", "", "indexed cell file path (default: a temp file)")
		storeDir  = flag.String("store", "", "delta-ladder store directory (existing manifest → recover, else build); enables /append")

		shards        = flag.Int("shards", 1, "partition facts across this many shards, each a replicated delta-ladder store (requires -store; 1 = single node)")
		replicas      = flag.Int("replicas", 2, "replicas per shard when -shards > 1")
		shardDeadline = flag.Duration("shard-deadline", 0, "per-shard scatter deadline (0 = default)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "fixed hedged-request delay per shard (0 = adapt from the shard's observed p99)")
		probeEvery    = flag.Int("probe-every", 0, "probe down replicas for re-admission every Nth query to their shard (0 = default, negative = never)")
		downAfter     = flag.Int("down-after", 0, "consecutive replica failures before failover stops trying it first (0 = default)")

		flushN   = flag.Int("flush-cells", 0, "memtable cells that trigger an automatic flush (0 = default, negative = manual only)")
		compactN = flag.Int("compact-after", 0, "outstanding deltas that trigger background compaction (0 = default, negative = manual only)")
		addr     = flag.String("addr", ":8733", "HTTP listen address")
		cache    = flag.Int("cache", 64, "LRU block cache size in nominal blocks (negative disables)")
		cacheB   = flag.Int64("cache-bytes", 0, "LRU block cache budget in encoded block bytes (0 = use -cache)")
		bench    = flag.Bool("bench", false, "run the serve-latency benchmark (cold scan vs indexed vs cached) and exit")
		benchPR6 = flag.Bool("bench-pr6", false, "run the incremental-maintenance benchmark (append throughput, delta-ladder query latency, compaction) and exit")
		benchPR7 = flag.Bool("bench-pr7", false, "run the columnar-format benchmark (v3 vs v4 bytes/cell, cached/indexed/ladder latency, budgeted build) and exit")
		scale    = flag.Int("scale", 200, "benchmark dataset size in DBLP articles")
		metrics  = flag.String("metrics", "", "write metrics as JSON here")

		maxInFlight     = flag.Int("max-inflight", 64, "max concurrently executing requests; excess load is shed with 503 (0 disables)")
		backgroundMax   = flag.Int("background-max", 0, "max concurrently executing background requests (/append, /refresh); 0 = half of -max-inflight, negative = uncapped")
		tenantRate      = flag.Float64("tenant-rate", 0, "per-tenant request quota in req/s (X3-Tenant header); over-quota tenants get 429 + Retry-After (0 disables quotas)")
		tenantBurst     = flag.Float64("tenant-burst", 0, "per-tenant token-bucket burst capacity (0 = one second of -tenant-rate)")
		requestTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline; expired requests are cancelled (0 disables)")
		readTimeout     = flag.Duration("read-timeout", 2*time.Minute, "http.Server read timeout")
		writeTimeout    = flag.Duration("write-timeout", 2*time.Minute, "http.Server write timeout")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain deadline on SIGINT/SIGTERM")
	)
	flag.Parse()

	reg := obs.New()
	if *bench {
		if err := runBench(*scale, *metrics, reg); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchPR6 {
		if err := runBenchPR6(*scale, *metrics, reg); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchPR7 {
		if err := runBenchPR7(*scale, *metrics, reg); err != nil {
			log.Fatal(err)
		}
		return
	}

	lat, set, props, err := buildInputs(*xmlPath, *queryText, *queryFile, *dtdFile)
	if err != nil {
		log.Fatal(err)
	}
	opt := serve.Options{
		Algorithm:    *algorithm,
		Views:        *views,
		SpaceBudget:  *budget,
		CacheBlocks:  *cache,
		CacheBytes:   *cacheB,
		Props:        props,
		Registry:     reg,
		FlushCells:   *flushN,
		CompactAfter: *compactN,
	}
	var store backend
	if *shards > 1 {
		// Sharded mode: facts are partitioned by key hash across N
		// replicated delta-ladder stores under -store DIR, and the
		// coordinator scatter-gathers every query with failover and
		// hedging. An existing topology on disk is recovered.
		if *storeDir == "" {
			log.Fatal("-shards > 1 needs -store DIR (each shard is a replicated delta-ladder store)")
		}
		sopt := shard.Options{
			Shards: *shards, Replicas: *replicas,
			ShardDeadline: *shardDeadline, HedgeAfter: *hedgeAfter,
			ProbeEvery: *probeEvery, DownAfter: *downAfter,
			Registry: reg, Store: opt,
		}
		var coord *shard.Coordinator
		if shard.IsBuilt(*storeDir) {
			coord, err = shard.Open(*storeDir, lat, set, sopt)
			if err == nil {
				fmt.Fprintf(os.Stderr, "x3serve: recovered %d-shard topology at %s\n", coord.Shards(), *storeDir)
			}
		} else {
			coord, err = shard.New(*storeDir, lat, set, sopt)
		}
		store = coord
	} else if *storeDir != "" {
		// Delta-ladder mode: a manifest already in the directory means a
		// previous run's state — recover it (manifest + WAL replay) rather
		// than rebuild.
		if _, serr := os.Stat(filepath.Join(*storeDir, "MANIFEST.json")); serr == nil {
			var ls *serve.Store
			ls, err = serve.OpenDir(*storeDir, lat, set, opt)
			if err == nil {
				fmt.Fprintf(os.Stderr, "x3serve: recovered store %s (next WAL seq %d)\n", *storeDir, ls.NextSeq())
			}
			store = ls
		} else {
			store, err = serve.BuildDir(*storeDir, lat, set, opt)
		}
	} else {
		path := *cellsPath
		if path == "" {
			dir, err := os.MkdirTemp("", "x3serve")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(dir)
			path = filepath.Join(dir, "cube.x3ci")
		}
		store, err = serve.Build(path, lat, set, opt)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	// The background compactor is a no-op for single-file stores; for
	// ladder stores each flush that crosses the threshold signals it.
	compactCtx, stopCompact := context.WithCancel(context.Background())
	defer stopCompact()
	go store.CompactLoop(compactCtx)
	for _, mc := range store.Materialized() {
		fmt.Fprintf(os.Stderr, "x3serve: materialized %-50s %8d cells\n", mc.Label, mc.Cells)
	}
	fmt.Fprintf(os.Stderr, "x3serve: %d facts, %d/%d cuboids materialized, listening on %s\n",
		store.NumFacts(), len(store.Materialized()), lat.Size(), *addr)

	// Admission control subsumes the flat -max-inflight shedding: the
	// controller sheds saturation with 503 exactly as before, and layers
	// per-tenant 429 quotas plus the background sub-limit on top.
	var ctrl *admit.Controller
	if *maxInFlight > 0 || *tenantRate > 0 {
		ctrl = admit.New(admit.Config{
			MaxInFlight:   *maxInFlight,
			BackgroundMax: *backgroundMax,
			Rate:          *tenantRate,
			Burst:         *tenantBurst,
			Registry:      reg,
		})
	}
	srv := &http.Server{
		Addr: *addr,
		Handler: servehttp.New(store, reg, servehttp.Options{
			Admission:      ctrl,
			RequestTimeout: *requestTimeout,
		}),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case s := <-sig:
		// Graceful shutdown: stop accepting, drain in-flight requests up
		// to the deadline, then exit. The store closes via the defer.
		fmt.Fprintf(os.Stderr, "x3serve: %v — draining (up to %v)\n", s, *shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
	}
}

// backend is the serving surface main drives: a single-node serve.Store
// or a sharded shard.Coordinator, both of which speak servehttp.Backend
// plus the lifecycle and introspection methods the startup banner needs.
type backend interface {
	servehttp.Backend
	Materialized() []serve.MaterializedCuboid
	NumFacts() int
	CompactLoop(ctx context.Context)
	Close() error
}

// buildInputs parses the document and query and evaluates the match phase.
func buildInputs(xmlPath, queryText, queryFile, dtdFile string) (*lattice.Lattice, *match.Set, cube.Props, error) {
	if xmlPath == "" {
		return nil, nil, nil, fmt.Errorf("need -xml (or -bench)")
	}
	qt := queryText
	if queryFile != "" {
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return nil, nil, nil, err
		}
		qt = string(b)
	}
	if qt == "" {
		return nil, nil, nil, fmt.Errorf("need -query or -queryfile")
	}
	spec, err := xq.Parse(qt)
	if err != nil {
		return nil, nil, nil, err
	}
	lat, err := lattice.New(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	f, err := os.Open(xmlPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	doc, err := xmltree.Parse(f)
	if err != nil {
		return nil, nil, nil, err
	}
	dicts := make([]*match.Dict, lat.NumAxes())
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	set, err := match.EvaluateWith(doc, lat, dicts)
	if err != nil {
		return nil, nil, nil, err
	}
	var props cube.Props
	if dtdFile != "" {
		b, err := os.ReadFile(dtdFile)
		if err != nil {
			return nil, nil, nil, err
		}
		d, err := schema.Parse(string(b))
		if err != nil {
			return nil, nil, nil, err
		}
		props, err = schema.Infer(d, lat)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return lat, set, props, nil
}
