package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"x3/internal/cellfile"
	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/serve"
	"x3/internal/xmltree"
)

// docToBytes serializes a generated document the way /append receives it.
func docToBytes(doc *xmltree.Document) ([]byte, error) {
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// pr7DeltaSteps are the outstanding-delta counts for the v4 ladder query
// table (a coarser ladder than pr6 — the point here is v4 scan cost, not
// the ladder growth curve).
var pr7DeltaSteps = []int{0, 8, 16}

// runBenchPR7 measures what the columnar (v4) cell format and the
// cost-based partial materialization buy:
//
//	bench.pr7.v3.bytes / v3.cells     — the same cube encoded per-cell (v3)
//	bench.pr7.v4.bytes / v4.cells     — and columnar (v4): bytes per cell
//	bench.pr7.build.full              — unbudgeted single-file build time
//	bench.pr7.build.budget            — build under a 50% space budget
//	bench.pr7.budget.kept             — cuboids the cost model kept
//	bench.pr7.query.indexed           — full-lattice sweep, cache disabled
//	bench.pr7.query.cached            — same sweep, warm byte-budget cache
//	bench.pr7.query.N                 — sweep with N delta generations
//	                                    outstanding (N in 0,8,16)
func runBenchPR7(scale int, metricsPath string, reg *obs.Registry) error {
	lat, err := lattice.New(dataset.DBLPQuery())
	if err != nil {
		return err
	}
	baseDoc := dataset.DBLP(dataset.DefaultDBLPConfig(scale, 1))
	dicts := make([]*match.Dict, lat.NumAxes())
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	set, err := match.EvaluateWith(baseDoc, lat, dicts)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "x3serve-bench-pr7")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	points := lat.Points()

	// Full build (v4 is the default format) and the format-size table: the
	// same cells re-encoded per-cell (v3) against the columnar blocks the
	// store actually wrote.
	start := time.Now()
	s, err := serve.Build(filepath.Join(dir, "full.x3ci"), lat, set, serve.Options{Registry: reg, CacheBlocks: -1})
	if err != nil {
		return err
	}
	reg.Timer("bench.pr7.build.full").Observe(time.Since(start))

	var cells []cellfile.Cell
	if err := cellfile.Each(filepath.Join(dir, "full.x3ci"), func(c cellfile.Cell) error {
		cells = append(cells, c)
		return nil
	}); err != nil {
		return err
	}
	v3Path := filepath.Join(dir, "v3.x3ci")
	sink := cellfile.CreateIndexed(v3Path)
	sink.Version = 3
	for _, c := range cells {
		if err := sink.Cell(c.Point, c.Key, c.State); err != nil {
			return err
		}
	}
	if err := sink.Close(); err != nil {
		return err
	}
	v3, err := cellfile.OpenIndexed(v3Path)
	if err != nil {
		return err
	}
	v3Bytes, v3Cells := v3.DataBytes(), v3.NumCells()
	v3.Close()
	v4Bytes, v4Cells := s.DataBytes(), int64(len(cells))
	reg.Counter("bench.pr7.v3.bytes").Add(v3Bytes)
	reg.Counter("bench.pr7.v3.cells").Add(v3Cells)
	reg.Counter("bench.pr7.v4.bytes").Add(v4Bytes)
	reg.Counter("bench.pr7.v4.cells").Add(v4Cells)

	// The read-latency pair, measured exactly as BENCH_pr3's indexed and
	// cached sweeps were (a per-cuboid EachCuboid over the reader, cold
	// cache then warm) so the v4 numbers compare against that baseline
	// directly — only the file format and the byte-budget cache changed.
	r, err := cellfile.OpenIndexed(s.Path())
	if err != nil {
		return err
	}
	r.Observe(reg)
	r.SetCache(cellfile.NewBlockCacheBytes(64 << 20))
	for _, name := range []string{"indexed", "cached"} {
		t := reg.Timer("bench.pr7.query." + name)
		for _, p := range points {
			t0 := time.Now()
			if err := r.EachCuboid(lat.ID(p), func(cellfile.Cell) error { return nil }); err != nil {
				return err
			}
			t.Observe(time.Since(t0))
		}
	}
	r.Close()
	s.Close()

	// Budgeted build: half the full store's encoded bytes.
	start = time.Now()
	sb, err := serve.Build(filepath.Join(dir, "budget.x3ci"), lat, set,
		serve.Options{Registry: reg, SpaceBudget: v4Bytes / 2, CacheBlocks: -1})
	if err != nil {
		return err
	}
	reg.Timer("bench.pr7.build.budget").Observe(time.Since(start))
	kept := int64(len(sb.Materialized()))
	reg.Counter("bench.pr7.budget.kept").Add(kept)
	reg.Counter("bench.pr7.budget.bytes").Add(sb.DataBytes())
	sb.Close()

	// Ladder sweeps at 0/8/16 outstanding v4 delta generations.
	ldir := filepath.Join(dir, "ladder")
	ls, err := serve.BuildDir(ldir, lat, set, serve.Options{
		Registry: reg, CacheBytes: 64 << 20, FlushCells: -1, CompactAfter: -1,
	})
	if err != nil {
		return err
	}
	defer ls.Close()
	appendSize := scale / 8
	if appendSize < 5 {
		appendSize = 5
	}
	nextSeed := int64(100)
	for _, want := range pr7DeltaSteps {
		for deltas, _ := ls.Generations(); deltas < want; deltas, _ = ls.Generations() {
			cfg := dataset.DefaultDBLPConfig(appendSize, nextSeed)
			nextSeed++
			body, err := docToBytes(dataset.DBLP(cfg))
			if err != nil {
				return err
			}
			if _, err := ls.Append(ctx, body); err != nil {
				return err
			}
			if err := ls.Flush(ctx); err != nil {
				return err
			}
		}
		t := reg.Timer("bench.pr7.query." + strconv.Itoa(want))
		for sweep := 0; sweep < benchSweeps; sweep++ {
			for _, p := range points {
				t0 := time.Now()
				if _, err := ls.Answer(ctx, serve.Query{Point: p}); err != nil {
					return err
				}
				t.Observe(time.Since(t0))
			}
		}
	}

	fmt.Fprintf(os.Stderr, "x3serve: pr7 bench over %d articles, %d cuboids, %d cells\n", scale, lat.Size(), v4Cells)
	fmt.Fprintf(os.Stderr, "  v3        %8.2f bytes/cell (%d bytes)\n", float64(v3Bytes)/float64(v3Cells), v3Bytes)
	fmt.Fprintf(os.Stderr, "  v4        %8.2f bytes/cell (%d bytes, %.2fx smaller)\n",
		float64(v4Bytes)/float64(v4Cells), v4Bytes, float64(v3Bytes)/float64(v4Bytes))
	fmt.Fprintf(os.Stderr, "  build     full %v, budgeted %v (%d/%d cuboids kept)\n",
		reg.Timer("bench.pr7.build.full").Total(), reg.Timer("bench.pr7.build.budget").Total(), kept, lat.Size())
	for _, name := range []string{"indexed", "cached"} {
		t := reg.Timer("bench.pr7.query." + name)
		fmt.Fprintf(os.Stderr, "  %-9s %12v / query\n", name, t.Total()/time.Duration(int64(len(points))))
	}
	n := int64(len(points) * benchSweeps)
	for _, want := range pr7DeltaSteps {
		t := reg.Timer("bench.pr7.query." + strconv.Itoa(want))
		fmt.Fprintf(os.Stderr, "  query@%-3d %12v / query\n", want, t.Total()/time.Duration(n))
	}
	if metricsPath != "" {
		if err := reg.WriteJSONFile(metricsPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "x3serve: metrics written to %s\n", metricsPath)
	}
	return nil
}
