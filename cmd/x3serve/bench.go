package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"x3/internal/cellfile"
	"x3/internal/cube"
	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/serve"
)

// runBench measures serve latency for one full-lattice sweep of cuboid
// slice queries under three read strategies over the same cube:
//
//	coldscan — the v1 streaming file: every query scans the whole file
//	           and filters for its cuboid (the pre-index baseline)
//	indexed  — the v2 indexed store with a cold block cache: a seek and
//	           a bounded scan per query
//	cached   — the same store with the block cache warm
//
// Timers land in bench.serve.{coldscan,indexed,cached}; the serve.*
// counters of the sweep (scan cells, cache hits/misses) ride along.
func runBench(scale int, metricsPath string, reg *obs.Registry) error {
	doc := dataset.DBLP(dataset.DefaultDBLPConfig(scale, 1))
	lat, err := lattice.New(dataset.DBLPQuery())
	if err != nil {
		return err
	}
	dicts := make([]*match.Dict, lat.NumAxes())
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	set, err := match.EvaluateWith(doc, lat, dicts)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "x3serve-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// The pre-index baseline: the same cube as a v1 streaming file.
	v1 := filepath.Join(dir, "cube.x3cf")
	sink, err := cellfile.Create(v1)
	if err != nil {
		return err
	}
	in := &cube.Input{Lattice: lat, Source: set, Dicts: set.Dicts}
	if _, err := (cube.Counter{}).Run(in, sink); err != nil {
		return err
	}
	if err := sink.Close(); err != nil {
		return err
	}

	// The serving store; its planner sweep fills the serve.* counters and
	// the serve.answer timer.
	s, err := serve.Build(filepath.Join(dir, "cube.x3ci"), lat, set,
		serve.Options{Registry: reg, CacheBlocks: 1 << 16})
	if err != nil {
		return err
	}
	defer s.Close()
	points := lat.Points()
	for _, p := range points {
		if _, err := s.Answer(context.Background(), serve.Query{Point: p}); err != nil {
			return err
		}
	}

	// The read-latency table: fetching one cuboid's cells under each
	// strategy. This is the part the index and the cache change; the
	// aggregation on top is common to all three.
	cold := reg.Timer("bench.serve.coldscan")
	for _, p := range points {
		pid := lat.ID(p)
		start := time.Now()
		var rows int
		err := cellfile.Each(v1, func(c cellfile.Cell) error {
			if c.Point == pid {
				rows++
			}
			return nil
		})
		if err != nil {
			return err
		}
		cold.Observe(time.Since(start))
	}
	r, err := cellfile.OpenIndexed(s.Path())
	if err != nil {
		return err
	}
	defer r.Close()
	r.Observe(reg)
	r.SetCache(cellfile.NewBlockCache(1 << 16))
	// The first sweep runs against a cold cache, the second fully warm.
	for _, name := range []string{"indexed", "cached"} {
		t := reg.Timer("bench.serve." + name)
		for _, p := range points {
			start := time.Now()
			if err := r.EachCuboid(lat.ID(p), func(cellfile.Cell) error { return nil }); err != nil {
				return err
			}
			t.Observe(time.Since(start))
		}
	}

	fmt.Fprintf(os.Stderr, "x3serve: bench over %d articles, %d facts, %d cuboids\n",
		scale, set.NumFacts(), lat.Size())
	n := int64(len(points))
	for _, name := range []string{"coldscan", "indexed", "cached"} {
		t := reg.Timer("bench.serve." + name)
		fmt.Fprintf(os.Stderr, "  %-9s %12v / query\n", name, t.Total()/time.Duration(n))
	}
	fmt.Fprintf(os.Stderr, "  cache: %d hits, %d misses; scanned %d cells over %d queries\n",
		reg.Counter("serve.cache.hits").Value(), reg.Counter("serve.cache.misses").Value(),
		reg.Counter("serve.scan.cells").Value(), reg.Counter("serve.queries").Value())
	if metricsPath != "" {
		if err := reg.WriteJSONFile(metricsPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "x3serve: metrics written to %s\n", metricsPath)
	}
	return nil
}
