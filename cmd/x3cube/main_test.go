package main

import "testing"

func TestParseCuboidSpec(t *testing.T) {
	got, err := parseCuboidSpec("$n=rigid,$y=LND")
	if err != nil {
		t.Fatal(err)
	}
	if got["$n"] != "rigid" || got["$y"] != "LND" || len(got) != 2 {
		t.Fatalf("spec = %v", got)
	}
	// Tolerates stray commas.
	got, err = parseCuboidSpec(",$n=SP,")
	if err != nil || got["$n"] != "SP" {
		t.Fatalf("spec = %v, %v", got, err)
	}
	for _, bad := range []string{"$n", "=rigid", "$n=", "$n==x=y"} {
		if _, err := parseCuboidSpec(bad); err == nil && bad != "$n==x=y" {
			t.Errorf("parseCuboidSpec(%q): want error", bad)
		}
	}
}

func TestSplitNonEmpty(t *testing.T) {
	got := splitNonEmpty("a,,b,c,", ',')
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("split = %v", got)
	}
	if got := splitNonEmpty("", ','); len(got) != 0 {
		t.Fatalf("split empty = %v", got)
	}
}
