// Command x3cube runs an X³ cube query over an XML file or a paged store.
//
// Usage:
//
//	x3cube -xml books.xml -queryfile q.xq
//	x3cube -xml books.xml -query 'for $b in ... return COUNT($b)' -algorithm BUC -csv out.csv
//	x3cube -xml big.xml -save big.x3st            # persist a store
//	x3cube -store big.x3st -queryfile q.xq        # query the store
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"x3"
	"x3/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("x3cube: ")
	var (
		xmlPath   = flag.String("xml", "", "XML input file")
		storePath = flag.String("store", "", "paged store input file (alternative to -xml)")
		savePath  = flag.String("save", "", "persist the XML input as a paged store and exit")
		queryText = flag.String("query", "", "X³ query text")
		queryFile = flag.String("queryfile", "", "file containing the X³ query")
		algorithm = flag.String("algorithm", "COUNTER", "cube algorithm (see -list)")
		budget    = flag.Int64("budget", 0, "memory budget in bytes (0 = unlimited)")
		dtdFile   = flag.String("dtdfile", "", "DTD for schema-driven CUST optimization")
		csvPath   = flag.String("csv", "", "write all cube cells as CSV here")
		cellsPath = flag.String("cells", "", "stream all cube cells to a binary cell file here (never collects the cube in memory)")
		cuboid    = flag.String("cuboid", "", `print one cuboid, e.g. '$n=rigid,$y=LND'`)
		lattice   = flag.Bool("lattice", false, "print the query's relaxed-cube lattice (Fig. 3 style) and exit")
		list      = flag.Bool("list", false, "list algorithms and exit")
		poolPages = flag.Int("pool", 0, "store buffer pool pages (0 = default)")
		metrics   = flag.String("metrics", "", "write pipeline metrics as JSON here")
		workers   = flag.Int("workers", 0, "worker fan-out for parallel algorithms and sorts (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, a := range x3.Algorithms() {
			fmt.Println(a)
		}
		return
	}

	var (
		db  *x3.Database
		err error
	)
	switch {
	case *xmlPath != "":
		db, err = x3.LoadXMLFile(*xmlPath)
	case *storePath != "":
		db, err = x3.OpenStore(*storePath, *poolPages)
	default:
		log.Fatal("need -xml or -store")
	}
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if *savePath != "" {
		if err := db.Save(*savePath); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "x3cube: saved %d nodes to %s\n", db.NumNodes(), *savePath)
		return
	}

	qt := *queryText
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		qt = string(b)
	}
	if qt == "" {
		log.Fatal("need -query or -queryfile")
	}
	q, err := x3.ParseQuery(qt)
	if err != nil {
		log.Fatal(err)
	}
	if *lattice {
		fmt.Printf("%d cuboids:\n%s", q.NumCuboids(), q.LatticeSketch())
		return
	}

	opts := []x3.Option{x3.WithAlgorithm(*algorithm), x3.WithMemoryBudget(*budget), x3.WithWorkers(*workers)}
	if *dtdFile != "" {
		b, err := os.ReadFile(*dtdFile)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, x3.WithDTD(string(b)))
	}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.New()
		opts = append(opts, x3.WithRegistry(reg))
	}
	writeMetrics := func() {
		if *metrics == "" {
			return
		}
		if err := reg.WriteJSONFile(*metrics); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "x3cube: metrics written to %s\n", *metrics)
	}
	if *cellsPath != "" {
		cells, st, err := db.CubeToFile(q, *cellsPath, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "x3cube: %s: %d cells streamed to %s (passes=%d sorts=%d external=%d)\n",
			*algorithm, cells, *cellsPath, st.Passes, st.Sorts, st.ExternalSorts)
		writeMetrics()
		return
	}
	res, err := db.Cube(q, opts...)
	if err != nil {
		log.Fatal(err)
	}
	writeMetrics()

	st := res.Stats()
	fmt.Fprintf(os.Stderr,
		"x3cube: %s: %d facts, %d cuboids, %d cells (passes=%d sorts=%d external=%d)\n",
		*algorithm, res.NumFacts(), q.NumCuboids(), res.TotalCells(),
		st.Passes, st.Sorts, st.ExternalSorts)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *cuboid != "" {
		states, err := parseCuboidSpec(*cuboid)
		if err != nil {
			log.Fatal(err)
		}
		c, err := res.Cuboid(states)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cuboid %s (%d groups)\n", c.Label(), c.Size())
		for _, row := range c.Rows() {
			fmt.Printf("  %v -> %g\n", row.Values, row.Value)
		}
	}
	if *csvPath == "" && *cuboid == "" {
		// Default: print the grand total and per-cuboid sizes.
		if err := res.EachCuboid(func(c *x3.Cuboid) error {
			fmt.Printf("%-60s %8d groups\n", c.Label(), c.Size())
			return nil
		}); err != nil {
			log.Fatal(err)
		}
	}
}

// parseCuboidSpec parses "$n=rigid,$y=LND" into a state map.
func parseCuboidSpec(s string) (map[string]string, error) {
	out := map[string]string{}
	for _, part := range splitNonEmpty(s, ',') {
		eq := -1
		for i := range part {
			if part[i] == '=' {
				eq = i
				break
			}
		}
		if eq <= 0 || eq == len(part)-1 {
			return nil, fmt.Errorf("bad cuboid spec element %q (want $var=state)", part)
		}
		out[part[:eq]] = part[eq+1:]
	}
	return out, nil
}

func splitNonEmpty(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
