package x3

import "testing"

// TestPredicatedFactPath restricts facts with an existence predicate in
// the FOR clause: only publications with a direct publisher child are
// cubed.
func TestPredicatedFactPath(t *testing.T) {
	db, err := LoadXMLString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`
for $b in doc("book.xml")//publication[publisher],
    $y in $b/year
x^3 $b/@id by $y (LND)
return COUNT($b)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	// Publications 1 and 2 qualify (3 has no publisher, 4's is nested).
	if res.NumFacts() != 2 {
		t.Fatalf("facts = %d, want 2", res.NumFacts())
	}
	c, err := res.Cuboid(map[string]string{"$y": "rigid"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		year string
		n    float64
	}{{"2003", 1}, {"2004", 1}, {"2005", 1}} {
		if v, ok := c.Get(want.year); !ok || v != want.n {
			t.Errorf("%s = %v, %v; want %v", want.year, v, ok, want.n)
		}
	}
}

// TestPredicatedAxisPath uses a predicate on a grouping axis: group by the
// names of authors that carry an @id.
func TestPredicatedAxisPath(t *testing.T) {
	db, err := LoadXMLString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`
for $b in doc("book.xml")//publication,
    $n in $b/author[@id]/name
x^3 $b/@id by $n (LND, SP, PC-AD)
return COUNT($b)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	c, err := res.Cuboid(map[string]string{"$n": "rigid"})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get("John"); !ok || v != 1 {
		t.Errorf("rigid John = %v, %v", v, ok)
	}
	// The store-backed path agrees.
	path := t.TempDir() + "/preds.x3st"
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	sdb, err := OpenStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	res2, err := sdb.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalCells() != res.TotalCells() {
		t.Errorf("store-backed predicated cube cells %d vs %d", res2.TotalCells(), res.TotalCells())
	}
}
