package x3

import (
	"path/filepath"
	"strings"
	"testing"

	"x3/internal/obs"
)

// TestCubeWithRegistryInMemory: a Cube call with a registry attached must
// report the match phase, the algorithm's run and its span — and produce
// the exact same cube as an unobserved call.
func TestCubeWithRegistryInMemory(t *testing.T) {
	db, err := LoadXMLString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(query1)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	res, err := db.Cube(q, WithAlgorithm("TD"), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := db.Cube(q, WithAlgorithm("TD"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCells() != plain.TotalCells() {
		t.Errorf("observed run: %d cells, unobserved: %d", res.TotalCells(), plain.TotalCells())
	}

	snap := reg.Snapshot()
	c := snap.Counters
	if c["match.facts"] != 4 {
		t.Errorf("match.facts = %d, want 4", c["match.facts"])
	}
	if c["cube.td.runs"] != 1 {
		t.Errorf("cube.td.runs = %d, want 1", c["cube.td.runs"])
	}
	if c["cube.td.cells"] != res.TotalCells() {
		t.Errorf("cube.td.cells = %d, want %d", c["cube.td.cells"], res.TotalCells())
	}
	if c["extsort.sorts"] == 0 {
		t.Error("TD ran no observed sorts")
	}
	if c["extsort.rows.sorted"] != c["cube.td.rows.sorted"] {
		t.Errorf("extsort.rows.sorted (%d) != cube.td.rows.sorted (%d)",
			c["extsort.rows.sorted"], c["cube.td.rows.sorted"])
	}
	var names []string
	for _, s := range snap.Spans {
		names = append(names, s.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "match") || !strings.Contains(joined, "cube.td") {
		t.Errorf("spans = %v, want match and cube.td", names)
	}
}

// TestCubeWithRegistryOverStore: the store-backed path must additionally
// surface buffer-pool and structural-join traffic.
func TestCubeWithRegistryOverStore(t *testing.T) {
	db, err := LoadXMLString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.x3st")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	sdb, err := OpenStore(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()

	q, err := ParseQuery(query1)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	res, err := sdb.Cube(q, WithAlgorithm("BUC"), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := db.Cube(q, WithAlgorithm("BUC"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCells() != plain.TotalCells() {
		t.Errorf("store-backed observed run: %d cells, in-memory: %d", res.TotalCells(), plain.TotalCells())
	}
	c := reg.Snapshot().Counters
	if c["store.pool.lookups"] == 0 {
		t.Error("no buffer pool lookups recorded")
	}
	if c["store.pool.hits"]+c["store.pool.misses"] != c["store.pool.lookups"] {
		t.Errorf("pool identity broken: hits=%d misses=%d lookups=%d",
			c["store.pool.hits"], c["store.pool.misses"], c["store.pool.lookups"])
	}
	if c["sjoin.joins"] == 0 || c["sjoin.elements.scanned"] == 0 {
		t.Errorf("no structural join activity: joins=%d scanned=%d",
			c["sjoin.joins"], c["sjoin.elements.scanned"])
	}
	if c["match.facts"] != 4 {
		t.Errorf("match.facts = %d, want 4", c["match.facts"])
	}
	if c["cube.buc.runs"] != 1 {
		t.Errorf("cube.buc.runs = %d, want 1", c["cube.buc.runs"])
	}
}
