package x3

import (
	"path/filepath"
	"testing"

	"x3/internal/cellfile"
)

func TestCubeToFile(t *testing.T) {
	db, q := loadPaper(t)
	want, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cube.x3cf")
	cells, stats, err := db.CubeToFile(q, path, WithAlgorithm("BUC"))
	if err != nil {
		t.Fatal(err)
	}
	if cells != want.TotalCells() {
		t.Fatalf("file cells = %d, want %d", cells, want.TotalCells())
	}
	if stats.Algorithm != "BUC" {
		t.Errorf("stats algorithm = %s", stats.Algorithm)
	}
	// The file's contents aggregate to the same totals.
	var sum float64
	var n int64
	err = cellfile.Each(path, func(c cellfile.Cell) error {
		n++
		sum += c.State.Sum
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != cells {
		t.Fatalf("read back %d cells, wrote %d", n, cells)
	}
	if sum <= 0 {
		t.Fatalf("aggregate sum = %v", sum)
	}
}

func TestCubeToFileBadAlgorithm(t *testing.T) {
	db, q := loadPaper(t)
	if _, _, err := db.CubeToFile(q, filepath.Join(t.TempDir(), "x"), WithAlgorithm("NOPE")); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCubeToFileBadPath(t *testing.T) {
	db, q := loadPaper(t)
	if _, _, err := db.CubeToFile(q, "/nonexistent-dir/x.x3cf"); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestCubeToIndexedFile(t *testing.T) {
	db, q := loadPaper(t)
	want, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cube.x3ci")
	cells, stats, err := db.CubeToIndexedFile(q, path, WithAlgorithm("BUC"))
	if err != nil {
		t.Fatal(err)
	}
	if cells != want.TotalCells() {
		t.Fatalf("indexed file cells = %d, want %d", cells, want.TotalCells())
	}
	if stats.Algorithm != "BUC" {
		t.Errorf("stats algorithm = %s", stats.Algorithm)
	}
	// The indexed reader serves per-cuboid slices that sum to the whole.
	r, err := cellfile.OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var viaCuboids int64
	for _, pid := range r.Points() {
		if err := r.EachCuboid(pid, func(cellfile.Cell) error { viaCuboids++; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if viaCuboids != cells {
		t.Fatalf("cuboid slices yield %d cells, wrote %d", viaCuboids, cells)
	}
	// The version-dispatching Each reads v2 files transparently.
	var viaEach int64
	if err := cellfile.Each(path, func(cellfile.Cell) error { viaEach++; return nil }); err != nil {
		t.Fatal(err)
	}
	if viaEach != cells {
		t.Fatalf("Each read %d cells, wrote %d", viaEach, cells)
	}
}

func TestCubeToIndexedFileBadAlgorithm(t *testing.T) {
	db, q := loadPaper(t)
	if _, _, err := db.CubeToIndexedFile(q, filepath.Join(t.TempDir(), "x"), WithAlgorithm("NOPE")); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
