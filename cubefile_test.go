package x3

import (
	"path/filepath"
	"testing"

	"x3/internal/cellfile"
)

func TestCubeToFile(t *testing.T) {
	db, q := loadPaper(t)
	want, err := db.Cube(q)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cube.x3cf")
	cells, stats, err := db.CubeToFile(q, path, WithAlgorithm("BUC"))
	if err != nil {
		t.Fatal(err)
	}
	if cells != want.TotalCells() {
		t.Fatalf("file cells = %d, want %d", cells, want.TotalCells())
	}
	if stats.Algorithm != "BUC" {
		t.Errorf("stats algorithm = %s", stats.Algorithm)
	}
	// The file's contents aggregate to the same totals.
	var sum float64
	var n int64
	err = cellfile.Each(path, func(c cellfile.Cell) error {
		n++
		sum += c.State.Sum
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != cells {
		t.Fatalf("read back %d cells, wrote %d", n, cells)
	}
	if sum <= 0 {
		t.Fatalf("aggregate sum = %v", sum)
	}
}

func TestCubeToFileBadAlgorithm(t *testing.T) {
	db, q := loadPaper(t)
	if _, _, err := db.CubeToFile(q, filepath.Join(t.TempDir(), "x"), WithAlgorithm("NOPE")); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCubeToFileBadPath(t *testing.T) {
	db, q := loadPaper(t)
	if _, _, err := db.CubeToFile(q, "/nonexistent-dir/x.x3cf"); err == nil {
		t.Error("unwritable path accepted")
	}
}
