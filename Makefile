# Tier-1 verification targets. `make ci` is the full gate.

GO ?= go

.PHONY: ci vet build test race fuzz bench-seed

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent pieces — BUCPAR's worker pool and LockedSink, the sjoin
# evaluator over the shared buffer pool — under the race detector.
race:
	$(GO) test -race ./internal/cube/... ./internal/sjoin/... ./internal/store/... ./internal/obs/...

# Short fuzz smoke of the query parser (the CI-sized budget).
fuzz:
	$(GO) test ./internal/xq/ -fuzz FuzzParse -fuzztime 30s

# Regenerate the committed metrics baseline (see EXPERIMENTS.md).
bench-seed:
	$(GO) run ./cmd/x3bench -figure fig4 -scale 0.002 -axes 2,3 -quiet -metrics BENCH_seed.json
