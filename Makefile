# Tier-1 verification targets. `make ci` is the full gate.

GO ?= go

.PHONY: ci vet lint build test fuzz-replay race fuzz faults cover bench bench-seed bench-pr2 bench-pr3 bench-pr6 bench-pr7 bench-pr8 bench-pr9

ci: vet lint build test race faults cover

vet:
	$(GO) vet ./...

# The repo's own static-analysis suite (internal/lint, cmd/x3lint): ten
# stdlib-only analyzers — five syntactic (context flow, errors.Is
# discipline, obs key hygiene, deterministic iteration, unique fault
# sites) and five interprocedural over the whole-program call graph
# (goroutine accounting, mutex hold discipline, atomic-everywhere,
# answer-path error flow, partial-answer honesty). Nonzero exit on any
# unsuppressed diagnostic.
lint:
	$(GO) run ./cmd/x3lint -root .

build:
	$(GO) build ./...

test: fuzz-replay
	$(GO) test ./...

# Replay the committed fuzz corpora (the f.Add seeds plus anything under
# testdata/fuzz/) as plain regression tests, plus the analyzer fixture
# modules (the lint suite's own cheap regression) — no fuzzing engine, so
# it is cheap enough to ride inside `make test`.
fuzz-replay:
	$(GO) test -run '^Fuzz' ./internal/cellfile/ ./internal/pattern/ ./internal/schema/ ./internal/store/ ./internal/wal/ ./internal/xmltree/ ./internal/xq/
	$(GO) test -run 'Fixture' ./internal/lint/

# The concurrent pieces — the shared worker pool behind BUCPAR/TDPAR, the
# batched sinks, extsort's background run formation and chunked sorts, the
# sjoin evaluator over the shared buffer pool, the parallel lattice
# harness, the match-plan cache, the admission controller, and the
# load-harness soak (concurrent queries + appends + compaction against a
# subset oracle), and the sharded coordinator's scatter/failover/hedge/
# probe machinery plus its own soak — under the race detector.
race:
	$(GO) test -race ./internal/cube/... ./internal/extsort/... ./internal/harness/... ./internal/match/... ./internal/mem/... ./internal/sjoin/... ./internal/store/... ./internal/obs/... ./internal/serve/... ./internal/admit/... ./internal/servehttp/... ./internal/load/... ./internal/shard/... ./cmd/x3serve/

# Short fuzz smoke of the query parser, the cell-file readers, the
# store's meta page and the write-ahead log (the CI-sized budget).
fuzz:
	$(GO) test ./internal/xq/ -fuzz FuzzParse -fuzztime 30s
	$(GO) test ./internal/cellfile/ -fuzz FuzzCellfile -fuzztime 30s
	$(GO) test ./internal/cellfile/ -fuzz FuzzColumnarBlock -fuzztime 30s
	$(GO) test ./internal/store/ -fuzz FuzzStoreMeta -fuzztime 30s
	$(GO) test ./internal/wal/ -fuzz FuzzWAL -fuzztime 30s

# The fault-injection suite under a fixed deterministic schedule: the
# differential serving sweep with injected corruption/short reads, the
# crash-point sweeps of refresh, WAL append, flush, compaction and
# recovery, degraded-ladder serving off a corrupted file, and the
# injection/retry tests of every storage layer, and the sharded
# coordinator's differential failure sweep, failover, hedging and
# stale-replica discipline.
faults:
	$(GO) test -run 'Fault|Crash|Degraded|Retry|Corrupt|Cancel|Shed|Panic|Deadline|Quota|Failover|Hedge|Stale|Partial|Differential' ./internal/fault/ ./internal/cellfile/ ./internal/store/ ./internal/extsort/ ./internal/cube/ ./internal/serve/ ./internal/wal/ ./internal/servehttp/ ./internal/admit/ ./internal/shard/ ./cmd/x3serve/

# Per-package coverage floors (see scripts/cover_floors.txt): the serving
# layer and its cell-file substrate must stay above 80% of statements.
cover:
	sh scripts/cover.sh

# Regenerate the committed metrics baseline (see EXPERIMENTS.md).
bench-seed:
	$(GO) run ./cmd/x3bench -figure fig4 -scale 0.002 -axes 2,3 -quiet -metrics BENCH_seed.json

# Regenerate the committed parallel-scaling snapshot (see EXPERIMENTS.md):
# the DBLP figure across a worker sweep, serial baselines (TD, BUC,
# COUNTER) next to the parallel engines (TDPAR, BUCPAR). The
# harness.run.*.w<N>.ns keys carry the wall-clock comparison.
bench-pr2:
	$(GO) run ./cmd/x3bench -figure fig10 -scale 0.05 -algorithms COUNTER,TD,BUC,TDPAR,BUCPAR -workers 1,2,4,8 -quiet -metrics BENCH_pr2.json

# Regenerate the committed serve-latency snapshot (see EXPERIMENTS.md):
# a full-lattice sweep of cuboid queries over the DBLP cube, answered by
# a cold v1 full scan, the v2 indexed store, and the warm block cache.
bench-pr3:
	$(GO) run ./cmd/x3serve -bench -scale 2000 -metrics BENCH_pr3.json

# Regenerate the committed incremental-maintenance snapshot (see
# EXPERIMENTS.md): WAL-durable append latency, full-lattice query sweeps
# at 0/1/4/16 outstanding delta generations, and the cost of compacting
# the ladder back to one base file.
bench-pr6:
	$(GO) run ./cmd/x3serve -bench-pr6 -scale 2000 -metrics BENCH_pr6.json

# Regenerate the committed columnar-format snapshot (see EXPERIMENTS.md):
# v3 vs v4 bytes/cell on the same cube, indexed and warm-cache query
# sweeps, ladder sweeps at 0/8/16 v4 delta generations, and full vs
# 50%-budget build times.
bench-pr7:
	$(GO) run ./cmd/x3serve -bench-pr7 -scale 2000 -metrics BENCH_pr7.json

# Regenerate the committed sustained-load snapshot (see EXPERIMENTS.md):
# the open-loop x3load sweep — three arrival rates x two query mixes over
# eight tenants with one tenant pushing past its quota — with in-quota
# HDR latency quantiles, over-quota 429 counts, and the SLO verdict.
bench-pr8:
	$(GO) run ./cmd/x3load -bench-pr8 -scale 200 -metrics BENCH_pr8.json

# Regenerate the committed sharded-failure snapshot (see EXPERIMENTS.md):
# the x3load sweep over shard count x injected replica failures —
# failover must keep answers exact within the latency SLO, and
# whole-shard loss must degrade to honestly labelled partial answers.
bench-pr9:
	$(GO) run ./cmd/x3load -bench-pr9 -scale 200 -metrics BENCH_pr9.json

# Regression gates: re-run the sustained-load and sharded-failure sweeps
# and fail if any scenario that passed in the committed baselines
# violates its SLO or partial-honesty expectation now. Fresh runs land
# in /tmp so the committed baselines are only updated deliberately via
# bench-pr8 / bench-pr9.
bench:
	$(GO) run ./cmd/x3load -bench-pr8 -scale 200 -baseline BENCH_pr8.json -metrics /tmp/BENCH_pr8.current.json
	$(GO) run ./cmd/x3load -bench-pr9 -scale 200 -baseline BENCH_pr9.json -metrics /tmp/BENCH_pr9.current.json
