# Tier-1 verification targets. `make ci` is the full gate.

GO ?= go

.PHONY: ci vet build test race fuzz bench-seed bench-pr2

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent pieces — the shared worker pool behind BUCPAR/TDPAR, the
# batched sinks, extsort's background run formation and chunked sorts, the
# sjoin evaluator over the shared buffer pool — under the race detector.
race:
	$(GO) test -race ./internal/cube/... ./internal/extsort/... ./internal/mem/... ./internal/sjoin/... ./internal/store/... ./internal/obs/...

# Short fuzz smoke of the query parser (the CI-sized budget).
fuzz:
	$(GO) test ./internal/xq/ -fuzz FuzzParse -fuzztime 30s

# Regenerate the committed metrics baseline (see EXPERIMENTS.md).
bench-seed:
	$(GO) run ./cmd/x3bench -figure fig4 -scale 0.002 -axes 2,3 -quiet -metrics BENCH_seed.json

# Regenerate the committed parallel-scaling snapshot (see EXPERIMENTS.md):
# the DBLP figure across a worker sweep, serial baselines (TD, BUC,
# COUNTER) next to the parallel engines (TDPAR, BUCPAR). The
# harness.run.*.w<N>.ns keys carry the wall-clock comparison.
bench-pr2:
	$(GO) run ./cmd/x3bench -figure fig10 -scale 0.05 -algorithms COUNTER,TD,BUC,TDPAR,BUCPAR -workers 1,2,4,8 -quiet -metrics BENCH_pr2.json
