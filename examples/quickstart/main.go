// Quickstart: the paper's running example end to end — load the Figure 1
// publication database, run Query 1, and walk the relaxed-cube lattice.
package main

import (
	"fmt"
	"log"

	"x3"
)

const booksXML = `
<database>
  <publication id="1">
    <author id="a1"><name>John</name></author>
    <author id="a2"><name>Jane</name></author>
    <publisher id="p1"/>
    <year>2003</year>
  </publication>
  <publication id="2">
    <author id="a3"><name>Bob</name></author>
    <publisher id="p1"/>
    <year>2004</year>
    <year>2005</year>
  </publication>
  <publication id="3">
    <authors><author id="a1"><name>John</name></author></authors>
    <year>2003</year>
  </publication>
  <publication id="4">
    <author id="a4"><name>Amy</name></author>
    <pubData><publisher id="p2"/><year>2005</year></pubData>
  </publication>
</database>`

// query1 is the paper's Query 1, verbatim.
const query1 = `
for $b in doc("book.xml")//publication,
    $n in $b/author/name,
    $p in $b//publisher/@id,
    $y in $b/year
X^3 $b/@id by $n (LND, SP, PC-AD),
            $p (LND, PC-AD),
            $y (LND)
return COUNT($b).`

func main() {
	db, err := x3.LoadXMLString(booksXML)
	if err != nil {
		log.Fatal(err)
	}
	q, err := x3.ParseQuery(query1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %s\n", q)
	fmt.Printf("lattice: %d axes, %d cuboids\n\n", q.NumAxes(), q.NumCuboids())
	fmt.Println("most relaxed fully instantiated pattern (Fig. 2):")
	fmt.Println(q.MostRelaxedPattern())

	res, err := db.Cube(q) // COUNTER by default
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed %d cells over %d facts\n\n", res.TotalCells(), res.NumFacts())

	// Group-by year alone: note publication 4's year hides inside
	// pubData, so it is missing here — the coverage violation of §1.
	years, err := res.Cuboid(map[string]string{"$y": "rigid"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("publications per year (rigid $y):")
	for _, row := range years.Rows() {
		fmt.Printf("  %s -> %g\n", row.Values[0], row.Value)
	}

	// Group-by author name at the SP state: //name also finds the author
	// nested under <authors> in publication 3.
	names, err := res.Cuboid(map[string]string{"$n": "SP"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npublications per author name (SP $n, i.e. //name):")
	for _, row := range names.Rows() {
		fmt.Printf("  %-6s -> %g\n", row.Values[0], row.Value)
	}

	// The non-disjointness of §1: publication 1 counts once under John
	// and once under Jane, yet the grand total is still 4.
	all, err := res.Cuboid(nil)
	if err != nil {
		log.Fatal(err)
	}
	total, _ := all.Get()
	fmt.Printf("\ngrand total (all axes relaxed): %g publications\n", total)
}
