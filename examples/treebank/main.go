// Treebank: demonstrates why summarizability matters (§1, §3.2). The
// workload is a heterogeneous marked-up corpus where one axis violates
// total coverage (elements missing) and another violates disjointness
// (elements repeated). The naive relational roll-up — computing a coarse
// group-by by summing a finer one — gets both wrong; the X³ algorithms
// compute them correctly from the lattice semantics.
package main

import (
	"bytes"
	"fmt"
	"log"

	"x3"
	"x3/internal/dataset"
	"x3/internal/pattern"
)

func main() {
	axes := []dataset.AxisConfig{
		{Tag: "w0", Cardinality: 3, PMissing: 0.3, // coverage violated
			Relax: pattern.RelaxSet(0).With(pattern.LND)},
		{Tag: "w1", Cardinality: 3, PRepeat: 0.5, // disjointness violated
			Relax: pattern.RelaxSet(0).With(pattern.LND)},
	}
	doc := dataset.Treebank(dataset.TreebankConfig{Seed: 7, Facts: 1000, Axes: axes, Noise: 1})
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		log.Fatal(err)
	}
	db, err := x3.LoadXMLString(buf.String())
	if err != nil {
		log.Fatal(err)
	}
	q, err := x3.ParseQuery(`
for $s in doc("treebank.xml")//s,
    $a in $s/w0,
    $b in $s/w1
x^3 $s/@id by $a (LND), $b (LND)
return COUNT($s)`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.Cube(q)
	if err != nil {
		log.Fatal(err)
	}

	byA, err := res.Cuboid(map[string]string{"$a": "rigid"})
	if err != nil {
		log.Fatal(err)
	}
	byB, err := res.Cuboid(map[string]string{"$b": "rigid"})
	if err != nil {
		log.Fatal(err)
	}
	byAB, err := res.Cuboid(map[string]string{"$a": "rigid", "$b": "rigid"})
	if err != nil {
		log.Fatal(err)
	}
	all, err := res.Cuboid(nil)
	if err != nil {
		log.Fatal(err)
	}
	total, _ := all.Get()

	// Trap 1 (coverage): rolling the (a,b) cuboid up to b misses every
	// fact without a w0 element.
	fmt.Println("group-by w1: correct count vs naive roll-up from (w0,w1):")
	rollupB := map[string]float64{}
	for _, row := range byAB.Rows() {
		rollupB[row.Values[1]] += row.Value
	}
	for _, row := range byB.Rows() {
		fmt.Printf("  w1=%-4s correct=%4g  rolled-up=%4g  (missing %g facts with no w0)\n",
			row.Values[0], row.Value, rollupB[row.Values[0]], row.Value-rollupB[row.Values[0]])
	}

	// Trap 2 (disjointness): summing the w1 groups double-counts facts
	// that carry several w1 values.
	var sumB float64
	for _, row := range byB.Rows() {
		sumB += row.Value
	}
	fmt.Printf("\nsum of w1 group counts = %g, but distinct facts with a w1 = at most %g\n", sumB, total)
	fmt.Println("(facts with repeated w1 values are counted once per group — adding")
	fmt.Println(" groups up is NOT the number of facts; §1's second trap)")

	// Algorithm choice: §4.6 in one experiment. TD pays for the missing
	// coverage; BUC does not.
	fmt.Println("\nrunning-time statistics on this workload:")
	for _, alg := range []string{"COUNTER", "BUC", "TD"} {
		r, err := db.Cube(q, x3.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		st := r.Stats()
		fmt.Printf("  %-8s cells=%d passes=%d sorts=%d rowsSorted=%d\n",
			alg, r.TotalCells(), st.Passes, st.Sorts, st.RowsSorted)
	}
	_ = byA
}
