// Iceberg: the HAVING extension — only groups with at least N facts are
// materialized, and the bottom-up algorithm prunes entire sub-lattices
// whose partitions fall below the threshold (the Beyer–Ramakrishnan
// iceberg optimization the paper's BUC derives from).
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"x3"
	"x3/internal/dataset"
	"x3/internal/pattern"
)

func main() {
	axes := []dataset.AxisConfig{
		{Tag: "w0", Cardinality: 40, Relax: pattern.RelaxSet(0).With(pattern.LND)},
		{Tag: "w1", Cardinality: 40, Relax: pattern.RelaxSet(0).With(pattern.LND)},
		{Tag: "w2", Cardinality: 40, Relax: pattern.RelaxSet(0).With(pattern.LND)},
		{Tag: "w3", Cardinality: 40, Relax: pattern.RelaxSet(0).With(pattern.LND)},
	}
	doc := dataset.Treebank(dataset.TreebankConfig{Seed: 11, Facts: 20000, Axes: axes})
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		log.Fatal(err)
	}
	db, err := x3.LoadXMLString(buf.String())
	if err != nil {
		log.Fatal(err)
	}

	queryFor := func(minsup int) *x3.Query {
		text := `
for $s in doc("tb.xml")//s,
    $a in $s/w0, $b in $s/w1, $c in $s/w2, $d in $s/w3
x^3 $s/@id by $a (LND), $b (LND), $c (LND), $d (LND)
return COUNT($s)`
		if minsup > 0 {
			text += fmt.Sprintf(" having COUNT($s) >= %d", minsup)
		}
		q, err := x3.ParseQuery(text)
		if err != nil {
			log.Fatal(err)
		}
		return q
	}

	fmt.Println("sparse 4-axis cube over 20k facts, BUC, varying HAVING threshold:")
	fmt.Printf("%-10s %12s %10s\n", "minsup", "cells", "seconds")
	for _, minsup := range []int{0, 5, 50, 500} {
		q := queryFor(minsup)
		start := time.Now()
		res, err := db.Cube(q, x3.WithAlgorithm("BUC"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %12d %10.3f\n", minsup, res.TotalCells(), time.Since(start).Seconds())
	}
	fmt.Println("\n(pruned partitions are never refined, so higher thresholds do")
	fmt.Println(" less partitioning work, not just less output)")
}
