// Schemaadvisor: the paper's future-work direction made concrete —
// automated determination of lattice properties from an available schema
// (§3.7) driving the choice of cube algorithm (§4.6). Given a DTD and an
// X³ query, x3.Advise reports the inferred coverage/disjointness per axis
// and ladder state and recommends algorithms for sparse and dense cubes.
package main

import (
	"fmt"
	"log"
	"strings"

	"x3"
)

const dtd = `
<!ELEMENT dblp (article*)>
<!ELEMENT article (author*, title, journal, year, month?)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ATTLIST article key CDATA #REQUIRED>`

const query = `
for $a in doc("dblp.xml")//article,
    $au in $a/author,
    $m in $a/month,
    $y in $a/year,
    $j in $a/journal
x^3 $a/@key by $au (LND), $m (LND), $y (LND), $j (LND)
return COUNT($a)`

func main() {
	q, err := x3.ParseQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	adv, err := x3.Advise(q, dtd)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("query:", q)
	fmt.Printf("lattice: %d cuboids over %d axes\n\n", q.NumCuboids(), q.NumAxes())
	fmt.Println("schema-inferred lattice properties and recommendation:")
	fmt.Println(adv)

	// Show a slice of the Fig. 3-style lattice rendering.
	fmt.Println("first cuboids of the lattice (rigid first):")
	sketch := q.LatticeSketch()
	lines := strings.SplitN(sketch, "\n", 25)
	fmt.Println(strings.Join(lines[:len(lines)-1], "\n"))
	fmt.Println("...")
}
