// DBLP: the paper's §4.5 customized-optimization experiment. The DTD says
// author may repeat or be missing, month may be missing, and year and
// journal are mandatory and unique. The customized algorithms (BUCCUST,
// TDCUST) exploit exactly the summarizability that holds, stay correct,
// and beat their unoptimized counterparts; the globally-optimized ones
// (BUCOPT, TDOPT, TDOPTALL) are faster still but silently wrong.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"x3"
	"x3/internal/dataset"
)

func main() {
	// 20k articles keeps the example snappy; cmd/x3bench runs the full
	// 220k-tree version as fig10.
	doc := dataset.DBLP(dataset.DefaultDBLPConfig(20_000, 1))
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		log.Fatal(err)
	}
	db, err := x3.LoadXMLString(buf.String())
	if err != nil {
		log.Fatal(err)
	}
	q, err := x3.ParseQuery(`
for $a in doc("dblp.xml")//article,
    $au in $a/author,
    $m in $a/month,
    $y in $a/year,
    $j in $a/journal
x^3 $a/@key by $au (LND), $m (LND), $y (LND), $j (LND)
return COUNT($a)`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cube article by /author, /month, /year, /journal over %d nodes\n\n", db.NumNodes())

	// Reference result.
	ref, err := db.Cube(q, x3.WithAlgorithm("COUNTER"))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %12s %9s %8s %s\n", "algorithm", "seconds", "cells", "passes", "sorts", "correct")
	for _, alg := range []string{"COUNTER", "BUC", "BUCCUST", "BUCOPT", "TD", "TDCUST", "TDOPT", "TDOPTALL"} {
		start := time.Now()
		res, err := db.Cube(q, x3.WithAlgorithm(alg), x3.WithDTD(dataset.DBLPDTD))
		if err != nil {
			log.Fatal(err)
		}
		secs := time.Since(start).Seconds()
		correct := res.TotalCells() == ref.TotalCells() && sameYearCounts(ref, res)
		st := res.Stats()
		fmt.Printf("%-10s %10.3f %12d %9d %8d %t\n",
			alg, secs, res.TotalCells(), st.Passes, st.Sorts, correct)
	}
	fmt.Println("\n(the OPT rows are expected to be incorrect: author violates")
	fmt.Println(" disjointness and coverage, which they assume globally — §4.3)")
}

// sameYearCounts compares the year-only cuboid of two results.
func sameYearCounts(a, b *x3.CubeResult) bool {
	ca, err := a.Cuboid(map[string]string{"$y": "rigid"})
	if err != nil {
		return false
	}
	cb, err := b.Cuboid(map[string]string{"$y": "rigid"})
	if err != nil {
		return false
	}
	rows := ca.Rows()
	if len(rows) != cb.Size() {
		return false
	}
	for _, r := range rows {
		if v, ok := cb.Get(r.Values...); !ok || v != r.Value {
			return false
		}
	}
	return true
}
