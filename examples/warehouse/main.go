// Warehouse: operating an XML warehouse over time with the library's
// extension features — estimate the cube before computing it, pick an
// algorithm from the schema, compute, select views to materialize, and
// absorb a newly arrived batch incrementally.
package main

import (
	"bytes"
	"fmt"
	"log"

	"x3"
	"x3/internal/dataset"
)

func main() {
	// Day one: 10k DBLP articles arrive.
	day1 := dataset.DBLP(dataset.DefaultDBLPConfig(10_000, 1))
	var buf bytes.Buffer
	if err := day1.Write(&buf); err != nil {
		log.Fatal(err)
	}
	db, err := x3.LoadXMLString(buf.String())
	if err != nil {
		log.Fatal(err)
	}
	q, err := x3.ParseQuery(`
for $a in doc("dblp.xml")//article,
    $au in $a/author, $m in $a/month, $y in $a/year, $j in $a/journal
x^3 $a/@key by $au (LND), $m (LND), $y (LND), $j (LND)
return COUNT($a)`)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Estimate before computing.
	est, err := db.Estimate(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate: %d facts, %d cuboids, ~%d cells (finest ~%d), dense=%t\n",
		est.Facts, est.Cuboids, est.EstimatedCells, est.TopCuboidCells, est.Dense)

	// 2. Ask the schema which algorithm is safe and fast.
	adv, err := x3.Advise(q, dataset.DBLPDTD)
	if err != nil {
		log.Fatal(err)
	}
	algorithm := adv.SparseAlgorithm
	if est.Dense {
		algorithm = adv.DenseAlgorithm
	}
	fmt.Printf("advice: %s (%s)\n\n", algorithm, adv.Reason)

	// 3. Compute the cube.
	res, err := db.Cube(q, x3.WithAlgorithm(algorithm), x3.WithDTD(dataset.DBLPDTD))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("computed %d cells with %s\n", res.TotalCells(), algorithm)

	// 4. Which cuboids are worth materializing?
	sugs, err := res.SuggestViews(3, dataset.DBLPDTD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nviews worth materializing:")
	for _, s := range sugs {
		fmt.Printf("  %-44s size=%-8d benefit=%d\n", s.Cuboid, s.Size, s.Benefit)
	}

	// 5. Day two: 2k more articles arrive; absorb them incrementally.
	day2 := dataset.DBLP(dataset.DefaultDBLPConfig(2_000, 99))
	buf.Reset()
	if err := day2.Write(&buf); err != nil {
		log.Fatal(err)
	}
	db2, err := x3.LoadXMLString(buf.String())
	if err != nil {
		log.Fatal(err)
	}
	added, err := res.Absorb(db2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nabsorbed %d new facts; cube now covers %d facts, %d cells\n",
		added, res.NumFacts(), res.TotalCells())

	// Spot-check one group across both batches.
	c, err := res.Cuboid(map[string]string{"$y": "rigid"})
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for _, row := range c.Rows() {
		total += row.Value
	}
	fmt.Printf("sum over year groups = %.0f (facts with a year)\n", total)
}
