// Package servehttp is the HTTP edge of the serving layer: it wires a
// serve.Store into an http.Handler behind a hardening middleware chain —
// panic recovery, priority-aware admission control (per-tenant
// token-bucket quotas from internal/admit, 429 + Retry-After for
// over-quota tenants, 503 for saturation), per-request deadlines, and
// HDR latency recording. It lives below cmd/x3serve so the load harness
// (cmd/x3load, internal/load) can drive the identical edge — status
// codes, headers, error bodies — in-process without a binary boundary.
package servehttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"x3/internal/admit"
	"x3/internal/obs"
	"x3/internal/serve"
	"x3/internal/shard"
	"x3/internal/xmltree"
)

// maxBody bounds request bodies: queries are small JSON, refreshes are
// XML documents — neither should be unbounded.
const maxBody = 64 << 20

// Header names of the multi-tenant protocol. A missing tenant header
// falls into the shared "default" bucket; a missing priority header
// classifies by route (mutating maintenance routes are Background).
const (
	TenantHeader   = "X3-Tenant"
	PriorityHeader = "X3-Priority"
)

// Options configure the middleware chain.
type Options struct {
	// Admission admits or sheds requests (nil disables admission
	// control entirely — every request runs).
	Admission *admit.Controller
	// RequestTimeout is the per-request deadline; the context handed to
	// the store expires at it, cancelling in-flight reads and
	// recomputations. 0 disables.
	RequestTimeout time.Duration
}

// Backend is the serving surface the HTTP edge fronts: a single-node
// serve.Store and a sharded shard.Coordinator both satisfy it, so the
// same edge — status codes, headers, admission, error bodies — serves
// either topology.
type Backend interface {
	ServeRequest(ctx context.Context, req serve.Request) (*serve.Response, error)
	RefreshDoc(ctx context.Context, doc *xmltree.Document) (int64, error)
	Append(ctx context.Context, body []byte) (int64, error)
	Generations() (deltas int, memCells int64)
	Dir() string
	CuboidReport() []serve.CuboidStatus
}

// Topologer is the optional Backend extension a sharded coordinator
// provides; when present the edge exposes GET /topology.
type Topologer interface {
	Topology() []shard.ShardInfo
}

// New wires a serving backend into an http.Handler. The handler is safe
// for concurrent use: queries run under the store's read lock and
// refreshes, appends and flushes swap state atomically, so mixed
// traffic never tears. The middleware chain (outermost first) recovers
// panics, admits or sheds by tenant quota and priority class, imposes
// the per-request deadline, and records end-to-end latency into the
// serve.http.latency HDR histogram; handlers pass the request context
// down so a client disconnect or an expired deadline cancels the work
// it was paying for.
func New(s Backend, reg *obs.Registry, opt Options) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req serve.Request
		if err := json.NewDecoder(io.LimitReader(r.Body, maxBody)).Decode(&req); err != nil {
			Error(w, fmt.Errorf("%w: %w", serve.ErrBadRequest, err))
			return
		}
		resp, err := s.ServeRequest(r.Context(), req)
		if err != nil {
			Error(w, err)
			return
		}
		writeJSON(w, resp)
	})

	mux.HandleFunc("POST /refresh", func(w http.ResponseWriter, r *http.Request) {
		doc, err := xmltree.Parse(io.LimitReader(r.Body, maxBody))
		if err != nil {
			Error(w, fmt.Errorf("%w: %w", serve.ErrBadRequest, err))
			return
		}
		added, err := s.RefreshDoc(r.Context(), doc)
		if err != nil {
			Error(w, err)
			return
		}
		writeJSON(w, map[string]int64{"added": added})
	})

	mux.HandleFunc("POST /append", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
		if err != nil {
			Error(w, fmt.Errorf("%w: %w", serve.ErrBadRequest, err))
			return
		}
		added, err := s.Append(r.Context(), body)
		if err != nil {
			Error(w, err)
			return
		}
		deltas, memCells := s.Generations()
		writeJSON(w, map[string]int64{"added": added, "deltas": int64(deltas), "mem_cells": memCells})
	})

	mux.HandleFunc("GET /generations", func(w http.ResponseWriter, r *http.Request) {
		deltas, memCells := s.Generations()
		writeJSON(w, map[string]any{
			"dir":       s.Dir(),
			"deltas":    deltas,
			"mem_cells": memCells,
		})
	})

	mux.HandleFunc("GET /cuboids", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.CuboidReport())
	})

	if topo, ok := s.(Topologer); ok {
		mux.HandleFunc("GET /topology", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, topo.Topology())
		})
	}

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			Error(w, err)
		}
	})

	var h http.Handler = mux
	h = withLatency(reg, h)
	if opt.RequestTimeout > 0 {
		h = withDeadline(opt.RequestTimeout, h)
	}
	if opt.Admission != nil {
		h = withAdmission(reg, opt.Admission, h)
	}
	return withRecovery(reg, h)
}

// classOf resolves a request's priority class: the PriorityHeader when
// present, else by route — the mutating maintenance endpoints are
// Background, queries and reads Interactive.
func classOf(r *http.Request) admit.Class {
	switch r.Header.Get(PriorityHeader) {
	case "interactive":
		return admit.Interactive
	case "background":
		return admit.Background
	}
	if r.Method == http.MethodPost && (r.URL.Path == "/append" || r.URL.Path == "/refresh") {
		return admit.Background
	}
	return admit.Interactive
}

// tenantOf resolves a request's tenant label.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return "default"
}

// withAdmission asks the controller before running each request. An
// over-quota tenant is refused with 429 + Retry-After sized to its
// bucket's refill; saturation sheds with 503 + Retry-After so clients
// back off instead of piling onto a saturated store. Admitted requests
// release their slot when the handler returns.
func withAdmission(reg *obs.Registry, ctrl *admit.Controller, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, err := ctrl.Admit(tenantOf(r), classOf(r))
		if err != nil {
			var qe *admit.QuotaError
			switch {
			case errors.As(err, &qe):
				reg.Counter("serve.over_quota").Inc()
				w.Header().Set("Retry-After", retryAfterSeconds(qe.RetryAfter))
				writeError(w, http.StatusTooManyRequests, "over_quota", err.Error())
			default:
				reg.Counter("serve.shed").Inc()
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, "shed", "server at capacity")
			}
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}

// retryAfterSeconds renders a refill hint as whole seconds, rounded up
// to at least 1 (Retry-After takes integral seconds).
func retryAfterSeconds(d time.Duration) string {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

// withLatency records each admitted request's end-to-end handler time
// into the serve.http.latency HDR histogram — the quantity the load
// harness's SLO gate reads at the edge.
func withLatency(reg *obs.Registry, next http.Handler) http.Handler {
	h := reg.HDR("serve.http.latency")
	requests := reg.Counter("serve.http.requests")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		requests.Inc()
		h.ObserveDuration(time.Since(start))
	})
}

// withRecovery converts a handler panic into a 500 instead of tearing
// down the connection (and, with it, the whole keep-alive client). The
// JSON error body carries only the panic value; the goroutine stack —
// the part an operator actually debugs from — goes to the server log,
// since writeError would otherwise be the last place it existed.
func withRecovery(reg *obs.Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				reg.Counter("serve.http.panics").Inc()
				log.Printf("servehttp: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				writeError(w, http.StatusInternalServerError, "panic",
					fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withDeadline bounds every request's context, so a slow query or a
// stuck refresh is cancelled rather than holding a slot forever.
func withDeadline(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Error maps an error to the structured JSON error form and the right
// status class: the client's fault (bad request) is 4xx, an expired
// deadline is 504, a cancelled request 503, and everything else —
// including detected corruption that even degraded serving could not
// route around — is 500.
func Error(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serve.ErrBadRequest):
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline", err.Error())
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "cancelled", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}
