package servehttp

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"x3/internal/obs"
	"x3/internal/serve"
	"x3/internal/shard"
	"x3/internal/xmltree"
)

// stubBackend is the minimal Backend: a single-node-shaped stand-in for
// wiring tests that don't need a real store.
type stubBackend struct{}

func (stubBackend) ServeRequest(ctx context.Context, req serve.Request) (*serve.Response, error) {
	return &serve.Response{Cuboid: "stub"}, nil
}
func (stubBackend) RefreshDoc(ctx context.Context, doc *xmltree.Document) (int64, error) {
	return 0, nil
}
func (stubBackend) Append(ctx context.Context, body []byte) (int64, error) { return 0, nil }
func (stubBackend) Generations() (int, int64)                              { return 0, 0 }
func (stubBackend) Dir() string                                            { return "" }
func (stubBackend) CuboidReport() []serve.CuboidStatus                     { return nil }

// stubSharded additionally exposes a topology, the way a coordinator
// does.
type stubSharded struct{ stubBackend }

func (stubSharded) Topology() []shard.ShardInfo {
	return []shard.ShardInfo{{
		ID: 0, KeyRange: shard.KeyRange(0, 2), Facts: 7,
		Replicas: []shard.ReplicaInfo{{Label: "s0/r0"}, {Label: "s0/r1", Down: true}},
	}}
}

// TestTopologyEndpoint: a sharded backend grows a GET /topology route;
// a single-node backend does not.
func TestTopologyEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(stubSharded{}, obs.New(), Options{}))
	t.Cleanup(srv.Close)
	resp, b := get(t, srv.URL+"/topology", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /topology: HTTP %d (%s), want 200", resp.StatusCode, b)
	}
	var topo []shard.ShardInfo
	if err := json.Unmarshal(b, &topo); err != nil {
		t.Fatalf("topology body %s: %v", b, err)
	}
	if len(topo) != 1 || topo[0].KeyRange != shard.KeyRange(0, 2) || !topo[0].Replicas[1].Down {
		t.Fatalf("topology = %+v, want the stub's shard map", topo)
	}

	plain := httptest.NewServer(New(stubBackend{}, obs.New(), Options{}))
	t.Cleanup(plain.Close)
	if resp, _ := get(t, plain.URL+"/topology", "", ""); resp.StatusCode == http.StatusOK {
		t.Fatal("single-node backend must not expose /topology")
	}
}
