package servehttp

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"x3/internal/admit"
	"x3/internal/obs"
)

// get issues a GET with optional tenant/priority headers and returns the
// status, headers and decoded body.
func get(t *testing.T, url, tenant, priority string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	if priority != "" {
		req.Header.Set(PriorityHeader, priority)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestAdmissionSaturationShed fills the single in-flight slot with a
// blocked request and verifies the next one is shed with 503 +
// Retry-After, a structured body, and a moved serve.shed counter.
func TestAdmissionSaturationShed(t *testing.T) {
	reg := obs.New()
	ctrl := admit.New(admit.Config{MaxInFlight: 1})
	release := make(chan struct{})
	entered := make(chan struct{})
	h := withAdmission(reg, ctrl, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	}))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	go http.Get(srv.URL) // occupies the only slot
	<-entered
	resp, b := get(t, srv.URL, "", "")
	close(release)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request: HTTP %d (%s), want 503", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var e map[string]string
	if err := json.Unmarshal(b, &e); err != nil || e["code"] != "shed" {
		t.Fatalf("shed response body %s, want code \"shed\"", b)
	}
	if reg.Counter("serve.shed").Value() == 0 {
		t.Error("serve.shed did not move")
	}
}

// TestOverQuota429 drains one tenant's token bucket and verifies the
// refusal contract at the wire: 429, a Retry-After matching the bucket's
// refill hint, code "over_quota" — while a second tenant sails through.
func TestOverQuota429(t *testing.T) {
	reg := obs.New()
	now := time.Unix(5000, 0)
	ctrl := admit.New(admit.Config{Rate: 2, Burst: 1, Now: func() time.Time { return now }, Registry: reg})
	h := withAdmission(reg, ctrl, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	if resp, b := get(t, srv.URL, "alice", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("first in-quota request: HTTP %d (%s)", resp.StatusCode, b)
	}
	resp, b := get(t, srv.URL, "alice", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained tenant: HTTP %d (%s), want 429", resp.StatusCode, b)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("429 Retry-After %q, want integral seconds >= 1", resp.Header.Get("Retry-After"))
	}
	var e map[string]string
	if err := json.Unmarshal(b, &e); err != nil || e["code"] != "over_quota" {
		t.Fatalf("429 body %s, want code \"over_quota\"", b)
	}
	if reg.Counter("serve.over_quota").Value() == 0 {
		t.Error("serve.over_quota did not move")
	}
	// Per-tenant isolation: bob's bucket is full.
	if resp, b := get(t, srv.URL, "bob", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("second tenant: HTTP %d (%s), want 200", resp.StatusCode, b)
	}
	// Refill: a second of clock at 2/s readmits alice.
	now = now.Add(time.Second)
	if resp, b := get(t, srv.URL, "alice", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("refilled tenant: HTTP %d (%s), want 200", resp.StatusCode, b)
	}
}

// TestPriorityClassRouting pins classOf: the header overrides, and the
// mutating maintenance routes default to Background.
func TestPriorityClassRouting(t *testing.T) {
	mk := func(method, path, header string) *http.Request {
		r := httptest.NewRequest(method, path, nil)
		if header != "" {
			r.Header.Set(PriorityHeader, header)
		}
		return r
	}
	for _, tc := range []struct {
		req  *http.Request
		want admit.Class
	}{
		{mk("POST", "/query", ""), admit.Interactive},
		{mk("GET", "/metrics", ""), admit.Interactive},
		{mk("POST", "/append", ""), admit.Background},
		{mk("POST", "/refresh", ""), admit.Background},
		{mk("POST", "/append", "interactive"), admit.Interactive},
		{mk("POST", "/query", "background"), admit.Background},
		{mk("POST", "/query", "bogus"), admit.Interactive},
	} {
		if got := classOf(tc.req); got != tc.want {
			t.Errorf("classOf(%s %s, header %q) = %v, want %v",
				tc.req.Method, tc.req.URL.Path, tc.req.Header.Get(PriorityHeader), got, tc.want)
		}
	}
	if got := tenantOf(mk("GET", "/metrics", "")); got != "default" {
		t.Errorf("tenantOf without header = %q, want default", got)
	}
}

// TestBackgroundYieldsOverHTTP saturates the background sub-limit with
// blocked appends and verifies interactive queries still get through the
// same admission middleware while further background work is shed.
func TestBackgroundYieldsOverHTTP(t *testing.T) {
	reg := obs.New()
	ctrl := admit.New(admit.Config{MaxInFlight: 4, BackgroundMax: 1})
	release := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	h := withAdmission(reg, ctrl, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(PriorityHeader) == "background" {
			entered.Done()
			<-release
		}
	}))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	go func() {
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		req.Header.Set(PriorityHeader, "background")
		http.DefaultClient.Do(req)
	}()
	entered.Wait() // background slot is now held
	if resp, b := get(t, srv.URL, "", "background"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("background beyond sub-limit: HTTP %d (%s), want 503", resp.StatusCode, b)
	}
	if resp, b := get(t, srv.URL, "", "interactive"); resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive with headroom: HTTP %d (%s), want 200", resp.StatusCode, b)
	}
	close(release)
}

// TestPanicRecovery converts a handler panic into a structured 500,
// counts it, and — the part the JSON error path cannot carry — logs the
// panicking goroutine's stack so the crash site is diagnosable.
func TestPanicRecovery(t *testing.T) {
	reg := obs.New()
	var logBuf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&logBuf)
	t.Cleanup(func() { log.SetOutput(prev) })
	h := withRecovery(reg, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	resp, b := get(t, srv.URL, "", "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: HTTP %d (%s), want 500", resp.StatusCode, b)
	}
	var e map[string]string
	if err := json.Unmarshal(b, &e); err != nil || e["code"] != "panic" {
		t.Fatalf("panic response body %s, want code \"panic\"", b)
	}
	if got := reg.Counter("serve.http.panics").Value(); got != 1 {
		t.Errorf("serve.http.panics = %d, want 1", got)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "boom") {
		t.Errorf("panic value missing from server log: %q", logged)
	}
	if !strings.Contains(logged, "goroutine") || !strings.Contains(logged, "TestPanicRecovery") {
		t.Errorf("panic stack missing from server log: %q", logged)
	}
}

// TestLatencyRecording verifies every request lands in the edge HDR
// histogram and the request counter.
func TestLatencyRecording(t *testing.T) {
	reg := obs.New()
	h := withLatency(reg, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Millisecond)
	}))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	for i := 0; i < 3; i++ {
		get(t, srv.URL, "", "")
	}
	if got := reg.Counter("serve.http.requests").Value(); got != 3 {
		t.Fatalf("serve.http.requests = %d, want 3", got)
	}
	snap := reg.HDR("serve.http.latency").Snapshot()
	if snap.Count != 3 {
		t.Fatalf("latency histogram count %d, want 3", snap.Count)
	}
	if snap.Quantile(0.5) < int64(time.Millisecond) {
		t.Fatalf("p50 %dns below the 1ms handler sleep", snap.Quantile(0.5))
	}
}

// TestRetryAfterSeconds pins the rounding: ceil to whole seconds, never
// below 1.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
