package xq

import (
	"fmt"
	"strconv"
	"strings"

	"x3/internal/pattern"
)

// Parse parses an X³ query and returns the corresponding CubeQuery.
//
// Grammar (keywords case-insensitive; X^3, X3 and CUBE are synonyms):
//
//	query   := FOR binding ("," binding)* x3 RETURN agg "."?
//	binding := VAR IN source
//	source  := DOC "(" STRING ")" PATH | VAR PATH
//	x3      := X3 VAR PATH? BY axis ("," axis)*
//	axis    := VAR "(" name ("," name)* ")" | VAR
//	agg     := NAME "(" VAR PATH? ")"
//
// Variables bound to other variables concatenate their paths, so axis
// paths are always resolved relative to the fact binding.
func Parse(src string) (*pattern.CubeQuery, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type binding struct {
	base string // variable the path is relative to; "" for doc root
	path pattern.Path
	doc  string
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("xq: offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %v, found %v %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) keyword(words ...string) bool {
	if p.tok.kind != tokName {
		return false
	}
	for _, w := range words {
		if strings.EqualFold(p.tok.text, w) {
			return true
		}
	}
	return false
}

func (p *parser) parseQuery() (*pattern.CubeQuery, error) {
	if !p.keyword("for") {
		return nil, p.errf("query must start with FOR")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}

	binds := map[string]binding{}
	var order []string
	for {
		v, err := p.expect(tokVar)
		if err != nil {
			return nil, err
		}
		if _, dup := binds[v.text]; dup {
			return nil, p.errf("variable %s bound twice", v.text)
		}
		if !p.keyword("in") {
			return nil, p.errf("expected IN after %s", v.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		b, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		binds[v.text] = b
		order = append(order, v.text)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}

	// The fact binding is the (single) one rooted at the document.
	q := &pattern.CubeQuery{}
	for _, v := range order {
		b := binds[v]
		if b.base == "" {
			if q.FactVar != "" {
				return nil, fmt.Errorf("xq: multiple document-rooted bindings (%s and %s)", q.FactVar, v)
			}
			q.FactVar = v
			q.FactPath = b.path
			q.Doc = b.doc
		}
	}
	if q.FactVar == "" {
		return nil, fmt.Errorf("xq: no binding is rooted at doc(...)")
	}
	// Resolve every other binding to a path relative to the fact.
	resolved := map[string]pattern.Path{q.FactVar: nil}
	var resolve func(v string, seen map[string]bool) (pattern.Path, error)
	resolve = func(v string, seen map[string]bool) (pattern.Path, error) {
		if rp, ok := resolved[v]; ok {
			return rp, nil
		}
		if seen[v] {
			return nil, fmt.Errorf("xq: circular binding through %s", v)
		}
		seen[v] = true
		b, ok := binds[v]
		if !ok {
			return nil, fmt.Errorf("xq: unbound variable %s", v)
		}
		basePath, err := resolve(b.base, seen)
		if err != nil {
			return nil, err
		}
		rp := append(basePath.Clone(), b.path...)
		resolved[v] = rp
		return rp, nil
	}
	for _, v := range order {
		if _, err := resolve(v, map[string]bool{}); err != nil {
			return nil, err
		}
	}

	if !p.keyword("x3", "cube") {
		return nil, p.errf("expected X^3 clause, found %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	// Target: $b or $b/@id.
	tv, err := p.expect(tokVar)
	if err != nil {
		return nil, err
	}
	if tv.text != q.FactVar {
		return nil, fmt.Errorf("xq: X^3 target %s is not the fact binding %s", tv.text, q.FactVar)
	}
	if p.tok.kind == tokPath {
		fp, err := pattern.ParsePath(p.tok.text)
		if err != nil {
			return nil, err
		}
		q.FactIDPath = fp
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if !p.keyword("by") {
		return nil, p.errf("expected BY in X^3 clause")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}

	for {
		av, err := p.expect(tokVar)
		if err != nil {
			return nil, err
		}
		rp, ok := resolved[av.text]
		if !ok || av.text == q.FactVar {
			return nil, fmt.Errorf("xq: X^3 axis %s is not a grouping binding", av.text)
		}
		spec := pattern.AxisSpec{Var: av.text, Path: rp}
		if p.tok.kind == tokLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				name, err := p.expect(tokName)
				if err != nil {
					return nil, err
				}
				r, err := parseRelaxName(name.text)
				if err != nil {
					return nil, err
				}
				spec.Relax = spec.Relax.With(r)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		}
		q.Axes = append(q.Axes, spec)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}

	if !p.keyword("return") {
		return nil, p.errf("expected RETURN")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	fn, err := p.expect(tokName)
	if err != nil {
		return nil, err
	}
	agg, err := pattern.ParseAggFunc(fn.text)
	if err != nil {
		return nil, err
	}
	q.Agg = agg
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	mv, err := p.expect(tokVar)
	if err != nil {
		return nil, err
	}
	mbase, ok := resolved[mv.text]
	if !ok {
		return nil, fmt.Errorf("xq: RETURN references unbound %s", mv.text)
	}
	if p.tok.kind == tokPath {
		mp, err := pattern.ParsePath(p.tok.text)
		if err != nil {
			return nil, err
		}
		q.MeasurePath = append(mbase.Clone(), mp...)
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else if len(mbase) > 0 {
		q.MeasurePath = mbase.Clone()
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if p.keyword("having") {
		if err := p.parseHaving(q); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing input %q", p.tok.text)
	}
	return q, nil
}

// parseHaving parses the iceberg clause: HAVING COUNT($fact) >= N.
func (p *parser) parseHaving(q *pattern.CubeQuery) error {
	if err := p.advance(); err != nil {
		return err
	}
	fn, err := p.expect(tokName)
	if err != nil {
		return err
	}
	if agg, err := pattern.ParseAggFunc(fn.text); err != nil || agg != pattern.Count {
		return fmt.Errorf("xq: HAVING supports only COUNT, got %q", fn.text)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	v, err := p.expect(tokVar)
	if err != nil {
		return err
	}
	if v.text != q.FactVar {
		return fmt.Errorf("xq: HAVING COUNT(%s) must count the fact binding %s", v.text, q.FactVar)
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokGE); err != nil {
		return err
	}
	num, err := p.expect(tokNumber)
	if err != nil {
		return err
	}
	n, err := strconv.ParseInt(num.text, 10, 64)
	if err != nil || n < 1 {
		return fmt.Errorf("xq: HAVING threshold %q must be a positive integer", num.text)
	}
	q.MinSupport = n
	return nil
}

// parseSource parses either doc("uri")path or $var path.
func (p *parser) parseSource() (binding, error) {
	if p.keyword("doc") {
		if err := p.advance(); err != nil {
			return binding{}, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return binding{}, err
		}
		uri, err := p.expect(tokString)
		if err != nil {
			return binding{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return binding{}, err
		}
		pt, err := p.expect(tokPath)
		if err != nil {
			return binding{}, err
		}
		path, err := pattern.ParsePath(pt.text)
		if err != nil {
			return binding{}, err
		}
		return binding{base: "", path: path, doc: uri.text}, nil
	}
	v, err := p.expect(tokVar)
	if err != nil {
		return binding{}, err
	}
	pt, err := p.expect(tokPath)
	if err != nil {
		return binding{}, err
	}
	path, err := pattern.ParsePath(pt.text)
	if err != nil {
		return binding{}, err
	}
	return binding{base: v.text, path: path}, nil
}

func parseRelaxName(s string) (pattern.Relaxation, error) {
	switch strings.ToUpper(s) {
	case "LND":
		return pattern.LND, nil
	case "SP":
		return pattern.SP, nil
	case "PC-AD", "PCAD":
		return pattern.PCAD, nil
	}
	return 0, fmt.Errorf("xq: unknown relaxation %q", s)
}
