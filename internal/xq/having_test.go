package xq

import "testing"

func TestParseHaving(t *testing.T) {
	q, err := Parse(`
for $b in doc("x")//pub, $y in $b/year
x3 $b by $y (LND)
return COUNT($b) having COUNT($b) >= 5.`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.MinSupport != 5 {
		t.Errorf("MinSupport = %d, want 5", q.MinSupport)
	}
}

func TestParseHavingCaseInsensitive(t *testing.T) {
	q, err := Parse(`
for $b in doc("x")//pub, $y in $b/year
x3 $b by $y (LND)
return count($b) HAVING count($b) >= 12`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.MinSupport != 12 {
		t.Errorf("MinSupport = %d", q.MinSupport)
	}
}

func TestParseWithoutHaving(t *testing.T) {
	q, err := Parse(`
for $b in doc("x")//pub, $y in $b/year
x3 $b by $y (LND) return COUNT($b)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.MinSupport != 0 {
		t.Errorf("MinSupport = %d, want 0", q.MinSupport)
	}
}

func TestParseHavingErrors(t *testing.T) {
	base := `for $b in doc("x")//pub, $y in $b/year x3 $b by $y (LND) return COUNT($b) having `
	for name, tail := range map[string]string{
		"sum":            `SUM($b) >= 5`,
		"wrong var":      `COUNT($y) >= 5`,
		"zero":           `COUNT($b) >= 0`,
		"negative-ish":   `COUNT($b) >= -3`,
		"missing number": `COUNT($b) >=`,
		"missing ge":     `COUNT($b) 5`,
		"bare gt":        `COUNT($b) > 5`,
	} {
		if _, err := Parse(base + tail); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestHavingSurvivesString(t *testing.T) {
	q, err := Parse(`
for $b in doc("x")//pub, $y in $b/year
x3 $b by $y (LND) return COUNT($b) having COUNT($b) >= 7`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.String(); !contains(got, "having COUNT($b) >= 7") {
		t.Errorf("String() = %q", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
