package xq

import "testing"

// FuzzParse throws arbitrary text at the query parser; it must never
// panic, and whatever it accepts must render a non-empty normal form,
// survive validation, and parse deterministically (two parses of the same
// input render identically).
func FuzzParse(f *testing.F) {
	seeds := []string{
		// The paper's Query 1 (§2), verbatim shape: three axes with
		// distinct relaxation sets, attribute steps, COUNT.
		`for $b in doc("book.xml")//publication,
    $n in $b/author/name,
    $p in $b//publisher/@id,
    $y in $b/year
X^3 $b/@id by $n (LND, SP, PC-AD), $p (LND, PC-AD), $y (LND)
return COUNT($b).`,
		// Query 1 syntax variations: spelling of the operator, casing,
		// no trailing period, collapsed whitespace.
		`for $b in doc("book.xml")//publication, $n in $b/author/name
x^3 $b/@id by $n (LND, SP, PC-AD) return COUNT($b).`,
		`FOR $b IN doc("book.xml")//publication, $y IN $b/year X^3 $b/@id BY $y (LND) RETURN COUNT($b)`,
		`for $a in doc("d")//article, $y in $a/year x3 $a by $y return count($a)`,
		// Other aggregates and measure paths.
		`for $a in doc("d")//sale, $r in $a/region x3 $a by $r (LND) return SUM($a/amount)`,
		`for $a in doc("d")//sale, $r in $a/region x3 $a by $r (LND) return AVG($a/amount)`,
		`for $a in doc("d")//sale, $r in $a/region x3 $a by $r return MIN($a/amount)`,
		`for $a in doc("d")//sale, $r in $a/region x3 $a by $r return MAX($a/amount)`,
		// Predicates, wildcards and iceberg having.
		`for $a in doc("d")//r[x], $y in $a/y[z] x3 $a by $y (LND) return SUM($a/m) having COUNT($a) >= 3`,
		`for $b in doc("d")//p[@kind], $w in $b/*/w x3 $b by $w (LND, SP) return COUNT($b)`,
		`for $b in doc("d")/root/p, $n in $b/a/b/c/name x3 $b/@id by $n (LND, SP, PC-AD) return COUNT($b).`,
		// Degenerate and malformed inputs.
		`for $b in`,
		`x3 by return`,
		`for $b in doc(")//p x3 $b by $b return COUNT($b)`,
		"for $b in doc(\"x\")//p,\x00 $y in $b/y x3 $b by $y return COUNT($b)",
		`for $b in doc("x")//p, $y in $b/y x3 $b by $y (LND, LND) return COUNT($b)`,
		`for $b in doc("x")//p, $y in $b/y x3 $b by $y ( return COUNT($b)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails validation: %v\ninput: %q", err, src)
		}
		rendered := q.String()
		if rendered == "" {
			t.Fatalf("accepted query renders empty: %q", src)
		}
		// Parsing is deterministic: a second parse renders identically.
		q2, err := Parse(src)
		if err != nil {
			t.Fatalf("second parse rejected: %v\ninput: %q", err, src)
		}
		if again := q2.String(); again != rendered {
			t.Fatalf("parse not deterministic:\nfirst:  %q\nsecond: %q\ninput: %q", rendered, again, src)
		}
	})
}
