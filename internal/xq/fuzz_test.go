package xq

import "testing"

// FuzzParse throws arbitrary text at the query parser; it must never
// panic, and whatever it accepts must render and be structurally valid.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`for $b in doc("book.xml")//publication, $n in $b/author/name
x^3 $b/@id by $n (LND, SP, PC-AD) return COUNT($b).`,
		`for $a in doc("d")//article, $y in $a/year x3 $a by $y return count($a)`,
		`for $a in doc("d")//r[x], $y in $a/y[z] x3 $a by $y (LND) return SUM($a/m) having COUNT($a) >= 3`,
		`for $b in`,
		`x3 by return`,
		`for $b in doc(")//p x3 $b by $b return COUNT($b)`,
		"for $b in doc(\"x\")//p,\x00 $y in $b/y x3 $b by $y return COUNT($b)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails validation: %v\ninput: %q", err, src)
		}
		if q.String() == "" {
			t.Fatalf("accepted query renders empty: %q", src)
		}
	})
}
