package xq

import (
	"strings"
	"testing"

	"x3/internal/pattern"
)

// query1Text is the paper's Query 1, verbatim.
const query1Text = `
for $b in doc("book.xml")//publication,
    $n in $b/author/name,
    $p in $b//publisher/@id,
    $y in $b/year
X^3 $b/@id by $n (LND, SP, PC-AD),
            $p (LND, PC-AD),
            $y (LND)
return COUNT($b).`

func TestParseQuery1(t *testing.T) {
	q, err := Parse(query1Text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Doc != "book.xml" {
		t.Errorf("Doc = %q", q.Doc)
	}
	if q.FactVar != "$b" || q.FactPath.String() != "//publication" {
		t.Errorf("fact = %s %s", q.FactVar, q.FactPath)
	}
	if q.FactIDPath.String() != "/@id" {
		t.Errorf("fact id path = %s", q.FactIDPath)
	}
	if len(q.Axes) != 3 {
		t.Fatalf("axes = %d", len(q.Axes))
	}
	wantPaths := []string{"/author/name", "//publisher/@id", "/year"}
	for i, w := range wantPaths {
		if got := q.Axes[i].Path.String(); got != w {
			t.Errorf("axis %d path = %q, want %q", i, got, w)
		}
	}
	n := q.Axes[0]
	if !n.Relax.Has(pattern.LND) || !n.Relax.Has(pattern.SP) || !n.Relax.Has(pattern.PCAD) {
		t.Errorf("$n relax = %v", n.Relax)
	}
	p := q.Axes[1]
	if !p.Relax.Has(pattern.LND) || p.Relax.Has(pattern.SP) || !p.Relax.Has(pattern.PCAD) {
		t.Errorf("$p relax = %v", p.Relax)
	}
	y := q.Axes[2]
	if !y.Relax.Has(pattern.LND) || y.Relax.Has(pattern.SP) || y.Relax.Has(pattern.PCAD) {
		t.Errorf("$y relax = %v", y.Relax)
	}
	if q.Agg != pattern.Count {
		t.Errorf("agg = %v", q.Agg)
	}
}

func TestParseDBLPQuery(t *testing.T) {
	// The §4.5 experiment: cube articles by /author, /month, /year, /journal.
	q, err := Parse(`
for $a in doc("dblp.xml")//article,
    $au in $a/author,
    $m in $a/month,
    $y in $a/year,
    $j in $a/journal
x3 $a/@key by $au (LND), $m (LND), $y (LND), $j (LND)
return count($a)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Axes) != 4 {
		t.Fatalf("axes = %d", len(q.Axes))
	}
	if q.FactIDPath.String() != "/@key" {
		t.Errorf("fact id = %s", q.FactIDPath)
	}
}

func TestParseChainedBindings(t *testing.T) {
	q, err := Parse(`
for $b in doc("x")//pub, $a in $b/author, $n in $a/name
cube $b by $n (LND)
return COUNT($b)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.Axes[0].Path.String(); got != "/author/name" {
		t.Errorf("chained path = %q, want /author/name", got)
	}
}

func TestParseSumWithMeasure(t *testing.T) {
	q, err := Parse(`
for $b in doc("x")//pub, $y in $b/year
x3 $b by $y (LND)
return SUM($b/price)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Agg != pattern.Sum || q.MeasurePath.String() != "/price" {
		t.Errorf("agg=%v measure=%s", q.Agg, q.MeasurePath)
	}
}

func TestParseMeasureThroughBinding(t *testing.T) {
	q, err := Parse(`
for $b in doc("x")//pub, $y in $b/year, $pr in $b/info/price
x3 $b by $y (LND)
return SUM($pr)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.MeasurePath.String() != "/info/price" {
		t.Errorf("measure = %s", q.MeasurePath)
	}
}

func TestParseAxisWithoutRelaxations(t *testing.T) {
	q, err := Parse(`
for $b in doc("x")//pub, $y in $b/year
x3 $b by $y
return COUNT($b)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Axes[0].Relax != 0 {
		t.Errorf("relax = %v, want empty", q.Axes[0].Relax)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no for":          `$b in doc("x")//p x3 $b by $b return COUNT($b)`,
		"no doc binding":  `for $b in $c/x x3 $b by $b return COUNT($b)`,
		"two doc roots":   `for $a in doc("x")//p, $b in doc("y")//q x3 $a by $b return COUNT($a)`,
		"unbound axis":    `for $b in doc("x")//p x3 $b by $z return COUNT($b)`,
		"unbound in for":  `for $b in doc("x")//p, $n in $q/name x3 $b by $n (LND) return COUNT($b)`,
		"circular":        `for $b in doc("x")//p, $m in $n/a, $n in $m/b x3 $b by $n (LND) return COUNT($b)`,
		"bad relax":       `for $b in doc("x")//p, $n in $b/a x3 $b by $n (XYZ) return COUNT($b)`,
		"bad agg":         `for $b in doc("x")//p, $n in $b/a x3 $b by $n (LND) return MEDIAN($b)`,
		"target not fact": `for $b in doc("x")//p, $n in $b/a x3 $n by $n (LND) return COUNT($b)`,
		"axis is fact":    `for $b in doc("x")//p, $n in $b/a x3 $b by $b return COUNT($b)`,
		"trailing junk":   `for $b in doc("x")//p, $n in $b/a x3 $b by $n (LND) return COUNT($b) garbage`,
		"dup binding":     `for $b in doc("x")//p, $b in $b/a x3 $b by $b (LND) return COUNT($b)`,
		"sum no measure":  `for $b in doc("x")//p, $n in $b/a x3 $b by $n (LND) return SUM($b)`,
		"unterminated":    `for $b in doc("x)//p x3 $b by $b return COUNT($b)`,
		"bare dollar":     `for $ in doc("x")//p x3 $ by $ return COUNT($)`,
		"empty":           ``,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: Parse succeeded unexpectedly", name)
		}
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	for _, kw := range []string{"X3", "x3", "X^3", "CUBE", "cube"} {
		src := `FOR $b IN doc("x")//p, $n IN $b/a ` + kw + ` $b BY $n (lnd) RETURN Count($b)`
		if _, err := Parse(src); err != nil {
			t.Errorf("keyword %q: %v", kw, err)
		}
	}
}

func TestParsedQueryRoundTripsThroughString(t *testing.T) {
	q, err := Parse(query1Text)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"//publication", "/author/name", "COUNT"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
