// Package xq parses the X³ query language: the XQuery FLWOR fragment the
// paper augments with an X³ clause (§2.3, Query 1):
//
//	for $b in doc("book.xml")//publication,
//	    $n in $b/author/name,
//	    $p in $b//publisher/@id,
//	    $y in $b/year
//	x^3 $b/@id by $n (LND, SP, PC-AD),
//	           $p (LND, PC-AD),
//	           $y (LND)
//	return COUNT($b).
//
// Parse returns the corresponding pattern.CubeQuery.
package xq

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF    tokKind = iota
	tokName           // for, in, by, return, COUNT, LND, PC-AD, x3 ...
	tokVar            // $b
	tokString         // "book.xml"
	tokPath           // a /-led path fragment, kept raw for pattern parsing
	tokLParen
	tokRParen
	tokComma
	tokDot    // statement-terminating period
	tokNumber // integer literal (HAVING threshold)
	tokGE     // ">="
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokName:
		return "name"
	case tokVar:
		return "variable"
	case tokString:
		return "string"
	case tokPath:
		return "path"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokNumber:
		return "number"
	case tokGE:
		return "'>='"
	}
	return "token"
}

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer splits the query text into tokens. Paths are recognized as single
// tokens: any maximal run starting with '/' consisting of path characters.
type lexer struct {
	src string
	pos int
}

// The paper writes the clause keyword as X^3; normalize the caret away so
// it lexes as the single name "X3".
func newLexer(src string) *lexer {
	return &lexer{src: strings.ReplaceAll(src, "^", "")}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '/':
		end := l.pos
		for end < len(l.src) && isPathByte(l.src[end]) {
			end++
		}
		text := l.src[l.pos:end]
		l.pos = end
		return token{tokPath, text, start}, nil
	case c == '$':
		end := l.pos + 1
		for end < len(l.src) && isNameByte(l.src[end], end == l.pos+1) {
			end++
		}
		if end == l.pos+1 {
			return token{}, fmt.Errorf("xq: bare '$' at offset %d", start)
		}
		text := l.src[l.pos:end]
		l.pos = end
		return token{tokVar, text, start}, nil
	case c == '"' || c == '\'':
		quote := c
		end := l.pos + 1
		for end < len(l.src) && l.src[end] != quote {
			end++
		}
		if end >= len(l.src) {
			return token{}, fmt.Errorf("xq: unterminated string at offset %d", start)
		}
		text := l.src[l.pos+1 : end]
		l.pos = end + 1
		return token{tokString, text, start}, nil
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokGE, ">=", start}, nil
		}
		return token{}, fmt.Errorf("xq: expected '>=' at offset %d", start)
	case c >= '0' && c <= '9':
		end := l.pos
		for end < len(l.src) && l.src[end] >= '0' && l.src[end] <= '9' {
			end++
		}
		text := l.src[l.pos:end]
		l.pos = end
		return token{tokNumber, text, start}, nil
	case isNameByte(c, true):
		end := l.pos
		for end < len(l.src) && isNameByte(l.src[end], end == l.pos) {
			end++
		}
		// A trailing '.' that ends the statement must not be eaten as a
		// name character ("COUNT($b)." -> the ')' already stopped us, but
		// "LND." inside would; strip trailing dots from names).
		text := l.src[l.pos:end]
		for len(text) > 1 && text[len(text)-1] == '.' {
			text = text[:len(text)-1]
			end--
		}
		l.pos = end
		return token{tokName, text, start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	}
	return token{}, fmt.Errorf("xq: unexpected character %q at offset %d", c, start)
}

func isNameByte(c byte, first bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
		return true
	}
	if first {
		return false
	}
	return c >= '0' && c <= '9' || c == '-' || c == '.'
}

// isPathByte accepts the bytes that may appear inside a path token,
// including existence predicates like //publication[author]/year.
func isPathByte(c byte) bool {
	return isNameByte(c, false) || c == '/' || c == '@' || c == '*' || c == '[' || c == ']'
}
