package store

import (
	"path/filepath"
	"testing"

	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/pattern"
	"x3/internal/sjoin"
	"x3/internal/xmltree"
)

func benchStore(b *testing.B, poolPages int) *Store {
	b.Helper()
	axes := []dataset.AxisConfig{
		{Tag: "w0", Cardinality: 30, Relax: pattern.RelaxSet(0).With(pattern.LND)},
		{Tag: "w1", Cardinality: 30, Relax: pattern.RelaxSet(0).With(pattern.LND)},
	}
	doc := dataset.Treebank(dataset.TreebankConfig{Seed: 4, Facts: 5000, Axes: axes, Noise: 2})
	path := filepath.Join(b.TempDir(), "bench.x3st")
	if err := Create(path, doc); err != nil {
		b.Fatal(err)
	}
	st, err := Open(path, poolPages)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st
}

// BenchmarkByTagCold measures element-index scans with a cold pool.
func BenchmarkByTagCold(b *testing.B) {
	st := benchStore(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.DropCache()
		items, err := st.ByTag("w0")
		if err != nil || len(items) == 0 {
			b.Fatalf("%d items, %v", len(items), err)
		}
	}
}

// BenchmarkEvaluateOverStore measures full structural-join pattern
// evaluation against the paged file, cold cache per iteration (the
// paper's measurement mode).
func BenchmarkEvaluateOverStore(b *testing.B) {
	st := benchStore(b, 1024)
	axes := []dataset.AxisConfig{
		{Tag: "w0", Cardinality: 30, Relax: pattern.RelaxSet(0).With(pattern.LND)},
		{Tag: "w1", Cardinality: 30, Relax: pattern.RelaxSet(0).With(pattern.LND)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.DropCache()
		lat, err := lattice.New(dataset.TreebankQuery(axes))
		if err != nil {
			b.Fatal(err)
		}
		set, err := sjoin.Evaluate(st, lat)
		if err != nil || set.NumFacts() != 5000 {
			b.Fatalf("facts=%d err=%v", set.NumFacts(), err)
		}
	}
}

// BenchmarkPoolPressure measures random node access under a tiny pool
// (heavy eviction) vs. an ample one.
func BenchmarkPoolPressure(b *testing.B) {
	for _, pages := range []int{4, 4096} {
		st := benchStore(b, pages)
		name := "tiny"
		if pages > 4 {
			name = "ample"
		}
		b.Run(name, func(b *testing.B) {
			n := st.NumNodes()
			for i := 0; i < b.N; i++ {
				id := (i * 7919) % n
				if _, err := st.Value(xmltree.NodeID(id)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
