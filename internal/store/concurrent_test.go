package store

import (
	"sync"
	"testing"

	"x3/internal/dataset"
	"x3/internal/pattern"
	"x3/internal/xmltree"
)

// TestConcurrentReaders hammers one store from many goroutines with a
// tiny pool (heavy eviction), checking values stay correct under races.
// Run with -race for full effect.
func TestConcurrentReaders(t *testing.T) {
	axes := []dataset.AxisConfig{
		{Tag: "w0", Cardinality: 20, Relax: pattern.RelaxSet(0).With(pattern.LND)},
	}
	doc := dataset.Treebank(dataset.TreebankConfig{Seed: 12, Facts: 1500, Axes: axes, Noise: 2})
	st := createStore(t, doc, 8)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			n := st.NumNodes()
			for i := 0; i < 400; i++ {
				id := xmltree.NodeID((seed*911 + i*37) % n)
				v, err := st.Value(id)
				if err != nil {
					errs <- err
					return
				}
				if v != doc.Node(id).Value {
					errs <- errValueMismatch
					return
				}
				if i%50 == 0 {
					if _, err := st.ByTag("w0"); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st.Stats().Evictions == 0 {
		t.Error("tiny pool never evicted under concurrency")
	}
}

var errValueMismatch = &mismatchErr{}

type mismatchErr struct{}

func (*mismatchErr) Error() string { return "store: concurrent read returned wrong value" }
