// Package store is a paged, native XML store in the mould of TIMBER (the
// substrate the paper implements its cube algorithms on): region-encoded
// nodes in fixed-width records, a value heap, a per-tag element index
// holding (id, start, end, level) streams for structural joins, and a
// read-side LRU buffer pool with a configurable frame budget.
//
// A Store implements sjoin.Source, so the structural-join evaluator runs
// directly against the paged file; DropCache gives the paper's cold-cache
// measurement mode.
//
// File layout (all pages PageSize bytes):
//
//	page 0          meta: magic, node/tag counts, section table
//	tag dictionary  uvarint count, then length-prefixed tag strings
//	value heap      concatenated node value bytes
//	node records    fixed 40-byte records in node-ID order
//	index directory 16 bytes per tag: stream offset u64, entry count u32, pad
//	index streams   per tag: delta-encoded (id, start, len, level) entries
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"x3/internal/fault"
	"x3/internal/obs"
	"x3/internal/xmltree"
)

var storeMagic = [4]byte{'X', '3', 'S', 'T'}

const (
	storeVersion  = 1
	nodeRecSize   = 40
	indexDirEntry = 16
)

// Store is an open page file.
type Store struct {
	f    *os.File
	pool *pool

	numNodes int
	tags     []string
	tagIDs   map[string]int

	secDict   section
	secHeap   section
	secNodes  section
	secIdxDir section
	secIdx    section
}

// NodeInfo is one decoded node record.
type NodeInfo struct {
	ID          xmltree.NodeID
	Parent      xmltree.NodeID
	FirstChild  xmltree.NodeID
	NextSibling xmltree.NodeID
	Start, End  uint32
	Level       uint16
	Kind        xmltree.Kind
	Tag         string
}

// Create bulk-loads the document into a new store file at path.
func Create(path string, doc *xmltree.Document) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)

	// Assign tag IDs in sorted order.
	tags := doc.Tags()
	tagID := map[string]int{}
	for i, t := range tags {
		tagID[t] = i
	}

	// Build the sections in memory.
	var dict []byte
	dict = appendUvarint(dict, uint64(len(tags)))
	for _, t := range tags {
		dict = appendUvarint(dict, uint64(len(t)))
		dict = append(dict, t...)
	}

	var heap []byte
	nodes := make([]byte, 0, len(doc.Nodes)*nodeRecSize)
	for i := range doc.Nodes {
		n := &doc.Nodes[i]
		valOff := uint64(len(heap))
		heap = append(heap, n.Value...)
		var rec [nodeRecSize]byte
		binary.BigEndian.PutUint32(rec[0:], uint32(n.Parent))
		binary.BigEndian.PutUint32(rec[4:], uint32(n.FirstChild))
		binary.BigEndian.PutUint32(rec[8:], uint32(n.NextSibling))
		binary.BigEndian.PutUint32(rec[12:], n.Start)
		binary.BigEndian.PutUint32(rec[16:], n.End)
		binary.BigEndian.PutUint16(rec[20:], n.Level)
		rec[22] = byte(n.Kind)
		binary.BigEndian.PutUint32(rec[24:], uint32(tagID[n.Tag]))
		binary.BigEndian.PutUint64(rec[28:], valOff)
		binary.BigEndian.PutUint32(rec[36:], uint32(len(n.Value)))
		nodes = append(nodes, rec[:]...)
	}

	// Element index: per tag, delta-encoded entries in document order.
	var idx []byte
	idxDir := make([]byte, len(tags)*indexDirEntry)
	for ti, t := range tags {
		ids := doc.ByTag(t)
		binary.BigEndian.PutUint64(idxDir[ti*indexDirEntry:], uint64(len(idx)))
		binary.BigEndian.PutUint32(idxDir[ti*indexDirEntry+8:], uint32(len(ids)))
		prevID, prevStart := uint64(0), uint64(0)
		for _, id := range ids {
			n := doc.Node(id)
			idx = appendUvarint(idx, uint64(id)-prevID)
			idx = appendUvarint(idx, uint64(n.Start)-prevStart)
			idx = appendUvarint(idx, uint64(n.End-n.Start))
			idx = appendUvarint(idx, uint64(n.Level))
			prevID, prevStart = uint64(id), uint64(n.Start)
		}
	}

	// Lay out sections on page boundaries after the meta page.
	type sec struct {
		data []byte
		page uint32
	}
	secs := []*sec{{data: dict}, {data: heap}, {data: nodes}, {data: idxDir}, {data: idx}}
	next := uint32(1)
	for _, s := range secs {
		s.page = next
		next += uint32((len(s.data) + PageSize - 1) / PageSize)
	}

	// Meta page.
	meta := make([]byte, PageSize)
	copy(meta, storeMagic[:])
	meta[4] = storeVersion
	binary.BigEndian.PutUint32(meta[8:], uint32(len(doc.Nodes)))
	binary.BigEndian.PutUint32(meta[12:], uint32(len(tags)))
	off := 16
	for _, s := range secs {
		binary.BigEndian.PutUint32(meta[off:], s.page)
		binary.BigEndian.PutUint64(meta[off+4:], uint64(len(s.data)))
		off += 12
	}
	if _, err := w.Write(meta); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, s := range secs {
		if _, err := w.Write(s.data); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if pad := (PageSize - len(s.data)%PageSize) % PageSize; pad > 0 {
			if _, err := w.Write(make([]byte, pad)); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Options tune an open store's fault tolerance (see cellfile.ReadOptions
// for the shape).
type Options struct {
	// Fault wraps all page reads with injected faults (nil: no injection).
	Fault *fault.Injector
	// Retries is the number of re-read attempts after a failed page read;
	// 0 selects the default, negative disables retrying.
	Retries int
	// RetryBackoff is the first retry's backoff (doubling per attempt);
	// 0 selects the default.
	RetryBackoff time.Duration
}

func (o Options) retries() int {
	if o.Retries < 0 {
		return 0
	}
	if o.Retries == 0 {
		return defaultPageRetries
	}
	return o.Retries
}

func (o Options) backoff() time.Duration {
	if o.RetryBackoff <= 0 {
		return defaultPageBackoff
	}
	return o.RetryBackoff
}

// Open opens a store file with a buffer pool of poolPages frames.
func Open(path string, poolPages int) (*Store, error) {
	return OpenWith(path, poolPages, Options{})
}

// OpenWith opens a store file with explicit fault-tolerance options. The
// meta page and every later page read go through the same (possibly
// fault-wrapped) reader and retry budget.
func OpenWith(path string, poolPages int, opt Options) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ra := opt.Fault.ReaderAt("store.page", f)
	st := &Store{f: f, pool: newPool(ra, poolPages, opt.retries(), opt.backoff())}
	meta := make([]byte, PageSize)
	if err := st.pool.readPage(0, meta); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: meta page: %w", err)
	}
	if [4]byte(meta[0:4]) != storeMagic {
		f.Close()
		return nil, fmt.Errorf("%w: %s is not a store file", ErrCorrupt, path)
	}
	if meta[4] != storeVersion {
		f.Close()
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, meta[4])
	}
	st.numNodes = int(binary.BigEndian.Uint32(meta[8:]))
	numTags := int(binary.BigEndian.Uint32(meta[12:]))
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	secp := []*section{&st.secDict, &st.secHeap, &st.secNodes, &st.secIdxDir, &st.secIdx}
	off := 16
	for _, s := range secp {
		s.firstPage = binary.BigEndian.Uint32(meta[off:])
		s.length = int64(binary.BigEndian.Uint64(meta[off+4:]))
		off += 12
		// A section's claimed extent must fit the file: catching it here
		// turns dangling offsets into ErrCorrupt at open instead of read
		// failures (or silent zero pages) mid-query.
		if s.length < 0 || s.firstPage < 1 ||
			int64(s.firstPage)*PageSize+s.length > size {
			f.Close()
			return nil, fmt.Errorf("%w: %s: section [page %d, +%d bytes] exceeds %d-byte file",
				ErrCorrupt, path, s.firstPage, s.length, size)
		}
	}
	if int64(st.numNodes)*nodeRecSize > st.secNodes.length {
		f.Close()
		return nil, fmt.Errorf("%w: %s: %d nodes exceed the node section (%d bytes)",
			ErrCorrupt, path, st.numNodes, st.secNodes.length)
	}
	if int64(numTags)*indexDirEntry > st.secIdxDir.length {
		f.Close()
		return nil, fmt.Errorf("%w: %s: %d tags exceed the index directory (%d bytes)",
			ErrCorrupt, path, numTags, st.secIdxDir.length)
	}
	// Load the tag dictionary eagerly; it is tiny.
	dict := make([]byte, st.secDict.length)
	if err := st.pool.readAt(st.secDict, 0, dict); err != nil {
		f.Close()
		return nil, err
	}
	cnt, n := binary.Uvarint(dict)
	if n <= 0 || int(cnt) != numTags {
		f.Close()
		return nil, fmt.Errorf("%w: %s: corrupt tag dictionary", ErrCorrupt, path)
	}
	dict = dict[n:]
	st.tagIDs = make(map[string]int, numTags)
	for i := 0; i < numTags; i++ {
		l, n := binary.Uvarint(dict)
		if n <= 0 || int(l) > len(dict)-n {
			f.Close()
			return nil, fmt.Errorf("%w: %s: corrupt tag dictionary entry %d", ErrCorrupt, path, i)
		}
		tag := string(dict[n : n+int(l)])
		dict = dict[n+int(l):]
		st.tags = append(st.tags, tag)
		st.tagIDs[tag] = i
	}
	return st, nil
}

// Close releases the file.
func (s *Store) Close() error { return s.f.Close() }

// NumNodes returns the number of stored nodes.
func (s *Store) NumNodes() int { return s.numNodes }

// Stats returns buffer pool statistics.
func (s *Store) Stats() PoolStats { return s.pool.snapshot() }

// Observe mirrors the buffer pool's activity into the registry under the
// store.pool.* keys (lookups, hits, misses, reads, evictions). A nil
// registry detaches observability at zero overhead. Call before issuing
// concurrent reads.
func (s *Store) Observe(reg *obs.Registry) { s.pool.observe(reg) }

// DropCache empties the buffer pool, forcing cold reads — the paper
// measures all runs with a cold cache.
func (s *Store) DropCache() { s.pool.drop() }

// Node reads one node record.
func (s *Store) Node(id xmltree.NodeID) (NodeInfo, error) {
	if int(id) < 0 || int(id) >= s.numNodes {
		return NodeInfo{}, fmt.Errorf("store: node %d out of range", id)
	}
	var rec [nodeRecSize]byte
	if err := s.pool.readAt(s.secNodes, int64(id)*nodeRecSize, rec[:]); err != nil {
		return NodeInfo{}, err
	}
	tagID := binary.BigEndian.Uint32(rec[24:])
	if int(tagID) >= len(s.tags) {
		return NodeInfo{}, fmt.Errorf("%w: node %d has corrupt tag id %d", ErrCorrupt, id, tagID)
	}
	return NodeInfo{
		ID:          id,
		Parent:      xmltree.NodeID(int32(binary.BigEndian.Uint32(rec[0:]))),
		FirstChild:  xmltree.NodeID(int32(binary.BigEndian.Uint32(rec[4:]))),
		NextSibling: xmltree.NodeID(int32(binary.BigEndian.Uint32(rec[8:]))),
		Start:       binary.BigEndian.Uint32(rec[12:]),
		End:         binary.BigEndian.Uint32(rec[16:]),
		Level:       binary.BigEndian.Uint16(rec[20:]),
		Kind:        xmltree.Kind(rec[22]),
		Tag:         s.tags[tagID],
	}, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(b, buf[:n]...)
}
