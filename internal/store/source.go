package store

import (
	"encoding/binary"
	"fmt"

	"x3/internal/sjoin"
	"x3/internal/xmltree"
)

// ByTag implements sjoin.Source: it decodes the tag's element-index stream
// into document-ordered items without touching node pages, the way
// TIMBER's element index feeds its structural joins.
func (s *Store) ByTag(tag string) ([]sjoin.Item, error) {
	ti, ok := s.tagIDs[tag]
	if !ok {
		return nil, nil
	}
	var dir [indexDirEntry]byte
	if err := s.pool.readAt(s.secIdxDir, int64(ti)*indexDirEntry, dir[:]); err != nil {
		return nil, err
	}
	off := int64(binary.BigEndian.Uint64(dir[0:]))
	count := int(binary.BigEndian.Uint32(dir[8:]))
	c := &cursor{p: s.pool, s: s.secIdx, off: off}
	defer c.close()
	out := make([]sjoin.Item, 0, count)
	prevID, prevStart := uint64(0), uint64(0)
	for i := 0; i < count; i++ {
		dID, err := binary.ReadUvarint(c)
		if err != nil {
			return nil, fmt.Errorf("store: index stream for %q: %w", tag, err)
		}
		dStart, err := binary.ReadUvarint(c)
		if err != nil {
			return nil, err
		}
		span, err := binary.ReadUvarint(c)
		if err != nil {
			return nil, err
		}
		level, err := binary.ReadUvarint(c)
		if err != nil {
			return nil, err
		}
		prevID += dID
		prevStart += dStart
		out = append(out, sjoin.Item{
			ID:    xmltree.NodeID(prevID),
			Start: uint32(prevStart),
			End:   uint32(prevStart + span),
			Level: uint16(level),
		})
	}
	return out, nil
}

// Tags implements sjoin.Source.
func (s *Store) Tags() ([]string, error) { return s.tags, nil }

// Value implements sjoin.Source: it reads the node record and then its
// slice of the value heap.
func (s *Store) Value(id xmltree.NodeID) (string, error) {
	if int(id) < 0 || int(id) >= s.numNodes {
		return "", fmt.Errorf("store: node %d out of range", id)
	}
	var rec [nodeRecSize]byte
	if err := s.pool.readAt(s.secNodes, int64(id)*nodeRecSize, rec[:]); err != nil {
		return "", err
	}
	valOff := int64(binary.BigEndian.Uint64(rec[28:]))
	valLen := int(binary.BigEndian.Uint32(rec[36:]))
	if valLen == 0 {
		return "", nil
	}
	buf := make([]byte, valLen)
	if err := s.pool.readAt(s.secHeap, valOff, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

var _ sjoin.Source = (*Store)(nil)
