package store

import (
	"testing"

	"x3/internal/dataset"
	"x3/internal/obs"
	"x3/internal/pattern"
	"x3/internal/xmltree"
)

// TestPoolMetricsInvariants drives eviction churn through an observed pool
// and checks the accounting identities: every lookup is either a hit or a
// miss, and every miss causes exactly one physical read. The registry
// counters must also agree with the pool's own PoolStats.
func TestPoolMetricsInvariants(t *testing.T) {
	doc := dataset.Treebank(dataset.TreebankConfig{
		Seed: 3, Facts: 2000,
		Axes: []dataset.AxisConfig{{Tag: "w0", Cardinality: 50,
			Relax: pattern.RelaxSet(0).With(pattern.LND)}},
		Noise: 3,
	})
	st := createStore(t, doc, 4)
	reg := obs.New()
	st.Observe(reg)
	for i := 0; i < st.NumNodes(); i += 7 {
		if _, err := st.Value(xmltree.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	c := snap.Counters
	lookups, hits, misses := c["store.pool.lookups"], c["store.pool.hits"], c["store.pool.misses"]
	reads, evictions := c["store.pool.reads"], c["store.pool.evictions"]
	if lookups == 0 {
		t.Fatal("no lookups recorded")
	}
	if hits+misses != lookups {
		t.Errorf("hits (%d) + misses (%d) != lookups (%d)", hits, misses, lookups)
	}
	if reads != misses {
		t.Errorf("reads (%d) != misses (%d)", reads, misses)
	}
	if evictions == 0 {
		t.Error("4-frame pool never evicted")
	}

	// The registry mirrors what it saw since Observe; the pool's own stats
	// include the pre-Observe reads done by Open, so counters are bounded
	// by them.
	ps := st.Stats()
	if hits > ps.Hits || misses > ps.Misses || reads > ps.Reads || evictions > ps.Evictions {
		t.Errorf("registry counters exceed pool stats: reg={%d %d %d %d} pool=%+v",
			hits, misses, reads, evictions, ps)
	}
}
