package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/pattern"
	"x3/internal/sjoin"
	"x3/internal/xmltree"
	"x3/internal/xq"
)

const paperXML = `
<database>
  <publication id="1">
    <author id="a1"><name>John</name></author>
    <author id="a2"><name>Jane</name></author>
    <publisher id="p1"/>
    <year>2003</year>
  </publication>
  <publication id="2">
    <author id="a3"><name>Bob</name></author>
    <publisher id="p1"/>
    <year>2004</year>
    <year>2005</year>
  </publication>
  <publication id="3">
    <authors><author id="a1"><name>John</name></author></authors>
    <year>2003</year>
  </publication>
  <publication id="4">
    <author id="a4"><name>Amy</name></author>
    <pubData><publisher id="p2"/><year>2005</year></pubData>
  </publication>
</database>`

func createStore(t *testing.T, doc *xmltree.Document, poolPages int) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.x3st")
	if err := Create(path, doc); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, poolPages)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestRoundTripNodes(t *testing.T) {
	doc, err := xmltree.ParseString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	st := createStore(t, doc, 64)
	if st.NumNodes() != doc.Len() {
		t.Fatalf("NumNodes = %d, want %d", st.NumNodes(), doc.Len())
	}
	for i := range doc.Nodes {
		want := &doc.Nodes[i]
		got, err := st.Node(xmltree.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		if got.Tag != want.Tag || got.Start != want.Start || got.End != want.End ||
			got.Level != want.Level || got.Kind != want.Kind ||
			got.Parent != want.Parent || got.FirstChild != want.FirstChild ||
			got.NextSibling != want.NextSibling {
			t.Fatalf("node %d: %+v vs %+v", i, got, want)
		}
		v, err := st.Value(xmltree.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		if v != want.Value {
			t.Fatalf("node %d value %q, want %q", i, v, want.Value)
		}
	}
}

func TestByTagMatchesDocument(t *testing.T) {
	doc, err := xmltree.ParseString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	st := createStore(t, doc, 64)
	tags, err := st.Tags()
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != len(doc.Tags()) {
		t.Fatalf("tags %v vs %v", tags, doc.Tags())
	}
	for _, tag := range tags {
		items, err := st.ByTag(tag)
		if err != nil {
			t.Fatal(err)
		}
		want := doc.ByTag(tag)
		if len(items) != len(want) {
			t.Fatalf("%s: %d items, want %d", tag, len(items), len(want))
		}
		for i, it := range items {
			n := doc.Node(want[i])
			if it.ID != want[i] || it.Start != n.Start || it.End != n.End || it.Level != n.Level {
				t.Fatalf("%s[%d]: %+v vs %+v", tag, i, it, n)
			}
		}
	}
	// Unknown tag: empty, no error.
	items, err := st.ByTag("nosuch")
	if err != nil || items != nil {
		t.Fatalf("ByTag(nosuch) = %v, %v", items, err)
	}
}

// TestStoreBackedEvaluation runs the full pipeline — generate, store on
// disk, evaluate with structural joins over the paged file — and compares
// against the in-memory evaluator.
func TestStoreBackedEvaluation(t *testing.T) {
	axes := []dataset.AxisConfig{
		{Tag: "w0", Cardinality: 6, PMissing: 0.2, PNest: 0.3,
			Relax: pattern.RelaxSet(0).With(pattern.LND).With(pattern.PCAD)},
		{Tag: "w1", Cardinality: 4, PRepeat: 0.3,
			Relax: pattern.RelaxSet(0).With(pattern.LND)},
	}
	doc := dataset.Treebank(dataset.TreebankConfig{Seed: 9, Facts: 200, Axes: axes, Noise: 1})
	q := dataset.TreebankQuery(axes)

	lat1, err := lattice.New(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := match.Evaluate(doc, lat1)
	if err != nil {
		t.Fatal(err)
	}

	st := createStore(t, doc, 32)
	lat2, err := lattice.New(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sjoin.Evaluate(st, lat2)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFacts() != want.NumFacts() {
		t.Fatalf("facts %d vs %d", got.NumFacts(), want.NumFacts())
	}
	for i := range want.Facts {
		wf, gf := want.Facts[i], got.Facts[i]
		if wf.Key != gf.Key {
			t.Fatalf("fact %d key %q vs %q", i, wf.Key, gf.Key)
		}
		for a := range wf.Axes {
			for s := range wf.Axes[a] {
				ws := fmt.Sprint(valueStrings(want, wf, a, s))
				gs := fmt.Sprint(valueStrings(got, gf, a, s))
				if ws != gs {
					t.Fatalf("fact %d axis %d state %d: %s vs %s", i, a, s, ws, gs)
				}
			}
		}
	}
	if st.Stats().Reads == 0 {
		t.Error("no physical page reads recorded")
	}
}

func valueStrings(set *match.Set, f *match.Fact, a, s int) []string {
	out := []string{}
	for _, id := range f.Values(a, s) {
		out = append(out, set.Dicts[a].Value(id))
	}
	return out
}

func TestQuery1OverStore(t *testing.T) {
	doc, err := xmltree.ParseString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	q, err := xq.Parse(`
for $b in doc("book.xml")//publication,
    $n in $b/author/name,
    $p in $b//publisher/@id,
    $y in $b/year
x3 $b/@id by $n (LND, SP, PC-AD), $p (LND, PC-AD), $y (LND)
return COUNT($b)`)
	if err != nil {
		t.Fatal(err)
	}
	st := createStore(t, doc, 16)
	lat, err := lattice.New(q)
	if err != nil {
		t.Fatal(err)
	}
	set, err := sjoin.Evaluate(st, lat)
	if err != nil {
		t.Fatal(err)
	}
	if set.NumFacts() != 4 {
		t.Fatalf("facts = %d", set.NumFacts())
	}
	if set.Facts[0].Key != "1" || set.Facts[3].Key != "4" {
		t.Fatalf("keys = %q, %q", set.Facts[0].Key, set.Facts[3].Key)
	}
}

func TestTinyPoolEvicts(t *testing.T) {
	doc := dataset.Treebank(dataset.TreebankConfig{
		Seed: 3, Facts: 2000,
		Axes: []dataset.AxisConfig{{Tag: "w0", Cardinality: 50,
			Relax: pattern.RelaxSet(0).With(pattern.LND)}},
		Noise: 3,
	})
	st := createStore(t, doc, 4) // minimum pool
	// Touch many nodes to force eviction churn.
	for i := 0; i < st.NumNodes(); i += 7 {
		if _, err := st.Value(xmltree.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Evictions == 0 {
		t.Errorf("tiny pool never evicted: %+v", stats)
	}
	if stats.Hits == 0 {
		t.Errorf("no hits at all: %+v", stats)
	}
}

func TestDropCacheForcesColdReads(t *testing.T) {
	doc, err := xmltree.ParseString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	st := createStore(t, doc, 64)
	if _, err := st.Value(1); err != nil {
		t.Fatal(err)
	}
	r1 := st.Stats().Reads
	if _, err := st.Value(1); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Reads != r1 {
		t.Fatal("warm read went to disk")
	}
	st.DropCache()
	if _, err := st.Value(1); err != nil {
		t.Fatal(err)
	}
	if st.Stats().Reads == r1 {
		t.Fatal("cold read served from cache")
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing"), 8); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, make([]byte, PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad, 8); err == nil {
		t.Error("zero file accepted")
	}
}

func TestNodeOutOfRange(t *testing.T) {
	doc, err := xmltree.ParseString(`<a><b>x</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	st := createStore(t, doc, 8)
	if _, err := st.Node(99); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := st.Value(-1); err == nil {
		t.Error("negative node accepted")
	}
}
