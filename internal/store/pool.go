package store

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"x3/internal/obs"
)

// PageSize is the fixed page size, matching the paper's 8 KB configuration.
const PageSize = 8192

// Pool read-retry defaults (see ReadOptions in cellfile for the shape):
// a transient page-read fault is retried with doubling backoff before the
// error surfaces to the query.
const (
	defaultPageRetries = 2
	defaultPageBackoff = 200 * time.Microsecond
)

// PoolStats counts buffer pool activity.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Reads     int64 // physical page reads
	Evictions int64
	Retries   int64 // page reads retried after a transient fault
}

// pool is a read-only LRU buffer pool over a page file. It is safe for
// concurrent readers: frame bookkeeping is mutex-protected, and pinned
// frames are never evicted, so the page data a caller holds stays valid
// until unpinned.
type pool struct {
	mu      sync.Mutex
	ra      io.ReaderAt
	cap     int
	retries int
	backoff time.Duration
	frames  map[uint32]*frame
	lru     *list.List // front = most recently used; holds *frame
	stats   PoolStats

	// Cached obs handles (nil = observability off, zero overhead). Set
	// once via observe before concurrent use.
	obsLookups, obsHits, obsMisses, obsReads, obsEvictions, obsRetries *obs.Counter
}

// observe wires the pool's activity into the registry under the
// store.pool.* namespace. reg may be nil (no-op handles).
func (p *pool) observe(reg *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obsLookups = reg.Counter("store.pool.lookups")
	p.obsHits = reg.Counter("store.pool.hits")
	p.obsMisses = reg.Counter("store.pool.misses")
	p.obsReads = reg.Counter("store.pool.reads")
	p.obsEvictions = reg.Counter("store.pool.evictions")
	p.obsRetries = reg.Counter("store.pool.retries")
}

type frame struct {
	pid  uint32
	data []byte
	pins int
	el   *list.Element
}

func newPool(ra io.ReaderAt, capPages, retries int, backoff time.Duration) *pool {
	if capPages < 4 {
		capPages = 4
	}
	return &pool{ra: ra, cap: capPages, retries: retries, backoff: backoff,
		frames: map[uint32]*frame{}, lru: list.New()}
}

// readPage reads one physical page into buf with the pool's retry budget.
// A trailing genuine EOF with partial data is accepted (the last page of
// an unpadded file); anything else — including an injected short read's
// io.ErrUnexpectedEOF — fails the attempt and re-rolls.
func (p *pool) readPage(pid uint32, buf []byte) error {
	var n int
	var err error
	backoff := p.backoff
	for a := 0; ; a++ {
		n, err = p.ra.ReadAt(buf, int64(pid)*PageSize)
		if err == nil || (errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && n > 0) {
			return nil
		}
		if a >= p.retries {
			break
		}
		p.stats.Retries++
		p.obsRetries.Inc()
		time.Sleep(backoff)
		backoff *= 2
	}
	if n == 0 && errors.Is(err, io.EOF) {
		return fmt.Errorf("%w: read page %d: %w", ErrTruncated, pid, err)
	}
	return fmt.Errorf("store: read page %d: %w", pid, err)
}

// page pins and returns the frame for pid. Callers must unpin it.
func (p *pool) page(pid uint32) (*frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obsLookups.Inc()
	if fr, ok := p.frames[pid]; ok {
		p.stats.Hits++
		p.obsHits.Inc()
		fr.pins++
		p.lru.MoveToFront(fr.el)
		return fr, nil
	}
	p.stats.Misses++
	p.obsMisses.Inc()
	if len(p.frames) >= p.cap {
		if err := p.evict(); err != nil {
			return nil, err
		}
	}
	fr := &frame{pid: pid, data: make([]byte, PageSize), pins: 1}
	//x3:nolint(lockhold) single-latch pool by design: a miss reads its page under the pool latch so no two callers fault the same page twice; hits return without blocking, and the capacity bound needs the latch across the read
	if err := p.readPage(pid, fr.data); err != nil {
		// The frame was never published: no map entry, no LRU node, so a
		// failed read leaks nothing and leaves the accounting intact.
		return nil, err
	}
	p.stats.Reads++
	p.obsReads.Inc()
	fr.el = p.lru.PushFront(fr)
	p.frames[pid] = fr
	return fr, nil
}

func (p *pool) unpin(fr *frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr.pins <= 0 {
		panic("store: unpin of unpinned frame")
	}
	fr.pins--
}

// snapshot returns the stats under the lock.
func (p *pool) snapshot() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// evict drops the least recently used unpinned frame. The caller holds
// the pool lock (it is only reached from page).
func (p *pool) evict() error {
	for el := p.lru.Back(); el != nil; el = el.Prev() {
		fr := el.Value.(*frame)
		if fr.pins == 0 {
			p.lru.Remove(el)
			delete(p.frames, fr.pid)
			p.stats.Evictions++
			p.obsEvictions.Inc()
			return nil
		}
	}
	return fmt.Errorf("store: buffer pool of %d pages has no evictable frame", p.cap)
}

// drop empties the pool (cold-cache runs). Pinned frames are a bug.
func (p *pool) drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fr := range p.frames {
		if fr.pins != 0 {
			panic("store: drop with pinned frames")
		}
	}
	p.frames = map[uint32]*frame{}
	p.lru.Init()
}

// section is a byte range of the file spanning whole pages.
type section struct {
	firstPage uint32
	length    int64
}

// readAt copies len(buf) bytes from the section starting at byte offset
// off, crossing pages through the pool.
func (p *pool) readAt(s section, off int64, buf []byte) error {
	if off < 0 || off+int64(len(buf)) > s.length {
		return fmt.Errorf("store: section read [%d,+%d) out of bounds (%d)", off, len(buf), s.length)
	}
	done := 0
	for done < len(buf) {
		pid := s.firstPage + uint32(off/PageSize)
		po := int(off % PageSize)
		n := PageSize - po
		if n > len(buf)-done {
			n = len(buf) - done
		}
		fr, err := p.page(pid)
		if err != nil {
			return err
		}
		copy(buf[done:done+n], fr.data[po:po+n])
		p.unpin(fr)
		done += n
		off += int64(n)
	}
	return nil
}

// cursor is a sequential byte reader over a section, for varint streams.
type cursor struct {
	p   *pool
	s   section
	off int64
	fr  *frame
	pid uint32
}

func (c *cursor) ReadByte() (byte, error) {
	if c.off >= c.s.length {
		return 0, fmt.Errorf("store: cursor past section end")
	}
	pid := c.s.firstPage + uint32(c.off/PageSize)
	if c.fr == nil || pid != c.pid {
		if c.fr != nil {
			c.p.unpin(c.fr)
			c.fr = nil
		}
		fr, err := c.p.page(pid)
		if err != nil {
			return 0, err
		}
		c.fr, c.pid = fr, pid
	}
	b := c.fr.data[c.off%PageSize]
	c.off++
	return b, nil
}

func (c *cursor) close() {
	if c.fr != nil {
		c.p.unpin(c.fr)
		c.fr = nil
	}
}
