package store

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"x3/internal/dataset"
	"x3/internal/fault"
	"x3/internal/obs"
	"x3/internal/pattern"
	"x3/internal/xmltree"
)

func faultStore(t *testing.T, poolPages int, opt Options) (*Store, *xmltree.Document) {
	t.Helper()
	axes := []dataset.AxisConfig{
		{Tag: "w0", Cardinality: 20, Relax: pattern.RelaxSet(0).With(pattern.LND)},
	}
	doc := dataset.Treebank(dataset.TreebankConfig{Seed: 31, Facts: 1500, Axes: axes, Noise: 2})
	path := filepath.Join(t.TempDir(), "t.x3st")
	if err := Create(path, doc); err != nil {
		t.Fatal(err)
	}
	st, err := OpenWith(path, poolPages, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, doc
}

// poolInvariants asserts the frame table is consistent: no pinned frames
// left behind, LRU and map agree, capacity respected.
func poolInvariants(t *testing.T, st *Store) {
	t.Helper()
	p := st.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lru.Len() != len(p.frames) {
		t.Fatalf("LRU has %d entries, frame map %d", p.lru.Len(), len(p.frames))
	}
	if len(p.frames) > p.cap {
		t.Fatalf("pool holds %d frames, capacity %d", len(p.frames), p.cap)
	}
	for el := p.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.pins != 0 {
			t.Fatalf("frame %d still pinned (%d) after all readers returned", fr.pid, fr.pins)
		}
		if p.frames[fr.pid] != fr {
			t.Fatalf("frame %d in LRU but not in map", fr.pid)
		}
	}
}

// TestPoolEvictionUnderConcurrentFaults hammers a tiny pool from many
// goroutines while page reads fail at a high injected rate and no retry
// budget hides them. Every read must either return correct bytes or an
// injected error — and afterwards the pool must hold no leaked pins, no
// map/LRU skew, and no over-capacity frames. Run under -race.
func TestPoolEvictionUnderConcurrentFaults(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 77, ErrEvery: 3, ShortEvery: 5})
	st, doc := faultStore(t, 8, Options{Fault: inj, Retries: -1})
	var wg sync.WaitGroup
	var injected, clean, wrong int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			n := st.NumNodes()
			var inj0, ok0, bad0 int64
			for i := 0; i < 500; i++ {
				id := xmltree.NodeID((seed*811 + i*53) % n)
				v, err := st.Value(id)
				switch {
				case err == nil:
					ok0++
					if v != doc.Node(id).Value {
						bad0++
					}
				case fault.IsInjected(err):
					inj0++
				default:
					bad0++
				}
			}
			mu.Lock()
			injected += inj0
			clean += ok0
			wrong += bad0
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if wrong != 0 {
		t.Fatalf("%d reads returned wrong values or non-injected errors under injection", wrong)
	}
	if injected == 0 || clean == 0 {
		t.Fatalf("degenerate run: %d injected, %d clean", injected, clean)
	}
	poolInvariants(t, st)
	if st.Stats().Evictions == 0 {
		t.Error("tiny pool never evicted under concurrent faults")
	}
	// drop() panics on pinned frames; surviving it proves nothing leaked.
	st.DropCache()
}

// TestPoolRetriesHealTransientFaults gives the pool a retry budget large
// enough that the same fault schedule never surfaces: every read succeeds
// with correct bytes, and the retry counter shows the healing happened.
func TestPoolRetriesHealTransientFaults(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 77, ErrEvery: 3})
	reg := obs.New()
	inj.Observe(reg)
	st, doc := faultStore(t, 8, Options{Fault: inj, Retries: 25, RetryBackoff: time.Microsecond})
	st.Observe(reg)
	n := st.NumNodes()
	for i := 0; i < 300; i++ {
		id := xmltree.NodeID((i * 97) % n)
		v, err := st.Value(id)
		if err != nil {
			t.Fatalf("read %d failed despite retries: %v", i, err)
		}
		if v != doc.Node(id).Value {
			t.Fatalf("read %d returned a wrong value", i)
		}
	}
	if st.Stats().Retries == 0 {
		t.Fatal("no retries recorded under a 1-in-3 fault schedule")
	}
	if reg.Counter("store.pool.retries").Value() != st.Stats().Retries {
		t.Fatal("store.pool.retries counter disagrees with PoolStats.Retries")
	}
	poolInvariants(t, st)
}

// TestOpenErrorsAreSentinels asserts the open path classifies bad files
// with errors.Is-able sentinels instead of strings.
func TestOpenErrorsAreSentinels(t *testing.T) {
	doc, err := xmltree.ParseString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.x3st")
	if err := Create(good, doc); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"bad-magic", func(b []byte) []byte { b[0] = 'Y'; return b }, ErrCorrupt},
		{"bad-version", func(b []byte) []byte { b[4] = 9; return b }, ErrCorrupt},
		{"dangling-section", func(b []byte) []byte { b[16] = 0xFF; return b }, ErrCorrupt},
		{"empty", func(b []byte) []byte { return b[:0] }, ErrTruncated},
	}
	for _, tc := range cases {
		b := tc.mut(append([]byte{}, data...))
		p := filepath.Join(dir, tc.name+".x3st")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(p, 8)
		if err == nil {
			t.Fatalf("%s: opened cleanly", tc.name)
		}
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v; want wrapped %v", tc.name, err, tc.want)
		}
	}
}
