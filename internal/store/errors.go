package store

import "errors"

// Sentinel errors of the store read path, mirroring package cellfile's:
// every error the store returns for bad bytes wraps one of these (or an
// underlying OS error), so callers classify failures with errors.Is
// instead of string matching. ErrCorrupt covers structurally wrong
// metadata (bad magic, impossible counts, dangling offsets), ErrTruncated
// a file that ends before its section table says it should, ErrCancelled
// work cut short by a context.
var (
	ErrCorrupt   = errors.New("store: corrupt")
	ErrTruncated = errors.New("store: truncated")
	ErrCancelled = errors.New("store: cancelled")
)
