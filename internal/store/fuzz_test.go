package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"x3/internal/xmltree"
)

// fuzzSeedStore builds a small valid store file and returns its bytes.
func fuzzSeedStore(tb testing.TB) []byte {
	tb.Helper()
	doc, err := xmltree.ParseString(paperXML)
	if err != nil {
		tb.Fatal(err)
	}
	path := filepath.Join(tb.TempDir(), "seed.x3st")
	if err := Create(path, doc); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzStoreMeta throws arbitrary bytes at the store's open path — the
// meta page ReadAt(meta, 0), the section table, and the tag dictionary —
// which must reject corrupt input with an error (a wrapped ErrCorrupt /
// ErrTruncated for bad bytes), never panic, and never trust a forged
// count or section offset enough to allocate or read out of bounds. The
// seeds cover the dangerous shapes: truncation, bad magic/version, lying
// node and tag counts, and sections dangling past EOF.
func FuzzStoreMeta(f *testing.F) {
	seed := fuzzSeedStore(f)
	f.Add(seed)
	f.Add(seed[:PageSize])   // meta page only, sections gone
	f.Add(seed[:PageSize/2]) // truncated mid-meta
	f.Add(seed[:7])          // shorter than the magic+version
	f.Add([]byte{})          // empty file
	f.Add(seed[PageSize:])   // headless body
	badMagic := append([]byte{}, seed...)
	badMagic[0] = 'Y'
	f.Add(badMagic)
	badVer := append([]byte{}, seed...)
	badVer[4] = 99
	f.Add(badVer)
	// A node count far beyond the node section.
	lyingNodes := append([]byte{}, seed...)
	binary.BigEndian.PutUint32(lyingNodes[8:], 1<<30)
	f.Add(lyingNodes)
	// A tag count beyond the dictionary.
	lyingTags := append([]byte{}, seed...)
	binary.BigEndian.PutUint32(lyingTags[12:], 1<<30)
	f.Add(lyingTags)
	// A section first-page pointing past EOF.
	dangling := append([]byte{}, seed...)
	binary.BigEndian.PutUint32(dangling[16:], 1<<20)
	f.Add(dangling)
	// A section length far beyond the file.
	overlong := append([]byte{}, seed...)
	binary.BigEndian.PutUint64(overlong[20:], 1<<40)
	f.Add(overlong)
	// Garbage where the tag dictionary lives.
	dirtyDict := append([]byte{}, seed...)
	for i := PageSize; i < PageSize+16 && i < len(dirtyDict); i++ {
		dirtyDict[i] = 0xFF
	}
	f.Add(dirtyDict)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.x3st")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path, 8)
		if err != nil {
			return
		}
		defer st.Close()
		// An accepted file must hold its own structural promises: node
		// reads stay in bounds and tag lookups agree with the dictionary.
		n := st.NumNodes()
		if n > 1<<26 {
			t.Fatalf("open accepted a file claiming %d nodes", n)
		}
		for i := 0; i < n && i < 64; i++ {
			if _, err := st.Node(xmltree.NodeID(i)); err != nil {
				// Errors are fine (deeper sections may be damaged); they
				// must just be errors, not panics or wrong reads.
				break
			}
		}
		tags, _ := st.Tags()
		for _, tag := range tags {
			_, _ = st.ByTag(tag)
		}
	})
}
