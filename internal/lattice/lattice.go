// Package lattice models the X³ relaxed-cube lattice (paper §2.3, Fig. 3).
//
// A lattice point — a cuboid — assigns each grouping axis one state of its
// relaxation ladder. The global top is the rigid pattern (finest grouping);
// the global bottom relaxes every axis fully (for all-LND queries, a single
// all-facts group). An edge relaxes exactly one axis by one ladder step.
// For LND-only queries the lattice degenerates to the classic 2^d
// relational cube lattice.
package lattice

import (
	"fmt"
	"strings"

	"x3/internal/pattern"
	"x3/internal/relax"
)

// Point is a cuboid: one ladder-state index per axis. Points are owned by
// a Lattice and must have exactly one entry per axis.
type Point []uint8

// Clone returns a copy of p.
func (p Point) Clone() Point {
	out := make(Point, len(p))
	copy(out, p)
	return out
}

// Lattice is the cuboid lattice of one X³ query.
type Lattice struct {
	Query   *pattern.CubeQuery
	Ladders []relax.Ladder
	dims    []int // states per axis
	size    int   // total number of points
}

// New builds the lattice for a validated query.
func New(q *pattern.CubeQuery) (*Lattice, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	l := &Lattice{Query: q, Ladders: relax.BuildLadders(q)}
	l.size = 1
	for _, lad := range l.Ladders {
		l.dims = append(l.dims, lad.Len())
		l.size *= lad.Len()
		if l.size > 1<<22 {
			return nil, fmt.Errorf("lattice: cube has over %d cuboids; refusing", 1<<22)
		}
	}
	return l, nil
}

// NumAxes returns the number of grouping axes.
func (l *Lattice) NumAxes() int { return len(l.Ladders) }

// Dims returns the ladder length per axis.
func (l *Lattice) Dims() []int { return l.dims }

// Size returns the number of cuboids.
func (l *Lattice) Size() int { return l.size }

// Top returns the rigid point (finest aggregation of interest).
func (l *Lattice) Top() Point { return make(Point, len(l.dims)) }

// Bottom returns the fully relaxed point (coarsest aggregation).
func (l *Lattice) Bottom() Point {
	p := make(Point, len(l.dims))
	for i, d := range l.dims {
		p[i] = uint8(d - 1)
	}
	return p
}

// ID maps a point to a dense identifier in [0, Size).
func (l *Lattice) ID(p Point) uint32 {
	var id uint32
	for i, s := range p {
		id = id*uint32(l.dims[i]) + uint32(s)
	}
	return id
}

// FromID inverts ID.
func (l *Lattice) FromID(id uint32) Point {
	p := make(Point, len(l.dims))
	for i := len(l.dims) - 1; i >= 0; i-- {
		d := uint32(l.dims[i])
		p[i] = uint8(id % d)
		id /= d
	}
	return p
}

// Points enumerates every cuboid, top (rigid) first in mixed-radix order.
func (l *Lattice) Points() []Point {
	out := make([]Point, 0, l.size)
	p := l.Top()
	for {
		out = append(out, p.Clone())
		i := len(p) - 1
		for i >= 0 {
			p[i]++
			if int(p[i]) < l.dims[i] {
				break
			}
			p[i] = 0
			i--
		}
		if i < 0 {
			return out
		}
	}
}

// Deleted reports whether axis a is deleted (LND state) at point p.
func (l *Lattice) Deleted(p Point, a int) bool {
	return l.Ladders[a].States[p[a]].Deleted()
}

// LiveAxes returns the indexes of axes that still group at p.
func (l *Lattice) LiveAxes(p Point) []int {
	var out []int
	for a := range p {
		if !l.Deleted(p, a) {
			out = append(out, a)
		}
	}
	return out
}

// Children returns the points one relaxation step below p (one axis, one
// ladder step more relaxed). In the paper's drawing these are the nodes a
// lattice edge leads to.
func (l *Lattice) Children(p Point) []Point {
	var out []Point
	for a := range p {
		if int(p[a])+1 < l.dims[a] {
			c := p.Clone()
			c[a]++
			out = append(out, c)
		}
	}
	return out
}

// Parents returns the points one relaxation step above p (less relaxed).
func (l *Lattice) Parents(p Point) []Point {
	var out []Point
	for a := range p {
		if p[a] > 0 {
			c := p.Clone()
			c[a]--
			out = append(out, c)
		}
	}
	return out
}

// StatePath returns the axis path of axis a in the state chosen by p, or
// nil when deleted.
func (l *Lattice) StatePath(p Point, a int) pattern.Path {
	return l.Ladders[a].States[p[a]].Path
}

// Label renders a point as e.g. "[$n:SP $p:rigid $y:LND]".
func (l *Lattice) Label(p Point) string {
	parts := make([]string, len(p))
	for a := range p {
		parts[a] = l.Ladders[a].Spec.Var + ":" + l.Ladders[a].States[p[a]].Label
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Tree returns the branched tree pattern of point p (a Fig. 3 box).
func (l *Lattice) Tree(p Point) *relax.Tree {
	return relax.PointTree(l.Query, l.Ladders, p)
}

// MostRelaxedTree returns the Fig. 2 pattern for the whole lattice.
func (l *Lattice) MostRelaxedTree() *relax.Tree {
	return relax.MostRelaxedTree(l.Query, l.Ladders)
}

// Validate checks that p belongs to this lattice.
func (l *Lattice) Validate(p Point) error {
	if len(p) != len(l.dims) {
		return fmt.Errorf("lattice: point has %d axes, want %d", len(p), len(l.dims))
	}
	for a := range p {
		if int(p[a]) >= l.dims[a] {
			return fmt.Errorf("lattice: axis %d state %d out of range [0,%d)", a, p[a], l.dims[a])
		}
	}
	return nil
}
