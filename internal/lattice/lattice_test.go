package lattice

import (
	"strings"
	"testing"

	"x3/internal/pattern"
)

func rs(rels ...pattern.Relaxation) pattern.RelaxSet {
	var s pattern.RelaxSet
	for _, r := range rels {
		s = s.With(r)
	}
	return s
}

func query1() *pattern.CubeQuery {
	return &pattern.CubeQuery{
		FactVar:    "$b",
		FactPath:   pattern.MustParsePath("//publication"),
		FactIDPath: pattern.MustParsePath("/@id"),
		Axes: []pattern.AxisSpec{
			{Var: "$n", Path: pattern.MustParsePath("/author/name"), Relax: rs(pattern.LND, pattern.SP, pattern.PCAD)},
			{Var: "$p", Path: pattern.MustParsePath("//publisher/@id"), Relax: rs(pattern.LND, pattern.PCAD)},
			{Var: "$y", Path: pattern.MustParsePath("/year"), Relax: rs(pattern.LND)},
		},
		Agg: pattern.Count,
	}
}

func mustNew(t *testing.T, q *pattern.CubeQuery) *Lattice {
	t.Helper()
	l, err := New(q)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

func TestQuery1LatticeShape(t *testing.T) {
	l := mustNew(t, query1())
	// Ladders: $n=4, $p=2, $y=2 -> 16 cuboids.
	if got := l.Size(); got != 16 {
		t.Fatalf("Size = %d, want 16", got)
	}
	pts := l.Points()
	if len(pts) != 16 {
		t.Fatalf("Points = %d", len(pts))
	}
	// All distinct IDs, FromID inverts.
	seen := map[uint32]bool{}
	for _, p := range pts {
		id := l.ID(p)
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
		back := l.FromID(id)
		for a := range p {
			if back[a] != p[a] {
				t.Fatalf("FromID(ID(%v)) = %v", p, back)
			}
		}
		if err := l.Validate(p); err != nil {
			t.Fatalf("Validate(%v): %v", p, err)
		}
	}
}

func TestTopBottom(t *testing.T) {
	l := mustNew(t, query1())
	top := l.Top()
	if len(l.LiveAxes(top)) != 3 {
		t.Errorf("top live axes = %v", l.LiveAxes(top))
	}
	bot := l.Bottom()
	if len(l.LiveAxes(bot)) != 0 {
		t.Errorf("bottom live axes = %v", l.LiveAxes(bot))
	}
	if len(l.Parents(top)) != 0 {
		t.Errorf("top has parents")
	}
	if len(l.Children(bot)) != 0 {
		t.Errorf("bottom has children")
	}
	// Top has one child per axis.
	if got := len(l.Children(top)); got != 3 {
		t.Errorf("top children = %d, want 3", got)
	}
}

func TestChildrenParentsInverse(t *testing.T) {
	l := mustNew(t, query1())
	for _, p := range l.Points() {
		for _, c := range l.Children(p) {
			found := false
			for _, pp := range l.Parents(c) {
				if l.ID(pp) == l.ID(p) {
					found = true
				}
			}
			if !found {
				t.Fatalf("child %v of %v does not list it as parent", c, p)
			}
		}
	}
}

func TestEdgeCountMatchesFormula(t *testing.T) {
	// Total downward edges = sum over points of number of axes not at max.
	l := mustNew(t, query1())
	edges := 0
	for _, p := range l.Points() {
		edges += len(l.Children(p))
	}
	// For dims (4,2,2): edges = 3*2*2*... sum formula: for each axis a,
	// (dims[a]-1) * prod(other dims) = 3*4 + 1*8 + 1*8 = 28.
	if edges != 28 {
		t.Errorf("edges = %d, want 28", edges)
	}
}

func TestLNDOnlyDegeneratesToRelationalCube(t *testing.T) {
	q := &pattern.CubeQuery{
		FactVar:  "$b",
		FactPath: pattern.MustParsePath("//publication"),
		Axes: []pattern.AxisSpec{
			{Var: "$a", Path: pattern.MustParsePath("/x"), Relax: rs(pattern.LND)},
			{Var: "$b2", Path: pattern.MustParsePath("/y"), Relax: rs(pattern.LND)},
			{Var: "$c", Path: pattern.MustParsePath("/z"), Relax: rs(pattern.LND)},
		},
		Agg: pattern.Count,
	}
	l := mustNew(t, q)
	if l.Size() != 8 {
		t.Fatalf("LND-only 3-axis lattice size = %d, want 2^3", l.Size())
	}
}

func TestDeletedAndStatePath(t *testing.T) {
	l := mustNew(t, query1())
	p := Point{3, 0, 1} // $n LND, $p rigid, $y LND
	if !l.Deleted(p, 0) || l.Deleted(p, 1) || !l.Deleted(p, 2) {
		t.Fatalf("Deleted flags wrong for %v", p)
	}
	if got := l.StatePath(p, 1).String(); got != "//publisher/@id" {
		t.Errorf("StatePath = %q", got)
	}
	if l.StatePath(p, 0) != nil {
		t.Errorf("deleted axis has a path")
	}
	lbl := l.Label(p)
	if !strings.Contains(lbl, "$n:LND") || !strings.Contains(lbl, "$p:rigid") {
		t.Errorf("Label = %q", lbl)
	}
}

func TestLatticeTreeRendering(t *testing.T) {
	l := mustNew(t, query1())
	s := l.Tree(Point{0, 0, 0}).String()
	if !strings.Contains(s, "/author") {
		t.Errorf("rigid point tree:\n%s", s)
	}
	s = l.MostRelaxedTree().String()
	if !strings.Contains(s, "//name*") {
		t.Errorf("most relaxed tree:\n%s", s)
	}
}

func TestValidateErrors(t *testing.T) {
	l := mustNew(t, query1())
	if err := l.Validate(Point{0, 0}); err == nil {
		t.Error("short point accepted")
	}
	if err := l.Validate(Point{9, 0, 0}); err == nil {
		t.Error("out-of-range state accepted")
	}
	// Invalid query is rejected by New.
	if _, err := New(&pattern.CubeQuery{}); err == nil {
		t.Error("New accepted invalid query")
	}
}

func TestHugeLatticeRefused(t *testing.T) {
	q := &pattern.CubeQuery{
		FactVar:  "$b",
		FactPath: pattern.MustParsePath("//f"),
		Agg:      pattern.Count,
	}
	for i := 0; i < 24; i++ {
		q.Axes = append(q.Axes, pattern.AxisSpec{
			Var:   "$v" + string(rune('a'+i)),
			Path:  pattern.Path{{Axis: pattern.Child, Tag: "t" + string(rune('a'+i))}},
			Relax: rs(pattern.LND),
		})
	}
	if _, err := New(q); err == nil {
		t.Error("2^24-cuboid lattice accepted")
	}
}
