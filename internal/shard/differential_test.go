package shard

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"x3/internal/dataset"
	"x3/internal/fault"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/serve"
)

// The sharded differential sweep — the PR's acceptance suite. For every
// seed and dataset family, every cuboid of the lattice is answered
// through a 3-shard × 2-replica coordinator and compared byte-for-byte
// (canonical form) with a single-node store over the same facts, under
// an escalating failure ladder:
//
//	0 failures — plain scatter-gather must be exact;
//	1 replica of every shard dead — failover and health marking must
//	  keep every answer exact, with zero partial answers;
//	both replicas of one shard dead — the answer must degrade to an
//	  explicit Partial naming exactly that shard's key range, with the
//	  surviving rows equal to a store over the surviving partitions.
//
// Nothing in the ladder is allowed to be silently wrong: either the
// exact answer, or a Partial that says precisely what is missing.

type diffDataset struct {
	name  string
	views int
	build func(tb testing.TB, seed int64) (*lattice.Lattice, *match.Set)
}

func diffDatasets() []diffDataset {
	return []diffDataset{
		{name: "treebank", views: 3, build: func(tb testing.TB, seed int64) (*lattice.Lattice, *match.Set) {
			lat, set, _ := treebankWorkload(tb, seed, 60)
			return lat, set
		}},
		{name: "dblp", views: 5, build: func(tb testing.TB, seed int64) (*lattice.Lattice, *match.Set) {
			cfg := dataset.DefaultDBLPConfig(50, seed)
			cfg.Journals = 6
			cfg.Authors = 25
			doc := dataset.DBLP(cfg)
			lat, err := lattice.New(dataset.DBLPQuery())
			if err != nil {
				tb.Fatal(err)
			}
			set, err := match.Evaluate(doc, lat)
			if err != nil {
				tb.Fatal(err)
			}
			return lat, set
		}},
	}
}

func TestDifferentialShardedFailures(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 2
	}
	const shards = 3
	for _, ds := range diffDatasets() {
		t.Run(ds.name, func(t *testing.T) {
			for seed := int64(1); seed <= seeds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					lat, set := ds.build(t, seed)
					single, err := serve.Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set,
						serve.Options{Views: ds.views, BlockCells: 16})
					if err != nil {
						t.Fatal(err)
					}
					defer single.Close()
					reg := obs.New()
					c, err := New(t.TempDir(), lat, set, Options{
						Shards: shards, Replicas: 2, ProbeEvery: -1, Registry: reg,
						Store: serve.Options{Views: ds.views, BlockCells: 16},
					})
					if err != nil {
						t.Fatal(err)
					}
					defer c.Close()

					// 0 failures: exact on every cuboid.
					sweepExact(t, lat, c, single, "clean")

					// 1 replica of every shard dead: failover keeps every
					// answer exact; nothing degrades to Partial.
					for si := 0; si < shards; si++ {
						c.SetReplicaFault(si, 0, fault.New(fault.Config{Seed: seed, ErrEvery: 1}))
					}
					sweepExact(t, lat, c, single, "r0-dead")
					if reg.Counter("shard.failover").Value() == 0 {
						t.Error("r0-dead sweep answered without a single failover")
					}

					// Both replicas of shard 0 dead: every answer is an
					// explicit Partial naming shard 0, and the surviving
					// rows equal a store over the surviving partitions.
					c.ResetHealth()
					for si := 0; si < shards; si++ {
						c.SetReplicaFault(si, 0, nil)
					}
					c.SetReplicaFault(0, 0, fault.New(fault.Config{Seed: seed, ErrEvery: 1}))
					c.SetReplicaFault(0, 1, fault.New(fault.Config{Seed: seed + 1, ErrEvery: 1}))
					parts := Partition(set, shards)
					surviving := &match.Set{Lattice: set.Lattice, Dicts: set.Dicts}
					for si := 1; si < shards; si++ {
						surviving.Facts = append(surviving.Facts, parts[si].Facts...)
					}
					healthy, err := serve.Build(filepath.Join(t.TempDir(), "healthy.x3cf"), lat, surviving,
						serve.Options{Views: ds.views, BlockCells: 16})
					if err != nil {
						t.Fatal(err)
					}
					defer healthy.Close()
					sweepPartial(t, lat, c, healthy, 0, shards)
					if reg.Counter("shard.partial").Value() == 0 {
						t.Error("shard-0-lost sweep produced no shard.partial increments")
					}
				})
			}
		})
	}
}

// sweepExact answers every cuboid through the coordinator and requires
// byte-equality with the single-node store and no Partial flag.
func sweepExact(t *testing.T, lat *lattice.Lattice, c *Coordinator, single *serve.Store, scenario string) {
	t.Helper()
	for _, p := range lat.Points() {
		req := cuboidRequest(lat, p)
		want, err := single.ServeRequest(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ServeRequest(context.Background(), req)
		if err != nil {
			t.Fatalf("[%s] %s: %v", scenario, lat.Label(p), err)
		}
		if got.Partial || len(got.Missing) > 0 {
			t.Fatalf("[%s] %s: answer degraded to Partial (missing %v) with a live replica per shard",
				scenario, lat.Label(p), got.Missing)
		}
		if canon(got) != canon(want) {
			t.Fatalf("[%s] %s: sharded answer diverges from single-node:\n%s\nwant:\n%s",
				scenario, lat.Label(p), canon(got), canon(want))
		}
	}
}

// sweepPartial answers every cuboid with shard `lost` fully dead and
// requires an explicit Partial naming exactly that shard, with rows
// equal to the surviving-partitions store.
func sweepPartial(t *testing.T, lat *lattice.Lattice, c *Coordinator, healthy *serve.Store, lost, shards int) {
	t.Helper()
	for _, p := range lat.Points() {
		req := cuboidRequest(lat, p)
		want, err := healthy.ServeRequest(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ServeRequest(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", lat.Label(p), err)
		}
		if !got.Partial {
			t.Fatalf("%s: shard %d is unreachable but the answer is not Partial — silently wrong total",
				lat.Label(p), lost)
		}
		if len(got.Missing) != 1 || got.Missing[0].Shard != lost {
			t.Fatalf("%s: Missing = %+v, want exactly shard %d", lat.Label(p), got.Missing, lost)
		}
		if want := KeyRange(lost, shards); got.Missing[0].KeyRange != want {
			t.Fatalf("%s: lost key range %q, want %q", lat.Label(p), got.Missing[0].KeyRange, want)
		}
		if got.Missing[0].Reason == "" {
			t.Fatalf("%s: Partial answer with empty Reason", lat.Label(p))
		}
		if canon(got) != canon(want) {
			t.Fatalf("%s: partial rows diverge from surviving-partition store:\n%s\nwant:\n%s",
				lat.Label(p), canon(got), canon(want))
		}
	}
}
