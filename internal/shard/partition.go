package shard

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"

	"x3/internal/match"
	"x3/internal/xmltree"
)

// ShardOf returns the partition of one fact among n: an FNV-1a hash of
// the fact's decoded grouping values at every axis's most relaxed live
// state — the most-relaxed pattern's key axes. Hashing decoded strings
// (not ValueIDs) makes the function independent of dictionary interning
// order, so the build-time partition and any re-partition of the same
// facts agree.
func ShardOf(dicts []*match.Dict, f *match.Fact, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	var vals []string
	for a := range f.Axes {
		s := len(f.Axes[a]) - 1
		if s >= 0 {
			vals = vals[:0]
			for _, id := range f.Values(a, s) {
				vals = append(vals, dicts[a].Value(id))
			}
			// A fact's per-axis value list is ordered by ValueID — an
			// interning accident. Sort the decoded strings so the hash
			// sees a canonical sequence regardless of dictionary order.
			sort.Strings(vals)
			for _, v := range vals {
				h.Write([]byte(v)) //x3:nolint(errdrop) hash.Hash.Write is documented to never return an error (this line and the separator write below)
				h.Write([]byte{0x1f})
			}
		}
		//x3:nolint(errdrop) hash.Hash.Write is documented to never return an error
		h.Write([]byte{0x1e})
	}
	return int(h.Sum64() % uint64(n))
}

// Partition splits base into n disjoint, complete fact subsets by
// ShardOf. The subsets share base's dictionaries (clone per store before
// building — see cloneSet) and fact records.
func Partition(base *match.Set, n int) []*match.Set {
	if n <= 0 {
		n = 1
	}
	out := make([]*match.Set, n)
	for i := range out {
		out[i] = &match.Set{Lattice: base.Lattice, Dicts: base.Dicts}
	}
	for _, f := range base.Facts {
		si := ShardOf(base.Dicts, f, n)
		out[si].Facts = append(out[si].Facts, f)
	}
	return out
}

// splitRecords partitions an appended document's top-level records among
// n shards: each element child of the root becomes a candidate record,
// the record's own facts (evaluated against a scratch dictionary) pick
// its shard via the first fact's hash, and per-shard sub-documents are
// re-serialized under a copy of the root. Records that yield no facts
// route to shard 0 — they contribute nothing to any cube.
//
// The unit of routing is the record, not the fact: a record whose facts
// straddle hash classes still lands whole on one shard. Partitions stay
// disjoint and complete — the only property cross-shard merging needs —
// because every record lands on exactly one shard.
func (c *Coordinator) splitRecords(doc *xmltree.Document) (map[int][]byte, int, error) {
	root := doc.Root()
	if root == nil {
		return nil, 0, fmt.Errorf("shard: empty document")
	}
	type batch struct {
		b       *xmltree.Builder
		open    bool
		records int
	}
	batches := make([]*batch, len(c.shards))
	records := 0
	var splitErr error
	doc.EachChild(root.ID, func(id xmltree.NodeID) bool {
		n := doc.Node(id)
		if n.Kind != xmltree.Element {
			return true
		}
		records++
		si, err := c.recordShard(doc, root, id)
		if err != nil {
			splitErr = err
			return false
		}
		bt := batches[si]
		if bt == nil {
			bt = &batch{b: &xmltree.Builder{}}
			openRootShell(doc, root, bt.b)
			bt.open = true
			batches[si] = bt
		}
		copySubtree(doc, id, bt.b)
		bt.records++
		return true
	})
	if splitErr != nil {
		return nil, 0, splitErr
	}
	out := make(map[int][]byte, len(batches))
	for si, bt := range batches {
		if bt == nil {
			continue
		}
		bt.b.Close()
		sub, err := bt.b.Done()
		if err != nil {
			return nil, 0, fmt.Errorf("shard: rebuild record batch: %w", err)
		}
		var buf bytes.Buffer
		if err := sub.Write(&buf); err != nil {
			return nil, 0, err
		}
		out[si] = buf.Bytes()
	}
	return out, records, nil
}

// recordShard evaluates one record as a standalone mini-document and
// hashes its first fact.
func (c *Coordinator) recordShard(doc *xmltree.Document, root *xmltree.Node, id xmltree.NodeID) (int, error) {
	b := &xmltree.Builder{}
	openRootShell(doc, root, b)
	copySubtree(doc, id, b)
	b.Close()
	mini, err := b.Done()
	if err != nil {
		return 0, fmt.Errorf("shard: extract record: %w", err)
	}
	set, err := match.Evaluate(mini, c.lat)
	if err != nil {
		return 0, fmt.Errorf("shard: route record: %w", err)
	}
	if len(set.Facts) == 0 {
		return 0, nil
	}
	return ShardOf(set.Dicts, set.Facts[0], len(c.shards)), nil
}

// openRootShell opens a copy of the original root (tag, attributes,
// direct text) and leaves it open for record subtrees.
func openRootShell(doc *xmltree.Document, root *xmltree.Node, b *xmltree.Builder) {
	b.Open(root.Tag)
	if root.Value != "" {
		b.Text(root.Value)
	}
	doc.EachChild(root.ID, func(ch xmltree.NodeID) bool {
		n := doc.Node(ch)
		if n.Kind != xmltree.Attr {
			return false // attributes precede element children
		}
		b.Attr(n.Tag[1:], n.Value)
		return true
	})
}

// copySubtree replays the subtree rooted at id into b.
func copySubtree(doc *xmltree.Document, id xmltree.NodeID, b *xmltree.Builder) {
	n := doc.Node(id)
	if n.Kind == xmltree.Attr {
		b.Attr(n.Tag[1:], n.Value)
		return
	}
	b.Open(n.Tag)
	if n.Value != "" {
		b.Text(n.Value)
	}
	doc.EachChild(id, func(ch xmltree.NodeID) bool {
		copySubtree(doc, ch, b)
		return true
	})
	b.Close()
}
