package shard

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"x3/internal/serve"
	"x3/internal/xmltree"
)

// Append routes an XML document's records to their shards and applies
// each shard batch to every replica of that shard — full replication on
// the write path; "replica down" is a query-path concept, so appends
// still reach down replicas and keep them consistent for re-admission.
//
// Failure semantics keep the never-silently-wrong discipline: a replica
// whose append fails after AppendRetries re-attempts is marked stale and
// leaves rotation permanently (it may be missing facts; serving from it
// would silently under-count). A shard where no replica applied the
// batch fails the append with an error — the batch is then consistently
// absent, and the client retries. Appends are atomic per shard, not
// across shards.
func (c *Coordinator) Append(ctx context.Context, body []byte) (int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	doc, err := xmltree.Parse(bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("%w: %w", serve.ErrBadRequest, err)
	}
	return c.appendDoc(ctx, doc)
}

// RefreshDoc applies a parsed document — the HTTP edge's /refresh form.
func (c *Coordinator) RefreshDoc(ctx context.Context, doc *xmltree.Document) (int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return c.appendDoc(ctx, doc)
}

func (c *Coordinator) appendDoc(ctx context.Context, doc *xmltree.Document) (int64, error) {
	// Only directory-backed topologies accept writes: a coordinator
	// assembled from caller-provided replicas has no durable routing
	// state (per-shard fact counts, recoverable layout) to keep honest.
	if c.dir == "" {
		return 0, fmt.Errorf("%w: coordinator has no append routing (built with NewWithReplicas)", serve.ErrBadRequest)
	}
	batches, records, err := c.splitRecords(doc)
	if err != nil {
		return 0, fmt.Errorf("%w: %w", serve.ErrBadRequest, err)
	}
	c.cAppends.Inc()
	c.cAppendRecords.Add(int64(records))

	// Deterministic shard order (not map order) so failure attribution
	// and fault schedules replay.
	sids := make([]int, 0, len(batches))
	for si := range batches {
		sids = append(sids, si)
	}
	sort.Ints(sids)

	var total int64
	for _, si := range sids {
		added, err := c.appendShard(ctx, si, batches[si])
		if err != nil {
			return total, fmt.Errorf("shard %d: append: %w", si, err)
		}
		total += added
		c.factsMu.Lock()
		c.facts[si] += int(added)
		c.factsMu.Unlock()
	}
	return total, nil
}

// appendShard applies one batch to every replica of shard si.
func (c *Coordinator) appendShard(ctx context.Context, si int, batch []byte) (int64, error) {
	sh := c.shards[si]
	var (
		applied  int64
		appliedN int
		lastErr  error
	)
	ok := make([]bool, len(sh.replicas))
	for ri, rs := range sh.replicas {
		added, err := c.appendReplica(ctx, rs, batch)
		if err != nil {
			lastErr = err
			// Only divergence makes a replica stale: if no replica ends
			// up applying the batch the data is consistently absent, so
			// staleness is decided after the loop.
			continue
		}
		if appliedN > 0 && added != applied {
			// Replicas of one shard evaluated the same bytes to different
			// fact counts — corruption-grade divergence, surface loudly.
			return applied, fmt.Errorf("replica %s applied %d facts, sibling applied %d", rs.r.Label(), added, applied)
		}
		ok[ri] = true
		applied = added
		appliedN++
	}
	if appliedN == 0 {
		return 0, lastErr
	}
	if appliedN < len(sh.replicas) {
		for ri, rs := range sh.replicas {
			if !ok[ri] {
				c.markStale(rs)
			}
		}
	}
	return applied, nil
}

// appendReplica applies a batch to one replica with bounded retries
// through its fault boundary — a transient injected fault re-rolls on
// retry, the way a flaky disk does.
func (c *Coordinator) appendReplica(ctx context.Context, rs *replicaState, batch []byte) (int64, error) {
	var lastErr error
	for attempt := 0; attempt <= c.opt.AppendRetries; attempt++ {
		if attempt > 0 {
			c.cAppendRetr.Inc()
		}
		err := rs.boundary().Call("shard.replica.append")
		if err == nil {
			var added int64
			added, err = rs.r.Append(ctx, batch)
			if err == nil {
				return added, nil
			}
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return 0, lastErr
}

// Generations sums the ladder shape across shard primaries: outstanding
// delta generations (max across replicas, the worst compaction debt) and
// total memtable cells.
func (c *Coordinator) Generations() (deltas int, memCells int64) {
	for _, sh := range c.shards {
		for _, rs := range sh.replicas {
			sr, ok := rs.r.(*storeReplica)
			if !ok {
				continue
			}
			d, m := sr.store.Generations()
			if d > deltas {
				deltas = d
			}
			memCells += m
		}
	}
	return deltas, memCells
}

// NumFacts sums base facts across shards (each fact lives on exactly one
// shard, so the sum is the logical fact count).
func (c *Coordinator) NumFacts() int {
	n := 0
	c.factsMu.Lock()
	defer c.factsMu.Unlock()
	for _, f := range c.facts {
		n += f
	}
	return n
}

// Materialized merges per-shard materialization: each cuboid's cells are
// summed over every shard's first store-backed replica (cells of one
// logical cuboid are spread across shards).
func (c *Coordinator) Materialized() []serve.MaterializedCuboid {
	agg := map[string]int64{}
	var order []string
	for _, sh := range c.shards {
		sr := sh.primaryStore()
		if sr == nil {
			continue
		}
		for _, mc := range sr.Materialized() {
			if _, ok := agg[mc.Label]; !ok {
				order = append(order, mc.Label)
			}
			agg[mc.Label] += mc.Cells
		}
	}
	out := make([]serve.MaterializedCuboid, 0, len(order))
	for _, label := range order {
		out = append(out, serve.MaterializedCuboid{Label: label, Cells: agg[label]})
	}
	return out
}

// CuboidReport merges the per-cuboid status across shard primaries:
// materialization is reported when every shard materializes the cuboid,
// cells and query counts are summed.
func (c *Coordinator) CuboidReport() []serve.CuboidStatus {
	var out []serve.CuboidStatus
	for _, sh := range c.shards {
		sr := sh.primaryStore()
		if sr == nil {
			continue
		}
		rep := sr.CuboidReport()
		if out == nil {
			out = rep
			continue
		}
		for i := range rep {
			if i >= len(out) {
				break
			}
			out[i].Materialized = out[i].Materialized && rep[i].Materialized
			out[i].Cells += rep[i].Cells
			out[i].Queries += rep[i].Queries
			out[i].Decision = nil
		}
	}
	return out
}

// primaryStore returns the shard's first store-backed replica (nil for
// fake-replica shards).
func (sh *shardState) primaryStore() *serve.Store {
	for _, rs := range sh.replicas {
		if sr, ok := rs.r.(*storeReplica); ok {
			return sr.store
		}
	}
	return nil
}
