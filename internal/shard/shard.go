// Package shard is the sharded, replicated serving layer: N fact
// partitions × R replicas, each an independent delta-ladder serve.Store,
// behind a coordinator that scatter-gathers queries and re-aggregates
// the partial cells.
//
// Partitioning hashes each fact's decoded grouping values at every
// axis's most relaxed live state (the most-relaxed pattern's key axes),
// so the partitions are disjoint and complete — exactly the condition
// under which the planner's distributive agg.State merge re-aggregates
// a scattered answer byte-equal to a single-node store (X³ §3; the
// differential suite proves it rather than trusts it).
//
// The robustness core lives in the per-shard query path (query.go):
// a per-shard deadline, bounded failover retries against sibling
// replicas, a hedged second request after a p99-derived delay
// (first usable answer wins, the loser's context is cancelled), and
// replica health tracking with automatic failover and re-admission
// probes. A shard whose replicas are all unreachable degrades the
// answer to an explicit Partial naming the lost key range — never a
// silently fabricated total.
package shard

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"x3/internal/fault"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/serve"
)

// Defaults for the robustness knobs; each is overridable via Options.
const (
	defaultShardDeadline = 2 * time.Second
	defaultHedgeFloor    = 2 * time.Millisecond
	defaultDownAfter     = 3
	defaultProbeEvery    = 8
	defaultAppendRetries = 2
	// hedgeWarmup is how many per-shard latency samples the coordinator
	// wants before it trusts the observed p99 for the hedge delay.
	hedgeWarmup = 32
)

// Options configure a coordinator.
type Options struct {
	// Shards is the number of fact partitions N (default 1).
	Shards int
	// Replicas is the number of replicas R per shard (default 2).
	Replicas int
	// ShardDeadline bounds each shard's scatter leg, hedges and retries
	// included (default 2s).
	ShardDeadline time.Duration
	// Retries bounds failover launches against sibling replicas after a
	// replica error, per query (default: Replicas-1; negative disables).
	Retries int
	// HedgeAfter fixes the hedge delay; 0 derives it from the shard's
	// observed p99 latency, clamped to [HedgeFloor, ShardDeadline/2].
	HedgeAfter time.Duration
	// HedgeFloor is the lower clamp for the derived hedge delay
	// (default 2ms); also the delay used before enough samples exist.
	HedgeFloor time.Duration
	// DownAfter marks a replica down after this many consecutive
	// failures (default 3).
	DownAfter int
	// ProbeEvery launches an async re-admission probe at a shard's down
	// replicas every Nth query to that shard (default 8; negative
	// disables probing).
	ProbeEvery int
	// AppendRetries re-attempts a failed replica append this many times
	// before declaring the replica stale (default 2).
	AppendRetries int
	// Registry receives the shard.* counters and per-shard latency
	// histograms; nil mints a private registry so accounting (and the
	// hedge-delay estimate) still works.
	Registry *obs.Registry
	// Store configures each replica's underlying serve.Store.
	Store serve.Options
}

// withDefaults resolves zero values.
func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.ShardDeadline <= 0 {
		o.ShardDeadline = defaultShardDeadline
	}
	if o.Retries == 0 {
		o.Retries = o.Replicas - 1
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.HedgeFloor <= 0 {
		o.HedgeFloor = defaultHedgeFloor
	}
	if o.DownAfter <= 0 {
		o.DownAfter = defaultDownAfter
	}
	if o.ProbeEvery == 0 {
		o.ProbeEvery = defaultProbeEvery
	}
	if o.AppendRetries <= 0 {
		o.AppendRetries = defaultAppendRetries
	}
	if o.Registry == nil {
		o.Registry = obs.New()
	}
	return o
}

// Replica is one copy of one shard's store. Implementations must be safe
// for concurrent use; Query must honour ctx cancellation.
type Replica interface {
	// Label names the replica for topology and error reporting.
	Label() string
	// Query answers a request in mergeable form.
	Query(ctx context.Context, req serve.Request) (*serve.CellAnswer, error)
	// Append applies one XML document body durably.
	Append(ctx context.Context, body []byte) (int64, error)
	// Close releases the replica.
	Close() error
}

// replicaState is a Replica plus its health and fault boundary.
type replicaState struct {
	r Replica
	// inj is the per-replica boundary injector (error + latency at the
	// shard.replica.* sites), swappable at runtime so failure sweeps can
	// kill and revive replicas on a live coordinator.
	inj atomic.Pointer[fault.Injector]

	mu    sync.Mutex
	fails int
	down  bool
	// stale marks a replica that missed an append: it may be missing
	// facts, so it must never serve queries again (a probe cannot clear
	// it — only a rebuild can).
	stale bool
}

// boundary returns the current fault injector (nil = no injection).
func (rs *replicaState) boundary() *fault.Injector { return rs.inj.Load() }

// shardState is one fact partition: its replicas and query accounting.
type shardState struct {
	id       int
	replicas []*replicaState
	lat      *obs.HDR // shard.latency.<id>: per-shard answer latency
	queries  atomic.Int64
}

// Coordinator fans queries and appends out over the shard topology.
// All exported methods are safe for concurrent use.
type Coordinator struct {
	lat    *lattice.Lattice
	reg    *obs.Registry
	dir    string
	opt    Options
	shards []*shardState
	// facts counts base facts per shard (build-time; appends add to it
	// under factsMu). Topology reporting only.
	factsMu sync.Mutex
	facts   []int

	probes sync.WaitGroup
	// downN mirrors the shard.replicas.down gauge without a global
	// health lock.
	downN atomic.Int64

	cQueries, cScatter, cFailover         *obs.Counter
	cHedgeFired, cHedgeWon, cHedgeWasted  *obs.Counter
	cPartial, cPartialShards              *obs.Counter
	cReplicaDown, cReplicaUp, cStale      *obs.Counter
	cProbe, cProbeOK                      *obs.Counter
	cAppends, cAppendRecords, cAppendRetr *obs.Counter
	gDown                                 *obs.Gauge
	hAnswer                               *obs.HDR
}

// newCoordinator wires the common fields.
func newCoordinator(lat *lattice.Lattice, dir string, opt Options) *Coordinator {
	reg := opt.Registry
	c := &Coordinator{
		lat: lat, reg: reg, dir: dir, opt: opt,
		facts:          make([]int, opt.Shards),
		cQueries:       reg.Counter("shard.queries"),
		cScatter:       reg.Counter("shard.scatter"),
		cFailover:      reg.Counter("shard.failover"),
		cHedgeFired:    reg.Counter("shard.hedge.fired"),
		cHedgeWon:      reg.Counter("shard.hedge.won"),
		cHedgeWasted:   reg.Counter("shard.hedge.wasted"),
		cPartial:       reg.Counter("shard.partial"),
		cPartialShards: reg.Counter("shard.partial.shards"),
		cReplicaDown:   reg.Counter("shard.replica.down"),
		cReplicaUp:     reg.Counter("shard.replica.up"),
		cStale:         reg.Counter("shard.replica.stale"),
		cProbe:         reg.Counter("shard.probe.launched"),
		cProbeOK:       reg.Counter("shard.probe.ok"),
		cAppends:       reg.Counter("shard.appends"),
		cAppendRecords: reg.Counter("shard.append.records"),
		cAppendRetr:    reg.Counter("shard.append.retries"),
		gDown:          reg.Gauge("shard.replicas.down"),
		hAnswer:        reg.HDR("shard.answer.latency"),
	}
	return c
}

// addShard appends a shard built from replicas.
func (c *Coordinator) addShard(replicas []Replica) {
	id := len(c.shards)
	ss := &shardState{
		id:  id,
		lat: c.reg.HDR("shard.latency." + strconv.Itoa(id)),
	}
	for _, r := range replicas {
		ss.replicas = append(ss.replicas, &replicaState{r: r})
	}
	c.shards = append(c.shards, ss)
}

// New builds a sharded store under dir: the base facts are partitioned
// into opt.Shards disjoint subsets and each subset is materialized as
// opt.Replicas delta-ladder stores at dir/s<i>/r<j>. Every replica gets
// a private dictionary clone, so replica maintenance never shares
// mutable state across stores.
func New(dir string, lat *lattice.Lattice, base *match.Set, opt Options) (*Coordinator, error) {
	opt = opt.withDefaults()
	c := newCoordinator(lat, dir, opt)
	parts := Partition(base, opt.Shards)
	for si, part := range parts {
		replicas := make([]Replica, opt.Replicas)
		for ri := 0; ri < opt.Replicas; ri++ {
			rdir := replicaDir(dir, si, ri)
			st, err := serve.BuildDir(rdir, lat, cloneSet(part), opt.Store)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("shard: build s%d/r%d: %w", si, ri, err)
			}
			replicas[ri] = &storeReplica{store: st, label: fmt.Sprintf("s%d/r%d", si, ri)}
		}
		c.addShard(replicas)
		c.facts[si] = len(part.Facts)
	}
	return c, nil
}

// Open recovers a sharded store previously built by New under dir: the
// base facts are re-partitioned with the same hash, and each replica is
// recovered from its manifest + WAL (serve.OpenDir replays appends over
// a private dictionary clone).
func Open(dir string, lat *lattice.Lattice, base *match.Set, opt Options) (*Coordinator, error) {
	opt = opt.withDefaults()
	c := newCoordinator(lat, dir, opt)
	parts := Partition(base, opt.Shards)
	for si, part := range parts {
		replicas := make([]Replica, opt.Replicas)
		for ri := 0; ri < opt.Replicas; ri++ {
			st, err := serve.OpenDir(replicaDir(dir, si, ri), lat, cloneSet(part), opt.Store)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("shard: open s%d/r%d: %w", si, ri, err)
			}
			replicas[ri] = &storeReplica{store: st, label: fmt.Sprintf("s%d/r%d", si, ri)}
		}
		c.addShard(replicas)
		c.facts[si] = len(part.Facts)
	}
	return c, nil
}

// IsBuilt reports whether dir already holds a sharded store's first
// replica manifest (the recovery cue, mirroring x3serve's single-store
// check).
func IsBuilt(dir string) bool {
	_, err := os.Stat(filepath.Join(replicaDir(dir, 0, 0), "MANIFEST.json"))
	return err == nil
}

// replicaDir is the on-disk layout: dir/s<i>/r<j>.
func replicaDir(dir string, si, ri int) string {
	return filepath.Join(dir, "s"+strconv.Itoa(si), "r"+strconv.Itoa(ri))
}

// NewWithReplicas assembles a coordinator over caller-provided replicas
// (groups[i] is shard i's replica list) — the harness for fault and
// hedging tests, and the seam a future cross-process HTTP replica slots
// into. A coordinator built this way is read-only: Append and
// RefreshDoc fail with ErrBadRequest, since there is no durable
// directory-backed routing state behind the replicas.
func NewWithReplicas(lat *lattice.Lattice, groups [][]Replica, opt Options) (*Coordinator, error) {
	opt.Shards = len(groups)
	if opt.Shards == 0 {
		return nil, fmt.Errorf("shard: no replica groups")
	}
	if opt.Replicas <= 0 {
		opt.Replicas = len(groups[0])
	}
	opt = opt.withDefaults()
	c := newCoordinator(lat, "", opt)
	for _, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("shard: empty replica group")
		}
		c.addShard(g)
	}
	return c, nil
}

// cloneSet gives a replica its own dictionaries and fact slice: stores
// intern appended values into their dictionaries, so replicas must not
// share them. Fact records themselves are immutable and stay shared.
func cloneSet(s *match.Set) *match.Set {
	dicts := make([]*match.Dict, len(s.Dicts))
	for i, d := range s.Dicts {
		nd := match.NewDict()
		for _, v := range d.Values() {
			nd.ID(v)
		}
		dicts[i] = nd
	}
	facts := make([]*match.Fact, len(s.Facts))
	copy(facts, s.Facts)
	return &match.Set{Lattice: s.Lattice, Dicts: dicts, Facts: facts}
}

// SetReplicaFault installs (or clears, with nil) the boundary injector
// of replica ri of shard si. The failure sweeps use this to kill and
// revive replicas on a live coordinator.
func (c *Coordinator) SetReplicaFault(si, ri int, inj *fault.Injector) {
	inj.Observe(c.reg)
	c.shards[si].replicas[ri].inj.Store(inj)
}

// ResetHealth clears every replica's health state (down marks, failure
// streaks, stale marks). Failure sweeps call it between scenarios.
func (c *Coordinator) ResetHealth() {
	for _, sh := range c.shards {
		for _, rs := range sh.replicas {
			rs.mu.Lock()
			rs.fails, rs.down, rs.stale = 0, false, false
			rs.mu.Unlock()
		}
	}
	c.downN.Store(0)
	c.gDown.Set(0)
}

// Registry exposes the coordinator's metrics registry.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Dir returns the coordinator's on-disk root ("" for NewWithReplicas).
func (c *Coordinator) Dir() string { return c.dir }

// Close waits for outstanding probes and closes every replica.
func (c *Coordinator) Close() error {
	c.probes.Wait()
	var first error
	for _, sh := range c.shards {
		for _, rs := range sh.replicas {
			if err := rs.r.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// CompactLoop runs every store-backed replica's background compactor
// until ctx is cancelled (non-store replicas are skipped).
func (c *Coordinator) CompactLoop(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	var wg sync.WaitGroup
	for _, sh := range c.shards {
		for _, rs := range sh.replicas {
			sr, ok := rs.r.(*storeReplica)
			if !ok {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				sr.store.CompactLoop(ctx)
			}()
		}
	}
	wg.Wait()
}

// ReplicaInfo is one replica's topology entry.
type ReplicaInfo struct {
	Label string `json:"label"`
	Down  bool   `json:"down,omitempty"`
	Stale bool   `json:"stale,omitempty"`
}

// ShardInfo is one shard's topology entry.
type ShardInfo struct {
	ID       int           `json:"id"`
	KeyRange string        `json:"key_range"`
	Facts    int           `json:"facts"`
	Replicas []ReplicaInfo `json:"replicas"`
}

// Topology reports the live shard map: key ranges, base fact counts,
// and per-replica health.
func (c *Coordinator) Topology() []ShardInfo {
	out := make([]ShardInfo, len(c.shards))
	c.factsMu.Lock()
	facts := append([]int(nil), c.facts...)
	c.factsMu.Unlock()
	for i, sh := range c.shards {
		si := ShardInfo{ID: i, KeyRange: KeyRange(i, len(c.shards))}
		if i < len(facts) {
			si.Facts = facts[i]
		}
		for _, rs := range sh.replicas {
			rs.mu.Lock()
			si.Replicas = append(si.Replicas, ReplicaInfo{Label: rs.r.Label(), Down: rs.down, Stale: rs.stale})
			rs.mu.Unlock()
		}
		out[i] = si
	}
	return out
}

// KeyRange names shard si's fact partition as a residue class of the
// partition hash — the identifier a Partial answer reports for a lost
// shard.
func KeyRange(si, n int) string {
	return fmt.Sprintf("hash(fact)%%%d==%d", n, si)
}
