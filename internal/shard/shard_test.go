package shard

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/pattern"
	"x3/internal/serve"
	"x3/internal/xmltree"
)

// treebankWorkload builds the shared treebank workload: a document with
// per-axis summarizability violations (axis 0 clean, axis 1 breaks
// coverage, axis 2 breaks disjointness), its lattice, and its fact set.
func treebankWorkload(tb testing.TB, seed int64, facts int) (*lattice.Lattice, *match.Set, *xmltree.Document) {
	tb.Helper()
	lnd := pattern.RelaxSet(0).With(pattern.LND)
	axes := []dataset.AxisConfig{
		{Tag: "w0", Cardinality: 4, Relax: lnd},
		{Tag: "w1", Cardinality: 4, PMissing: 0.25, Relax: lnd},
		{Tag: "w2", Cardinality: 4, PRepeat: 0.4, Relax: lnd},
	}
	doc := dataset.Treebank(dataset.TreebankConfig{Seed: seed, Facts: facts, Axes: axes})
	lat, err := lattice.New(dataset.TreebankQuery(axes))
	if err != nil {
		tb.Fatal(err)
	}
	set, err := match.Evaluate(doc, lat)
	if err != nil {
		tb.Fatal(err)
	}
	return lat, set, doc
}

// cuboidRequest addresses lattice point p as a wire-level request.
func cuboidRequest(lat *lattice.Lattice, p lattice.Point) serve.Request {
	cub := make(map[string]string, len(p))
	for a, lad := range lat.Ladders {
		cub[lad.Spec.Var] = lad.States[p[a]].Label
	}
	return serve.Request{Cuboid: cub}
}

// canon renders a response's cells in store-independent canonical form:
// rows sorted by decoded group values, one line per cell. Plan and From
// are deliberately excluded — a scattered answer reports a different
// plan than a single-node store, but its cells must be identical.
func canon(resp *serve.Response) string {
	lines := make([]string, len(resp.Rows))
	for i, r := range resp.Rows {
		lines[i] = strings.Join(r.Values, "\x1f") + "|" +
			strconv.FormatFloat(r.Value, 'g', -1, 64) + "|" +
			strconv.FormatInt(r.Count, 10)
	}
	// Single-node stores order rows by interned ValueID, coordinators by
	// decoded value; sorting makes the two comparable byte-for-byte.
	sortStrings(lines)
	return resp.Cuboid + "\n" + strings.Join(lines, "\n")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestPartitionDisjointComplete(t *testing.T) {
	_, set, _ := treebankWorkload(t, 7, 80)
	for _, n := range []int{1, 2, 3, 5} {
		parts := Partition(set, n)
		if len(parts) != n {
			t.Fatalf("Partition(%d) returned %d parts", n, len(parts))
		}
		total := 0
		seen := map[*match.Fact]int{}
		for si, p := range parts {
			total += len(p.Facts)
			for _, f := range p.Facts {
				if prev, dup := seen[f]; dup {
					t.Fatalf("fact on shards %d and %d — partition not disjoint", prev, si)
				}
				seen[f] = si
				if got := ShardOf(set.Dicts, f, n); got != si {
					t.Fatalf("fact hashed to %d but placed on %d", got, si)
				}
			}
		}
		if total != len(set.Facts) {
			t.Fatalf("partition lost facts: %d of %d", total, len(set.Facts))
		}
	}
}

func TestShardOfDictOrderIndependent(t *testing.T) {
	lat, set, doc := treebankWorkload(t, 3, 40)
	// Re-evaluate the same document against dictionaries pre-seeded in
	// reverse insertion order: every ValueID changes, but the hash input
	// is decoded strings, so each fact must land on the same shard.
	dicts2 := make([]*match.Dict, lat.NumAxes())
	for i, d := range set.Dicts {
		vals := d.Values()
		dicts2[i] = match.NewDict()
		for j := len(vals) - 1; j >= 0; j-- {
			dicts2[i].ID(vals[j])
		}
	}
	set2, err := match.EvaluateWith(doc, lat, dicts2)
	if err != nil {
		t.Fatal(err)
	}
	if len(set2.Facts) != len(set.Facts) {
		t.Fatalf("re-evaluation yielded %d facts, want %d", len(set2.Facts), len(set.Facts))
	}
	for k := range set.Facts {
		a := ShardOf(set.Dicts, set.Facts[k], 4)
		b := ShardOf(set2.Dicts, set2.Facts[k], 4)
		if a != b {
			t.Fatalf("fact %d: shard %d under build-order dicts, %d under reversed dicts", k, a, b)
		}
	}
}

func TestCoordinatorMatchesSingleNode(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 1, 60)
	single, err := serve.Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set,
		serve.Options{Views: 3, BlockCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			c, err := New(t.TempDir(), lat, set, Options{
				Shards: shards, Replicas: 2, ProbeEvery: -1,
				Store: serve.Options{Views: 3, BlockCells: 16},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for _, p := range lat.Points() {
				req := cuboidRequest(lat, p)
				want, err := single.ServeRequest(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				got, err := c.ServeRequest(context.Background(), req)
				if err != nil {
					t.Fatalf("%s: %v", lat.Label(p), err)
				}
				if got.Partial {
					t.Fatalf("%s: partial answer with no failures", lat.Label(p))
				}
				if canon(got) != canon(want) {
					t.Fatalf("%s: sharded answer diverges:\n%s\nwant:\n%s",
						lat.Label(p), canon(got), canon(want))
				}
			}
		})
	}
}

func TestAppendRoutesAndMatches(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 2, 40)
	single, err := serve.BuildDir(filepath.Join(t.TempDir(), "oracle"), lat, set,
		serve.Options{Views: 3, BlockCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	c, err := New(t.TempDir(), lat, set, Options{
		Shards: 3, Replicas: 2, ProbeEvery: -1,
		Store: serve.Options{Views: 3, BlockCells: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Append a second treebank batch to both and require they agree on
	// the added fact count and on every cuboid afterwards.
	_, _, doc := treebankWorkload(t, 9, 25)
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	wantAdd, err := single.Append(context.Background(), buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	gotAdd, err := c.Append(context.Background(), buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if gotAdd != wantAdd {
		t.Fatalf("sharded append added %d facts, single-node %d", gotAdd, wantAdd)
	}
	if got, want := c.NumFacts(), 40+int(wantAdd); got != want {
		t.Fatalf("NumFacts = %d, want %d", got, want)
	}
	for _, p := range lat.Points() {
		req := cuboidRequest(lat, p)
		want, err := single.ServeRequest(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ServeRequest(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", lat.Label(p), err)
		}
		if canon(got) != canon(want) {
			t.Fatalf("%s after append: sharded answer diverges:\n%s\nwant:\n%s",
				lat.Label(p), canon(got), canon(want))
		}
	}
}

func TestOpenRecoversTopology(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 4, 50)
	dir := t.TempDir()
	opt := Options{Shards: 2, Replicas: 2, ProbeEvery: -1,
		Store: serve.Options{Views: 3, BlockCells: 16}}
	c, err := New(dir, lat, set, opt)
	if err != nil {
		t.Fatal(err)
	}
	req := cuboidRequest(lat, lat.Bottom())
	want, err := c.ServeRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !IsBuilt(dir) {
		t.Fatal("IsBuilt is false after New")
	}
	c2, err := Open(dir, lat, set, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.ServeRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if canon(got) != canon(want) {
		t.Fatalf("recovered coordinator diverges:\n%s\nwant:\n%s", canon(got), canon(want))
	}
	topo := c2.Topology()
	if len(topo) != 2 {
		t.Fatalf("topology has %d shards, want 2", len(topo))
	}
	facts := 0
	for i, sh := range topo {
		if sh.ID != i {
			t.Fatalf("shard %d reports id %d", i, sh.ID)
		}
		if want := KeyRange(i, 2); sh.KeyRange != want {
			t.Fatalf("shard %d key range %q, want %q", i, sh.KeyRange, want)
		}
		if len(sh.Replicas) != 2 {
			t.Fatalf("shard %d has %d replicas, want 2", i, len(sh.Replicas))
		}
		for _, r := range sh.Replicas {
			if r.Down || r.Stale {
				t.Fatalf("replica %s unhealthy after clean open", r.Label)
			}
		}
		facts += sh.Facts
	}
	if facts != len(set.Facts) {
		t.Fatalf("topology accounts for %d facts, want %d", facts, len(set.Facts))
	}
}
