package shard

import (
	"context"
	"errors"
	"testing"

	"x3/internal/obs"
	"x3/internal/serve"
)

// TestIntrospectionSurface exercises the coordinator's operational
// surface — the accessors, the merged materialization/generation
// reports, RefreshDoc routing, and the compaction loop — against a
// live 2x2 topology.
func TestIntrospectionSurface(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 11, 40)
	_, _, doc2 := treebankWorkload(t, 12, 10)
	reg := obs.New()
	dir := t.TempDir()
	coord, err := New(dir, lat, set, Options{
		Shards: 2, Replicas: 2, Registry: reg,
		Store: serve.Options{FlushCells: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	if coord.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", coord.Shards())
	}
	if coord.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", coord.Dir(), dir)
	}
	if coord.Registry() != reg {
		t.Fatal("Registry() did not return the configured registry")
	}

	// The compaction loop must honour cancellation across every
	// replica's loop.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { coord.CompactLoop(ctx); close(done) }()
	cancel()
	<-done

	// RefreshDoc routes records exactly like Append (same per-record
	// partitioning), so the logical fact count grows by what was added.
	before := coord.NumFacts()
	added, err := coord.RefreshDoc(context.Background(), doc2)
	if err != nil {
		t.Fatal(err)
	}
	if added <= 0 {
		t.Fatalf("RefreshDoc added %d facts, want > 0", added)
	}
	if got := coord.NumFacts(); got != before+int(added) {
		t.Fatalf("NumFacts = %d after refresh, want %d + %d", got, before, added)
	}
	deltas, memCells := coord.Generations()
	if deltas == 0 && memCells == 0 {
		t.Fatal("Generations reports an empty ladder right after a refresh")
	}

	mats := coord.Materialized()
	if len(mats) == 0 {
		t.Fatal("Materialized() is empty on a fully materialized topology")
	}
	var cells int64
	for _, mc := range mats {
		cells += mc.Cells
	}
	if cells <= 0 {
		t.Fatalf("Materialized() reports %d total cells", cells)
	}

	// A query bumps the per-cuboid counters that CuboidReport merges.
	if _, err := coord.ServeRequest(context.Background(), cuboidRequest(lat, lat.Points()[0])); err != nil {
		t.Fatal(err)
	}
	rep := coord.CuboidReport()
	if len(rep) == 0 {
		t.Fatal("CuboidReport() is empty")
	}
	var queries int64
	for _, cs := range rep {
		if cs.Decision != nil {
			t.Fatalf("cuboid %s carries a per-store decision in the merged report", cs.Label)
		}
		queries += cs.Queries
	}
	if queries == 0 {
		t.Fatal("CuboidReport() saw zero queries after a served request")
	}

	// Malformed XML is a bad request, not an internal error.
	if _, err := coord.Append(context.Background(), []byte("<unclosed")); !errors.Is(err, serve.ErrBadRequest) {
		t.Fatalf("Append(malformed) = %v, want ErrBadRequest", err)
	}
}

// TestStoreReplicaSeam pins the NewStoreReplica + NewWithReplicas seam:
// a coordinator over an externally built store answers exactly like
// that store, and rejects appends (it has no routing state).
func TestStoreReplicaSeam(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 13, 30)
	st, err := serve.BuildDir(t.TempDir(), lat, set, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewStoreReplica("oracle", st)
	if rep.Label() != "oracle" {
		t.Fatalf("Label() = %q", rep.Label())
	}
	coord, err := NewWithReplicas(lat, [][]Replica{{rep}}, Options{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	for _, p := range lat.Points() {
		req := cuboidRequest(lat, p)
		got, err := coord.ServeRequest(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := st.ServeRequest(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if canon(got) != canon(want) {
			t.Fatalf("cuboid %s: coordinator over store replica diverges from the store", got.Cuboid)
		}
	}
	if _, err := coord.Append(context.Background(), []byte("<a/>")); !errors.Is(err, serve.ErrBadRequest) {
		t.Fatalf("Append on a routing-free coordinator = %v, want ErrBadRequest", err)
	}
}
