package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"x3/internal/agg"
	"x3/internal/pattern"
	"x3/internal/serve"
)

// ServeRequest scatter-gathers a query over every shard and re-aggregates
// the partial cells. Each shard leg runs under its own deadline with
// failover and hedging (queryShard); shards whose replicas are all
// unreachable are reported in Response.Missing and the answer is marked
// Partial — the rows are exact for the facts that answered, and the lost
// key ranges are named instead of silently dropped. A request every
// shard rejects as a bad request is returned as that error, and a
// coordinator with zero answering shards returns an error rather than an
// empty "answer".
func (c *Coordinator) ServeRequest(ctx context.Context, req serve.Request) (*serve.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	c.cQueries.Inc()

	type leg struct {
		ans *serve.CellAnswer
		err error
	}
	legs := make([]leg, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			legs[i].ans, legs[i].err = c.queryShard(ctx, c.shards[i], req)
		}(i)
	}
	wg.Wait()

	var (
		missing  []serve.MissingShard
		answered *serve.CellAnswer
		worst    serve.PlanKind
		degraded bool
		lastErr  error
	)
	groups := map[string]*mergedRow{}
	for i := range legs {
		if err := legs[i].err; err != nil {
			// The client's fault fails the whole query — retrying another
			// shard cannot fix a malformed request — and a cancelled
			// parent context is the caller's own deadline, not a shard
			// loss.
			if errors.Is(err, serve.ErrBadRequest) {
				return nil, err
			}
			if ctx.Err() != nil {
				return nil, err
			}
			lastErr = err
			missing = append(missing, serve.MissingShard{
				Shard:    i,
				KeyRange: KeyRange(i, len(c.shards)),
				Reason:   err.Error(),
			})
			continue
		}
		a := legs[i].ans
		if answered == nil {
			answered = a
		}
		if a.Plan > worst {
			worst = a.Plan
		}
		degraded = degraded || a.Degraded
		for _, r := range a.Rows {
			k := strings.Join(r.Values, "\x1f")
			if g, ok := groups[k]; ok {
				g.state.Merge(r.State)
			} else {
				groups[k] = &mergedRow{values: r.Values, state: r.State}
			}
		}
	}
	if answered == nil {
		return nil, fmt.Errorf("shard: all %d shards failed: %w", len(c.shards), lastErr)
	}

	rows := make([]serve.CellRow, 0, len(groups))
	for _, g := range groups {
		rows = append(rows, serve.CellRow{Values: g.values, State: g.state})
	}
	sort.Slice(rows, func(i, j int) bool { return lessValues(rows[i].Values, rows[j].Values) })

	merged := &serve.CellAnswer{
		Cuboid:   answered.Cuboid,
		Plan:     worst,
		Degraded: degraded,
		Rows:     rows,
	}
	resp := merged.Finalize(c.aggFn())
	resp.Plan = "scatter+" + worst.String()
	if len(missing) > 0 {
		resp.Partial = true
		resp.Missing = missing
		c.cPartial.Inc()
		c.cPartialShards.Add(int64(len(missing)))
	}
	c.hAnswer.ObserveDuration(time.Since(start))
	return resp, nil
}

// mergedRow accumulates one group's state across shards.
type mergedRow struct {
	values []string
	state  agg.State
}

// lessValues orders decoded group tuples lexicographically — the
// coordinator's canonical row order (per-shard ValueID order is an
// interning accident and differs between stores).
func lessValues(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// aggFn resolves the lattice aggregate. A fake-replica coordinator
// (NewWithReplicas with a nil lattice) falls back to the zero AggFunc
// (COUNT) — its tests assert on states and counters, not finals.
func (c *Coordinator) aggFn() pattern.AggFunc {
	if c.lat != nil {
		return c.lat.Query.Agg
	}
	return pattern.AggFunc(0)
}

// queryShard answers one shard's leg of a scattered query: primary
// attempt, a hedged second attempt after hedgeDelay, and bounded
// failover launches on hard errors — first usable answer wins and every
// other in-flight attempt is cancelled. Health bookkeeping: a replica's
// hard error counts against it, a success clears it; every ProbeEvery-th
// query to the shard launches async re-admission probes at down
// replicas.
func (c *Coordinator) queryShard(ctx context.Context, sh *shardState, req serve.Request) (*serve.CellAnswer, error) {
	qn := sh.queries.Add(1)
	if c.opt.ProbeEvery > 0 && qn%int64(c.opt.ProbeEvery) == 0 {
		c.probeDown(ctx, sh)
	}
	c.cScatter.Inc()
	start := time.Now()

	sctx, cancel := context.WithTimeout(ctx, c.opt.ShardDeadline)
	defer cancel()

	cands := sh.candidates()
	if len(cands) == 0 {
		return nil, fmt.Errorf("shard %d: no serviceable replica (all stale)", sh.id)
	}

	type attempt struct {
		idx    int // index into cands
		hedged bool
		ans    *serve.CellAnswer
		err    error
	}
	results := make(chan attempt, len(cands))
	launched, failovers, hedges := 0, 0, 0
	launch := func(hedged bool) {
		k := launched
		launched++
		rs := sh.replicas[cands[k]]
		go func() {
			a := attempt{idx: k, hedged: hedged}
			if err := rs.boundary().Call("shard.replica.query"); err != nil {
				a.err = err
			} else {
				a.ans, a.err = rs.r.Query(sctx, req)
			}
			results <- a
		}()
	}
	launch(false)
	pending := 1

	var hedgeC <-chan time.Time
	if launched < len(cands) {
		t := time.NewTimer(c.hedgeDelay(sh))
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	finish := func(err error) (*serve.CellAnswer, error) {
		// Every hedge that did not commit an answer was wasted; the
		// shard.hedge counters must reconcile as fired == won + wasted.
		c.cHedgeWasted.Add(int64(hedges))
		return nil, err
	}
	for pending > 0 {
		select {
		case a := <-results:
			pending--
			rs := sh.replicas[cands[a.idx]]
			if a.err == nil {
				c.markSuccess(rs)
				if a.hedged {
					c.cHedgeWon.Inc()
					c.cHedgeWasted.Add(int64(hedges - 1))
				} else {
					c.cHedgeWasted.Add(int64(hedges))
				}
				// Winner committed: cancel tears down every losing
				// attempt's context (the existing ctx plumbing reaches
				// into the store's read paths).
				sh.lat.ObserveDuration(time.Since(start))
				return a.ans, nil
			}
			if errors.Is(a.err, serve.ErrBadRequest) {
				return finish(a.err)
			}
			if sctx.Err() != nil {
				return finish(fmt.Errorf("shard %d: %w", sh.id, sctx.Err()))
			}
			if !isCtxErr(a.err) {
				c.markFailure(rs)
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if launched < len(cands) && failovers < c.opt.Retries {
				failovers++
				c.cFailover.Inc()
				launch(false)
				pending++
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(cands) {
				hedges++
				c.cHedgeFired.Inc()
				launch(true)
				pending++
			}
		case <-sctx.Done():
			return finish(fmt.Errorf("shard %d: %w", sh.id, sctx.Err()))
		}
	}
	return finish(fmt.Errorf("shard %d: all replicas failed: %w", sh.id, firstErr))
}

// hedgeDelay picks when the shard's second request fires: the fixed
// HedgeAfter when configured, otherwise the shard's observed p99 —
// hedging the slowest 1% of requests — clamped to [HedgeFloor,
// ShardDeadline/2]. Before enough samples exist the floor applies.
func (c *Coordinator) hedgeDelay(sh *shardState) time.Duration {
	if c.opt.HedgeAfter > 0 {
		return c.opt.HedgeAfter
	}
	d := c.opt.HedgeFloor
	if sh.lat.Count() >= hedgeWarmup {
		if p99 := time.Duration(sh.lat.Quantile(0.99)); p99 > d {
			d = p99
		}
	}
	if max := c.opt.ShardDeadline / 2; d > max {
		d = max
	}
	return d
}

// probeDown launches one async re-admission probe at each down (not
// stale) replica of sh. Probes run detached from the query's
// cancellation — the query that triggered them may finish first — but
// inside the shard deadline, and Close waits for them.
func (c *Coordinator) probeDown(ctx context.Context, sh *shardState) {
	for i, rs := range sh.replicas {
		rs.mu.Lock()
		due := rs.down && !rs.stale
		rs.mu.Unlock()
		if !due {
			continue
		}
		c.probes.Add(1)
		c.cProbe.Inc()
		go func(i int) {
			defer c.probes.Done()
			if err := c.Probe(context.WithoutCancel(ctx), sh.id, i); err == nil {
				c.cProbeOK.Inc()
			}
		}(i)
	}
}

// Probe issues one health-check query at replica ri of shard si through
// its fault boundary and applies the result to its health state: a
// success re-admits a down replica. The probe query addresses the
// lattice bottom — the cheapest cuboid — and its answer is discarded,
// never merged into a client response.
func (c *Coordinator) Probe(ctx context.Context, si, ri int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	pctx, cancel := context.WithTimeout(ctx, c.opt.ShardDeadline)
	defer cancel()
	rs := c.shards[si].replicas[ri]
	err := rs.boundary().Call("shard.replica.probe")
	if err == nil {
		_, err = rs.r.Query(pctx, serve.Request{})
	}
	if err != nil {
		if !isCtxErr(err) {
			c.markFailure(rs)
		}
		return err
	}
	c.markSuccess(rs)
	return nil
}
