package shard

import (
	"context"
	"sync"
	"testing"
	"time"

	"x3/internal/agg"
	"x3/internal/obs"
	"x3/internal/serve"
)

// fakeReplica is a scriptable Replica with a deterministic latency and
// failure schedule, recording how it was driven: query count, whether a
// pending query saw its context cancelled, and how many answers it
// actually returned (committed answers are counted by the caller via
// row provenance — each answer carries the replica's label).
type fakeReplica struct {
	label string

	mu        sync.Mutex
	delay     time.Duration
	err       error
	calls     int
	cancelled int
	answered  int
}

func (f *fakeReplica) Label() string { return f.label }

func (f *fakeReplica) schedule() (time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	return f.delay, f.err
}

func (f *fakeReplica) set(delay time.Duration, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay, f.err = delay, err
}

func (f *fakeReplica) Query(ctx context.Context, req serve.Request) (*serve.CellAnswer, error) {
	delay, err := f.schedule()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			f.mu.Lock()
			f.cancelled++
			f.mu.Unlock()
			return nil, ctx.Err()
		}
	}
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.answered++
	f.mu.Unlock()
	return &serve.CellAnswer{
		Cuboid: "fake",
		Rows:   []serve.CellRow{{Values: []string{f.label}, State: agg.State{N: 1, Sum: 1}}},
	}, nil
}

func (f *fakeReplica) Append(ctx context.Context, body []byte) (int64, error) {
	_, err := f.schedule()
	return 1, err
}

func (f *fakeReplica) Close() error { return nil }

func (f *fakeReplica) stats() (calls, cancelled, answered int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.cancelled, f.answered
}

// fakeCoordinator builds a 1-shard coordinator over the given replicas.
func fakeCoordinator(t *testing.T, opt Options, replicas ...*fakeReplica) (*Coordinator, *obs.Registry) {
	t.Helper()
	rs := make([]Replica, len(replicas))
	for i, r := range replicas {
		rs[i] = r
	}
	if opt.Registry == nil {
		opt.Registry = obs.New()
	}
	c, err := NewWithReplicas(nil, [][]Replica{rs}, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, opt.Registry
}

// hedgeCounters reads the shard.hedge.* triple.
func hedgeCounters(reg *obs.Registry) (fired, won, wasted int64) {
	return reg.Counter("shard.hedge.fired").Value(),
		reg.Counter("shard.hedge.won").Value(),
		reg.Counter("shard.hedge.wasted").Value()
}

// waitCancelled polls until the replica has observed a context
// cancellation (the loser's teardown is asynchronous with the winner's
// return) or the deadline passes.
func waitCancelled(t *testing.T, f *fakeReplica) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, cancelled, _ := f.stats(); cancelled > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("replica %s never saw its context cancelled", f.label)
}

// TestHedgeProperty drives the hedging state machine through a grid of
// deterministic latency schedules and asserts, for each, the committed
// answer's provenance (exactly one replica's answer is committed), the
// loser's cancellation, and that the shard.hedge counters reconcile as
// fired == won + wasted.
func TestHedgeProperty(t *testing.T) {
	cases := []struct {
		name         string
		primary      time.Duration
		secondary    time.Duration
		hedgeAfter   time.Duration
		wantWinner   string // label of the replica whose answer commits
		wantFired    int64
		wantWon      int64
		wantCancel   bool // loser should observe cancellation
		wantHedgeRun bool // secondary should have been queried at all
	}{
		// Primary answers before the hedge delay: no hedge fires.
		{name: "primary-fast", primary: 0, secondary: 0,
			hedgeAfter: 250 * time.Millisecond, wantWinner: "r0"},
		// Primary stalls past the hedge delay, hedge answers first: the
		// hedge wins and the stalled primary is cancelled.
		{name: "hedge-wins", primary: 30 * time.Second, secondary: time.Millisecond,
			hedgeAfter: 5 * time.Millisecond, wantWinner: "r1",
			wantFired: 1, wantWon: 1, wantCancel: true, wantHedgeRun: true},
		// Primary is slow but still beats the slower hedge: the primary
		// wins, the hedge was fired and wasted, and it gets cancelled.
		{name: "hedge-loses", primary: 40 * time.Millisecond, secondary: 30 * time.Second,
			hedgeAfter: 5 * time.Millisecond, wantWinner: "r0",
			wantFired: 1, wantWon: 0, wantCancel: true, wantHedgeRun: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r0 := &fakeReplica{label: "r0", delay: tc.primary}
			r1 := &fakeReplica{label: "r1", delay: tc.secondary}
			c, reg := fakeCoordinator(t, Options{
				Replicas: 2, HedgeAfter: tc.hedgeAfter,
				ShardDeadline: time.Minute, ProbeEvery: -1,
			}, r0, r1)
			resp, err := c.ServeRequest(context.Background(), serve.Request{})
			if err != nil {
				t.Fatal(err)
			}
			// Exactly one replica's answer is committed: the merged rows
			// are that replica's single row, count 1 — two committed
			// answers would merge into count 2.
			if len(resp.Rows) != 1 || resp.Rows[0].Count != 1 {
				t.Fatalf("rows = %+v, want exactly one committed answer", resp.Rows)
			}
			if got := resp.Rows[0].Values[0]; got != tc.wantWinner {
				t.Fatalf("winner = %s, want %s", got, tc.wantWinner)
			}
			if tc.wantCancel {
				loser := r0
				if tc.wantWinner == "r0" {
					loser = r1
				}
				waitCancelled(t, loser)
			}
			if calls, _, _ := r1.stats(); (calls > 0) != tc.wantHedgeRun {
				t.Fatalf("secondary queried=%v, want %v", calls > 0, tc.wantHedgeRun)
			}
			// Wait for the loser's goroutine to drain before reading the
			// wasted counter: the winner's return races the loser's send.
			if tc.wantCancel {
				waitCounters(t, reg, tc.wantFired, tc.wantWon)
			}
			fired, won, wasted := hedgeCounters(reg)
			if fired != tc.wantFired || won != tc.wantWon {
				t.Fatalf("hedge fired=%d won=%d, want fired=%d won=%d", fired, won, tc.wantFired, tc.wantWon)
			}
			if fired != won+wasted {
				t.Fatalf("hedge counters do not reconcile: fired=%d won=%d wasted=%d", fired, won, wasted)
			}
		})
	}
}

// waitCounters polls until fired == won + wasted with the expected fired
// and won values — the loser teardown that increments wasted runs after
// the winner returns.
func waitCounters(t *testing.T, reg *obs.Registry, wantFired, wantWon int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		fired, won, wasted := hedgeCounters(reg)
		if fired == wantFired && won == wantWon && fired == won+wasted {
			return
		}
		time.Sleep(time.Millisecond)
	}
	fired, won, wasted := hedgeCounters(reg)
	t.Fatalf("hedge counters never reconciled: fired=%d won=%d wasted=%d", fired, won, wasted)
}

// TestHedgeSweep runs a deterministic latency grid — every pairing of
// fast/slow primaries and secondaries around a fixed hedge delay — and
// checks the global invariants on every schedule: exactly one committed
// answer per query and fired == won + wasted at quiescence.
func TestHedgeSweep(t *testing.T) {
	delays := []time.Duration{0, 2 * time.Millisecond, 25 * time.Millisecond, 80 * time.Millisecond}
	r0 := &fakeReplica{label: "r0"}
	r1 := &fakeReplica{label: "r1"}
	c, reg := fakeCoordinator(t, Options{
		Replicas: 2, HedgeAfter: 10 * time.Millisecond,
		ShardDeadline: time.Minute, ProbeEvery: -1,
	}, r0, r1)
	queries := 0
	for _, d0 := range delays {
		for _, d1 := range delays {
			r0.set(d0, nil)
			r1.set(d1, nil)
			resp, err := c.ServeRequest(context.Background(), serve.Request{})
			if err != nil {
				t.Fatalf("d0=%v d1=%v: %v", d0, d1, err)
			}
			queries++
			if len(resp.Rows) != 1 || resp.Rows[0].Count != 1 {
				t.Fatalf("d0=%v d1=%v: rows %+v, want one committed answer", d0, d1, resp.Rows)
			}
		}
	}
	// Quiescence: every in-flight loser observes cancellation eventually;
	// then the ledger must balance.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		fired, won, wasted := hedgeCounters(reg)
		if fired == won+wasted {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	fired, won, wasted := hedgeCounters(reg)
	if fired != won+wasted {
		t.Fatalf("after %d queries hedge ledger unbalanced: fired=%d won=%d wasted=%d",
			queries, fired, won, wasted)
	}
	if fired == 0 {
		t.Fatal("latency grid never fired a hedge — the sweep is degenerate")
	}
	if won == 0 {
		t.Fatal("latency grid never had a hedge win — the sweep is degenerate")
	}
}

// TestHedgeDeadline: both replicas of shard 0 stall past the shard
// deadline while shard 1 answers — the answer must degrade to a Partial
// naming shard 0 (not hang, not fabricate), both stalled attempts must
// see cancellation, and the hedge ledger must still reconcile.
func TestHedgeDeadline(t *testing.T) {
	r0 := &fakeReplica{label: "r0", delay: time.Minute}
	r1 := &fakeReplica{label: "r1", delay: time.Minute}
	ok := &fakeReplica{label: "ok"}
	reg := obs.New()
	c, err := NewWithReplicas(nil, [][]Replica{{r0, r1}, {ok}}, Options{
		Replicas: 2, HedgeAfter: 5 * time.Millisecond,
		ShardDeadline: 60 * time.Millisecond, ProbeEvery: -1, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.ServeRequest(context.Background(), serve.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial || len(resp.Missing) != 1 {
		t.Fatalf("losing every replica of shard 0 must degrade to Partial, got %+v", resp)
	}
	if resp.Missing[0].Shard != 0 {
		t.Fatalf("Missing = %+v, want shard 0", resp.Missing)
	}
	if len(resp.Rows) != 1 || resp.Rows[0].Values[0] != "ok" {
		t.Fatalf("rows = %+v, want shard 1's answer only", resp.Rows)
	}
	fired, won, wasted := hedgeCounters(reg)
	if fired != won+wasted {
		t.Fatalf("hedge ledger unbalanced after deadline: fired=%d won=%d wasted=%d", fired, won, wasted)
	}
	waitCancelled(t, r0)
	waitCancelled(t, r1)
}
