package shard

import (
	"context"
	"errors"

	"x3/internal/serve"
)

// storeReplica backs a Replica with an in-process serve.Store.
type storeReplica struct {
	store *serve.Store
	label string
}

// NewStoreReplica wraps an in-process store as a Replica — the seam the
// differential suites use to pair coordinators with hand-built stores.
func NewStoreReplica(label string, st *serve.Store) Replica {
	return &storeReplica{store: st, label: label}
}

func (r *storeReplica) Label() string { return r.label }

func (r *storeReplica) Query(ctx context.Context, req serve.Request) (*serve.CellAnswer, error) {
	return r.store.AnswerCells(ctx, req)
}

func (r *storeReplica) Append(ctx context.Context, body []byte) (int64, error) {
	return r.store.Append(ctx, body)
}

func (r *storeReplica) Close() error { return r.store.Close() }

// markFailure records one query failure against the replica's health.
// Context errors are excluded by the caller: an expired shard deadline
// indicts the shard leg, not a specific replica.
func (c *Coordinator) markFailure(rs *replicaState) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.fails++
	if !rs.down && rs.fails >= c.opt.DownAfter {
		rs.down = true
		c.cReplicaDown.Inc()
		c.gDown.Set(c.downN.Add(1))
	}
}

// markSuccess resets the failure streak and re-admits a down replica
// (stale replicas stay out — they may be missing appends).
func (c *Coordinator) markSuccess(rs *replicaState) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.fails = 0
	if rs.down && !rs.stale {
		rs.down = false
		c.cReplicaUp.Inc()
		c.gDown.Set(c.downN.Add(-1))
	}
}

// markStale permanently removes a replica that missed an append.
func (c *Coordinator) markStale(rs *replicaState) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.stale {
		rs.stale = true
		c.cStale.Inc()
	}
	if !rs.down {
		rs.down = true
		c.cReplicaDown.Inc()
		c.gDown.Set(c.downN.Add(1))
	}
}

// healthy reports whether the replica is in rotation.
func (rs *replicaState) healthy() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return !rs.down && !rs.stale
}

// candidates orders a shard's replica indexes for one query: healthy
// replicas first (ascending — the primary-first discipline keeps the
// cache-warm replica hot), then down-but-not-stale replicas as a last
// resort (their mark may be stale in the other direction: the fault may
// have cleared since).
func (sh *shardState) candidates() []int {
	var healthy, down []int
	for i, rs := range sh.replicas {
		rs.mu.Lock()
		switch {
		case rs.stale:
		case rs.down:
			down = append(down, i)
		default:
			healthy = append(healthy, i)
		}
		rs.mu.Unlock()
	}
	return append(healthy, down...)
}

// isCtxErr reports whether err is a context cancellation or deadline —
// failures that indict the request's time budget, not the replica.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
