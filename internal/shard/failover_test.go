package shard

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"x3/internal/fault"
	"x3/internal/obs"
	"x3/internal/serve"
)

// TestFailoverOnError: a hard-erroring primary fails over to its
// sibling, gets marked down after DownAfter consecutive failures, drops
// out of the candidate order, and is re-admitted by a successful probe.
func TestFailoverOnError(t *testing.T) {
	r0 := &fakeReplica{label: "r0", err: errors.New("boom")}
	r1 := &fakeReplica{label: "r1"}
	c, reg := fakeCoordinator(t, Options{
		Replicas: 2, Retries: 1, DownAfter: 2,
		HedgeAfter: time.Minute, ShardDeadline: time.Minute, ProbeEvery: -1,
	}, r0, r1)

	for q := 0; q < 2; q++ {
		resp, err := c.ServeRequest(context.Background(), serve.Request{})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Partial || resp.Rows[0].Values[0] != "r1" {
			t.Fatalf("query %d: %+v, want r1's answer via failover", q, resp.Rows)
		}
	}
	if got := reg.Counter("shard.failover").Value(); got != 2 {
		t.Fatalf("failover count = %d, want 2", got)
	}
	topo := c.Topology()
	if !topo[0].Replicas[0].Down {
		t.Fatal("r0 not marked down after DownAfter consecutive failures")
	}
	if got := reg.Gauge("shard.replicas.down").Value(); got != 1 {
		t.Fatalf("shard.replicas.down gauge = %d, want 1", got)
	}

	// Down replica leaves the candidate head: the next query goes to r1
	// directly, with no further failover.
	if _, err := c.ServeRequest(context.Background(), serve.Request{}); err != nil {
		t.Fatal(err)
	}
	if calls, _, _ := r0.stats(); calls != 2 {
		t.Fatalf("down replica queried %d times, want 2 (pre-down only)", calls)
	}
	if got := reg.Counter("shard.failover").Value(); got != 2 {
		t.Fatalf("failover count moved to %d after the replica was down", got)
	}

	// The fault clears; a probe re-admits the replica.
	r0.set(0, nil)
	if err := c.Probe(context.Background(), 0, 0); err != nil {
		t.Fatal(err)
	}
	topo = c.Topology()
	if topo[0].Replicas[0].Down {
		t.Fatal("r0 still down after a successful probe")
	}
	if got := reg.Counter("shard.replica.up").Value(); got != 1 {
		t.Fatalf("shard.replica.up = %d, want 1", got)
	}
	if got := reg.Gauge("shard.replicas.down").Value(); got != 0 {
		t.Fatalf("shard.replicas.down gauge = %d, want 0", got)
	}
}

// TestProbeReadmissionLoop: with ProbeEvery=1 the query path itself
// launches the re-admission probe once the fault clears.
func TestProbeReadmissionLoop(t *testing.T) {
	r0 := &fakeReplica{label: "r0", err: errors.New("boom")}
	r1 := &fakeReplica{label: "r1"}
	c, reg := fakeCoordinator(t, Options{
		Replicas: 2, Retries: 1, DownAfter: 1,
		HedgeAfter: time.Minute, ShardDeadline: time.Minute, ProbeEvery: 1,
	}, r0, r1)

	if _, err := c.ServeRequest(context.Background(), serve.Request{}); err != nil {
		t.Fatal(err)
	}
	if !c.Topology()[0].Replicas[0].Down {
		t.Fatal("r0 not down after DownAfter=1 failure")
	}
	r0.set(0, nil)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.ServeRequest(context.Background(), serve.Request{}); err != nil {
			t.Fatal(err)
		}
		if !c.Topology()[0].Replicas[0].Down {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if c.Topology()[0].Replicas[0].Down {
		t.Fatal("query-path probes never re-admitted the recovered replica")
	}
	if reg.Counter("shard.probe.launched").Value() == 0 || reg.Counter("shard.probe.ok").Value() == 0 {
		t.Fatal("probe counters did not move")
	}
}

// TestAppendStaleDiscipline: a replica that misses an append — every
// attempt through its fault boundary fails while the sibling succeeds —
// is marked stale and never serves or re-admits again, and the
// coordinator's answers stay exact off the surviving replica.
func TestAppendStaleDiscipline(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 5, 40)
	single, err := serve.BuildDir(filepath.Join(t.TempDir(), "oracle"), lat, set,
		serve.Options{Views: 3, BlockCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	reg := obs.New()
	c, err := New(t.TempDir(), lat, set, Options{
		Shards: 1, Replicas: 2, ProbeEvery: -1, Registry: reg,
		Store: serve.Options{Views: 3, BlockCells: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Replica r1's append boundary fails every attempt.
	c.SetReplicaFault(0, 1, fault.New(fault.Config{Seed: 11, ErrEvery: 1}))
	_, _, doc := treebankWorkload(t, 12, 20)
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	wantAdd, err := single.Append(context.Background(), buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	gotAdd, err := c.Append(context.Background(), buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if gotAdd != wantAdd {
		t.Fatalf("append added %d facts, single-node %d", gotAdd, wantAdd)
	}
	if got := reg.Counter("shard.append.retries").Value(); got != int64(defaultAppendRetries) {
		t.Fatalf("append retries = %d, want %d", got, defaultAppendRetries)
	}
	if got := reg.Counter("shard.replica.stale").Value(); got != 1 {
		t.Fatalf("stale count = %d, want 1", got)
	}
	topo := c.Topology()
	if !topo[0].Replicas[1].Stale || !topo[0].Replicas[1].Down {
		t.Fatalf("r1 = %+v, want stale+down after missing an append", topo[0].Replicas[1])
	}

	// Clearing the fault and probing must NOT re-admit a stale replica:
	// it is missing facts and would silently under-count.
	c.SetReplicaFault(0, 1, nil)
	if err := c.Probe(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	topo = c.Topology()
	if !topo[0].Replicas[1].Stale || !topo[0].Replicas[1].Down {
		t.Fatalf("r1 = %+v after probe, want still stale+down", topo[0].Replicas[1])
	}

	// Queries keep flowing off the surviving replica, exact and complete.
	for _, p := range lat.Points() {
		req := cuboidRequest(lat, p)
		want, err := single.ServeRequest(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.ServeRequest(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", lat.Label(p), err)
		}
		if got.Partial {
			t.Fatalf("%s: partial answer with a healthy replica", lat.Label(p))
		}
		if canon(got) != canon(want) {
			t.Fatalf("%s: answer off surviving replica diverges:\n%s\nwant:\n%s",
				lat.Label(p), canon(got), canon(want))
		}
	}
	// The stale replica never served: all queries went to r0.
	if calls := c.shards[0].replicas[1]; calls.healthy() {
		t.Fatal("stale replica reports healthy")
	}
}

// TestAllStaleFails: when every replica of a shard is stale the shard
// has no serviceable replica and the coordinator reports the shard as
// missing rather than serving from a known-incomplete store.
func TestAllStaleFails(t *testing.T) {
	r0 := &fakeReplica{label: "r0"}
	r1 := &fakeReplica{label: "r1"}
	ok := &fakeReplica{label: "ok"}
	reg := obs.New()
	c, err := NewWithReplicas(nil, [][]Replica{{r0, r1}, {ok}}, Options{
		Replicas: 2, HedgeAfter: time.Minute, ShardDeadline: time.Minute,
		ProbeEvery: -1, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.markStale(c.shards[0].replicas[0])
	c.markStale(c.shards[0].replicas[1])
	resp, err := c.ServeRequest(context.Background(), serve.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Partial || len(resp.Missing) != 1 || resp.Missing[0].Shard != 0 {
		t.Fatalf("all-stale shard must be reported missing, got %+v", resp)
	}
	if len(resp.Rows) != 1 || resp.Rows[0].Values[0] != "ok" {
		t.Fatalf("rows = %+v, want shard 1's answer only", resp.Rows)
	}
}
