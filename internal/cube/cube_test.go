package cube

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"x3/internal/agg"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/mem"
	"x3/internal/pattern"
	"x3/internal/xmltree"
	"x3/internal/xq"
)

// ---------- fixtures ----------

const paperXML = `
<database>
  <publication id="1">
    <author id="a1"><name>John</name></author>
    <author id="a2"><name>Jane</name></author>
    <publisher id="p1"/>
    <year>2003</year>
  </publication>
  <publication id="2">
    <author id="a3"><name>Bob</name></author>
    <publisher id="p1"/>
    <year>2004</year>
    <year>2005</year>
  </publication>
  <publication id="3">
    <authors><author id="a1"><name>John</name></author></authors>
    <year>2003</year>
  </publication>
  <publication id="4">
    <author id="a4"><name>Amy</name></author>
    <pubData><publisher id="p2"/><year>2005</year></pubData>
  </publication>
</database>`

const query1Text = `
for $b in doc("book.xml")//publication,
    $n in $b/author/name,
    $p in $b//publisher/@id,
    $y in $b/year
X^3 $b/@id by $n (LND, SP, PC-AD), $p (LND, PC-AD), $y (LND)
return COUNT($b).`

func paperInput(t *testing.T) (*lattice.Lattice, *match.Set) {
	t.Helper()
	doc, err := xmltree.ParseString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	q, err := xq.Parse(query1Text)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := lattice.New(q)
	if err != nil {
		t.Fatal(err)
	}
	set, err := match.Evaluate(doc, lat)
	if err != nil {
		t.Fatal(err)
	}
	return lat, set
}

// synthQuery builds a d-axis LND query whose axis i has the given number
// of live ladder states (1, 2 or 3).
func synthQuery(liveStates []int) *pattern.CubeQuery {
	q := &pattern.CubeQuery{
		FactVar:  "$f",
		FactPath: pattern.MustParsePath("//fact"),
		Agg:      pattern.Count,
	}
	for i, ls := range liveStates {
		var p pattern.Path
		relax := pattern.RelaxSet(0).With(pattern.LND)
		switch ls {
		case 1:
			p = pattern.MustParsePath(fmt.Sprintf("/t%d", i))
		case 2:
			p = pattern.MustParsePath(fmt.Sprintf("/m%d/t%d", i, i))
			relax = relax.With(pattern.SP)
		case 3:
			p = pattern.MustParsePath(fmt.Sprintf("/m%d/t%d", i, i))
			relax = relax.With(pattern.SP).With(pattern.PCAD)
		default:
			panic("liveStates must be 1..3")
		}
		q.Axes = append(q.Axes, pattern.AxisSpec{
			Var:   fmt.Sprintf("$v%d", i),
			Path:  p,
			Relax: relax,
		})
	}
	return q
}

// synthSet generates a random fact table with monotone ladders. pMissing
// and pRepeat control coverage and disjointness violations; card is the
// value domain size per axis.
func synthSet(t testing.TB, rng *rand.Rand, liveStates []int, n int, card int, pMissing, pRepeat float64) (*lattice.Lattice, *match.Set) {
	t.Helper()
	lat, err := lattice.New(synthQuery(liveStates))
	if err != nil {
		t.Fatal(err)
	}
	set := &match.Set{Lattice: lat}
	for range liveStates {
		set.Dicts = append(set.Dicts, match.NewDict())
	}
	for i := 0; i < card; i++ {
		for _, d := range set.Dicts {
			d.ID(fmt.Sprintf("v%d", i))
		}
	}
	for i := 0; i < n; i++ {
		f := &match.Fact{ID: int64(i), Key: fmt.Sprintf("f%d", i), Measure: float64(1 + rng.Intn(5))}
		f.Axes = make([][][]match.ValueID, len(liveStates))
		for a, ls := range liveStates {
			// Most relaxed live state first, then shrink toward rigid.
			most := []match.ValueID{}
			if rng.Float64() >= pMissing {
				most = append(most, match.ValueID(rng.Intn(card)))
				for rng.Float64() < pRepeat {
					most = append(most, match.ValueID(rng.Intn(card)))
				}
				most = dedupIDs(most)
			}
			states := make([][]match.ValueID, ls)
			states[ls-1] = most
			for s := ls - 2; s >= 0; s-- {
				// Random subset of the next state.
				var sub []match.ValueID
				for _, v := range states[s+1] {
					if rng.Float64() < 0.7 {
						sub = append(sub, v)
					}
				}
				states[s] = sub
			}
			f.Axes[a] = states
		}
		set.Facts = append(set.Facts, f)
	}
	if err := set.CheckMonotone(); err != nil {
		t.Fatal(err)
	}
	return lat, set
}

func dedupIDs(ids []match.ValueID) []match.ValueID {
	seen := map[match.ValueID]bool{}
	out := ids[:0]
	for _, v := range ids {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	// Keep sorted as match.Evaluate guarantees.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// runAlg runs one algorithm into a fresh Result.
func runAlg(t testing.TB, alg Algorithm, lat *lattice.Lattice, set *match.Set, opts ...func(*Input)) (*Result, Stats) {
	t.Helper()
	res := NewResult(lat, set.Dicts)
	in := &Input{Lattice: lat, Source: set, Dicts: set.Dicts, TmpDir: t.TempDir()}
	for _, o := range opts {
		o(in)
	}
	st, err := alg.Run(in, res)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	return res, st
}

// sameResults compares two results cell by cell.
func sameResults(a, b *Result) error {
	if len(a.Cuboids) != len(b.Cuboids) {
		return fmt.Errorf("cuboid count %d vs %d", len(a.Cuboids), len(b.Cuboids))
	}
	for pid, cells := range a.Cuboids {
		other, ok := b.Cuboids[pid]
		if !ok {
			return fmt.Errorf("cuboid %d missing", pid)
		}
		if len(cells) != len(other) {
			return fmt.Errorf("cuboid %d: %d vs %d groups", pid, len(cells), len(other))
		}
		for k, s := range cells {
			o, ok := other[k]
			if !ok {
				return fmt.Errorf("cuboid %d: group %v missing", pid, unpackKey([]byte(k)))
			}
			if s.N != o.N || math.Abs(s.Sum-o.Sum) > 1e-9 {
				return fmt.Errorf("cuboid %d group %v: N=%d/%d Sum=%g/%g",
					pid, unpackKey([]byte(k)), s.N, o.N, s.Sum, o.Sum)
			}
		}
	}
	return nil
}

// ---------- paper example ground truth ----------

// TestPaperQuery1GroundTruth pins the COUNT cube of the Fig. 1 data to
// hand-computed values, including the two summarizability traps described
// in §1.
func TestPaperQuery1GroundTruth(t *testing.T) {
	lat, set := paperInput(t)
	res, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	// Point layout: axes ($n, $p, $y); ladders: $n 4 states (rigid, PC-AD,
	// SP, LND), $p 2 (rigid, LND), $y 2 (rigid, LND).
	del := lat.Bottom()

	check := func(p lattice.Point, want float64, values ...string) {
		t.Helper()
		got, ok := res.Get(p, values...)
		if !ok {
			t.Errorf("point %v %v: missing", lat.Label(p), values)
			return
		}
		if got != want {
			t.Errorf("point %v %v = %v, want %v", lat.Label(p), values, got, want)
		}
	}
	absent := func(p lattice.Point, values ...string) {
		t.Helper()
		if got, ok := res.Get(p, values...); ok {
			t.Errorf("point %v %v = %v, want absent", lat.Label(p), values, got)
		}
	}

	// Bottom: all four publications in one group.
	bottom := del.Clone()
	if got, ok := res.Get(bottom); !ok || got != 4 {
		t.Errorf("bottom = %v, %v; want 4", got, ok)
	}

	// Group-by year (rigid): 2003->2, 2004->1, 2005->1; pub4's year is
	// inside pubData, so it is missing (coverage violation).
	yOnly := del.Clone()
	yOnly[2] = 0
	check(yOnly, 2, "2003")
	check(yOnly, 1, "2004")
	check(yOnly, 1, "2005")
	if n := res.CuboidSize(yOnly); n != 3 {
		t.Errorf("year cuboid size = %d, want 3", n)
	}

	// Group-by publisher, year: the §1 roll-up trap — (p1,2003) has only
	// pub1; rolling these up to year would miss pub3.
	py := del.Clone()
	py[1], py[2] = 0, 0
	check(py, 1, "p1", "2003")
	check(py, 1, "p1", "2004")
	check(py, 1, "p1", "2005")
	absent(py, "p2", "2005") // pub4's year not a child of publication
	if n := res.CuboidSize(py); n != 3 {
		t.Errorf("publisher-year cuboid size = %d, want 3", n)
	}

	// Group-by author name at rigid state: pub3's John is hidden under
	// <authors>.
	nOnly := del.Clone()
	nOnly[0] = 0
	check(nOnly, 1, "John")
	check(nOnly, 1, "Jane")
	check(nOnly, 1, "Bob")
	check(nOnly, 1, "Amy")

	// At the SP state (//name) pub3's John is found: John->2.
	nSP := del.Clone()
	nSP[0] = 2
	check(nSP, 2, "John")
	check(nSP, 1, "Jane")

	// The non-disjointness example: grouping by name and year at rigid,
	// pub1 appears in both (John,2003) and (Jane,2003).
	ny := del.Clone()
	ny[0], ny[2] = 0, 0
	check(ny, 1, "John", "2003")
	check(ny, 1, "Jane", "2003")
	// And pub2 appears under both of its years.
	check(ny, 1, "Bob", "2004")
	check(ny, 1, "Bob", "2005")

	// Total cuboids: 16.
	if len(res.Cuboids) > lat.Size() {
		t.Errorf("more cuboids than lattice points: %d > %d", len(res.Cuboids), lat.Size())
	}
}

// ---------- algorithm equivalence ----------

// TestAlgorithmsMatchOracleOnPaperData cross-checks every correct
// algorithm against the oracle on the paper's example (which violates both
// properties).
func TestAlgorithmsMatchOracleOnPaperData(t *testing.T) {
	lat, set := paperInput(t)
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	props, err := MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"COUNTER", "BUC", "BUCCUST", "TD", "TDCUST"} {
		alg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := runAlg(t, alg, lat, set, func(in *Input) { in.Props = props })
		if err := sameResults(oracle, res); err != nil {
			t.Errorf("%s differs from oracle: %v", name, err)
		}
	}
}

// TestOptimizedAlgorithmsWrongOnViolatingData reproduces the §4.3
// observation: the globally-optimized variants compute incorrect results
// when summarizability does not hold.
func TestOptimizedAlgorithmsWrongOnViolatingData(t *testing.T) {
	lat, set := paperInput(t)
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"BUCOPT", "TDOPT", "TDOPTALL"} {
		alg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := runAlg(t, alg, lat, set)
		if err := sameResults(oracle, res); err == nil {
			t.Errorf("%s unexpectedly matches the oracle on violating data", name)
		}
	}
}

// TestRandomEquivalence fuzzes the always-correct algorithms against the
// oracle over many random fact tables, including coverage and disjointness
// violations and multi-state ladders.
func TestRandomEquivalence(t *testing.T) {
	shapes := [][]int{
		{1},
		{1, 1},
		{2, 1},
		{3, 2, 1},
		{1, 1, 1, 1},
		{2, 2},
	}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		shape := shapes[trial%len(shapes)]
		pMiss := []float64{0, 0.3}[trial%2]
		pRep := []float64{0, 0.4}[(trial/2)%2]
		lat, set := synthSet(t, rng, shape, 40+rng.Intn(120), 3+rng.Intn(5), pMiss, pRep)
		oracle, err := RunOracle(lat, set, set.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		props, err := MeasureProps(lat, set)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"COUNTER", "BUC", "BUCCUST", "TD", "TDCUST"} {
			alg, _ := ByName(name)
			res, _ := runAlg(t, alg, lat, set, func(in *Input) { in.Props = props })
			if err := sameResults(oracle, res); err != nil {
				t.Fatalf("trial %d (%v, miss=%.1f rep=%.1f): %s differs: %v",
					trial, shape, pMiss, pRep, name, err)
			}
		}
		// When the data happens to satisfy the preconditions, the
		// optimized variants must agree too.
		if props.GloballyDisjoint() {
			for _, name := range []string{"BUCOPT", "TDOPT"} {
				alg, _ := ByName(name)
				res, _ := runAlg(t, alg, lat, set)
				if err := sameResults(oracle, res); err != nil {
					t.Fatalf("trial %d: %s differs on disjoint data: %v", trial, name, err)
				}
			}
		}
		if props.GloballyDisjoint() && props.GloballyCovered() {
			alg, _ := ByName("TDOPTALL")
			res, _ := runAlg(t, alg, lat, set)
			if err := sameResults(oracle, res); err != nil {
				t.Fatalf("trial %d: TDOPTALL differs on conforming data: %v", trial, err)
			}
		}
	}
}

// TestConformingDataAllEight runs all eight algorithms on clean data
// (coverage and disjointness hold) — everything must agree.
func TestConformingDataAllEight(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 200, 4, 0, 0)
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	props, err := MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	if !props.GloballyDisjoint() || !props.GloballyCovered() {
		t.Fatal("fixture not conforming")
	}
	for name, alg := range Algorithms() {
		res, _ := runAlg(t, alg, lat, set, func(in *Input) { in.Props = props })
		if err := sameResults(oracle, res); err != nil {
			t.Errorf("%s differs on conforming data: %v", name, err)
		}
	}
}

// ---------- COUNTER multi-pass ----------

func TestCounterMultiPass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lat, set := synthSet(t, rng, []int{1, 1, 1, 1}, 300, 10, 0.2, 0.2)
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	// A budget far below the cube size forces hash-partitioned passes.
	res, st := runAlg(t, Counter{}, lat, set, func(in *Input) {
		in.Budget = mem.New(64 << 10)
	})
	if st.Restarts == 0 || st.Passes < 2 {
		t.Errorf("expected multi-pass run, got %+v", st)
	}
	if err := sameResults(oracle, res); err != nil {
		t.Errorf("multi-pass COUNTER differs: %v", err)
	}
}

func TestCounterImpossibleBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lat, set := synthSet(t, rng, []int{1, 1}, 50, 5, 0, 0)
	in := &Input{Lattice: lat, Source: set, Dicts: set.Dicts, Budget: mem.New(16)}
	_, err := Counter{}.Run(in, &CountingSink{})
	if err == nil {
		t.Fatal("16-byte budget: expected failure")
	}
}

// ---------- TD externals ----------

func TestTDExternalSortsUnderSmallBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 400, 8, 0.2, 0.3)
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	res, st := runAlg(t, TD{}, lat, set, func(in *Input) {
		in.Budget = mem.New(32 << 10)
	})
	if st.ExternalSorts == 0 {
		t.Errorf("expected external sorts, got %+v", st)
	}
	if st.Sorts != lat.Size() {
		t.Errorf("TD sorts = %d, want one per cuboid (%d)", st.Sorts, lat.Size())
	}
	if err := sameResults(oracle, res); err != nil {
		t.Errorf("TD with external sorts differs: %v", err)
	}
}

func TestTDOPTSharesSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	lat, set := synthSet(t, rng, []int{1, 1, 1, 1}, 100, 4, 0, 0)
	_, stOpt := runAlg(t, TD{Mode: TDModeOpt}, lat, set)
	_, stBase := runAlg(t, TD{}, lat, set)
	if stOpt.Sorts >= stBase.Sorts {
		t.Errorf("TDOPT sorts (%d) not fewer than TD (%d)", stOpt.Sorts, stBase.Sorts)
	}
}

func TestTDOPTALLRollsUp(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 150, 3, 0, 0)
	_, st := runAlg(t, TD{Mode: TDModeOptAll}, lat, set)
	if st.Sorts == 0 {
		t.Error("TDOPTALL did no base sort")
	}
	if st.Rollups == 0 {
		t.Error("TDOPTALL did no roll-ups")
	}
	// Exactly one base pass over the source.
	if st.Passes != 1 {
		t.Errorf("TDOPTALL passes = %d, want 1", st.Passes)
	}
}

func TestTDCUSTRollsUpOnlySafeEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Axis 0 violates disjointness+coverage, axes 1 and 2 are clean.
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 150, 3, 0, 0)
	for _, f := range set.Facts[:30] {
		f.Axes[0][0] = nil // break coverage on axis 0
	}
	props, err := MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	if props.Covered(0, 0) || !props.Covered(1, 0) {
		t.Fatal("fixture props wrong")
	}
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	res, st := runAlg(t, TD{Mode: TDModeCust}, lat, set, func(in *Input) { in.Props = props })
	if err := sameResults(oracle, res); err != nil {
		t.Fatalf("TDCUST differs: %v", err)
	}
	if st.Rollups == 0 {
		t.Error("TDCUST never rolled up despite safe axes")
	}
	_, stTD := runAlg(t, TD{}, lat, set)
	// Roll-ups replace base scans: TDCUST must touch base data on fewer
	// cuboids than TD (which scans it once per cuboid), and its sorts
	// over aggregate rows are far smaller than TD's over expanded base.
	if st.Passes >= stTD.Passes {
		t.Errorf("TDCUST base passes (%d) not fewer than TD (%d)", st.Passes, stTD.Passes)
	}
	if st.RowsSorted >= stTD.RowsSorted {
		t.Errorf("TDCUST rows sorted (%d) not fewer than TD (%d)", st.RowsSorted, stTD.RowsSorted)
	}
}

// ---------- BUC specifics ----------

func TestBUCOPTFasterPathUsed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 200, 5, 0, 0)
	_, stOpt := runAlg(t, BUC{Opt: true}, lat, set)
	if stOpt.Sorts == 0 {
		t.Error("BUCOPT did not use sorted partitioning")
	}
	_, stPlain := runAlg(t, BUC{}, lat, set)
	if stPlain.Sorts != 0 {
		t.Error("plain BUC used sorted partitioning")
	}
}

func TestBUCCUSTNeedsProps(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	lat, set := synthSet(t, rng, []int{1}, 10, 3, 0, 0)
	in := &Input{Lattice: lat, Source: set, Dicts: set.Dicts}
	if _, err := (BUC{Cust: true}).Run(in, &CountingSink{}); err == nil {
		t.Error("BUCCUST without props accepted")
	}
	if _, err := (TD{Mode: TDModeCust}).Run(in, &CountingSink{}); err == nil {
		t.Error("TDCUST without props accepted")
	}
}

func TestBUCBudgetExceededByFactTable(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	lat, set := synthSet(t, rng, []int{1, 1}, 100, 4, 0, 0)
	in := &Input{Lattice: lat, Source: set, Dicts: set.Dicts, Budget: mem.New(128)}
	if _, err := (BUC{}).Run(in, &CountingSink{}); err == nil {
		t.Error("BUC accepted a budget smaller than its fact table")
	}
}

// ---------- registry and misc ----------

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("algorithms = %v", names)
	}
	for _, n := range names {
		alg, err := ByName(n)
		if err != nil || alg.Name() != n {
			t.Errorf("ByName(%s) = %v, %v", n, alg, err)
		}
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Requirements documentation is consistent.
	reqs := map[string]Requirements{
		"COUNTER": {}, "BUC": {}, "BUCCUST": {}, "TD": {}, "TDCUST": {}, "BUCPAR": {},
		"BUCOPT":   {Disjointness: true},
		"TDOPT":    {Disjointness: true},
		"TDOPTALL": {Disjointness: true, Coverage: true},
		"TDPAR":    {Disjointness: true, Coverage: true},
	}
	for n, want := range reqs {
		alg, _ := ByName(n)
		if alg.Requires() != want {
			t.Errorf("%s.Requires() = %+v, want %+v", n, alg.Requires(), want)
		}
	}
}

func TestResultDuplicateCellRejected(t *testing.T) {
	lat, set := paperInput(t)
	res := NewResult(lat, set.Dicts)
	key := []match.ValueID{1}
	var s agg.State
	s.Add(1)
	if err := res.Cell(3, key, s); err != nil {
		t.Fatal(err)
	}
	if err := res.Cell(3, key, s); err == nil {
		t.Error("duplicate cell accepted")
	}
}

func TestEmptySource(t *testing.T) {
	lat, _ := paperInput(t)
	empty := &match.Set{Lattice: lat, Dicts: []*match.Dict{match.NewDict(), match.NewDict(), match.NewDict()}}
	for name, alg := range Algorithms() {
		if name == "BUCCUST" || name == "TDCUST" {
			continue // need props; covered elsewhere
		}
		res := NewResult(lat, empty.Dicts)
		in := &Input{Lattice: lat, Source: empty, Dicts: empty.Dicts, TmpDir: t.TempDir()}
		if _, err := alg.Run(in, res); err != nil {
			t.Errorf("%s on empty source: %v", name, err)
			continue
		}
		if res.Cells != 0 {
			t.Errorf("%s emitted %d cells from empty source", name, res.Cells)
		}
	}
}

func TestSumAggregateAcrossAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	lat, set := synthSet(t, rng, []int{1, 1}, 80, 4, 0.2, 0.3)
	lat.Query.Agg = pattern.Sum
	lat.Query.MeasurePath = pattern.MustParsePath("/price")
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	props, _ := MeasureProps(lat, set)
	for _, name := range []string{"COUNTER", "BUC", "BUCCUST", "TD", "TDCUST"} {
		alg, _ := ByName(name)
		res, _ := runAlg(t, alg, lat, set, func(in *Input) { in.Props = props })
		if err := sameResults(oracle, res); err != nil {
			t.Errorf("%s differs under SUM: %v", name, err)
		}
	}
}
