package cube

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"x3/internal/agg"
	"x3/internal/match"
)

// TestParallelMatchesOracle fuzzes BUCPAR against the oracle, including
// coverage and disjointness violations and multi-state ladders, at several
// worker counts.
func TestParallelMatchesOracle(t *testing.T) {
	shapes := [][]int{{1}, {1, 1}, {2, 1}, {3, 2, 1}, {1, 1, 1, 1}}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 31337))
		shape := shapes[trial%len(shapes)]
		lat, set := synthSet(t, rng, shape, 50+rng.Intn(150), 4, 0.25, 0.35)
		oracle, err := RunOracle(lat, set, set.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			res, st := runAlg(t, BUCParallel{Workers: workers}, lat, set)
			if err := sameResults(oracle, res); err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if st.Cells != oracle.Cells {
				t.Fatalf("trial %d: cells %d vs %d", trial, st.Cells, oracle.Cells)
			}
		}
	}
}

// TestParallelIceberg checks threshold pruning under parallelism.
func TestParallelIceberg(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 300, 4, 0.1, 0.2)
	lat.Query.MinSupport = 5
	defer func() { lat.Query.MinSupport = 0 }()
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := runAlg(t, BUCParallel{Workers: 3}, lat, set)
	if err := sameResults(oracle, res); err != nil {
		t.Fatalf("parallel iceberg differs: %v", err)
	}
}

// TestParallelSinkErrorStopsWorkers ensures a failing sink aborts the run
// and surfaces the error.
func TestParallelSinkErrorStopsWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	lat, set := synthSet(t, rng, []int{1, 1}, 200, 4, 0, 0)
	in := &Input{Lattice: lat, Source: set, Dicts: set.Dicts, TmpDir: t.TempDir()}
	_, err := (BUCParallel{Workers: 4}).Run(in, &failingSink{after: 5})
	if err == nil {
		t.Fatal("sink error swallowed")
	}
	if used := in.Budget.Used(); used != 0 {
		t.Fatalf("leaked %d budget bytes", used)
	}
}

// countingAtomicSink is a concurrency-safe cell counter used to verify
// BUCPAR emits exactly once per cell even under contention.
type countingAtomicSink struct {
	n atomic.Int64
}

func (c *countingAtomicSink) Cell(uint32, []match.ValueID, agg.State) error {
	c.n.Add(1)
	return nil
}

func TestParallelEmitsEachCellOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 400, 5, 0.1, 0.3)
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countingAtomicSink{}
	in := &Input{Lattice: lat, Source: set, Dicts: set.Dicts, TmpDir: t.TempDir()}
	st, err := (BUCParallel{Workers: 8}).Run(in, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sink.n.Load() != oracle.Cells || st.Cells != oracle.Cells {
		t.Fatalf("emitted %d (stats %d), oracle %d", sink.n.Load(), st.Cells, oracle.Cells)
	}
}

// BenchmarkParallelBUC measures speedup with worker count.
func BenchmarkParallelBUC(b *testing.B) {
	in := benchInput(b, []int{1, 1, 1, 1}, 4000, 0.1, 0.2)
	for _, workers := range []int{1, 2, 4} {
		alg := BUCParallel{Workers: workers}
		b.Run(alg.Name()+nameOf(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Run(in, &countingAtomicSink{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("BUC-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (BUC{}).Run(in, &CountingSink{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func nameOf(w int) string { return "/workers=" + string(rune('0'+w)) }
