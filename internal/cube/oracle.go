package cube

import (
	"x3/internal/agg"
	"x3/internal/lattice"
	"x3/internal/match"
)

// Oracle is the reference implementation of the X³ cell semantics: for
// every cuboid it scans every fact and enumerates its group memberships
// with straight-line nested loops, making no use of lattice structure,
// summarizability, or memory bounds. It is deliberately independent of the
// production algorithms so tests can cross-check them against it, and it
// is O(cuboids × facts) — usable only on small inputs.
type Oracle struct{}

// Name implements Algorithm.
func (Oracle) Name() string { return "ORACLE" }

// Requires implements Algorithm: the oracle needs nothing.
func (Oracle) Requires() Requirements { return Requirements{} }

// Run implements Algorithm.
func (Oracle) Run(in *Input, sink Sink) (Stats, error) {
	st := Stats{Algorithm: "ORACLE"}
	defer in.observe(&st)()
	lat := in.Lattice
	tab := newCellTable(0, 0, 0)
	for _, p := range lat.Points() {
		st.Passes++
		live := lat.LiveAxes(p)
		tab.resetWidth(len(live))
		key := make([]match.ValueID, 0, len(live))
		err := in.Source.Each(func(f *match.Fact) error {
			var emitCombos func(i int)
			emitCombos = func(i int) {
				if i == len(live) {
					tab.add(key, f.Measure)
					return
				}
				a := live[i]
				for _, v := range f.Values(a, int(p[a])) {
					key = append(key, v)
					emitCombos(i + 1)
					key = key[:len(key)-1]
				}
			}
			emitCombos(0)
			return nil
		})
		if err != nil {
			return st, err
		}
		pid := lat.ID(p)
		minSup := in.minSupport()
		err = tab.each(func(k []match.ValueID, s *agg.State) error {
			if s.N < minSup {
				return nil // iceberg threshold
			}
			if err := sink.Cell(pid, k, *s); err != nil {
				return err
			}
			st.Cells++
			return nil
		})
		if err != nil {
			return st, err
		}
	}
	tab.flushObs(in.Reg)
	return st, nil
}

var _ Algorithm = Oracle{}

// RunOracle computes the full cube with the oracle into a Result.
func RunOracle(lat *lattice.Lattice, src Source, dicts []*match.Dict) (*Result, error) {
	res := NewResult(lat, dicts)
	in := &Input{Lattice: lat, Source: src, Dicts: dicts}
	if _, err := (Oracle{}).Run(in, res); err != nil {
		return nil, err
	}
	return res, nil
}
