package cube

import (
	"x3/internal/agg"
	"x3/internal/lattice"
	"x3/internal/match"
)

// Oracle is the reference implementation of the X³ cell semantics: for
// every cuboid it scans every fact and enumerates its group memberships
// with straight-line nested loops, making no use of lattice structure,
// summarizability, or memory bounds. It is deliberately independent of the
// production algorithms so tests can cross-check them against it, and it
// is O(cuboids × facts) — usable only on small inputs.
type Oracle struct{}

// Name implements Algorithm.
func (Oracle) Name() string { return "ORACLE" }

// Requires implements Algorithm: the oracle needs nothing.
func (Oracle) Requires() Requirements { return Requirements{} }

// Run implements Algorithm.
func (Oracle) Run(in *Input, sink Sink) (Stats, error) {
	st := Stats{Algorithm: "ORACLE"}
	defer in.observe(&st)()
	lat := in.Lattice
	for _, p := range lat.Points() {
		st.Passes++
		cells := make(map[string]agg.State)
		live := lat.LiveAxes(p)
		err := in.Source.Each(func(f *match.Fact) error {
			var emitCombos func(i int, key []match.ValueID)
			var state agg.State
			state.Add(f.Measure)
			keys := make([][]match.ValueID, 0, 8)
			emitCombos = func(i int, key []match.ValueID) {
				if i == len(live) {
					cp := make([]match.ValueID, len(key))
					copy(cp, key)
					keys = append(keys, cp)
					return
				}
				a := live[i]
				for _, v := range f.Values(a, int(p[a])) {
					emitCombos(i+1, append(key, v))
				}
			}
			emitCombos(0, nil)
			for _, k := range keys {
				ks := string(packKey(nil, k))
				s := cells[ks]
				s.Add(f.Measure)
				cells[ks] = s
			}
			return nil
		})
		if err != nil {
			return st, err
		}
		pid := lat.ID(p)
		minSup := in.minSupport()
		for k, s := range cells {
			if s.N < minSup {
				continue // iceberg threshold
			}
			if err := sink.Cell(pid, unpackKey([]byte(k)), s); err != nil {
				return st, err
			}
			st.Cells++
		}
	}
	return st, nil
}

var _ Algorithm = Oracle{}

// RunOracle computes the full cube with the oracle into a Result.
func RunOracle(lat *lattice.Lattice, src Source, dicts []*match.Dict) (*Result, error) {
	res := NewResult(lat, dicts)
	in := &Input{Lattice: lat, Source: src, Dicts: dicts}
	if _, err := (Oracle{}).Run(in, res); err != nil {
		return nil, err
	}
	return res, nil
}
