package cube

import (
	"math/rand"
	"testing"

	"x3/internal/match"
)

// splitSet divides a fact table into two batches sharing dictionaries.
func splitSet(set *match.Set, at int) (*match.Set, *match.Set) {
	a := &match.Set{Lattice: set.Lattice, Dicts: set.Dicts, Facts: set.Facts[:at]}
	b := &match.Set{Lattice: set.Lattice, Dicts: set.Dicts, Facts: set.Facts[at:]}
	return a, b
}

// TestMaintainEqualsRecompute checks that cube(batch1) + Maintain(batch2)
// equals cube(batch1 + batch2), across violations and multi-state ladders.
func TestMaintainEqualsRecompute(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 607))
		shape := [][]int{{1, 1}, {2, 1}, {3, 1, 1}}[trial%3]
		lat, set := synthSet(t, rng, shape, 200, 5, 0.2, 0.3)
		full, err := RunOracle(lat, set, set.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		batch1, batch2 := splitSet(set, 120)
		res, err := RunOracle(lat, batch1, set.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		added, err := Maintain(res, batch2)
		if err != nil {
			t.Fatal(err)
		}
		if added != int64(batch2.NumFacts()) {
			t.Fatalf("added = %d, want %d", added, batch2.NumFacts())
		}
		if err := sameResults(full, res); err != nil {
			t.Fatalf("trial %d (%v): maintained differs from recomputed: %v", trial, shape, err)
		}
	}
}

// TestMaintainWithSumAggregate covers non-COUNT measures.
func TestMaintainWithSumAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	lat, set := synthSet(t, rng, []int{1, 1}, 150, 4, 0.1, 0.2)
	full, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := splitSet(set, 60)
	res, err := RunOracle(lat, b1, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Maintain(res, b2); err != nil {
		t.Fatal(err)
	}
	if err := sameResults(full, res); err != nil {
		t.Fatalf("SUM maintenance differs: %v", err)
	}
}

// TestMaintainRefusesIceberg pins the documented limitation.
func TestMaintainRefusesIceberg(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	lat, set := synthSet(t, rng, []int{1}, 50, 3, 0, 0)
	lat.Query.MinSupport = 5
	defer func() { lat.Query.MinSupport = 0 }()
	res := NewResult(lat, set.Dicts)
	if _, err := Maintain(res, set); err == nil {
		t.Fatal("iceberg cube maintenance accepted")
	}
}

// TestMaintainEmptyBatch is a no-op.
func TestMaintainEmptyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	lat, set := synthSet(t, rng, []int{1, 1}, 80, 4, 0, 0)
	res, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	before := res.Cells
	empty := &match.Set{Lattice: lat, Dicts: set.Dicts}
	added, err := Maintain(res, empty)
	if err != nil || added != 0 || res.Cells != before {
		t.Fatalf("empty maintenance: added=%d cells=%d err=%v", added, res.Cells, err)
	}
}
