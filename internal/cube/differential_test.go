package cube

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/mem"
	"x3/internal/pattern"
	"x3/internal/xmltree"
)

// The differential sweep: every registered algorithm, on every seeded
// dataset, under every memory budget, against the oracle. An algorithm is
// compared only when the dataset's *measured* summarizability properties
// satisfy its declared requirements — the globally-optimized variants are
// wrong on violating data by design (§4.3) — but every algorithm must at
// least run without error on every input. The first divergence fails with
// a minimal decoded cell-level diff.

// diffDataset is one generated workload family of the sweep.
type diffDataset struct {
	name  string
	build func(tb testing.TB, seed int64) (*lattice.Lattice, *match.Set)
}

// diffTreebank builds a Treebank corpus, evaluates the generated query and
// returns the fact table.
func diffTreebank(tb testing.TB, cfg dataset.TreebankConfig) (*lattice.Lattice, *match.Set) {
	tb.Helper()
	doc := dataset.Treebank(cfg)
	return diffEval(tb, doc, dataset.TreebankQuery(cfg.Axes))
}

func diffEval(tb testing.TB, doc *xmltree.Document, q *pattern.CubeQuery) (*lattice.Lattice, *match.Set) {
	tb.Helper()
	lat, err := lattice.New(q)
	if err != nil {
		tb.Fatal(err)
	}
	set, err := match.Evaluate(doc, lat)
	if err != nil {
		tb.Fatal(err)
	}
	return lat, set
}

// diffDatasets returns the sweep's dataset families. "tiny" is a small
// clean-ish corpus with mild coverage gaps; "skewed" is dense
// (low-cardinality) with nesting and the extra PC-AD relaxation; "multi"
// repeats axis elements so grouping sets are multi-valued (disjointness
// fails); "dblp" is the §4.5 article corpus (author repeated and
// optional).
func diffDatasets() []diffDataset {
	treebank := func(card int, pMissing, pRepeat, pNest float64, extraRelax bool) func(testing.TB, int64) (*lattice.Lattice, *match.Set) {
		return func(tb testing.TB, seed int64) (*lattice.Lattice, *match.Set) {
			axes := make([]dataset.AxisConfig, 3)
			for i := range axes {
				relax := pattern.RelaxSet(0).With(pattern.LND)
				if extraRelax {
					relax = relax.With(pattern.PCAD)
				}
				axes[i] = dataset.AxisConfig{
					Tag:         fmt.Sprintf("w%d", i),
					Cardinality: card,
					PMissing:    pMissing,
					PRepeat:     pRepeat,
					PNest:       pNest,
					Relax:       relax,
				}
			}
			return diffTreebank(tb, dataset.TreebankConfig{Seed: seed, Facts: 60, Axes: axes})
		}
	}
	return []diffDataset{
		{name: "tiny", build: treebank(8, 0.15, 0, 0, false)},
		{name: "skewed", build: treebank(3, 0.25, 0, 0.3, true)},
		{name: "multi", build: treebank(5, 0.1, 0.4, 0, false)},
		{name: "dblp", build: func(tb testing.TB, seed int64) (*lattice.Lattice, *match.Set) {
			cfg := dataset.DefaultDBLPConfig(50, seed)
			cfg.Journals = 6
			cfg.Authors = 25
			return diffEval(tb, dataset.DBLP(cfg), dataset.DBLPQuery())
		}},
	}
}

// diffBudget is one memory setting of the sweep. tight is sized so sorts
// and partitions feel pressure on these workloads while every algorithm —
// including TDOPTALL's cuboid retention — still completes.
type diffBudget struct {
	name  string
	bytes int64 // 0 = unlimited
}

func diffBudgets() []diffBudget {
	return []diffBudget{
		{name: "tight", bytes: 48 << 10},
		{name: "roomy", bytes: 0},
	}
}

// diffRun runs one algorithm on the workload under the budget.
func diffRun(tb testing.TB, alg Algorithm, lat *lattice.Lattice, set *match.Set, props *MeasuredProps, b diffBudget) (*Result, error) {
	tb.Helper()
	res := NewResult(lat, set.Dicts)
	in := &Input{
		Lattice: lat,
		Source:  set,
		Dicts:   set.Dicts,
		TmpDir:  tb.TempDir(),
		Props:   props,
	}
	if b.bytes > 0 {
		in.Budget = mem.New(b.bytes)
	}
	_, err := alg.Run(in, res)
	return res, err
}

// satisfies reports whether the measured dataset properties meet an
// algorithm's declared requirements, i.e. whether its result is defined
// to equal the oracle's.
func satisfies(props *MeasuredProps, req Requirements) bool {
	if req.Disjointness && !props.GloballyDisjoint() {
		return false
	}
	if req.Coverage && !props.GloballyCovered() {
		return false
	}
	return true
}

// TestDifferentialSweep is the harness: ≥20 seeds × dataset families ×
// budgets × every registered algorithm, against the oracle.
func TestDifferentialSweep(t *testing.T) {
	const seeds = 20
	datasets := diffDatasets()
	budgets := diffBudgets()
	algs := Algorithms()
	names := Names()

	for _, ds := range datasets {
		t.Run(ds.name, func(t *testing.T) {
			for seed := int64(1); seed <= seeds; seed++ {
				lat, set := ds.build(t, seed)
				oracle, err := RunOracle(lat, set, set.Dicts)
				if err != nil {
					t.Fatalf("seed %d: oracle: %v", seed, err)
				}
				props, err := MeasureProps(lat, set)
				if err != nil {
					t.Fatalf("seed %d: props: %v", seed, err)
				}
				for _, b := range budgets {
					for _, name := range names {
						alg := algs[name]
						res, err := diffRun(t, alg, lat, set, props, b)
						if err != nil {
							t.Fatalf("%s seed=%d budget=%s: run: %v", name, seed, b.name, err)
						}
						if !satisfies(props, alg.Requires()) {
							continue // result intentionally undefined here
						}
						if diff := diffResults(lat, set.Dicts, oracle, res); diff != "" {
							t.Fatalf("%s diverges from oracle (dataset=%s seed=%d budget=%s):\n%s",
								name, ds.name, seed, b.name, diff)
						}
					}
				}
			}
		})
	}
}

// diffResults compares got against the oracle cell by cell and renders a
// minimal decoded diff: the first few differing cells, one line each, with
// the cuboid's ladder-state label and the group's value strings. Empty
// means identical.
func diffResults(lat *lattice.Lattice, dicts []*match.Dict, oracle, got *Result) string {
	const maxLines = 5
	byID := make(map[uint32]lattice.Point, lat.Size())
	for _, p := range lat.Points() {
		byID[lat.ID(p)] = p
	}
	var lines []string
	add := func(format string, args ...any) bool {
		lines = append(lines, fmt.Sprintf(format, args...))
		return len(lines) >= maxLines
	}
	// Deterministic cuboid order.
	pids := make([]uint32, 0, len(oracle.Cuboids))
	for pid := range oracle.Cuboids {
		pids = append(pids, pid)
	}
	for pid := range got.Cuboids {
		if _, ok := oracle.Cuboids[pid]; !ok {
			pids = append(pids, pid)
		}
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })

scan:
	for _, pid := range pids {
		p := byID[pid]
		want, got := oracle.Cuboids[pid], got.Cuboids[pid]
		keys := make([]string, 0, len(want))
		for k := range want {
			keys = append(keys, k)
		}
		for k := range got {
			if _, ok := want[k]; !ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			w, inWant := want[k]
			g, inGot := got[k]
			cell := cellLabel(lat, dicts, p, k)
			switch {
			case !inGot:
				if add("  %s: missing (oracle N=%d Sum=%g)", cell, w.N, w.Sum) {
					break scan
				}
			case !inWant:
				if add("  %s: spurious (got N=%d Sum=%g)", cell, g.N, g.Sum) {
					break scan
				}
			case w.N != g.N || math.Abs(w.Sum-g.Sum) > 1e-9:
				if add("  %s: N=%d Sum=%g, oracle N=%d Sum=%g", cell, g.N, g.Sum, w.N, w.Sum) {
					break scan
				}
			}
		}
	}
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n")
}

// cellLabel renders one cell as "cuboid-label [v0 v1 ...]" with dictionary
// strings instead of value IDs.
func cellLabel(lat *lattice.Lattice, dicts []*match.Dict, p lattice.Point, packed string) string {
	live := lat.LiveAxes(p)
	vals := unpackKey([]byte(packed))
	parts := make([]string, 0, len(vals))
	for i, v := range vals {
		if i < len(live) && v != Null {
			parts = append(parts, dicts[live[i]].Value(v))
		} else if v == Null {
			parts = append(parts, "<null>")
		} else {
			parts = append(parts, fmt.Sprintf("#%d", v))
		}
	}
	return fmt.Sprintf("%s [%s]", lat.Label(p), strings.Join(parts, " "))
}
