package cube

import (
	"x3/internal/agg"
	"x3/internal/match"
	"x3/internal/obs"
)

// cellTable is the allocation-lean cell accumulation kernel: an
// open-addressing hash table keyed on fixed-width rows of match.ValueID,
// with keys stored contiguously in an arena and aggregate states in a
// parallel slice. It replaces the map[string]agg.State + packKey-string
// hot path of the counter-based and reference algorithms: no per-cell key
// packing, no string conversion, no per-entry map bucket allocation —
// the only heap traffic is the amortized growth of three flat slices.
//
// The table is deletion-free (cube accumulation only ever inserts and
// folds), so linear probing needs no tombstones and every probe sequence
// terminates at the first empty slot. Entries keep insertion order, which
// makes iteration deterministic for a deterministic insert sequence.
//
// A cellTable is not safe for concurrent use; parallel algorithms shard
// one table per worker and merge at barriers.
type cellTable struct {
	kw     int             // key width in ValueID words (fixed per table)
	seed   uint32          // mixed into every hash (COUNTER seeds with the cuboid id)
	slots  []int32         // open addressing; 0 = empty, else entry index + 1
	mask   uint64          // len(slots) - 1 (power of two)
	keys   []match.ValueID // arena: entry e's key is keys[e*kw : (e+1)*kw]
	states []agg.State     // entry e's aggregate
	// probes counts slot inspections beyond the first (collision cost);
	// resizes counts table growths. Both are local; flushObs folds them
	// into the celltable.* registry keys.
	probes  int64
	resizes int64
}

// cellTableMinSlots is the smallest slot array (power of two).
const cellTableMinSlots = 16

// newCellTable returns a table for keys of keyWords ValueIDs, pre-sized so
// capHint entries fit without a resize. seed is folded into every hash;
// COUNTER uses the cuboid id so its partition hash doubles as the
// placement hash.
func newCellTable(keyWords, capHint int, seed uint32) *cellTable {
	n := cellTableMinSlots
	for n < capHint*2 { // keep load factor under 1/2 at the hint
		n <<= 1
	}
	t := &cellTable{kw: keyWords, seed: seed, slots: make([]int32, n), mask: uint64(n - 1)}
	if capHint > 0 {
		t.keys = make([]match.ValueID, 0, capHint*keyWords)
		t.states = make([]agg.State, 0, capHint)
	}
	return t
}

// hashCell mixes a cuboid id and a key into a 64-bit hash (FNV-1a over the
// 32-bit words, finalized with a murmur-style avalanche so the low bits —
// the ones the mask keeps — are well distributed). It is deterministic,
// which keeps COUNTER's partition membership stable across passes.
func hashCell(point uint32, key []match.ValueID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(point)
	h *= prime64
	for _, v := range key {
		h ^= uint64(uint32(v))
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// hash returns the placement hash of key under the table's seed.
func (t *cellTable) hash(key []match.ValueID) uint64 { return hashCell(t.seed, key) }

// len returns the number of distinct keys in the table.
func (t *cellTable) len() int { return len(t.states) }

// keyAt returns entry e's key slice (a view into the arena).
func (t *cellTable) keyAt(e int) []match.ValueID {
	return t.keys[e*t.kw : (e+1)*t.kw]
}

// keyEqual reports whether entry e's key equals key.
func (t *cellTable) keyEqual(e int, key []match.ValueID) bool {
	stored := t.keys[e*t.kw:]
	for i, v := range key {
		if stored[i] != v {
			return false
		}
	}
	return true
}

// findHashed returns the entry index of key (pre-hashed with t.hash), or
// -1 when absent.
func (t *cellTable) findHashed(h uint64, key []match.ValueID) int {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		s := t.slots[i]
		if s == 0 {
			return -1
		}
		t.probes++
		if e := int(s - 1); t.keyEqual(e, key) {
			return e
		}
	}
}

// insertHashed adds a new entry for key (pre-hashed, must be absent) and
// returns its index. The key is copied into the arena.
func (t *cellTable) insertHashed(h uint64, key []match.ValueID) int {
	if uint64(len(t.states)+1)*2 > uint64(len(t.slots)) {
		t.grow()
	}
	e := len(t.states)
	t.keys = append(t.keys, key...)
	t.states = append(t.states, agg.State{})
	t.place(h, e)
	return e
}

// upsertHashed returns key's entry index, inserting an empty state when
// absent. h must equal t.hash(key).
func (t *cellTable) upsertHashed(h uint64, key []match.ValueID) int {
	if e := t.findHashed(h, key); e >= 0 {
		return e
	}
	return t.insertHashed(h, key)
}

// add folds one measure into key's cell.
func (t *cellTable) add(key []match.ValueID, m float64) {
	e := t.upsertHashed(t.hash(key), key)
	t.states[e].Add(m)
}

// merge folds an aggregate state into key's cell.
func (t *cellTable) merge(key []match.ValueID, s agg.State) {
	e := t.upsertHashed(t.hash(key), key)
	t.states[e].Merge(s)
}

// grow doubles the slot array and rehashes every entry. Entry indices (and
// the arena) are untouched, so held indices stay valid.
func (t *cellTable) grow() {
	t.resizes++
	n := len(t.slots) * 2
	t.slots = make([]int32, n)
	t.mask = uint64(n - 1)
	for e := range t.states {
		t.place(t.hash(t.keyAt(e)), e)
	}
}

// place writes entry e into the first free slot of h's probe sequence.
func (t *cellTable) place(h uint64, e int) {
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		if t.slots[i] == 0 {
			t.slots[i] = int32(e + 1)
			return
		}
		t.probes++
	}
}

// each calls fn for every cell in insertion order. The key slice is a view
// into the arena — valid only during the call.
func (t *cellTable) each(fn func(key []match.ValueID, s *agg.State) error) error {
	for e := range t.states {
		if err := fn(t.keyAt(e), &t.states[e]); err != nil {
			return err
		}
	}
	return nil
}

// reset empties the table, keeping every allocation (slot array and
// arenas) for reuse — the zero-garbage steady state of a per-cuboid or
// per-partition accumulation loop.
func (t *cellTable) reset() {
	clear(t.slots)
	t.keys = t.keys[:0]
	t.states = t.states[:0]
}

// resetWidth is reset for a new key width sharing the same arenas.
func (t *cellTable) resetWidth(keyWords int) {
	t.reset()
	t.kw = keyWords
}

// flushObs folds the table's probe and resize counts into the registry's
// celltable.* keys and zeroes the local counts. Nil-registry safe.
func (t *cellTable) flushObs(reg *obs.Registry) {
	reg.Counter("celltable.probes").Add(t.probes)
	reg.Counter("celltable.resizes").Add(t.resizes)
	t.probes, t.resizes = 0, 0
}
