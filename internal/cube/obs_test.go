package cube

import (
	"math/rand"
	"testing"

	"x3/internal/obs"
)

// TestObservedRunMetrics pins the cube.* key family one observed run
// produces, and that the counters agree with the returned Stats.
func TestObservedRunMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 120, 4, 0.1, 0.2)
	reg := obs.New()
	res, st := runAlg(t, TD{}, lat, set, func(in *Input) { in.Reg = reg })
	snap := reg.Snapshot()
	c := snap.Counters
	if c["cube.td.runs"] != 1 {
		t.Errorf("cube.td.runs = %d, want 1", c["cube.td.runs"])
	}
	if c["cube.td.cells"] != st.Cells || st.Cells != res.Cells {
		t.Errorf("cells: counter=%d stats=%d result=%d", c["cube.td.cells"], st.Cells, res.Cells)
	}
	if c["cube.td.sorts"] != int64(st.Sorts) {
		t.Errorf("cube.td.sorts = %d, stats say %d", c["cube.td.sorts"], st.Sorts)
	}
	// The sorters feed the shared extsort.* keys too, and both views must
	// agree on the row count.
	if c["extsort.rows.sorted"] != st.RowsSorted {
		t.Errorf("extsort.rows.sorted = %d, stats say %d", c["extsort.rows.sorted"], st.RowsSorted)
	}
	found := false
	for _, s := range snap.Spans {
		if s.Name == "cube.td" {
			found = true
			if s.DurationNS < 0 {
				t.Errorf("cube.td span has negative duration %d", s.DurationNS)
			}
		}
	}
	if !found {
		t.Errorf("no cube.td span recorded; spans = %+v", snap.Spans)
	}
}

// TestObservedParallelRun runs the parallel BUC variant with a live
// registry: its workers hammer the same counters concurrently, which the
// race target verifies stays clean.
func TestObservedParallelRun(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 200, 4, 0, 0)
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	res, _ := runAlg(t, BUCParallel{}, lat, set, func(in *Input) { in.Reg = reg })
	if err := sameResults(oracle, res); err != nil {
		t.Fatalf("observed BUCPAR differs: %v", err)
	}
	c := reg.Snapshot().Counters
	if c["cube.bucpar.runs"] != 1 || c["cube.bucpar.cells"] != res.Cells {
		t.Errorf("bucpar counters: runs=%d cells=%d want 1/%d",
			c["cube.bucpar.runs"], c["cube.bucpar.cells"], res.Cells)
	}
}
