package cube

import (
	"math/rand"
	"testing"

	"x3/internal/agg"
	"x3/internal/match"
	"x3/internal/obs"
)

// TestDeltaEqualsOracle pins the delta memtable against the oracle: for
// an append batch, base-oracle cells merged with the delta's cells must
// equal the oracle over the whole fact set, per cuboid and per group.
func TestDeltaEqualsOracle(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*991 + 7))
		shape := [][]int{{1, 1}, {2, 1}, {3, 1, 1}}[trial%3]
		lat, set := synthSet(t, rng, shape, 180, 5, 0.2, 0.3)
		full, err := RunOracle(lat, set, set.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		b1, b2 := splitSet(set, 100)
		base, err := RunOracle(lat, b1, set.Dicts)
		if err != nil {
			t.Fatal(err)
		}

		d := NewDelta(lat, nil)
		added, err := d.Absorb(b2)
		if err != nil {
			t.Fatal(err)
		}
		if added != int64(b2.NumFacts()) || d.Facts() != added {
			t.Fatalf("absorbed %d (Facts %d), want %d", added, d.Facts(), b2.NumFacts())
		}

		// Merge delta into the base result and compare against full.
		err = d.Each(func(pid uint32, key []match.ValueID, s agg.State) error {
			cells := base.Cuboids[pid]
			if cells == nil {
				cells = map[string]agg.State{}
				base.Cuboids[pid] = cells
			}
			k := string(packKey(nil, key))
			st, ok := cells[k]
			st.Merge(s)
			cells[k] = st
			if !ok {
				base.Cells++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sameResults(full, base); err != nil {
			t.Fatalf("trial %d (%v): base+delta differs from oracle: %v", trial, shape, err)
		}
	}
}

// TestDeltaKeepSetFilters pins that a keep set restricts accumulation to
// exactly the listed cuboids and that EachCuboid/CuboidCells agree with
// Each.
func TestDeltaKeepSetFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lat, set := synthSet(t, rng, []int{2, 1}, 120, 4, 0.1, 0.2)
	want, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	var keep []uint32
	for _, p := range lat.Points() {
		if pid := lat.ID(p); pid%2 == 0 {
			keep = append(keep, pid)
		}
	}
	d := NewDelta(lat, keep)
	if _, err := d.Absorb(set); err != nil {
		t.Fatal(err)
	}
	inKeep := map[uint32]bool{}
	for _, pid := range keep {
		inKeep[pid] = true
	}
	for _, pid := range d.Points() {
		if !inKeep[pid] {
			t.Fatalf("cuboid %d accumulated outside the keep set", pid)
		}
	}
	var total int64
	for _, pid := range keep {
		cells := want.Cuboids[pid]
		var got int64
		err := d.EachCuboid(pid, func(key []match.ValueID, s agg.State) error {
			got++
			k := string(packKey(nil, key))
			w, ok := cells[k]
			if !ok {
				t.Fatalf("cuboid %d: delta holds group absent from oracle", pid)
			}
			if w != s {
				t.Fatalf("cuboid %d group state %+v, oracle %+v", pid, s, w)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(len(cells)) || got != d.CuboidCells(pid) {
			t.Fatalf("cuboid %d: %d cells, oracle %d, CuboidCells %d", pid, got, len(cells), d.CuboidCells(pid))
		}
		total += got
	}
	if d.Cells() != total {
		t.Fatalf("Cells() = %d, summed %d", d.Cells(), total)
	}
}

// TestDeltaReset pins that a reset delta re-absorbs from scratch.
func TestDeltaReset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lat, set := synthSet(t, rng, []int{1, 1}, 80, 4, 0, 0)
	d := NewDelta(lat, nil)
	if _, err := d.Absorb(set); err != nil {
		t.Fatal(err)
	}
	before := d.Cells()
	d.Reset()
	if d.Cells() != 0 || d.Facts() != 0 || len(d.Points()) != 0 {
		t.Fatalf("reset delta still holds %d cells, %d facts", d.Cells(), d.Facts())
	}
	if _, err := d.Absorb(set); err != nil {
		t.Fatal(err)
	}
	if d.Cells() != before {
		t.Fatalf("re-absorbed %d cells, first pass had %d", d.Cells(), before)
	}
	reg := obs.New()
	d.FlushObs(reg)
}

// TestDeltaRefusesIceberg mirrors Maintain's refusal.
func TestDeltaRefusesIceberg(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	lat, set := synthSet(t, rng, []int{1}, 40, 3, 0, 0)
	lat.Query.MinSupport = 5
	defer func() { lat.Query.MinSupport = 0 }()
	d := NewDelta(lat, nil)
	if _, err := d.Absorb(set); err == nil {
		t.Fatal("iceberg delta accepted")
	}
}
