package cube

import (
	"sync/atomic"
	"time"

	"x3/internal/gate"

	"x3/internal/agg"
	"x3/internal/match"
	"x3/internal/obs"
)

// sinkBatcher fans one downstream Sink out to per-worker batchSinks.
// Workers buffer cells locally (keys copied into a flat arena) and flush
// whole batches under a single lock acquisition, replacing the per-cell
// mutex traffic of LockedSink. The downstream sink still sees a strictly
// serialized call sequence — it need not be safe for concurrent use — but
// the lock is paid once per batch instead of once per cell.
type sinkBatcher struct {
	// mu serializes flushes into next, which is blocking sink I/O by
	// design — hence a gate.Gate, not a sync.Mutex (lockhold forbids
	// blocking under a mutex).
	mu      gate.Gate
	next    Sink
	mergeNS atomic.Int64
}

// batchSinkCap is the flush threshold in buffered cells.
const batchSinkCap = 256

func newSinkBatcher(next Sink) *sinkBatcher { return &sinkBatcher{mu: gate.New(), next: next} }

// worker returns a new worker-local batch front-end. Not safe for
// concurrent use itself; make one per worker.
func (b *sinkBatcher) worker() *batchSink { return &batchSink{parent: b} }

// flushObs folds the accumulated flush time into cube.par.merge.ns — the
// cost of merging worker-local output into the shared sink. Nil-registry
// safe.
func (b *sinkBatcher) flushObs(reg *obs.Registry) {
	reg.Counter("cube.par.merge.ns").Add(b.mergeNS.Swap(0))
}

// batchCell is one buffered cell; its key lives in the owning batchSink's
// arena at [off, off+n).
type batchCell struct {
	point uint32
	off   int32
	n     int32
	s     agg.State
}

// batchSink is the worker-local front-end of a sinkBatcher. It implements
// Sink.
type batchSink struct {
	parent *sinkBatcher
	cells  []batchCell
	arena  []match.ValueID
}

// Cell implements Sink: the cell is buffered (key copied) and the batch is
// flushed downstream when full. Errors surface on the flushing call.
func (b *batchSink) Cell(point uint32, key []match.ValueID, s agg.State) error {
	b.cells = append(b.cells, batchCell{point: point, off: int32(len(b.arena)), n: int32(len(key)), s: s})
	b.arena = append(b.arena, key...)
	if len(b.cells) >= batchSinkCap {
		return b.flush()
	}
	return nil
}

// flush drains the buffer into the shared sink under the batcher's lock.
// Call once more after the worker finishes to push the final partial
// batch.
func (b *batchSink) flush() error {
	if len(b.cells) == 0 {
		return nil
	}
	start := time.Now()
	b.parent.mu.Lock()
	var err error
	for _, c := range b.cells {
		if err = b.parent.next.Cell(c.point, b.arena[c.off:c.off+c.n], c.s); err != nil {
			break
		}
	}
	b.parent.mu.Unlock()
	b.parent.mergeNS.Add(time.Since(start).Nanoseconds())
	b.cells = b.cells[:0]
	b.arena = b.arena[:0]
	return err
}
