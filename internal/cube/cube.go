// Package cube implements the X³ cube computation algorithms of the paper's
// §3 and §4: the counter-based algorithm (COUNTER), the XMLized bottom-up
// family (BUC, BUCOPT, BUCCUST after Beyer–Ramakrishnan) and the XMLized
// top-down family (TD, TDOPT, TDOPTALL, TDCUST after Ross–Srivastava's
// PartitionCube/MemoryCube).
//
// All algorithms consume the same materialized fact table (a Source) and
// emit cells to a Sink. A cell of cuboid p is a group — one grouping value
// per live axis of p — together with the aggregate over the *distinct*
// facts whose axis value sets contain the group's values at p's ladder
// states. A fact with two authors lands in two author groups but counts
// once in each (the paper's non-disjointness semantics, §1); a fact whose
// axis value set is empty at a live state is absent from that cuboid (the
// coverage violation).
//
// The optimized variants (BUCOPT, TDOPT, TDOPTALL) assume summarizability
// properties globally and compute wrong results when the data violates
// them — deliberately, as the paper measures exactly that (§4.3). The
// customized variants (BUCCUST, TDCUST) consult per-axis-state properties
// (schema-inferred, §3.7) and stay correct while exploiting whatever
// summarizability holds locally.
package cube

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"x3/internal/agg"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/mem"
	"x3/internal/obs"
	"x3/internal/pattern"
)

// Null is the sentinel ValueID meaning "axis missing at this state". It
// never collides with a real dictionary ID in any realistic input.
const Null match.ValueID = 0xFFFFFFFF

// Source streams a materialized fact table. match.Set and matchfile.Reader
// implement it. Each may be called multiple times (multi-pass algorithms);
// the *Fact passed to the callback is only valid during the call.
type Source interface {
	NumFacts() int
	Each(func(*match.Fact) error) error
}

// Sink receives cube cells. Cells of one cuboid may arrive interleaved
// with other cuboids' cells, but each (cuboid, group) pair is emitted
// exactly once per run.
type Sink interface {
	Cell(point uint32, key []match.ValueID, s agg.State) error
}

// Input bundles everything an algorithm run needs.
type Input struct {
	Lattice *lattice.Lattice
	Source  Source
	// Dicts are the per-axis dictionaries of the source (used only by
	// result formatting; algorithms work on ValueIDs).
	Dicts []*match.Dict
	// Budget caps the algorithm's working state (counters, partitions,
	// sort buffers, retained intermediate cuboids). nil means unlimited.
	Budget *mem.Budget
	// TmpDir hosts external-sort spill files ("" = OS temp dir).
	TmpDir string
	// Props describes which summarizability properties hold per axis and
	// ladder state; the CUST algorithms require it, the others ignore it.
	// nil means nothing is guaranteed.
	Props Props
	// Reg receives per-run metrics and a phase span under the
	// cube.<algorithm>.* keys. nil disables observability at zero cost.
	Reg *obs.Registry
	// Workers is the fan-out of the parallel algorithms (BUCPAR, TDPAR)
	// and of parallel sort phases; 0 selects GOMAXPROCS. The serial
	// algorithms ignore it.
	Workers int
	// Ctx cancels the run: the algorithms check it at pass, cuboid and
	// partition boundaries (and the worker pool between tasks) and return
	// a wrapped ctx.Err(), so a per-request deadline or a disconnected
	// client actually stops the computation. nil never cancels.
	//x3:nolint(ctxflow) Input is a per-run parameter object (the cube analogue of http.Request); Ctx is not retained past Run
	Ctx context.Context
}

// ctxErr reports a cancelled input as an error wrapping ctx.Err() (so
// errors.Is against context.Canceled / context.DeadlineExceeded holds);
// nil while the run may continue.
func (in *Input) ctxErr() error {
	if in.Ctx == nil {
		return nil
	}
	if err := in.Ctx.Err(); err != nil {
		return fmt.Errorf("cube: cancelled: %w", err)
	}
	return nil
}

// ctxCheckEvery is the granularity of in-loop cancellation checks: tight
// per-fact/per-recursion loops consult the context once per this many
// iterations, keeping the check off the per-cell fast path.
const ctxCheckEvery = 4096

func (in *Input) budget() *mem.Budget {
	if in.Budget == nil {
		in.Budget = mem.Unlimited()
	}
	return in.Budget
}

// agg returns the query's aggregate function.
func (in *Input) agg() pattern.AggFunc { return in.Lattice.Query.Agg }

// minSupport returns the iceberg threshold (1 = full cube).
func (in *Input) minSupport() int64 {
	if m := in.Lattice.Query.MinSupport; m > 1 {
		return m
	}
	return 1
}

// liveStates returns the number of live ladder states of axis a.
func (in *Input) liveStates(a int) int {
	lad := in.Lattice.Ladders[a]
	if lad.HasDeleted() {
		return lad.Len() - 1
	}
	return lad.Len()
}

// Props exposes the summarizability properties of §3.2 per axis and ladder
// state. Implementations are derived from a DTD (package schema) or from
// workload knowledge.
type Props interface {
	// Disjoint reports whether axis a is guaranteed to match at most one
	// value at live state s for every fact (pairwise disjointness of the
	// groups of any cuboid using that state).
	Disjoint(a, s int) bool
	// Covered reports whether axis a is guaranteed to match at least one
	// value at live state s for every fact (total coverage).
	Covered(a, s int) bool
}

// PessimisticProps guarantees nothing; the safe default.
type PessimisticProps struct{}

// Disjoint implements Props; it always reports false.
func (PessimisticProps) Disjoint(_, _ int) bool { return false }

// Covered implements Props; it always reports false.
func (PessimisticProps) Covered(_, _ int) bool { return false }

// AssumeAllProps claims both properties hold everywhere. It is what the
// globally-optimized algorithms effectively assume.
type AssumeAllProps struct{}

// Disjoint implements Props; it always reports true.
func (AssumeAllProps) Disjoint(_, _ int) bool { return true }

// Covered implements Props; it always reports true.
func (AssumeAllProps) Covered(_, _ int) bool { return true }

// Stats describes one algorithm run.
type Stats struct {
	Algorithm string
	// Cells is the number of (cuboid, group) cells emitted.
	Cells int64
	// Passes counts full scans of the fact source.
	Passes int
	// Restarts counts COUNTER restarts after budget exhaustion.
	Restarts int
	// Sorts and ExternalSorts count sort operations and those that
	// spilled; SpillBytes totals run-file bytes written.
	Sorts         int
	ExternalSorts int
	SpillBytes    int64
	RowsSorted    int64
	// Rollups counts cuboids derived by merging a finer cuboid's
	// aggregates; Copies counts cuboids obtained as verbatim copies
	// across a ladder state step (both only in the roll-up algorithms).
	Rollups int
	Copies  int
	// PeakBytes is the budget high-water mark during the run.
	PeakBytes int64
}

// observe opens the run's phase span and returns the finisher that closes
// it and folds the final Stats into the registry under the
// cube.<algorithm>.* keys. Use as `defer in.observe(&st)()` at the top of
// a Run, after st.Algorithm is set. A nil registry makes both halves
// no-ops.
func (in *Input) observe(st *Stats) func() {
	if in.Reg == nil {
		return func() {}
	}
	reg := in.Reg
	// Every key spells out its literal "cube." prefix so the x3lint
	// obskey analyzer can validate the family namespace and the keys stay
	// greppable.
	alg := strings.ToLower(st.Algorithm)
	span := reg.Span("cube." + alg)
	return func() {
		span.SetPeakBytes(st.PeakBytes)
		span.End()
		reg.Counter("cube." + alg + ".runs").Inc()
		reg.Counter("cube." + alg + ".cells").Add(st.Cells)
		reg.Counter("cube." + alg + ".passes").Add(int64(st.Passes))
		reg.Counter("cube." + alg + ".restarts").Add(int64(st.Restarts))
		reg.Counter("cube." + alg + ".sorts").Add(int64(st.Sorts))
		reg.Counter("cube." + alg + ".sorts.external").Add(int64(st.ExternalSorts))
		reg.Counter("cube." + alg + ".spill.bytes").Add(st.SpillBytes)
		reg.Counter("cube." + alg + ".rows.sorted").Add(st.RowsSorted)
		reg.Counter("cube." + alg + ".rollups").Add(int64(st.Rollups))
		reg.Counter("cube." + alg + ".copies").Add(int64(st.Copies))
		reg.Gauge("cube." + alg + ".peak_bytes").SetMax(st.PeakBytes)
	}
}

// Requirements documents the summarizability preconditions an algorithm
// needs for correct results.
type Requirements struct {
	Disjointness bool
	Coverage     bool
}

// Algorithm is one cube computation strategy.
type Algorithm interface {
	Name() string
	Requires() Requirements
	Run(in *Input, sink Sink) (Stats, error)
}

// Algorithms returns the registry of all implemented algorithms keyed by
// their paper names.
func Algorithms() map[string]Algorithm {
	return map[string]Algorithm{
		"COUNTER":  Counter{},
		"BUC":      BUC{},
		"BUCOPT":   BUC{Opt: true},
		"BUCCUST":  BUC{Cust: true},
		"BUCPAR":   BUCParallel{},
		"TD":       TD{},
		"TDOPT":    TD{Mode: TDModeOpt},
		"TDOPTALL": TD{Mode: TDModeOptAll},
		"TDCUST":   TD{Mode: TDModeCust},
		"TDPAR":    TDParallel{},
	}
}

// ByName returns the named algorithm.
func ByName(name string) (Algorithm, error) {
	if a, ok := Algorithms()[name]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("cube: unknown algorithm %q", name)
}

// Names returns the algorithm names, sorted.
func Names() []string {
	m := Algorithms()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// packKey encodes a group key (values of the live axes, in axis order) as
// big-endian bytes, so byte order equals value order.
func packKey(dst []byte, vals []match.ValueID) []byte {
	for _, v := range vals {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

// unpackKey decodes a key packed by packKey.
func unpackKey(b []byte) []match.ValueID {
	out := make([]match.ValueID, 0, len(b)/4)
	for i := 0; i+4 <= len(b); i += 4 {
		out = append(out, match.ValueID(binary.BigEndian.Uint32(b[i:])))
	}
	return out
}

// Result collects all cells in memory; it implements Sink and is the
// convenient form for tests, examples and small cubes.
type Result struct {
	Lattice *lattice.Lattice
	Dicts   []*match.Dict
	// Cuboids maps lattice point ID to its cells, keyed by packed group
	// key.
	Cuboids map[uint32]map[string]agg.State
	Cells   int64
	// keyBuf is reused across Cell calls so the duplicate probe packs the
	// key without allocating; only a genuinely new cell materializes it.
	keyBuf []byte
}

// NewResult returns an empty result collector for the lattice.
func NewResult(lat *lattice.Lattice, dicts []*match.Dict) *Result {
	return &Result{Lattice: lat, Dicts: dicts, Cuboids: make(map[uint32]map[string]agg.State)}
}

// Cell implements Sink.
func (r *Result) Cell(point uint32, key []match.ValueID, s agg.State) error {
	m, ok := r.Cuboids[point]
	if !ok {
		m = make(map[string]agg.State)
		r.Cuboids[point] = m
	}
	r.keyBuf = packKey(r.keyBuf[:0], key)
	if _, dup := m[string(r.keyBuf)]; dup { // compiler elides this conversion
		return fmt.Errorf("cube: duplicate cell for point %d key %v", point, key)
	}
	m[string(r.keyBuf)] = s
	r.Cells++
	return nil
}

// Get returns the final aggregate of the group identified by the given
// value strings (one per live axis of p, in axis order).
func (r *Result) Get(p lattice.Point, values ...string) (float64, bool) {
	id := r.Lattice.ID(p)
	m, ok := r.Cuboids[id]
	if !ok {
		return 0, false
	}
	live := r.Lattice.LiveAxes(p)
	if len(values) != len(live) {
		return 0, false
	}
	key := make([]match.ValueID, len(values))
	for i, v := range values {
		vid, ok := r.Dicts[live[i]].Lookup(v)
		if !ok {
			return 0, false
		}
		key[i] = vid
	}
	s, ok := m[string(packKey(nil, key))]
	if !ok {
		return 0, false
	}
	return s.Final(r.Lattice.Query.Agg), true
}

// State returns the aggregate state of the group of cuboid p with the
// given dictionary-encoded key.
func (r *Result) State(p lattice.Point, key []match.ValueID) (agg.State, bool) {
	m, ok := r.Cuboids[r.Lattice.ID(p)]
	if !ok {
		return agg.State{}, false
	}
	s, ok := m[string(packKey(nil, key))]
	return s, ok
}

// CuboidSize returns the number of groups of cuboid p.
func (r *Result) CuboidSize(p lattice.Point) int {
	return len(r.Cuboids[r.Lattice.ID(p)])
}

// Keys returns the unpacked group keys of cuboid p in deterministic
// (byte-sorted) order.
func (r *Result) Keys(p lattice.Point) [][]match.ValueID {
	m := r.Cuboids[r.Lattice.ID(p)]
	ks := make([]string, 0, len(m))
	for k := range m { //x3:nolint(detiter) keys are byte-sorted below before anything observes the order
		ks = append(ks, k)
	}
	sort.Strings(ks)
	out := make([][]match.ValueID, len(ks))
	for i, k := range ks {
		out[i] = unpackKey([]byte(k))
	}
	return out
}

// CountingSink discards cells and counts them; the benchmark harness uses
// it so huge cubes don't accumulate in memory.
type CountingSink struct {
	Cells int64
}

// Cell implements Sink.
func (c *CountingSink) Cell(uint32, []match.ValueID, agg.State) error {
	c.Cells++
	return nil
}
