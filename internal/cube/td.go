package cube

import (
	"sort"

	"x3/internal/agg"
	"x3/internal/extsort"
	"x3/internal/lattice"
)

// TDMode selects the top-down variant.
type TDMode int

const (
	// TDModeBase is unoptimized TD: every cuboid is computed from the
	// base matches with fact identities retained — one (possibly
	// external) sort per cuboid, the paper's "exponential number of
	// sorts" (§3.5, §4.1).
	TDModeBase TDMode = iota
	// TDModeOpt (TDOPT) assumes disjointness globally: rows carry no
	// identities and sorts are shared across cuboids related by trailing
	// prefixes, but every sort still reads base data because coverage may
	// fail.
	TDModeOpt
	// TDModeOptAll (TDOPTALL) assumes disjointness and total coverage:
	// after one sort of the base at the finest cuboid, every coarser
	// cuboid is rolled up from an adjacent finer cuboid's aggregates —
	// base data is never touched again (§3.5).
	TDModeOptAll
	// TDModeCust (TDCUST, §4.5) stays correct on any data: it rolls up
	// across a lattice edge only when the schema guarantees the dropped
	// axis is covered and disjoint at the relevant state, and otherwise
	// recomputes from base, retaining identities only where disjointness
	// may fail.
	TDModeCust
)

// TD is the XMLized top-down cube family (after Ross–Srivastava's
// PartitionCube/MemoryCube, §3.5).
type TD struct {
	Mode TDMode
}

// Name implements Algorithm.
func (t TD) Name() string {
	switch t.Mode {
	case TDModeOpt:
		return "TDOPT"
	case TDModeOptAll:
		return "TDOPTALL"
	case TDModeCust:
		return "TDCUST"
	default:
		return "TD"
	}
}

// Requires implements Algorithm.
func (t TD) Requires() Requirements {
	switch t.Mode {
	case TDModeOpt:
		return Requirements{Disjointness: true}
	case TDModeOptAll:
		return Requirements{Disjointness: true, Coverage: true}
	default:
		return Requirements{}
	}
}

// Run implements Algorithm.
func (t TD) Run(in *Input, sink Sink) (Stats, error) {
	st := Stats{Algorithm: t.Name()}
	defer in.observe(&st)()
	var err error
	switch t.Mode {
	case TDModeBase:
		err = t.runBase(in, sink, &st)
	case TDModeOpt:
		err = t.runOpt(in, sink, &st)
	case TDModeOptAll, TDModeCust:
		err = t.runRollup(in, sink, &st)
	}
	st.PeakBytes = in.budget().HighWater()
	return st, err
}

// runBase computes every cuboid independently from base data.
func (t TD) runBase(in *Input, sink Sink, st *Stats) error {
	lat := in.Lattice
	for _, p := range lat.Points() {
		if err := in.ctxErr(); err != nil {
			return err
		}
		cols := colsOf(lat, p)
		sorter := newSorter(in, rowWidth(len(cols), true))
		err := expandInto(in, cols, expandOpts{withID: true}, sorter)
		st.Passes++
		if err != nil {
			return err
		}
		it, es, err := sorter.Finish(in.Ctx)
		if err != nil {
			return err
		}
		accumulateSortStats(st, es)
		pid := lat.ID(p)
		minSup := in.minSupport()
		err = scanGroups(it, len(cols), true, func(key []byte, s agg.State) error {
			if s.N < minSup {
				return nil
			}
			st.Cells++
			return sink.Cell(pid, unpackKey(key), s)
		})
		it.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// runOpt shares sorts across trailing-prefix chains and drops identities.
func (t TD) runOpt(in *Input, sink Sink, st *Stats) error {
	lat := in.Lattice
	pts := lat.Points()
	// Longest chains first: most live axes, then densest states.
	sort.SliceStable(pts, func(i, j int) bool {
		li, lj := len(lat.LiveAxes(pts[i])), len(lat.LiveAxes(pts[j]))
		if li != lj {
			return li > lj
		}
		return lat.ID(pts[i]) < lat.ID(pts[j])
	})
	processed := make([]bool, lat.Size())
	for _, p := range pts {
		if err := in.ctxErr(); err != nil {
			return err
		}
		if processed[lat.ID(p)] {
			continue
		}
		cols := colsOf(lat, p)
		m := len(cols)
		// Build the chain: level m is p itself; level l drops the
		// trailing columns l..m-1 (axes set to their deleted state).
		chainIDs := make([]uint32, m+1)
		emitLevel := make([]bool, m+1)
		q := p.Clone()
		for l := m; l >= 0; l-- {
			if l < m {
				a := cols[l].axis
				lad := lat.Ladders[a]
				if !lad.HasDeleted() {
					// Cannot drop this axis; chain ends above level l.
					for k := l; k >= 0; k-- {
						emitLevel[k] = false
					}
					break
				}
				q[a] = uint8(lad.Len() - 1)
			}
			id := lat.ID(q)
			chainIDs[l] = id
			emitLevel[l] = !processed[id]
			processed[id] = true
		}

		sorter := newSorter(in, rowWidth(m, false))
		err := expandInto(in, cols, expandOpts{firstOnly: true, nullMissing: true}, sorter)
		st.Passes++
		if err != nil {
			return err
		}
		it, es, err := sorter.Finish(in.Ctx)
		if err != nil {
			return err
		}
		accumulateSortStats(st, es)
		err = t.pipelineScan(it, m, chainIDs, emitLevel, in.minSupport(), sink, st)
		it.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// pipelineScan aggregates a sorted stream at every prefix level at once
// (the MemoryCube pipeline): level l groups by the first l columns; rows
// carrying the Null sentinel inside the first l columns are excluded from
// level l but still feed shorter prefixes.
func (t TD) pipelineScan(it *extsort.Iterator, m int, chainIDs []uint32, emitLevel []bool, minSup int64, sink Sink, st *Stats) error {
	states := make([]agg.State, m+1)
	var prev []byte
	flush := func(level int) error {
		if emitLevel[level] && states[level].N >= minSup {
			key := prev[:4*level]
			if !keyHasNull(key) {
				st.Cells++
				if err := sink.Cell(chainIDs[level], unpackKey(key), states[level]); err != nil {
					return err
				}
			}
		}
		states[level] = agg.State{}
		return nil
	}
	for {
		row, err := it.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		if prev != nil {
			// First column index where the row differs from prev.
			c := m
			for i := 0; i < m; i++ {
				if string(row[4*i:4*i+4]) != string(prev[4*i:4*i+4]) {
					c = i
					break
				}
			}
			for l := m; l > c; l-- {
				if err := flush(l); err != nil {
					return err
				}
			}
		}
		meas := decodeMeasure(row, m)
		limit := m
		for i := 0; i < m; i++ {
			if string(row[4*i:4*i+4]) == nullBytes {
				limit = i
				break
			}
		}
		for l := 0; l <= limit; l++ {
			states[l].Add(meas)
		}
		prev = append(prev[:0], row...)
	}
	if prev != nil {
		for l := m; l >= 0; l-- {
			if err := flush(l); err != nil {
				return err
			}
		}
	}
	return nil
}

const nullBytes = "\xff\xff\xff\xff"

func decodeMeasure(row []byte, k int) float64 {
	return decodeFloat(row[4*k:])
}

var _ Algorithm = TD{}

// parentEdge describes the lattice edge used to derive a point from its
// one-step-finer parent.
type parentEdge struct {
	parent lattice.Point
	axis   int
	// drop is true when the edge deletes the axis (LND step); false for a
	// ladder state step.
	drop bool
}

// chooseParent returns the canonical parent edge of p, or nil for the
// lattice top. It relaxes the LAST relaxable axis: dropping the last key
// column of the parent's sort order lets the roll-up merge without
// re-sorting (the parent's cells are already grouped by the remaining
// prefix).
func chooseParent(lat *lattice.Lattice, p lattice.Point) *parentEdge {
	for a := len(p) - 1; a >= 0; a-- {
		if p[a] > 0 {
			q := p.Clone()
			q[a]--
			return &parentEdge{parent: q, axis: a, drop: lat.Deleted(p, a)}
		}
	}
	return nil
}
