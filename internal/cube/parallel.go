package cube

import (
	"fmt"
	"sync"

	"x3/internal/agg"
	"x3/internal/match"
)

// LockedSink serializes a Sink for concurrent emitters by taking a mutex
// around every cell. It is the compatibility fallback for external callers
// that hand a non-thread-safe Sink to hand-rolled goroutines; the parallel
// algorithms in this package no longer use it — they emit through
// worker-local batchSinks (see sinkBatcher), which deliver the same
// serialized call sequence downstream at one lock acquisition per batch
// instead of per cell.
type LockedSink struct {
	mu   sync.Mutex
	Next Sink
}

// Cell implements Sink.
func (l *LockedSink) Cell(point uint32, key []match.ValueID, s agg.State) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	//x3:nolint(lockhold) serializing the non-thread-safe Next sink is this type's documented contract, and the zero value must stay usable, so it keeps a Mutex rather than a gate.Gate
	return l.Next.Cell(point, key, s)
}

// BUCParallel is plain (overlap-tolerant, always-correct) BUC with the
// top level of the recursive partitioning fanned out across the shared
// worker pool. Each top-level value partition roots an independent
// sub-lattice computation, so workers share only the read-only fact table
// and the batched sink. This is a this-library extension beyond the
// paper, which evaluates single-threaded algorithms only.
type BUCParallel struct {
	// Workers is the fan-out; 0 selects Input.Workers, then GOMAXPROCS.
	Workers int
}

// Name implements Algorithm.
func (BUCParallel) Name() string { return "BUCPAR" }

// Requires implements Algorithm: like BUC it needs nothing.
func (BUCParallel) Requires() Requirements { return Requirements{} }

// parallelUnit is one top-level chain: axis j fixed to value v at its most
// relaxed live state, over the facts carrying v.
type parallelUnit struct {
	axis  int
	state int
	value match.ValueID
	items []int32
}

// Run implements Algorithm.
func (b BUCParallel) Run(in *Input, sink Sink) (Stats, error) {
	st := Stats{Algorithm: b.Name()}
	defer in.observe(&st)()
	workers := resolveWorkers(b.Workers, in.Workers)
	in.budget() // resolve the lazy default before workers share it

	// Load the shared fact table once (same budget accounting as BUC).
	loader := &bucRun{in: in, sink: sink, st: &st, d: in.Lattice.NumAxes()}
	if err := loader.load(); err != nil {
		return st, err
	}
	defer in.budget().Release(loader.reserved)
	facts := loader.facts
	d := in.Lattice.NumAxes()

	baseMissing := 0
	basePoint := make([]uint8, d)
	for a := 0; a < d; a++ {
		lad := in.Lattice.Ladders[a]
		if lad.HasDeleted() {
			basePoint[a] = uint8(lad.Len() - 1)
		} else {
			baseMissing++
		}
	}
	items := make([]int32, len(facts))
	for i := range items {
		items[i] = int32(i)
	}

	// The bottom cell (nothing chosen) is emitted once, serially, before
	// the pool starts.
	if baseMissing == 0 && int64(len(items)) >= in.minSupport() && len(items) > 0 {
		var s agg.State
		for _, it := range items {
			s.Add(facts[it].measure)
		}
		if err := sink.Cell(in.Lattice.ID(basePoint), nil, s); err != nil {
			return st, err
		}
		st.Cells++
	}

	// Build the top-level units: for every axis, every value partition at
	// its most relaxed live state.
	var units []parallelUnit
	for j := 0; j < d; j++ {
		s := in.Lattice.Ladders[j].MostRelaxedLive()
		parts := make(map[match.ValueID][]int32)
		for _, it := range items {
			for _, v := range facts[it].axes[j][s] {
				parts[v] = append(parts[v], it)
			}
		}
		for v, part := range parts {
			units = append(units, parallelUnit{axis: j, state: s, value: v, items: part})
		}
	}

	// Each worker owns a cloned traversal state, local stats and a batched
	// sink front-end; units are seeded round-robin and stolen when queues
	// drain unevenly.
	batcher := newSinkBatcher(sink)
	locals := make([]Stats, workers)
	outs := make([]*batchSink, workers)
	clones := make([]*bucRun, workers)
	for w := 0; w < workers; w++ {
		outs[w] = batcher.worker()
		clone := &bucRun{
			in:         in,
			sink:       outs[w],
			st:         &locals[w],
			facts:      facts,
			d:          d,
			disjointAt: func(_, _ int) bool { return false },
			point:      make([]uint8, d),
			missingLND: baseMissing,
		}
		copy(clone.point, basePoint)
		clones[w] = clone
	}
	pool := newWorkerPool(in.Ctx, workers)
	for i := range units {
		u := units[i]
		pool.submit(i, func(w int) error {
			clone := clones[w]
			if !in.Lattice.Ladders[u.axis].HasDeleted() {
				clone.missingLND = baseMissing - 1
			} else {
				clone.missingLND = baseMissing
			}
			// Units for axis j must not descend into axes < j (those
			// combinations are owned by the lower-axis units), which
			// chain's rec(items, j+1) recursion guarantees.
			return clone.chain(u.items, u.axis, u.state, u.value)
		})
	}
	runErr := pool.wait()
	if runErr == nil {
		for _, o := range outs {
			if err := o.flush(); err != nil {
				runErr = err
				break
			}
		}
	}
	for _, s := range locals {
		st.Cells += s.Cells
		st.Sorts += s.Sorts
		st.RowsSorted += s.RowsSorted
	}
	pool.flushObs(in.Reg)
	batcher.flushObs(in.Reg)
	st.Passes = 1
	st.PeakBytes = in.budget().HighWater()
	if runErr != nil {
		return st, fmt.Errorf("cube: BUCPAR worker: %w", runErr)
	}
	return st, nil
}

var _ Algorithm = BUCParallel{}
