package cube

import (
	"encoding/binary"
	"math"

	"x3/internal/agg"
	"x3/internal/extsort"
	"x3/internal/lattice"
	"x3/internal/match"
)

// col is one sort column: a live axis at a specific ladder state.
type col struct {
	axis  int
	state int
}

// colsOf returns the sort columns of cuboid p in axis order.
func colsOf(lat *lattice.Lattice, p lattice.Point) []col {
	var out []col
	for _, a := range lat.LiveAxes(p) {
		out = append(out, col{axis: a, state: int(p[a])})
	}
	return out
}

// expandOpts controls how facts expand into sort rows.
type expandOpts struct {
	// withID appends the 8-byte fact ID to each row (identity retention,
	// needed when disjointness may fail and results are rolled together).
	withID bool
	// firstOnly takes only the first value of each column's set — the
	// behaviour of algorithms that assume disjointness.
	firstOnly bool
	// nullMissing emits the Null sentinel when a column's value set is
	// empty instead of dropping the fact; prefix-shared sorts need it so
	// the fact survives into coarser prefixes.
	nullMissing bool
}

// rowWidth returns the byte width of a row with k columns.
func rowWidth(k int, withID bool) int {
	w := 4*k + 8 // values + measure
	if withID {
		w += 8
	}
	return w
}

// expandInto streams the source and adds one row per fact (or per value
// combination, when sets are multi-valued and firstOnly is off) to the
// sorter. Row layout: k big-endian uint32 values, optional 8-byte fact ID,
// 8-byte measure bits.
func expandInto(in *Input, cols []col, opts expandOpts, s *extsort.Sorter) error {
	k := len(cols)
	row := make([]byte, rowWidth(k, opts.withID))
	vals := make([][]match.ValueID, k)
	return in.Source.Each(func(f *match.Fact) error {
		for i, c := range cols {
			vs := f.Values(c.axis, c.state)
			if len(vs) == 0 {
				if !opts.nullMissing {
					return nil // fact absent from this cuboid
				}
				vals[i] = nullSet
				continue
			}
			if opts.firstOnly {
				vals[i] = vs[:1]
			} else {
				vals[i] = vs
			}
		}
		tail := 4 * k
		if opts.withID {
			binary.BigEndian.PutUint64(row[tail:], uint64(f.ID))
			tail += 8
		}
		binary.BigEndian.PutUint64(row[tail:], math.Float64bits(f.Measure))
		var emit func(i int) error
		emit = func(i int) error {
			if i == k {
				return s.Add(in.Ctx, row)
			}
			for _, v := range vals[i] {
				binary.BigEndian.PutUint32(row[4*i:], uint32(v))
				if err := emit(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		return emit(0)
	})
}

// nullSet is the single-element set holding the Null sentinel.
var nullSet = []match.ValueID{Null}

// scanGroups walks a sorted row iterator, aggregates rows sharing the same
// 4*k-byte key prefix, and calls emit once per group. When withID is set,
// consecutive rows with identical (key, id) are collapsed so a fact never
// contributes twice to one group.
func scanGroups(it *extsort.Iterator, k int, withID bool, emit func(key []byte, s agg.State) error) error {
	keyLen := 4 * k
	idLen := 0
	if withID {
		idLen = 8
	}
	var prev []byte
	var state agg.State
	for {
		row, err := it.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		if prev != nil {
			if string(row[:keyLen]) != string(prev[:keyLen]) {
				if err := emit(prev[:keyLen], state); err != nil {
					return err
				}
				state = agg.State{}
			} else if withID && string(row[:keyLen+idLen]) == string(prev[:keyLen+idLen]) {
				// Same fact, same group: skip the duplicate.
				prev = append(prev[:0], row...)
				continue
			}
		}
		m := math.Float64frombits(binary.BigEndian.Uint64(row[keyLen+idLen:]))
		state.Add(m)
		prev = append(prev[:0], row...)
	}
	if prev != nil {
		return emit(prev[:keyLen], state)
	}
	return nil
}

// sortLimit picks the sort buffer cap from the budget: unlimited budgets
// never spill (pure in-memory quicksort). Bounded budgets divide memory
// among the cuboids, the way PartitionCube keeps partition runs for every
// group-by in flight at once — so sorts turn external exactly when the
// cuboid count grows, reproducing the paper's "exponential number of
// (external) sorts" for the top-down family at high axis counts.
func sortLimit(in *Input) int64 {
	b := in.budget()
	if b.IsUnlimited() {
		return 0
	}
	share := int64(in.Lattice.Size())
	if share < 4 {
		share = 4
	}
	limit := b.Total() / share
	if limit < 4096 {
		limit = 4096
	}
	return limit
}

// newSorter builds a sorter for rows of the given width under the input's
// budget share, wired to the input's registry (extsort.* keys) and to the
// input's worker knob (background run formation, chunked in-memory sorts).
func newSorter(in *Input, width int) *extsort.Sorter {
	s := extsort.New(width, sortLimit(in), in.TmpDir)
	s.Observe(in.Reg)
	if in.Workers != 1 {
		s.Parallel(resolveWorkers(0, in.Workers))
	}
	return s
}

// accumulateSortStats folds one extsort run into the algorithm stats.
func accumulateSortStats(st *Stats, es extsort.Stats) {
	st.Sorts++
	if es.External {
		st.ExternalSorts++
	}
	st.SpillBytes += es.SpillBytes
	st.RowsSorted += es.Rows
}

// decodeFloat reads the 8-byte big-endian float bits at the start of b.
func decodeFloat(b []byte) float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// keyHasNull reports whether any value in the packed key equals Null.
func keyHasNull(key []byte) bool {
	for i := 0; i+4 <= len(key); i += 4 {
		if binary.BigEndian.Uint32(key[i:]) == uint32(Null) {
			return true
		}
	}
	return false
}
