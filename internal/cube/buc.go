package cube

import (
	"fmt"
	"sort"

	"x3/internal/agg"
	"x3/internal/match"
)

// BUC is the XMLized bottom-up cube algorithm (§3.4), a non-collapsing
// adaptation of Beyer–Ramakrishnan's BottomUpCube. It starts from the most
// relaxed cuboid (all facts in one group) and recursively partitions,
// descending each axis's relaxation ladder; partitions at a finer ladder
// state are always subsets of the same value's partition at the coarser
// state, which is what makes pure refinement possible once matching starts
// from the most relaxed fully instantiated pattern.
//
// Plain BUC tolerates non-disjointness by expanding each fact into every
// value partition it belongs to (a map from value to fact list, extra
// copies, full rescans per restriction). With Opt set (BUCOPT) it assumes
// disjointness globally and partitions in place by sorting — faster, but
// wrong when a fact carries several values (it silently uses the first).
// With Cust set (BUCCUST, §4.5) it asks Input.Props per (axis, state) and
// uses the fast path only where disjointness is guaranteed, remaining
// correct everywhere.
type BUC struct {
	Opt  bool
	Cust bool
}

// Name implements Algorithm.
func (b BUC) Name() string {
	switch {
	case b.Opt:
		return "BUCOPT"
	case b.Cust:
		return "BUCCUST"
	default:
		return "BUC"
	}
}

// Requires implements Algorithm.
func (b BUC) Requires() Requirements {
	if b.Opt {
		return Requirements{Disjointness: true}
	}
	return Requirements{}
}

// bucFact is the in-memory fact record BUC partitions over.
type bucFact struct {
	measure float64
	// axes[a][s] is the sorted value set of axis a at live state s.
	axes [][][]match.ValueID
}

type bucRun struct {
	in   *Input
	sink Sink
	st   *Stats

	facts []bucFact
	d     int

	// disjointAt decides the partition strategy per (axis, live state).
	disjointAt func(a, s int) bool

	point      []uint8
	key        []match.ValueID
	missingLND int // unchosen axes that cannot be deleted
	reserved   int64
	recs       int // rec entries since the last cancellation check
}

// Run implements Algorithm.
func (b BUC) Run(in *Input, sink Sink) (Stats, error) {
	st := Stats{Algorithm: b.Name()}
	defer in.observe(&st)()
	if b.Cust && in.Props == nil {
		return st, fmt.Errorf("cube: BUCCUST requires Input.Props")
	}
	r := &bucRun{in: in, sink: sink, st: &st, d: in.Lattice.NumAxes()}
	switch {
	case b.Opt:
		r.disjointAt = func(_, _ int) bool { return true }
	case b.Cust:
		r.disjointAt = in.Props.Disjoint
	default:
		r.disjointAt = func(_, _ int) bool { return false }
	}
	if err := r.load(); err != nil {
		return st, err
	}
	defer in.budget().Release(r.reserved)

	// Initialize the point at the most relaxed (deleted where possible)
	// state; axes without LND make emission invalid until chosen.
	r.point = make([]uint8, r.d)
	for a := 0; a < r.d; a++ {
		lad := in.Lattice.Ladders[a]
		if lad.HasDeleted() {
			r.point[a] = uint8(lad.Len() - 1)
		} else {
			r.missingLND++
		}
	}
	items := make([]int32, len(r.facts))
	for i := range items {
		items[i] = int32(i)
	}
	if err := r.rec(items, 0); err != nil {
		return st, err
	}
	st.Passes = 1
	st.PeakBytes = in.budget().HighWater()
	return st, nil
}

// load copies the fact table into memory (BUC's working set), accounting
// the bytes against the budget.
func (r *bucRun) load() error {
	err := r.in.Source.Each(func(f *match.Fact) error {
		bf := bucFact{measure: f.Measure, axes: make([][][]match.ValueID, len(f.Axes))}
		var bytes int64 = 32
		for a := range f.Axes {
			bf.axes[a] = make([][]match.ValueID, len(f.Axes[a]))
			for s := range f.Axes[a] {
				vs := make([]match.ValueID, len(f.Axes[a][s]))
				copy(vs, f.Axes[a][s])
				bf.axes[a][s] = vs
				bytes += 24 + 4*int64(len(vs))
			}
		}
		if !r.in.budget().TryReserve(bytes) {
			return fmt.Errorf("cube: %s: fact table exceeds memory budget", r.st.Algorithm)
		}
		r.reserved += bytes
		r.facts = append(r.facts, bf)
		return nil
	})
	return err
}

// rec emits the cell for the current (point, key) restriction and then
// restricts further on every remaining axis. Partitions below the iceberg
// threshold are pruned entirely — no refinement of them can reach it
// (Beyer–Ramakrishnan's minimum-support optimization; valid even with
// overlapping partitions, since refinements only lose facts).
func (r *bucRun) rec(items []int32, nextAxis int) error {
	if int64(len(items)) < r.in.minSupport() {
		return nil
	}
	if r.recs++; r.recs%ctxCheckEvery == 0 {
		if err := r.in.ctxErr(); err != nil {
			return err
		}
	}
	if r.missingLND == 0 && len(items) > 0 {
		var s agg.State
		for _, it := range items {
			s.Add(r.facts[it].measure)
		}
		if err := r.sink.Cell(r.in.Lattice.ID(r.point), r.key, s); err != nil {
			return err
		}
		r.st.Cells++
	}
	if len(items) == 0 {
		return nil
	}
	if len(items) == 1 {
		// Classic BUC short-circuit: a singleton partition needs no
		// further partitioning — enumerate its remaining cells directly.
		return r.single(items[0], nextAxis)
	}
	for j := nextAxis; j < r.d; j++ {
		if err := r.descend(items, j); err != nil {
			return err
		}
	}
	return nil
}

// descend partitions items on axis j at its most relaxed live state and
// chains down the ladder within each value partition.
func (r *bucRun) descend(items []int32, j int) error {
	lad := r.in.Lattice.Ladders[j]
	if !lad.HasDeleted() {
		r.missingLND--
		defer func() { r.missingLND++ }()
	}
	s := lad.MostRelaxedLive()
	if r.disjointAt(j, s) {
		return r.sortedPartition(items, j, s)
	}
	return r.mapPartition(items, j, s)
}

// mapPartition handles overlapping partitions: each fact joins the
// partition of every value it carries (the §3.4 requirement to consider
// all elements of the child cuboid for each restriction).
func (r *bucRun) mapPartition(items []int32, j, s int) error {
	parts := make(map[match.ValueID][]int32)
	for _, it := range items {
		for _, v := range r.facts[it].axes[j][s] {
			parts[v] = append(parts[v], it)
		}
	}
	vals := make([]match.ValueID, 0, len(parts))
	for v := range parts {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, k int) bool { return vals[i] < vals[k] })
	for _, v := range vals {
		if err := r.chain(parts[v], j, s, v); err != nil {
			return err
		}
	}
	return nil
}

// sortedPartition assumes at most one value per fact: it sorts the item
// slice in place by that value and walks contiguous ranges — no expansion,
// no copies. Facts without a value sort to the end and are dropped. On
// data violating disjointness it silently uses the first value, computing
// the same wrong-but-fast answer the paper measures for BUCOPT (§4.3).
func (r *bucRun) sortedPartition(items []int32, j, s int) error {
	val := func(it int32) match.ValueID {
		vs := r.facts[it].axes[j][s]
		if len(vs) == 0 {
			return Null
		}
		return vs[0]
	}
	sort.Slice(items, func(a, b int) bool { return val(items[a]) < val(items[b]) })
	r.st.Sorts++
	r.st.RowsSorted += int64(len(items))
	for lo := 0; lo < len(items); {
		v := val(items[lo])
		if v == Null {
			break
		}
		hi := lo
		for hi < len(items) && val(items[hi]) == v {
			hi++
		}
		if err := r.chain(items[lo:hi], j, s, v); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// chain fixes axis j's value to v and walks the ladder from state s down
// to rigid, recursing into later axes at every rung. Each finer state
// keeps only the facts still carrying v (ladder monotonicity guarantees
// these are exactly the finer matches).
func (r *bucRun) chain(items []int32, j, s int, v match.ValueID) error {
	r.key = append(r.key, v)
	old := r.point[j]
	defer func() {
		r.key = r.key[:len(r.key)-1]
		r.point[j] = old
	}()
	cur := items
	for {
		r.point[j] = uint8(s)
		if err := r.rec(cur, j+1); err != nil {
			return err
		}
		if s == 0 {
			return nil
		}
		s--
		var finer []int32
		for _, it := range cur {
			if hasValue(r.facts[it].axes[j][s], v) {
				finer = append(finer, it)
			}
		}
		if len(finer) == 0 {
			return nil
		}
		cur = finer
	}
}

// single enumerates every remaining cell of a singleton partition, exactly
// mirroring the rec/descend/chain cell set.
func (r *bucRun) single(it int32, nextAxis int) error {
	f := &r.facts[it]
	for j := nextAxis; j < r.d; j++ {
		lad := r.in.Lattice.Ladders[j]
		if !lad.HasDeleted() {
			r.missingLND--
		}
		old := r.point[j]
		for s := range f.axes[j] {
			r.point[j] = uint8(s)
			for _, v := range f.axes[j][s] {
				r.key = append(r.key, v)
				if r.missingLND == 0 {
					var st agg.State
					st.Add(f.measure)
					if err := r.sink.Cell(r.in.Lattice.ID(r.point), r.key, st); err != nil {
						return err
					}
					r.st.Cells++
				}
				if err := r.single(it, j+1); err != nil {
					return err
				}
				r.key = r.key[:len(r.key)-1]
			}
		}
		r.point[j] = old
		if !lad.HasDeleted() {
			r.missingLND++
		}
	}
	return nil
}

// hasValue reports whether sorted set vs contains v.
func hasValue(vs []match.ValueID, v match.ValueID) bool {
	lo, hi := 0, len(vs)
	for lo < hi {
		mid := (lo + hi) / 2
		if vs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(vs) && vs[lo] == v
}

var _ Algorithm = BUC{}
