package cube

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"x3/internal/obs"
)

// workerPool is the shared scheduler behind the parallel cube algorithms
// (BUCPAR, TDPAR) and any future fan-out: a fixed set of worker
// goroutines, each with its own LIFO queue, stealing FIFO from the longest
// other queue when idle. Tasks may submit further tasks while running —
// that is how TDPAR expresses its roll-up dependency DAG: a cuboid's task
// is queued only once its parent has been computed. The first task error
// aborts the pool; queued tasks are dropped and wait returns that error.
type workerPool struct {
	//x3:nolint(ctxflow) the pool is created per run and dies with it; workers poll this between tasks
	ctx     context.Context // checked between tasks; nil never cancels
	mu      sync.Mutex
	cond    *sync.Cond
	queues  [][]poolTask
	pending int // queued + running tasks
	closed  bool
	err     error
	steals  int64
	wg      sync.WaitGroup
}

// poolTask is one unit of work; w identifies the executing worker so tasks
// can use worker-local state (cloned traversal state, batched sinks).
type poolTask func(w int) error

// resolveWorkers picks the effective fan-out: an algorithm-level override,
// else the Input-level knob, else GOMAXPROCS.
func resolveWorkers(override, inputWorkers int) int {
	if override > 0 {
		return override
	}
	if inputWorkers > 0 {
		return inputWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// newWorkerPool starts a pool of the given size (at least 1). ctx, when
// non-nil, is checked between tasks: once cancelled, no queued task runs
// and wait returns the wrapped cancellation.
func newWorkerPool(ctx context.Context, workers int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	p := &workerPool{ctx: ctx, queues: make([][]poolTask, workers)}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.run(w)
	}
	return p
}

// workers returns the pool size.
func (p *workerPool) workers() int { return len(p.queues) }

// submit queues t on worker w's queue (modulo the pool size). Tasks pass
// their own worker index to keep children local; initial seeding can
// round-robin. Safe to call from any goroutine until wait returns.
func (p *workerPool) submit(w int, t poolTask) {
	p.mu.Lock()
	w %= len(p.queues)
	p.queues[w] = append(p.queues[w], t)
	p.pending++
	p.mu.Unlock()
	p.cond.Broadcast()
}

// take pops a task for worker w: newest from its own queue, else the
// oldest from the longest other queue (a steal). Caller holds p.mu.
func (p *workerPool) take(w int) poolTask {
	if q := p.queues[w]; len(q) > 0 {
		t := q[len(q)-1]
		p.queues[w] = q[:len(q)-1]
		return t
	}
	best := -1
	for i := range p.queues {
		if i != w && len(p.queues[i]) > 0 && (best < 0 || len(p.queues[i]) > len(p.queues[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	t := p.queues[best][0]
	p.queues[best] = p.queues[best][1:]
	p.steals++
	return t
}

func (p *workerPool) run(w int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		if p.err != nil || (p.closed && p.pending == 0) {
			p.mu.Unlock()
			return
		}
		t := p.take(w)
		if t == nil {
			p.cond.Wait()
			continue
		}
		p.mu.Unlock()
		var err error
		if p.ctx != nil && p.ctx.Err() != nil {
			// The run was cancelled while this task sat queued: drop it
			// unexecuted and surface the cancellation through the normal
			// error path (wait drains the rest the same way).
			err = fmt.Errorf("cube: cancelled: %w", p.ctx.Err())
		} else {
			err = t(w)
		}
		p.mu.Lock()
		p.pending--
		if err != nil && p.err == nil {
			p.err = err
		}
		if p.err != nil || p.pending == 0 {
			p.cond.Broadcast()
		}
	}
}

// wait closes the pool to outside submissions, drains it (running tasks
// may still submit children), joins the workers and returns the first task
// error, if any.
func (p *workerPool) wait() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	return p.err
}

// flushObs folds the pool's steal count into cube.par.steals. Call after
// wait; nil-registry safe.
func (p *workerPool) flushObs(reg *obs.Registry) {
	reg.Counter("cube.par.steals").Add(p.steals)
	p.steals = 0
}
