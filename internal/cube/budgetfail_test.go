package cube

import (
	"math/rand"
	"strings"
	"testing"

	"x3/internal/mem"
)

// TestTDOPTALLBudgetTooSmall: when the budget cannot retain roll-up
// parents, TDOPTALL has no fallback and must fail loudly (the harness
// reports such runs as DNF-style failures rather than wrong answers).
func TestTDOPTALLBudgetTooSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 400, 8, 0, 0)
	in := &Input{
		Lattice: lat,
		Source:  set,
		Dicts:   set.Dicts,
		TmpDir:  t.TempDir(),
		Budget:  mem.New(64), // nothing fits
	}
	_, err := (TD{Mode: TDModeOptAll}).Run(in, &CountingSink{})
	if err == nil {
		t.Fatal("TDOPTALL with an unusable budget succeeded")
	}
	if !strings.Contains(err.Error(), "not retained") {
		t.Errorf("err = %v", err)
	}
	if used := in.Budget.Used(); used != 0 {
		t.Errorf("leaked %d budget bytes", used)
	}
}

// TestTDCUSTBudgetTooSmallFallsBack: TDCUST degrades gracefully — when
// parents cannot be retained it recomputes every cuboid from base and
// stays correct.
func TestTDCUSTBudgetTooSmallFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	lat, set := synthSet(t, rng, []int{1, 1}, 200, 4, 0, 0)
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	props, err := MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	res := NewResult(lat, set.Dicts)
	in := &Input{
		Lattice: lat,
		Source:  set,
		Dicts:   set.Dicts,
		TmpDir:  t.TempDir(),
		Budget:  mem.New(8192), // sorts fit (4 KiB floor), cell retention does not
		Props:   props,
	}
	st, err := (TD{Mode: TDModeCust}).Run(in, res)
	if err != nil {
		t.Fatalf("TDCUST under tiny budget: %v", err)
	}
	// Under a roomy budget TDCUST rolls up more; the point here is that
	// partial retention degrades to extra base passes, never to an error
	// or a wrong result.
	_, stRoomy := runAlg(t, TD{Mode: TDModeCust}, lat, set, func(in *Input) { in.Props = props })
	if st.Passes < stRoomy.Passes {
		t.Errorf("tiny budget did fewer base passes (%d) than roomy (%d)", st.Passes, stRoomy.Passes)
	}
	if err := sameResults(oracle, res); err != nil {
		t.Fatalf("fallback result differs: %v", err)
	}
}
