package cube

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// TestCancelledInputStopsEveryAlgorithm runs each algorithm with an
// already-cancelled context over a workload big enough to cross the
// in-loop check granularity: every run must fail with an error wrapping
// context.Canceled, and emit no complete cube.
func TestCancelledInputStopsEveryAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lat, set := synthSet(t, rng, []int{2, 2, 2}, 3000, 12, 0.1, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, alg := range Algorithms() {
		if alg.Name() == "BUCCUST" || alg.Name() == "TDCUST" {
			continue // need Props; the cancellation paths are shared anyway
		}
		res := NewResult(lat, set.Dicts)
		in := &Input{Lattice: lat, Source: set, Dicts: set.Dicts, TmpDir: t.TempDir(), Ctx: ctx}
		_, err := alg.Run(in, res)
		if err == nil {
			t.Errorf("%s: ran to completion under a cancelled context", name)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v; want wrapped context.Canceled", name, err)
		}
	}
}

// TestNilCtxStillCompletes pins the default: a nil Ctx never cancels and
// results match the oracle.
func TestNilCtxStillCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	lat, set := synthSet(t, rng, []int{2, 2}, 500, 8, 0.1, 0.2)
	want, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	res := NewResult(lat, set.Dicts)
	in := &Input{Lattice: lat, Source: set, Dicts: set.Dicts, TmpDir: t.TempDir(), Ctx: nil}
	if _, err := (Counter{}).Run(in, res); err != nil {
		t.Fatal(err)
	}
	if res.Cells != want.Cells {
		t.Fatalf("nil-ctx run produced %d cells, oracle %d", res.Cells, want.Cells)
	}
}
