package cube

import (
	"fmt"

	"x3/internal/agg"
	"x3/internal/match"
)

// Maintain folds newly arrived facts into an already-computed Result
// without recomputing the cube: every (cuboid, group) membership of each
// new fact is enumerated — the same combinatorial walk COUNTER performs —
// and merged into the existing cells. This is sound because all supported
// aggregates are distributive or algebraic under insertion; deletions are
// not supported. The new facts must have been evaluated with the Result's
// own dictionaries (match.EvaluateWith), so their ValueIDs agree.
//
// Iceberg results cannot be maintained: cells below the old threshold were
// discarded, so their true counts are unknown. Maintain refuses them.
func Maintain(res *Result, src Source) (added int64, err error) {
	lat := res.Lattice
	if lat.Query.MinSupport > 1 {
		return 0, fmt.Errorf("cube: cannot maintain an iceberg cube (HAVING >= %d): below-threshold cells were discarded", lat.Query.MinSupport)
	}
	d := lat.NumAxes()
	point := make([]uint8, d)
	key := make([]match.ValueID, 0, d)

	err = src.Each(func(f *match.Fact) error {
		added++
		var rec func(a int)
		rec = func(a int) {
			if a == d {
				pid := lat.ID(point)
				cells, ok := res.Cuboids[pid]
				if !ok {
					cells = make(map[string]agg.State)
					res.Cuboids[pid] = cells
				}
				k := string(packKey(nil, key))
				s, exists := cells[k]
				s.Add(f.Measure)
				cells[k] = s
				if !exists {
					res.Cells++
				}
				return
			}
			lad := lat.Ladders[a]
			if lad.HasDeleted() {
				point[a] = uint8(lad.Len() - 1)
				rec(a + 1)
			}
			live := lad.Len()
			if lad.HasDeleted() {
				live--
			}
			for s := 0; s < live; s++ {
				vs := f.Values(a, s)
				if len(vs) == 0 {
					continue
				}
				point[a] = uint8(s)
				for _, v := range vs {
					key = append(key, v)
					rec(a + 1)
					key = key[:len(key)-1]
				}
			}
		}
		rec(0)
		return nil
	})
	return added, err
}
