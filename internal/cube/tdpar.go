package cube

import (
	"fmt"
	"sync"

	"x3/internal/gate"
	"x3/internal/lattice"
)

// TDParallel (TDPAR) is TDOPTALL driven by the shared worker pool: the
// cube is derived top-down along the same canonical parent edges, but
// independent lattice points are computed concurrently. A cuboid's task is
// submitted only once its parent's cells are stored, so the pool's dynamic
// submission expresses the roll-up dependency DAG directly; workers emit
// through batched per-worker sinks and read parent cells as immutable byte
// slices, leaving the cuboid store and the dependency counts as the only
// shared mutable state (one mutex). Base-data scans are serialized — fact
// sources are not safe for concurrent iteration — but those happen once at
// the lattice top; the fan-out lives in the roll-ups.
//
// Like TDOPTALL it assumes disjointness and coverage globally and computes
// wrong results on data violating them (deliberately, §4.3). Unlike
// TDOPTALL it does not fail when the budget refuses to retain a parent
// cuboid: the child falls back to recomputing from base under the same
// assumptions — slower, never wrong(er).
type TDParallel struct {
	// Workers is the fan-out; 0 selects Input.Workers, then GOMAXPROCS.
	Workers int
}

// Name implements Algorithm.
func (TDParallel) Name() string { return "TDPAR" }

// Requires implements Algorithm: same preconditions as TDOPTALL.
func (TDParallel) Requires() Requirements {
	return Requirements{Disjointness: true, Coverage: true}
}

// tdparChild is one dependency edge: point p is derived from its parent
// over edge once the parent is available.
type tdparChild struct {
	p    lattice.Point
	edge *parentEdge
}

// tdparRun is the shared state of one TDPAR run.
type tdparRun struct {
	in *Input
	td TD // TDModeOptAll, for cellsFromBase semantics

	pool   *workerPool
	locals []Stats
	outs   []*batchSink

	// storeMu guards store, refcnt and the budget accounting inside them.
	storeMu sync.Mutex
	store   *cellStore
	refcnt  map[uint32]int

	// baseMu serializes fact-source scans (sources are not concurrent-safe).
	// A base scan is deliberate blocking I/O, so it is a gate.Gate, not a
	// sync.Mutex (lockhold forbids blocking under a mutex).
	baseMu   gate.Gate
	children map[uint32][]tdparChild
}

// Run implements Algorithm.
func (t TDParallel) Run(in *Input, sink Sink) (Stats, error) {
	st := Stats{Algorithm: t.Name()}
	defer in.observe(&st)()
	workers := resolveWorkers(t.Workers, in.Workers)
	in.budget() // resolve the lazy default before workers share it

	lat := in.Lattice
	// Build the dependency tree over the same canonical edges the serial
	// roll-up walks; refcnt mirrors its release discipline.
	children := make(map[uint32][]tdparChild)
	refcnt := make(map[uint32]int)
	var top lattice.Point
	haveTop := false
	for _, p := range lat.Points() {
		e := chooseParent(lat, p)
		if e == nil {
			top = p
			haveTop = true
			continue
		}
		qid := lat.ID(e.parent)
		children[qid] = append(children[qid], tdparChild{p: p, edge: e})
		refcnt[qid]++
	}

	batcher := newSinkBatcher(sink)
	r := &tdparRun{
		in:       in,
		baseMu:   gate.New(),
		td:       TD{Mode: TDModeOptAll},
		locals:   make([]Stats, workers),
		outs:     make([]*batchSink, workers),
		store:    newCellStore(in),
		refcnt:   refcnt,
		children: children,
	}
	for w := 0; w < workers; w++ {
		r.outs[w] = batcher.worker()
	}
	defer func() {
		r.storeMu.Lock()
		r.store.releaseAll()
		r.storeMu.Unlock()
	}()

	r.pool = newWorkerPool(in.Ctx, workers)
	if haveTop {
		r.pool.submit(0, func(w int) error { return r.compute(w, top, nil) })
	}
	runErr := r.pool.wait()
	if runErr == nil {
		for _, o := range r.outs {
			if err := o.flush(); err != nil {
				runErr = err
				break
			}
		}
	}
	for _, s := range r.locals {
		st.Cells += s.Cells
		st.Passes += s.Passes
		st.Sorts += s.Sorts
		st.ExternalSorts += s.ExternalSorts
		st.SpillBytes += s.SpillBytes
		st.RowsSorted += s.RowsSorted
		st.Rollups += s.Rollups
		st.Copies += s.Copies
	}
	r.pool.flushObs(in.Reg)
	batcher.flushObs(in.Reg)
	st.PeakBytes = in.budget().HighWater()
	if runErr != nil {
		return st, fmt.Errorf("cube: TDPAR worker: %w", runErr)
	}
	return st, nil
}

// compute derives one cuboid on worker w, stores it, releases its parent
// when fully consumed, and submits the cuboids that depend on it.
func (r *tdparRun) compute(w int, p lattice.Point, edge *parentEdge) error {
	in, lat := r.in, r.in.Lattice
	st, out := &r.locals[w], r.outs[w]
	pid := lat.ID(p)

	var parentCells []byte
	haveParent := false
	if edge != nil {
		r.storeMu.Lock()
		parentCells, haveParent = r.store.cells[lat.ID(edge.parent)]
		r.storeMu.Unlock()
	}

	var cells []byte
	var err error
	switch {
	case edge == nil || !haveParent:
		// Lattice top — or a parent the budget refused to retain, in which
		// case we recompute from base rather than fail like TDOPTALL does.
		r.baseMu.Lock()
		cells, err = r.td.cellsFromBase(in, out, st, p)
		r.baseMu.Unlock()
	case !edge.drop:
		// Ladder state step: identical cells, new cuboid id.
		cells = append([]byte(nil), parentCells...)
		st.Copies++
		err = emitCells(out, st, pid, len(lat.LiveAxes(p)), cells, in.minSupport())
	default:
		// LND step: regroup the parent's cells without the dropped axis's
		// key column. parentCells is immutable, so no lock is held here.
		cells, err = rollupCells(in, out, st, parentCells, p, edge)
	}
	if err != nil {
		return err
	}

	r.storeMu.Lock()
	r.store.put(pid, cells)
	if edge != nil {
		qid := lat.ID(edge.parent)
		r.refcnt[qid]--
		if r.refcnt[qid] == 0 {
			r.store.release(qid)
		}
	}
	if r.refcnt[pid] == 0 {
		r.store.release(pid)
	}
	r.storeMu.Unlock()

	for _, c := range r.children[pid] {
		c := c
		r.pool.submit(w, func(w2 int) error { return r.compute(w2, c.p, c.edge) })
	}
	return nil
}

var _ Algorithm = TDParallel{}
