package cube

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchInput builds a mid-sized synthetic workload once per benchmark.
func benchInput(b *testing.B, shape []int, n int, pMiss, pRep float64) *Input {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	t := &testing.T{}
	lat, set := synthSet(t, rng, shape, n, 8, pMiss, pRep)
	if t.Failed() {
		b.Fatal("fixture failed")
	}
	props, err := MeasureProps(lat, set)
	if err != nil {
		b.Fatal(err)
	}
	return &Input{Lattice: lat, Source: set, Dicts: set.Dicts, TmpDir: b.TempDir(), Props: props}
}

// BenchmarkAlgorithms compares all eight algorithms on one conforming
// workload (all correct there), isolating algorithm cost from workload
// preparation.
func BenchmarkAlgorithms(b *testing.B) {
	in := benchInput(b, []int{1, 1, 1, 1}, 2000, 0, 0)
	for _, name := range Names() {
		alg, _ := ByName(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := alg.Run(in, &CountingSink{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBUCOverlap measures the cost of non-disjointness for BUC: the
// same fact count with increasing repetition probability.
func BenchmarkBUCOverlap(b *testing.B) {
	for _, pRep := range []float64{0, 0.3, 0.6} {
		in := benchInput(b, []int{1, 1, 1}, 2000, 0, pRep)
		b.Run(fmt.Sprintf("prep=%.1f", pRep), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (BUC{}).Run(in, &CountingSink{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIcebergPruning shows BUC's minimum-support pruning at work.
func BenchmarkIcebergPruning(b *testing.B) {
	in := benchInput(b, []int{1, 1, 1, 1}, 3000, 0, 0)
	for _, minSup := range []int64{0, 10, 100} {
		b.Run(fmt.Sprintf("minsup=%d", minSup), func(b *testing.B) {
			in.Lattice.Query.MinSupport = minSup
			for i := 0; i < b.N; i++ {
				if _, err := (BUC{}).Run(in, &CountingSink{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	in.Lattice.Query.MinSupport = 0
}

// BenchmarkOracle bounds the naive reference cost for context.
func BenchmarkOracle(b *testing.B) {
	in := benchInput(b, []int{1, 1}, 500, 0.2, 0.2)
	for i := 0; i < b.N; i++ {
		if _, err := (Oracle{}).Run(in, &CountingSink{}); err != nil {
			b.Fatal(err)
		}
	}
}
