package cube

import (
	"math/rand"
	"testing"
)

// TestIcebergMatchesOracle runs every correct algorithm under a HAVING
// threshold and cross-checks with the oracle (itself thresholded).
func TestIcebergMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 400, 4, 0.2, 0.3)
	for _, minSup := range []int64{2, 5, 25} {
		lat.Query.MinSupport = minSup
		oracle, err := RunOracle(lat, set, set.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		props, err := MeasureProps(lat, set)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"COUNTER", "BUC", "BUCCUST", "TD", "TDCUST"} {
			alg, _ := ByName(name)
			res, _ := runAlg(t, alg, lat, set, func(in *Input) { in.Props = props })
			if err := sameResults(oracle, res); err != nil {
				t.Errorf("minsup=%d: %s differs: %v", minSup, name, err)
			}
		}
	}
	lat.Query.MinSupport = 0
}

// TestIcebergConformingAllEight includes the optimized variants on clean
// data, where they too must respect the threshold.
func TestIcebergConformingAllEight(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	lat, set := synthSet(t, rng, []int{1, 1}, 300, 3, 0, 0)
	lat.Query.MinSupport = 10
	oracle, err := RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	props, err := MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	for name, alg := range Algorithms() {
		res, _ := runAlg(t, alg, lat, set, func(in *Input) { in.Props = props })
		if err := sameResults(oracle, res); err != nil {
			t.Errorf("%s differs under iceberg threshold: %v", name, err)
		}
	}
}

// TestIcebergThresholdShrinksCube sanity-checks the semantics: higher
// thresholds keep fewer cells, and every surviving cell meets it.
func TestIcebergThresholdShrinksCube(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 300, 5, 0.1, 0.2)
	var prev int64 = 1 << 62
	for _, minSup := range []int64{1, 3, 10, 50} {
		lat.Query.MinSupport = minSup
		res, _ := runAlg(t, Counter{}, lat, set)
		if res.Cells > prev {
			t.Errorf("minsup=%d: cells grew from %d to %d", minSup, prev, res.Cells)
		}
		prev = res.Cells
		for _, cells := range res.Cuboids {
			for _, s := range cells {
				if s.N < minSup {
					t.Fatalf("minsup=%d: emitted cell with N=%d", minSup, s.N)
				}
			}
		}
	}
	lat.Query.MinSupport = 0
}

// TestBUCPrunesBelowThreshold verifies the point of iceberg-BUC: the
// recursion stops at below-threshold partitions, so high thresholds do
// dramatically less partitioning work.
func TestBUCPrunesBelowThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	lat, set := synthSet(t, rng, []int{1, 1, 1, 1}, 500, 8, 0, 0)

	lat.Query.MinSupport = 0
	_, full := runAlg(t, BUC{Opt: true}, lat, set)
	lat.Query.MinSupport = 50
	_, pruned := runAlg(t, BUC{Opt: true}, lat, set)
	lat.Query.MinSupport = 0

	if pruned.RowsSorted >= full.RowsSorted {
		t.Errorf("iceberg BUC sorted %d rows, full cube sorted %d — no pruning",
			pruned.RowsSorted, full.RowsSorted)
	}
	if pruned.Cells >= full.Cells {
		t.Errorf("iceberg cells %d >= full cells %d", pruned.Cells, full.Cells)
	}
}
