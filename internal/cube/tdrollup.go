package cube

import (
	"fmt"
	"sort"

	"x3/internal/agg"
	"x3/internal/lattice"
)

// runRollup implements TDOPTALL and TDCUST: cuboids are processed from the
// lattice top (rigid) downward, and each is derived from an already
// computed one-step-finer cuboid whenever the step permits —
// unconditionally for TDOPTALL (it assumes summarizability globally), and
// only across schema-certified edges for TDCUST.
//
// A roll-up across an LND step merges the finer cuboid's cells after
// dropping the deleted axis's key column; it is correct exactly when the
// dropped axis is covered (no fact hides in a missing value) and disjoint
// (no fact is double-counted across groups) at the finer state. A roll-up
// across a ladder state step is a verbatim copy: when the stepped axis is
// covered below and disjoint above, every fact's value set is identical at
// the two states, so the cuboids coincide.
func (t TD) runRollup(in *Input, sink Sink, st *Stats) error {
	lat := in.Lattice
	cust := t.Mode == TDModeCust
	if cust && in.Props == nil {
		return fmt.Errorf("cube: TDCUST requires Input.Props")
	}

	pts := lat.Points()
	// Coarsening order: total relaxation weight ascending, top first.
	weight := func(p lattice.Point) int {
		w := 0
		for _, s := range p {
			w += int(s)
		}
		return w
	}
	sort.SliceStable(pts, func(i, j int) bool {
		wi, wj := weight(pts[i]), weight(pts[j])
		if wi != wj {
			return wi < wj
		}
		return lat.ID(pts[i]) < lat.ID(pts[j])
	})

	store := newCellStore(in)
	defer store.releaseAll()

	// TDOPTALL releases a cuboid once all children that chose it as
	// parent have consumed it.
	refcnt := make(map[uint32]int)
	if !cust {
		for _, p := range pts {
			if e := chooseParent(lat, p); e != nil {
				refcnt[lat.ID(e.parent)]++
			}
		}
	}

	for _, p := range pts {
		if err := in.ctxErr(); err != nil {
			return err
		}
		pid := lat.ID(p)
		k := len(lat.LiveAxes(p))

		var edge *parentEdge
		if cust {
			edge = t.chooseSafeParent(in, store, p)
		} else {
			edge = chooseParent(lat, p)
		}

		var cells []byte
		var err error
		switch {
		case edge == nil:
			// Lattice top (TDOPTALL) or no safe computed parent (TDCUST):
			// compute from base data.
			cells, err = t.cellsFromBase(in, sink, st, p)
		case !edge.drop:
			// Ladder state step: identical cells, new cuboid id.
			cells, err = store.copyCells(lat.ID(edge.parent))
			if err == nil {
				st.Copies++
				err = emitCells(sink, st, pid, k, cells, in.minSupport())
			}
		default:
			// LND step: regroup the parent's cells without the dropped
			// axis's key column.
			cells, err = t.rollup(in, sink, st, store, p, edge)
		}
		if err != nil {
			return err
		}
		store.put(pid, cells)

		if !cust && edge != nil {
			qid := lat.ID(edge.parent)
			refcnt[qid]--
			if refcnt[qid] == 0 {
				store.release(qid)
			}
		}
		if refcnt[pid] == 0 && !cust {
			store.release(pid)
		}
	}
	return nil
}

// chooseSafeParent returns a computed parent reachable over a
// schema-certified edge, or nil when p must be computed from base.
func (t TD) chooseSafeParent(in *Input, store *cellStore, p lattice.Point) *parentEdge {
	lat := in.Lattice
	// Prefer relaxing the last axis: that drops the parent's last key
	// column, which rolls up without a sort.
	for a := len(p) - 1; a >= 0; a-- {
		if p[a] == 0 {
			continue
		}
		q := p.Clone()
		q[a]--
		if !store.has(lat.ID(q)) {
			continue
		}
		sq := int(p[a]) - 1
		var safe bool
		if lat.Deleted(p, a) {
			safe = in.Props.Covered(a, sq) && in.Props.Disjoint(a, sq)
		} else {
			safe = in.Props.Covered(a, sq) && in.Props.Disjoint(a, int(p[a]))
		}
		if safe {
			return &parentEdge{parent: q, axis: a, drop: lat.Deleted(p, a)}
		}
	}
	return nil
}

// cellsFromBase computes cuboid p directly from the fact source, emits its
// cells, and returns them packed for later roll-ups.
func (t TD) cellsFromBase(in *Input, sink Sink, st *Stats, p lattice.Point) ([]byte, error) {
	lat := in.Lattice
	cols := colsOf(lat, p)
	withID := false
	opts := expandOpts{firstOnly: true}
	if t.Mode == TDModeCust {
		// Stay correct: expand full value sets, and retain identities
		// when any column may be non-disjoint.
		opts.firstOnly = false
		for _, c := range cols {
			if !in.Props.Disjoint(c.axis, c.state) {
				withID = true
			}
		}
		opts.withID = withID
	}
	sorter := newSorter(in, rowWidth(len(cols), withID))
	err := expandInto(in, cols, opts, sorter)
	st.Passes++
	if err != nil {
		return nil, err
	}
	it, es, err := sorter.Finish(in.Ctx)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	accumulateSortStats(st, es)
	pid := lat.ID(p)
	minSup := in.minSupport()
	var cells []byte
	err = scanGroups(it, len(cols), withID, func(key []byte, s agg.State) error {
		// Below-threshold cells are retained for roll-up but not emitted.
		if s.N >= minSup {
			st.Cells++
			if err := sink.Cell(pid, unpackKey(key), s); err != nil {
				return err
			}
		}
		cells = appendCell(cells, key, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// rollup derives cuboid p from its parent's cells by deleting the key
// column of edge.axis and merging groups that collide.
func (t TD) rollup(in *Input, sink Sink, st *Stats, store *cellStore, p lattice.Point, edge *parentEdge) ([]byte, error) {
	lat := in.Lattice
	parentCells, ok := store.cells[lat.ID(edge.parent)]
	if !ok {
		return nil, fmt.Errorf("cube: %s: roll-up parent %s not retained (budget too small)",
			t.Name(), lat.Label(edge.parent))
	}
	return rollupCells(in, sink, st, parentCells, p, edge)
}

// rollupCells is the roll-up core shared by the serial and parallel
// top-down algorithms: it derives cuboid p's packed cells from its
// parent's, emitting at-threshold cells along the way. parentCells is
// read-only; callers that fetch it from a shared store may do so under a
// lock and pass the (immutable) byte slice in.
func rollupCells(in *Input, sink Sink, st *Stats, parentCells []byte, p lattice.Point, edge *parentEdge) ([]byte, error) {
	lat := in.Lattice
	parentLive := lat.LiveAxes(edge.parent)
	dropPos := -1
	for i, a := range parentLive {
		if a == edge.axis {
			dropPos = i
		}
	}
	if dropPos < 0 {
		return nil, fmt.Errorf("cube: internal: dropped axis %d not live in parent", edge.axis)
	}
	kq := len(parentLive)
	kp := kq - 1
	wq := 4*kq + agg.EncodedSize
	wp := 4*kp + agg.EncodedSize
	st.Rollups++

	pid := lat.ID(p)
	minSup := in.minSupport()
	var cells []byte
	var prevKey []byte
	var acc agg.State
	started := false
	emit := func() error {
		if acc.N >= minSup {
			st.Cells++
			if err := sink.Cell(pid, unpackKey(prevKey), acc); err != nil {
				return err
			}
		}
		cells = appendCell(cells, prevKey, acc)
		return nil
	}
	consume := func(key []byte, s agg.State) error {
		if started && string(key) == string(prevKey) {
			acc.Merge(s)
			return nil
		}
		if started {
			if err := emit(); err != nil {
				return err
			}
		}
		prevKey = append(prevKey[:0], key...)
		acc = s
		started = true
		return nil
	}

	if dropPos == kq-1 {
		// Dropping the last key column: parent cells are already grouped
		// by the remaining prefix — merge in one pass, no sort.
		for off := 0; off+wq <= len(parentCells); off += wq {
			key := parentCells[off : off+4*kp]
			if err := consume(key, agg.Decode(parentCells[off+4*kq:off+wq])); err != nil {
				return nil, err
			}
		}
	} else {
		// An interior column drop (TDCUST when only that edge is safe):
		// regroup with a sort.
		sorter := newSorter(in, wp)
		row := make([]byte, wp)
		for off := 0; off+wq <= len(parentCells); off += wq {
			key := parentCells[off : off+4*kq]
			copy(row, key[:4*dropPos])
			copy(row[4*dropPos:], key[4*dropPos+4:4*kq])
			copy(row[4*kp:], parentCells[off+4*kq:off+wq])
			if err := sorter.Add(in.Ctx, row); err != nil {
				return nil, err
			}
		}
		it, es, err := sorter.Finish(in.Ctx)
		if err != nil {
			return nil, err
		}
		defer it.Close()
		accumulateSortStats(st, es)
		for {
			r, err := it.Next()
			if err != nil {
				return nil, err
			}
			if r == nil {
				break
			}
			if err := consume(r[:4*kp], agg.Decode(r[4*kp:])); err != nil {
				return nil, err
			}
		}
	}
	if started {
		if err := emit(); err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// appendCell packs one cell (key + encoded aggregate) onto buf.
func appendCell(buf, key []byte, s agg.State) []byte {
	buf = append(buf, key...)
	var enc [agg.EncodedSize]byte
	s.Encode(enc[:])
	return append(buf, enc[:]...)
}

// emitCells sinks every at-threshold cell in a packed buffer for cuboid
// pid (k key columns per cell).
func emitCells(sink Sink, st *Stats, pid uint32, k int, cells []byte, minSup int64) error {
	w := 4*k + agg.EncodedSize
	for off := 0; off+w <= len(cells); off += w {
		key := cells[off : off+4*k]
		s := agg.Decode(cells[off+4*k : off+w])
		if s.N < minSup {
			continue
		}
		st.Cells++
		if err := sink.Cell(pid, unpackKey(key), s); err != nil {
			return err
		}
	}
	return nil
}

// cellStore retains computed cuboids' packed cells for roll-up, accounting
// the bytes against the budget. When the budget refuses a cuboid it simply
// is not stored (TDCUST then recomputes children from base; TDOPTALL
// treats it as a hard error since it has no fallback).
type cellStore struct {
	in       *Input
	cells    map[uint32][]byte
	reserved map[uint32]int64
}

func newCellStore(in *Input) *cellStore {
	return &cellStore{in: in, cells: map[uint32][]byte{}, reserved: map[uint32]int64{}}
}

func (cs *cellStore) has(id uint32) bool {
	_, ok := cs.cells[id]
	return ok
}

func (cs *cellStore) get(id uint32) []byte { return cs.cells[id] }

func (cs *cellStore) put(id uint32, cells []byte) {
	n := int64(len(cells))
	if !cs.in.budget().TryReserve(n) {
		return // not retained; callers fall back or fail later
	}
	cs.cells[id] = cells
	cs.reserved[id] = n
}

func (cs *cellStore) copyCells(id uint32) ([]byte, error) {
	src, ok := cs.cells[id]
	if !ok {
		return nil, fmt.Errorf("cube: roll-up parent %d not retained (budget too small)", id)
	}
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

func (cs *cellStore) release(id uint32) {
	if n, ok := cs.reserved[id]; ok {
		cs.in.budget().Release(n)
		delete(cs.reserved, id)
	}
	delete(cs.cells, id)
}

func (cs *cellStore) releaseAll() {
	for id := range cs.cells {
		cs.release(id)
	}
}
