package cube

import (
	"errors"
	"math/rand"
	"testing"

	"x3/internal/agg"
	"x3/internal/match"
)

// failingSink errors after a fixed number of cells.
type failingSink struct {
	after int64
	n     int64
}

var errSinkBoom = errors.New("sink boom")

func (f *failingSink) Cell(uint32, []match.ValueID, agg.State) error {
	f.n++
	if f.n > f.after {
		return errSinkBoom
	}
	return nil
}

// TestSinkErrorsPropagate injects sink failures at several depths into
// every algorithm; each must surface the error, not swallow it.
func TestSinkErrorsPropagate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lat, set := synthSet(t, rng, []int{1, 1}, 100, 4, 0, 0)
	props, err := MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	for name, alg := range Algorithms() {
		for _, after := range []int64{0, 1, 7} {
			in := &Input{Lattice: lat, Source: set, Dicts: set.Dicts, TmpDir: t.TempDir(), Props: props}
			_, err := alg.Run(in, &failingSink{after: after})
			if !errors.Is(err, errSinkBoom) {
				t.Errorf("%s (after=%d): err = %v, want sink error", name, after, err)
			}
		}
	}
}

// failingSource errors mid-stream.
type failingSource struct {
	set   *match.Set
	after int
}

var errSourceBoom = errors.New("source boom")

func (f *failingSource) NumFacts() int { return f.set.NumFacts() }

func (f *failingSource) Each(fn func(*match.Fact) error) error {
	for i, fact := range f.set.Facts {
		if i >= f.after {
			return errSourceBoom
		}
		if err := fn(fact); err != nil {
			return err
		}
	}
	return nil
}

// TestSourceErrorsPropagate injects source failures into every algorithm.
func TestSourceErrorsPropagate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lat, set := synthSet(t, rng, []int{1, 1}, 100, 4, 0, 0)
	props, err := MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	for name, alg := range Algorithms() {
		in := &Input{
			Lattice: lat,
			Source:  &failingSource{set: set, after: 50},
			Dicts:   set.Dicts,
			TmpDir:  t.TempDir(),
			Props:   props,
		}
		_, err := alg.Run(in, &CountingSink{})
		if !errors.Is(err, errSourceBoom) {
			t.Errorf("%s: err = %v, want source error", name, err)
		}
	}
}

// TestBudgetReleasedAfterRuns verifies no algorithm leaks budget
// reservations, on success and on failure.
func TestBudgetReleasedAfterRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 200, 4, 0.2, 0.2)
	props, err := MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	for name, alg := range Algorithms() {
		for _, sink := range []Sink{&CountingSink{}, &failingSink{after: 3}} {
			in := &Input{Lattice: lat, Source: set, Dicts: set.Dicts, TmpDir: t.TempDir(), Props: props}
			_, _ = alg.Run(in, sink)
			if used := in.Budget.Used(); used != 0 {
				t.Errorf("%s leaked %d budget bytes", name, used)
			}
		}
	}
}
