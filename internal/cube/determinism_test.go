package cube

import (
	"math/rand"
	"testing"
)

// TestParallelDeterminism checks the determinism contract of the parallel
// algorithms: across 10 seeded workloads — including coverage and
// disjointness violations, where results are defined by the algorithm
// rather than the oracle — BUCPAR must produce the exact Result snapshot
// of serial BUC and TDPAR the snapshot of serial TDOPTALL, at every worker
// count. Worker scheduling, work stealing and batch flush order must never
// show in the output.
func TestParallelDeterminism(t *testing.T) {
	shapes := [][]int{{1, 1}, {2, 1}, {3, 2}, {1, 1, 1}, {2, 1, 1}}
	pairs := []struct {
		name     string
		serial   Algorithm
		parallel func(workers int) Algorithm
	}{
		{"BUCPAR-vs-BUC", BUC{}, func(w int) Algorithm { return BUCParallel{Workers: w} }},
		{"TDPAR-vs-TDOPTALL", TD{Mode: TDModeOptAll}, func(w int) Algorithm { return TDParallel{Workers: w} }},
	}
	for _, pair := range pairs {
		t.Run(pair.name, func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				rng := rand.New(rand.NewSource(seed * 1789))
				shape := shapes[int(seed)%len(shapes)]
				// Nonzero pMissing/pRepeat: coverage and disjointness both
				// violated on most seeds.
				lat, set := synthSet(t, rng, shape, 40+rng.Intn(120), 4, 0.2, 0.3)
				want, _ := runAlg(t, pair.serial, lat, set)
				for _, workers := range []int{1, 2, 4} {
					got, _ := runAlg(t, pair.parallel(workers), lat, set)
					if err := sameResults(want, got); err != nil {
						t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
					}
				}
			}
		})
	}
}

// TestTDParallelMatchesOracle fuzzes TDPAR against the oracle on data that
// satisfies its declared requirements (disjoint, covering), across worker
// counts and lattice shapes — the TDPAR analogue of
// TestParallelMatchesOracle.
func TestTDParallelMatchesOracle(t *testing.T) {
	// Single-state ladders only: synthSet thins value sets toward rigid
	// states on taller ladders, which violates coverage — where TDOPTALL
	// semantics diverge from the oracle by design.
	shapes := [][]int{{1}, {1, 1}, {1, 1, 1}, {1, 1, 1, 1}}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*977 + 5))
		shape := shapes[trial%len(shapes)]
		// pMissing=0, pRepeat=0: every fact covered, single-valued groups.
		lat, set := synthSet(t, rng, shape, 50+rng.Intn(150), 4, 0, 0)
		props, err := MeasureProps(lat, set)
		if err != nil {
			t.Fatal(err)
		}
		if !props.GloballyDisjoint() || !props.GloballyCovered() {
			t.Fatalf("trial %d: workload unexpectedly violates TDPAR requirements", trial)
		}
		oracle, err := RunOracle(lat, set, set.Dicts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			res, st := runAlg(t, TDParallel{Workers: workers}, lat, set)
			if err := sameResults(oracle, res); err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if st.Cells != oracle.Cells {
				t.Fatalf("trial %d workers=%d: cells %d vs %d", trial, workers, st.Cells, oracle.Cells)
			}
		}
	}
}

// TestTDParallelSinkErrorStopsWorkers ensures a failing sink aborts a TDPAR
// run, surfaces the error and releases every budget reservation.
func TestTDParallelSinkErrorStopsWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	lat, set := synthSet(t, rng, []int{1, 1, 1}, 200, 4, 0, 0)
	in := &Input{Lattice: lat, Source: set, Dicts: set.Dicts, TmpDir: t.TempDir()}
	_, err := (TDParallel{Workers: 4}).Run(in, &failingSink{after: 5})
	if err == nil {
		t.Fatal("sink error swallowed")
	}
	if used := in.Budget.Used(); used != 0 {
		t.Fatalf("leaked %d budget bytes", used)
	}
}
