package cube

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"x3/internal/agg"
	"x3/internal/match"
	"x3/internal/obs"
)

// randKeys generates n random keys of kw words over a small domain (so
// duplicates occur) plus a parallel measure stream.
func randKeys(rng *rand.Rand, n, kw, card int) ([][]match.ValueID, []float64) {
	keys := make([][]match.ValueID, n)
	ms := make([]float64, n)
	for i := range keys {
		k := make([]match.ValueID, kw)
		for j := range k {
			k[j] = match.ValueID(rng.Intn(card))
		}
		keys[i] = k
		ms[i] = float64(1 + rng.Intn(9))
	}
	return keys, ms
}

// TestCellTableMatchesMap accumulates random keys and checks the table
// against a reference map, including iteration in first-insertion order.
func TestCellTableMatchesMap(t *testing.T) {
	for _, kw := range []int{1, 2, 4, 7} {
		rng := rand.New(rand.NewSource(int64(kw)))
		keys, ms := randKeys(rng, 2000, kw, 6)
		tab := newCellTable(kw, 0, 0)
		want := map[string]agg.State{}
		var order []string
		for i, k := range keys {
			tab.add(k, ms[i])
			pk := string(packKey(nil, k))
			if _, seen := want[pk]; !seen {
				order = append(order, pk)
			}
			s := want[pk]
			s.Add(ms[i])
			want[pk] = s
		}
		if tab.len() != len(want) {
			t.Fatalf("kw=%d: %d entries, want %d", kw, tab.len(), len(want))
		}
		i := 0
		if err := tab.each(func(key []match.ValueID, s *agg.State) error {
			pk := string(packKey(nil, key))
			if pk != order[i] {
				return fmt.Errorf("entry %d out of insertion order", i)
			}
			w := want[pk]
			if s.N != w.N || math.Abs(s.Sum-w.Sum) > 1e-9 {
				return fmt.Errorf("key %v: N=%d Sum=%g, want N=%d Sum=%g", key, s.N, s.Sum, w.N, w.Sum)
			}
			i++
			return nil
		}); err != nil {
			t.Fatalf("kw=%d: %v", kw, err)
		}
	}
}

// TestCellTableGrowKeepsEntries forces resizes and checks that entry
// indices, keys and states survive, and that absent keys still miss.
func TestCellTableGrowKeepsEntries(t *testing.T) {
	const kw = 3
	tab := newCellTable(kw, 0, 42)
	n := 1000
	for i := 0; i < n; i++ {
		key := []match.ValueID{match.ValueID(i), match.ValueID(i * 7), match.ValueID(i % 13)}
		tab.add(key, float64(i))
	}
	if tab.resizes == 0 {
		t.Fatal("expected at least one resize")
	}
	if tab.len() != n {
		t.Fatalf("%d entries, want %d", tab.len(), n)
	}
	for i := 0; i < n; i++ {
		key := []match.ValueID{match.ValueID(i), match.ValueID(i * 7), match.ValueID(i % 13)}
		e := tab.findHashed(tab.hash(key), key)
		if e != i {
			t.Fatalf("key %d found at entry %d", i, e)
		}
		if got := tab.states[e].Sum; got != float64(i) {
			t.Fatalf("key %d: Sum=%g", i, got)
		}
	}
	absent := []match.ValueID{Null, Null, Null}
	if e := tab.findHashed(tab.hash(absent), absent); e != -1 {
		t.Fatalf("absent key found at %d", e)
	}
}

// TestCellTableCapHint checks that a capacity hint pre-sizes the table so
// the hinted number of entries triggers no resize.
func TestCellTableCapHint(t *testing.T) {
	tab := newCellTable(2, 500, 0)
	for i := 0; i < 500; i++ {
		tab.add([]match.ValueID{match.ValueID(i), match.ValueID(i + 1)}, 1)
	}
	if tab.resizes != 0 {
		t.Fatalf("hinted table resized %d times", tab.resizes)
	}
}

// TestCellTableResetReuse checks reset/resetWidth keep the arenas (zero
// steady-state garbage) while fully clearing the contents.
func TestCellTableResetReuse(t *testing.T) {
	tab := newCellTable(2, 256, 0)
	for i := 0; i < 200; i++ {
		tab.add([]match.ValueID{match.ValueID(i), match.ValueID(i)}, 2)
	}
	slotCap, keyCap, stateCap := len(tab.slots), cap(tab.keys), cap(tab.states)
	tab.reset()
	if tab.len() != 0 {
		t.Fatalf("reset left %d entries", tab.len())
	}
	if len(tab.slots) != slotCap || cap(tab.keys) != keyCap || cap(tab.states) != stateCap {
		t.Fatal("reset dropped the arenas")
	}
	key := []match.ValueID{1, 1}
	if e := tab.findHashed(tab.hash(key), key); e != -1 {
		t.Fatal("stale entry visible after reset")
	}
	tab.add(key, 5)
	if tab.len() != 1 || tab.states[0].Sum != 5 {
		t.Fatal("reuse after reset broken")
	}

	tab.resetWidth(3)
	if tab.kw != 3 || tab.len() != 0 {
		t.Fatalf("resetWidth: kw=%d len=%d", tab.kw, tab.len())
	}
	wide := []match.ValueID{1, 2, 3}
	tab.add(wide, 7)
	if e := tab.findHashed(tab.hash(wide), wide); e != 0 {
		t.Fatalf("wide key at entry %d", e)
	}
}

// TestCellTableSeedsIndependent checks two tables with different seeds
// accumulate identically — the seed only permutes slot placement.
func TestCellTableSeedsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	keys, ms := randKeys(rng, 1500, 2, 5)
	a, b := newCellTable(2, 0, 0), newCellTable(2, 0, 0xdeadbeef)
	for i := range keys {
		a.add(keys[i], ms[i])
		b.add(keys[i], ms[i])
	}
	if a.len() != b.len() {
		t.Fatalf("entry counts differ: %d vs %d", a.len(), b.len())
	}
	i := 0
	if err := a.each(func(key []match.ValueID, s *agg.State) error {
		if !b.keyEqual(i, key) {
			return fmt.Errorf("entry %d keys differ", i)
		}
		if o := b.states[i]; s.N != o.N || s.Sum != o.Sum {
			return fmt.Errorf("entry %d states differ", i)
		}
		i++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCellTableMerge checks merge folds full states like repeated adds.
func TestCellTableMerge(t *testing.T) {
	tab := newCellTable(1, 0, 0)
	key := []match.ValueID{3}
	tab.add(key, 2)
	tab.merge(key, agg.State{N: 3, Sum: 9, MinV: 1, MaxV: 5})
	if tab.len() != 1 {
		t.Fatalf("%d entries", tab.len())
	}
	s := tab.states[0]
	if s.N != 4 || s.Sum != 11 {
		t.Fatalf("merged state %+v", s)
	}
}

// TestCellTableObs checks probe/resize counters flush into the registry
// and zero out locally.
func TestCellTableObs(t *testing.T) {
	reg := obs.New()
	tab := newCellTable(1, 0, 0)
	for i := 0; i < 100; i++ {
		tab.add([]match.ValueID{match.ValueID(i)}, 1)
	}
	if tab.resizes == 0 {
		t.Fatal("expected resizes")
	}
	wantResizes := tab.resizes
	tab.flushObs(reg)
	if tab.probes != 0 || tab.resizes != 0 {
		t.Fatal("flushObs did not zero local counts")
	}
	snap := reg.Snapshot()
	if snap.Counters["celltable.resizes"] != wantResizes {
		t.Fatalf("celltable.resizes = %d, want %d", snap.Counters["celltable.resizes"], wantResizes)
	}
	// Nil registry must be a no-op, not a panic.
	tab.flushObs(nil)
}

// TestCellTableZeroAllocs pins the allocation-free steady state of the
// cell-table path: folding measures into existing cells allocates nothing,
// and refilling a warmed (pre-grown) table after reset allocates nothing
// either. A regression here reintroduces per-cell garbage in every
// algorithm built on the table.
func TestCellTableZeroAllocs(t *testing.T) {
	const kw, n = 3, 512
	keys := make([][]match.ValueID, n)
	for i := range keys {
		keys[i] = []match.ValueID{match.ValueID(i), match.ValueID(i % 7), match.ValueID(i % 3)}
	}
	tab := newCellTable(kw, n, 0)
	for _, k := range keys {
		tab.add(k, 1)
	}

	if avg := testing.AllocsPerRun(20, func() {
		for _, k := range keys {
			tab.add(k, 1)
		}
	}); avg != 0 {
		t.Fatalf("accumulate into existing cells: %.1f allocs per run, want 0", avg)
	}

	if avg := testing.AllocsPerRun(20, func() {
		tab.reset()
		for _, k := range keys {
			tab.add(k, 1)
		}
	}); avg != 0 {
		t.Fatalf("refill after reset: %.1f allocs per run, want 0", avg)
	}
}
