package cube

import (
	"x3/internal/lattice"
	"x3/internal/match"
)

// MeasuredProps holds summarizability properties observed by scanning a
// concrete fact table: Disjoint(a,s) iff no fact matched more than one
// value, Covered(a,s) iff every fact matched at least one. For that data
// they are exact, so they are valid guarantees to hand the CUST algorithms
// — the experimental §4.1/§4.2 setups "controlled the input" this way.
// Schema-derived properties (package schema) are the a-priori alternative.
type MeasuredProps struct {
	dis [][]bool
	cov [][]bool
}

// Disjoint implements Props.
func (m *MeasuredProps) Disjoint(a, s int) bool { return m.dis[a][s] }

// Covered implements Props.
func (m *MeasuredProps) Covered(a, s int) bool { return m.cov[a][s] }

// GloballyDisjoint reports whether disjointness holds at every live state.
func (m *MeasuredProps) GloballyDisjoint() bool {
	for _, row := range m.dis {
		for _, v := range row {
			if !v {
				return false
			}
		}
	}
	return true
}

// GloballyCovered reports whether coverage holds at every live state.
func (m *MeasuredProps) GloballyCovered() bool {
	for _, row := range m.cov {
		for _, v := range row {
			if !v {
				return false
			}
		}
	}
	return true
}

// MeasureProps scans the source once and returns the observed properties.
func MeasureProps(lat *lattice.Lattice, src Source) (*MeasuredProps, error) {
	m := &MeasuredProps{}
	for a := 0; a < lat.NumAxes(); a++ {
		live := lat.Ladders[a].Len()
		if lat.Ladders[a].HasDeleted() {
			live--
		}
		dis := make([]bool, live)
		cov := make([]bool, live)
		for s := range dis {
			dis[s], cov[s] = true, true
		}
		m.dis = append(m.dis, dis)
		m.cov = append(m.cov, cov)
	}
	err := src.Each(func(f *match.Fact) error {
		for a := range f.Axes {
			for s := range f.Axes[a] {
				n := len(f.Axes[a][s])
				if n > 1 {
					m.dis[a][s] = false
				}
				if n == 0 {
					m.cov[a][s] = false
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

var _ Props = (*MeasuredProps)(nil)
