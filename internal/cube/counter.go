package cube

import (
	"fmt"

	"x3/internal/agg"
	"x3/internal/match"
)

// Counter is the counter-based algorithm of §3.3: one counter per
// (cuboid, group), incremented as facts stream by. It needs no
// summarizability at all, but its state is the whole cube: when the
// counters outgrow the memory budget it hash-partitions the key space and
// re-scans the fact source once per partition (the paper needed 2 passes
// at 6 axes and 5 at 7 on the sparse Treebank cube, §4.6). A partition
// that still does not fit is split recursively (h mod m = r becomes
// h mod 2m ∈ {r, r+m}), so cells already emitted for completed partitions
// are never re-emitted.
//
// Counters live in per-cuboid cellTables (one table per lattice point,
// seeded with the cuboid id), so the hash that selects the partition is
// the same hash that places the cell — one hash computation per group
// membership, and no per-cell key packing or map-bucket allocation.
type Counter struct{}

// Name implements Algorithm.
func (Counter) Name() string { return "COUNTER" }

// Requires implements Algorithm: COUNTER is always correct.
func (Counter) Requires() Requirements { return Requirements{} }

// counterEntryOverhead approximates the bytes of table bookkeeping per
// counter beyond the key bytes (slot word, arena slack, aggregate state).
const counterEntryOverhead = 64

// maxCounterPartitions bounds the recursive splitting; beyond this even a
// single partition's counters cannot fit and the run fails.
const maxCounterPartitions = 1 << 16

// counterPart selects the key-space slice hash%mod == res.
type counterPart struct {
	mod uint64
	res uint64
}

// Run implements Algorithm.
func (c Counter) Run(in *Input, sink Sink) (Stats, error) {
	st := Stats{Algorithm: c.Name()}
	defer in.observe(&st)()
	work := []counterPart{{mod: 1, res: 0}}
	for len(work) > 0 {
		if err := in.ctxErr(); err != nil {
			return st, err
		}
		part := work[0]
		work = work[1:]
		ok, err := c.pass(in, sink, &st, part)
		if err != nil {
			return st, err
		}
		if !ok {
			if part.mod*2 > maxCounterPartitions {
				return st, fmt.Errorf("cube: COUNTER partition does not fit budget even at 1/%d of the key space", part.mod)
			}
			st.Restarts++
			work = append(work, counterPart{mod: part.mod * 2, res: part.res},
				counterPart{mod: part.mod * 2, res: part.res + part.mod})
		}
	}
	st.PeakBytes = in.budget().HighWater()
	return st, nil
}

// pass scans the source once, counting only keys in the given partition.
// It reports false (emitting nothing) when the partition's counters
// overflow the budget. Partition membership uses hashCell, which is
// deterministic, so a key lands in the same partition on every re-scan.
func (c Counter) pass(in *Input, sink Sink, st *Stats, part counterPart) (ok bool, err error) {
	lat := in.Lattice
	d := lat.NumAxes()

	point := make([]uint8, d)
	key := make([]match.ValueID, 0, d)

	tables := make([]*cellTable, lat.Size())
	var reserved int64
	defer func() { in.budget().Release(reserved) }()
	fits := true

	var facts int
	err = in.Source.Each(func(f *match.Fact) error {
		if !fits {
			return nil
		}
		if facts++; facts%ctxCheckEvery == 0 {
			if cerr := in.ctxErr(); cerr != nil {
				return cerr
			}
		}
		var rec func(a int)
		rec = func(a int) {
			if !fits {
				return
			}
			if a == d {
				pid := lat.ID(point)
				h := hashCell(pid, key)
				if part.mod > 1 && h%part.mod != part.res {
					return
				}
				tab := tables[pid]
				if tab == nil {
					tab = newCellTable(len(key), 0, pid)
					tables[pid] = tab
				}
				e := tab.findHashed(h, key)
				if e < 0 {
					need := int64(4+4*len(key)) + counterEntryOverhead
					if !in.budget().TryReserve(need) {
						fits = false
						return
					}
					reserved += need
					e = tab.insertHashed(h, key)
				}
				tab.states[e].Add(f.Measure)
				return
			}
			lad := lat.Ladders[a]
			// Option 1: delete the axis (if LND permits).
			if lad.HasDeleted() {
				point[a] = uint8(lad.Len() - 1)
				rec(a + 1)
			}
			// Option 2: each live state, each matched value.
			live := in.liveStates(a)
			for s := 0; s < live; s++ {
				vs := f.Values(a, s)
				if len(vs) == 0 {
					continue
				}
				point[a] = uint8(s)
				for _, v := range vs {
					key = append(key, v)
					rec(a + 1)
					key = key[:len(key)-1]
				}
			}
		}
		rec(0)
		return nil
	})
	st.Passes++
	defer func() {
		for _, tab := range tables {
			if tab != nil {
				tab.flushObs(in.Reg)
			}
		}
	}()
	if err != nil {
		return false, err
	}
	if !fits {
		return false, nil
	}
	minSup := in.minSupport()
	for pid, tab := range tables {
		if tab == nil {
			continue
		}
		err := tab.each(func(k []match.ValueID, s *agg.State) error {
			if s.N < minSup {
				return nil // iceberg threshold
			}
			if err := sink.Cell(uint32(pid), k, *s); err != nil {
				return err
			}
			st.Cells++
			return nil
		})
		if err != nil {
			return false, err
		}
	}
	return true, nil
}

var _ Algorithm = Counter{}
