package cube

import (
	"fmt"
	"hash/maphash"

	"x3/internal/agg"
	"x3/internal/match"
)

// Counter is the counter-based algorithm of §3.3: one counter per
// (cuboid, group), incremented as facts stream by. It needs no
// summarizability at all, but its state is the whole cube: when the
// counters outgrow the memory budget it hash-partitions the key space and
// re-scans the fact source once per partition (the paper needed 2 passes
// at 6 axes and 5 at 7 on the sparse Treebank cube, §4.6). A partition
// that still does not fit is split recursively (h mod m = r becomes
// h mod 2m ∈ {r, r+m}), so cells already emitted for completed partitions
// are never re-emitted.
type Counter struct{}

// Name implements Algorithm.
func (Counter) Name() string { return "COUNTER" }

// Requires implements Algorithm: COUNTER is always correct.
func (Counter) Requires() Requirements { return Requirements{} }

// counterEntryOverhead approximates the bytes of map bookkeeping per
// counter beyond the key bytes (bucket slot, header, aggregate state).
const counterEntryOverhead = 64

// maxCounterPartitions bounds the recursive splitting; beyond this even a
// single partition's counters cannot fit and the run fails.
const maxCounterPartitions = 1 << 16

// counterPart selects the key-space slice hash%mod == res.
type counterPart struct {
	mod uint64
	res uint64
}

// Run implements Algorithm.
func (c Counter) Run(in *Input, sink Sink) (Stats, error) {
	st := Stats{Algorithm: c.Name()}
	defer in.observe(&st)()
	seed := maphash.MakeSeed()
	work := []counterPart{{mod: 1, res: 0}}
	for len(work) > 0 {
		part := work[0]
		work = work[1:]
		ok, err := c.pass(in, sink, &st, part, seed)
		if err != nil {
			return st, err
		}
		if !ok {
			if part.mod*2 > maxCounterPartitions {
				return st, fmt.Errorf("cube: COUNTER partition does not fit budget even at 1/%d of the key space", part.mod)
			}
			st.Restarts++
			work = append(work, counterPart{mod: part.mod * 2, res: part.res},
				counterPart{mod: part.mod * 2, res: part.res + part.mod})
		}
	}
	st.PeakBytes = in.budget().HighWater()
	return st, nil
}

// pass scans the source once, counting only keys in the given partition.
// It reports false (emitting nothing) when the partition's counters
// overflow the budget.
func (c Counter) pass(in *Input, sink Sink, st *Stats, part counterPart, seed maphash.Seed) (ok bool, err error) {
	lat := in.Lattice
	d := lat.NumAxes()

	point := make([]uint8, d)
	key := make([]match.ValueID, 0, d)
	keyBuf := make([]byte, 0, 4+4*d)

	counters := make(map[string]*agg.State)
	var reserved int64
	defer func() { in.budget().Release(reserved) }()
	fits := true

	err = in.Source.Each(func(f *match.Fact) error {
		if !fits {
			return nil
		}
		var rec func(a int)
		rec = func(a int) {
			if !fits {
				return
			}
			if a == d {
				pid := lat.ID(point)
				keyBuf = keyBuf[:0]
				keyBuf = append(keyBuf, byte(pid>>24), byte(pid>>16), byte(pid>>8), byte(pid))
				keyBuf = packKey(keyBuf, key)
				if part.mod > 1 {
					if maphash.Bytes(seed, keyBuf)%part.mod != part.res {
						return
					}
				}
				// The string(keyBuf) map read does not allocate; only a
				// brand-new counter copies the key.
				s, exists := counters[string(keyBuf)]
				if !exists {
					need := int64(len(keyBuf)) + counterEntryOverhead
					if !in.budget().TryReserve(need) {
						fits = false
						return
					}
					reserved += need
					s = &agg.State{}
					counters[string(keyBuf)] = s
				}
				s.Add(f.Measure)
				return
			}
			lad := lat.Ladders[a]
			// Option 1: delete the axis (if LND permits).
			if lad.HasDeleted() {
				point[a] = uint8(lad.Len() - 1)
				rec(a + 1)
			}
			// Option 2: each live state, each matched value.
			live := in.liveStates(a)
			for s := 0; s < live; s++ {
				vs := f.Values(a, s)
				if len(vs) == 0 {
					continue
				}
				point[a] = uint8(s)
				for _, v := range vs {
					key = append(key, v)
					rec(a + 1)
					key = key[:len(key)-1]
				}
			}
		}
		rec(0)
		return nil
	})
	st.Passes++
	if err != nil {
		return false, err
	}
	if !fits {
		return false, nil
	}
	minSup := in.minSupport()
	for k, s := range counters {
		if s.N < minSup {
			continue // iceberg threshold
		}
		b := []byte(k)
		pid := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
		if err := sink.Cell(pid, unpackKey(b[4:]), *s); err != nil {
			return false, err
		}
		st.Cells++
	}
	return true, nil
}

var _ Algorithm = Counter{}
