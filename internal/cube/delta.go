package cube

import (
	"fmt"
	"sort"

	"x3/internal/agg"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
)

// Delta is the in-memory delta cell table of the incremental-maintenance
// path: appended facts are folded into per-cuboid arena cell tables (the
// PR 2 accumulation kernel) until the serving layer flushes them as a
// sorted delta cell file. Unlike Maintain — which mutates a full
// map-backed Result in place — a Delta accumulates only the materialized
// cuboids of its keep set, holds keys in flat arenas, and can be
// streamed out and reset without touching the base generation.
//
// A Delta is not safe for concurrent use; the serving layer guards it
// with the store mutex.
type Delta struct {
	lat    *lattice.Lattice
	keep   map[uint32]bool // nil: every cuboid of the lattice
	tables map[uint32]*cellTable
	pids   []uint32 // keys of tables, maintained sorted
	facts  int64
}

// NewDelta returns an empty delta accumulating the cuboids in keep (the
// base generation's materialized point set); nil keep accumulates every
// cuboid of the lattice.
func NewDelta(lat *lattice.Lattice, keep []uint32) *Delta {
	d := &Delta{lat: lat, tables: make(map[uint32]*cellTable)}
	if keep != nil {
		d.keep = make(map[uint32]bool, len(keep))
		for _, p := range keep {
			d.keep[p] = true
		}
	}
	return d
}

// Facts returns the number of facts absorbed since the last Reset.
func (d *Delta) Facts() int64 { return d.facts }

// Cells returns the number of distinct (cuboid, group) cells held.
func (d *Delta) Cells() int64 {
	var n int64
	for _, pid := range d.pids {
		n += int64(d.tables[pid].len())
	}
	return n
}

// Points returns the cuboids that currently hold cells, sorted.
func (d *Delta) Points() []uint32 {
	return append([]uint32(nil), d.pids...)
}

// Absorb folds src's facts into the delta: the same combinatorial
// (cuboid, group) walk Maintain performs, restricted to the keep set.
// The facts must have been evaluated with the same dictionaries as every
// earlier absorb (match.EvaluateWith), so ValueIDs agree. Iceberg
// lattices are refused for the same reason Maintain refuses them:
// discarded below-threshold cells make increments unsound.
func (d *Delta) Absorb(src Source) (added int64, err error) {
	lat := d.lat
	if lat.Query.MinSupport > 1 {
		return 0, fmt.Errorf("cube: cannot maintain an iceberg cube (HAVING >= %d): below-threshold cells were discarded", lat.Query.MinSupport)
	}
	dim := lat.NumAxes()
	point := make([]uint8, dim)
	key := make([]match.ValueID, 0, dim)

	err = src.Each(func(f *match.Fact) error {
		added++
		var rec func(a int)
		rec = func(a int) {
			if a == dim {
				pid := lat.ID(point)
				if d.keep != nil && !d.keep[pid] {
					return
				}
				t := d.tables[pid]
				if t == nil {
					t = newCellTable(len(key), 0, pid)
					d.tables[pid] = t
					i := sort.Search(len(d.pids), func(i int) bool { return d.pids[i] >= pid })
					d.pids = append(d.pids, 0)
					copy(d.pids[i+1:], d.pids[i:])
					d.pids[i] = pid
				}
				t.add(key, f.Measure)
				return
			}
			lad := lat.Ladders[a]
			if lad.HasDeleted() {
				point[a] = uint8(lad.Len() - 1)
				rec(a + 1)
			}
			live := lad.Len()
			if lad.HasDeleted() {
				live--
			}
			for s := 0; s < live; s++ {
				vs := f.Values(a, s)
				if len(vs) == 0 {
					continue
				}
				point[a] = uint8(s)
				for _, v := range vs {
					key = append(key, v)
					rec(a + 1)
					key = key[:len(key)-1]
				}
			}
		}
		rec(0)
		return nil
	})
	d.facts += added
	return added, err
}

// EachCuboid streams cuboid pid's cells in insertion order (deterministic
// for a deterministic absorb sequence). The key slice is an arena view —
// valid only during the call.
func (d *Delta) EachCuboid(pid uint32, fn func(key []match.ValueID, s agg.State) error) error {
	t := d.tables[pid]
	if t == nil {
		return nil
	}
	return t.each(func(key []match.ValueID, s *agg.State) error {
		return fn(key, *s)
	})
}

// CuboidCells returns the number of cells held for cuboid pid.
func (d *Delta) CuboidCells(pid uint32) int64 {
	t := d.tables[pid]
	if t == nil {
		return 0
	}
	return int64(t.len())
}

// Each streams every cell, cuboids in ascending pid order — the shape a
// flush feeds to a cell-file sink.
func (d *Delta) Each(fn func(point uint32, key []match.ValueID, s agg.State) error) error {
	for _, pid := range d.pids {
		t := d.tables[pid]
		err := t.each(func(key []match.ValueID, s *agg.State) error {
			return fn(pid, key, *s)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Reset empties the delta after a flush. Tables are dropped rather than
// recycled: Absorb keys table existence off the map, so a kept-but-empty
// table would desynchronize the pid index.
func (d *Delta) Reset() {
	clear(d.tables)
	d.pids = d.pids[:0]
	d.facts = 0
}

// FlushObs folds the underlying cell tables' probe/resize counts into
// reg's celltable.* keys. Nil-registry safe.
func (d *Delta) FlushObs(reg *obs.Registry) {
	for _, pid := range d.pids {
		d.tables[pid].flushObs(reg)
	}
}
