package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeTimerHistogram(t *testing.T) {
	r := New()
	c := r.Counter("store.pool.hits")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if r.Counter("store.pool.hits") != c {
		t.Error("same name returned a different counter handle")
	}

	g := r.Gauge("cube.peak_bytes")
	g.Set(10)
	g.SetMax(7) // lower: ignored
	g.SetMax(25)
	if got := g.Value(); got != 25 {
		t.Errorf("gauge = %d, want 25", got)
	}

	tm := r.Timer("phase.sort")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(5 * time.Millisecond)
	if tm.Count() != 2 || tm.Total() != 7*time.Millisecond {
		t.Errorf("timer count=%d total=%v", tm.Count(), tm.Total())
	}

	h := r.Histogram("extsort.run.bytes")
	h.Observe(0)
	h.Observe(1)
	h.Observe(1000)
	h.Observe(-5) // clamps to 0
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}

	snap := r.Snapshot()
	if snap.Counters["store.pool.hits"] != 4 {
		t.Errorf("snapshot counter = %d", snap.Counters["store.pool.hits"])
	}
	if snap.Gauges["cube.peak_bytes"] != 25 {
		t.Errorf("snapshot gauge = %d", snap.Gauges["cube.peak_bytes"])
	}
	ts := snap.Timers["phase.sort"]
	if ts.Count != 2 || ts.MaxNS != int64(5*time.Millisecond) {
		t.Errorf("snapshot timer = %+v", ts)
	}
	hs := snap.Histograms["extsort.run.bytes"]
	if hs.Count != 4 || hs.Sum != 1001 {
		t.Errorf("snapshot histogram = %+v", hs)
	}
	// 0 and -5 land in bucket "0", 1 in "1", 1000 in "1023".
	if hs.Buckets["0"] != 2 || hs.Buckets["1"] != 1 || hs.Buckets["1023"] != 1 {
		t.Errorf("histogram buckets = %v", hs.Buckets)
	}
}

func TestSpans(t *testing.T) {
	r := New()
	sp := r.Span("match")
	sp.SetPeakBytes(4096)
	sp.End()
	sp.End() // double End is ignored
	r.Span("cube.buc").End()
	snap := r.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(snap.Spans))
	}
	if snap.Spans[0].Name != "match" || snap.Spans[0].PeakBytes != 4096 {
		t.Errorf("span[0] = %+v", snap.Spans[0])
	}
	if snap.Spans[0].DurationNS < 0 || snap.Spans[1].StartNS < snap.Spans[0].StartNS {
		t.Errorf("span ordering: %+v", snap.Spans)
	}
}

func TestWriteJSON(t *testing.T) {
	r := New()
	r.Counter("a.b").Add(1)
	r.Gauge("g").Set(2)
	r.Span("p").End()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if snap.Counters["a.b"] != 1 || snap.Gauges["g"] != 2 || len(snap.Spans) != 1 {
		t.Errorf("round-trip snapshot = %+v", snap)
	}
	if !strings.Contains(buf.String(), `"a.b": 1`) {
		t.Errorf("JSON missing counter key: %s", buf.String())
	}
}

// TestNilRegistryIsFreeOfAllocations pins the tentpole contract: with no
// registry attached, every instrumentation call is a no-op that allocates
// nothing, so production paths may be instrumented unconditionally.
func TestNilRegistryIsFreeOfAllocations(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		r.Counter("store.pool.hits").Add(1)
		r.Counter("x").Inc()
		r.Gauge("g").Set(7)
		r.Gauge("g").SetMax(9)
		r.Timer("t").Observe(time.Second)
		r.Histogram("h").Observe(123)
		sp := r.Span("phase")
		sp.SetPeakBytes(1)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil-registry instrumentation allocates %.1f per run, want 0", allocs)
	}
	// Nil handles read as zero.
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 ||
		r.Timer("x").Count() != 0 || r.Histogram("x").Count() != 0 {
		t.Error("nil handles must read as zero")
	}
	if got := r.Snapshot(); len(got.Counters) != 0 {
		t.Errorf("nil snapshot = %+v", got)
	}
}

// TestHotPathHandleAllocations: Add on a live handle must not allocate
// either (handles are meant to be cached by hot loops).
func TestHotPathHandleAllocations(t *testing.T) {
	r := New()
	c := r.Counter("hot")
	g := r.Gauge("hot")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.SetMax(3)
	})
	if allocs != 0 {
		t.Errorf("live-handle Add allocates %.1f per run, want 0", allocs)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(i))
				r.Timer("t").Observe(time.Duration(i))
				r.Histogram("h").Observe(int64(i))
			}
			r.Span("s").End()
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c"] != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", snap.Counters["c"])
	}
	if snap.Gauges["g"] != 999 {
		t.Errorf("concurrent gauge max = %d, want 999", snap.Gauges["g"])
	}
	if snap.Timers["t"].Count != 8000 || snap.Histograms["h"].Count != 8000 {
		t.Errorf("concurrent timer/histogram = %+v / %+v", snap.Timers["t"], snap.Histograms["h"])
	}
	if len(snap.Spans) != 8 {
		t.Errorf("concurrent spans = %d, want 8", len(snap.Spans))
	}
}
