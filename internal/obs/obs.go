// Package obs is the pipeline-wide observability layer: a lightweight,
// allocation-conscious metrics registry — counters, gauges, timers and
// histograms under hierarchical dotted keys such as "store.pool.hits",
// "extsort.runs.spilled" or "cube.buc.passes" — plus a per-run Trace of
// phase spans (match → sort → cube passes) carrying wall time and peak
// estimated memory.
//
// The registry exists so the paper's §4 comparisons (I/O passes, sort
// spills, buffer-pool behaviour) can be asserted against by tests and
// emitted as machine-readable JSON by the benchmark harness, giving later
// performance work a regression substrate.
//
// Nil-safety is the central design rule: a nil *Registry hands out nil
// handles, and every method on a nil handle does nothing and allocates
// nothing. Instrumented hot paths therefore cost one predictable branch
// when observability is off; tests pin this with testing.AllocsPerRun.
// Handles are cheap to hold, safe for concurrent use, and should be
// resolved once (outside loops) by code on a hot path.
package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value.
type Gauge struct{ v atomic.Int64 }

// Set stores n. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n if n exceeds the stored value — peak
// tracking. Safe on a nil receiver.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the stored value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates durations: event count, total and maximum.
type Timer struct{ count, total, max atomic.Int64 }

// Observe folds one duration into the timer. Safe on a nil receiver.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	ns := int64(d)
	t.count.Add(1)
	t.total.Add(ns)
	for {
		cur := t.max.Load()
		if ns <= cur || t.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the summed duration (0 on a nil receiver).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total.Load())
}

// histBuckets is the number of power-of-two histogram buckets; bucket i
// counts values v with bits.Len64(v) == i, i.e. bucket 0 holds 0, bucket
// i>0 holds [2^(i-1), 2^i).
const histBuckets = 64

// Histogram counts int64 observations in power-of-two buckets — enough
// resolution for byte sizes, row counts and fan-outs without per-value
// allocation.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	buckets [histBuckets + 1]int64
}

// Observe folds one value into the histogram; negative values clamp to 0.
// Safe on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	h.mu.Lock()
	h.count++
	h.sum += v
	h.buckets[b]++
	h.mu.Unlock()
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile extracts the q-quantile as the inclusive upper bound of the
// bucket holding the ceil(q*count)-th smallest observation. Because the
// buckets are whole powers of two, the result can overshoot the exact
// sorted-sample quantile by up to 2x at the tail — acceptable for the
// magnitude counters this type serves (byte sizes, fan-outs), but not
// for latency SLOs: route latency keys to the HDR type instead, whose
// error is bounded below 0.4%. TestHistogramQuantileErrorBound pins this
// bound.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(q*float64(h.count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for b, n := range h.buckets {
		cum += n
		if cum >= rank {
			if b >= histBuckets {
				return 1<<63 - 1
			}
			return int64(1)<<uint(b) - 1
		}
	}
	return 0
}

// Registry is a named collection of metrics and a trace of phase spans.
// The zero value is not usable; call New. All methods are safe for
// concurrent use and safe on a nil receiver (returning nil handles).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
	hdrs     map[string]*HDR
	spans    []SpanRecord
	start    time.Time
}

// New returns an empty registry whose trace clock starts now.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		hists:    map[string]*Histogram{},
		hdrs:     map[string]*HDR{},
		start:    time.Now(),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// A nil registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the timer registered under name, creating it on first use.
// A nil registry returns a nil (no-op) handle.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the histogram registered under name, creating it on
// first use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Span is an in-flight phase of the run trace. End records it; spans may
// nest and overlap freely (the trace is a flat list ordered by start).
type Span struct {
	r     *Registry
	name  string
	start time.Time
	peak  int64
	done  atomic.Bool
}

// Span starts a phase span. A nil registry returns a nil (no-op) span.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, start: time.Now()}
}

// SetPeakBytes attaches the phase's peak estimated memory. Safe on a nil
// receiver.
func (s *Span) SetPeakBytes(n int64) {
	if s != nil {
		atomic.StoreInt64(&s.peak, n)
	}
}

// End records the span in the registry trace; the second and later End
// calls are ignored. Safe on a nil receiver.
func (s *Span) End() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	rec := SpanRecord{
		Name:       s.name,
		StartNS:    s.start.Sub(s.r.start).Nanoseconds(),
		DurationNS: time.Since(s.start).Nanoseconds(),
		PeakBytes:  atomic.LoadInt64(&s.peak),
	}
	s.r.mu.Lock()
	s.r.spans = append(s.r.spans, rec)
	s.r.mu.Unlock()
}

// SpanRecord is one completed phase of the trace.
type SpanRecord struct {
	Name string `json:"name"`
	// StartNS is the offset from registry creation.
	StartNS    int64 `json:"start_ns"`
	DurationNS int64 `json:"duration_ns"`
	// PeakBytes is the phase's peak estimated memory (0 when not tracked).
	PeakBytes int64 `json:"peak_bytes,omitempty"`
}

// TimerSnapshot is the exported state of one timer.
type TimerSnapshot struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MaxNS   int64 `json:"max_ns"`
}

// HistogramSnapshot is the exported state of one histogram; Buckets maps
// each non-empty bucket's inclusive upper bound to its count.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Buckets map[string]int64 `json:"buckets"`
}

// Snapshot is a point-in-time copy of everything the registry holds, in
// the machine-readable shape the -metrics flag emits.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Timers     map[string]TimerSnapshot     `json:"timers,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// HDR carries the latency histograms' quantile summaries (p50..p999
	// in observed units, nanoseconds by convention).
	HDR   map[string]HDRStats `json:"hdr,omitempty"`
	Spans []SpanRecord        `json:"spans,omitempty"`
}

// Snapshot copies the registry state. A nil registry yields an empty
// (non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Counters: map[string]int64{}}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		snap.Counters[k] = c.Value()
	}
	if len(r.gauges) > 0 {
		snap.Gauges = map[string]int64{}
		for k, g := range r.gauges {
			snap.Gauges[k] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		snap.Timers = map[string]TimerSnapshot{}
		for k, t := range r.timers {
			snap.Timers[k] = TimerSnapshot{
				Count:   t.count.Load(),
				TotalNS: t.total.Load(),
				MaxNS:   t.max.Load(),
			}
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = map[string]HistogramSnapshot{}
		for k, h := range r.hists {
			h.mu.Lock()
			hs := HistogramSnapshot{Count: h.count, Sum: h.sum, Buckets: map[string]int64{}}
			for b, n := range h.buckets {
				if n > 0 {
					hs.Buckets[bucketLabel(b)] = n
				}
			}
			h.mu.Unlock()
			snap.Histograms[k] = hs
		}
	}
	if len(r.hdrs) > 0 {
		snap.HDR = map[string]HDRStats{}
		for k, h := range r.hdrs {
			snap.HDR[k] = h.Snapshot().Stats()
		}
	}
	if len(r.spans) > 0 {
		snap.Spans = make([]SpanRecord, len(r.spans))
		copy(snap.Spans, r.spans)
		sort.SliceStable(snap.Spans, func(i, j int) bool {
			return snap.Spans[i].StartNS < snap.Spans[j].StartNS
		})
	}
	return snap
}

// bucketLabel renders a histogram bucket's inclusive upper bound.
func bucketLabel(b int) string {
	if b >= histBuckets {
		return "inf"
	}
	// Upper bound of bucket b is 2^b - 1 (bucket 0 holds exactly 0).
	v := uint64(1)<<uint(b) - 1
	return u64str(v)
}

// u64str formats without fmt to keep the package dependency-light.
func u64str(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// WriteJSON writes the snapshot as indented JSON (keys sorted, so output
// is diff-stable apart from measured values).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteJSONFile writes the snapshot to path, replacing any existing file.
func (r *Registry) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
