package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactQuantile is the reference: the ceil(q*n)-th smallest of a sorted
// sample — the same rank convention HDRSnapshot.Quantile uses.
func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// relErr is |got-want| / max(want, 1).
func relErr(got, want int64) float64 {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	den := float64(want)
	if den < 1 {
		den = 1
	}
	return d / den
}

// hdrDistributions are the sample shapes of the accuracy sweep: uniform,
// Zipf-skewed (a hot head and a long tail, like hot-key latencies) and
// bimodal (cache hit vs miss).
func hdrDistributions(rng *rand.Rand, n int) map[string][]int64 {
	uniform := make([]int64, n)
	for i := range uniform {
		uniform[i] = 1 + rng.Int63n(50_000_000) // 1ns .. 50ms
	}
	zipf := make([]int64, n)
	zg := rand.NewZipf(rng, 1.2, 1, 10_000_000)
	for i := range zipf {
		zipf[i] = 100 + int64(zg.Uint64())
	}
	bimodal := make([]int64, n)
	for i := range bimodal {
		if rng.Float64() < 0.9 {
			bimodal[i] = 20_000 + rng.Int63n(5_000) // ~25µs cache hits
		} else {
			bimodal[i] = 4_000_000 + rng.Int63n(1_000_000) // ~4ms misses
		}
	}
	return map[string][]int64{"uniform": uniform, "zipf": zipf, "bimodal": bimodal}
}

// TestHDRQuantileAccuracy is the satellite acceptance test: across three
// distribution shapes, every extracted quantile is within 1% relative
// error of the exact sorted-sample quantile.
func TestHDRQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	quantiles := []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1.0}
	for name, vals := range hdrDistributions(rng, 50_000) {
		h := &HDR{}
		for _, v := range vals {
			h.Observe(v)
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		snap := h.Snapshot()
		if snap.Count != int64(len(vals)) {
			t.Fatalf("%s: snapshot count %d, want %d", name, snap.Count, len(vals))
		}
		for _, q := range quantiles {
			got := snap.Quantile(q)
			want := exactQuantile(sorted, q)
			if e := relErr(got, want); e > 0.01 {
				t.Errorf("%s p%g: got %d, exact %d (rel err %.4f > 1%%)", name, q*100, got, want, e)
			}
		}
		// The reconstructed mean carries the same bounded error.
		var sum int64
		for _, v := range vals {
			sum += v
		}
		exactMean := float64(sum) / float64(len(vals))
		if e := math.Abs(snap.Mean()-exactMean) / exactMean; e > 0.01 {
			t.Errorf("%s mean: got %.1f, exact %.1f (rel err %.4f)", name, snap.Mean(), exactMean, e)
		}
		// Max is tracked exactly.
		if snap.Max != sorted[len(sorted)-1] {
			t.Errorf("%s max: got %d, want %d", name, snap.Max, sorted[len(sorted)-1])
		}
	}
}

// TestHDRMergeEqualsUnion is the mergeability contract: merging the
// snapshots of two independently observed streams yields bucket-for-
// bucket the snapshot of one histogram that observed the union.
func TestHDRMergeEqualsUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, u := &HDR{}, &HDR{}, &HDR{}
	for i := 0; i < 20_000; i++ {
		v := 1 + rng.Int63n(int64(1)<<uint(10+rng.Intn(30)))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		u.Observe(v)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	union := u.Snapshot()
	if merged.Count != union.Count || merged.Sum != union.Sum || merged.Max != union.Max {
		t.Fatalf("merged (count %d sum %d max %d) != union (count %d sum %d max %d)",
			merged.Count, merged.Sum, merged.Max, union.Count, union.Sum, union.Max)
	}
	for i := range union.Counts {
		if merged.Counts[i] != union.Counts[i] {
			t.Fatalf("bucket %d: merged %d, union %d", i, merged.Counts[i], union.Counts[i])
		}
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if merged.Quantile(q) != union.Quantile(q) {
			t.Errorf("p%g: merged %d != union %d", q*100, merged.Quantile(q), union.Quantile(q))
		}
	}
	// Merging into a zero-value snapshot works (per-worker aggregation
	// starts from empty).
	var zero HDRSnapshot
	zero.Merge(a.Snapshot())
	zero.Merge(b.Snapshot())
	if zero.Count != union.Count || zero.Quantile(0.99) != union.Quantile(0.99) {
		t.Errorf("zero-based merge: count %d p99 %d, want %d / %d",
			zero.Count, zero.Quantile(0.99), union.Count, union.Quantile(0.99))
	}
}

// TestHistogramQuantileErrorBound pins the defect that routed latency
// keys to the HDR type: the power-of-two Histogram's p99 overshoots by
// up to 2x at the tail (it reports the bucket's upper bound), while the
// HDR histogram stays within 1% on the same stream.
func TestHistogramQuantileErrorBound(t *testing.T) {
	old, hdr := &Histogram{}, &HDR{}
	// Every observation is 1025ns — just past a power of two, the worst
	// case for power-of-two buckets ([1024, 2047] reports 2047).
	const v = 1025
	for i := 0; i < 1000; i++ {
		old.Observe(v)
		hdr.Observe(v)
	}
	oldP99 := old.Quantile(0.99)
	if e := relErr(oldP99, v); e <= 0.01 {
		t.Fatalf("old histogram p99 %d unexpectedly accurate (rel err %.4f); the 2x bound no longer motivates HDR", oldP99, e)
	}
	// ... but never past the bucket's upper bound: 2x - 1.
	if oldP99 < v || oldP99 >= 2*v {
		t.Fatalf("old histogram p99 %d outside its documented [v, 2v) bound for v=%d", oldP99, v)
	}
	if got := hdr.Quantile(0.99); relErr(got, v) > 0.01 {
		t.Fatalf("hdr p99 %d off by more than 1%% from %d", got, v)
	}
}

// TestHDRConcurrentObserve hammers one histogram from many goroutines;
// the final count and sum must be exact (run under -race in make race).
func TestHDRConcurrentObserve(t *testing.T) {
	h := &HDR{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), int64(workers*per); got != want {
		t.Fatalf("count %d, want %d", got, want)
	}
	if got, want := h.Snapshot().Max, int64(workers*per-1); got != want {
		t.Fatalf("max %d, want %d", got, want)
	}
}

// TestHDRNilSafety extends the package's nil-handle rule to the new type.
func TestHDRNilSafety(t *testing.T) {
	var r *Registry
	h := r.HDR("nil.latency")
	if h != nil {
		t.Fatal("nil registry returned a non-nil HDR handle")
	}
	h.Observe(5)
	h.ObserveDuration(time.Millisecond)
	if h.Count() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("nil HDR handle recorded something")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil HDR snapshot non-empty")
	}
}

// TestHDRRegistrySnapshot checks the JSON export path: quantile stats
// appear under the registered key, and clamping handles edge values.
func TestHDRRegistrySnapshot(t *testing.T) {
	r := New()
	h := r.HDR("test.latency")
	if r.HDR("test.latency") != h {
		t.Fatal("re-registration minted a second histogram")
	}
	h.Observe(-5)            // clamps to 0
	h.Observe(1<<62 + 12345) // clamps to hdrMaxValue
	h.ObserveDuration(time.Microsecond)
	snap := r.Snapshot()
	st, ok := snap.HDR["test.latency"]
	if !ok {
		t.Fatalf("snapshot missing hdr key: %+v", snap.HDR)
	}
	if st.Count != 3 {
		t.Fatalf("count %d, want 3", st.Count)
	}
	if st.Max != hdrMaxValue {
		t.Fatalf("max %d, want clamp %d", st.Max, int64(hdrMaxValue))
	}
}
