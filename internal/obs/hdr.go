package obs

// This file is the latency side of the registry: an HDR-style histogram
// with sub-power-of-two resolution. The original Histogram (obs.go) keeps
// one bucket per power of two — fine for byte sizes and fan-outs, but a
// p99 extracted from it can sit anywhere inside a bucket whose bounds are
// 2x apart, which is useless as an SLO gate. The HDR type splits every
// power of two into 2^hdrSubBits linear sub-buckets, bounding the
// relative quantile error at 2^-(hdrSubBits+1) (< 0.4%), while staying a
// fixed-size, lock-free, allocation-free structure.
//
// Latency keys (serve.answer.latency, serve.http.latency, the load
// harness's per-phase recorders) belong here; the coarse Histogram stays
// for cheap magnitude counters. Snapshots are mergeable — merge(snap a,
// snap b) is exactly the histogram of the union of observations — so
// per-worker recorders can aggregate without sharing a cache line.

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// hdrSubBits is the number of linear sub-bucket bits per power of
	// two: 128 sub-buckets bound the relative error of any recorded
	// value (and so of any extracted quantile) at 1/256 < 0.4%.
	hdrSubBits = 7
	// hdrSubBuckets is the linear sub-bucket count per octave; values
	// below it are recorded exactly.
	hdrSubBuckets = 1 << hdrSubBits
	// hdrOctaves is the number of log-linear octaves above the exact
	// range: exponents hdrSubBits..63.
	hdrOctaves = 64 - hdrSubBits
	// hdrBuckets is the total bucket count.
	hdrBuckets = hdrSubBuckets + hdrOctaves*hdrSubBuckets
	// hdrMaxValue caps observations so bucket representatives never
	// overflow int64 (2^62-1 ns is ~146 years of latency — a clamp, not
	// a restriction).
	hdrMaxValue = 1<<62 - 1
)

// HDR is a high-dynamic-range histogram of non-negative int64
// observations (nanoseconds, by convention) with bounded relative error.
// The zero value is ready to use; all methods are safe for concurrent
// use and safe on a nil receiver.
type HDR struct {
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	counts [hdrBuckets]atomic.Int64
}

// hdrIndex maps a value to its bucket.
func hdrIndex(v int64) int {
	if v < hdrSubBuckets {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1
	sub := int(v>>(uint(e)-hdrSubBits)) & (hdrSubBuckets - 1)
	return hdrSubBuckets + (e-hdrSubBits)*hdrSubBuckets + sub
}

// hdrValue returns the representative value of bucket i: the midpoint,
// so the worst-case error against any member is half the bucket width.
func hdrValue(i int) int64 {
	if i < hdrSubBuckets {
		return int64(i)
	}
	oct := (i - hdrSubBuckets) / hdrSubBuckets
	sub := (i - hdrSubBuckets) % hdrSubBuckets
	e := uint(oct + hdrSubBits)
	low := int64(1)<<e + int64(sub)<<(e-hdrSubBits)
	width := int64(1) << (e - hdrSubBits)
	return low + width/2
}

// Observe folds one value into the histogram; values clamp to
// [0, hdrMaxValue]. Safe on a nil receiver.
func (h *HDR) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if v > hdrMaxValue {
		v = hdrMaxValue
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.counts[hdrIndex(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds. Safe on a nil
// receiver.
func (h *HDR) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations (0 on a nil receiver).
func (h *HDR) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile extracts the q-quantile (0 < q <= 1) from the live histogram.
// See HDRSnapshot.Quantile for the contract.
func (h *HDR) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Snapshot copies the histogram state for merging and quantile
// extraction. Concurrent Observe calls may straddle the copy; the
// snapshot is internally consistent (its Count equals the sum of its
// bucket counts). A nil receiver yields an empty snapshot.
func (h *HDR) Snapshot() HDRSnapshot {
	var s HDRSnapshot
	if h == nil {
		return s
	}
	s.Counts = make([]int64, hdrBuckets)
	for i := range h.counts {
		n := h.counts[i].Load()
		s.Counts[i] = n
		s.Count += n
		s.Sum += hdrValue(i) * n
	}
	s.Max = h.max.Load()
	return s
}

// HDRSnapshot is a point-in-time copy of an HDR histogram. The zero
// value is an empty snapshot ready to Merge into.
type HDRSnapshot struct {
	Count int64
	// Sum is approximate: it is reconstructed from bucket
	// representatives, so it carries the same bounded relative error as
	// the quantiles and stays exactly mergeable.
	Sum    int64
	Max    int64
	Counts []int64
}

// Merge folds o into s: the result is exactly the snapshot of the union
// of the two observation streams.
func (s *HDRSnapshot) Merge(o HDRSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Counts == nil {
		s.Counts = make([]int64, hdrBuckets)
	}
	for i, n := range o.Counts {
		s.Counts[i] += n
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile extracts the q-quantile: the representative value of the
// bucket holding the ceil(q*Count)-th smallest observation. q clamps to
// (0, 1]; an empty snapshot yields 0. The result is within half a
// bucket width (relative error < 2^-(hdrSubBits+1)) of the exact
// sorted-sample quantile.
func (s HDRSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, n := range s.Counts {
		cum += n
		if cum >= rank {
			return hdrValue(i)
		}
	}
	return s.Max
}

// Mean returns the (bucket-representative) mean observation.
func (s HDRSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// HDRStats is the exported JSON form of one HDR histogram: the standard
// latency quantiles, in the unit observed (nanoseconds by convention).
type HDRStats struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`
	Max   int64 `json:"max"`
}

// Stats summarizes the snapshot.
func (s HDRSnapshot) Stats() HDRStats {
	return HDRStats{
		Count: s.Count,
		Sum:   s.Sum,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   s.Max,
	}
}

// HDR returns the HDR histogram registered under name, creating it on
// first use. A nil registry returns a nil (no-op) handle.
func (r *Registry) HDR(name string) *HDR {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hdrs[name]
	if !ok {
		h = &HDR{}
		r.hdrs[name] = h
	}
	return h
}
