package sjoin

import (
	"x3/internal/pattern"
	"x3/internal/xmltree"
)

// EvalAxisHolistic evaluates a fact-relative axis path with a single
// holistic pass in the style of PathStack (Bruno, Koudas, Srivastava:
// "Holistic Twig Joins"), instead of the cascade of binary stack-tree
// joins EvalAxis performs. All streams — the fact items and one stream per
// step — are merged in one document-order sweep over linked stacks; leaf
// pushes enumerate the root-to-leaf chains, checking parent-child edges by
// level along the way.
//
// The two evaluators return identical (fact, leaf) pairs; tests and a
// benchmark compare them (cascaded joins materialize every intermediate
// result, the holistic join does not).
func EvalAxisHolistic(src Source, facts []Tagged, p pattern.Path) ([]Tagged, error) {
	if len(p) == 0 {
		return nil, nil
	}
	if p.HasPreds() {
		// Existence predicates need semi-joins the pure stack merge does
		// not express; fall back to the cascaded evaluator.
		return EvalAxis(src, facts, p)
	}
	// streams[0] is the fact stream; streams[i] the step i-1 stream.
	streams := make([][]stackEntry, len(p)+1)
	for _, f := range facts {
		streams[0] = append(streams[0], stackEntry{item: f.Item, fact: f.Fact})
	}
	for i, st := range p {
		items, err := tagStream(src, st)
		if err != nil {
			return nil, err
		}
		es := make([]stackEntry, len(items))
		for j, it := range items {
			es[j] = stackEntry{item: it, fact: it.ID}
		}
		streams[i+1] = es
	}

	stacks := make([][]stackEntry, len(streams))
	heads := make([]int, len(streams))
	var out []Tagged

	for {
		// qmin: the stream whose head starts first.
		qmin := -1
		for q := range streams {
			if heads[q] >= len(streams[q]) {
				continue
			}
			if qmin < 0 || streams[q][heads[q]].item.Start < streams[qmin][heads[qmin]].item.Start {
				qmin = q
			}
		}
		if qmin < 0 {
			break
		}
		next := streams[qmin][heads[qmin]]
		heads[qmin]++

		// Pop every stack entry that ends before this node starts.
		for q := range stacks {
			s := stacks[q]
			for len(s) > 0 && s[len(s)-1].item.End < next.item.Start {
				s = s[:len(s)-1]
			}
			stacks[q] = s
		}

		if qmin == 0 {
			stacks[0] = append(stacks[0], next)
			continue
		}
		// A step node only joins if some chain of open ancestors exists.
		if len(stacks[qmin-1]) == 0 {
			continue
		}
		next.ptr = len(stacks[qmin-1]) - 1
		stacks[qmin] = append(stacks[qmin], next)
		if qmin == len(streams)-1 {
			emitChains(stacks, qmin, len(stacks[qmin])-1, p, &out)
			// The leaf entry never has stack descendants; drop it now.
			stacks[qmin] = stacks[qmin][:len(stacks[qmin])-1]
		}
	}
	return dedup(out), nil
}

// stackEntry is one open node on a PathStack stack; ptr points to the top
// of the previous stack at push time, bounding the compatible ancestors.
type stackEntry struct {
	item Item
	fact xmltree.NodeID
	ptr  int
}

// emitChains enumerates every valid root-to-leaf chain ending at
// stacks[leafQ][leafIdx] and appends (fact, leaf) pairs.
func emitChains(stacks [][]stackEntry, leafQ, leafIdx int, p pattern.Path, out *[]Tagged) {
	leaf := stacks[leafQ][leafIdx]
	var rec func(q, maxIdx int, child stackEntry)
	rec = func(q, maxIdx int, child stackEntry) {
		// Edge between pattern level q (stack q) and its child at q+1:
		// p[q] is the step matched by the child.
		st := p[q]
		for i := 0; i <= maxIdx && i < len(stacks[q]); i++ {
			anc := stacks[q][i]
			if !anc.item.contains(child.item) {
				continue
			}
			if st.Axis == pattern.Child && anc.item.Level+1 != child.item.Level {
				continue
			}
			if q == 0 {
				*out = append(*out, Tagged{Item: leaf.item, Fact: anc.fact})
				continue
			}
			rec(q-1, anc.ptr, anc)
		}
	}
	rec(leafQ-1, leaf.ptr, leaf)
}
