package sjoin

import (
	"fmt"
	"math/rand"
	"testing"

	"x3/internal/dataset"
	"x3/internal/pattern"
	"x3/internal/xmltree"
)

// pairsOf renders tagged results as comparable strings.
func pairsOf(ts []Tagged) map[string]bool {
	out := map[string]bool{}
	for _, t := range ts {
		out[fmt.Sprintf("%d->%d", t.Fact, t.ID)] = true
	}
	return out
}

func assertSamePairs(t *testing.T, label string, a, b []Tagged) {
	t.Helper()
	pa, pb := pairsOf(a), pairsOf(b)
	if len(pa) != len(pb) {
		t.Fatalf("%s: %d pairs vs %d", label, len(pa), len(pb))
	}
	for k := range pa {
		if !pb[k] {
			t.Fatalf("%s: pair %s missing from holistic result", label, k)
		}
	}
}

func TestHolisticMatchesCascadedOnPaperData(t *testing.T) {
	src, _ := docSource(t, paperXML)
	facts, err := EvalPathFromRoot(src, pattern.MustParsePath("//publication"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range []string{
		"/author/name", "//author//name", "//name", "//publisher/@id",
		"/year", "//*/@id", "/pubData/publisher", "//publisher", "/nosuch",
	} {
		p := pattern.MustParsePath(ps)
		want, err := EvalAxis(src, facts, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvalAxisHolistic(src, facts, p)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePairs(t, ps, want, got)
	}
}

func TestHolisticMatchesCascadedOnRandomDocs(t *testing.T) {
	paths := []string{
		"/a", "//a", "/a/b", "//a/b", "/a//b", "//a//b",
		"//a//b//c", "/a/b/c", "//b/a",
	}
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 31))
		doc := randomDoc(rng, 10+rng.Intn(200))
		src := DocSource{Doc: doc}
		// Facts: every <a> (nested facts exercise overlapping chains).
		factItems, err := src.ByTag("a")
		if err != nil {
			t.Fatal(err)
		}
		facts := make([]Tagged, len(factItems))
		for i, it := range factItems {
			facts[i] = Tagged{Item: it, Fact: it.ID}
		}
		for _, ps := range paths {
			p := pattern.MustParsePath(ps)
			want, err := EvalAxis(src, facts, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EvalAxisHolistic(src, facts, p)
			if err != nil {
				t.Fatal(err)
			}
			assertSamePairs(t, fmt.Sprintf("trial %d %s", trial, ps), want, got)
		}
	}
}

func TestHolisticOnTreebankWorkload(t *testing.T) {
	axes := []dataset.AxisConfig{
		{Tag: "w0", Cardinality: 5, PMissing: 0.2, PNest: 0.4, PRepeat: 0.3,
			Relax: pattern.RelaxSet(0).With(pattern.LND).With(pattern.PCAD)},
	}
	doc := dataset.Treebank(dataset.TreebankConfig{Seed: 21, Facts: 300, Axes: axes, Noise: 2})
	src := DocSource{Doc: doc}
	facts, err := EvalPathFromRoot(src, pattern.MustParsePath("//s"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range []string{"/w0", "//w0", "//ph/w0"} {
		p := pattern.MustParsePath(ps)
		want, _ := EvalAxis(src, facts, p)
		got, err := EvalAxisHolistic(src, facts, p)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePairs(t, ps, want, got)
	}
}

func TestHolisticEmptyInputs(t *testing.T) {
	src, _ := docSource(t, paperXML)
	got, err := EvalAxisHolistic(src, nil, pattern.MustParsePath("/year"))
	if err != nil || len(got) != 0 {
		t.Fatalf("no facts: %v, %v", got, err)
	}
	facts, _ := EvalPathFromRoot(src, pattern.MustParsePath("//publication"))
	got, err = EvalAxisHolistic(src, facts, nil)
	if err != nil || got != nil {
		t.Fatalf("empty path: %v, %v", got, err)
	}
}

func BenchmarkCascadedVsHolistic(b *testing.B) {
	axes := []dataset.AxisConfig{
		{Tag: "w0", Cardinality: 10, PNest: 0.4, PRepeat: 0.3,
			Relax: pattern.RelaxSet(0).With(pattern.LND).With(pattern.PCAD)},
	}
	doc := dataset.Treebank(dataset.TreebankConfig{Seed: 3, Facts: 5000, Axes: axes, Noise: 3})
	src := DocSource{Doc: doc}
	factItems, err := EvalPathFromRoot(src, pattern.MustParsePath("//s"))
	if err != nil {
		b.Fatal(err)
	}
	facts := make([]Tagged, len(factItems))
	copy(facts, factItems)
	p := pattern.MustParsePath("//w0")
	b.Run("cascaded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := EvalAxis(src, facts, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("holistic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := EvalAxisHolistic(src, facts, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = xmltree.NilNode
}
