package sjoin

import (
	"fmt"
	"strconv"

	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/pattern"
	"x3/internal/xmltree"
)

// Evaluate matches the query against a structural-join Source and builds
// the same fact table match.Evaluate builds from an in-memory document —
// but using only tag-indexed streams and stack-tree joins, the way the
// paper's TIMBER-backed implementation does. The two evaluators are
// cross-checked in tests.
func Evaluate(src Source, lat *lattice.Lattice) (*match.Set, error) {
	dicts := make([]*match.Dict, len(lat.Query.Axes))
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	return EvaluateWith(src, lat, dicts)
}

// EvaluateWith is Evaluate interning values into the caller's dictionaries
// (see match.EvaluateWith).
func EvaluateWith(src Source, lat *lattice.Lattice, dicts []*match.Dict) (*match.Set, error) {
	return EvaluateObserved(src, lat, dicts, nil)
}

// EvaluateObserved is EvaluateWith reporting join activity (sjoin.* keys)
// and the match-phase fact count (match.facts) into the registry; reg may
// be nil.
func EvaluateObserved(src Source, lat *lattice.Lattice, dicts []*match.Dict, reg *obs.Registry) (*match.Set, error) {
	tr := newTracer(reg)
	q := lat.Query
	if len(dicts) != len(q.Axes) {
		return nil, fmt.Errorf("sjoin: %d dictionaries for %d axes", len(dicts), len(q.Axes))
	}
	set := &match.Set{Lattice: lat, Dicts: dicts}

	factItems, err := evalPathFromRoot(src, q.FactPath, tr)
	if err != nil {
		return nil, err
	}
	reg.Counter("match.facts").Add(int64(len(factItems)))
	ordinal := make(map[xmltree.NodeID]int, len(factItems))
	facts := make([]Tagged, len(factItems))
	for i, t := range factItems {
		ordinal[t.ID] = i
		facts[i] = Tagged{Item: t.Item, Fact: t.ID}
		set.Facts = append(set.Facts, &match.Fact{
			ID:      int64(i),
			Key:     "#" + strconv.Itoa(int(t.ID)),
			Measure: 1,
			Axes:    make([][][]match.ValueID, len(q.Axes)),
		})
	}

	// Fact keys from the X³ clause target.
	if len(q.FactIDPath) > 0 {
		keys, err := evalSteps(src, facts, q.FactIDPath, tr)
		if err != nil {
			return nil, err
		}
		seen := map[xmltree.NodeID]bool{}
		for _, t := range keys {
			if seen[t.Fact] {
				continue // first match wins, as in match.Evaluate
			}
			seen[t.Fact] = true
			v, err := src.Value(t.ID)
			if err != nil {
				return nil, err
			}
			set.Facts[ordinal[t.Fact]].Key = v
		}
	}

	// Measures.
	if q.Agg != pattern.Count {
		ms, err := evalSteps(src, facts, q.MeasurePath, tr)
		if err != nil {
			return nil, err
		}
		for i := range set.Facts {
			set.Facts[i].Measure = 0
		}
		for _, t := range ms {
			v, err := src.Value(t.ID)
			if err != nil {
				return nil, err
			}
			if v == "" {
				continue
			}
			x, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("sjoin: measure %q is not numeric", v)
			}
			set.Facts[ordinal[t.Fact]].Measure += x
		}
	}

	// Axis value sets per live ladder state.
	for a, lad := range lat.Ladders {
		live := lad.Len()
		if lad.HasDeleted() {
			live--
		}
		for i := range set.Facts {
			set.Facts[i].Axes[a] = make([][]match.ValueID, live)
		}
		for s := 0; s < live; s++ {
			ts, err := evalSteps(src, facts, lad.States[s].Path, tr)
			if err != nil {
				return nil, err
			}
			for _, t := range ts {
				v, err := src.Value(t.ID)
				if err != nil {
					return nil, err
				}
				f := set.Facts[ordinal[t.Fact]]
				f.Axes[a][s] = append(f.Axes[a][s], set.Dicts[a].ID(v))
			}
			for _, f := range set.Facts {
				f.Axes[a][s] = sortDedupIDs(f.Axes[a][s])
			}
		}
	}
	if err := set.CheckMonotone(); err != nil {
		return nil, err
	}
	return set, nil
}

func sortDedupIDs(ids []match.ValueID) []match.ValueID {
	if len(ids) <= 1 {
		return ids
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// DocSource adapts an in-memory xmltree.Document to the Source interface.
type DocSource struct {
	Doc *xmltree.Document
}

// ByTag implements Source.
func (d DocSource) ByTag(tag string) ([]Item, error) {
	ids := d.Doc.ByTag(tag)
	out := make([]Item, len(ids))
	for i, id := range ids {
		n := d.Doc.Node(id)
		out[i] = Item{ID: id, Start: n.Start, End: n.End, Level: n.Level}
	}
	return out, nil
}

// Tags implements Source.
func (d DocSource) Tags() ([]string, error) { return d.Doc.Tags(), nil }

// Value implements Source.
func (d DocSource) Value(id xmltree.NodeID) (string, error) {
	n := d.Doc.Node(id)
	if n == nil {
		return "", fmt.Errorf("sjoin: node %d out of range", id)
	}
	return n.Value, nil
}

var _ Source = DocSource{}
