package sjoin

import (
	"fmt"
	"math/rand"
	"testing"

	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/pattern"
	"x3/internal/xmltree"
	"x3/internal/xq"
)

const paperXML = `
<database>
  <publication id="1">
    <author id="a1"><name>John</name></author>
    <author id="a2"><name>Jane</name></author>
    <publisher id="p1"/>
    <year>2003</year>
  </publication>
  <publication id="2">
    <author id="a3"><name>Bob</name></author>
    <publisher id="p1"/>
    <year>2004</year>
    <year>2005</year>
  </publication>
  <publication id="3">
    <authors><author id="a1"><name>John</name></author></authors>
    <year>2003</year>
  </publication>
  <publication id="4">
    <author id="a4"><name>Amy</name></author>
    <pubData><publisher id="p2"/><year>2005</year></pubData>
  </publication>
</database>`

func docSource(t *testing.T, xml string) (DocSource, *xmltree.Document) {
	t.Helper()
	doc, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return DocSource{Doc: doc}, doc
}

// TestJoinAgainstNaive cross-checks the stack-tree join with a quadratic
// nested loop on random documents.
func TestJoinAgainstNaive(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		doc := randomDoc(rng, 5+rng.Intn(150))
		src := DocSource{Doc: doc}
		tags, _ := src.Tags()
		for _, at := range tags {
			for _, dt := range tags {
				ancItems, _ := src.ByTag(at)
				anc := make([]Tagged, len(ancItems))
				for i, it := range ancItems {
					anc[i] = Tagged{Item: it, Fact: it.ID}
				}
				descItems, _ := src.ByTag(dt)
				for _, axis := range []pattern.Axis{pattern.Child, pattern.Descendant} {
					got := Join(anc, descItems, axis)
					want := naiveJoin(doc, ancItems, descItems, axis)
					if len(got) != len(want) {
						t.Fatalf("trial %d %s/%s axis %v: %d pairs, want %d",
							trial, at, dt, axis, len(got), len(want))
					}
					for i := range got {
						if got[i].Fact != want[i].Fact || got[i].ID != want[i].ID {
							t.Fatalf("trial %d %s/%s axis %v pair %d: %+v vs %+v",
								trial, at, dt, axis, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func naiveJoin(doc *xmltree.Document, anc, desc []Item, axis pattern.Axis) []Tagged {
	var out []Tagged
	for _, d := range desc {
		for _, a := range anc {
			an, dn := doc.Node(a.ID), doc.Node(d.ID)
			ok := an.IsAncestorOf(dn)
			if axis == pattern.Child {
				ok = an.IsParentOf(dn)
			}
			if ok {
				out = append(out, Tagged{Item: d, Fact: a.ID})
			}
		}
	}
	return dedup(out)
}

func randomDoc(rng *rand.Rand, n int) *xmltree.Document {
	var b xmltree.Builder
	tags := []string{"a", "b", "c"}
	b.Open("r")
	open := 1
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 && open > 1 {
			b.Close()
			open--
			continue
		}
		b.Open(tags[rng.Intn(len(tags))])
		b.Text("x")
		open++
	}
	for open > 0 {
		b.Close()
		open--
	}
	return b.MustDone()
}

// TestEvalPathMatchesDocumentEvaluator cross-checks the join-based path
// evaluator with match.EvalPathFromRoot on the paper data.
func TestEvalPathMatchesDocumentEvaluator(t *testing.T) {
	src, doc := docSource(t, paperXML)
	paths := []string{
		"//publication", "/database", "//author", "//author/name",
		"//publication/author/name", "//publication//name",
		"//publisher/@id", "//*/@id", "//publication/year", "//year",
		"//pubData/publisher", "//nosuch", "/publication",
	}
	for _, ps := range paths {
		p := pattern.MustParsePath(ps)
		want := match.EvalPathFromRoot(doc, p)
		got, err := EvalPathFromRoot(src, p)
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d nodes, want %d", ps, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i] {
				t.Fatalf("%s: node %d = %d, want %d", ps, i, got[i].ID, want[i])
			}
		}
	}
}

// TestEvaluateMatchesMatchEvaluate cross-checks the full structural-join
// evaluator against the document evaluator, fact by fact, on Query 1 and
// on generated corpora.
func TestEvaluateMatchesMatchEvaluate(t *testing.T) {
	const query1Text = `
for $b in doc("book.xml")//publication,
    $n in $b/author/name,
    $p in $b//publisher/@id,
    $y in $b/year
X^3 $b/@id by $n (LND, SP, PC-AD), $p (LND, PC-AD), $y (LND)
return COUNT($b).`

	check := func(t *testing.T, doc *xmltree.Document, q *pattern.CubeQuery) {
		t.Helper()
		lat, err := lattice.New(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := match.Evaluate(doc, lat)
		if err != nil {
			t.Fatal(err)
		}
		lat2, err := lattice.New(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Evaluate(DocSource{Doc: doc}, lat2)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumFacts() != want.NumFacts() {
			t.Fatalf("facts %d vs %d", got.NumFacts(), want.NumFacts())
		}
		for i := range want.Facts {
			wf, gf := want.Facts[i], got.Facts[i]
			if wf.Key != gf.Key || wf.Measure != gf.Measure {
				t.Fatalf("fact %d: key/measure %q/%v vs %q/%v", i, wf.Key, wf.Measure, gf.Key, gf.Measure)
			}
			for a := range wf.Axes {
				for s := range wf.Axes[a] {
					ws := valueStrings(want, wf, a, s)
					gs := valueStrings(got, gf, a, s)
					if fmt.Sprint(ws) != fmt.Sprint(gs) {
						t.Fatalf("fact %d axis %d state %d: %v vs %v", i, a, s, ws, gs)
					}
				}
			}
		}
	}

	t.Run("query1", func(t *testing.T) {
		doc, err := xmltree.ParseString(paperXML)
		if err != nil {
			t.Fatal(err)
		}
		q, err := xq.Parse(query1Text)
		if err != nil {
			t.Fatal(err)
		}
		check(t, doc, q)
	})

	t.Run("treebank", func(t *testing.T) {
		axes := []dataset.AxisConfig{
			{Tag: "w0", Cardinality: 5, PMissing: 0.3, PNest: 0.3,
				Relax: pattern.RelaxSet(0).With(pattern.LND).With(pattern.PCAD)},
			{Tag: "w1", Cardinality: 4, PRepeat: 0.4,
				Relax: pattern.RelaxSet(0).With(pattern.LND)},
		}
		cfg := dataset.TreebankConfig{Seed: 77, Facts: 150, Axes: axes, Noise: 2}
		check(t, dataset.Treebank(cfg), dataset.TreebankQuery(axes))
	})

	t.Run("dblp", func(t *testing.T) {
		doc := dataset.DBLP(dataset.DefaultDBLPConfig(200, 5))
		check(t, doc, dataset.DBLPQuery())
	})
}

func valueStrings(set *match.Set, f *match.Fact, a, s int) []string {
	var out []string
	for _, id := range f.Values(a, s) {
		out = append(out, set.Dicts[a].Value(id))
	}
	return out
}

func TestEvalAxisGroupsPerFact(t *testing.T) {
	src, _ := docSource(t, paperXML)
	facts, err := EvalPathFromRoot(src, pattern.MustParsePath("//publication"))
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 4 {
		t.Fatalf("facts = %d", len(facts))
	}
	years, err := EvalAxis(src, facts, pattern.MustParsePath("/year"))
	if err != nil {
		t.Fatal(err)
	}
	perFact := map[xmltree.NodeID]int{}
	for _, y := range years {
		perFact[y.Fact]++
	}
	// pub1: 1 year, pub2: 2 years, pub3: 1, pub4: 0 (nested in pubData).
	if len(years) != 4 || perFact[facts[1].ID] != 2 {
		t.Fatalf("year matches = %v", perFact)
	}
}

func TestEmptyPathRejected(t *testing.T) {
	src, _ := docSource(t, paperXML)
	if _, err := EvalPathFromRoot(src, nil); err == nil {
		t.Error("empty path accepted")
	}
}
