package sjoin

import (
	"fmt"
	"math/rand"
	"testing"

	"x3/internal/match"
	"x3/internal/pattern"
)

// TestPredicatesMatchDocumentEvaluator cross-checks structural-join
// predicate evaluation against the in-memory evaluator.
func TestPredicatesMatchDocumentEvaluator(t *testing.T) {
	src, doc := docSource(t, paperXML)
	paths := []string{
		"//publication[author]",
		"//publication[//author]",
		"//publication[publisher]",
		"//publication[//publisher][year]",
		"//publication[publisher]/year",
		"//publication[author[name]]",
		"//author[@id]/name",
		"//publication[price]",
		"//publication[pubData]/author",
	}
	for _, ps := range paths {
		p := pattern.MustParsePath(ps)
		want := match.EvalPathFromRoot(doc, p)
		got, err := EvalPathFromRoot(src, p)
		if err != nil {
			t.Fatalf("%s: %v", ps, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d vs %d nodes", ps, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i] {
				t.Fatalf("%s node %d: %d vs %d", ps, i, got[i].ID, want[i])
			}
		}
	}
}

// TestPredicatesOnRandomDocs fuzzes predicate evaluation over random trees.
func TestPredicatesOnRandomDocs(t *testing.T) {
	paths := []string{
		"//a[b]", "//a[//c]", "//a[b]/c", "/r/a[b][c]",
		"//a[b[c]]", "//b[a]//c",
	}
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 101))
		doc := randomDoc(rng, 20+rng.Intn(200))
		src := DocSource{Doc: doc}
		for _, ps := range paths {
			p := pattern.MustParsePath(ps)
			want := match.EvalPathFromRoot(doc, p)
			got, err := EvalPathFromRoot(src, p)
			if err != nil {
				t.Fatal(err)
			}
			// sjoin returns (first-step node, leaf) pairs when first-step
			// matches nest; compare the distinct leaf node sets.
			gotNodes := map[int32]bool{}
			for _, g := range got {
				gotNodes[int32(g.ID)] = true
			}
			if len(gotNodes) != len(want) {
				t.Fatalf("trial %d %s: %d vs %d distinct nodes", trial, ps, len(gotNodes), len(want))
			}
			for _, w := range want {
				if !gotNodes[int32(w)] {
					t.Fatalf("trial %d %s: node %d missing", trial, ps, w)
				}
			}
		}
	}
}

// TestHolisticFallsBackOnPredicates ensures the holistic evaluator returns
// the same pairs for predicated paths (via its cascaded fallback).
func TestHolisticFallsBackOnPredicates(t *testing.T) {
	src, _ := docSource(t, paperXML)
	facts, err := EvalPathFromRoot(src, pattern.MustParsePath("//publication"))
	if err != nil {
		t.Fatal(err)
	}
	p := pattern.MustParsePath("/author[name]/name")
	want, err := EvalAxis(src, facts, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalAxisHolistic(src, facts, p)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(pairsOf(want)) != fmt.Sprint(pairsOf(got)) {
		t.Fatalf("pairs differ: %v vs %v", pairsOf(want), pairsOf(got))
	}
}
