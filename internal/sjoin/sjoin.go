// Package sjoin implements the structural join machinery TIMBER evaluates
// tree patterns with (paper §4): stack-tree merge joins over region-encoded
// node streams, and a cascaded-join evaluator for the linear axis paths of
// X³ queries.
//
// Inputs are document-ordered streams of Items (region-encoded node
// references). The stack-tree join walks both streams once, maintaining a
// stack of open ancestors, and emits every (ancestor, descendant) or
// (parent, child) pair in O(input + output).
package sjoin

import (
	"fmt"
	"sort"

	"x3/internal/obs"
	"x3/internal/pattern"
	"x3/internal/xmltree"
)

// tracer carries cached obs handles through the join cascade. The zero
// value (all-nil handles) is observability off; every Add/Inc is then a
// no-op costing one branch.
type tracer struct {
	joins   *obs.Counter // structural joins performed
	scanned *obs.Counter // elements read across both join inputs
	pairs   *obs.Counter // (fact, node) pairs emitted by joins
	preds   *obs.Counter // predicate semi-joins evaluated
}

// newTracer resolves the sjoin.* handles; reg may be nil.
func newTracer(reg *obs.Registry) tracer {
	return tracer{
		joins:   reg.Counter("sjoin.joins"),
		scanned: reg.Counter("sjoin.elements.scanned"),
		pairs:   reg.Counter("sjoin.pairs.emitted"),
		preds:   reg.Counter("sjoin.preds.evaluated"),
	}
}

// join is Join plus instrumentation.
func (tr tracer) join(anc []Tagged, desc []Item, axis pattern.Axis) []Tagged {
	tr.joins.Inc()
	tr.scanned.Add(int64(len(anc) + len(desc)))
	out := Join(anc, desc, axis)
	tr.pairs.Add(int64(len(out)))
	return out
}

// Item is a region-encoded reference to a stored node.
type Item struct {
	ID    xmltree.NodeID
	Start uint32
	End   uint32
	Level uint16
}

// contains reports whether a's region strictly contains b's.
func (a Item) contains(b Item) bool {
	return a.Start < b.Start && b.End < a.End
}

// Tagged is an Item carrying the fact binding it descends from, so a
// cascade of joins can group axis matches per fact.
type Tagged struct {
	Item
	Fact xmltree.NodeID
}

// Source provides document-ordered node streams by tag, the way TIMBER's
// element index does. Tag "@name" addresses attribute nodes. Implementors:
// store.Store (paged, on disk) and DocSource (in memory).
type Source interface {
	// ByTag returns all nodes with the given tag in document order.
	ByTag(tag string) ([]Item, error)
	// Tags lists every distinct tag (elements, and attributes with "@").
	Tags() ([]string, error)
	// Value returns the grouping value of a node (text or attr value).
	Value(id xmltree.NodeID) (string, error)
}

// Join performs a stack-tree structural join between document-ordered
// ancestor candidates (with payloads) and descendant candidates; axis
// selects ancestor-descendant or parent-child semantics. The result is
// (payload-preserving) Tagged items for each matched descendant, in
// document order of the descendants, deduplicated per (fact, node).
func Join(anc []Tagged, desc []Item, axis pattern.Axis) []Tagged {
	var out []Tagged
	var stack []Tagged
	i, j := 0, 0
	for j < len(desc) {
		// Push every ancestor that starts before the next descendant.
		if i < len(anc) && anc[i].Start < desc[j].Start {
			// Pop closed ancestors first.
			for len(stack) > 0 && stack[len(stack)-1].End < anc[i].Start {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, anc[i])
			i++
			continue
		}
		for len(stack) > 0 && stack[len(stack)-1].End < desc[j].Start {
			stack = stack[:len(stack)-1]
		}
		d := desc[j]
		j++
		for k := len(stack) - 1; k >= 0; k-- {
			a := stack[k]
			if !a.Item.contains(d) {
				continue
			}
			// For parent-child only the node one level up matches, but it
			// may appear on the stack several times tagged with different
			// facts (nested fact matches), so keep scanning.
			if axis == pattern.Child && a.Level+1 != d.Level {
				continue
			}
			out = append(out, Tagged{Item: d, Fact: a.Fact})
		}
	}
	return dedup(out)
}

// dedup removes duplicate (fact, node) pairs, keeping document order by
// (node, fact).
func dedup(ts []Tagged) []Tagged {
	if len(ts) <= 1 {
		return ts
	}
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].Start != ts[b].Start {
			return ts[a].Start < ts[b].Start
		}
		return ts[a].Fact < ts[b].Fact
	})
	out := ts[:1]
	for _, t := range ts[1:] {
		last := out[len(out)-1]
		if t.ID != last.ID || t.Fact != last.Fact {
			out = append(out, t)
		}
	}
	return out
}

// tagStream fetches the document-ordered stream for one step's node test,
// merging all element tags for a wildcard.
func tagStream(src Source, st pattern.Step) ([]Item, error) {
	if !st.IsWildcard() {
		return src.ByTag(st.Tag)
	}
	tags, err := src.Tags()
	if err != nil {
		return nil, err
	}
	var all []Item
	for _, t := range tags {
		if len(t) > 0 && t[0] == '@' {
			continue
		}
		items, err := src.ByTag(t)
		if err != nil {
			return nil, err
		}
		all = append(all, items...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	return all, nil
}

// EvalPathFromRoot evaluates an absolute path over the source with a
// cascade of structural joins, returning matched nodes tagged with
// themselves (Fact == ID), in document order.
func EvalPathFromRoot(src Source, p pattern.Path) ([]Tagged, error) {
	return evalPathFromRoot(src, p, tracer{})
}

func evalPathFromRoot(src Source, p pattern.Path, tr tracer) ([]Tagged, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("sjoin: empty path")
	}
	first, err := tagStream(src, p[0])
	if err != nil {
		return nil, err
	}
	var cur []Tagged
	for _, it := range first {
		if p[0].Axis == pattern.Child && it.Level != 0 {
			continue // "/tag" from the document node matches only the root
		}
		cur = append(cur, Tagged{Item: it, Fact: it.ID})
	}
	if len(p[0].Preds) > 0 {
		var err error
		cur, err = filterPreds(src, cur, p[0].Preds, tr)
		if err != nil {
			return nil, err
		}
	}
	return evalSteps(src, cur, p[1:], tr)
}

// EvalAxis evaluates a fact-relative axis path: facts are the (already
// matched) context items, and the result tags every matched node with its
// fact, so callers can group values per fact.
func EvalAxis(src Source, facts []Tagged, p pattern.Path) ([]Tagged, error) {
	return evalSteps(src, facts, p, tracer{})
}

func evalSteps(src Source, cur []Tagged, steps pattern.Path, tr tracer) ([]Tagged, error) {
	for _, st := range steps {
		if len(cur) == 0 {
			return nil, nil
		}
		stream, err := tagStream(src, st)
		if err != nil {
			return nil, err
		}
		cur = tr.join(cur, stream, st.Axis)
		if len(st.Preds) > 0 {
			cur, err = filterPreds(src, cur, st.Preds, tr)
			if err != nil {
				return nil, err
			}
		}
	}
	return cur, nil
}

// filterPreds keeps the (fact, node) pairs whose node satisfies every
// existence predicate, using semi-joins: each predicate is evaluated once
// over all candidate nodes (tagged with themselves) and the survivors are
// the facts of the result.
func filterPreds(src Source, cur []Tagged, preds []pattern.Path, tr tracer) ([]Tagged, error) {
	// Distinct candidate nodes, probed as their own facts.
	probe := make([]Tagged, 0, len(cur))
	seen := map[xmltree.NodeID]bool{}
	for _, t := range cur {
		if !seen[t.ID] {
			seen[t.ID] = true
			probe = append(probe, Tagged{Item: t.Item, Fact: t.ID})
		}
	}
	sort.Slice(probe, func(i, j int) bool { return probe[i].Start < probe[j].Start })
	alive := map[xmltree.NodeID]bool{}
	for id := range seen {
		alive[id] = true
	}
	for _, pred := range preds {
		tr.preds.Inc()
		res, err := evalSteps(src, probe, pred, tr)
		if err != nil {
			return nil, err
		}
		hit := map[xmltree.NodeID]bool{}
		for _, t := range res {
			hit[t.Fact] = true
		}
		next := probe[:0]
		for _, t := range probe {
			if hit[t.Fact] {
				next = append(next, t)
			} else {
				delete(alive, t.Fact)
			}
		}
		probe = next
	}
	out := cur[:0]
	for _, t := range cur {
		if alive[t.ID] {
			out = append(out, t)
		}
	}
	return out, nil
}
