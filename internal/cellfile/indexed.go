// The indexed cell-file formats (v2, the checksummed v3 and the columnar
// v4). Where v1 is a write-once stream that can only be consumed front to
// back, v2 lays the cells out sorted by (point id, key) and appends a
// sparse block index plus a per-cuboid directory, so a serving layer can
// answer "give me cuboid P" with one binary search, one seek and a bounded
// scan instead of a full-file pass. v3 is v2 plus integrity: every data
// block carries a CRC32-C checksum in its index entry and the index
// section itself is checksummed in the footer, so a corrupted read is
// *detected* — and retried, and ultimately refused — instead of served as
// silently wrong cells. v4 keeps v3's container byte for byte (header,
// index, directory, CRC footer) but stores each block column-wise — see
// columnar.go — shrinking blocks ~5x so the same cache budget holds ~5x
// more cuboids. The writer emits v4; the reader accepts all three.
//
// Layout:
//
//	magic "X3CF", version byte (2, 3 or 4)
//	data section, sorted by (point, key):
//	    v2/v3: per-cell records — uvarint point, uvarint key length,
//	           key ValueIDs (uvarints), 32-byte aggregate state
//	    v4:    columnar blocks (see columnar.go)
//	index section (at the footer's index offset):
//	    uvarint block count
//	    per block: uvarint absolute offset, uvarint first point,
//	               uvarint cell count, uvarint CRC32-C (v3+)
//	    uvarint cuboid count
//	    per cuboid: uvarint point, uvarint cell count
//	footer: big-endian uint64 total cell count,
//	    big-endian uint64 index offset,
//	    big-endian uint32 index CRC32-C (v3+),
//	    magic "X3IX"
//
// Records deliberately drop v1's per-record 0x01 marker: block cell
// counts come from the index, and the fixed footer makes truncation
// detection positional rather than sentinel-based.
package cellfile

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"time"

	"x3/internal/agg"
	"x3/internal/cube"
	"x3/internal/fault"
	"x3/internal/match"
	"x3/internal/obs"
)

const (
	indexedVersion    = 2 // legacy, no checksums
	indexedVersionCRC = 3 // per-block + index CRC32-C
	indexedVersionCol = 4 // v3 container, columnar compressed blocks
)

// footerLen / footerLenCRC are the fixed byte lengths of the footers.
const (
	footerLen    = 20
	footerLenCRC = 24
)

var indexMagic = [4]byte{'X', '3', 'I', 'X'}

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// headerLen is magic + version.
const headerLen = 5

// DefaultBlockCells is the block granularity of the sparse index: a new
// block starts every this-many cells.
const DefaultBlockCells = 256

// minRecordLen is the smallest possible encoded cell (1-byte point,
// zero-length key, state); it bounds how many cells a block of known byte
// length can claim, which keeps corrupt counts from forcing allocations.
const minRecordLen = 2 + agg.EncodedSize

// Read-retry defaults: transient read faults (and transiently corrupted
// buffers caught by the block checksums) are retried with doubling
// backoff before the error surfaces.
const (
	defaultReadRetries  = 2
	defaultRetryBackoff = 200 * time.Microsecond
)

// IndexedSink collects cells and writes them as an indexed cell file on
// Close. It implements cube.Sink, so any cube algorithm can compute
// straight into it; unlike FileSink it must buffer the cells in memory
// until Close to sort them, so it suits cubes meant to be *served*, not
// the unbounded streaming case v1 covers.
type IndexedSink struct {
	path string
	// BlockCells overrides the index block granularity (cells per block);
	// 0 selects DefaultBlockCells. Set it before Close.
	BlockCells int
	// Version selects the output format: 0 or 4 writes the columnar v4,
	// 3 the row-wise checksummed v3, 2 the legacy un-checksummed v2 (the
	// older versions exist for compatibility tests and format archaeology).
	Version int
	// Fault optionally injects write-path faults (crash-safety tests).
	Fault *fault.Injector
	cells []Cell
}

// CreateIndexed returns a sink that will write an indexed cell file at
// path when closed.
func CreateIndexed(path string) *IndexedSink {
	return &IndexedSink{path: path}
}

// Cell implements cube.Sink.
func (s *IndexedSink) Cell(point uint32, key []match.ValueID, st agg.State) error {
	k := make([]match.ValueID, len(key))
	copy(k, key)
	s.cells = append(s.cells, Cell{Point: point, Key: k, State: st})
	return nil
}

// Cells returns the number of cells collected so far.
func (s *IndexedSink) Cells() int64 { return int64(len(s.cells)) }

// Close sorts the collected cells by (point, key), writes the indexed
// file and syncs it to stable storage before returning, so a rename that
// follows Close publishes fully durable bytes.
func (s *IndexedSink) Close() error {
	sort.Slice(s.cells, func(i, j int) bool {
		a, b := &s.cells[i], &s.cells[j]
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		n := len(a.Key)
		if len(b.Key) < n {
			n = len(b.Key)
		}
		for k := 0; k < n; k++ {
			if a.Key[k] != b.Key[k] {
				return a.Key[k] < b.Key[k]
			}
		}
		return len(a.Key) < len(b.Key)
	})
	ver := s.Version
	if ver == 0 {
		ver = indexedVersionCol
	}
	if ver != indexedVersion && ver != indexedVersionCRC && ver != indexedVersionCol {
		return fmt.Errorf("cellfile: cannot write version %d", ver)
	}
	f, err := os.Create(s.path)
	if err != nil {
		return fmt.Errorf("cellfile: %w", err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(s.path)
		return err
	}
	w := bufio.NewWriterSize(s.Fault.Writer("cellfile.write", f), 1<<16)
	if err := writeIndexed(w, s.cells, s.BlockCells, byte(ver)); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(s.path)
		return err
	}
	return nil
}

var _ cube.Sink = (*IndexedSink)(nil)

func putUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// writeIndexed writes the sorted cells, the index and the footer to w in
// the given format version.
func writeIndexed(w io.Writer, cells []Cell, blockCells int, ver byte) error {
	if blockCells <= 0 {
		blockCells = DefaultBlockCells
	}
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{ver}); err != nil {
		return err
	}
	type blockMetaW struct {
		off        uint64
		firstPoint uint32
		cells      int
		crc        uint32
	}
	var (
		blocks []blockMetaW
		buf    []byte
		off    = uint64(headerLen)
	)
	if ver == indexedVersionCol {
		// v4 encodes whole blocks at once: the columnar sections need every
		// cell of the block in hand before any byte is final.
		for i := 0; i < len(cells); i += blockCells {
			j := i + blockCells
			if j > len(cells) {
				j = len(cells)
			}
			buf = appendColumnarBlock(buf[:0], cells[i:j])
			blocks = append(blocks, blockMetaW{
				off: off, firstPoint: cells[i].Point, cells: j - i,
				crc: crc32.Checksum(buf, castagnoli),
			})
			if _, err := w.Write(buf); err != nil {
				return err
			}
			off += uint64(len(buf))
		}
	} else {
		for i := range cells {
			c := &cells[i]
			if i%blockCells == 0 {
				blocks = append(blocks, blockMetaW{off: off, firstPoint: c.Point})
			}
			buf = buf[:0]
			buf = putUvarint(buf, uint64(c.Point))
			buf = putUvarint(buf, uint64(len(c.Key)))
			for _, v := range c.Key {
				buf = putUvarint(buf, uint64(v))
			}
			var enc [agg.EncodedSize]byte
			c.State.Encode(enc[:])
			buf = append(buf, enc[:]...)
			if _, err := w.Write(buf); err != nil {
				return err
			}
			off += uint64(len(buf))
			b := &blocks[len(blocks)-1]
			b.cells++
			b.crc = crc32.Update(b.crc, castagnoli, buf)
		}
	}
	indexOff := off

	var idx []byte
	idx = putUvarint(idx, uint64(len(blocks)))
	for _, b := range blocks {
		idx = putUvarint(idx, b.off)
		idx = putUvarint(idx, uint64(b.firstPoint))
		idx = putUvarint(idx, uint64(b.cells))
		if ver >= indexedVersionCRC {
			idx = putUvarint(idx, uint64(b.crc))
		}
	}
	// Cuboid directory: the cells are sorted, so runs of equal points are
	// contiguous.
	var dirPoints []uint32
	var dirCells []uint64
	for i := 0; i < len(cells); {
		j := i
		for j < len(cells) && cells[j].Point == cells[i].Point {
			j++
		}
		dirPoints = append(dirPoints, cells[i].Point)
		dirCells = append(dirCells, uint64(j-i))
		i = j
	}
	idx = putUvarint(idx, uint64(len(dirPoints)))
	for i, p := range dirPoints {
		idx = putUvarint(idx, uint64(p))
		idx = putUvarint(idx, dirCells[i])
	}
	if _, err := w.Write(idx); err != nil {
		return err
	}

	if ver >= indexedVersionCRC {
		var foot [footerLenCRC]byte
		binary.BigEndian.PutUint64(foot[0:], uint64(len(cells)))
		binary.BigEndian.PutUint64(foot[8:], indexOff)
		binary.BigEndian.PutUint32(foot[16:], crc32.Checksum(idx, castagnoli))
		copy(foot[20:], indexMagic[:])
		_, err := w.Write(foot[:])
		return err
	}
	var foot [footerLen]byte
	binary.BigEndian.PutUint64(foot[0:], uint64(len(cells)))
	binary.BigEndian.PutUint64(foot[8:], indexOff)
	copy(foot[16:], indexMagic[:])
	_, err := w.Write(foot[:])
	return err
}

// WriteIndexed writes cells (any order; they are sorted in place) as an
// indexed cell file at path.
func WriteIndexed(path string, cells []Cell) error {
	s := CreateIndexed(path)
	s.cells = cells
	return s.Close()
}

// blockMeta is one sparse-index entry of an open reader.
type blockMeta struct {
	off        int64  // absolute file offset of the block's first record
	length     int64  // byte length of the block
	firstPoint uint32 // point id of the block's first cell
	cells      int    // number of cells in the block
	crc        uint32 // CRC32-C of the block bytes (v3 only)
}

// ReadOptions tune an IndexedReader's fault tolerance.
type ReadOptions struct {
	// Fault wraps the reader's file access with injected faults (nil: no
	// injection).
	Fault *fault.Injector
	// Retries is the number of re-read attempts after a failed or
	// checksum-rejected block read; 0 selects the default, negative
	// disables retrying.
	Retries int
	// RetryBackoff is the first retry's backoff (doubling per attempt);
	// 0 selects the default.
	RetryBackoff time.Duration
}

func (o ReadOptions) retries() int {
	if o.Retries < 0 {
		return 0
	}
	if o.Retries == 0 {
		return defaultReadRetries
	}
	return o.Retries
}

func (o ReadOptions) backoff() time.Duration {
	if o.RetryBackoff <= 0 {
		return defaultRetryBackoff
	}
	return o.RetryBackoff
}

// IndexedReader serves cuboid slices out of a v2/v3 cell file. It is safe
// for concurrent use: all file access goes through ReadAt, the metadata
// is immutable after Open, and the optional block cache locks internally.
type IndexedReader struct {
	f       *os.File
	ra      io.ReaderAt // f, possibly behind a fault shim
	path    string
	ver     byte
	retries int
	backoff time.Duration
	blocks  []blockMeta
	// points and pointCells are the cuboid directory, sorted by point.
	points     []uint32
	pointCells []int64
	cells      int64
	cache      *BlockCache
	gen        uint64 // cache-key namespace for this reader instance

	// resolved obs handles (nil-safe; see package obs).
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	scanCells   *obs.Counter
	retriesC    *obs.Counter
}

// OpenIndexed opens an indexed cell file and loads its index. Every
// structural claim the file makes (offsets, counts, ordering) is validated
// against the file size before any dependent allocation, so corrupt or
// truncated files fail with a wrapped ErrCorrupt/ErrTruncated rather than
// a panic or an absurd allocation.
func OpenIndexed(path string) (*IndexedReader, error) {
	return OpenIndexedWith(path, ReadOptions{})
}

// OpenIndexedWith opens an indexed cell file with explicit fault-tolerance
// options. The whole index load sits inside the retry budget: a transient
// fault that mangles the header, footer or index bytes is caught by the
// validation (magic, ranges, index CRC) and re-read; only a persistent
// failure surfaces.
func OpenIndexedWith(path string, opt ReadOptions) (*IndexedReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cellfile: %w", err)
	}
	var r *IndexedReader
	backoff := opt.backoff()
	for a := 0; ; a++ {
		r, err = loadIndex(f, path, opt)
		if err == nil {
			return r, nil
		}
		if a >= opt.retries() {
			break
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	f.Close()
	return nil, err
}

// readFull reads len(p) bytes at off with the reader's retry budget:
// transient faults re-roll on a fresh attempt after a doubling backoff.
func (r *IndexedReader) readFull(p []byte, off int64) error {
	var err error
	backoff := r.backoff
	for a := 0; a <= r.retries; a++ {
		if a > 0 {
			r.retriesC.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		_, err = r.ra.ReadAt(p, off)
		if err == nil {
			return nil
		}
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %s: %w", ErrTruncated, r.path, err)
	}
	return err
}

func loadIndex(f *os.File, path string, opt ReadOptions) (*IndexedReader, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	r := &IndexedReader{
		f:       f,
		ra:      opt.Fault.ReaderAt("cellfile.block", f),
		path:    path,
		retries: opt.retries(),
		backoff: opt.backoff(),
		gen:     nextReaderGen(),
	}
	if size < headerLen+footerLen {
		return nil, fmt.Errorf("%w: %s: too short for an indexed cell file", ErrTruncated, path)
	}
	var hdr [headerLen]byte
	if err := r.readFull(hdr[:], 0); err != nil {
		return nil, err
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("%w: %s is not a cell file", ErrCorrupt, path)
	}
	r.ver = hdr[4]
	footLen := int64(footerLen)
	switch r.ver {
	case indexedVersion:
	case indexedVersionCRC, indexedVersionCol:
		footLen = footerLenCRC
	default:
		return nil, fmt.Errorf("%w: %s: not an indexed cell file (version %d)", ErrCorrupt, path, hdr[4])
	}
	// The per-cell plausibility floor depends on the encoding: columnar v4
	// cells amortize below the v2/v3 row minimum.
	minRec := uint64(minRecordLen)
	if r.ver == indexedVersionCol {
		minRec = minRecordLenV4
	}
	if size < headerLen+footLen {
		return nil, fmt.Errorf("%w: %s: too short for a v%d footer", ErrTruncated, path, r.ver)
	}
	foot := make([]byte, footLen)
	if err := r.readFull(foot, size-footLen); err != nil {
		return nil, err
	}
	if [4]byte(foot[footLen-4:]) != indexMagic {
		return nil, fmt.Errorf("%w: %s: missing index footer", ErrTruncated, path)
	}
	totalCells := binary.BigEndian.Uint64(foot[0:])
	indexOff := binary.BigEndian.Uint64(foot[8:])
	var indexCRC uint32
	if r.ver >= indexedVersionCRC {
		indexCRC = binary.BigEndian.Uint32(foot[16:])
	}
	if indexOff < headerLen || int64(indexOff) > size-footLen {
		return nil, fmt.Errorf("%w: %s: index offset %d out of range", ErrCorrupt, path, indexOff)
	}
	if totalCells > uint64(indexOff-headerLen)/minRec {
		return nil, fmt.Errorf("%w: %s: footer claims %d cells, data section fits at most %d",
			ErrCorrupt, path, totalCells, (indexOff-headerLen)/minRec)
	}
	idx := make([]byte, size-footLen-int64(indexOff))
	if err := r.readFull(idx, int64(indexOff)); err != nil {
		return nil, err
	}
	if r.ver >= indexedVersionCRC {
		if got := crc32.Checksum(idx, castagnoli); got != indexCRC {
			return nil, fmt.Errorf("%w: %s: index checksum %08x, footer says %08x", ErrCorrupt, path, got, indexCRC)
		}
	}
	br := bytes.NewReader(idx)
	numBlocks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: corrupt index: %w", ErrCorrupt, path, err)
	}
	// Each block entry takes at least 3 bytes; a larger claim cannot
	// parse, so reject it before looping.
	if numBlocks > uint64(len(idx))/3+1 {
		return nil, fmt.Errorf("%w: %s: index claims %d blocks in %d bytes", ErrCorrupt, path, numBlocks, len(idx))
	}
	r.cells = int64(totalCells)
	var sum int64
	for i := uint64(0); i < numBlocks; i++ {
		off, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: corrupt block entry %d: %w", ErrCorrupt, path, i, err)
		}
		firstPoint, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: corrupt block entry %d: %w", ErrCorrupt, path, i, err)
		}
		cells, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: corrupt block entry %d: %w", ErrCorrupt, path, i, err)
		}
		var crc uint64
		if r.ver >= indexedVersionCRC {
			crc, err = binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: corrupt block entry %d: %w", ErrCorrupt, path, i, err)
			}
			if crc > 1<<32-1 {
				return nil, fmt.Errorf("%w: %s: block %d checksum %d overflows", ErrCorrupt, path, i, crc)
			}
		}
		if off < headerLen || off >= indexOff {
			return nil, fmt.Errorf("%w: %s: block %d offset %d outside data section", ErrCorrupt, path, i, off)
		}
		if n := len(r.blocks); n > 0 {
			prev := &r.blocks[n-1]
			if int64(off) <= prev.off {
				return nil, fmt.Errorf("%w: %s: block offsets not increasing", ErrCorrupt, path)
			}
			if firstPoint < uint64(prev.firstPoint) {
				return nil, fmt.Errorf("%w: %s: block first points not sorted", ErrCorrupt, path)
			}
			prev.length = int64(off) - prev.off
			if uint64(prev.cells) > uint64(prev.length)/minRec+1 {
				return nil, fmt.Errorf("%w: %s: block %d claims %d cells in %d bytes", ErrCorrupt, path, n-1, prev.cells, prev.length)
			}
		}
		if firstPoint > 1<<32-1 {
			return nil, fmt.Errorf("%w: %s: block %d first point %d overflows", ErrCorrupt, path, i, firstPoint)
		}
		r.blocks = append(r.blocks, blockMeta{off: int64(off), firstPoint: uint32(firstPoint), cells: int(cells), crc: uint32(crc)})
		sum += int64(cells)
	}
	if n := len(r.blocks); n > 0 {
		last := &r.blocks[n-1]
		last.length = int64(indexOff) - last.off
		if uint64(last.cells) > uint64(last.length)/minRec+1 {
			return nil, fmt.Errorf("%w: %s: block %d claims %d cells in %d bytes", ErrCorrupt, path, n-1, last.cells, last.length)
		}
	}
	if sum != int64(totalCells) {
		return nil, fmt.Errorf("%w: %s: index blocks hold %d cells, footer says %d", ErrCorrupt, path, sum, totalCells)
	}
	numCuboids, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: corrupt cuboid directory: %w", ErrCorrupt, path, err)
	}
	if numCuboids > uint64(len(idx))/2+1 {
		return nil, fmt.Errorf("%w: %s: directory claims %d cuboids in %d bytes", ErrCorrupt, path, numCuboids, len(idx))
	}
	var dirSum int64
	for i := uint64(0); i < numCuboids; i++ {
		p, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: corrupt cuboid entry %d: %w", ErrCorrupt, path, i, err)
		}
		c, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: corrupt cuboid entry %d: %w", ErrCorrupt, path, i, err)
		}
		if p > 1<<32-1 {
			return nil, fmt.Errorf("%w: %s: cuboid entry %d point %d overflows", ErrCorrupt, path, i, p)
		}
		if n := len(r.points); n > 0 && uint32(p) <= r.points[n-1] {
			return nil, fmt.Errorf("%w: %s: cuboid directory not sorted", ErrCorrupt, path)
		}
		r.points = append(r.points, uint32(p))
		r.pointCells = append(r.pointCells, int64(c))
		dirSum += int64(c)
	}
	if dirSum != int64(totalCells) {
		return nil, fmt.Errorf("%w: %s: cuboid directory holds %d cells, footer says %d", ErrCorrupt, path, dirSum, totalCells)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %s: %d trailing bytes after index", ErrCorrupt, path, br.Len())
	}
	return r, nil
}

// Observe resolves the serving counters (serve.cache.hits,
// serve.cache.misses, serve.scan.cells, cellfile.read.retries) against
// reg. A nil registry leaves observability off.
func (r *IndexedReader) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.cacheHits = reg.Counter("serve.cache.hits")
	r.cacheMisses = reg.Counter("serve.cache.misses")
	r.scanCells = reg.Counter("serve.scan.cells")
	r.retriesC = reg.Counter("cellfile.read.retries")
}

// SetCache attaches an LRU block cache. Readers may share one cache;
// entries are keyed per reader instance, so a reader swapped in after a
// refresh never sees a predecessor's blocks.
func (r *IndexedReader) SetCache(c *BlockCache) { r.cache = c }

// Version returns the file's format version (2, 3 or 4).
func (r *IndexedReader) Version() int { return int(r.ver) }

// NumCells returns the total number of cells in the file.
func (r *IndexedReader) NumCells() int64 { return r.cells }

// DataBytes returns the encoded byte length of the data section (the sum
// of all block lengths, excluding header, index and footer). Together with
// NumCells it gives the cost model a measured bytes-per-cell for pricing
// cuboids that already live in this file.
func (r *IndexedReader) DataBytes() int64 {
	var total int64
	for i := range r.blocks {
		total += r.blocks[i].length
	}
	return total
}

// NumBlocks returns the number of index blocks.
func (r *IndexedReader) NumBlocks() int { return len(r.blocks) }

// Points returns the materialized cuboid ids, sorted.
func (r *IndexedReader) Points() []uint32 {
	out := make([]uint32, len(r.points))
	copy(out, r.points)
	return out
}

// CuboidCells returns the cell count of cuboid point (0 when absent) and
// whether the cuboid is materialized in this file.
func (r *IndexedReader) CuboidCells(point uint32) (int64, bool) {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= point })
	if i < len(r.points) && r.points[i] == point {
		return r.pointCells[i], true
	}
	return 0, false
}

// Path returns the file path the reader was opened on.
func (r *IndexedReader) Path() string { return r.path }

// Close releases the file handle.
func (r *IndexedReader) Close() error { return r.f.Close() }

// readBlock returns block bi's decoded cells, via the cache when one is
// attached.
func (r *IndexedReader) readBlock(bi int) ([]Cell, error) {
	if r.cache != nil {
		if cells, ok := r.cache.get(r.gen, bi); ok {
			r.cacheHits.Inc()
			return cells, nil
		}
		r.cacheMisses.Inc()
	}
	cells, err := r.readBlockFresh(bi)
	if err != nil {
		return nil, err
	}
	if r.cache != nil {
		r.cache.put(r.gen, bi, cells, r.blocks[bi].length)
	}
	return cells, nil
}

// readBlockFresh reads, checksums and decodes block bi straight from the
// file, bypassing the cache, with the reader's retry budget. A checksum or
// decode failure is retried like a read error: a transiently corrupted
// read re-rolls on the next attempt.
func (r *IndexedReader) readBlockFresh(bi int) ([]Cell, error) {
	b := &r.blocks[bi]
	var lastErr error
	backoff := r.backoff
	for a := 0; a <= r.retries; a++ {
		if a > 0 {
			r.retriesC.Inc()
			time.Sleep(backoff)
			backoff *= 2
		}
		buf := make([]byte, b.length)
		if _, err := r.ra.ReadAt(buf, b.off); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				err = fmt.Errorf("%w: %s: block %d: %w", ErrTruncated, r.path, bi, err)
			} else {
				err = fmt.Errorf("cellfile: %s: block %d: %w", r.path, bi, err)
			}
			lastErr = err
			continue
		}
		if r.ver >= indexedVersionCRC {
			if got := crc32.Checksum(buf, castagnoli); got != b.crc {
				lastErr = fmt.Errorf("%w: %s: block %d checksum %08x, index says %08x", ErrCorrupt, r.path, bi, got, b.crc)
				continue
			}
		}
		var cells []Cell
		var err error
		if r.ver == indexedVersionCol {
			cells, err = decodeColumnarBlock(buf, b.cells)
		} else {
			cells, err = decodeBlock(buf, b.cells)
		}
		if err != nil {
			lastErr = fmt.Errorf("%w: %s: block %d: %w", ErrCorrupt, r.path, bi, err)
			continue
		}
		return cells, nil
	}
	return nil, lastErr
}

// decodeBlock parses exactly count cell records out of buf.
func decodeBlock(buf []byte, count int) ([]Cell, error) {
	br := bytes.NewReader(buf)
	cells := make([]Cell, 0, count)
	for i := 0; i < count; i++ {
		point, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
		if point > 1<<32-1 {
			return nil, fmt.Errorf("cell %d: point %d overflows", i, point)
		}
		klen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
		if klen > 1<<16 {
			return nil, fmt.Errorf("cell %d: implausible key length %d", i, klen)
		}
		c := Cell{Point: uint32(point), Key: make([]match.ValueID, klen)}
		for k := range c.Key {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("cell %d: %w", i, err)
			}
			if v > 1<<32-1 {
				return nil, fmt.Errorf("cell %d: value id %d overflows", i, v)
			}
			c.Key[k] = match.ValueID(v)
		}
		var enc [agg.EncodedSize]byte
		if _, err := io.ReadFull(br, enc[:]); err != nil {
			return nil, fmt.Errorf("cell %d state: %w", i, err)
		}
		c.State = agg.Decode(enc[:])
		cells = append(cells, c)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%d stray bytes after %d cells", br.Len(), count)
	}
	return cells, nil
}

// ctxErr wraps a context failure in the package's cancellation sentinel
// (both errors.Is(err, ErrCancelled) and errors.Is(err, ctx.Err()) hold).
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	return nil
}

// EachCuboid streams cuboid point's cells, in key order, to fn. Only the
// blocks that can contain the cuboid are read: a binary search finds the
// first candidate block and the scan stops at the first cell of a later
// cuboid. Every decoded cell — including same-block neighbours that are
// skipped — counts toward serve.scan.cells, so the counter reflects real
// read amplification.
func (r *IndexedReader) EachCuboid(point uint32, fn func(Cell) error) error {
	//x3:nolint(ctxflow) EachCuboid is the context-less compatibility entry point; it IS the entry layer
	return r.EachCuboidCtx(context.Background(), point, fn)
}

// EachCuboidCtx is EachCuboid under a context: cancellation and deadlines
// are honoured between blocks, surfacing as a wrapped ErrCancelled.
func (r *IndexedReader) EachCuboidCtx(ctx context.Context, point uint32, fn func(Cell) error) error {
	if _, ok := r.CuboidCells(point); !ok {
		return nil
	}
	// First block that could contain the cuboid: the one before the first
	// block starting at a later point (the cuboid's first cells can sit
	// at the tail of a block whose firstPoint is smaller).
	bi := sort.Search(len(r.blocks), func(i int) bool { return r.blocks[i].firstPoint >= point })
	if bi > 0 {
		bi--
	}
	for ; bi < len(r.blocks) && r.blocks[bi].firstPoint <= point; bi++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		cells, err := r.readBlock(bi)
		if err != nil {
			return err
		}
		r.scanCells.Add(int64(len(cells)))
		for i := range cells {
			c := &cells[i]
			if c.Point < point {
				continue
			}
			if c.Point > point {
				return nil
			}
			if err := fn(*c); err != nil {
				return err
			}
		}
	}
	return nil
}

// ScanCuboid streams cuboid point's cells by a sequential, cache-bypassing
// walk of the data section — the degraded fallback when the fast indexed
// path keeps failing. Every block is re-read fresh from the file (with the
// retry budget) and re-verified against its checksum, so a transient
// corruption that poisoned the fast path gets a genuinely independent
// second chance; a persistent corruption still fails closed.
func (r *IndexedReader) ScanCuboid(ctx context.Context, point uint32, fn func(Cell) error) error {
	if _, ok := r.CuboidCells(point); !ok {
		return nil
	}
	for bi := range r.blocks {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if r.blocks[bi].firstPoint > point {
			return nil
		}
		cells, err := r.readBlockFresh(bi)
		if err != nil {
			return err
		}
		r.scanCells.Add(int64(len(cells)))
		for i := range cells {
			c := &cells[i]
			if c.Point < point {
				continue
			}
			if c.Point > point {
				return nil
			}
			if err := fn(*c); err != nil {
				return err
			}
		}
	}
	return nil
}

// Each streams every cell of the file, in (point, key) order.
func (r *IndexedReader) Each(fn func(Cell) error) error {
	for bi := range r.blocks {
		cells, err := r.readBlock(bi)
		if err != nil {
			return err
		}
		r.scanCells.Add(int64(len(cells)))
		for i := range cells {
			if err := fn(cells[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
