// The indexed v2 cell-file format. Where v1 is a write-once stream that
// can only be consumed front to back, v2 lays the cells out sorted by
// (point id, key) and appends a sparse block index plus a per-cuboid
// directory, so a serving layer can answer "give me cuboid P" with one
// binary search, one seek and a bounded scan instead of a full-file pass.
//
// Layout:
//
//	magic "X3CF", version byte 2
//	data section: cell records, sorted by (point, key):
//	    uvarint point, uvarint key length, key ValueIDs (uvarints),
//	    32-byte aggregate state
//	index section (at the footer's index offset):
//	    uvarint block count
//	    per block: uvarint absolute offset, uvarint first point,
//	               uvarint cell count
//	    uvarint cuboid count
//	    per cuboid: uvarint point, uvarint cell count
//	footer (final 20 bytes): big-endian uint64 total cell count,
//	    big-endian uint64 index offset, magic "X3IX"
//
// Records deliberately drop v1's per-record 0x01 marker: block cell
// counts come from the index, and the fixed footer makes truncation
// detection positional rather than sentinel-based.
package cellfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"x3/internal/agg"
	"x3/internal/cube"
	"x3/internal/match"
	"x3/internal/obs"
)

const indexedVersion = 2

// footerLen is the fixed byte length of the v2 footer.
const footerLen = 20

var indexMagic = [4]byte{'X', '3', 'I', 'X'}

// headerLen is magic + version.
const headerLen = 5

// DefaultBlockCells is the block granularity of the sparse index: a new
// block starts every this-many cells.
const DefaultBlockCells = 256

// minRecordLen is the smallest possible encoded cell (1-byte point,
// zero-length key, state); it bounds how many cells a block of known byte
// length can claim, which keeps corrupt counts from forcing allocations.
const minRecordLen = 2 + agg.EncodedSize

// IndexedSink collects cells and writes them as an indexed v2 file on
// Close. It implements cube.Sink, so any cube algorithm can compute
// straight into it; unlike FileSink it must buffer the cells in memory
// until Close to sort them, so it suits cubes meant to be *served*, not
// the unbounded streaming case v1 covers.
type IndexedSink struct {
	path string
	// BlockCells overrides the index block granularity (cells per block);
	// 0 selects DefaultBlockCells. Set it before Close.
	BlockCells int
	cells      []Cell
}

// CreateIndexed returns a sink that will write an indexed cell file at
// path when closed.
func CreateIndexed(path string) *IndexedSink {
	return &IndexedSink{path: path}
}

// Cell implements cube.Sink.
func (s *IndexedSink) Cell(point uint32, key []match.ValueID, st agg.State) error {
	k := make([]match.ValueID, len(key))
	copy(k, key)
	s.cells = append(s.cells, Cell{Point: point, Key: k, State: st})
	return nil
}

// Cells returns the number of cells collected so far.
func (s *IndexedSink) Cells() int64 { return int64(len(s.cells)) }

// Close sorts the collected cells by (point, key) and writes the indexed
// file.
func (s *IndexedSink) Close() error {
	sort.Slice(s.cells, func(i, j int) bool {
		a, b := &s.cells[i], &s.cells[j]
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		n := len(a.Key)
		if len(b.Key) < n {
			n = len(b.Key)
		}
		for k := 0; k < n; k++ {
			if a.Key[k] != b.Key[k] {
				return a.Key[k] < b.Key[k]
			}
		}
		return len(a.Key) < len(b.Key)
	})
	f, err := os.Create(s.path)
	if err != nil {
		return fmt.Errorf("cellfile: %w", err)
	}
	if err := writeIndexed(f, s.cells, s.BlockCells); err != nil {
		f.Close()
		os.Remove(s.path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(s.path)
		return err
	}
	return nil
}

var _ cube.Sink = (*IndexedSink)(nil)

func putUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// writeIndexed writes the sorted cells, the index and the footer to w.
func writeIndexed(w io.Writer, cells []Cell, blockCells int) error {
	if blockCells <= 0 {
		blockCells = DefaultBlockCells
	}
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{indexedVersion}); err != nil {
		return err
	}
	type blockMetaW struct {
		off        uint64
		firstPoint uint32
		cells      int
	}
	var (
		blocks []blockMetaW
		buf    []byte
		off    = uint64(headerLen)
	)
	for i := range cells {
		c := &cells[i]
		if i%blockCells == 0 {
			blocks = append(blocks, blockMetaW{off: off, firstPoint: c.Point})
		}
		buf = buf[:0]
		buf = putUvarint(buf, uint64(c.Point))
		buf = putUvarint(buf, uint64(len(c.Key)))
		for _, v := range c.Key {
			buf = putUvarint(buf, uint64(v))
		}
		var enc [agg.EncodedSize]byte
		c.State.Encode(enc[:])
		buf = append(buf, enc[:]...)
		if _, err := w.Write(buf); err != nil {
			return err
		}
		off += uint64(len(buf))
		blocks[len(blocks)-1].cells++
	}
	indexOff := off

	var idx []byte
	idx = putUvarint(idx, uint64(len(blocks)))
	for _, b := range blocks {
		idx = putUvarint(idx, b.off)
		idx = putUvarint(idx, uint64(b.firstPoint))
		idx = putUvarint(idx, uint64(b.cells))
	}
	// Cuboid directory: the cells are sorted, so runs of equal points are
	// contiguous.
	var dirPoints []uint32
	var dirCells []uint64
	for i := 0; i < len(cells); {
		j := i
		for j < len(cells) && cells[j].Point == cells[i].Point {
			j++
		}
		dirPoints = append(dirPoints, cells[i].Point)
		dirCells = append(dirCells, uint64(j-i))
		i = j
	}
	idx = putUvarint(idx, uint64(len(dirPoints)))
	for i, p := range dirPoints {
		idx = putUvarint(idx, uint64(p))
		idx = putUvarint(idx, dirCells[i])
	}
	if _, err := w.Write(idx); err != nil {
		return err
	}

	var foot [footerLen]byte
	binary.BigEndian.PutUint64(foot[0:], uint64(len(cells)))
	binary.BigEndian.PutUint64(foot[8:], indexOff)
	copy(foot[16:], indexMagic[:])
	_, err := w.Write(foot[:])
	return err
}

// WriteIndexed writes cells (any order; they are sorted in place) as an
// indexed cell file at path.
func WriteIndexed(path string, cells []Cell) error {
	s := CreateIndexed(path)
	s.cells = cells
	return s.Close()
}

// blockMeta is one sparse-index entry of an open reader.
type blockMeta struct {
	off        int64  // absolute file offset of the block's first record
	length     int64  // byte length of the block
	firstPoint uint32 // point id of the block's first cell
	cells      int    // number of cells in the block
}

// IndexedReader serves cuboid slices out of a v2 cell file. It is safe
// for concurrent use: all file access goes through ReadAt, the metadata
// is immutable after Open, and the optional block cache locks internally.
type IndexedReader struct {
	f      *os.File
	path   string
	blocks []blockMeta
	// points and pointCells are the cuboid directory, sorted by point.
	points     []uint32
	pointCells []int64
	cells      int64
	cache      *BlockCache
	gen        uint64 // cache-key namespace for this reader instance

	// resolved obs handles (nil-safe; see package obs).
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	scanCells   *obs.Counter
}

// OpenIndexed opens a v2 cell file and loads its index. Every structural
// claim the file makes (offsets, counts, ordering) is validated against
// the file size before any dependent allocation, so corrupt or truncated
// files fail with an error rather than a panic or an absurd allocation.
func OpenIndexed(path string) (*IndexedReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cellfile: %w", err)
	}
	r, err := loadIndex(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func loadIndex(f *os.File, path string) (*IndexedReader, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < headerLen+footerLen {
		return nil, fmt.Errorf("cellfile: %s: too short for an indexed cell file", path)
	}
	var hdr [headerLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, fmt.Errorf("cellfile: %s is not a cell file", path)
	}
	if hdr[4] != indexedVersion {
		return nil, fmt.Errorf("cellfile: %s: not an indexed cell file (version %d)", path, hdr[4])
	}
	var foot [footerLen]byte
	if _, err := f.ReadAt(foot[:], size-footerLen); err != nil {
		return nil, err
	}
	if [4]byte(foot[16:]) != indexMagic {
		return nil, fmt.Errorf("cellfile: %s: missing index footer (truncated?)", path)
	}
	totalCells := binary.BigEndian.Uint64(foot[0:])
	indexOff := binary.BigEndian.Uint64(foot[8:])
	if indexOff < headerLen || int64(indexOff) > size-footerLen {
		return nil, fmt.Errorf("cellfile: %s: index offset %d out of range", path, indexOff)
	}
	if totalCells > uint64(indexOff-headerLen)/minRecordLen {
		return nil, fmt.Errorf("cellfile: %s: footer claims %d cells, data section fits at most %d",
			path, totalCells, (indexOff-headerLen)/minRecordLen)
	}
	idx := make([]byte, size-footerLen-int64(indexOff))
	if _, err := f.ReadAt(idx, int64(indexOff)); err != nil {
		return nil, err
	}
	br := bytes.NewReader(idx)
	numBlocks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("cellfile: %s: corrupt index: %w", path, err)
	}
	// Each block entry takes at least 3 bytes; a larger claim cannot
	// parse, so reject it before looping.
	if numBlocks > uint64(len(idx))/3+1 {
		return nil, fmt.Errorf("cellfile: %s: index claims %d blocks in %d bytes", path, numBlocks, len(idx))
	}
	r := &IndexedReader{f: f, path: path, cells: int64(totalCells), gen: nextReaderGen()}
	var sum int64
	for i := uint64(0); i < numBlocks; i++ {
		off, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cellfile: %s: corrupt block entry %d: %w", path, i, err)
		}
		firstPoint, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cellfile: %s: corrupt block entry %d: %w", path, i, err)
		}
		cells, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cellfile: %s: corrupt block entry %d: %w", path, i, err)
		}
		if off < headerLen || off >= indexOff {
			return nil, fmt.Errorf("cellfile: %s: block %d offset %d outside data section", path, i, off)
		}
		if n := len(r.blocks); n > 0 {
			prev := &r.blocks[n-1]
			if int64(off) <= prev.off {
				return nil, fmt.Errorf("cellfile: %s: block offsets not increasing", path)
			}
			if firstPoint < uint64(prev.firstPoint) {
				return nil, fmt.Errorf("cellfile: %s: block first points not sorted", path)
			}
			prev.length = int64(off) - prev.off
			if uint64(prev.cells) > uint64(prev.length)/minRecordLen+1 {
				return nil, fmt.Errorf("cellfile: %s: block %d claims %d cells in %d bytes", path, n-1, prev.cells, prev.length)
			}
		}
		if firstPoint > 1<<32-1 {
			return nil, fmt.Errorf("cellfile: %s: block %d first point %d overflows", path, i, firstPoint)
		}
		r.blocks = append(r.blocks, blockMeta{off: int64(off), firstPoint: uint32(firstPoint), cells: int(cells)})
		sum += int64(cells)
	}
	if n := len(r.blocks); n > 0 {
		last := &r.blocks[n-1]
		last.length = int64(indexOff) - last.off
		if uint64(last.cells) > uint64(last.length)/minRecordLen+1 {
			return nil, fmt.Errorf("cellfile: %s: block %d claims %d cells in %d bytes", path, n-1, last.cells, last.length)
		}
	}
	if sum != int64(totalCells) {
		return nil, fmt.Errorf("cellfile: %s: index blocks hold %d cells, footer says %d", path, sum, totalCells)
	}
	numCuboids, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("cellfile: %s: corrupt cuboid directory: %w", path, err)
	}
	if numCuboids > uint64(len(idx))/2+1 {
		return nil, fmt.Errorf("cellfile: %s: directory claims %d cuboids in %d bytes", path, numCuboids, len(idx))
	}
	var dirSum int64
	for i := uint64(0); i < numCuboids; i++ {
		p, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cellfile: %s: corrupt cuboid entry %d: %w", path, i, err)
		}
		c, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cellfile: %s: corrupt cuboid entry %d: %w", path, i, err)
		}
		if p > 1<<32-1 {
			return nil, fmt.Errorf("cellfile: %s: cuboid entry %d point %d overflows", path, i, p)
		}
		if n := len(r.points); n > 0 && uint32(p) <= r.points[n-1] {
			return nil, fmt.Errorf("cellfile: %s: cuboid directory not sorted", path)
		}
		r.points = append(r.points, uint32(p))
		r.pointCells = append(r.pointCells, int64(c))
		dirSum += int64(c)
	}
	if dirSum != int64(totalCells) {
		return nil, fmt.Errorf("cellfile: %s: cuboid directory holds %d cells, footer says %d", path, dirSum, totalCells)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("cellfile: %s: %d trailing bytes after index", path, br.Len())
	}
	return r, nil
}

// Observe resolves the serving counters (serve.cache.hits,
// serve.cache.misses, serve.scan.cells) against reg. A nil registry
// leaves observability off.
func (r *IndexedReader) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.cacheHits = reg.Counter("serve.cache.hits")
	r.cacheMisses = reg.Counter("serve.cache.misses")
	r.scanCells = reg.Counter("serve.scan.cells")
}

// SetCache attaches an LRU block cache. Readers may share one cache;
// entries are keyed per reader instance, so a reader swapped in after a
// refresh never sees a predecessor's blocks.
func (r *IndexedReader) SetCache(c *BlockCache) { r.cache = c }

// NumCells returns the total number of cells in the file.
func (r *IndexedReader) NumCells() int64 { return r.cells }

// NumBlocks returns the number of index blocks.
func (r *IndexedReader) NumBlocks() int { return len(r.blocks) }

// Points returns the materialized cuboid ids, sorted.
func (r *IndexedReader) Points() []uint32 {
	out := make([]uint32, len(r.points))
	copy(out, r.points)
	return out
}

// CuboidCells returns the cell count of cuboid point (0 when absent) and
// whether the cuboid is materialized in this file.
func (r *IndexedReader) CuboidCells(point uint32) (int64, bool) {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= point })
	if i < len(r.points) && r.points[i] == point {
		return r.pointCells[i], true
	}
	return 0, false
}

// Path returns the file path the reader was opened on.
func (r *IndexedReader) Path() string { return r.path }

// Close releases the file handle.
func (r *IndexedReader) Close() error { return r.f.Close() }

// readBlock returns block bi's decoded cells, via the cache when one is
// attached.
func (r *IndexedReader) readBlock(bi int) ([]Cell, error) {
	if r.cache != nil {
		if cells, ok := r.cache.get(r.gen, bi); ok {
			r.cacheHits.Inc()
			return cells, nil
		}
		r.cacheMisses.Inc()
	}
	b := &r.blocks[bi]
	buf := make([]byte, b.length)
	if _, err := r.f.ReadAt(buf, b.off); err != nil {
		return nil, fmt.Errorf("cellfile: %s: block %d: %w", r.path, bi, err)
	}
	cells, err := decodeBlock(buf, b.cells)
	if err != nil {
		return nil, fmt.Errorf("cellfile: %s: block %d: %w", r.path, bi, err)
	}
	if r.cache != nil {
		r.cache.put(r.gen, bi, cells)
	}
	return cells, nil
}

// decodeBlock parses exactly count cell records out of buf.
func decodeBlock(buf []byte, count int) ([]Cell, error) {
	br := bytes.NewReader(buf)
	cells := make([]Cell, 0, count)
	for i := 0; i < count; i++ {
		point, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
		if point > 1<<32-1 {
			return nil, fmt.Errorf("cell %d: point %d overflows", i, point)
		}
		klen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("cell %d: %w", i, err)
		}
		if klen > 1<<16 {
			return nil, fmt.Errorf("cell %d: implausible key length %d", i, klen)
		}
		c := Cell{Point: uint32(point), Key: make([]match.ValueID, klen)}
		for k := range c.Key {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("cell %d: %w", i, err)
			}
			if v > 1<<32-1 {
				return nil, fmt.Errorf("cell %d: value id %d overflows", i, v)
			}
			c.Key[k] = match.ValueID(v)
		}
		var enc [agg.EncodedSize]byte
		if _, err := io.ReadFull(br, enc[:]); err != nil {
			return nil, fmt.Errorf("cell %d state: %w", i, err)
		}
		c.State = agg.Decode(enc[:])
		cells = append(cells, c)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%d stray bytes after %d cells", br.Len(), count)
	}
	return cells, nil
}

// EachCuboid streams cuboid point's cells, in key order, to fn. Only the
// blocks that can contain the cuboid are read: a binary search finds the
// first candidate block and the scan stops at the first cell of a later
// cuboid. Every decoded cell — including same-block neighbours that are
// skipped — counts toward serve.scan.cells, so the counter reflects real
// read amplification.
func (r *IndexedReader) EachCuboid(point uint32, fn func(Cell) error) error {
	if _, ok := r.CuboidCells(point); !ok {
		return nil
	}
	// First block that could contain the cuboid: the one before the first
	// block starting at a later point (the cuboid's first cells can sit
	// at the tail of a block whose firstPoint is smaller).
	bi := sort.Search(len(r.blocks), func(i int) bool { return r.blocks[i].firstPoint >= point })
	if bi > 0 {
		bi--
	}
	for ; bi < len(r.blocks) && r.blocks[bi].firstPoint <= point; bi++ {
		cells, err := r.readBlock(bi)
		if err != nil {
			return err
		}
		r.scanCells.Add(int64(len(cells)))
		for i := range cells {
			c := &cells[i]
			if c.Point < point {
				continue
			}
			if c.Point > point {
				return nil
			}
			if err := fn(*c); err != nil {
				return err
			}
		}
	}
	return nil
}

// Each streams every cell of the file, in (point, key) order.
func (r *IndexedReader) Each(fn func(Cell) error) error {
	for bi := range r.blocks {
		cells, err := r.readBlock(bi)
		if err != nil {
			return err
		}
		r.scanCells.Add(int64(len(cells)))
		for i := range cells {
			if err := fn(cells[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
