package cellfile

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"x3/internal/agg"
	"x3/internal/fault"
	"x3/internal/match"
	"x3/internal/obs"
)

// writeSmallIndexed writes a deterministic multi-block indexed file and
// returns its path plus the cells written (sorted the way the file is).
func writeSmallIndexed(t *testing.T, ver int, inj *fault.Injector) (string, []Cell) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "small.x3ci")
	sink := CreateIndexed(path)
	sink.BlockCells = 8
	sink.Version = ver
	sink.Fault = inj
	var s agg.State
	s.Add(2.5)
	var cells []Cell
	for p := uint32(0); p < 5; p++ {
		for k := 0; k < 20; k++ {
			key := []match.ValueID{match.ValueID(k), match.ValueID(p)}
			if err := sink.Cell(p, key, s); err != nil {
				t.Fatal(err)
			}
			cells = append(cells, Cell{Point: p, Key: key, State: s})
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return path, cells
}

func TestV2StillReadable(t *testing.T) {
	path, cells := writeSmallIndexed(t, 2, nil)
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != 2 {
		t.Fatalf("wrote version 2, reader says %d", r.Version())
	}
	var n int
	if err := r.Each(func(Cell) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(cells) {
		t.Fatalf("v2 file streamed %d cells, wrote %d", n, len(cells))
	}
	// The version-dispatching Each handles v2 too.
	n = 0
	if err := Each(path, func(Cell) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != len(cells) {
		t.Fatalf("Each streamed %d cells of a v2 file, wrote %d", n, len(cells))
	}
}

func TestDefaultWriterEmitsV4(t *testing.T) {
	path, _ := writeSmallIndexed(t, 0, nil)
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Version() != 4 {
		t.Fatalf("default writer produced version %d, want 4", r.Version())
	}
}

// TestChecksumCatchesBitFlip flips a single data bit of a v3 file on disk
// and asserts the read fails with ErrCorrupt instead of serving a wrong
// cell — the exact failure v2 cannot see.
func TestChecksumCatchesBitFlip(t *testing.T) {
	path, _ := writeSmallIndexed(t, 3, nil)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen+6] ^= 0x04
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err) // index is intact; only a data block is damaged
	}
	defer r.Close()
	err = r.Each(func(Cell) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reading a bit-flipped v3 block returned %v; want wrapped ErrCorrupt", err)
	}
}

// TestV2MissesBitFlipButV3Catches documents why v3 exists: the same
// single-bit damage that v3 rejects can pass v2's structural checks and
// come back as a silently different cell.
func TestV2MissesBitFlipButV3Catches(t *testing.T) {
	for _, ver := range []int{2, 3} {
		path, cells := writeSmallIndexed(t, ver, nil)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a bit inside the first cell's 32-byte aggregate state: the
		// record structure stays valid, only the value changes.
		data[headerLen+4] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenIndexed(path)
		if err != nil {
			t.Fatal(err)
		}
		var wrong bool
		rerr := r.Each(func(c Cell) error {
			if c.State != cells[0].State && c.Point == cells[0].Point {
				wrong = true
			}
			return nil
		})
		r.Close()
		switch ver {
		case 2:
			if rerr != nil && !wrong {
				// v2 may get lucky and fail structurally; that is fine too.
				continue
			}
		case 3:
			if !errors.Is(rerr, ErrCorrupt) {
				t.Fatalf("v3 read of damaged state returned %v (wrong=%v); want ErrCorrupt", rerr, wrong)
			}
		}
	}
}

// TestRetryHealsTransientFaults runs a heavy injected-error schedule with
// a retry budget: every read must eventually succeed (a retry is a fresh
// op index, so transient faults pass on re-roll) and the retry counter
// must show it happened.
func TestRetryHealsTransientFaults(t *testing.T) {
	path, cells := writeSmallIndexed(t, 3, nil)
	inj := fault.New(fault.Config{Seed: 11, ErrEvery: 3, CorruptEvery: 4, ShortEvery: 5})
	reg := obs.New()
	inj.Observe(reg)
	r, err := OpenIndexedWith(path, ReadOptions{
		Fault:        inj,
		Retries:      20, // ample: P(20 consecutive 1-in-3 faults) ~ 3e-10
		RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Observe(reg)
	var n int
	if err := r.Each(func(Cell) error { n++; return nil }); err != nil {
		t.Fatalf("read under transient faults failed despite retries: %v", err)
	}
	if n != len(cells) {
		t.Fatalf("read %d cells under faults, wrote %d", n, len(cells))
	}
	if reg.Counter("cellfile.read.retries").Value() == 0 {
		t.Fatal("no retries counted under a 1-in-3 error schedule")
	}
	if reg.Counter("fault.injected.errors").Value() == 0 {
		t.Fatal("injector reports no injected errors")
	}
}

// TestInjectedCorruptionDetectedNotServed disables retries so an injected
// bit flip has nowhere to hide: the CRC must reject it.
func TestInjectedCorruptionDetectedNotServed(t *testing.T) {
	path, _ := writeSmallIndexed(t, 3, nil)
	inj := fault.New(fault.Config{Seed: 7, CorruptEvery: 1})
	r, err := OpenIndexedWith(path, ReadOptions{Fault: inj, Retries: -1})
	if err == nil {
		defer r.Close()
		err = r.Each(func(Cell) error { return nil })
	}
	if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("corrupt-every-read open/scan returned %v; want ErrCorrupt or ErrTruncated", err)
	}
}

func TestTruncatedSurfacesSentinel(t *testing.T) {
	path, _ := writeSmallIndexed(t, 3, nil)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, headerLen, len(data) / 2, len(data) - 5} {
		p := filepath.Join(t.TempDir(), "trunc.x3ci")
		if err := os.WriteFile(p, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenIndexed(p)
		if err == nil {
			r.Close()
			t.Fatalf("truncation to %d bytes opened cleanly", n)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v; want ErrTruncated/ErrCorrupt", n, err)
		}
	}
}

func TestEachCuboidCtxCancellation(t *testing.T) {
	path, _ := writeSmallIndexed(t, 3, nil)
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = r.EachCuboidCtx(ctx, 0, func(Cell) error { return nil })
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled EachCuboidCtx returned %v; want wrapped ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled EachCuboidCtx returned %v; want it to also wrap context.Canceled", err)
	}
	// ScanCuboid honours the same contract.
	err = r.ScanCuboid(ctx, 0, func(Cell) error { return nil })
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled ScanCuboid returned %v; want wrapped ErrCancelled", err)
	}
}

// TestScanCuboidMatchesIndexedPath asserts the degraded sequential scan
// returns exactly the cells the fast path returns, for every cuboid.
func TestScanCuboidMatchesIndexedPath(t *testing.T) {
	path, _ := writeSmallIndexed(t, 3, nil)
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	for _, p := range r.Points() {
		var fast, slow []Cell
		if err := r.EachCuboid(p, func(c Cell) error { fast = append(fast, c); return nil }); err != nil {
			t.Fatal(err)
		}
		if err := r.ScanCuboid(ctx, p, func(c Cell) error { slow = append(slow, c); return nil }); err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow) {
			t.Fatalf("cuboid %d: fast path %d cells, scan %d", p, len(fast), len(slow))
		}
		for i := range fast {
			if fast[i].Point != slow[i].Point || fast[i].State != slow[i].State {
				t.Fatalf("cuboid %d cell %d differs between fast path and scan", p, i)
			}
			for k := range fast[i].Key {
				if fast[i].Key[k] != slow[i].Key[k] {
					t.Fatalf("cuboid %d cell %d key differs between fast path and scan", p, i)
				}
			}
		}
	}
	// Unmaterialized cuboids stream nothing from the scan path too.
	if err := r.ScanCuboid(ctx, 99999, func(Cell) error {
		t.Fatal("phantom cell from scan")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestScanCuboidBypassesCache poisons the block cache with wrong cells and
// asserts ScanCuboid ignores it (fresh reads are the point of the rung).
func TestScanCuboidBypassesCache(t *testing.T) {
	path, _ := writeSmallIndexed(t, 3, nil)
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cache := NewBlockCache(64)
	r.SetCache(cache)
	// Poison every block's cache slot with an empty slice.
	for bi := 0; bi < r.NumBlocks(); bi++ {
		cache.put(r.gen, bi, nil, 1)
	}
	var viaCache, viaScan int
	if err := r.EachCuboid(0, func(Cell) error { viaCache++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.ScanCuboid(context.Background(), 0, func(Cell) error { viaScan++; return nil }); err != nil {
		t.Fatal(err)
	}
	if viaCache != 0 {
		t.Fatalf("poisoned cache path streamed %d cells; expected the poison to stick (%d)", viaCache, 0)
	}
	if viaScan == 0 {
		t.Fatal("ScanCuboid returned nothing; it must bypass the poisoned cache")
	}
}

// TestSinkCleansUpOnWriteFault: an injected write failure must surface
// from Close and must not leave a half-written file behind.
func TestSinkCleansUpOnWriteFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doomed.x3ci")
	sink := CreateIndexed(path)
	sink.BlockCells = 4
	// Crash at op 0: the sink buffers through bufio, so the whole small
	// file reaches the injected writer as its first underlying write.
	sink.Fault = fault.NewCrash(1, 0)
	var s agg.State
	s.Add(1)
	for p := uint32(0); p < 4; p++ {
		for k := 0; k < 16; k++ {
			if err := sink.Cell(p, []match.ValueID{match.ValueID(k)}, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	err := sink.Close()
	if !fault.IsInjected(err) {
		t.Fatalf("Close under a write crash returned %v; want an injected error", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("half-written file left behind (stat err %v)", err)
	}
}
