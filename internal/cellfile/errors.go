package cellfile

import "errors"

// Sentinel errors of the cell-file read path. Every error returned by the
// readers wraps exactly one of these (or an underlying OS error), so
// callers classify failures with errors.Is instead of string matching:
// ErrCorrupt means the bytes are structurally wrong or fail their
// checksum, ErrTruncated means the file ends before its own metadata says
// it should, ErrCancelled means a context deadline or cancellation cut a
// read short.
var (
	ErrCorrupt   = errors.New("cellfile: corrupt")
	ErrTruncated = errors.New("cellfile: truncated")
	ErrCancelled = errors.New("cellfile: cancelled")
)
