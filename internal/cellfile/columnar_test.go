package cellfile

import (
	"bytes"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"x3/internal/agg"
	"x3/internal/cube"
	"x3/internal/match"
)

// writeVersioned computes the standard test cube into an indexed sink at
// the requested format version and returns the file path.
func writeVersioned(t *testing.T, dir string, ver, blockCells, facts int, seed int64) string {
	t.Helper()
	lat := makeLattice(t)
	set := makeSet(t, lat, facts, seed)
	path := filepath.Join(dir, fmt.Sprintf("cube-v%d.x3ci", ver))
	sink := CreateIndexed(path)
	sink.Version = ver
	sink.BlockCells = blockCells
	in := &cube.Input{Lattice: lat, Source: set, Dicts: set.Dicts}
	if _, err := (cube.Counter{}).Run(in, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// readAll collects every cell of an indexed file via fn, one of the
// reader entry points of the compatibility matrix.
func readAll(t *testing.T, path, via string) []Cell {
	t.Helper()
	var out []Cell
	collect := func(c Cell) error {
		k := make([]match.ValueID, len(c.Key))
		copy(k, c.Key)
		out = append(out, Cell{Point: c.Point, Key: k, State: c.State})
		return nil
	}
	switch via {
	case "Each":
		if err := Each(path, collect); err != nil {
			t.Fatalf("Each(%s): %v", path, err)
		}
	case "Reader.Each":
		r, err := OpenIndexed(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := r.Each(collect); err != nil {
			t.Fatalf("Reader.Each(%s): %v", path, err)
		}
	case "EachCuboid":
		r, err := OpenIndexed(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for _, p := range r.Points() {
			if err := r.EachCuboid(p, collect); err != nil {
				t.Fatalf("EachCuboid(%s, %d): %v", path, p, err)
			}
		}
	case "Iterate":
		r, err := OpenIndexed(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		it := r.Iterate()
		for {
			c, err := it.Next()
			if err != nil {
				t.Fatalf("Iterate(%s): %v", path, err)
			}
			if c == nil {
				break
			}
			collect(*c)
		}
	default:
		t.Fatalf("unknown reader entry %q", via)
	}
	return out
}

// TestCrossVersionMatrix writes the same cube at every format version and
// asserts every reader entry point returns identical cells for all of
// them — old stores must open and serve under the new binary, and the new
// format must not change a single answer byte.
func TestCrossVersionMatrix(t *testing.T) {
	dir := t.TempDir()
	versions := []int{2, 3, 4}
	entries := []string{"Each", "Reader.Each", "EachCuboid", "Iterate"}
	var want []Cell
	for _, ver := range versions {
		path := writeVersioned(t, dir, ver, 7, 300, 2)
		r, err := OpenIndexed(path)
		if err != nil {
			t.Fatal(err)
		}
		if r.Version() != ver {
			t.Fatalf("wrote version %d, reader says %d", ver, r.Version())
		}
		r.Close()
		for _, via := range entries {
			got := readAll(t, path, via)
			if want == nil {
				want = got
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("v%d via %s: %d cells, want %d", ver, via, len(got), len(want))
			}
			for i := range got {
				if got[i].Point != want[i].Point || !reflect.DeepEqual(got[i].Key, want[i].Key) {
					t.Fatalf("v%d via %s: cell %d = %d/%v, want %d/%v",
						ver, via, i, got[i].Point, got[i].Key, want[i].Point, want[i].Key)
				}
				var a, b [agg.EncodedSize]byte
				got[i].State.Encode(a[:])
				want[i].State.Encode(b[:])
				if a != b {
					t.Fatalf("v%d via %s: cell %d state %+v, want %+v (encodings differ)",
						ver, via, i, got[i].State, want[i].State)
				}
			}
		}
	}
}

// TestColumnarCompression asserts the acceptance floor directly: the v4
// data section must be at least 3x smaller than v3 on real cube data.
func TestColumnarCompression(t *testing.T) {
	dir := t.TempDir()
	var bytesPer [5]int64
	var cells int64
	for _, ver := range []int{3, 4} {
		r, err := OpenIndexed(writeVersioned(t, dir, ver, 0, 2000, 3))
		if err != nil {
			t.Fatal(err)
		}
		bytesPer[ver] = r.DataBytes()
		cells = r.NumCells()
		r.Close()
	}
	ratio := float64(bytesPer[3]) / float64(bytesPer[4])
	t.Logf("v3 %d bytes, v4 %d bytes over %d cells (%.2fx, %.2f→%.2f bytes/cell)",
		bytesPer[3], bytesPer[4], cells, ratio,
		float64(bytesPer[3])/float64(cells), float64(bytesPer[4])/float64(cells))
	if ratio < 3 {
		t.Fatalf("v4 compresses only %.2fx vs v3, want ≥3x", ratio)
	}
}

// TestPackedStateBitExact round-trips adversarial aggregate states through
// the packed encoding and requires the 32-byte canonical encoding to come
// back bit-identical — the float traps (-0, NaN, ±Inf, 2^53 edges,
// sum==min×n coincidences with differing signs) are exactly where a naive
// float== packer silently changes answer bytes.
func TestPackedStateBitExact(t *testing.T) {
	inf := math.Inf(1)
	states := []agg.State{
		{},
		{N: 1, Sum: 1, MinV: 1, MaxV: 1},
		{N: 3, Sum: 6, MinV: 1, MaxV: 3},
		{N: 2, Sum: 0, MinV: math.Copysign(0, -1), MaxV: 0},
		{N: 2, Sum: math.Copysign(0, -1), MinV: math.Copysign(0, -1), MaxV: 0},
		{N: 1, Sum: math.Copysign(0, -1), MinV: 0, MaxV: 0},
		{N: 5, Sum: math.NaN(), MinV: math.NaN(), MaxV: math.NaN()},
		{N: 1, Sum: inf, MinV: -inf, MaxV: inf},
		{N: 4, Sum: 1 << 53, MinV: -(1 << 53), MaxV: 1 << 53},
		{N: 4, Sum: 1<<53 + 2, MinV: -(1<<53 + 2), MaxV: 1<<53 + 2},
		{N: 2, Sum: 0.5, MinV: 0.25, MaxV: 0.25},
		{N: 3, Sum: 0.30000000000000004, MinV: 0.1, MaxV: 0.1},
		{N: 1 << 40, Sum: 1 << 41, MinV: 2, MaxV: 2},
		{N: 7, Sum: -21, MinV: -3, MaxV: -3},
		{N: 0, Sum: 0, MinV: inf, MaxV: -inf},
	}
	for i, s := range states {
		buf := appendPackedState(nil, s)
		br := bytes.NewReader(buf)
		got, err := decodePackedState(br)
		if err != nil {
			t.Fatalf("state %d (%+v): decode: %v", i, s, err)
		}
		if br.Len() != 0 {
			t.Fatalf("state %d: %d bytes left over", i, br.Len())
		}
		var a, b [agg.EncodedSize]byte
		s.Encode(a[:])
		got.Encode(b[:])
		if a != b {
			t.Fatalf("state %d: round trip %+v -> %+v (encodings differ)", i, s, got)
		}
	}
}

// TestColumnarBlockRoundTrip covers block shapes the cube algorithms do
// not produce: mixed key lengths under one point, empty keys, value-id
// extremes, empty blocks.
func TestColumnarBlockRoundTrip(t *testing.T) {
	blocks := [][]Cell{
		nil,
		{{Point: 0, State: agg.State{N: 1, Sum: 1, MinV: 1, MaxV: 1}}},
		{
			{Point: 7, Key: []match.ValueID{0}, State: agg.State{N: 2, Sum: 3, MinV: 1, MaxV: 2}},
			{Point: 7, Key: []match.ValueID{0, 4}, State: agg.State{N: 1, Sum: 5, MinV: 5, MaxV: 5}},
			{Point: 7, Key: []match.ValueID{0, 4, 4}, State: agg.State{N: 1, Sum: -1, MinV: -1, MaxV: -1}},
			{Point: 9, Key: []match.ValueID{1<<32 - 1}, State: agg.State{N: 1, Sum: 0.5, MinV: 0.5, MaxV: 0.5}},
		},
		{
			{Point: 1 << 31, Key: []match.ValueID{5, 5, 5}, State: agg.State{}},
			{Point: 1 << 31, Key: []match.ValueID{5, 5, 6}, State: agg.State{N: 3}},
			{Point: 1<<32 - 1, State: agg.State{N: 1, Sum: 2, MinV: 2, MaxV: 2}},
		},
	}
	for i, cells := range blocks {
		buf := appendColumnarBlock(nil, cells)
		got, err := decodeColumnarBlock(buf, len(cells))
		if err != nil {
			t.Fatalf("block %d: decode: %v", i, err)
		}
		if len(got) != len(cells) {
			t.Fatalf("block %d: %d cells, want %d", i, len(got), len(cells))
		}
		for j := range got {
			if got[j].Point != cells[j].Point {
				t.Fatalf("block %d cell %d: point %d, want %d", i, j, got[j].Point, cells[j].Point)
			}
			if len(got[j].Key) != len(cells[j].Key) {
				t.Fatalf("block %d cell %d: key %v, want %v", i, j, got[j].Key, cells[j].Key)
			}
			for k := range got[j].Key {
				if got[j].Key[k] != cells[j].Key[k] {
					t.Fatalf("block %d cell %d: key %v, want %v", i, j, got[j].Key, cells[j].Key)
				}
			}
			if got[j].State != cells[j].State {
				t.Fatalf("block %d cell %d: state %+v, want %+v", i, j, got[j].State, cells[j].State)
			}
		}
	}
}

// TestColumnarDecodeRejectsCorruption mutates every byte of a valid block
// one at a time; the decoder must either error out or return cells, never
// panic or over-allocate (the fuzzer does this harder, this is the quick
// deterministic version).
func TestColumnarDecodeRejectsCorruption(t *testing.T) {
	cells := []Cell{
		{Point: 3, Key: []match.ValueID{1, 2}, State: agg.State{N: 2, Sum: 3, MinV: 1, MaxV: 2}},
		{Point: 3, Key: []match.ValueID{1, 3}, State: agg.State{N: 1, Sum: 9, MinV: 9, MaxV: 9}},
		{Point: 5, Key: []match.ValueID{2, 2}, State: agg.State{N: 4, Sum: 2.5, MinV: 0.25, MaxV: 1}},
	}
	valid := appendColumnarBlock(nil, cells)
	for i := range valid {
		for _, delta := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), valid...)
			mut[i] ^= delta
			decodeColumnarBlock(mut, len(cells)) // must not panic
		}
	}
	// Truncations at every length.
	for n := range valid {
		decodeColumnarBlock(valid[:n], len(cells))
	}
	// A wrong index count must be rejected even when the bytes are valid.
	if _, err := decodeColumnarBlock(valid, len(cells)+1); err == nil {
		t.Error("decoder accepted a block whose cell count disagrees with the index")
	}
}

// TestEncodedCellsBytes cross-checks the cost model's size estimator
// against the writer: the estimate must equal the real data section.
func TestEncodedCellsBytes(t *testing.T) {
	lat := makeLattice(t)
	set := makeSet(t, lat, 500, 4)
	path := filepath.Join(t.TempDir(), "est.x3ci")
	sink := CreateIndexed(path)
	in := &cube.Input{Lattice: lat, Source: set, Dicts: set.Dicts}
	if _, err := (cube.Counter{}).Run(in, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var sorted []Cell
	if err := r.Each(func(c Cell) error { sorted = append(sorted, c); return nil }); err != nil {
		t.Fatal(err)
	}
	if got, want := EncodedCellsBytes(sorted, 0), r.DataBytes(); got != want {
		t.Fatalf("EncodedCellsBytes = %d, file data section = %d", got, want)
	}
}
