package cellfile

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"x3/internal/agg"
	"x3/internal/cube"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/pattern"
)

func makeLattice(t *testing.T) *lattice.Lattice {
	t.Helper()
	q := &pattern.CubeQuery{
		FactVar:  "$f",
		FactPath: pattern.MustParsePath("//f"),
		Agg:      pattern.Count,
		Axes: []pattern.AxisSpec{
			{Var: "$a", Path: pattern.MustParsePath("/a"), Relax: pattern.RelaxSet(0).With(pattern.LND)},
			{Var: "$b", Path: pattern.MustParsePath("/b"), Relax: pattern.RelaxSet(0).With(pattern.LND)},
		},
	}
	lat, err := lattice.New(q)
	if err != nil {
		t.Fatal(err)
	}
	return lat
}

func makeSet(t *testing.T, lat *lattice.Lattice, n int, seed int64) *match.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	set := &match.Set{Lattice: lat, Dicts: []*match.Dict{match.NewDict(), match.NewDict()}}
	for i := 0; i < 8; i++ {
		set.Dicts[0].ID(string(rune('a' + i)))
		set.Dicts[1].ID(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		f := &match.Fact{ID: int64(i), Key: "k", Measure: 1}
		f.Axes = [][][]match.ValueID{
			{{match.ValueID(rng.Intn(8))}},
			{{match.ValueID(rng.Intn(8))}},
		}
		set.Facts = append(set.Facts, f)
	}
	return set
}

// TestRoundTripThroughAlgorithm computes a cube straight into a cell file
// and compares the read-back contents with an in-memory Result.
func TestRoundTripThroughAlgorithm(t *testing.T) {
	lat := makeLattice(t)
	set := makeSet(t, lat, 200, 1)
	path := filepath.Join(t.TempDir(), "cube.x3cf")
	sink, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	in := &cube.Input{Lattice: lat, Source: set, Dicts: set.Dicts}
	if _, err := (cube.Counter{}).Run(in, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	want, err := cube.RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	read := int64(0)
	err = Each(path, func(c Cell) error {
		read++
		p := lat.FromID(c.Point)
		s, ok := want.State(p, c.Key)
		if !ok {
			t.Fatalf("cell %v/%v not in oracle", p, c.Key)
		}
		if s.N != c.State.N || s.Sum != c.State.Sum {
			t.Fatalf("cell %v/%v state %+v, want %+v", p, c.Key, c.State, s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if read != want.Cells {
		t.Fatalf("read %d cells, oracle has %d", read, want.Cells)
	}
}

func TestTruncationDetected(t *testing.T) {
	lat := makeLattice(t)
	set := makeSet(t, lat, 50, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "cube.x3cf")
	sink, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	in := &cube.Input{Lattice: lat, Source: set, Dicts: set.Dicts}
	if _, err := (cube.Counter{}).Run(in, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.x3cf")
	if err := os.WriteFile(cut, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Each(cut, func(Cell) error { return nil }); err == nil {
		t.Error("truncated cell file read without error")
	}
}

// TestTrailerCountMismatchRejected is the regression test for the v1
// trailer hole: a file whose trailer is not the last thing in it — e.g. a
// forged or misplaced trailer whose count matches only the cells before
// it — used to read back "successfully" while silently dropping every
// cell after the trailer.
func TestTrailerCountMismatchRejected(t *testing.T) {
	lat := makeLattice(t)
	set := makeSet(t, lat, 50, 9)
	dir := t.TempDir()
	path := filepath.Join(dir, "cube.x3cf")
	sink, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	in := &cube.Input{Lattice: lat, Source: set, Dicts: set.Dicts}
	if _, err := (cube.Counter{}).Run(in, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A trailer whose count simply disagrees with the cells stored.
	bumped := append([]byte{}, data...)
	bumped[len(bumped)-1]++
	miscounted := filepath.Join(dir, "miscounted.x3cf")
	if err := os.WriteFile(miscounted, bumped, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Each(miscounted, func(Cell) error { return nil }); err == nil {
		t.Error("trailer count mismatch read without error")
	}

	// An early trailer: take a valid file and append a full extra copy of
	// its cell section after the trailer. The trailer count agrees with
	// the cells read up to it but not with the cells actually stored.
	early := append([]byte{}, data...)
	early = append(early, data[5:]...)
	earlyPath := filepath.Join(dir, "early.x3cf")
	if err := os.WriteFile(earlyPath, early, 0o644); err != nil {
		t.Fatal(err)
	}
	var read int
	err = Each(earlyPath, func(Cell) error { read++; return nil })
	if err == nil {
		t.Errorf("early trailer read without error (%d cells silently dropped)", read)
	}
}

func TestLargePointIDsSurvive(t *testing.T) {
	// Point IDs whose uvarint encoding starts with a continuation byte
	// must not be confused with markers.
	path := filepath.Join(t.TempDir(), "big.x3cf")
	sink, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var s agg.State
	s.Add(1)
	pts := []uint32{0, 1, 127, 128, 255, 1 << 20}
	for _, p := range pts {
		if err := sink.Cell(p, []match.ValueID{match.ValueID(p)}, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	i := 0
	err = Each(path, func(c Cell) error {
		if c.Point != pts[i] || c.Key[0] != match.ValueID(pts[i]) {
			t.Fatalf("cell %d: %+v, want point %d", i, c, pts[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(pts) {
		t.Fatalf("read %d cells", i)
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if err := Each(filepath.Join(dir, "missing"), nil); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Each(bad, nil); err == nil {
		t.Error("bad magic accepted")
	}
	garbled := filepath.Join(dir, "garbled")
	if err := os.WriteFile(garbled, []byte{'X', '3', 'C', 'F', 1, 0x7E}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Each(garbled, func(Cell) error { return nil }); err == nil {
		t.Error("corrupt marker accepted")
	}
}

func TestEmptyCube(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.x3cf")
	sink, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Each(path, func(Cell) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("cells = %d", n)
	}
}
