// Package cellfile streams computed cube cells to a binary file and reads
// them back. The paper's runs "write the results into files" (§4); a
// FileSink plugs into any cube algorithm as its Sink, so huge cubes never
// accumulate in memory, and a Reader iterates the cells later (e.g. to
// serve roll-up queries from a materialized cube).
//
// Format:
//
//	magic "X3CF", version byte
//	per cell: 0x01 marker, uvarint point id, uvarint key length,
//	          key ValueIDs (uvarints), 32-byte aggregate state
//	trailer: 0x00 marker, uvarint cell count
package cellfile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"x3/internal/agg"
	"x3/internal/cube"
	"x3/internal/match"
)

var magic = [4]byte{'X', '3', 'C', 'F'}

const version = 1

// FileSink writes cells to a file as they are emitted. It implements
// cube.Sink. Close finalizes the trailer; a file without a valid trailer
// is detected as truncated on read.
type FileSink struct {
	f     *os.File
	w     *bufio.Writer
	cells int64
	err   error
}

// Create opens a new cell file at path.
func Create(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cellfile: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.Write(magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.WriteByte(version); err != nil {
		f.Close()
		return nil, err
	}
	return &FileSink{f: f, w: w}, nil
}

// Cell implements cube.Sink.
func (s *FileSink) Cell(point uint32, key []match.ValueID, st agg.State) error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.WriteByte(0x01)
	s.writeUvarint(uint64(point))
	s.writeUvarint(uint64(len(key)))
	for _, v := range key {
		s.writeUvarint(uint64(v))
	}
	var enc [agg.EncodedSize]byte
	st.Encode(enc[:])
	if s.err == nil {
		_, s.err = s.w.Write(enc[:])
	}
	s.cells++
	return s.err
}

// Cells returns the number of cells written so far.
func (s *FileSink) Cells() int64 { return s.cells }

// Close writes the trailer and closes the file.
func (s *FileSink) Close() error {
	if s.err != nil {
		s.f.Close()
		return s.err
	}
	if err := s.w.WriteByte(0x00); err != nil {
		s.f.Close()
		return err
	}
	s.writeUvarint(uint64(s.cells))
	if s.err != nil {
		s.f.Close()
		return s.err
	}
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

func (s *FileSink) writeUvarint(v uint64) {
	if s.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, s.err = s.w.Write(buf[:n])
}

var _ cube.Sink = (*FileSink)(nil)

// Cell is one stored cube cell.
type Cell struct {
	Point uint32
	Key   []match.ValueID
	State agg.State
}

// Each streams every cell of the file at path to fn and verifies the
// trailer count.
func Each(path string, fn func(Cell) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("cellfile: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return fmt.Errorf("cellfile: %s: %w", path, err)
	}
	if m != magic {
		return fmt.Errorf("%w: %s is not a cell file", ErrCorrupt, path)
	}
	ver, err := r.ReadByte()
	if err != nil {
		return err
	}
	switch ver {
	case version:
		// the streaming v1 format, handled below
	case indexedVersion, indexedVersionCRC, indexedVersionCol:
		// the indexed v2/v3/v4 formats: delegate to the indexed reader,
		// which knows where the data section ends and the index begins.
		ir, err := OpenIndexed(path)
		if err != nil {
			return err
		}
		defer ir.Close()
		return ir.Each(fn)
	default:
		return fmt.Errorf("%w: %s: unsupported version %d", ErrCorrupt, path, ver)
	}
	var count int64
	for {
		marker, err := r.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: %s: missing trailer (truncated after %d cells)", ErrTruncated, path, count)
		}
		switch marker {
		case 0x00:
			want, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("%w: %s: corrupt trailer: %w", ErrCorrupt, path, err)
			}
			if int64(want) != count {
				return fmt.Errorf("%w: %s: trailer says %d cells, read %d", ErrCorrupt, path, want, count)
			}
			// The trailer must be the last bytes of the file: anything
			// after it means the count only covers a prefix — a forged or
			// misplaced trailer would otherwise silently truncate the
			// cube (the count would "agree" with the cells read so far
			// while disagreeing with the cells actually stored).
			if _, err := r.ReadByte(); !errors.Is(err, io.EOF) {
				return fmt.Errorf("%w: %s: data after trailer (trailer count %d does not cover the whole file)", ErrCorrupt, path, want)
			}
			return nil
		case 0x01:
			// a cell record follows
		default:
			return fmt.Errorf("%w: %s: corrupt record marker 0x%02x", ErrCorrupt, path, marker)
		}
		point, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		klen, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		if klen > 1<<16 {
			return fmt.Errorf("%w: %s: implausible key length %d", ErrCorrupt, path, klen)
		}
		c := Cell{Point: uint32(point), Key: make([]match.ValueID, klen)}
		for i := range c.Key {
			v, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			c.Key[i] = match.ValueID(v)
		}
		var enc [agg.EncodedSize]byte
		if _, err := io.ReadFull(r, enc[:]); err != nil {
			return fmt.Errorf("%w: %s: cell %d state: %w", ErrTruncated, path, count, err)
		}
		c.State = agg.Decode(enc[:])
		count++
		if err := fn(c); err != nil {
			return err
		}
	}
}
