package cellfile

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"x3/internal/agg"
	"x3/internal/match"
)

// fuzzSeedV1 builds a small valid v1 cell file in memory.
func fuzzSeedV1(tb testing.TB) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.x3cf")
	sink, err := Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	var s agg.State
	s.Add(2)
	for p := uint32(0); p < 4; p++ {
		if err := sink.Cell(p, []match.ValueID{match.ValueID(p), 300}, s); err != nil {
			tb.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// fuzzSeedIndexed builds a small valid indexed cell file of the given
// format version in memory.
func fuzzSeedIndexed(tb testing.TB, ver int) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.x3ci")
	sink := CreateIndexed(path)
	sink.Version = ver
	var s agg.State
	s.Add(3)
	for p := uint32(0); p < 6; p++ {
		for k := 0; k < 5; k++ {
			if err := sink.Cell(p, []match.ValueID{match.ValueID(k)}, s); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := sink.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzCellfile throws arbitrary bytes at both reader paths — the v1
// streaming reader and the v2 indexed open/scan — which must reject
// corrupt input with an error, never panic, and never trust an
// attacker-chosen count or offset enough to allocate unboundedly. The
// seeds cover both valid formats plus the historically dangerous shapes:
// truncation, forged trailers, corrupt markers, and oversized uvarints.
func FuzzCellfile(f *testing.F) {
	v1 := fuzzSeedV1(f)
	v2 := fuzzSeedIndexed(f, 2)
	v3 := fuzzSeedIndexed(f, 3)
	v4 := fuzzSeedIndexed(f, 4)
	f.Add(v1)
	f.Add(v2)
	f.Add(v3)
	f.Add(v4)
	f.Add(v1[:len(v1)-3])              // truncated trailer
	f.Add(v2[:len(v2)-footerLen+4])    // truncated v2 footer
	f.Add(v3[:len(v3)-footerLenCRC+4]) // truncated v3 footer
	f.Add(v2[:len(v2)/2])              // truncated mid-index
	f.Add(append([]byte{}, v1[:5]...)) // header only, no trailer
	corrupt := append([]byte{}, v1...)
	corrupt[6] = 0x7E // clobber the first record marker
	f.Add(corrupt)
	// An oversized uvarint where a key length belongs.
	huge := []byte{'X', '3', 'C', 'F', 1, 0x01, 0x00}
	huge = binary.AppendUvarint(huge, 1<<40)
	f.Add(huge)
	// A v2 footer claiming a gigantic cell count over a tiny file.
	lying := append([]byte{}, v2...)
	binary.BigEndian.PutUint64(lying[len(lying)-footerLen:], 1<<50)
	f.Add(lying)
	// A v2 index offset pointing past EOF.
	past := append([]byte{}, v2...)
	binary.BigEndian.PutUint64(past[len(past)-footerLen+8:], 1<<40)
	f.Add(past)
	// A v3 file with a flipped data bit (the per-block CRC's job).
	flipped := append([]byte{}, v3...)
	flipped[headerLen+3] ^= 0x10
	f.Add(flipped)
	// A v3 file whose index bytes are damaged (the index CRC's job).
	idxFlip := append([]byte{}, v3...)
	idxFlip[len(idxFlip)-footerLenCRC-2] ^= 0x01
	f.Add(idxFlip)
	// A v3 footer with a lying index checksum.
	badCRC := append([]byte{}, v3...)
	binary.BigEndian.PutUint32(badCRC[len(badCRC)-footerLenCRC+16:], 0xDEADBEEF)
	f.Add(badCRC)
	// An early v1 trailer with trailing data (the fixed trailer hole).
	f.Add(append(append([]byte{}, v1...), v1[5:]...))
	// v4 columnar shapes: a corrupt value dictionary / run header (any
	// early data byte participates in the varint streams), a truncated
	// column tail, an all-continuation-bits varint run, and a damaged
	// index over valid columns.
	badDict := append([]byte{}, v4...)
	badDict[headerLen+1] ^= 0xFF
	f.Add(badDict)
	f.Add(v4[:headerLen+3]) // truncated mid-column
	badRun := append([]byte{}, v4...)
	for i := headerLen; i < headerLen+8 && i < len(badRun); i++ {
		badRun[i] = 0x80 // uvarint that never terminates
	}
	f.Add(badRun)
	v4idx := append([]byte{}, v4...)
	v4idx[len(v4idx)-footerLenCRC-2] ^= 0x01
	f.Add(v4idx)
	f.Add(v4[:len(v4)-footerLenCRC+4]) // truncated v4 footer

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.x3cf")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// The version-dispatching entry point: any outcome but a panic or
		// an unbounded allocation is acceptable; errors are the job.
		_ = Each(path, func(c Cell) error {
			if len(c.Key) > 1<<16 {
				t.Fatalf("reader surfaced an implausible key of %d values", len(c.Key))
			}
			return nil
		})
		// The indexed reader directly, including its random-access path.
		r, err := OpenIndexed(path)
		if err != nil {
			return
		}
		defer r.Close()
		_ = r.Each(func(Cell) error { return nil })
		for _, p := range r.Points() {
			_ = r.EachCuboid(p, func(Cell) error { return nil })
		}
		_ = r.EachCuboid(1<<31, func(Cell) error { return nil })
	})
}

// FuzzColumnarBlock drives the v4 block decoder directly — below the CRC
// layer that would otherwise reject most mutations — so the column
// parsers themselves (run headers, dictionary deltas, LCP key encoding,
// packed aggregate states) prove panic-free and allocation-bounded on
// arbitrary bytes. Decoded blocks must survive a re-encode round trip.
func FuzzColumnarBlock(f *testing.F) {
	var s agg.State
	s.Add(7.5)
	s.Add(-3)
	shapes := [][]Cell{
		nil,
		{{Point: 0, Key: nil, State: s}},
		{
			{Point: 1, Key: []match.ValueID{2, 9}, State: s},
			{Point: 1, Key: []match.ValueID{3, 1}, State: s},
			{Point: 5, Key: []match.ValueID{0}, State: s},
		},
		{
			{Point: 1<<32 - 1, Key: []match.ValueID{1<<32 - 1}, State: s},
		},
	}
	for _, cells := range shapes {
		f.Add(len(cells), appendColumnarBlock(nil, cells))
	}
	f.Add(3, []byte{0x03, 0x80, 0x80, 0x80}) // count 3, runaway varints
	f.Add(1, []byte{0x01, 0x00, 0x00})       // truncated columns
	f.Fuzz(func(t *testing.T, count int, data []byte) {
		if count < 0 || count > 1<<12 {
			return
		}
		cells, err := decodeColumnarBlock(data, count)
		if err != nil {
			return
		}
		if len(cells) != count {
			t.Fatalf("decoder returned %d cells for a declared count of %d", len(cells), count)
		}
		for i := range cells {
			if len(cells[i].Key) > 1<<16 {
				t.Fatalf("decoder surfaced an implausible key of %d values", len(cells[i].Key))
			}
		}
		// Accepted bytes must describe a canonical block: re-encoding the
		// decoded cells reproduces a decodable block with equal cells.
		again, err := decodeColumnarBlock(appendColumnarBlock(nil, cells), count)
		if err != nil {
			t.Fatalf("re-encoded block does not decode: %v", err)
		}
		for i := range cells {
			if cells[i].Point != again[i].Point || len(cells[i].Key) != len(again[i].Key) {
				t.Fatalf("cell %d changed across re-encode", i)
			}
		}
	})
}
