package cellfile

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"x3/internal/agg"
	"x3/internal/match"
)

// fuzzSeedV1 builds a small valid v1 cell file in memory.
func fuzzSeedV1(tb testing.TB) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.x3cf")
	sink, err := Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	var s agg.State
	s.Add(2)
	for p := uint32(0); p < 4; p++ {
		if err := sink.Cell(p, []match.ValueID{match.ValueID(p), 300}, s); err != nil {
			tb.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// fuzzSeedV2 builds a small valid v2 (indexed) cell file in memory.
func fuzzSeedV2(tb testing.TB) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.x3ci")
	var cells []Cell
	var s agg.State
	s.Add(3)
	for p := uint32(0); p < 6; p++ {
		for k := 0; k < 5; k++ {
			cells = append(cells, Cell{Point: p, Key: []match.ValueID{match.ValueID(k)}, State: s})
		}
	}
	if err := WriteIndexed(path, cells); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzCellfile throws arbitrary bytes at both reader paths — the v1
// streaming reader and the v2 indexed open/scan — which must reject
// corrupt input with an error, never panic, and never trust an
// attacker-chosen count or offset enough to allocate unboundedly. The
// seeds cover both valid formats plus the historically dangerous shapes:
// truncation, forged trailers, corrupt markers, and oversized uvarints.
func FuzzCellfile(f *testing.F) {
	v1 := fuzzSeedV1(f)
	v2 := fuzzSeedV2(f)
	f.Add(v1)
	f.Add(v2)
	f.Add(v1[:len(v1)-3])              // truncated trailer
	f.Add(v2[:len(v2)-footerLen+4])    // truncated footer
	f.Add(v2[:len(v2)/2])              // truncated mid-index
	f.Add(append([]byte{}, v1[:5]...)) // header only, no trailer
	corrupt := append([]byte{}, v1...)
	corrupt[6] = 0x7E // clobber the first record marker
	f.Add(corrupt)
	// An oversized uvarint where a key length belongs.
	huge := []byte{'X', '3', 'C', 'F', 1, 0x01, 0x00}
	huge = binary.AppendUvarint(huge, 1<<40)
	f.Add(huge)
	// A v2 footer claiming a gigantic cell count over a tiny file.
	lying := append([]byte{}, v2...)
	binary.BigEndian.PutUint64(lying[len(lying)-footerLen:], 1<<50)
	f.Add(lying)
	// A v2 index offset pointing past EOF.
	past := append([]byte{}, v2...)
	binary.BigEndian.PutUint64(past[len(past)-footerLen+8:], 1<<40)
	f.Add(past)
	// An early v1 trailer with trailing data (the fixed trailer hole).
	f.Add(append(append([]byte{}, v1...), v1[5:]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.x3cf")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// The version-dispatching entry point: any outcome but a panic or
		// an unbounded allocation is acceptable; errors are the job.
		_ = Each(path, func(c Cell) error {
			if len(c.Key) > 1<<16 {
				t.Fatalf("reader surfaced an implausible key of %d values", len(c.Key))
			}
			return nil
		})
		// The indexed reader directly, including its random-access path.
		r, err := OpenIndexed(path)
		if err != nil {
			return
		}
		defer r.Close()
		_ = r.Each(func(Cell) error { return nil })
		for _, p := range r.Points() {
			_ = r.EachCuboid(p, func(Cell) error { return nil })
		}
		_ = r.EachCuboid(1<<31, func(Cell) error { return nil })
	})
}
