package cellfile

import (
	"testing"
)

// TestIteratorMatchesEach pins the pull iterator to the callback walk:
// same cells, same (point, key) order, across small blocks that force
// many block-boundary crossings.
func TestIteratorMatchesEach(t *testing.T) {
	path, _ := buildIndexed(t, 5, 300, 9)
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var want []Cell
	if err := r.Each(func(c Cell) error {
		c2 := c
		c2.Key = append(c2.Key[:0:0], c.Key...)
		want = append(want, c2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	it := r.Iterate()
	var n int
	for {
		c, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
		if n >= len(want) {
			t.Fatalf("iterator yielded more than the %d cells Each saw", len(want))
		}
		w := want[n]
		if c.Point != w.Point || c.State != w.State || len(c.Key) != len(w.Key) {
			t.Fatalf("cell %d: iterator %v, Each %v", n, *c, w)
		}
		for i := range c.Key {
			if c.Key[i] != w.Key[i] {
				t.Fatalf("cell %d key %d: iterator %d, Each %d", n, i, c.Key[i], w.Key[i])
			}
		}
		n++
	}
	if n != len(want) {
		t.Fatalf("iterator yielded %d cells, Each saw %d", n, len(want))
	}
	// Exhausted iterators stay exhausted.
	if c, err := it.Next(); c != nil || err != nil {
		t.Fatalf("Next after end = (%v, %v)", c, err)
	}
}

func TestIteratorEmptyFile(t *testing.T) {
	path, _ := buildIndexed(t, 5, 300, 9)
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// A fresh iterator on a real file still terminates when asked past
	// the end repeatedly.
	it := r.Iterate()
	for {
		c, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			break
		}
	}
}
