package cellfile

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// readerGen hands every IndexedReader a distinct cache-key namespace, so
// a shared BlockCache survives a reader swap (serving refresh) without
// ever returning a stale predecessor block.
var readerGen atomic.Uint64

func nextReaderGen() uint64 { return readerGen.Add(1) }

// BlockCache is a fixed-capacity LRU over decoded index blocks. It is
// safe for concurrent use and may be shared by any number of readers;
// capacity is counted in blocks, so its memory footprint is roughly
// capacity × block cell count × cell size.
type BlockCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	m   map[blockKey]*list.Element
}

type blockKey struct {
	gen   uint64
	block int
}

type blockEntry struct {
	key   blockKey
	cells []Cell
}

// NewBlockCache returns a cache holding up to capacity decoded blocks
// (minimum 1).
func NewBlockCache(capacity int) *BlockCache {
	if capacity < 1 {
		capacity = 1
	}
	return &BlockCache{cap: capacity, ll: list.New(), m: make(map[blockKey]*list.Element)}
}

// Len returns the number of cached blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *BlockCache) get(gen uint64, block int) ([]Cell, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[blockKey{gen, block}]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*blockEntry).cells, true
}

func (c *BlockCache) put(gen uint64, block int, cells []Cell) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := blockKey{gen, block}
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*blockEntry).cells = cells
		return
	}
	el := c.ll.PushFront(&blockEntry{key: key, cells: cells})
	c.m[key] = el
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*blockEntry).key)
	}
}
