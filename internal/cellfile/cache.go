package cellfile

import (
	"container/list"
	"sync"
	"sync/atomic"

	"x3/internal/obs"
)

// readerGen hands every IndexedReader a distinct cache-key namespace, so
// a shared BlockCache survives a reader swap (serving refresh) without
// ever returning a stale predecessor block.
var readerGen atomic.Uint64

func nextReaderGen() uint64 { return readerGen.Add(1) }

// DefaultBlockBytes is the nominal on-disk size of one v2/v3 block
// (DefaultBlockCells row-encoded cells); it converts the legacy
// blocks-count cache capacity into a byte budget.
const DefaultBlockBytes = 16 << 10

// BlockCache is a byte-budgeted LRU over decoded index blocks. It is safe
// for concurrent use and may be shared by any number of readers. Each
// entry is charged its block's *encoded* length: residency is measured in
// on-disk bytes, so a columnar v4 block that compresses 5x occupies 5x
// less budget than its v3 twin and the same budget holds 5x more cuboids
// — which is the point of compressing them. (The decoded cells the cache
// actually holds are the same size either way; the budget prices what the
// compression saved, not Go heap bytes.)
type BlockCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List
	m      map[blockKey]*list.Element
	gauge  *obs.Gauge // serve.cache.bytes, nil-safe
}

type blockKey struct {
	gen   uint64
	block int
}

type blockEntry struct {
	key   blockKey
	cells []Cell
	cost  int64
}

// NewBlockCache returns a cache budgeted for roughly capacity uncompressed
// blocks (capacity × DefaultBlockBytes). Compatibility constructor: new
// call sites should size in bytes with NewBlockCacheBytes.
func NewBlockCache(capacity int) *BlockCache {
	if capacity < 1 {
		capacity = 1
	}
	return NewBlockCacheBytes(int64(capacity) * DefaultBlockBytes)
}

// NewBlockCacheBytes returns a cache that evicts least-recently-used
// blocks once the sum of cached encoded block lengths exceeds budget
// (minimum one block stays resident regardless).
func NewBlockCacheBytes(budget int64) *BlockCache {
	if budget < 1 {
		budget = 1
	}
	return &BlockCache{budget: budget, ll: list.New(), m: make(map[blockKey]*list.Element)}
}

// Observe resolves the serve.cache.bytes gauge against reg, tracking the
// cache's current encoded-byte residency. A nil registry leaves it off.
func (c *BlockCache) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gauge = reg.Gauge("serve.cache.bytes")
	c.gauge.Set(c.bytes)
}

// Len returns the number of cached blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total encoded length of the cached blocks.
func (c *BlockCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Budget returns the cache's byte budget.
func (c *BlockCache) Budget() int64 { return c.budget }

func (c *BlockCache) get(gen uint64, block int) ([]Cell, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[blockKey{gen, block}]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*blockEntry).cells, true
}

// put inserts the decoded block under its key, charging cost bytes (the
// block's encoded length; a floor of 1 keeps degenerate entries evictable).
func (c *BlockCache) put(gen uint64, block int, cells []Cell, cost int64) {
	if cost < 1 {
		cost = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := blockKey{gen, block}
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*blockEntry)
		c.bytes += cost - e.cost
		e.cells, e.cost = cells, cost
	} else {
		c.ll.PushFront(&blockEntry{key: key, cells: cells, cost: cost})
		c.m[key] = c.ll.Front()
		c.bytes += cost
	}
	for c.bytes > c.budget && c.ll.Len() > 1 {
		back := c.ll.Back()
		e := back.Value.(*blockEntry)
		c.ll.Remove(back)
		delete(c.m, e.key)
		c.bytes -= e.cost
	}
	c.gauge.Set(c.bytes)
}
