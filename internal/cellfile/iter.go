package cellfile

// CellIterator is a pull-style walk over every cell of an indexed file,
// in (point, key) order — the shape the compactor's k-way merge needs,
// where the callback form of Each cannot yield control between cells.
// Blocks are read fresh (checksummed, retry-budgeted, cache-bypassing):
// a compaction pass over a whole generation must not evict the query
// path's hot blocks.
type CellIterator struct {
	r     *IndexedReader
	bi    int
	cells []Cell
	pos   int
}

// Iterate positions a new iterator before the file's first cell.
func (r *IndexedReader) Iterate() *CellIterator {
	return &CellIterator{r: r}
}

// Next returns the next cell, or (nil, nil) once the file is exhausted.
// The returned cell (including its Key slice) is only valid until the
// following Next call that crosses a block boundary.
func (it *CellIterator) Next() (*Cell, error) {
	for it.pos >= len(it.cells) {
		if it.bi >= len(it.r.blocks) {
			return nil, nil
		}
		cells, err := it.r.readBlockFresh(it.bi)
		if err != nil {
			return nil, err
		}
		it.r.scanCells.Add(int64(len(cells)))
		it.bi++
		it.cells = cells
		it.pos = 0
	}
	c := &it.cells[it.pos]
	it.pos++
	return c, nil
}
