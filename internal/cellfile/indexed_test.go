package cellfile

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"x3/internal/agg"
	"x3/internal/cube"
	"x3/internal/match"
	"x3/internal/obs"
)

// buildIndexed computes a cube straight into an indexed sink and returns
// the file path plus the oracle result for cross-checking.
func buildIndexed(t *testing.T, blockCells, facts int, seed int64) (string, *cube.Result) {
	t.Helper()
	lat := makeLattice(t)
	set := makeSet(t, lat, facts, seed)
	path := filepath.Join(t.TempDir(), "cube.x3ci")
	sink := CreateIndexed(path)
	sink.BlockCells = blockCells
	in := &cube.Input{Lattice: lat, Source: set, Dicts: set.Dicts}
	if _, err := (cube.Counter{}).Run(in, sink); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := cube.RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	return path, want
}

func TestIndexedRoundTrip(t *testing.T) {
	path, want := buildIndexed(t, 7, 200, 1)
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumCells() != want.Cells {
		t.Fatalf("reader reports %d cells, oracle has %d", r.NumCells(), want.Cells)
	}
	var read int64
	var lastPoint uint32
	var lastKey []match.ValueID
	err = r.Each(func(c Cell) error {
		read++
		p := want.Lattice.FromID(c.Point)
		s, ok := want.State(p, c.Key)
		if !ok {
			t.Fatalf("cell %v/%v not in oracle", p, c.Key)
		}
		if s != c.State {
			t.Fatalf("cell %v/%v state %+v, want %+v", p, c.Key, c.State, s)
		}
		if read > 1 && c.Point < lastPoint {
			t.Fatalf("points out of order: %d after %d", c.Point, lastPoint)
		}
		if read > 1 && c.Point == lastPoint {
			for i := range c.Key {
				if c.Key[i] != lastKey[i] {
					if c.Key[i] < lastKey[i] {
						t.Fatalf("keys out of order in point %d: %v after %v", c.Point, c.Key, lastKey)
					}
					break
				}
			}
		}
		lastPoint, lastKey = c.Point, append(lastKey[:0], c.Key...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if read != want.Cells {
		t.Fatalf("read %d cells, oracle has %d", read, want.Cells)
	}

	// The generic Each entry point must dispatch v2 files too.
	var viaEach int64
	if err := Each(path, func(Cell) error { viaEach++; return nil }); err != nil {
		t.Fatal(err)
	}
	if viaEach != want.Cells {
		t.Fatalf("Each read %d cells of a v2 file, want %d", viaEach, want.Cells)
	}
}

func TestEachCuboidBoundedAndComplete(t *testing.T) {
	path, want := buildIndexed(t, 7, 300, 2)
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	reg := obs.New()
	r.Observe(reg)
	if r.NumBlocks() < 4 {
		t.Fatalf("want several blocks, got %d", r.NumBlocks())
	}
	lat := want.Lattice
	for _, p := range lat.Points() {
		pid := lat.ID(p)
		dirCells, ok := r.CuboidCells(pid)
		if int(dirCells) != want.CuboidSize(p) {
			t.Fatalf("directory says cuboid %s has %d cells, oracle %d", lat.Label(p), dirCells, want.CuboidSize(p))
		}
		if !ok && want.CuboidSize(p) > 0 {
			t.Fatalf("cuboid %s missing from directory", lat.Label(p))
		}
		before := reg.Counter("serve.scan.cells").Value()
		var got int64
		err := r.EachCuboid(pid, func(c Cell) error {
			if c.Point != pid {
				t.Fatalf("cuboid %d stream leaked cell of %d", pid, c.Point)
			}
			got++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != dirCells {
			t.Fatalf("cuboid %s streamed %d cells, directory says %d", lat.Label(p), got, dirCells)
		}
		scanned := reg.Counter("serve.scan.cells").Value() - before
		// Bounded: the scan may touch one leading block plus the cuboid's
		// own blocks, never the whole file (cuboids here are much smaller
		// than the file).
		if limit := dirCells + 2*7; scanned > limit && scanned >= r.NumCells() {
			t.Fatalf("cuboid %s scanned %d cells (cuboid %d, total %d)", lat.Label(p), scanned, dirCells, r.NumCells())
		}
	}
	// An unmaterialized point streams nothing and reads nothing.
	before := reg.Counter("serve.scan.cells").Value()
	if err := r.EachCuboid(99999, func(Cell) error { t.Fatal("phantom cell"); return nil }); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("serve.scan.cells").Value() != before {
		t.Error("missing cuboid still scanned blocks")
	}
}

func TestIndexedReaderCacheSharing(t *testing.T) {
	path, _ := buildIndexed(t, 7, 200, 3)
	reg := obs.New()
	cache := NewBlockCache(4)
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Observe(reg)
	r.SetCache(cache)
	if err := r.Each(func(Cell) error { return nil }); err != nil {
		t.Fatal(err)
	}
	misses := reg.Counter("serve.cache.misses").Value()
	if misses != int64(r.NumBlocks()) {
		t.Fatalf("first pass missed %d times, want %d", misses, r.NumBlocks())
	}
	if cache.Bytes() > cache.Budget() {
		t.Fatalf("cache holds %d bytes, budget %d", cache.Bytes(), cache.Budget())
	}
	// The sequential pass left the tail blocks resident; re-reading the
	// last cuboid hits them (a full re-scan would thrash the tiny LRU).
	pts := r.Points()
	if err := r.EachCuboid(pts[len(pts)-1], func(Cell) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("serve.cache.hits").Value() == 0 {
		t.Error("no hits re-reading the resident tail blocks")
	}
	// A second reader over the same file must not see the first one's
	// entries as its own (distinct generation).
	r2, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	r2.Observe(reg)
	r2.SetCache(cache)
	hitsBefore := reg.Counter("serve.cache.hits").Value()
	if err := r2.Each(func(Cell) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("serve.cache.hits").Value() != hitsBefore {
		t.Error("second reader hit the first reader's cache entries")
	}
}

func TestIndexedCorruptionRejected(t *testing.T) {
	path, _ := buildIndexed(t, 7, 120, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string][]byte{
		"truncated-footer": data[:len(data)-3],
		"truncated-half":   data[:len(data)/2],
		"no-header":        data[2:],
		"empty":            {},
	}
	// Flip one byte inside the index section (footer's index offset is at
	// len-12..len-4; index starts well before that).
	corrupt := append([]byte{}, data...)
	corrupt[len(corrupt)-footerLen-2] ^= 0xFF
	cases["corrupt-index"] = corrupt
	// Lie about the footer cell count.
	lied := append([]byte{}, data...)
	lied[7] ^= 0x01 // byte 3 of the big-endian count at offset len-20... see below
	for name, b := range cases {
		p := write(name+".x3ci", b)
		if r, err := OpenIndexed(p); err == nil {
			r.Close()
			t.Errorf("%s: opened without error", name)
		}
	}
	// Footer count mismatch, explicitly.
	mis := append([]byte{}, data...)
	mis[len(mis)-footerLen+7] ^= 0x01
	p := write("footer-count.x3ci", mis)
	if r, err := OpenIndexed(p); err == nil {
		r.Close()
		t.Error("footer count mismatch opened without error")
	}
	_ = lied
}

func TestWriteIndexedSortsArbitraryOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var cells []Cell
	for i := 0; i < 500; i++ {
		var s agg.State
		s.Add(float64(i))
		cells = append(cells, Cell{
			Point: uint32(rng.Intn(9)),
			Key:   []match.ValueID{match.ValueID(rng.Intn(50)), match.ValueID(rng.Intn(50))},
			State: s,
		})
	}
	path := filepath.Join(t.TempDir(), "shuffled.x3ci")
	if err := WriteIndexed(path, cells); err != nil {
		t.Fatal(err)
	}
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var n int64
	var last Cell
	err = r.Each(func(c Cell) error {
		if n > 0 {
			if c.Point < last.Point {
				t.Fatal("points unsorted")
			}
			if c.Point == last.Point && (c.Key[0] < last.Key[0] ||
				(c.Key[0] == last.Key[0] && c.Key[1] < last.Key[1])) {
				t.Fatal("keys unsorted")
			}
		}
		last = c
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("read %d cells, wrote 500", n)
	}
}

func TestIndexedEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.x3ci")
	if err := WriteIndexed(path, nil); err != nil {
		t.Fatal(err)
	}
	r, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumCells() != 0 || r.NumBlocks() != 0 || len(r.Points()) != 0 {
		t.Fatalf("empty store reports cells=%d blocks=%d points=%d", r.NumCells(), r.NumBlocks(), len(r.Points()))
	}
	if err := r.Each(func(Cell) error { t.Fatal("cell in empty file"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSinkAccessors(t *testing.T) {
	dir := t.TempDir()
	v1, err := Create(filepath.Join(dir, "a.x3cf"))
	if err != nil {
		t.Fatal(err)
	}
	var s agg.State
	s.Add(1)
	if err := v1.Cell(0, []match.ValueID{1}, s); err != nil {
		t.Fatal(err)
	}
	if v1.Cells() != 1 {
		t.Fatalf("v1 sink reports %d cells", v1.Cells())
	}
	if err := v1.Close(); err != nil {
		t.Fatal(err)
	}
	v2 := CreateIndexed(filepath.Join(dir, "b.x3ci"))
	if err := v2.Cell(0, []match.ValueID{1}, s); err != nil {
		t.Fatal(err)
	}
	if v2.Cells() != 1 {
		t.Fatalf("v2 sink reports %d cells", v2.Cells())
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenIndexed(filepath.Join(dir, "b.x3ci"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Path() != filepath.Join(dir, "b.x3ci") {
		t.Fatalf("reader path = %q", r.Path())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Unwritable paths surface on Create/Close, not silently.
	if _, err := Create(filepath.Join(dir, "no-dir", "x.x3cf")); err == nil {
		t.Error("v1 Create into a missing directory succeeded")
	}
	bad := CreateIndexed(filepath.Join(dir, "no-dir", "x.x3ci"))
	if err := bad.Close(); err == nil {
		t.Error("v2 Close into a missing directory succeeded")
	}
	if NewBlockCache(0).Budget() != DefaultBlockBytes {
		t.Error("zero-capacity cache not clamped to one block's budget")
	}
	if NewBlockCacheBytes(0).Budget() != 1 {
		t.Error("zero-byte cache budget not clamped")
	}
}
