// The v4 columnar block encoding. v2/v3 store each cell as an independent
// row record (uvarint point, uvarint key length, key ValueIDs, 32-byte
// aggregate state), which burns ~37 bytes per cell on data that is wildly
// redundant: within a block the point id repeats for hundreds of cells,
// neighbouring sorted keys share long prefixes, the same ValueIDs recur,
// and most aggregate states are small integers dressed up as two fixed
// 64-bit floats. v4 keeps the container (header, sparse index, cuboid
// directory, CRC footer) identical to v3 but lays each block out
// column-wise:
//
//	uvarint cell count (must match the index entry)
//	point/key-length runs, covering all cells in order:
//	    uvarint run length,
//	    uvarint point (first run: absolute; later runs: delta, ≥0),
//	    uvarint key length (shared by every cell of the run)
//	value dictionary: uvarint size, then the sorted distinct ValueIDs
//	    of every key in the block (first absolute, then deltas ≥1)
//	key column, one entry per cell with a non-empty key:
//	    uvarint shared-prefix length with the previous cell's key,
//	    then (klen − lcp) uvarint dictionary indexes
//	aggregate column, one packed state per cell (see appendPackedState)
//
// Everything is validated on decode — run totals, dictionary sortedness,
// prefix bounds, index ranges, flag bits, trailing bytes — so a corrupt
// block that slips past the CRC (or is handed to the decoder directly by
// the fuzzer) fails with an error instead of a panic or a giant
// allocation. Decoding must reproduce the exact agg.State bit patterns
// that were encoded: the packed-state flags are chosen by bit-level
// comparisons (never plain float ==, which would conflate 0 and -0), so a
// v4 round trip is byte-equal to v3 at the answer layer.
package cellfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"x3/internal/agg"
	"x3/internal/match"
)

// minRecordLenV4 is the smallest per-cell footprint a v4 block can claim:
// amortized, each cell costs at least one key/aggregate byte. It replaces
// minRecordLen in the index plausibility bounds for v4 files.
const minRecordLenV4 = 2

// maxBlockKeyInts bounds the total decoded key length of one block
// (cells × axes); real blocks hold DefaultBlockCells cells of a handful
// of axes each, so anything past this is a corrupt header trying to force
// a huge allocation.
const maxBlockKeyInts = 1 << 20

// Packed aggregate-state flags. MinV is always present; MaxV and Sum are
// omitted entirely when derivable from MinV and N.
const (
	psMinInt  = 1 << 0 // MinV stored as a zigzag varint integer
	psMaxSame = 1 << 1 // MaxV bit-equal to MinV, omitted
	psMaxInt  = 1 << 2 // MaxV stored as a zigzag varint integer
	psSumNMin = 1 << 3 // Sum bit-equal to MinV×N, omitted
	psSumInt  = 1 << 4 // Sum stored as a zigzag varint integer
	psAll     = psMinInt | psMaxSame | psMaxInt | psSumNMin | psSumInt
)

// maxExactInt is the largest float64 magnitude whose integer neighbourhood
// is exactly representable; beyond it the int64↔float64 round trip is
// lossy, so such values are stored as raw bits.
const maxExactInt = 1 << 53

// packableInt reports whether v survives a float64→int64→float64 round
// trip bit-for-bit. NaN and ±Inf fail the range check; -0 must be excluded
// explicitly (it compares equal to 0 but float64(int64(0)) loses the sign
// bit).
func packableInt(v float64) bool {
	return v == math.Trunc(v) && v >= -maxExactInt && v <= maxExactInt &&
		!(v == 0 && math.Signbit(v))
}

func putVarint(dst []byte, v int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func putFloatBits(dst []byte, v float64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
	return append(dst, buf[:]...)
}

// appendPackedState appends the packed encoding of s: a flags byte, N as a
// uvarint, then MinV / MaxV / Sum each stored as a zigzag varint when it
// is an exactly-representable integer, as raw 8-byte float bits otherwise,
// or omitted entirely when the flags say it is derivable. All derivability
// checks compare bit patterns, so decode reconstructs s exactly.
func appendPackedState(dst []byte, s agg.State) []byte {
	var flags byte
	minInt := packableInt(s.MinV)
	if minInt {
		flags |= psMinInt
	}
	maxSame := math.Float64bits(s.MaxV) == math.Float64bits(s.MinV)
	maxInt := false
	if maxSame {
		flags |= psMaxSame
	} else if packableInt(s.MaxV) {
		maxInt = true
		flags |= psMaxInt
	}
	sumNMin := math.Float64bits(s.Sum) == math.Float64bits(s.MinV*float64(s.N))
	sumInt := false
	if sumNMin {
		flags |= psSumNMin
	} else if packableInt(s.Sum) {
		sumInt = true
		flags |= psSumInt
	}
	dst = append(dst, flags)
	dst = putUvarint(dst, uint64(s.N))
	if minInt {
		dst = putVarint(dst, int64(s.MinV))
	} else {
		dst = putFloatBits(dst, s.MinV)
	}
	if !maxSame {
		if maxInt {
			dst = putVarint(dst, int64(s.MaxV))
		} else {
			dst = putFloatBits(dst, s.MaxV)
		}
	}
	if !sumNMin {
		if sumInt {
			dst = putVarint(dst, int64(s.Sum))
		} else {
			dst = putFloatBits(dst, s.Sum)
		}
	}
	return dst
}

func readFloatBits(br *bytes.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(buf[:])), nil
}

// decodePackedState reads one packed aggregate state. The flag byte is
// fully validated: unknown bits and contradictory combinations (a value
// both omitted and varint-encoded) are corruption, not options.
func decodePackedState(br *bytes.Reader) (agg.State, error) {
	var s agg.State
	flags, err := br.ReadByte()
	if err != nil {
		return s, err
	}
	if flags&^byte(psAll) != 0 {
		return s, fmt.Errorf("unknown state flags %02x", flags)
	}
	if flags&psMaxSame != 0 && flags&psMaxInt != 0 {
		return s, fmt.Errorf("contradictory max flags %02x", flags)
	}
	if flags&psSumNMin != 0 && flags&psSumInt != 0 {
		return s, fmt.Errorf("contradictory sum flags %02x", flags)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return s, err
	}
	s.N = int64(n)
	if flags&psMinInt != 0 {
		v, err := binary.ReadVarint(br)
		if err != nil {
			return s, err
		}
		s.MinV = float64(v)
	} else if s.MinV, err = readFloatBits(br); err != nil {
		return s, err
	}
	switch {
	case flags&psMaxSame != 0:
		s.MaxV = s.MinV
	case flags&psMaxInt != 0:
		v, err := binary.ReadVarint(br)
		if err != nil {
			return s, err
		}
		s.MaxV = float64(v)
	default:
		if s.MaxV, err = readFloatBits(br); err != nil {
			return s, err
		}
	}
	switch {
	case flags&psSumNMin != 0:
		s.Sum = s.MinV * float64(s.N)
	case flags&psSumInt != 0:
		v, err := binary.ReadVarint(br)
		if err != nil {
			return s, err
		}
		s.Sum = float64(v)
	default:
		if s.Sum, err = readFloatBits(br); err != nil {
			return s, err
		}
	}
	return s, nil
}

// appendColumnarBlock appends the v4 columnar encoding of cells to dst.
// The cells must be in file order (sorted by point, then key, as
// writeIndexed guarantees); runs additionally break on key-length changes
// so arbitrary cell mixes still encode correctly. No map is ranged over
// anywhere in the encoder — the dictionary is built by sort+dedup and
// looked up by binary search — so the output is deterministic byte for
// byte (the detiter analyzer enforces this).
func appendColumnarBlock(dst []byte, cells []Cell) []byte {
	dst = putUvarint(dst, uint64(len(cells)))
	if len(cells) == 0 {
		return dst
	}
	// Point / key-length runs.
	for i := 0; i < len(cells); {
		j := i + 1
		for j < len(cells) && cells[j].Point == cells[i].Point && len(cells[j].Key) == len(cells[i].Key) {
			j++
		}
		dst = putUvarint(dst, uint64(j-i))
		if i == 0 {
			dst = putUvarint(dst, uint64(cells[0].Point))
		} else {
			dst = putUvarint(dst, uint64(cells[i].Point-cells[i-1].Point))
		}
		dst = putUvarint(dst, uint64(len(cells[i].Key)))
		i = j
	}
	// Value dictionary: sorted distinct ValueIDs across every key.
	var vals []match.ValueID
	for i := range cells {
		vals = append(vals, cells[i].Key...)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	dict := vals[:0]
	for i, v := range vals {
		if i == 0 || v != dict[len(dict)-1] {
			dict = append(dict, v)
		}
	}
	dst = putUvarint(dst, uint64(len(dict)))
	for i, v := range dict {
		if i == 0 {
			dst = putUvarint(dst, uint64(v))
		} else {
			dst = putUvarint(dst, uint64(v-dict[i-1]))
		}
	}
	// Key column: shared-prefix length against the previous key, then the
	// differing suffix as dictionary indexes.
	var prev []match.ValueID
	for i := range cells {
		key := cells[i].Key
		if len(key) == 0 {
			prev = key
			continue
		}
		lcp := 0
		for lcp < len(key) && lcp < len(prev) && key[lcp] == prev[lcp] {
			lcp++
		}
		dst = putUvarint(dst, uint64(lcp))
		for _, v := range key[lcp:] {
			dst = putUvarint(dst, uint64(sort.Search(len(dict), func(d int) bool { return dict[d] >= v })))
		}
		prev = key
	}
	// Aggregate column.
	for i := range cells {
		dst = appendPackedState(dst, cells[i].State)
	}
	return dst
}

// decodeColumnarBlock parses exactly count cells out of a v4 block. Key
// slices are carved from one shared arena (decoded blocks are treated as
// immutable by every caller, cached or not).
func decodeColumnarBlock(buf []byte, count int) ([]Cell, error) {
	br := bytes.NewReader(buf)
	claimed, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("cell count: %w", err)
	}
	if claimed != uint64(count) {
		return nil, fmt.Errorf("block claims %d cells, index says %d", claimed, count)
	}
	if count == 0 {
		if br.Len() != 0 {
			return nil, fmt.Errorf("%d stray bytes after empty block", br.Len())
		}
		return nil, nil
	}
	cells := make([]Cell, count)
	klens := make([]int, count)
	// Point / key-length runs.
	var (
		covered   = 0
		point     uint64
		totalKeys = 0
	)
	for covered < count {
		runLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("run at cell %d: %w", covered, err)
		}
		if runLen == 0 || runLen > uint64(count-covered) {
			return nil, fmt.Errorf("run at cell %d claims %d of %d remaining cells", covered, runLen, count-covered)
		}
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("run at cell %d: %w", covered, err)
		}
		if covered == 0 {
			point = delta
		} else {
			point += delta
		}
		if point > 1<<32-1 {
			return nil, fmt.Errorf("run at cell %d: point %d overflows", covered, point)
		}
		klen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("run at cell %d: %w", covered, err)
		}
		if klen > 1<<16 {
			return nil, fmt.Errorf("run at cell %d: implausible key length %d", covered, klen)
		}
		totalKeys += int(runLen) * int(klen)
		if totalKeys > maxBlockKeyInts {
			return nil, fmt.Errorf("block claims %d key values", totalKeys)
		}
		for i := 0; i < int(runLen); i++ {
			cells[covered+i].Point = uint32(point)
			klens[covered+i] = int(klen)
		}
		covered += int(runLen)
	}
	// Value dictionary: strictly increasing, so deltas after the first
	// entry must be ≥1.
	dictN, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("dictionary: %w", err)
	}
	if dictN > uint64(br.Len())+1 {
		return nil, fmt.Errorf("dictionary claims %d entries in %d bytes", dictN, br.Len())
	}
	dict := make([]match.ValueID, dictN)
	var dv uint64
	for i := range dict {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("dictionary entry %d: %w", i, err)
		}
		if i == 0 {
			dv = d
		} else {
			if d == 0 {
				return nil, fmt.Errorf("dictionary entry %d not strictly increasing", i)
			}
			dv += d
		}
		if dv > 1<<32-1 {
			return nil, fmt.Errorf("dictionary entry %d value %d overflows", i, dv)
		}
		dict[i] = match.ValueID(dv)
	}
	// Key column: each key is its shared prefix with the previous key plus
	// a suffix of dictionary indexes, carved out of one arena.
	arena := make([]match.ValueID, totalKeys)
	var prev []match.ValueID
	off := 0
	for i := range cells {
		klen := klens[i]
		key := arena[off : off+klen : off+klen]
		off += klen
		if klen > 0 {
			lcp, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("key %d prefix: %w", i, err)
			}
			if lcp > uint64(len(prev)) || lcp > uint64(klen) {
				return nil, fmt.Errorf("key %d shared prefix %d exceeds bounds (prev %d, klen %d)", i, lcp, len(prev), klen)
			}
			copy(key, prev[:lcp])
			for k := int(lcp); k < klen; k++ {
				idx, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("key %d value %d: %w", i, k, err)
				}
				if idx >= dictN {
					return nil, fmt.Errorf("key %d value %d: dictionary index %d of %d", i, k, idx, dictN)
				}
				key[k] = dict[idx]
			}
		}
		cells[i].Key = key
		prev = key
	}
	// Aggregate column.
	for i := range cells {
		st, err := decodePackedState(br)
		if err != nil {
			return nil, fmt.Errorf("state %d: %w", i, err)
		}
		cells[i].State = st
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%d stray bytes after %d cells", br.Len(), len(cells))
	}
	return cells, nil
}

// EncodedCellsBytes returns the total v4-encoded byte size of cells at the
// given block granularity, without writing anything — the cost model uses
// it to price a cuboid's residency before deciding to materialize it. The
// cells must be in file order for representative prefix compression.
func EncodedCellsBytes(cells []Cell, blockCells int) int64 {
	if blockCells <= 0 {
		blockCells = DefaultBlockCells
	}
	var total int64
	var buf []byte
	for i := 0; i < len(cells); i += blockCells {
		j := i + blockCells
		if j > len(cells) {
			j = len(cells)
		}
		buf = appendColumnarBlock(buf[:0], cells[i:j])
		total += int64(len(buf))
	}
	return total
}
