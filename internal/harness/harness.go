// Package harness regenerates the paper's evaluation (§4): one
// configuration per figure, sweeping the number of axes, running the
// algorithms the figure plots, and reporting running time and cube size.
//
// Hardware differs, so absolute seconds are not comparable to the paper;
// the harness preserves the *shapes* — who wins at which axis count, when
// COUNTER goes multi-pass, where TD melts down — by scaling the input tree
// counts and the memory budget together (Options.Scale).
package harness

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"x3/internal/agg"
	"x3/internal/cube"
	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/matchfile"
	"x3/internal/obs"
	"x3/internal/pattern"
	"x3/internal/schema"
	"x3/internal/sjoin"
	"x3/internal/store"
	"x3/internal/xmltree"
)

// Row is one measured run: one algorithm on one axis count of one figure.
type Row struct {
	Figure    string
	Algorithm string
	Axes      int
	Facts     int
	// Workers is the fan-out the run was configured with (0 = GOMAXPROCS;
	// only meaningful for the parallel algorithms and parallel sorts).
	Workers int
	Seconds float64
	Cells   int64
	Stats   cube.Stats
	// DNF is non-empty when the run hit the timeout ("the algorithm did
	// not finish in a reasonable time", as the paper reports for several
	// 7-axis points).
	DNF string
}

// Options control a harness run.
type Options struct {
	// Scale multiplies the paper's input tree counts and the 512 MB
	// budget (default 1/16; override with X3_SCALE).
	Scale float64
	// Timeout per algorithm run; exceeding it records a DNF row.
	Timeout time.Duration
	// TmpDir hosts match files and spill files.
	TmpDir string
	// Log, when non-nil, receives progress lines.
	Log  io.Writer
	Seed int64
	// Registry, when non-nil, receives pipeline metrics and phase spans
	// (harness.generate / harness.match / harness.materialize, plus the
	// store.pool.*, sjoin.*, match.*, extsort.* and cube.* key families).
	Registry *obs.Registry
	// UseStore persists each generated corpus as a paged store file and
	// evaluates the query with structural joins through the buffer pool —
	// the paper's TIMBER configuration — instead of the in-memory
	// evaluator. Required for store.pool.* and sjoin.* metrics to be live.
	UseStore bool
	// Workers sets the cube fan-out (cube.Input.Workers): the parallel
	// algorithms' worker count and the sorters' background parallelism.
	// 0 selects GOMAXPROCS.
	Workers int
}

// DefaultOptions reads X3_SCALE (a float, e.g. "0.02") and returns
// defaults matching a laptop-scale reproduction.
func DefaultOptions() Options {
	scale := 1.0 / 16
	if s := os.Getenv("X3_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			scale = v
		}
	}
	return Options{Scale: scale, Timeout: 120 * time.Second, Seed: 1}
}

// paperBudgetBytes is the paper's 512 MB buffer pool.
const paperBudgetBytes = 512 << 20

// Config describes one figure's experiment.
type Config struct {
	ID    string
	Title string
	// Trees is the paper's input tree count (scaled by Options.Scale).
	Trees int
	// AxesSweep lists the axis counts to run (the X axis of the figure).
	AxesSweep []int
	// Algorithms are the curves of the figure.
	Algorithms []string
	// Dense selects low-cardinality grouping values (dense cubes).
	Dense bool
	// Coverage / Disjoint state which summarizability property the
	// workload is controlled to satisfy.
	Coverage bool
	Disjoint bool
	// ExtraRelax grants PC-AD on every axis and nests some elements, the
	// extra relaxation step of the §4.1 setting.
	ExtraRelax bool
	// DBLP switches to the §4.5 DBLP experiment (fixed 4 axes).
	DBLP bool
}

// Figures returns the configuration of every figure of §4, in paper order.
func Figures() []Config {
	return []Config{
		{ID: "fig4", Title: "Sparse cube, 10^4 trees, coverage fails, disjointness holds",
			Trees: 10_000, AxesSweep: sweep(), Dense: false, Coverage: false, Disjoint: true,
			ExtraRelax: true, Algorithms: []string{"COUNTER", "BUC", "BUCOPT", "TD", "TDOPT"}},
		{ID: "fig5", Title: "Sparse cube, 10^5 trees, coverage fails, disjointness holds",
			Trees: 100_000, AxesSweep: sweep(), Dense: false, Coverage: false, Disjoint: true,
			ExtraRelax: true, Algorithms: []string{"COUNTER", "BUC", "BUCOPT", "TD", "TDOPT"}},
		{ID: "fig6", Title: "Dense cube, 10^5 trees, coverage fails, disjointness holds",
			Trees: 100_000, AxesSweep: sweep(), Dense: true, Coverage: false, Disjoint: true,
			ExtraRelax: true, Algorithms: []string{"COUNTER", "BUC", "BUCOPT", "TD", "TDOPT"}},
		{ID: "fig7", Title: "Sparse cube, 10^5 trees, coverage and disjointness hold",
			Trees: 100_000, AxesSweep: sweep(), Dense: false, Coverage: true, Disjoint: true,
			Algorithms: []string{"COUNTER", "BUC", "BUCOPT", "TD", "TDOPTALL"}},
		{ID: "fig8", Title: "Dense cube, 10^5 trees, coverage and disjointness hold",
			Trees: 100_000, AxesSweep: sweep(), Dense: true, Coverage: true, Disjoint: true,
			Algorithms: []string{"COUNTER", "BUC", "BUCOPT", "TD", "TDOPTALL"}},
		{ID: "fig9", Title: "Dense cube, 10^5 trees, neither property holds",
			Trees: 100_000, AxesSweep: sweep(), Dense: true, Coverage: false, Disjoint: false,
			ExtraRelax: true,
			Algorithms: []string{"COUNTER", "BUC", "BUCOPT", "TD", "TDOPT", "TDOPTALL"}},
		{ID: "fig10", Title: "DBLP: cube article by /author, /month, /year, /journal (220k trees)",
			Trees: 220_000, AxesSweep: []int{4}, DBLP: true,
			Algorithms: []string{"COUNTER", "BUC", "BUCCUST", "BUCOPT", "TD", "TDCUST", "TDOPT", "TDOPTALL"}},
	}
}

func sweep() []int { return []int{2, 3, 4, 5, 6, 7} }

// FigureByID returns the configuration with the given id.
func FigureByID(id string) (Config, error) {
	for _, c := range Figures() {
		if c.ID == id {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("harness: unknown figure %q", id)
}

// Run executes one figure's experiment and returns its rows.
func Run(cfg Config, opt Options) ([]Row, error) {
	if opt.Scale <= 0 {
		opt.Scale = 1.0 / 16
	}
	if opt.TmpDir == "" {
		dir, err := os.MkdirTemp("", "x3harness-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opt.TmpDir = dir
	}
	var rows []Row
	for _, d := range cfg.AxesSweep {
		rs, err := runPoint(cfg, opt, d)
		if err != nil {
			return rows, err
		}
		rows = append(rows, rs...)
	}
	return rows, nil
}

// runPoint prepares the workload for one axis count and times every
// algorithm on it.
func runPoint(cfg Config, opt Options, d int) ([]Row, error) {
	logf(opt, "%s: preparing %d axes...", cfg.ID, d)
	w, err := Prepare(cfg, opt, d)
	if err != nil {
		return nil, err
	}
	defer w.Remove()

	var rows []Row
	for _, name := range cfg.Algorithms {
		row, err := w.RunAlgorithm(name, opt)
		if err != nil {
			return nil, err
		}
		logf(opt, "%s d=%d %-8s %8.3fs cells=%d passes=%d sorts=%d ext=%d %s",
			cfg.ID, d, name, row.Seconds, row.Cells, row.Stats.Passes,
			row.Stats.Sorts, row.Stats.ExternalSorts, row.DNF)
		rows = append(rows, row)
	}
	return rows, nil
}

// Workload is a prepared (figure, axis count) experiment point: a
// generated corpus, evaluated and materialized to a match file, with its
// lattice and DTD-inferred properties. Benchmarks reuse one Workload
// across algorithm runs.
type Workload struct {
	Figure    string
	Axes      int
	Facts     int
	Lattice   *lattice.Lattice
	MatchPath string
	Props     cube.Props
	Budget    int64
}

// Remove deletes the materialized match file.
func (w *Workload) Remove() { os.Remove(w.MatchPath) }

// Prepare generates the corpus, evaluates the query and materializes the
// match file for one (figure, axes) point.
func Prepare(cfg Config, opt Options, d int) (*Workload, error) {
	if opt.TmpDir == "" {
		opt.TmpDir = os.TempDir()
	}
	trees := int(float64(cfg.Trees) * opt.Scale)
	if trees < 10 {
		trees = 10
	}
	genSpan := opt.Registry.Span("harness.generate")
	var (
		doc  *xmltree.Document
		spec *pattern.CubeQuery
		dtd  string
	)
	if cfg.DBLP {
		doc = dataset.DBLP(dataset.DefaultDBLPConfig(trees, opt.Seed))
		spec = dataset.DBLPQuery()
		dtd = dataset.DBLPDTD
	} else {
		tcfg := treebankConfig(cfg, opt, trees, d)
		doc = dataset.Treebank(tcfg)
		spec = dataset.TreebankQuery(tcfg.Axes)
		dtd = dataset.TreebankDTD(tcfg)
	}
	genSpan.End()
	lat, err := lattice.New(spec)
	if err != nil {
		return nil, err
	}
	matchSpan := opt.Registry.Span("harness.match")
	set, err := evaluateDoc(doc, lat, cfg, opt, d)
	matchSpan.End()
	if err != nil {
		return nil, err
	}
	matSpan := opt.Registry.Span("harness.materialize")
	mfPath := filepath.Join(opt.TmpDir, fmt.Sprintf("%s-d%d-%d.x3mf", cfg.ID, d, os.Getpid()))
	err = matchfile.WriteFile(mfPath, set)
	matSpan.End()
	if err != nil {
		return nil, err
	}
	props, err := inferProps(dtd, lat)
	if err != nil {
		os.Remove(mfPath)
		return nil, err
	}
	return &Workload{
		Figure:    cfg.ID,
		Axes:      d,
		Facts:     set.NumFacts(),
		Lattice:   lat,
		MatchPath: mfPath,
		Props:     props,
		Budget:    int64(float64(paperBudgetBytes) * opt.Scale),
	}, nil
}

// RunAlgorithm runs one algorithm on the workload with a fresh match-file
// reader (cold reads, as the paper measures with a cold cache) and returns
// the measured row.
func (w *Workload) RunAlgorithm(name string, opt Options) (Row, error) {
	alg, err := cube.ByName(name)
	if err != nil {
		return Row{}, err
	}
	src, err := matchfile.Open(w.MatchPath)
	if err != nil {
		return Row{}, err
	}
	in := &cube.Input{
		Lattice: w.Lattice,
		Source:  src,
		Dicts:   src.Dicts(),
		Budget:  memBudget(w.Budget),
		TmpDir:  opt.TmpDir,
		Props:   w.Props,
		Reg:     opt.Registry,
		Workers: opt.Workers,
	}
	sink := &deadlineSink{}
	if opt.Timeout > 0 {
		sink.deadline = time.Now().Add(opt.Timeout)
	}
	start := time.Now()
	st, err := alg.Run(in, sink)
	elapsed := time.Since(start)
	if opt.Registry != nil {
		opt.Registry.Counter(fmt.Sprintf("harness.run.%s.d%d.%s.w%d.ns",
			w.Figure, w.Axes, name, opt.Workers)).Add(elapsed.Nanoseconds())
	}
	row := Row{
		Figure: w.Figure, Algorithm: name, Axes: w.Axes, Facts: w.Facts,
		Workers: opt.Workers, Seconds: elapsed.Seconds(), Cells: sink.cells, Stats: st,
	}
	if err != nil {
		// Parallel algorithms wrap worker errors, so unwrap to detect the
		// deadline sentinel.
		if errors.Is(err, errDeadline) {
			row.DNF = "timeout"
		} else {
			row.DNF = err.Error()
		}
	}
	return row, nil
}

// evaluateDoc builds the fact table for a generated corpus. The default
// path is the in-memory evaluator; with UseStore the corpus is persisted
// as a paged store file first and evaluated with structural joins through
// the buffer pool, so the store.pool.* and sjoin.* metrics reflect real
// page traffic.
func evaluateDoc(doc *xmltree.Document, lat *lattice.Lattice, cfg Config, opt Options, d int) (*match.Set, error) {
	dicts := make([]*match.Dict, len(lat.Query.Axes))
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	if !opt.UseStore {
		return match.EvaluateObserved(doc, lat, dicts, opt.Registry)
	}
	stPath := filepath.Join(opt.TmpDir, fmt.Sprintf("%s-d%d-%d.x3st", cfg.ID, d, os.Getpid()))
	if err := store.Create(stPath, doc); err != nil {
		return nil, err
	}
	defer os.Remove(stPath)
	st, err := store.Open(stPath, 256)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	st.Observe(opt.Registry)
	return sjoin.EvaluateObserved(st, lat, dicts, opt.Registry)
}

// treebankConfig derives the per-axis knobs of a Treebank figure.
func treebankConfig(cfg Config, opt Options, trees, d int) dataset.TreebankConfig {
	card := 64 // sparse: cardinality^d quickly dwarfs the fact count
	if cfg.Dense {
		card = 4 // the paper groups dense cubes by first character
	}
	axes := make([]dataset.AxisConfig, d)
	for i := range axes {
		ax := dataset.AxisConfig{
			Tag:         fmt.Sprintf("w%d", i),
			Cardinality: card,
			Relax:       pattern.RelaxSet(0).With(pattern.LND),
		}
		if !cfg.Coverage {
			ax.PMissing = 0.25
		}
		if !cfg.Disjoint {
			ax.PRepeat = 0.4
		}
		if cfg.ExtraRelax {
			ax.PNest = 0.2
			ax.Relax = ax.Relax.With(pattern.PCAD)
		}
		axes[i] = ax
	}
	return dataset.TreebankConfig{Seed: opt.Seed, Facts: trees, Axes: axes}
}

func inferProps(dtd string, lat *lattice.Lattice) (cube.Props, error) {
	d, err := schema.Parse(dtd)
	if err != nil {
		return nil, fmt.Errorf("harness: workload DTD: %w", err)
	}
	return schema.Infer(d, lat)
}

func logf(opt Options, format string, args ...any) {
	if opt.Log != nil {
		fmt.Fprintf(opt.Log, format+"\n", args...)
	}
}

// errDeadline marks a timed-out run.
var errDeadline = fmt.Errorf("harness: run exceeded its timeout")

// deadlineSink counts cells and aborts the run once the deadline passes —
// every algorithm emits cells continuously, so the deadline propagates no
// matter which phase it is in.
type deadlineSink struct {
	deadline time.Time
	cells    int64
}

// Cell implements cube.Sink.
func (s *deadlineSink) Cell(uint32, []match.ValueID, agg.State) error {
	s.cells++
	if s.cells%4096 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return errDeadline
	}
	return nil
}
