package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"x3/internal/mem"
)

// memBudget wraps mem.New so harness.go reads cleanly.
func memBudget(bytes int64) *mem.Budget { return mem.New(bytes) }

// WriteTable renders rows as the figure's table: one line per axis count,
// one column per algorithm, seconds in the cells ("DNF" for timeouts).
// This is the textual equivalent of the paper's running-time plots.
func WriteTable(w io.Writer, rows []Row) {
	if len(rows) == 0 {
		return
	}
	algs := algorithmsOf(rows)
	axes := axesOf(rows)
	cell := map[[2]int]string{} // (axes, algIdx) -> text
	algIdx := map[string]int{}
	for i, a := range algs {
		algIdx[a] = i
	}
	for _, r := range rows {
		txt := fmt.Sprintf("%.3f", r.Seconds)
		if r.DNF != "" {
			txt = "DNF"
		}
		cell[[2]int{r.Axes, algIdx[r.Algorithm]}] = txt
	}
	fmt.Fprintf(w, "%-6s", "#axes")
	for _, a := range algs {
		fmt.Fprintf(w, " %12s", a)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 6+13*len(algs)))
	for _, d := range axes {
		fmt.Fprintf(w, "%-6d", d)
		for i := range algs {
			txt, ok := cell[[2]int{d, i}]
			if !ok {
				txt = "-"
			}
			fmt.Fprintf(w, " %12s", txt)
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV renders rows as CSV with full statistics, one row per run.
func WriteCSV(w io.Writer, rows []Row) {
	fmt.Fprintln(w, "figure,algorithm,axes,facts,workers,seconds,cells,dnf,passes,restarts,sorts,external_sorts,spill_bytes,rows_sorted,rollups,copies,peak_bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%s,%d,%d,%d,%.6f,%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			r.Figure, r.Algorithm, r.Axes, r.Facts, r.Workers, r.Seconds, r.Cells, r.DNF,
			r.Stats.Passes, r.Stats.Restarts, r.Stats.Sorts, r.Stats.ExternalSorts,
			r.Stats.SpillBytes, r.Stats.RowsSorted, r.Stats.Rollups, r.Stats.Copies,
			r.Stats.PeakBytes)
	}
}

func algorithmsOf(rows []Row) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rows {
		if !seen[r.Algorithm] {
			seen[r.Algorithm] = true
			out = append(out, r.Algorithm)
		}
	}
	return out
}

func axesOf(rows []Row) []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range rows {
		if !seen[r.Axes] {
			seen[r.Axes] = true
			out = append(out, r.Axes)
		}
	}
	sort.Ints(out)
	return out
}
