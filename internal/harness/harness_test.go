package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyOptions shrink every figure to test scale.
func tinyOptions(t *testing.T) Options {
	t.Helper()
	return Options{
		Scale:   0.002, // 10^5 trees -> 200
		Timeout: 30 * time.Second,
		TmpDir:  t.TempDir(),
		Seed:    1,
	}
}

func TestFiguresWellFormed(t *testing.T) {
	figs := Figures()
	if len(figs) != 7 {
		t.Fatalf("figures = %d, want 7 (fig4..fig10)", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		if ids[f.ID] {
			t.Errorf("duplicate figure id %s", f.ID)
		}
		ids[f.ID] = true
		if len(f.Algorithms) == 0 || len(f.AxesSweep) == 0 || f.Trees == 0 {
			t.Errorf("%s incomplete: %+v", f.ID, f)
		}
	}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		if _, err := FigureByID(id); err != nil {
			t.Errorf("FigureByID(%s): %v", id, err)
		}
	}
	if _, err := FigureByID("fig99"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunSparseSetting(t *testing.T) {
	cfg, err := FigureByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	cfg.AxesSweep = []int{2, 3}
	rows, err := Run(cfg, tinyOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(cfg.Algorithms) {
		t.Fatalf("rows = %d", len(rows))
	}
	// All algorithms see the same workload: the always-correct ones must
	// agree on cell counts per axis point.
	cells := map[int]map[string]int64{}
	for _, r := range rows {
		if r.DNF != "" {
			t.Fatalf("%s d=%d: DNF %s at tiny scale", r.Algorithm, r.Axes, r.DNF)
		}
		if cells[r.Axes] == nil {
			cells[r.Axes] = map[string]int64{}
		}
		cells[r.Axes][r.Algorithm] = r.Cells
	}
	for d, m := range cells {
		if m["COUNTER"] != m["BUC"] || m["COUNTER"] != m["TD"] {
			t.Errorf("d=%d: correct algorithms disagree on cells: %v", d, m)
		}
		if m["COUNTER"] == 0 {
			t.Errorf("d=%d: zero cells", d)
		}
	}
}

func TestRunDBLPFigure(t *testing.T) {
	cfg, err := FigureByID("fig10")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Run(cfg, tinyOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want all 8 algorithms", len(rows))
	}
	byAlg := map[string]Row{}
	for _, r := range rows {
		if r.DNF != "" {
			t.Fatalf("%s: DNF at tiny scale", r.Algorithm)
		}
		byAlg[r.Algorithm] = r
	}
	// Correct algorithms agree; BUCCUST does fewer expansions than BUC
	// but the same cells.
	if byAlg["BUCCUST"].Cells != byAlg["BUC"].Cells {
		t.Errorf("BUCCUST cells %d != BUC cells %d", byAlg["BUCCUST"].Cells, byAlg["BUC"].Cells)
	}
	if byAlg["TDCUST"].Cells != byAlg["TD"].Cells {
		t.Errorf("TDCUST cells %d != TD cells %d", byAlg["TDCUST"].Cells, byAlg["TD"].Cells)
	}
	// TDCUST rolls up across year/journal edges.
	if byAlg["TDCUST"].Stats.Rollups == 0 {
		t.Error("TDCUST never rolled up on DBLP")
	}
	// TDCUST touches base data less often than TD.
	if byAlg["TDCUST"].Stats.Passes >= byAlg["TD"].Stats.Passes {
		t.Errorf("TDCUST passes %d !< TD passes %d",
			byAlg["TDCUST"].Stats.Passes, byAlg["TD"].Stats.Passes)
	}
}

func TestDeadlineProducesDNF(t *testing.T) {
	cfg, err := FigureByID("fig5")
	if err != nil {
		t.Fatal(err)
	}
	cfg.AxesSweep = []int{4}
	cfg.Algorithms = []string{"TD"}
	opt := tinyOptions(t)
	opt.Scale = 0.01
	opt.Timeout = 1 * time.Nanosecond
	rows, err := Run(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].DNF != "timeout" {
		t.Errorf("expected DNF, got %+v", rows[0])
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	rows := []Row{
		{Figure: "fig4", Algorithm: "COUNTER", Axes: 2, Seconds: 0.5, Cells: 10},
		{Figure: "fig4", Algorithm: "BUC", Axes: 2, Seconds: 0.7, Cells: 10},
		{Figure: "fig4", Algorithm: "COUNTER", Axes: 3, Seconds: 1.5, Cells: 99},
		{Figure: "fig4", Algorithm: "BUC", Axes: 3, DNF: "timeout"},
	}
	var buf bytes.Buffer
	WriteTable(&buf, rows)
	out := buf.String()
	for _, want := range []string{"COUNTER", "BUC", "DNF", "0.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	WriteCSV(&buf, rows)
	if lines := strings.Count(buf.String(), "\n"); lines != 5 {
		t.Errorf("csv lines = %d:\n%s", lines, buf.String())
	}
	// Empty input: no panic.
	WriteTable(&bytes.Buffer{}, nil)
}
