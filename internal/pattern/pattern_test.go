package pattern

import (
	"strings"
	"testing"
)

func TestParsePath(t *testing.T) {
	cases := []struct {
		in       string
		wantAxes []Axis
		wantTags []string
	}{
		{"/author/name", []Axis{Child, Child}, []string{"author", "name"}},
		{"//publisher/@id", []Axis{Descendant, Child}, []string{"publisher", "@id"}},
		{"/year", []Axis{Child}, []string{"year"}},
		{"//publication", []Axis{Descendant}, []string{"publication"}},
		{"/pubData/*/year", []Axis{Child, Child, Child}, []string{"pubData", "*", "year"}},
		{"//a//b", []Axis{Descendant, Descendant}, []string{"a", "b"}},
		{"/@id", []Axis{Child}, []string{"@id"}},
		{"/tag-with.dots_2", []Axis{Child}, []string{"tag-with.dots_2"}},
		{"//publication[author]/year", []Axis{Descendant, Child}, []string{"publication", "year"}},
	}
	for _, c := range cases {
		got, err := ParsePath(c.in)
		if err != nil {
			t.Errorf("ParsePath(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.wantTags) {
			t.Errorf("ParsePath(%q) = %v, want %d steps", c.in, got, len(c.wantTags))
			continue
		}
		for i := range got {
			if got[i].Axis != c.wantAxes[i] || got[i].Tag != c.wantTags[i] {
				t.Errorf("ParsePath(%q)[%d] = %v, want %v%s", c.in, i, got[i], c.wantAxes[i], c.wantTags[i])
			}
		}
		if got.String() != c.in {
			t.Errorf("round trip %q -> %q", c.in, got.String())
		}
	}
}

func TestParsePathPredicates(t *testing.T) {
	p, err := ParsePath("//publication[author][//publisher]/year")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || len(p[0].Preds) != 2 || len(p[1].Preds) != 0 {
		t.Fatalf("structure = %v", p)
	}
	if got := p[0].Preds[0].String(); got != "/author" {
		t.Errorf("pred 0 = %q", got)
	}
	if got := p[0].Preds[1].String(); got != "//publisher" {
		t.Errorf("pred 1 = %q", got)
	}
	if got := p.String(); got != "//publication[author][//publisher]/year" {
		t.Errorf("round trip = %q", got)
	}
	// Nested predicates.
	p, err = ParsePath("/a[b[c]]/d")
	if err != nil {
		t.Fatal(err)
	}
	if got := p[0].Preds[0][0].Preds[0].String(); got != "/c" {
		t.Errorf("nested pred = %q", got)
	}
	if !p.HasPreds() {
		t.Error("HasPreds = false")
	}
	if MustParsePath("/a/b").HasPreds() {
		t.Error("predicate-free path claims HasPreds")
	}
}

func TestParsePathPredicateErrors(t *testing.T) {
	for _, bad := range []string{
		"/a[]",     // empty predicate
		"/a[b",     // unbalanced
		"/a[b]]",   // stray close
		"/@id[a]",  // predicate on attribute
		"/a[@x/y]", // attribute not last inside predicate
		"/a[b][",   // dangling open
	} {
		if _, err := ParsePath(bad); err == nil {
			t.Errorf("ParsePath(%q): want error", bad)
		}
	}
}

func TestParsePathErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"author",    // no leading slash
		"/",         // missing name
		"//",        // missing name
		"/@id/name", // attribute not last
		"/a/@id/b",  // attribute not last
		"/a/",       // trailing slash
		"/a b",      // trailing junk
		"/a/1name",  // bad first rune
		"$b/author", // variables belong to xq, not paths
	} {
		if _, err := ParsePath(bad); err == nil {
			t.Errorf("ParsePath(%q): want error", bad)
		}
	}
}

func TestStepPredicates(t *testing.T) {
	if !(Step{Axis: Child, Tag: "@id"}).IsAttr() {
		t.Error("@id not recognized as attr")
	}
	if (Step{Axis: Child, Tag: "id"}).IsAttr() {
		t.Error("id recognized as attr")
	}
	if !(Step{Axis: Child, Tag: "*"}).IsWildcard() {
		t.Error("* not recognized as wildcard")
	}
}

func TestRelaxSet(t *testing.T) {
	var s RelaxSet
	s = s.With(LND).With(PCAD)
	if !s.Has(LND) || !s.Has(PCAD) || s.Has(SP) {
		t.Fatalf("set ops broken: %v", s)
	}
	str := s.String()
	if !strings.Contains(str, "LND") || !strings.Contains(str, "PC-AD") || strings.Contains(str, "SP") {
		t.Errorf("String() = %q", str)
	}
}

func TestParseAggFunc(t *testing.T) {
	for in, want := range map[string]AggFunc{
		"count": Count, "COUNT": Count, "Sum": Sum, "MIN": Min, "max": Max, "avg": Avg,
	} {
		got, err := ParseAggFunc(in)
		if err != nil || got != want {
			t.Errorf("ParseAggFunc(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseAggFunc("median"); err == nil {
		t.Error("ParseAggFunc(median): want error")
	}
}

// query1 is the paper's Query 1.
func query1() *CubeQuery {
	return &CubeQuery{
		Doc:        "book.xml",
		FactVar:    "$b",
		FactPath:   MustParsePath("//publication"),
		FactIDPath: MustParsePath("/@id"),
		Axes: []AxisSpec{
			{Var: "$n", Path: MustParsePath("/author/name"), Relax: RelaxSet(0).With(LND).With(SP).With(PCAD)},
			{Var: "$p", Path: MustParsePath("//publisher/@id"), Relax: RelaxSet(0).With(LND).With(PCAD)},
			{Var: "$y", Path: MustParsePath("/year"), Relax: RelaxSet(0).With(LND)},
		},
		Agg: Count,
	}
}

func TestCubeQueryValidate(t *testing.T) {
	q := query1()
	if err := q.Validate(); err != nil {
		t.Fatalf("Query 1 invalid: %v", err)
	}
	if a := q.Axis("$p"); a == nil || a.Path.Leaf() != "@id" {
		t.Errorf("Axis($p) = %v", a)
	}
	if q.Axis("$zzz") != nil {
		t.Error("Axis($zzz) found")
	}
}

func TestCubeQueryValidateErrors(t *testing.T) {
	mod := func(f func(*CubeQuery)) *CubeQuery { q := query1(); f(q); return q }
	cases := map[string]*CubeQuery{
		"no fact path": mod(func(q *CubeQuery) { q.FactPath = nil }),
		"no axes":      mod(func(q *CubeQuery) { q.Axes = nil }),
		"empty axis path": mod(func(q *CubeQuery) {
			q.Axes[0].Path = nil
		}),
		"wildcard leaf": mod(func(q *CubeQuery) {
			q.Axes[0].Path = MustParsePath("/author/*")
		}),
		"dup var":             mod(func(q *CubeQuery) { q.Axes[1].Var = "$n" }),
		"sum without measure": mod(func(q *CubeQuery) { q.Agg = Sum }),
	}
	for name, q := range cases {
		if err := q.Validate(); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestCubeQueryString(t *testing.T) {
	s := query1().String()
	for _, want := range []string{"//publication", "/author/name", "COUNT", "LND"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
