package pattern

import "testing"

// FuzzParsePath checks the path parser never panics and that accepted
// paths round-trip through String.
func FuzzParsePath(f *testing.F) {
	for _, s := range []string{
		"/author/name", "//publisher/@id", "//a//b", "/pubData/*/year",
		"//publication[author][//publisher]/year", "/a[b[c]]/d",
		"/a[", "[]", "///", "/@", "/a]b",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePath(src)
		if err != nil {
			return
		}
		s := p.String()
		p2, err := ParsePath(s)
		if err != nil {
			t.Fatalf("rendered path %q (from %q) does not re-parse: %v", s, src, err)
		}
		if p2.String() != s {
			t.Fatalf("render not a fixed point: %q -> %q", s, p2.String())
		}
	})
}
