package pattern

import (
	"fmt"
	"strings"
	"unicode"
)

// ParsePath parses a path expression such as "/author/name",
// "//publisher/@id" or "/pubData/*/year". The expression must begin with
// "/" or "//". Attribute steps ("@name") are only valid in final position,
// matching the data model in which attributes are leaves.
func ParsePath(s string) (Path, error) {
	p, rest, err := parsePathPrefix(s)
	if err != nil {
		return nil, err
	}
	if rest != "" {
		return nil, fmt.Errorf("pattern: trailing input %q in path %q", rest, s)
	}
	return p, nil
}

// ParsePathPrefix parses the longest path prefix of s and returns the
// remainder. It is used by the xq parser, which embeds paths in larger
// clauses (e.g. "$b/author/name (LND)").
func ParsePathPrefix(s string) (Path, string, error) {
	return parsePathPrefix(s)
}

// parsePathPrefix parses the longest path prefix of s and returns the
// remainder (used by the xq parser which embeds paths in larger clauses).
func parsePathPrefix(s string) (Path, string, error) {
	orig := s
	var p Path
	for {
		if !strings.HasPrefix(s, "/") {
			break
		}
		axis := Child
		s = s[1:]
		if strings.HasPrefix(s, "/") {
			axis = Descendant
			s = s[1:]
		}
		tag, rest, err := parseNameTest(s)
		if err != nil {
			return nil, "", fmt.Errorf("pattern: in path %q: %w", orig, err)
		}
		if len(p) > 0 && p[len(p)-1].IsAttr() {
			return nil, "", fmt.Errorf("pattern: attribute step %q is not last in %q", p[len(p)-1].Tag, orig)
		}
		step := Step{Axis: axis, Tag: tag}
		s = rest
		for strings.HasPrefix(s, "[") {
			inner, rest, err := takeBracketed(s)
			if err != nil {
				return nil, "", fmt.Errorf("pattern: in path %q: %w", orig, err)
			}
			if step.IsAttr() {
				return nil, "", fmt.Errorf("pattern: attribute step %q cannot take predicates in %q", tag, orig)
			}
			if !strings.HasPrefix(inner, "/") {
				inner = "/" + inner // shorthand [author] means child::author
			}
			pred, err := ParsePath(inner)
			if err != nil {
				return nil, "", fmt.Errorf("pattern: predicate in %q: %w", orig, err)
			}
			step.Preds = append(step.Preds, pred)
			s = rest
		}
		p = append(p, step)
	}
	if len(p) == 0 {
		return nil, "", fmt.Errorf("pattern: %q does not start with a path step", orig)
	}
	return p, s, nil
}

// takeBracketed returns the contents of a balanced [...] prefix of s and
// the remainder after the closing bracket.
func takeBracketed(s string) (inner, rest string, err error) {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				if i == 1 {
					return "", "", fmt.Errorf("empty predicate")
				}
				return s[1:i], s[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unbalanced '[' in %q", s)
}

func parseNameTest(s string) (tag, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("missing name test")
	}
	if s[0] == '*' {
		return "*", s[1:], nil
	}
	attr := false
	if s[0] == '@' {
		attr = true
		s = s[1:]
	}
	i := 0
	for i < len(s) && isNameRune(rune(s[i]), i == 0) {
		i++
	}
	if i == 0 {
		return "", "", fmt.Errorf("missing name test at %q", s)
	}
	tag = s[:i]
	if attr {
		tag = "@" + tag
	}
	return tag, s[i:], nil
}

func isNameRune(r rune, first bool) bool {
	if unicode.IsLetter(r) || r == '_' {
		return true
	}
	if first {
		return false
	}
	return unicode.IsDigit(r) || r == '-' || r == '.'
}

// MustParsePath is ParsePath that panics on error, for tests and fixed
// queries in generators.
func MustParsePath(s string) Path {
	p, err := ParsePath(s)
	if err != nil {
		panic(err)
	}
	return p
}
