// Package pattern defines the tree-pattern query model of X³: linear path
// expressions binding variables, the grouping specification (a fact binding
// plus grouping axes), and the per-axis permitted relaxations.
//
// Following TAX, grouping in XML is specified by a tree pattern and a
// grouping list (paper §2.1). X³ represents the pattern as one fact path
// (from the document root) with one linear axis path per grouping variable,
// relative to the fact; the branched query tree pattern of the paper's
// Fig. 3 is the fact node with the axis paths as branches, and is produced
// by package relax.
package pattern

import (
	"fmt"
	"strings"
)

// Axis is the structural relationship of a step to its context node.
type Axis uint8

const (
	// Child matches direct children (parent-child edge).
	Child Axis = iota
	// Descendant matches any proper descendant (ancestor-descendant edge).
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Step is one location step of a path: an axis plus a node test and
// optional existence predicates. The node test is an element tag, an
// attribute name with a leading "@", or "*" which matches any element.
// Each predicate is a relative path that must match at least once under
// the stepped-to node, e.g. the step "publication[author]" keeps only
// publications with an author child.
type Step struct {
	Axis  Axis
	Tag   string
	Preds []Path
}

// IsAttr reports whether the step selects an attribute node.
func (s Step) IsAttr() bool { return strings.HasPrefix(s.Tag, "@") }

// IsWildcard reports whether the step matches any element tag.
func (s Step) IsWildcard() bool { return s.Tag == "*" }

func (s Step) String() string {
	out := s.Axis.String() + s.Tag
	for _, p := range s.Preds {
		out += "[" + p.predString() + "]"
	}
	return out
}

// predString renders a predicate path in its shorthand form: a leading
// child step drops its slash ("[author/name]"), a leading descendant step
// keeps "//" ("[//name]").
func (p Path) predString() string {
	s := p.String()
	if len(p) > 0 && p[0].Axis == Child {
		return s[1:]
	}
	return s
}

// Path is a sequence of steps, evaluated left to right from a context node.
type Path []Step

func (p Path) String() string {
	var b strings.Builder
	for _, s := range p {
		b.WriteString(s.String())
	}
	return b.String()
}

// Clone returns a copy of p. Predicate paths are shared: they are never
// mutated (relaxations rewrite axes and drop steps but leave predicates
// intact).
func (p Path) Clone() Path {
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// HasPreds reports whether any step carries predicates.
func (p Path) HasPreds() bool {
	for _, s := range p {
		if len(s.Preds) > 0 {
			return true
		}
	}
	return false
}

// Leaf returns the final step's tag, or "" for an empty path.
func (p Path) Leaf() string {
	if len(p) == 0 {
		return ""
	}
	return p[len(p)-1].Tag
}

// Relaxation is one of the paper's three tree-pattern relaxations (§2.2).
type Relaxation uint8

const (
	// LND (Leaf Node Deletion) permits the pattern to match even when the
	// axis's leaf element is absent — it is the relaxation that models
	// traditional cubing (dropping a group-by dimension).
	LND Relaxation = 1 << iota
	// SP (Sub-tree Promotion) moves a subtree rooted at a node to be a
	// descendant of its grandparent, e.g. publication[./author/name]
	// relaxes to publication[./author][.//name].
	SP
	// PCAD (Parent-Child to Ancestor-Descendant edge generalization)
	// relaxes / edges to // edges, e.g. publication/author to
	// publication//author.
	PCAD
)

func (r Relaxation) String() string {
	switch r {
	case LND:
		return "LND"
	case SP:
		return "SP"
	case PCAD:
		return "PC-AD"
	}
	return fmt.Sprintf("Relaxation(%d)", uint8(r))
}

// RelaxSet is a set of permitted relaxations for one axis.
type RelaxSet uint8

// Has reports whether r is in the set.
func (s RelaxSet) Has(r Relaxation) bool { return uint8(s)&uint8(r) != 0 }

// With returns the set extended with r.
func (s RelaxSet) With(r Relaxation) RelaxSet { return RelaxSet(uint8(s) | uint8(r)) }

func (s RelaxSet) String() string {
	var parts []string
	for _, r := range []Relaxation{LND, SP, PCAD} {
		if s.Has(r) {
			parts = append(parts, r.String())
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// AxisSpec is one grouping axis of an X³ query: a variable name, its path
// relative to the fact binding, and the relaxations the query permits for
// it (paper §2.3, Query 1).
type AxisSpec struct {
	Var   string // "$n"
	Path  Path   // relative to the fact node, e.g. /author/name
	Relax RelaxSet
}

func (a AxisSpec) String() string {
	return fmt.Sprintf("%s := $fact%s %s", a.Var, a.Path, a.Relax)
}

// AggFunc identifies the aggregate computed per group. COUNT is the
// paper's reported operator; the others are the standard distributive and
// algebraic companions it says behave similarly.
type AggFunc uint8

const (
	Count AggFunc = iota
	Sum
	Min
	Max
	Avg
)

var aggNames = map[AggFunc]string{
	Count: "COUNT", Sum: "SUM", Min: "MIN", Max: "MAX", Avg: "AVG",
}

func (f AggFunc) String() string {
	if s, ok := aggNames[f]; ok {
		return s
	}
	return fmt.Sprintf("AggFunc(%d)", uint8(f))
}

// ParseAggFunc parses an aggregate function name, case-insensitively.
func ParseAggFunc(s string) (AggFunc, error) {
	switch strings.ToUpper(s) {
	case "COUNT":
		return Count, nil
	case "SUM":
		return Sum, nil
	case "MIN":
		return Min, nil
	case "MAX":
		return Max, nil
	case "AVG":
		return Avg, nil
	}
	return 0, fmt.Errorf("pattern: unknown aggregate function %q", s)
}

// CubeQuery is a parsed X³ query: cube the facts matched by FactPath by
// the grouping axes, computing Agg over each group at every point of the
// relaxation lattice.
type CubeQuery struct {
	// Doc is the document URI from the doc("...") call, informational.
	Doc string
	// FactVar is the variable bound to the fact, e.g. "$b".
	FactVar string
	// FactPath locates facts from the document root, e.g. //publication.
	FactPath Path
	// FactIDPath optionally names the identifier under the fact used for
	// duplicate elimination (the X³ clause target, e.g. $b/@id). When
	// empty, node identity is used.
	FactIDPath Path
	// Axes are the grouping axes in declaration order.
	Axes []AxisSpec
	// Agg is the aggregate of the RETURN clause.
	Agg AggFunc
	// MeasurePath optionally locates the aggregated value under the fact
	// (for SUM/MIN/MAX/AVG); empty for COUNT.
	MeasurePath Path
	// MinSupport, when positive, makes the cube an iceberg cube: only
	// groups containing at least this many distinct facts are emitted
	// (the HAVING COUNT(..) >= N clause). Bottom-up computation prunes
	// below-threshold partitions, its signature optimization.
	MinSupport int64
}

// Axis returns the spec with the given variable name, or nil.
func (q *CubeQuery) Axis(v string) *AxisSpec {
	for i := range q.Axes {
		if q.Axes[i].Var == v {
			return &q.Axes[i]
		}
	}
	return nil
}

// Validate checks the query for structural problems: no facts path, axes
// with empty paths, duplicate variables, or a missing measure for a
// value-aggregate.
func (q *CubeQuery) Validate() error {
	if len(q.FactPath) == 0 {
		return fmt.Errorf("pattern: query has no fact path")
	}
	if len(q.Axes) == 0 {
		return fmt.Errorf("pattern: query has no grouping axes")
	}
	seen := map[string]bool{}
	for _, a := range q.Axes {
		if len(a.Path) == 0 {
			return fmt.Errorf("pattern: axis %s has an empty path", a.Var)
		}
		if a.Path[len(a.Path)-1].IsWildcard() {
			return fmt.Errorf("pattern: axis %s ends in a wildcard; grouping needs a named leaf", a.Var)
		}
		if seen[a.Var] {
			return fmt.Errorf("pattern: duplicate axis variable %s", a.Var)
		}
		seen[a.Var] = true
	}
	if q.Agg != Count && len(q.MeasurePath) == 0 {
		return fmt.Errorf("pattern: %v requires a measure path", q.Agg)
	}
	return nil
}

func (q *CubeQuery) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cube %s%s by", q.FactVar, q.FactPath)
	for i, a := range q.Axes {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %s%s %s", q.FactVar, a.Path, a.Relax)
	}
	fmt.Fprintf(&b, " return %v(%s)", q.Agg, q.FactVar)
	if q.MinSupport > 0 {
		fmt.Fprintf(&b, " having COUNT(%s) >= %d", q.FactVar, q.MinSupport)
	}
	return b.String()
}
