package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"x3/internal/pattern"
)

func TestEmptyState(t *testing.T) {
	var s State
	if got := s.Final(pattern.Count); got != 0 {
		t.Errorf("empty COUNT = %v", got)
	}
	if got := s.Final(pattern.Sum); got != 0 {
		t.Errorf("empty SUM = %v", got)
	}
	for _, f := range []pattern.AggFunc{pattern.Min, pattern.Max, pattern.Avg} {
		if got := s.Final(f); !math.IsNaN(got) {
			t.Errorf("empty %v = %v, want NaN", f, got)
		}
	}
}

func TestAddAndFinal(t *testing.T) {
	var s State
	for _, m := range []float64{3, -1, 7, 7, 2} {
		s.Add(m)
	}
	checks := map[pattern.AggFunc]float64{
		pattern.Count: 5,
		pattern.Sum:   18,
		pattern.Min:   -1,
		pattern.Max:   7,
		pattern.Avg:   3.6,
	}
	for f, want := range checks {
		if got := s.Final(f); math.Abs(got-want) > 1e-12 {
			t.Errorf("%v = %v, want %v", f, got, want)
		}
	}
}

func TestMergeEquivalentToAdds(t *testing.T) {
	f := func(xs, ys []int32) bool {
		var all, a, b State
		for _, x := range xs {
			all.Add(float64(x))
			a.Add(float64(x))
		}
		for _, y := range ys {
			all.Add(float64(y))
			b.Add(float64(y))
		}
		a.Merge(b)
		if a.N != all.N || math.Abs(a.Sum-all.Sum) > 1e-6*(1+math.Abs(all.Sum)) {
			return false
		}
		if all.N > 0 && (a.MinV != all.MinV || a.MaxV != all.MaxV) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeWithEmpty(t *testing.T) {
	var a, b State
	a.Add(5)
	saved := a
	a.Merge(b) // empty rhs is a no-op
	if a != saved {
		t.Errorf("merge with empty changed state: %+v", a)
	}
	b.Merge(a) // empty lhs copies
	if b != saved {
		t.Errorf("merge into empty: %+v", b)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, EncodedSize)
	for i := 0; i < 100; i++ {
		var s State
		for j := rng.Intn(5); j >= 0; j-- {
			s.Add(rng.NormFloat64() * 100)
		}
		s.Encode(buf)
		got := Decode(buf)
		if got != s {
			t.Fatalf("round trip %+v -> %+v", s, got)
		}
	}
}

func TestEncodedOrderIsDeterministic(t *testing.T) {
	// Encoding must be exactly EncodedSize bytes and stable.
	var s State
	s.Add(1)
	a := make([]byte, EncodedSize)
	b := make([]byte, EncodedSize)
	s.Encode(a)
	s.Encode(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoding not deterministic")
		}
	}
}
