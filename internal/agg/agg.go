// Package agg implements the aggregate functions of the X³ RETURN clause.
// COUNT is the operator the paper reports on; SUM/MIN/MAX (distributive)
// and AVG (algebraic) are the companions it says behave similarly (§4).
//
// State is the algebraic summary: it supports adding one fact's measure and
// merging two summaries, which is what roll-up (TDOPTALL) needs; Final
// extracts the requested aggregate.
package agg

import (
	"encoding/binary"
	"math"

	"x3/internal/pattern"
)

// State is a mergeable aggregate summary. The zero value is the empty
// summary.
type State struct {
	N    int64   // number of contributions
	Sum  float64 // sum of measures
	MinV float64 // minimum (valid when N > 0)
	MaxV float64 // maximum (valid when N > 0)
}

// Add folds one fact's measure into the summary.
func (s *State) Add(m float64) {
	if s.N == 0 {
		s.MinV, s.MaxV = m, m
	} else {
		if m < s.MinV {
			s.MinV = m
		}
		if m > s.MaxV {
			s.MaxV = m
		}
	}
	s.N++
	s.Sum += m
}

// Merge folds another summary into s. Merging is only a correct substitute
// for re-aggregation when the contributing fact sets are disjoint — the
// summarizability requirement the paper's top-down optimizations depend on.
func (s *State) Merge(o State) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	s.N += o.N
	s.Sum += o.Sum
	if o.MinV < s.MinV {
		s.MinV = o.MinV
	}
	if o.MaxV > s.MaxV {
		s.MaxV = o.MaxV
	}
}

// Final returns the value of the aggregate f. An empty state yields NaN
// for MIN/MAX/AVG and 0 for COUNT/SUM.
func (s *State) Final(f pattern.AggFunc) float64 {
	switch f {
	case pattern.Count:
		return float64(s.N)
	case pattern.Sum:
		return s.Sum
	case pattern.Min:
		if s.N == 0 {
			return math.NaN()
		}
		return s.MinV
	case pattern.Max:
		if s.N == 0 {
			return math.NaN()
		}
		return s.MaxV
	case pattern.Avg:
		if s.N == 0 {
			return math.NaN()
		}
		return s.Sum / float64(s.N)
	}
	return math.NaN()
}

// EncodedSize is the fixed byte length of an encoded State.
const EncodedSize = 32

// Encode writes the state into dst (len >= EncodedSize) for use in
// fixed-width sort rows and spilled intermediate cuboids.
func (s *State) Encode(dst []byte) {
	binary.BigEndian.PutUint64(dst[0:], uint64(s.N))
	binary.BigEndian.PutUint64(dst[8:], math.Float64bits(s.Sum))
	binary.BigEndian.PutUint64(dst[16:], math.Float64bits(s.MinV))
	binary.BigEndian.PutUint64(dst[24:], math.Float64bits(s.MaxV))
}

// Decode reads a state previously written by Encode.
func Decode(src []byte) State {
	return State{
		N:    int64(binary.BigEndian.Uint64(src[0:])),
		Sum:  math.Float64frombits(binary.BigEndian.Uint64(src[8:])),
		MinV: math.Float64frombits(binary.BigEndian.Uint64(src[16:])),
		MaxV: math.Float64frombits(binary.BigEndian.Uint64(src[24:])),
	}
}
