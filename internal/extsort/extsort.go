// Package extsort sorts fixed-width byte rows under a memory limit, the
// way the paper's cube implementations do: quicksort for in-memory sorts,
// external merge sort (run generation + k-way merge) when the data
// outgrows the buffer (§4).
//
// Rows compare lexicographically as raw bytes, so callers encode sort keys
// big-endian; equal-prefix grouping then falls out of adjacency in the
// sorted stream. The number of external runs is reported in Stats — the
// paper's "exponential number of (external) sorts" effect for the top-down
// algorithms is measured with it.
package extsort

import (
	"bufio"
	"bytes"
	"container/heap"
	"fmt"
	"io"
	"os"
	"sort"

	"x3/internal/obs"
)

// Stats describes one completed sort.
type Stats struct {
	Rows       int64 // rows sorted
	Runs       int   // spilled runs (0 for a pure in-memory sort)
	External   bool  // true when at least one run spilled to disk
	SpillBytes int64 // bytes written to temp files
}

// Sorter accumulates fixed-width rows and returns them in sorted order.
type Sorter struct {
	width int
	limit int64 // buffer cap in bytes; <= 0 means unlimited (never spill)
	dir   string

	buf   []byte
	runs  []*os.File
	stats Stats
	done  bool
	reg   *obs.Registry
}

// New returns a Sorter for rows of the given width. limit caps the
// in-memory buffer in bytes (<= 0: unlimited); dir is where runs spill
// (empty: the OS temp dir).
func New(width int, limit int64, dir string) *Sorter {
	return &Sorter{width: width, limit: limit, dir: dir}
}

// Observe attaches a metrics registry: on Finish the sort's statistics are
// folded into the extsort.* keys (sorts, sorts.external, runs.spilled,
// rows.sorted, spill.bytes) and the run-size histogram. A nil registry is
// a no-op.
func (s *Sorter) Observe(reg *obs.Registry) { s.reg = reg }

// observeFinish publishes the completed sort's stats.
func (s *Sorter) observeFinish() {
	if s.reg == nil {
		return
	}
	s.reg.Counter("extsort.sorts").Inc()
	if s.stats.External {
		s.reg.Counter("extsort.sorts.external").Inc()
	}
	s.reg.Counter("extsort.runs.spilled").Add(int64(s.stats.Runs))
	s.reg.Counter("extsort.rows.sorted").Add(s.stats.Rows)
	s.reg.Counter("extsort.spill.bytes").Add(s.stats.SpillBytes)
	s.reg.Histogram("extsort.sort.rows").Observe(s.stats.Rows)
}

// Add appends one row. The row is copied.
func (s *Sorter) Add(row []byte) error {
	if s.done {
		return fmt.Errorf("extsort: Add after Finish")
	}
	if len(row) != s.width {
		return fmt.Errorf("extsort: row is %d bytes, want %d", len(row), s.width)
	}
	s.buf = append(s.buf, row...)
	s.stats.Rows++
	if s.limit > 0 && int64(len(s.buf)) >= s.limit {
		return s.spill()
	}
	return nil
}

// spill sorts the buffer and writes it out as a new run.
func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	sortRows(s.buf, s.width)
	f, err := os.CreateTemp(s.dir, "x3sort-*")
	if err != nil {
		return fmt.Errorf("extsort: spill: %w", err)
	}
	// Unlink immediately; the open handle keeps the data alive.
	os.Remove(f.Name())
	w := bufio.NewWriter(f)
	if _, err := w.Write(s.buf); err != nil {
		f.Close()
		return fmt.Errorf("extsort: spill write: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("extsort: spill flush: %w", err)
	}
	s.stats.SpillBytes += int64(len(s.buf))
	s.runs = append(s.runs, f)
	s.stats.Runs++
	s.stats.External = true
	s.buf = s.buf[:0]
	return nil
}

// Finish sorts any buffered rows and returns an iterator over the full
// sorted sequence plus the sort's statistics. The Sorter cannot be reused.
func (s *Sorter) Finish() (*Iterator, Stats, error) {
	if s.done {
		return nil, s.stats, fmt.Errorf("extsort: Finish twice")
	}
	s.done = true
	if len(s.runs) == 0 {
		sortRows(s.buf, s.width)
		s.observeFinish()
		return &Iterator{width: s.width, mem: s.buf}, s.stats, nil
	}
	if err := s.spill(); err != nil {
		return nil, s.stats, err
	}
	it := &Iterator{width: s.width}
	for _, f := range s.runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			it.Close()
			return nil, s.stats, fmt.Errorf("extsort: seek run: %w", err)
		}
		rr := &runReader{r: bufio.NewReaderSize(f, 1<<16), f: f, row: make([]byte, s.width)}
		if err := rr.advance(); err != nil && err != io.EOF {
			it.Close()
			return nil, s.stats, err
		}
		if !rr.eof {
			it.h = append(it.h, rr)
		} else {
			f.Close()
		}
	}
	heap.Init(&it.h)
	s.observeFinish()
	return it, s.stats, nil
}

// Iterator yields sorted rows. The slice returned by Next is only valid
// until the following call.
type Iterator struct {
	width int
	// In-memory case.
	mem []byte
	pos int
	// External case: a min-heap of run readers.
	h runHeap
}

// Next returns the next row, or nil at the end of the sequence.
func (it *Iterator) Next() ([]byte, error) {
	if it.mem != nil || it.h == nil {
		if it.pos+it.width <= len(it.mem) {
			row := it.mem[it.pos : it.pos+it.width]
			it.pos += it.width
			return row, nil
		}
		return nil, nil
	}
	if it.h.Len() == 0 {
		return nil, nil
	}
	top := it.h[0]
	row := append(top.out[:0], top.row...)
	top.out = row
	if err := top.advance(); err != nil && err != io.EOF {
		return nil, err
	}
	if top.eof {
		heap.Pop(&it.h)
		top.f.Close()
	} else {
		heap.Fix(&it.h, 0)
	}
	return row, nil
}

// Close releases any temp files still open.
func (it *Iterator) Close() {
	for _, rr := range it.h {
		rr.f.Close()
	}
	it.h = nil
	it.mem = nil
}

type runReader struct {
	r   *bufio.Reader
	f   *os.File
	row []byte
	out []byte
	eof bool
}

func (rr *runReader) advance() error {
	_, err := io.ReadFull(rr.r, rr.row)
	if err == io.EOF {
		rr.eof = true
		return io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		return fmt.Errorf("extsort: truncated run file")
	}
	return err
}

type runHeap []*runReader

func (h runHeap) Len() int            { return len(h) }
func (h runHeap) Less(i, j int) bool  { return bytes.Compare(h[i].row, h[j].row) < 0 }
func (h runHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x interface{}) { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// sortRows quicksorts the rows of buf (fixed width) in place by raw byte
// order — the in-memory sort of the paper's implementation.
func sortRows(buf []byte, width int) {
	if width <= 0 || len(buf) == 0 {
		return
	}
	sort.Sort(&rowSlice{buf: buf, w: width, tmp: make([]byte, width)})
}

// SortRows exposes sortRows for callers (BUCOPT partitions slices of its
// fact table in place).
func SortRows(buf []byte, width int) { sortRows(buf, width) }

type rowSlice struct {
	buf []byte
	w   int
	tmp []byte
}

func (r *rowSlice) Len() int { return len(r.buf) / r.w }
func (r *rowSlice) Less(i, j int) bool {
	return bytes.Compare(r.buf[i*r.w:(i+1)*r.w], r.buf[j*r.w:(j+1)*r.w]) < 0
}
func (r *rowSlice) Swap(i, j int) {
	a := r.buf[i*r.w : (i+1)*r.w]
	b := r.buf[j*r.w : (j+1)*r.w]
	copy(r.tmp, a)
	copy(a, b)
	copy(b, r.tmp)
}
