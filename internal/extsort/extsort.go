// Package extsort sorts fixed-width byte rows under a memory limit, the
// way the paper's cube implementations do: quicksort for in-memory sorts,
// external merge sort (run generation + k-way merge) when the data
// outgrows the buffer (§4).
//
// Rows compare lexicographically as raw bytes, so callers encode sort keys
// big-endian; equal-prefix grouping then falls out of adjacency in the
// sorted stream. The number of external runs is reported in Stats — the
// paper's "exponential number of (external) sorts" effect for the top-down
// algorithms is measured with it.
//
// Parallel (see Sorter.Parallel) overlaps run formation with row intake —
// full buffers are sorted and written by background workers while Add
// keeps filling a recycled buffer — and splits large in-memory sorts into
// concurrently sorted chunks. Either way the merge is a loser-tree
// tournament, and the output byte sequence is identical to a serial sort:
// equal rows are byte-identical, so tie order cannot show.
package extsort

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"x3/internal/fault"
	"x3/internal/obs"
)

// Stats describes one completed sort.
type Stats struct {
	Rows       int64 // rows sorted
	Runs       int   // spilled runs (0 for a pure in-memory sort)
	External   bool  // true when at least one run spilled to disk
	SpillBytes int64 // bytes written to temp files
}

// Sorter accumulates fixed-width rows and returns them in sorted order.
type Sorter struct {
	width int
	limit int64 // buffer cap in bytes; <= 0 means unlimited (never spill)
	dir   string
	par   int // max concurrent sort workers; <= 1 is fully serial

	buf   []byte
	runs  []*os.File
	stats Stats
	done  bool
	reg   *obs.Registry
	inj   *fault.Injector

	// Async run formation (par > 1): full buffers are handed to background
	// goroutines that sort and spill them while Add refills a recycled
	// buffer. mu guards runs, the spill-side stats and spillErr against
	// those workers; sem caps them at par in flight; free recycles their
	// buffers back to Add.
	mu       sync.Mutex
	wg       sync.WaitGroup
	sem      chan struct{}
	free     chan []byte
	spillErr error
}

// New returns a Sorter for rows of the given width. limit caps the
// in-memory buffer in bytes (<= 0: unlimited); dir is where runs spill
// (empty: the OS temp dir).
func New(width int, limit int64, dir string) *Sorter {
	return &Sorter{width: width, limit: limit, dir: dir}
}

// Parallel allows up to n concurrent sort workers: run formation happens
// in the background while rows keep arriving, and a large in-memory sort
// is split into n concurrently sorted chunks merged at Finish. n <= 1
// keeps the sorter fully serial. Call before the first Add.
func (s *Sorter) Parallel(n int) {
	if n > 1 {
		s.par = n
	}
}

// InjectFaults wraps the sorter's spill-file writes (site extsort.spill)
// and run-file reads (site extsort.run) with injected faults. A nil
// injector is a no-op. Call before the first Add.
func (s *Sorter) InjectFaults(inj *fault.Injector) { s.inj = inj }

// Observe attaches a metrics registry: on Finish the sort's statistics are
// folded into the extsort.* keys (sorts, sorts.external, runs.spilled,
// rows.sorted, spill.bytes) and the run-size histogram. A nil registry is
// a no-op.
func (s *Sorter) Observe(reg *obs.Registry) { s.reg = reg }

// observeFinish publishes the completed sort's stats.
func (s *Sorter) observeFinish() {
	if s.reg == nil {
		return
	}
	s.reg.Counter("extsort.sorts").Inc()
	if s.stats.External {
		s.reg.Counter("extsort.sorts.external").Inc()
	}
	s.reg.Counter("extsort.runs.spilled").Add(int64(s.stats.Runs))
	s.reg.Counter("extsort.rows.sorted").Add(s.stats.Rows)
	s.reg.Counter("extsort.spill.bytes").Add(s.stats.SpillBytes)
	s.reg.Histogram("extsort.sort.rows").Observe(s.stats.Rows)
}

// ctxErr reports a cancelled sort as an error wrapping ctx.Err() (so
// errors.Is against context.Canceled / context.DeadlineExceeded holds);
// nil ctx never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("extsort: cancelled: %w", err)
	}
	return nil
}

// Add appends one row. The row is copied. ctx is consulted at spill
// boundaries — the moments Add performs I/O or hands work to background
// goroutines — so a cancelled sort stops spilling promptly without taxing
// the per-row fast path; nil never cancels.
func (s *Sorter) Add(ctx context.Context, row []byte) error {
	if s.done {
		return fmt.Errorf("extsort: Add after Finish")
	}
	if len(row) != s.width {
		return fmt.Errorf("extsort: row is %d bytes, want %d", len(row), s.width)
	}
	s.buf = append(s.buf, row...)
	s.stats.Rows++
	if s.limit > 0 && int64(len(s.buf)) >= s.limit {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if s.par > 1 {
			return s.spillAsync()
		}
		return s.spill()
	}
	return nil
}

// spill sorts the buffer and writes it out as a new run, serially.
func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	sortRows(s.buf, s.width)
	f, err := writeRun(s.dir, s.buf, s.inj)
	if err != nil {
		return err
	}
	s.recordRun(f, int64(len(s.buf)))
	s.buf = s.buf[:0]
	return nil
}

// spillAsync hands the full buffer to a background worker (at most par in
// flight) and continues with a recycled or fresh one. The worker's error,
// if any, surfaces on a later Add or on Finish.
func (s *Sorter) spillAsync() error {
	s.mu.Lock()
	err := s.spillErr
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if s.sem == nil {
		s.sem = make(chan struct{}, s.par)
		s.free = make(chan []byte, s.par)
	}
	buf := s.buf
	select {
	case b := <-s.free:
		s.buf = b[:0]
	default:
		s.buf = make([]byte, 0, cap(buf))
	}
	s.sem <- struct{}{}
	s.wg.Add(1)
	go func() {
		defer func() { <-s.sem; s.wg.Done() }()
		sortRows(buf, s.width)
		f, err := writeRun(s.dir, buf, s.inj)
		s.mu.Lock()
		if err != nil {
			if s.spillErr == nil {
				s.spillErr = err
			}
		} else {
			s.recordRunLocked(f, int64(len(buf)))
		}
		s.mu.Unlock()
		select {
		case s.free <- buf[:0]:
		default:
		}
	}()
	return nil
}

func (s *Sorter) recordRun(f *os.File, n int64) {
	s.mu.Lock()
	s.recordRunLocked(f, n)
	s.mu.Unlock()
}

func (s *Sorter) recordRunLocked(f *os.File, n int64) {
	s.runs = append(s.runs, f)
	s.stats.Runs++
	s.stats.External = true
	s.stats.SpillBytes += n
}

// writeRun writes one sorted buffer to an unlinked temp file.
func writeRun(dir string, buf []byte, inj *fault.Injector) (*os.File, error) {
	f, err := os.CreateTemp(dir, "x3sort-*")
	if err != nil {
		return nil, fmt.Errorf("extsort: spill: %w", err)
	}
	// Unlink immediately; the open handle keeps the data alive.
	os.Remove(f.Name())
	w := bufio.NewWriter(inj.Writer("extsort.spill", f))
	if _, err := w.Write(buf); err != nil {
		f.Close()
		return nil, fmt.Errorf("extsort: spill write: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("extsort: spill flush: %w", err)
	}
	return f, nil
}

// parallelSortMinRows is the smallest in-memory sort worth splitting
// across workers; below it the chunk-merge overhead dominates.
const parallelSortMinRows = 4096

// Finish sorts any buffered rows and returns an iterator over the full
// sorted sequence plus the sort's statistics. The Sorter cannot be
// reused. ctx is consulted before the final sort and merge setup — the
// expensive tail of an external sort — and a cancelled sort returns a
// wrapped ctx.Err(); nil never cancels.
func (s *Sorter) Finish(ctx context.Context) (*Iterator, Stats, error) {
	if s.done {
		return nil, s.stats, fmt.Errorf("extsort: Finish twice")
	}
	s.done = true
	if s.par > 1 {
		s.wg.Wait() // all background runs recorded (or failed) after this
		if s.spillErr != nil {
			s.closeRuns()
			return nil, s.stats, s.spillErr
		}
	}
	if err := ctxErr(ctx); err != nil {
		s.closeRuns()
		return nil, s.stats, err
	}
	if len(s.runs) == 0 {
		return s.finishMem()
	}
	if err := s.spill(); err != nil {
		s.closeRuns()
		return nil, s.stats, err
	}
	srcs := make([]mergeSource, 0, len(s.runs))
	for _, f := range s.runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			s.closeRuns()
			return nil, s.stats, fmt.Errorf("extsort: seek run: %w", err)
		}
		rr := &runReader{r: bufio.NewReaderSize(s.inj.Reader("extsort.run", f), 1<<16), f: f, row: make([]byte, s.width)}
		if err := rr.next(); err != nil { // load the first row
			s.closeRuns()
			return nil, s.stats, err
		}
		if rr.cur() == nil {
			rr.closeFile()
			continue
		}
		srcs = append(srcs, rr)
	}
	s.observeFinish()
	if len(srcs) == 0 {
		return &Iterator{width: s.width}, s.stats, nil
	}
	return &Iterator{width: s.width, lt: newLoserTree(srcs)}, s.stats, nil
}

// finishMem completes a sort that never spilled. The serial path returns
// the zero-copy in-place iterator; with workers, large buffers are split
// into row-aligned chunks sorted concurrently and merged by a loser tree.
func (s *Sorter) finishMem() (*Iterator, Stats, error) {
	rows := 0
	if s.width > 0 {
		rows = len(s.buf) / s.width
	}
	if s.par > 1 && rows >= parallelSortMinRows {
		chunks := s.par
		if chunks > rows {
			chunks = rows
		}
		per := (rows + chunks - 1) / chunks
		srcs := make([]mergeSource, 0, chunks)
		var wg sync.WaitGroup
		for start := 0; start < rows; start += per {
			end := start + per
			if end > rows {
				end = rows
			}
			chunk := s.buf[start*s.width : end*s.width]
			wg.Add(1)
			go func() {
				defer wg.Done()
				sortRows(chunk, s.width)
			}()
			srcs = append(srcs, &memRun{buf: chunk, w: s.width})
		}
		wg.Wait()
		s.observeFinish()
		return &Iterator{width: s.width, lt: newLoserTree(srcs)}, s.stats, nil
	}
	sortRows(s.buf, s.width)
	s.observeFinish()
	return &Iterator{width: s.width, mem: s.buf}, s.stats, nil
}

// closeRuns releases all run files on an error path.
func (s *Sorter) closeRuns() {
	for _, f := range s.runs {
		f.Close()
	}
	s.runs = nil
}

// Iterator yields sorted rows. The slice returned by Next is only valid
// until the following call.
type Iterator struct {
	width int
	// Serial in-memory case: rows are zero-copy subslices of the buffer.
	mem []byte
	pos int
	// Merge case (spilled runs or parallel-sorted chunks).
	lt     *loserTree
	rowBuf []byte
}

// Next returns the next row, or nil at the end of the sequence.
func (it *Iterator) Next() ([]byte, error) {
	if it.lt == nil {
		if it.pos+it.width <= len(it.mem) {
			row := it.mem[it.pos : it.pos+it.width]
			it.pos += it.width
			return row, nil
		}
		return nil, nil
	}
	w := it.lt.winner()
	if w < 0 {
		return nil, nil
	}
	src := it.lt.srcs[w]
	row := src.cur()
	if row == nil {
		return nil, nil
	}
	it.rowBuf = append(it.rowBuf[:0], row...)
	if err := src.next(); err != nil {
		return nil, err
	}
	it.lt.replay()
	return it.rowBuf, nil
}

// Close releases any temp files still open.
func (it *Iterator) Close() {
	if it.lt != nil {
		for _, src := range it.lt.srcs {
			if rr, ok := src.(*runReader); ok {
				rr.closeFile()
			}
		}
		it.lt = nil
	}
	it.mem = nil
}

// runReader streams one spilled run as a mergeSource, closing its file as
// soon as the run is exhausted.
type runReader struct {
	r   *bufio.Reader
	f   *os.File
	row []byte
	eof bool
}

func (rr *runReader) cur() []byte {
	if rr.eof {
		return nil
	}
	return rr.row
}

func (rr *runReader) next() error {
	if rr.eof {
		return nil
	}
	_, err := io.ReadFull(rr.r, rr.row)
	// errors.Is, not ==: the run reader sits behind the fault injector's
	// wrapping, so sentinel EOFs may arrive wrapped.
	if errors.Is(err, io.EOF) {
		rr.eof = true
		rr.closeFile()
		return nil
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("extsort: truncated run file")
	}
	return err
}

func (rr *runReader) closeFile() {
	if rr.f != nil {
		rr.f.Close()
		rr.f = nil
	}
}

// sortRows quicksorts the rows of buf (fixed width) in place by raw byte
// order — the in-memory sort of the paper's implementation.
func sortRows(buf []byte, width int) {
	if width <= 0 || len(buf) == 0 {
		return
	}
	sort.Sort(&rowSlice{buf: buf, w: width, tmp: make([]byte, width)})
}

// SortRows exposes sortRows for callers (BUCOPT partitions slices of its
// fact table in place).
func SortRows(buf []byte, width int) { sortRows(buf, width) }

type rowSlice struct {
	buf []byte
	w   int
	tmp []byte
}

func (r *rowSlice) Len() int { return len(r.buf) / r.w }
func (r *rowSlice) Less(i, j int) bool {
	return bytes.Compare(r.buf[i*r.w:(i+1)*r.w], r.buf[j*r.w:(j+1)*r.w]) < 0
}
func (r *rowSlice) Swap(i, j int) {
	a := r.buf[i*r.w : (i+1)*r.w]
	b := r.buf[j*r.w : (j+1)*r.w]
	copy(r.tmp, a)
	copy(a, b)
	copy(b, r.tmp)
}
