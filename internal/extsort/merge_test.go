package extsort

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// sliceSource is a MergeSource over fixed rows.
type sliceSource struct {
	rows [][]byte
	pos  int
}

func (s *sliceSource) Cur() []byte {
	if s.pos < len(s.rows) {
		return s.rows[s.pos]
	}
	return nil
}

func (s *sliceSource) Next() error { s.pos++; return nil }

func rows(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestMergeInterleaves(t *testing.T) {
	srcs := []MergeSource{
		&sliceSource{rows: rows("a", "c", "e")},
		&sliceSource{rows: rows("b", "c", "d")},
		&sliceSource{rows: rows()},
	}
	var got []string
	var from []int
	err := Merge(context.Background(), srcs, nil, func(src int, row []byte) error {
		got = append(got, string(row))
		from = append(from, src)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "c", "d", "e"}
	if len(got) != len(want) {
		t.Fatalf("merged %q", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %q, want %q", got, want)
		}
	}
	// Ties break to the lower source: the two "c" rows arrive 0 then 1.
	if from[2] != 0 || from[3] != 1 {
		t.Fatalf("tie order %v, want source 0 before source 1", from)
	}
}

func TestMergeCustomCmp(t *testing.T) {
	// Order by the last byte only; prefixes differ so bytes.Compare would
	// interleave differently.
	cmp := func(a, b []byte) int { return bytes.Compare(a[len(a)-1:], b[len(b)-1:]) }
	srcs := []MergeSource{
		&sliceSource{rows: rows("z1", "a3")},
		&sliceSource{rows: rows("m2")},
	}
	var got []string
	if err := Merge(nil, srcs, cmp, func(_ int, row []byte) error {
		got = append(got, string(row))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got[0] != "z1" || got[1] != "m2" || got[2] != "a3" {
		t.Fatalf("merged %q", got)
	}
}

func TestMergeEmitError(t *testing.T) {
	boom := errors.New("boom")
	srcs := []MergeSource{&sliceSource{rows: rows("a", "b")}}
	err := Merge(context.Background(), srcs, nil, func(int, []byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
}

func TestMergeCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srcs := []MergeSource{&sliceSource{rows: rows("a")}}
	err := Merge(ctx, srcs, nil, func(int, []byte) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMergeEmpty(t *testing.T) {
	if err := Merge(context.Background(), nil, nil, func(int, []byte) error {
		t.Fatal("emit called on empty merge")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
