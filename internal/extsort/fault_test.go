package extsort

import (
	"encoding/binary"
	"testing"

	"x3/internal/fault"
)

// addRows feeds n deterministic 8-byte rows to the sorter.
func addRows(t *testing.T, s *Sorter, n int) {
	t.Helper()
	var row [8]byte
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(row[:], uint64((i*2654435761)%n))
		if err := s.Add(nil, row[:]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpillWriteFaultSurfaces injects hard errors on every spill write:
// the failure must surface from Add or Finish as an injected error, never
// as a truncated-but-accepted run.
func TestSpillWriteFaultSurfaces(t *testing.T) {
	s := New(8, 256, t.TempDir())
	s.InjectFaults(fault.New(fault.Config{Seed: 3, ErrEvery: 1}))
	var err error
	for i := 0; i < 500 && err == nil; i++ {
		var row [8]byte
		binary.BigEndian.PutUint64(row[:], uint64(i))
		err = s.Add(nil, row[:])
	}
	if err == nil {
		_, _, err = s.Finish(nil)
	}
	if !fault.IsInjected(err) {
		t.Fatalf("spill under write faults returned %v; want an injected error", err)
	}
}

// TestRunReadFaultSurfaces lets the spill succeed, then injects errors on
// the merge-side run reads: iteration must fail explicitly.
func TestRunReadFaultSurfaces(t *testing.T) {
	s := New(8, 256, t.TempDir())
	// Crash far enough in that every spill write (a handful of ops)
	// succeeds, and the eventual run reads — later ops — all fail.
	s.InjectFaults(fault.NewCrash(3, 64))
	addRows(t, s, 2000)
	it, stats, err := s.Finish(nil)
	if err != nil {
		if fault.IsInjected(err) {
			return // the crash point landed before the last spill; fine
		}
		t.Fatal(err)
	}
	defer it.Close()
	if !stats.External {
		t.Fatal("sort never spilled; the test needs external runs")
	}
	for {
		row, err := it.Next()
		if err != nil {
			if !fault.IsInjected(err) {
				t.Fatalf("merge read failed with %v; want an injected error", err)
			}
			return
		}
		if row == nil {
			t.Fatal("merge completed cleanly although all reads past the crash point fail")
		}
	}
}

// TestFaultFreeSorterUnchanged pins the nil-injector path: wiring the
// fault layer in must not disturb a clean sort.
func TestFaultFreeSorterUnchanged(t *testing.T) {
	s := New(8, 256, t.TempDir())
	s.InjectFaults(nil)
	addRows(t, s, 3000)
	it, stats, err := s.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !stats.External {
		t.Fatal("3000 rows over a 256-byte limit must spill")
	}
	var n int
	prev := make([]byte, 0, 8)
	for {
		row, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		if len(prev) > 0 && string(row) < string(prev) {
			t.Fatal("rows out of order")
		}
		prev = append(prev[:0], row...)
		n++
	}
	if n != 3000 {
		t.Fatalf("read back %d rows, wrote 3000", n)
	}
}
