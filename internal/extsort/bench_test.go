package extsort

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

// benchRows builds n random rows of the given width.
func benchRows(n, width int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]byte, n)
	for i := range rows {
		r := make([]byte, width)
		binary.BigEndian.PutUint64(r, rng.Uint64())
		rows[i] = r
	}
	return rows
}

// BenchmarkSort compares in-memory quicksort with external merge sort on
// identical inputs (the latter forced by a small buffer limit).
func BenchmarkSort(b *testing.B) {
	const width = 24
	rows := benchRows(50_000, width, 9)
	for _, tc := range []struct {
		name  string
		limit int64
	}{
		{"inmemory", 0},
		{"external-8runs", int64(len(rows)) * width / 8},
		{"external-64runs", int64(len(rows)) * width / 64},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := New(width, tc.limit, b.TempDir())
				for _, r := range rows {
					if err := s.Add(nil, r); err != nil {
						b.Fatal(err)
					}
				}
				it, st, err := s.Finish(nil)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					row, err := it.Next()
					if err != nil {
						b.Fatal(err)
					}
					if row == nil {
						break
					}
					n++
				}
				it.Close()
				if n != len(rows) {
					b.Fatalf("drained %d rows (stats %+v)", n, st)
				}
			}
		})
	}
}

// BenchmarkSortRowsInPlace measures the raw quicksort used by BUCOPT.
func BenchmarkSortRowsInPlace(b *testing.B) {
	for _, width := range []int{8, 40} {
		rows := benchRows(20_000, width, 3)
		flat := make([]byte, 0, len(rows)*width)
		for _, r := range rows {
			flat = append(flat, r...)
		}
		b.Run(fmt.Sprintf("w=%d", width), func(b *testing.B) {
			buf := make([]byte, len(flat))
			for i := 0; i < b.N; i++ {
				copy(buf, flat)
				SortRows(buf, width)
			}
		})
	}
}
