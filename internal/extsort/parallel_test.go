package extsort

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
)

// sortedChunks builds k sorted row buffers from one random row set and
// returns them plus the globally sorted concatenation.
func sortedChunks(rng *rand.Rand, k, rowsPer, width int) ([][]byte, [][]byte) {
	var all [][]byte
	chunks := make([][]byte, k)
	for c := range chunks {
		n := rng.Intn(rowsPer + 1) // some chunks may be empty
		buf := make([]byte, 0, n*width)
		for i := 0; i < n; i++ {
			row := make([]byte, width)
			for j := range row {
				row[j] = byte(rng.Intn(4)) // small alphabet: many duplicates
			}
			buf = append(buf, row...)
			all = append(all, row)
		}
		sortRows(buf, width)
		chunks[c] = buf
	}
	sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i], all[j]) < 0 })
	return chunks, all
}

// TestLoserTreeMerge drives the tournament tree directly over in-memory
// sources and checks the merged sequence equals a global sort, for source
// counts around every power-of-two boundary.
func TestLoserTreeMerge(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16} {
		rng := rand.New(rand.NewSource(int64(k)))
		chunks, want := sortedChunks(rng, k, 200, 5)
		srcs := make([]mergeSource, k)
		for i, buf := range chunks {
			srcs[i] = &memRun{buf: buf, w: 5}
		}
		lt := newLoserTree(srcs)
		var got [][]byte
		for {
			w := lt.winner()
			if w < 0 {
				break
			}
			row := lt.srcs[w].cur()
			if row == nil {
				break
			}
			got = append(got, append([]byte(nil), row...))
			if err := lt.srcs[w].next(); err != nil {
				t.Fatal(err)
			}
			lt.replay()
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: merged %d rows, want %d", k, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("k=%d row %d: %x, want %x", k, i, got[i], want[i])
			}
		}
	}
}

// TestLoserTreeNoSources checks the k=0 edge: winner reports no source.
func TestLoserTreeNoSources(t *testing.T) {
	lt := newLoserTree(nil)
	if w := lt.winner(); w >= 0 {
		t.Fatalf("winner = %d for empty tree", w)
	}
}

// runSorter feeds data through a sorter and returns the drained output and
// stats.
func runSorter(t *testing.T, s *Sorter, data [][]byte) ([][]byte, Stats) {
	t.Helper()
	for _, r := range data {
		if err := s.Add(nil, r); err != nil {
			t.Fatal(err)
		}
	}
	it, st, err := s.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	width := len(data[0])
	return drain(t, it, width), st
}

// TestParallelSpillMatchesSerial checks the async run-formation path
// produces the exact byte sequence and statistics of the serial external
// sort: equal rows are byte-identical and ties break by source index, so
// background spill order cannot show in the output.
func TestParallelSpillMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const width, n = 8, 6000
	data := make([][]byte, n)
	for i := range data {
		row := make([]byte, width)
		for j := range row {
			row[j] = byte(rng.Intn(8))
		}
		data[i] = row
	}

	serial := New(width, 2048, t.TempDir())
	wantRows, wantStats := runSorter(t, serial, data)
	if !wantStats.External || wantStats.Runs < 4 {
		t.Fatalf("workload too small to spill: %+v", wantStats)
	}

	for _, workers := range []int{2, 4, 8} {
		par := New(width, 2048, t.TempDir())
		par.Parallel(workers)
		gotRows, gotStats := runSorter(t, par, data)
		if gotStats != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, gotStats, wantStats)
		}
		if len(gotRows) != len(wantRows) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(gotRows), len(wantRows))
		}
		for i := range gotRows {
			if !bytes.Equal(gotRows[i], wantRows[i]) {
				t.Fatalf("workers=%d row %d: %x, want %x", workers, i, gotRows[i], wantRows[i])
			}
		}
	}
}

// TestParallelInMemoryMatchesSerial checks the chunked concurrent
// in-memory sort (no spilling) against the serial quicksort, above and
// below the parallel threshold.
func TestParallelInMemoryMatchesSerial(t *testing.T) {
	for _, n := range []int{parallelSortMinRows - 1, parallelSortMinRows, parallelSortMinRows * 3} {
		rng := rand.New(rand.NewSource(int64(n)))
		const width = 6
		data := make([][]byte, n)
		for i := range data {
			row := make([]byte, width)
			binary.BigEndian.PutUint32(row, rng.Uint32())
			row[4], row[5] = byte(rng.Intn(3)), byte(rng.Intn(3))
			data[i] = row
		}

		serial := New(width, 0, t.TempDir())
		wantRows, wantStats := runSorter(t, serial, data)
		if wantStats.External {
			t.Fatal("unlimited sorter spilled")
		}

		par := New(width, 0, t.TempDir())
		par.Parallel(4)
		gotRows, gotStats := runSorter(t, par, data)
		if gotStats != wantStats {
			t.Fatalf("n=%d: stats %+v, want %+v", n, gotStats, wantStats)
		}
		for i := range gotRows {
			if !bytes.Equal(gotRows[i], wantRows[i]) {
				t.Fatalf("n=%d row %d: %x, want %x", n, i, gotRows[i], wantRows[i])
			}
		}
	}
}

// TestParallelEmpty checks a parallel sorter with no rows finishes cleanly.
func TestParallelEmpty(t *testing.T) {
	s := New(4, 16, t.TempDir())
	s.Parallel(4)
	it, st, err := s.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, it, 4); len(rows) != 0 || st.Rows != 0 {
		t.Fatalf("rows=%d stats=%+v", len(rows), st)
	}
}
