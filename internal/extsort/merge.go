package extsort

import (
	"context"
	"fmt"
)

// MergeSource is one sorted input of an exported k-way merge — the
// generation files of the serving layer's delta ladder implement it over
// their cell streams.
type MergeSource interface {
	// Cur returns the current row, or nil when the source is exhausted.
	// The slice is only valid until the following Next call.
	Cur() []byte
	// Next advances to the following row (io.EOF is consumed, not
	// returned; after the last row Cur reports nil).
	Next() error
}

// mergeCheckEvery is how many emitted rows pass between context checks:
// cancellation latency stays bounded without taxing the per-row path.
const mergeCheckEvery = 4096

// Merge streams the union of k sorted sources to emit in cmp order,
// using the same loser-tree tournament the sorter's spill merge plays.
// Ties break toward the lower source index — callers ordering sources
// old-to-new get a stable, deterministic interleave. cmp nil means
// bytes.Compare. emit receives the winning source's index alongside the
// row; the row slice is only valid during the call. ctx is consulted
// every few thousand rows; nil never cancels. An error from emit or from
// a source's Next aborts the merge and is returned.
func Merge(ctx context.Context, srcs []MergeSource, cmp func(a, b []byte) int, emit func(src int, row []byte) error) error {
	if len(srcs) == 0 {
		return nil
	}
	wrapped := make([]mergeSource, len(srcs))
	for i, s := range srcs {
		wrapped[i] = &fnSource{s: s}
	}
	lt := newLoserTreeCmp(wrapped, cmp)
	n := 0
	for {
		w := lt.winner()
		row := lt.srcs[w].cur()
		if row == nil {
			return nil
		}
		if n%mergeCheckEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		n++
		if err := emit(w, row); err != nil {
			return err
		}
		if err := lt.srcs[w].next(); err != nil {
			return fmt.Errorf("extsort: merge source %d: %w", w, err)
		}
		lt.replay()
	}
}

// fnSource adapts the exported MergeSource to the internal interface.
type fnSource struct{ s MergeSource }

func (f *fnSource) cur() []byte { return f.s.Cur() }
func (f *fnSource) next() error { return f.s.Next() }
