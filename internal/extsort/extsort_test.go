package extsort

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// drain collects all rows from an iterator.
func drain(t *testing.T, it *Iterator, width int) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		row, err := it.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if row == nil {
			break
		}
		cp := make([]byte, width)
		copy(cp, row)
		out = append(out, cp)
	}
	it.Close()
	return out
}

func checkSorted(t *testing.T, rows [][]byte) {
	t.Helper()
	for i := 1; i < len(rows); i++ {
		if bytes.Compare(rows[i-1], rows[i]) > 0 {
			t.Fatalf("rows %d,%d out of order: %x > %x", i-1, i, rows[i-1], rows[i])
		}
	}
}

func TestInMemorySort(t *testing.T) {
	s := New(4, 0, t.TempDir())
	rng := rand.New(rand.NewSource(7))
	n := 1000
	for i := 0; i < n; i++ {
		row := make([]byte, 4)
		binary.BigEndian.PutUint32(row, rng.Uint32())
		if err := s.Add(nil, row); err != nil {
			t.Fatal(err)
		}
	}
	it, st, err := s.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.External || st.Runs != 0 {
		t.Errorf("unexpected spill: %+v", st)
	}
	if st.Rows != int64(n) {
		t.Errorf("rows = %d", st.Rows)
	}
	rows := drain(t, it, 4)
	if len(rows) != n {
		t.Fatalf("drained %d rows", len(rows))
	}
	checkSorted(t, rows)
}

func TestExternalSortMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	width := 8
	n := 5000
	data := make([][]byte, n)
	for i := range data {
		row := make([]byte, width)
		rng.Read(row)
		data[i] = row
	}

	ext := New(width, 1024, t.TempDir()) // tiny buffer: many runs
	for _, r := range data {
		if err := ext.Add(nil, r); err != nil {
			t.Fatal(err)
		}
	}
	it, st, err := ext.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.External || st.Runs < 2 {
		t.Fatalf("expected external sort, got %+v", st)
	}
	got := drain(t, it, width)

	want := make([][]byte, n)
	copy(want, data)
	sort.Slice(want, func(i, j int) bool { return bytes.Compare(want[i], want[j]) < 0 })

	if len(got) != n {
		t.Fatalf("drained %d rows, want %d", len(got), n)
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("row %d = %x, want %x", i, got[i], want[i])
		}
	}
}

func TestDuplicatesSurvive(t *testing.T) {
	s := New(2, 8, t.TempDir())
	for i := 0; i < 100; i++ {
		if err := s.Add(nil, []byte{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	it, _, err := s.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, it, 2)
	if len(rows) != 100 {
		t.Fatalf("duplicates lost: %d rows", len(rows))
	}
}

func TestEmptyInput(t *testing.T) {
	s := New(4, 16, t.TempDir())
	it, st, err := s.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows := drain(t, it, 4); len(rows) != 0 {
		t.Fatalf("rows from empty sorter: %d", len(rows))
	}
	if st.Rows != 0 || st.External {
		t.Errorf("stats = %+v", st)
	}
}

func TestAddErrors(t *testing.T) {
	s := New(4, 0, t.TempDir())
	if err := s.Add(nil, []byte{1, 2}); err == nil {
		t.Error("wrong width accepted")
	}
	if _, _, err := s.Finish(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(nil, []byte{1, 2, 3, 4}); err == nil {
		t.Error("Add after Finish accepted")
	}
	if _, _, err := s.Finish(nil); err == nil {
		t.Error("double Finish accepted")
	}
}

func TestSortRowsInPlace(t *testing.T) {
	buf := []byte{9, 9, 3, 3, 1, 1, 5, 5}
	SortRows(buf, 2)
	want := []byte{1, 1, 3, 3, 5, 5, 9, 9}
	if !bytes.Equal(buf, want) {
		t.Fatalf("SortRows = %v", buf)
	}
	// Zero width and empty buffers are no-ops, not panics.
	SortRows(nil, 4)
	SortRows([]byte{1}, 0)
}

func TestPropertySortedPermutation(t *testing.T) {
	f := func(seed int64, n uint8, small bool) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 6
		limit := int64(0)
		if small {
			limit = 64
		}
		s := New(width, limit, t.TempDir())
		counts := map[string]int{}
		for i := 0; i < int(n); i++ {
			row := make([]byte, width)
			// Small alphabet to force duplicates.
			for j := range row {
				row[j] = byte(rng.Intn(4))
			}
			counts[string(row)]++
			if err := s.Add(nil, row); err != nil {
				return false
			}
		}
		it, _, err := s.Finish(nil)
		if err != nil {
			return false
		}
		var prev []byte
		total := 0
		for {
			row, err := it.Next()
			if err != nil {
				return false
			}
			if row == nil {
				break
			}
			if prev != nil && bytes.Compare(prev, row) > 0 {
				return false
			}
			prev = append(prev[:0], row...)
			counts[string(row)]--
			total++
		}
		it.Close()
		if total != int(n) {
			return false
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
