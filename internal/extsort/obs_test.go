package extsort

import (
	"encoding/binary"
	"testing"

	"x3/internal/obs"
)

// feedRows adds n distinct 8-byte rows to the sorter.
func feedRows(t *testing.T, s *Sorter, n int) {
	t.Helper()
	var row [8]byte
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(row[:], uint64(i*2654435761)) // scrambled order
		if err := s.Add(nil, row[:]); err != nil {
			t.Fatal(err)
		}
	}
}

func drainCount(t *testing.T, it *Iterator) int {
	t.Helper()
	defer it.Close()
	n := 0
	for {
		row, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			return n
		}
		n++
	}
}

// TestObserveNoSpillWhenBudgetFits pins the invariant the pipeline metrics
// rely on: a sort whose input fits the buffer spills nothing — zero
// runs, zero spilled bytes, not counted as external.
func TestObserveNoSpillWhenBudgetFits(t *testing.T) {
	reg := obs.New()
	s := New(8, 1<<20, t.TempDir()) // budget far above the input
	s.Observe(reg)
	feedRows(t, s, 100)
	it, _, err := s.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainCount(t, it); got != 100 {
		t.Fatalf("drained %d rows, want 100", got)
	}
	c := reg.Snapshot().Counters
	if c["extsort.sorts"] != 1 {
		t.Errorf("extsort.sorts = %d, want 1", c["extsort.sorts"])
	}
	if c["extsort.runs.spilled"] != 0 || c["extsort.spill.bytes"] != 0 || c["extsort.sorts.external"] != 0 {
		t.Errorf("in-memory sort spilled: runs=%d bytes=%d external=%d",
			c["extsort.runs.spilled"], c["extsort.spill.bytes"], c["extsort.sorts.external"])
	}
	if c["extsort.rows.sorted"] != 100 {
		t.Errorf("extsort.rows.sorted = %d, want 100", c["extsort.rows.sorted"])
	}
}

// TestObserveSpillsUnderTightBudget is the complement: a buffer far below
// the input must spill runs, and the counters must account for every
// spilled byte.
func TestObserveSpillsUnderTightBudget(t *testing.T) {
	reg := obs.New()
	s := New(8, 128, t.TempDir()) // 16 rows per run
	s.Observe(reg)
	feedRows(t, s, 100)
	it, stats, err := s.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainCount(t, it); got != 100 {
		t.Fatalf("drained %d rows, want 100", got)
	}
	c := reg.Snapshot().Counters
	if c["extsort.sorts.external"] != 1 {
		t.Errorf("extsort.sorts.external = %d, want 1", c["extsort.sorts.external"])
	}
	if c["extsort.runs.spilled"] < 2 {
		t.Errorf("extsort.runs.spilled = %d, want >= 2", c["extsort.runs.spilled"])
	}
	if c["extsort.spill.bytes"] != int64(stats.SpillBytes) || c["extsort.spill.bytes"] != 800 {
		t.Errorf("extsort.spill.bytes = %d, want %d (= 100 rows x 8 bytes)",
			c["extsort.spill.bytes"], stats.SpillBytes)
	}
	if c["extsort.runs.spilled"] != int64(stats.Runs) {
		t.Errorf("extsort.runs.spilled = %d disagrees with Stats.Runs = %d",
			c["extsort.runs.spilled"], stats.Runs)
	}
}

// TestObserveNilRegistryHarmless: a sorter without a registry behaves
// identically.
func TestObserveNilRegistryHarmless(t *testing.T) {
	s := New(8, 128, t.TempDir())
	s.Observe(nil)
	feedRows(t, s, 50)
	it, stats, err := s.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainCount(t, it); got != 50 {
		t.Fatalf("drained %d rows, want 50", got)
	}
	if !stats.External {
		t.Error("expected external sort")
	}
}
