package extsort

import "bytes"

// mergeSource is one sorted input of a k-way merge: a spilled run on disk
// (runReader) or a sorted in-memory chunk (memRun).
type mergeSource interface {
	// cur returns the current row, or nil when the source is exhausted.
	// The slice is only valid until the following next call.
	cur() []byte
	// next advances to the following row (io.EOF is consumed, not
	// returned; after the last row cur reports nil).
	next() error
}

// loserTree is a tournament tree over k sorted sources: internal node n
// holds the index of the source that lost the match at n, and nodes[0]
// holds the overall winner. Selecting the next row then costs one root-to-
// leaf replay of ⌈log2 k⌉ comparisons against the recorded losers —
// roughly half the comparisons of a binary heap, which re-compares two
// children per level on the way down. Exhausted sources compare as +∞ and
// sink to the bottom of the bracket; ties break toward the lower source
// index, which makes the merge stable (and, since equal rows are
// byte-identical here, makes the output bytes independent of run order).
type loserTree struct {
	nodes []int // nodes[0] = winner; nodes[1:] = losers, -1 = unplayed
	srcs  []mergeSource
	cmp   func(a, b []byte) int
}

// newLoserTree builds the bracket over byte-ordered rows; every source
// must already be positioned on its first row (or exhausted).
func newLoserTree(srcs []mergeSource) *loserTree {
	return newLoserTreeCmp(srcs, nil)
}

// newLoserTreeCmp builds the bracket with a caller-supplied row order;
// nil cmp means bytes.Compare.
func newLoserTreeCmp(srcs []mergeSource, cmp func(a, b []byte) int) *loserTree {
	if cmp == nil {
		cmp = bytes.Compare
	}
	k := len(srcs)
	n := k
	if n < 1 {
		n = 1
	}
	lt := &loserTree{srcs: srcs, nodes: make([]int, n), cmp: cmp}
	for i := range lt.nodes {
		lt.nodes[i] = -1
	}
	for i := 0; i < k; i++ {
		lt.seed(i)
	}
	return lt
}

// less orders sources by current row (exhausted = +∞, ties by index).
func (lt *loserTree) less(i, j int) bool {
	a, b := lt.srcs[i].cur(), lt.srcs[j].cur()
	if b == nil {
		return a != nil || i < j
	}
	if a == nil {
		return false
	}
	if c := lt.cmp(a, b); c != 0 {
		return c < 0
	}
	return i < j
}

// seed plays source s up from its leaf during construction. Meeting an
// empty node parks the current winner there — its opponent has not played
// yet; the last source on each path carries the match through to the root.
func (lt *loserTree) seed(s int) {
	k := len(lt.srcs)
	winner := s
	for n := (s + k) / 2; n > 0; n /= 2 {
		if lt.nodes[n] < 0 {
			lt.nodes[n] = winner
			return
		}
		if lt.less(lt.nodes[n], winner) {
			winner, lt.nodes[n] = lt.nodes[n], winner
		}
	}
	lt.nodes[0] = winner
}

// winner returns the source index holding the smallest current row. Check
// its cur() for nil to detect the end of the whole merge.
func (lt *loserTree) winner() int { return lt.nodes[0] }

// replay re-runs the winner's root-to-leaf path after its source advanced.
func (lt *loserTree) replay() {
	k := len(lt.srcs)
	winner := lt.nodes[0]
	for n := (winner + k) / 2; n > 0; n /= 2 {
		if lt.nodes[n] >= 0 && lt.less(lt.nodes[n], winner) {
			winner, lt.nodes[n] = lt.nodes[n], winner
		}
	}
	lt.nodes[0] = winner
}

// memRun adapts a sorted in-memory row buffer as a mergeSource.
type memRun struct {
	buf []byte
	w   int
	pos int
}

func (m *memRun) cur() []byte {
	if m.pos+m.w <= len(m.buf) {
		return m.buf[m.pos : m.pos+m.w]
	}
	return nil
}

func (m *memRun) next() error {
	m.pos += m.w
	return nil
}
