package serve

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"x3/internal/cube"
	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/xmltree"
)

// The delta-ladder differential suite (this PR's acceptance suite): for
// every seed and dataset family, a store is built over a base document
// and grown through K append batches, and after EVERY intermediate state
// — append absorbed into the memtable, memtable flushed as a delta
// generation, generations compacted, store closed and recovered from
// manifest + WAL — every cuboid answered through the base+delta planner
// must be byte-equal to the single-set oracle over all facts so far.

// ladderDataset is one workload family of the ladder sweep.
type ladderDataset struct {
	name  string
	views int
	lat   func(tb testing.TB) *lattice.Lattice
	doc   func(seed int64) *xmltree.Document
}

func ladderDatasets() []ladderDataset {
	return []ladderDataset{
		{
			name:  "treebank",
			views: 3,
			lat: func(tb testing.TB) *lattice.Lattice {
				lat, err := lattice.New(dataset.TreebankQuery(mixedAxes()))
				if err != nil {
					tb.Fatal(err)
				}
				return lat
			},
			doc: func(seed int64) *xmltree.Document {
				return dataset.Treebank(dataset.TreebankConfig{Seed: seed, Facts: 40, Axes: mixedAxes()})
			},
		},
		{
			name:  "dblp",
			views: 5,
			lat: func(tb testing.TB) *lattice.Lattice {
				lat, err := lattice.New(dataset.DBLPQuery())
				if err != nil {
					tb.Fatal(err)
				}
				return lat
			},
			doc: func(seed int64) *xmltree.Document {
				cfg := dataset.DefaultDBLPConfig(30, seed)
				cfg.Journals = 6
				cfg.Authors = 25
				return dataset.DBLP(cfg)
			},
		},
	}
}

// docBytes serializes a document the way /append receives it.
func docBytes(tb testing.TB, doc *xmltree.Document) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// ladderOracle accumulates the documents the store has absorbed and
// recomputes the reference cube over all of them. Documents are
// evaluated in the same order as the store's append path, so the
// dictionaries assign identical ValueIDs and answers compare byte-equal.
type ladderOracle struct {
	lat   *lattice.Lattice
	dicts []*match.Dict
	facts []*match.Fact
}

func newLadderOracle(tb testing.TB, lat *lattice.Lattice) *ladderOracle {
	dicts := make([]*match.Dict, lat.NumAxes())
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	return &ladderOracle{lat: lat, dicts: dicts}
}

func (o *ladderOracle) add(tb testing.TB, doc *xmltree.Document) *match.Set {
	tb.Helper()
	set, err := match.EvaluateWith(doc, o.lat, o.dicts)
	if err != nil {
		tb.Fatal(err)
	}
	o.facts = append(o.facts, set.Facts...)
	return set
}

func (o *ladderOracle) result(tb testing.TB) *cube.Result {
	tb.Helper()
	set := &match.Set{Lattice: o.lat, Dicts: o.dicts, Facts: o.facts}
	res, err := cube.RunOracle(o.lat, set, o.dicts)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// sweepLadder asserts every cuboid of the lattice against the oracle and
// returns the plan mix.
func sweepLadder(tb testing.TB, s *Store, oracle *cube.Result, plans map[PlanKind]int) {
	tb.Helper()
	for _, p := range s.lat.Points() {
		plans[assertCuboidMatchesOracle(tb, s, oracle, p)]++
	}
}

func TestDifferentialDeltaLadder(t *testing.T) {
	const seeds = 10
	const batches = 3
	for _, ds := range ladderDatasets() {
		t.Run(ds.name, func(t *testing.T) {
			plans := map[PlanKind]int{}
			for seed := int64(1); seed <= seeds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					ctx := context.Background()
					lat := ds.lat(t)
					oracle := newLadderOracle(t, lat)
					baseDoc := ds.doc(seed)
					baseSet := oracle.add(t, baseDoc)

					dir := t.TempDir()
					reg := obs.New()
					opt := Options{Registry: reg, Views: ds.views, BlockCells: 16, FlushCells: -1, CompactAfter: -1}
					s, err := BuildDir(dir, lat, baseSet, opt)
					if err != nil {
						t.Fatal(err)
					}
					sweepLadder(t, s, oracle.result(t), plans)

					for k := 1; k <= batches; k++ {
						doc := ds.doc(seed*1000 + int64(k))
						oracle.add(t, doc)
						if _, err := s.Append(ctx, docBytes(t, doc)); err != nil {
							t.Fatalf("append %d: %v", k, err)
						}
						res := oracle.result(t)
						// Memtable serving: the appended facts are visible
						// before any flush.
						sweepLadder(t, s, res, plans)
						if err := s.Flush(ctx); err != nil {
							t.Fatalf("flush %d: %v", k, err)
						}
						if d, m := s.Generations(); d != k || m != 0 {
							t.Fatalf("after flush %d: %d deltas, %d memtable cells", k, d, m)
						}
						// Delta-generation serving: same answers from disk.
						sweepLadder(t, s, res, plans)
					}

					if err := s.Compact(ctx); err != nil {
						t.Fatal(err)
					}
					if d, m := s.Generations(); d != 0 || m != 0 {
						t.Fatalf("after compact: %d deltas, %d memtable cells", d, m)
					}
					final := oracle.result(t)
					sweepLadder(t, s, final, plans)

					// One more append left unflushed, then recovery: the
					// reopened store must rebuild the memtable from the WAL.
					lastDoc := ds.doc(seed*1000 + batches + 1)
					oracle.add(t, lastDoc)
					if _, err := s.Append(ctx, docBytes(t, lastDoc)); err != nil {
						t.Fatal(err)
					}
					res := oracle.result(t)
					sweepLadder(t, s, res, plans)
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}

					// Recovery replays the base document's evaluation the
					// same way BuildDir received it.
					recDicts := make([]*match.Dict, lat.NumAxes())
					for i := range recDicts {
						recDicts[i] = match.NewDict()
					}
					recBase, err := match.EvaluateWith(baseDoc, lat, recDicts)
					if err != nil {
						t.Fatal(err)
					}
					s2, err := OpenDir(dir, lat, recBase, opt)
					if err != nil {
						t.Fatal(err)
					}
					defer s2.Close()
					if got, want := s2.NumFacts(), len(oracle.facts); got != want {
						t.Fatalf("recovered store has %d facts, oracle %d", got, want)
					}
					sweepLadder(t, s2, res, plans)

					// Double replay is idempotent: everything in the log is
					// already applied.
					if n, err := s2.ReplayWAL(ctx); err != nil || n != 0 {
						t.Fatalf("second replay applied %d records (err %v), want 0", n, err)
					}
				})
			}
			t.Logf("%s ladder plan mix: %d direct, %d rollup, %d base",
				ds.name, plans[PlanDirect], plans[PlanRollup], plans[PlanBase])
			if plans[PlanDirect] == 0 || plans[PlanRollup] == 0 || plans[PlanBase] == 0 {
				t.Errorf("plan mix degenerate: %v — the ladder sweep no longer covers all three serving paths", plans)
			}
		})
	}
}
