package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"x3/internal/cube"
	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/pattern"
	"x3/internal/xmltree"
)

// treebankWorkload generates a Treebank corpus and evaluates its query.
// Per-axis knobs: pMissing breaks coverage, pRepeat breaks disjointness.
func treebankWorkload(tb testing.TB, seed int64, facts int, axes []dataset.AxisConfig) (*lattice.Lattice, *match.Set, *xmltree.Document) {
	tb.Helper()
	cfg := dataset.TreebankConfig{Seed: seed, Facts: facts, Axes: axes}
	doc := dataset.Treebank(cfg)
	lat, err := lattice.New(dataset.TreebankQuery(axes))
	if err != nil {
		tb.Fatal(err)
	}
	dicts := make([]*match.Dict, lat.NumAxes())
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	set, err := match.EvaluateWith(doc, lat, dicts)
	if err != nil {
		tb.Fatal(err)
	}
	return lat, set, doc
}

// mixedAxes returns three axes with distinct summarizability behaviour:
// axis 0 clean (safe to roll up), axis 1 breaks coverage, axis 2 breaks
// disjointness — so a store over this data has both safe and unsafe
// lattice edges.
func mixedAxes() []dataset.AxisConfig {
	lnd := pattern.RelaxSet(0).With(pattern.LND)
	return []dataset.AxisConfig{
		{Tag: "w0", Cardinality: 4, Relax: lnd},
		{Tag: "w1", Cardinality: 4, PMissing: 0.25, Relax: lnd},
		{Tag: "w2", Cardinality: 4, PRepeat: 0.4, Relax: lnd},
	}
}

func cleanAxes(n int) []dataset.AxisConfig {
	lnd := pattern.RelaxSet(0).With(pattern.LND)
	axes := make([]dataset.AxisConfig, n)
	for i := range axes {
		axes[i] = dataset.AxisConfig{Tag: fmt.Sprintf("w%d", i), Cardinality: 4, Relax: lnd}
	}
	return axes
}

// assertCuboidMatchesOracle compares a full-cuboid answer with the oracle
// cuboid cell by cell, byte-equal on keys and encoded aggregate states.
func assertCuboidMatchesOracle(tb testing.TB, s *Store, oracle *cube.Result, p lattice.Point) PlanKind {
	tb.Helper()
	ans, err := s.Answer(context.Background(), Query{Point: p})
	if err != nil {
		tb.Fatalf("%s: %v", s.lat.Label(p), err)
	}
	keys := oracle.Keys(p)
	if len(ans.Rows) != len(keys) {
		tb.Fatalf("%s (plan %s): answered %d cells, oracle has %d",
			s.lat.Label(p), ans.Plan, len(ans.Rows), len(keys))
	}
	for i, row := range ans.Rows {
		if string(packKey(nil, row.Key)) != string(packKey(nil, keys[i])) {
			tb.Fatalf("%s (plan %s) cell %d: key %v, oracle %v", s.lat.Label(p), ans.Plan, i, row.Key, keys[i])
		}
		want, ok := oracle.State(p, keys[i])
		if !ok {
			tb.Fatalf("oracle lost its own key %v", keys[i])
		}
		var got32, want32 [32]byte
		row.State.Encode(got32[:])
		want.Encode(want32[:])
		if got32 != want32 {
			tb.Fatalf("%s (plan %s) cell %v: state %+v, oracle %+v",
				s.lat.Label(p), ans.Plan, row.Key, row.State, want)
		}
	}
	return ans.Plan
}

func TestDirectAnswersMatchOracleEverywhere(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 7, 80, mixedAxes())
	reg := obs.New()
	s, err := Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set,
		Options{Registry: reg, BlockCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	oracle, err := cube.RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lat.Points() {
		if plan := assertCuboidMatchesOracle(t, s, oracle, p); plan != PlanDirect {
			t.Fatalf("%s: plan %s with everything materialized, want direct", lat.Label(p), plan)
		}
	}
}

// TestSliceScanIsBounded pins the acceptance criterion: answering one
// cuboid out of an indexed store must not scan the whole cell file.
func TestSliceScanIsBounded(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 3, 300, cleanAxes(3))
	reg := obs.New()
	s, err := Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set,
		Options{Registry: reg, BlockCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	total := s.rdr.NumCells()
	if s.rdr.NumBlocks() < 4 {
		t.Fatalf("workload too small to test bounded scans: %d blocks", s.rdr.NumBlocks())
	}
	// A mid-lattice cuboid: axis 0 grouped, the others relaxed.
	p := lat.Bottom()
	p[0] = 0
	before := reg.Counter("serve.scan.cells").Value()
	if _, err := s.Answer(context.Background(), Query{Point: p}); err != nil {
		t.Fatal(err)
	}
	scanned := reg.Counter("serve.scan.cells").Value() - before
	if scanned == 0 {
		t.Fatal("scan counter did not move")
	}
	if scanned >= total {
		t.Fatalf("slice query scanned %d of %d cells — not using the index", scanned, total)
	}
}

func TestBlockCacheHits(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 5, 200, cleanAxes(2))
	reg := obs.New()
	s, err := Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set,
		Options{Registry: reg, BlockCells: 16, CacheBlocks: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := Query{Point: lat.Top()}
	if _, err := s.Answer(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	misses := reg.Counter("serve.cache.misses").Value()
	if misses == 0 {
		t.Fatal("first read reported no cache misses")
	}
	if _, err := s.Answer(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("serve.cache.misses").Value() != misses {
		t.Error("second read missed the cache")
	}
	if reg.Counter("serve.cache.hits").Value() == 0 {
		t.Error("second read recorded no cache hits")
	}
}

func TestPointAndSliceQueries(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 11, 120, cleanAxes(2))
	s, err := Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	oracle, err := cube.RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	top := lat.Top()
	keys := oracle.Keys(top)
	if len(keys) == 0 {
		t.Fatal("empty top cuboid")
	}
	// Point query: pin every live axis of the rigid cuboid.
	where := map[int]match.ValueID{}
	for i, a := range lat.LiveAxes(top) {
		where[a] = keys[0][i]
	}
	ans, err := s.Answer(context.Background(), Query{Point: top, Where: where})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 {
		t.Fatalf("point query returned %d rows", len(ans.Rows))
	}
	want, _ := oracle.State(top, keys[0])
	if ans.Rows[0].State != want {
		t.Fatalf("point query state %+v, want %+v", ans.Rows[0].State, want)
	}
	// Slice query: pin only the first axis; every returned cell must
	// carry the pinned value and the set must match the oracle's slice.
	a0 := lat.LiveAxes(top)[0]
	slice, err := s.Answer(context.Background(), Query{Point: top, Where: map[int]match.ValueID{a0: keys[0][0]}})
	if err != nil {
		t.Fatal(err)
	}
	var oracleSlice int
	for _, k := range keys {
		if k[0] == keys[0][0] {
			oracleSlice++
		}
	}
	if len(slice.Rows) != oracleSlice {
		t.Fatalf("slice returned %d rows, oracle slice has %d", len(slice.Rows), oracleSlice)
	}
	for _, r := range slice.Rows {
		if r.Key[0] != keys[0][0] {
			t.Fatalf("slice row %v escaped the constraint", r.Key)
		}
	}
}

func TestViewLimitedStoreUsesRollupAndBase(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 13, 80, mixedAxes())
	reg := obs.New()
	s, err := Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set,
		Options{Registry: reg, Views: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got, want := len(s.Materialized()), lat.Size(); got >= want {
		t.Fatalf("view-limited store materialized %d of %d cuboids", got, want)
	}
	oracle, err := cube.RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lat.Points() {
		assertCuboidMatchesOracle(t, s, oracle, p)
	}
	if reg.Counter("serve.plan.base").Value() == 0 {
		t.Error("no query fell back to base recomputation on property-violating data")
	}
	if reg.Counter("serve.plan.direct").Value() == 0 {
		t.Error("no query was answered directly")
	}
}

func TestRefreshDocMaintainsServedCube(t *testing.T) {
	axes := mixedAxes()
	lat, set, _ := treebankWorkload(t, 17, 60, axes)
	s, err := Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set, Options{Views: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Expected state after refresh: the same delta evaluated against the
	// original dictionaries (the store clones them ID-compatibly).
	delta := dataset.Treebank(dataset.TreebankConfig{Seed: 18, Facts: 40, Axes: axes})
	deltaSet, err := match.EvaluateWith(delta, lat, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	combined := &match.Set{Lattice: lat, Dicts: set.Dicts,
		Facts: append(append([]*match.Fact{}, set.Facts...), deltaSet.Facts...)}

	added, err := s.RefreshDoc(context.Background(), delta)
	if err != nil {
		t.Fatal(err)
	}
	if added != int64(deltaSet.NumFacts()) {
		t.Fatalf("refresh added %d facts, delta has %d", added, deltaSet.NumFacts())
	}
	if s.NumFacts() != combined.NumFacts() {
		t.Fatalf("store has %d facts, want %d", s.NumFacts(), combined.NumFacts())
	}
	oracle, err := cube.RunOracle(lat, combined, combined.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lat.Points() {
		assertCuboidMatchesOracle(t, s, oracle, p)
	}
}

func TestServeRequestWireForm(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 19, 60, cleanAxes(2))
	s, err := Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	v0 := lat.Ladders[0].Spec.Var
	resp, err := s.ServeRequest(context.Background(), Request{Cuboid: map[string]string{v0: "rigid"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) == 0 || resp.Plan != "direct" {
		t.Fatalf("unexpected response: plan=%s rows=%d", resp.Plan, len(resp.Rows))
	}
	var total float64
	for _, r := range resp.Rows {
		total += r.Value
	}
	// Pin one group and expect exactly its row back.
	one, err := s.ServeRequest(context.Background(), Request{
		Cuboid: map[string]string{v0: "rigid"},
		Where:  map[string]string{v0: resp.Rows[0].Values[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Rows) != 1 || one.Rows[0].Value != resp.Rows[0].Value {
		t.Fatalf("pinned query returned %+v, want the %v row", one.Rows, resp.Rows[0])
	}
	// A never-seen value answers empty, not an error.
	none, err := s.ServeRequest(context.Background(), Request{
		Cuboid: map[string]string{v0: "rigid"},
		Where:  map[string]string{v0: "no-such-value"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(none.Rows) != 0 {
		t.Fatalf("unseen value returned %d rows", len(none.Rows))
	}
	// Unknown axes and states are errors.
	if _, err := s.ServeRequest(context.Background(), Request{Cuboid: map[string]string{"$nope": "rigid"}}); err == nil {
		t.Error("unknown axis accepted")
	}
	if _, err := s.ServeRequest(context.Background(), Request{Cuboid: map[string]string{v0: "warp"}}); err == nil {
		t.Error("unknown state accepted")
	}
	if _, err := s.ServeRequest(context.Background(), Request{Where: map[string]string{v0: "a"}}); err == nil {
		t.Error("constraint on a deleted axis accepted")
	}
}

func TestIcebergRefused(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 23, 40, cleanAxes(2))
	lat.Query.MinSupport = 2
	if _, err := Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set, Options{}); err == nil {
		t.Fatal("iceberg cube accepted for serving")
	}
}
