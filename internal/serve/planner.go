package serve

import (
	"context"
	"fmt"
	"sort"
	"time"

	"x3/internal/agg"
	"x3/internal/cellfile"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/views"
)

// ctxCheckEvery is the cancellation-check granularity of the serving
// layer's tight loops (base-fact recomputation).
const ctxCheckEvery = 4096

// PlanKind says how a query was answered.
type PlanKind int

const (
	// PlanDirect reads the target cuboid straight from the indexed store.
	PlanDirect PlanKind = iota
	// PlanRollup re-aggregates a finer materialized cuboid whose every
	// relaxation step to the target is safe.
	PlanRollup
	// PlanBase recomputes the target cuboid from the base facts — the
	// fallback when no safe materialized ancestor exists.
	PlanBase
)

// String implements fmt.Stringer.
func (k PlanKind) String() string {
	switch k {
	case PlanDirect:
		return "direct"
	case PlanRollup:
		return "rollup"
	case PlanBase:
		return "base"
	}
	return fmt.Sprintf("plan(%d)", int(k))
}

// Query addresses one target cuboid with optional equality constraints.
// A fully constrained query (every live axis pinned) is a point lookup; a
// partially constrained one is a slice; an unconstrained one streams the
// whole cuboid — which, for a coarse target, is exactly a roll-up query.
type Query struct {
	// Point is the target cuboid.
	Point lattice.Point
	// Where pins live axes of Point (by axis index) to required values;
	// nil or empty answers the whole cuboid.
	Where map[int]match.ValueID
}

// Row is one answered cell: the group key over the target's live axes and
// the aggregate state (callers pick the aggregate via State.Final).
type Row struct {
	Key   []match.ValueID
	State agg.State
}

// Answer is the planner's result.
type Answer struct {
	Plan PlanKind
	// From is the materialized cuboid the answer was served from
	// (Direct and Rollup plans only).
	From lattice.Point
	// Rows are the matching cells, sorted by key.
	Rows []Row
	// Degraded reports that the fast indexed path failed (corruption,
	// truncation, exhausted read retries) and the answer came from a
	// fallback: a sequential verified re-scan of the cell file, or —
	// when Plan is PlanBase despite a materialized target — a full
	// recomputation from the base facts.
	Degraded bool
}

// Answer plans and executes one query under ctx (nil means no deadline).
// It holds the store's read lock for the whole execution, so a concurrent
// refresh never swaps state under a half-answered query. Cancellation
// surfaces as an error wrapping ctx.Err(); malformed queries wrap
// ErrBadRequest.
func (s *Store) Answer(ctx context.Context, q Query) (*Answer, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	s.mu.RLock()
	defer s.mu.RUnlock()

	if err := s.lat.Validate(q.Point); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	live := s.lat.LiveAxes(q.Point)
	liveSet := make(map[int]bool, len(live))
	for _, a := range live {
		liveSet[a] = true
	}
	// Ascending axis order, not map order: when several constrained axes
	// are dead at this point, every run must reject the same one.
	for _, a := range sortedWhereAxes(q.Where) {
		if !liveSet[a] {
			return nil, fmt.Errorf("%w: axis %d is not live at %s", ErrBadRequest, a, s.lat.Label(q.Point))
		}
	}

	s.recordQuery(s.lat.ID(q.Point))
	ans, err := s.execute(ctx, q, live)
	if err != nil {
		return nil, err
	}
	s.reg.Counter("serve.queries").Inc()
	s.reg.Counter("serve.plan." + ans.Plan.String()).Inc()
	s.reg.Counter("serve.rows").Add(int64(len(ans.Rows)))
	s.reg.Timer("serve.answer").Observe(time.Since(start))
	s.reg.HDR("serve.answer.latency").ObserveDuration(time.Since(start))
	return ans, nil
}

// plan picks the cheapest materialized cuboid that can answer the target
// safely, or nil for base-fact recomputation.
func (s *Store) plan(target lattice.Point) (from lattice.Point, cost int64) {
	targetID := s.lat.ID(target)
	var (
		best     lattice.Point
		bestCost int64 = -1
		bestID   uint32
	)
	for _, pid := range s.matPoints() {
		cells := s.matCells(pid)
		if bestCost >= 0 && (cells > bestCost || (cells == bestCost && pid >= bestID)) {
			continue // cannot beat the incumbent; skip the safety walk
		}
		p := s.lat.FromID(pid)
		if pid != targetID && !views.PathSafe(s.lat, s.props, p, target) {
			continue
		}
		best, bestCost, bestID = p, cells, pid
	}
	return best, bestCost
}

// execute routes the query to its plan and runs it through the fallback
// ladder: the fast indexed read, then a sequential verified re-scan of
// the cell file, then recomputation from the base facts — which never
// touch the file, so a corrupt store degrades to slow-but-correct
// answers instead of serving garbage or going dark.
func (s *Store) execute(ctx context.Context, q Query, live []int) (*Answer, error) {
	from, _ := s.plan(q.Point)
	if from == nil {
		rows, err := s.answerFromBase(ctx, q, live)
		if err != nil {
			return nil, err
		}
		return &Answer{Plan: PlanBase, Rows: rows}, nil
	}
	var (
		rows     []Row
		degraded bool
		err      error
	)
	plan := PlanRollup
	if s.lat.ID(from) == s.lat.ID(q.Point) {
		plan = PlanDirect
		rows, degraded, err = s.answerDirect(ctx, q)
	} else {
		rows, degraded, err = s.answerRollup(ctx, q, live, from)
	}
	if err != nil {
		if isCancellation(err) {
			return nil, err
		}
		// Final rung: the materialized file is unreadable even by the
		// degraded scan. Base facts live in memory, so this cannot be
		// poisoned by the same corruption.
		s.reg.Counter("serve.degraded.base").Inc()
		rows, berr := s.answerFromBase(ctx, q, live)
		if berr != nil {
			return nil, berr
		}
		return &Answer{Plan: PlanBase, Rows: rows, Degraded: true}, nil
	}
	return &Answer{Plan: plan, From: from, Rows: rows, Degraded: degraded}, nil
}

// eachCell streams cuboid pid's cells of one generation file to fn with
// the degraded-read ladder: the indexed path first (its own bounded
// retries included), and on a data fault a sequential, cache-bypassing,
// checksum-verified scan after reset() clears whatever fn accumulated.
// Cancellations pass through; a scan that also fails reports both
// causes, wrapping the scan's sentinel.
func (s *Store) eachCell(ctx context.Context, rdr *cellfile.IndexedReader, pid uint32, reset func(), fn func(cellfile.Cell) error) (degraded bool, err error) {
	err = rdr.EachCuboidCtx(ctx, pid, fn)
	if err == nil || isCancellation(err) {
		return false, err
	}
	s.reg.Counter("serve.degraded.scan").Inc()
	reset()
	serr := rdr.ScanCuboid(ctx, pid, fn)
	if serr == nil || isCancellation(serr) {
		return true, serr
	}
	return true, fmt.Errorf("serve: cuboid %d unreadable (%w); degraded scan: %w", pid, err, serr)
}

// generations returns the open generation readers, base first then
// deltas oldest-first, under a held read lock. Single-file stores have
// exactly one.
func (s *Store) generations() []*cellfile.IndexedReader {
	if len(s.deltas) == 0 {
		return []*cellfile.IndexedReader{s.rdr}
	}
	gens := make([]*cellfile.IndexedReader, 0, 1+len(s.deltas))
	gens = append(gens, s.rdr)
	return append(gens, s.deltas...)
}

// eachMemCell streams the memtable's cells for cuboid pid (ladder
// stores; a no-op otherwise), adapting them to the cell shape the
// generation readers produce.
func (s *Store) eachMemCell(pid uint32, fn func(cellfile.Cell) error) error {
	if s.mem == nil {
		return nil
	}
	return s.mem.EachCuboid(pid, func(key []match.ValueID, st agg.State) error {
		return fn(cellfile.Cell{Point: pid, Key: key, State: st})
	})
}

// answerDirect streams the materialized target cuboid, filtering. With
// one generation and an empty memtable the file's own sort order is the
// answer; otherwise same-group cells from different generations are
// re-aggregated through a group map.
func (s *Store) answerDirect(ctx context.Context, q Query) ([]Row, bool, error) {
	live := s.lat.LiveAxes(q.Point)
	pid := s.lat.ID(q.Point)
	filter := func(c cellfile.Cell) bool {
		for i, a := range live {
			if want, ok := q.Where[a]; ok && c.Key[i] != want {
				return false
			}
		}
		return true
	}
	if len(s.deltas) == 0 && (s.mem == nil || s.mem.Cells() == 0) {
		var rows []Row
		degraded, err := s.eachCell(ctx, s.rdr, pid, func() { rows = rows[:0] }, func(c cellfile.Cell) error {
			if !filter(c) {
				return nil
			}
			key := make([]match.ValueID, len(c.Key))
			copy(key, c.Key)
			rows = append(rows, Row{Key: key, State: c.State})
			return nil
		})
		return rows, degraded, err // already in key order: the file is sorted
	}
	groups := make(map[string]agg.State)
	var buf []byte
	accumulate := func(c cellfile.Cell) error {
		if !filter(c) {
			return nil
		}
		buf = packKey(buf[:0], c.Key)
		st := groups[string(buf)]
		st.Merge(c.State)
		groups[string(buf)] = st
		return nil
	}
	var anyDegraded bool
	for _, rdr := range s.generations() {
		// Per-generation staging keeps the degraded-scan reset from
		// discarding other generations' contributions.
		var gen []Row
		degraded, err := s.eachCell(ctx, rdr, pid, func() { gen = gen[:0] }, func(c cellfile.Cell) error {
			key := make([]match.ValueID, len(c.Key))
			copy(key, c.Key)
			gen = append(gen, Row{Key: key, State: c.State})
			return nil
		})
		anyDegraded = anyDegraded || degraded
		if err != nil {
			return nil, anyDegraded, err
		}
		for _, r := range gen {
			if err := accumulate(cellfile.Cell{Point: pid, Key: r.Key, State: r.State}); err != nil {
				return nil, anyDegraded, err
			}
		}
	}
	if err := s.eachMemCell(pid, accumulate); err != nil {
		return nil, anyDegraded, err
	}
	return rowsFromGroups(groups), anyDegraded, nil
}

// answerRollup streams the finer materialized cuboid `from` and merges
// its cells into the target's coarser groups. Safe relaxation steps make
// this exact: across a ladder state step the cells coincide, and across
// an LND step the dropped axis's groups partition the facts, so
// aggregate-state merging (internal/agg) reproduces the target cuboid.
func (s *Store) answerRollup(ctx context.Context, q Query, live []int, from lattice.Point) ([]Row, bool, error) {
	fromLive := s.lat.LiveAxes(from)
	// proj[i] is the position within from's key of the target's i-th
	// live axis.
	proj := make([]int, len(live))
	for i, a := range live {
		pos := -1
		for j, fa := range fromLive {
			if fa == a {
				pos = j
				break
			}
		}
		if pos < 0 {
			return nil, false, fmt.Errorf("serve: internal: axis %d live at %s but not at finer %s",
				a, s.lat.Label(q.Point), s.lat.Label(from))
		}
		proj[i] = pos
	}
	fromPid := s.lat.ID(from)
	groups := make(map[string]agg.State)
	key := make([]match.ValueID, len(live))
	var buf []byte
	accumulate := func(into map[string]agg.State) func(cellfile.Cell) error {
		return func(c cellfile.Cell) error {
			for i := range live {
				key[i] = c.Key[proj[i]]
			}
			for i, a := range live {
				if want, ok := q.Where[a]; ok && key[i] != want {
					return nil
				}
			}
			buf = packKey(buf[:0], key)
			st := into[string(buf)]
			st.Merge(c.State)
			into[string(buf)] = st
			return nil
		}
	}
	var anyDegraded bool
	for _, rdr := range s.generations() {
		// Per-generation staging keeps the degraded-scan reset from
		// discarding other generations' contributions.
		gen := make(map[string]agg.State)
		degraded, err := s.eachCell(ctx, rdr, fromPid, func() { gen = make(map[string]agg.State) }, accumulate(gen))
		anyDegraded = anyDegraded || degraded
		if err != nil {
			return nil, anyDegraded, err
		}
		mergeGroups(groups, gen)
	}
	if err := s.eachMemCell(fromPid, accumulate(groups)); err != nil {
		return nil, anyDegraded, err
	}
	return rowsFromGroups(groups), anyDegraded, nil
}

// mergeGroups folds src's aggregation states into dst.
func mergeGroups(dst, src map[string]agg.State) {
	for k, st := range src { //x3:nolint(detiter) state merging is commutative and dst is only observed after key-sorting
		d := dst[k]
		d.Merge(st)
		dst[k] = d
	}
}

// answerFromBase recomputes the target cuboid from the base facts — the
// oracle-style enumeration of each fact's group memberships at the
// target's ladder states, restricted by the query's constraints.
func (s *Store) answerFromBase(ctx context.Context, q Query, live []int) ([]Row, error) {
	groups := make(map[string]agg.State)
	key := make([]match.ValueID, 0, len(live))
	var buf []byte
	var facts int64
	err := s.base.Each(func(f *match.Fact) error {
		if facts%ctxCheckEvery == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("%w: %w", ErrCancelled, cerr)
			}
		}
		facts++
		var rec func(i int)
		rec = func(i int) {
			if i == len(live) {
				buf = packKey(buf[:0], key)
				st := groups[string(buf)]
				st.Add(f.Measure)
				groups[string(buf)] = st
				return
			}
			a := live[i]
			want, constrained := q.Where[a]
			for _, v := range f.Values(a, int(q.Point[a])) {
				if constrained && v != want {
					continue
				}
				key = append(key, v)
				rec(i + 1)
				key = key[:len(key)-1]
			}
		}
		rec(0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.reg.Counter("serve.base.facts").Add(facts)
	return rowsFromGroups(groups), nil
}

// rowsFromGroups converts an aggregation map into key-sorted rows.
func rowsFromGroups(groups map[string]agg.State) []Row {
	rows := make([]Row, 0, len(groups))
	for k, st := range groups { //x3:nolint(detiter) rows are key-sorted below before anything observes the order
		rows = append(rows, Row{Key: unpackKey([]byte(k)), State: st})
	}
	sortRows(rows)
	return rows
}

// sortedWhereAxes returns a Where clause's axes in ascending order, so
// validation decisions never depend on map iteration order.
func sortedWhereAxes(where map[int]match.ValueID) []int {
	axes := make([]int, 0, len(where))
	for a := range where { //x3:nolint(detiter) axes are sorted below before anything observes the order
		axes = append(axes, a)
	}
	sort.Ints(axes)
	return axes
}
