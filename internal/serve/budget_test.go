package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"x3/internal/cube"
	"x3/internal/obs"
)

// The space-budget differential suite: a store built under a 50% byte
// budget materializes a strict subset of the lattice, yet every cuboid
// answered through the planner — direct reads, safe roll-ups, base
// fallbacks, and (in ladder mode) merges across delta generations — must
// stay byte-equal to the oracle. The budget changes what is stored, never
// what is answered.

// fullStoreBytes builds an unbudgeted store and returns its encoded data
// size, the honest denominator for a fractional budget.
func fullStoreBytes(t *testing.T, ds diffServeDataset, seed int64) int64 {
	t.Helper()
	lat, set := ds.build(t, seed)
	s, err := Build(filepath.Join(t.TempDir(), "full.x3cf"), lat, set, Options{BlockCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	return s.rdr.DataBytes()
}

func TestDifferentialSpaceBudget(t *testing.T) {
	const seeds = 5
	// Each dataset runs at the acceptance point (half the full store) and
	// under hard pressure (an eighth): tight budgets force the greedy
	// model to drop cuboids whose kept safe ancestors then answer them by
	// roll-up, so the sweep exercises every serving path.
	plans := map[PlanKind]int{}
	for _, ds := range diffServeDatasets() {
		for _, div := range []int64{2, 8} {
			t.Run(fmt.Sprintf("%s_div%d", ds.name, div), func(t *testing.T) {
				for seed := int64(1); seed <= seeds; seed++ {
					t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
						budget := fullStoreBytes(t, ds, seed) / div
						lat, set := ds.build(t, seed)
						reg := obs.New()
						s, err := Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set,
							Options{Registry: reg, SpaceBudget: budget, BlockCells: 16})
						if err != nil {
							t.Fatal(err)
						}
						defer s.Close()

						// A fractional budget cannot hold the whole lattice;
						// the cost model must have dropped something and
						// stayed at or under budget (sizes are exact at build
						// time: the selection prices cuboids with the v4
						// encoder itself).
						if got := len(s.Materialized()); got == lat.Size() {
							t.Fatalf("1/%d budget materialized all %d cuboids", div, got)
						} else if got == 0 {
							t.Fatalf("1/%d budget materialized nothing", div)
						}
						decisions := s.Decisions()
						if len(decisions) != lat.Size() {
							t.Fatalf("store holds %d decisions, want one per lattice point (%d)", len(decisions), lat.Size())
						}
						var spent int64
						for _, d := range decisions {
							if d.Materialize {
								spent += d.Bytes
							} else if d.Reason != "over-budget" && d.Reason != "no-benefit" {
								t.Fatalf("unpicked decision %+v has reason %q", d, d.Reason)
							}
						}
						if spent > budget {
							t.Fatalf("decisions spend %d bytes of a %d budget", spent, budget)
						}

						oracle, err := cube.RunOracle(lat, set, set.Dicts)
						if err != nil {
							t.Fatal(err)
						}
						for _, p := range lat.Points() {
							plans[assertCuboidMatchesOracle(t, s, oracle, p)]++
						}
					})
				}
			})
		}
	}
	t.Logf("budgeted plan mix over %d seeds x 2 budgets: %d direct, %d rollup, %d base",
		seeds, plans[PlanDirect], plans[PlanRollup], plans[PlanBase])
	if plans[PlanDirect] == 0 || plans[PlanRollup] == 0 || plans[PlanBase] == 0 {
		t.Errorf("plan mix degenerate: %v — the budgeted sweep must exercise all three serving paths", plans)
	}
}

// TestDifferentialSpaceBudgetLadder drives the full adaptive loop: a
// budgeted ladder store serves byte-equal answers across memtable, delta
// generations, the budget-re-selecting compaction (fed by live query
// counts), and recovery from the manifest + WAL.
func TestDifferentialSpaceBudgetLadder(t *testing.T) {
	const batches = 3
	plans := map[PlanKind]int{}
	for _, ds := range ladderDatasets() {
		t.Run(ds.name, func(t *testing.T) {
			seed := int64(1)
			ctx := context.Background()
			lat := ds.lat(t)
			oracle := newLadderOracle(t, lat)
			baseDoc := ds.doc(seed)
			baseSet := oracle.add(t, baseDoc)

			// Denominator: the unbudgeted ladder base generation.
			full, err := BuildDir(t.TempDir(), lat, baseSet, Options{BlockCells: 16, FlushCells: -1, CompactAfter: -1})
			if err != nil {
				t.Fatal(err)
			}
			budget := full.rdr.DataBytes() / 2
			full.Close()

			dir := t.TempDir()
			reg := obs.New()
			opt := Options{Registry: reg, SpaceBudget: budget, BlockCells: 16, FlushCells: -1, CompactAfter: -1}
			s, err := BuildDir(dir, lat, baseSet, opt)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(s.keepSorted); got == lat.Size() || got == 0 {
				t.Fatalf("50%% ladder budget kept %d of %d cuboids", got, lat.Size())
			}
			sweepLadder(t, s, oracle.result(t), plans)

			for k := 1; k <= batches; k++ {
				doc := ds.doc(seed*1000 + int64(k))
				oracle.add(t, doc)
				if _, err := s.Append(ctx, docBytes(t, doc)); err != nil {
					t.Fatalf("append %d: %v", k, err)
				}
				res := oracle.result(t)
				sweepLadder(t, s, res, plans) // memtable serving
				if err := s.Flush(ctx); err != nil {
					t.Fatalf("flush %d: %v", k, err)
				}
				sweepLadder(t, s, res, plans) // delta-generation serving
			}

			// Compaction re-runs the selection with the live query counts
			// (the sweeps above populated them); the new keep set can only
			// shrink — dropped cells cannot come back without a rebuild.
			before := append([]uint32(nil), s.keepSorted...)
			beforeSet := make(map[uint32]bool, len(before))
			for _, pid := range before {
				beforeSet[pid] = true
			}
			if err := s.Compact(ctx); err != nil {
				t.Fatal(err)
			}
			for _, pid := range s.keepSorted {
				if !beforeSet[pid] {
					t.Fatalf("compaction grew the keep set: %d not in %v", pid, before)
				}
			}
			if len(s.Decisions()) == 0 {
				t.Fatal("budgeted compaction recorded no decisions")
			}
			final := oracle.result(t)
			sweepLadder(t, s, final, plans)

			// The report covers the whole lattice and saw the sweep's queries.
			report := s.CuboidReport()
			if len(report) != lat.Size() {
				t.Fatalf("CuboidReport has %d rows, want %d", len(report), lat.Size())
			}
			var queried int64
			for _, cs := range report {
				queried += cs.Queries
				if cs.Materialized && cs.Cells == 0 {
					t.Fatalf("materialized cuboid %s reports zero cells", cs.Label)
				}
			}
			if queried == 0 {
				t.Fatal("CuboidReport saw no queries after the sweeps")
			}

			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Recovery under the same budget: the shrunken keep set survives
			// the manifest round trip and answers stay byte-equal.
			recBase := newLadderOracle(t, lat).add(t, baseDoc)
			s2, err := OpenDir(dir, lat, recBase, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			sweepLadder(t, s2, final, plans)
		})
	}
	t.Logf("budgeted ladder plan mix: %d direct, %d rollup, %d base",
		plans[PlanDirect], plans[PlanRollup], plans[PlanBase])
	if plans[PlanDirect] == 0 || plans[PlanRollup] == 0 || plans[PlanBase] == 0 {
		t.Errorf("plan mix degenerate: %v — the budgeted ladder sweep must exercise every serving path", plans)
	}
}
