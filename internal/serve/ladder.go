package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"x3/internal/agg"
	"x3/internal/cellfile"
	"x3/internal/costmodel"
	"x3/internal/cube"
	"x3/internal/extsort"
	"x3/internal/fault"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/wal"
	"x3/internal/xmltree"
)

// This file is the log-structured incremental-maintenance path: a store
// built with BuildDir owns a directory of generation-numbered cell files
// described by a manifest, a write-ahead log, and an in-memory delta
// cell table (cube.Delta). The write lifecycle is
//
//	Append: document → WAL (fsync; the durability point) → memtable
//	Flush:  memtable → sorted delta cell file → manifest swap
//	Compact: base + deltas → merged base file → manifest swap
//
// and the read path (planner.go) re-aggregates base + deltas + memtable
// per cell, which is exact because the supported aggregates are
// distributive across the disjoint per-generation fact sets. Every state
// transition is ordered so that a crash (or injected fault) at any point
// leaves the store recoverable to exactly the pre-crash acknowledged
// state: cell files are synced, validated by re-opening, and renamed
// into place before the manifest adopts them; the manifest itself swaps
// atomically; and recovery replays the WAL — the system of record for
// the append history — to rebuild dictionaries, base facts, and the
// unflushed memtable.

// defaultFlushCells is the memtable size that triggers an automatic
// flush after an append.
const defaultFlushCells = 4096

// defaultCompactAfter is the outstanding-delta count that signals the
// background compactor after a flush.
const defaultCompactAfter = 4

// BuildDir computes the cube of lat over base and materializes it as a
// delta-ladder store in dir: a base generation cell file, a manifest,
// and an empty write-ahead log. The returned store accepts Append.
func BuildDir(dir string, lat *lattice.Lattice, base *match.Set, opt Options) (*Store, error) {
	res, props, measured, keep, decisions, err := computeCube(lat, base, opt)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	man := manifest{
		Version: manifestVersion,
		NextGen: 1,
		Base:    genName("base", 0),
		Keep:    sortedKeep(keep),
		Applied: 1,
	}
	s := newStore(filepath.Join(dir, man.Base), lat, base, props, measured, opt)
	s.decisions = decisions
	s.initLadder(dir, man, opt)

	rdr, err := s.writeStoreAt(s.path, res, keep)
	if err != nil {
		return nil, err
	}
	s.adoptReader(rdr)
	s.rdr = rdr
	s.mem = cube.NewDelta(lat, s.man.Keep)

	w, err := wal.Create(filepath.Join(dir, walName), wal.Options{Fault: opt.Fault, Registry: opt.Registry})
	if err != nil {
		rdr.Close()
		return nil, err
	}
	s.walW = w
	s.nextSeq = 1
	if err := writeManifest(dir, man, s.fault); err != nil {
		w.Close()
		rdr.Close()
		return nil, err
	}
	return s, nil
}

// OpenDir opens an existing delta-ladder store: the manifest names the
// generations, orphaned files from interrupted flushes or compactions
// are swept, and the write-ahead log is replayed — rebuilding the
// dictionaries and base facts deterministically and folding the records
// past the manifest's Applied horizon back into the memtable. base must
// be the same base fact set the store was built over (the cell files
// hold cube cells, not facts; the fact table is re-derived). A torn WAL
// tail — a crash mid-append — is cut at the last clean record.
func OpenDir(dir string, lat *lattice.Lattice, base *match.Set, opt Options) (*Store, error) {
	if lat.Query.MinSupport > 1 {
		return nil, fmt.Errorf("serve: cannot serve an iceberg cube (HAVING >= %d)", lat.Query.MinSupport)
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	sweepOrphans(dir, man)

	s := newStore(filepath.Join(dir, man.Base), lat, base, opt.Props, opt.Props == nil, opt)
	s.initLadder(dir, man, opt)

	rdr, err := cellfile.OpenIndexedWith(s.path, cellfile.ReadOptions{Fault: s.fault, Retries: s.retries})
	if err != nil {
		return nil, err
	}
	s.adoptReader(rdr)
	s.rdr = rdr
	for _, name := range man.Deltas {
		d, err := cellfile.OpenIndexedWith(filepath.Join(dir, name), cellfile.ReadOptions{Fault: s.fault, Retries: s.retries})
		if err != nil {
			s.closeReaders()
			return nil, err
		}
		s.adoptReader(d)
		s.deltas = append(s.deltas, d)
	}

	// Replay the WAL over a private dictionary clone: value IDs are
	// assigned in replay order, reproducing exactly the IDs the live
	// store interned when the records were appended.
	dicts := cloneDicts(base.Dicts)
	facts := append([]*match.Fact(nil), base.Facts...)
	s.mem = cube.NewDelta(lat, man.Keep)
	walPath := filepath.Join(dir, walName)
	res, err := wal.Replay(walPath, wal.Options{Fault: opt.Fault, Registry: opt.Registry}, func(r wal.Record) error {
		doc, err := xmltree.Parse(bytes.NewReader(r.Payload))
		if err != nil {
			return fmt.Errorf("serve: wal record %d: %w", r.Seq, err)
		}
		delta, err := match.EvaluateWith(doc, lat, dicts)
		if err != nil {
			return fmt.Errorf("serve: wal record %d: %w", r.Seq, err)
		}
		facts = append(facts, delta.Facts...)
		if r.Seq >= man.Applied {
			if _, err := s.mem.Absorb(delta); err != nil {
				return err
			}
		}
		return nil
	})
	if errors.Is(err, wal.ErrTruncated) && !fault.IsInjected(err) {
		// The torn tail of a crashed append: nothing past Good was ever
		// acknowledged. Cut it and continue. An *injected* short read is
		// excluded — a transient fault that merely looks like a torn tail
		// must fail the open, not cut durable records.
		if terr := wal.Truncate(walPath, res.Good); terr != nil {
			s.closeReaders()
			return nil, terr
		}
	} else if err != nil {
		s.closeReaders()
		return nil, err
	}
	s.nextSeq = res.NextSeq
	if s.nextSeq < man.Applied {
		s.nextSeq = man.Applied
	}
	if s.nextSeq == 0 {
		s.nextSeq = 1
	}
	s.base = &match.Set{Lattice: lat, Dicts: dicts, Facts: facts}
	s.dicts = dicts

	if s.measured {
		props, err := cube.MeasureProps(lat, s.base)
		if err != nil {
			s.closeReaders()
			return nil, err
		}
		s.props = props
	}

	w, err := wal.OpenAppend(walPath, wal.Options{Fault: opt.Fault, Registry: opt.Registry})
	if err != nil {
		s.closeReaders()
		return nil, err
	}
	s.walW = w
	return s, nil
}

// initLadder sets the ladder-mode fields common to BuildDir and OpenDir.
func (s *Store) initLadder(dir string, man manifest, opt Options) {
	s.dir = dir
	s.man = man
	s.keepSorted = man.Keep
	s.keep = make(map[uint32]bool, len(man.Keep))
	for _, pid := range man.Keep {
		s.keep[pid] = true
	}
	s.flushCells = int64(opt.FlushCells)
	if s.flushCells == 0 {
		s.flushCells = defaultFlushCells
	}
	s.compactAfter = opt.CompactAfter
	if s.compactAfter == 0 {
		s.compactAfter = defaultCompactAfter
	}
	s.compactCh = make(chan struct{}, 1)
}

// genName builds a generation file name ("base-000007.x3ci").
func genName(kind string, gen int) string {
	return fmt.Sprintf("%s-%06d.x3ci", kind, gen)
}

// sortedKeep flattens a keep set into the manifest's sorted pid list.
func sortedKeep(keep map[uint32]bool) []uint32 {
	out := make([]uint32, 0, len(keep))
	for pid := range keep {
		out = append(out, pid)
	}
	sortUint32(out)
	return out
}

// cloneDicts deep-copies per-axis dictionaries, preserving ID order.
func cloneDicts(dicts []*match.Dict) []*match.Dict {
	out := make([]*match.Dict, len(dicts))
	for i, d := range dicts {
		nd := match.NewDict()
		for _, v := range d.Values() {
			nd.ID(v)
		}
		out[i] = nd
	}
	return out
}

// Dir returns the store's generation directory ("" for single-file
// stores built with Build).
func (s *Store) Dir() string { return s.dir }

// Generations reports the ladder's current shape: outstanding delta
// files and memtable cells. Single-file stores report zeros.
func (s *Store) Generations() (deltas int, memCells int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.mem == nil {
		return 0, 0
	}
	return len(s.deltas), s.mem.Cells()
}

// NextSeq returns the next write-ahead-log sequence number to be
// assigned (ladder stores only).
func (s *Store) NextSeq() uint64 {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return s.nextSeq
}

// staged is a fully evaluated append, ready to commit: every fallible
// step (parse, dictionary interning, evaluation, property measurement)
// happens before the WAL write, so once the record is durable the
// in-memory commit cannot fail and the recovered state always equals the
// live post-append state.
type staged struct {
	body  []byte
	delta *match.Set
	dicts []*match.Dict
	base  *match.Set
	props cube.Props
}

// stage parses and evaluates an appended document against a clone of the
// store's current dictionaries.
func (s *Store) stage(body []byte) (*staged, error) {
	doc, err := xmltree.Parse(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	s.mu.RLock()
	oldBase := s.base
	s.mu.RUnlock()
	dicts := cloneDicts(oldBase.Dicts)
	delta, err := match.EvaluateWith(doc, s.lat, dicts)
	if err != nil {
		return nil, err
	}
	facts := make([]*match.Fact, 0, len(oldBase.Facts)+len(delta.Facts))
	facts = append(facts, oldBase.Facts...)
	facts = append(facts, delta.Facts...)
	newBase := &match.Set{Lattice: s.lat, Dicts: dicts, Facts: facts}
	props := s.props
	if s.measured {
		mp, err := cube.MeasureProps(s.lat, newBase)
		if err != nil {
			return nil, err
		}
		props = mp
	}
	return &staged{body: body, delta: delta, dicts: dicts, base: newBase, props: props}, nil
}

// commit folds a staged append into the live state under the store lock.
func (s *Store) commit(st *staged) (int64, error) {
	s.mu.Lock()
	//x3:nolint(lockhold) Delta.Absorb's blocking summary comes from file-backed Source.Each implementations; the staged delta built in stage() always carries the in-memory match.Set, so this call never touches a file
	added, err := s.mem.Absorb(st.delta)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.base = st.base
	s.dicts = st.dicts
	s.props = st.props
	s.mu.Unlock()
	s.nextSeq++
	return added, nil
}

// Append makes one XML document durable and serveable: the raw bytes are
// evaluated against the store's query, appended to the write-ahead log
// (fsynced — the durability point), and folded into the in-memory delta
// table. Queries see the new facts immediately; a crash after Append
// returns recovers them from the log. When the memtable reaches the
// flush threshold the append also flushes it as a delta generation.
// Returns the number of facts the document contributed.
func (s *Store) Append(ctx context.Context, body []byte) (int64, error) {
	if s.dir == "" {
		return 0, fmt.Errorf("%w: store has no write-ahead log (built with Build, not BuildDir)", ErrBadRequest)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return s.appendLocked(ctx, body)
}

func (s *Store) appendLocked(ctx context.Context, body []byte) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	st, err := s.stage(body)
	if err != nil {
		return 0, err
	}
	if err := s.walW.Append(s.nextSeq, st.body); err != nil {
		return 0, err
	}
	added, err := s.commit(st)
	if err != nil {
		return 0, err
	}
	s.reg.Counter("serve.appends").Inc()
	s.reg.Counter("serve.append.facts").Add(added)
	if s.flushCells > 0 && s.mem.Cells() >= s.flushCells {
		if err := s.flushLocked(ctx); err != nil {
			return added, err
		}
	}
	return added, nil
}

// Flush writes the memtable out as a sorted delta generation and swaps
// the manifest to adopt it. An empty memtable is a no-op. On return the
// flushed cells are served from the delta file and the WAL records they
// came from are marked applied (replay skips re-folding them).
func (s *Store) Flush(ctx context.Context) error {
	if s.dir == "" {
		return fmt.Errorf("%w: store has no delta ladder (built with Build, not BuildDir)", ErrBadRequest)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return s.flushLocked(ctx)
}

func (s *Store) flushLocked(ctx context.Context) error {
	if s.mem.Cells() == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	name := genName("delta", s.man.NextGen)
	full := filepath.Join(s.dir, name)
	tmp := full + ".tmp"
	sink := cellfile.CreateIndexed(tmp)
	sink.BlockCells = s.blockCells
	sink.Fault = s.fault
	err := s.mem.Each(func(pid uint32, key []match.ValueID, st agg.State) error {
		return sink.Cell(pid, key, st)
	})
	if err != nil {
		sink.Close()
		os.Remove(tmp)
		return err
	}
	cells := sink.Cells()
	if err := sink.Close(); err != nil {
		return err // the sink removes tmp on a failed close
	}
	// Validate the new generation by re-opening it before the manifest
	// may adopt it; the open reader follows the inode through the rename.
	rdr, err := cellfile.OpenIndexedWith(tmp, cellfile.ReadOptions{Fault: s.fault, Retries: s.retries})
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, full); err != nil {
		rdr.Close()
		os.Remove(tmp)
		return err
	}
	s.adoptReader(rdr)

	newMan := s.man
	newMan.Deltas = append(append([]string(nil), s.man.Deltas...), name)
	newMan.NextGen++
	newMan.Applied = s.nextSeq
	if err := writeManifest(s.dir, newMan, s.fault); err != nil {
		// The orphaned delta file is swept on the next open.
		rdr.Close()
		os.Remove(full)
		return err
	}
	s.man = newMan

	old := s.mem
	fresh := cube.NewDelta(s.lat, s.man.Keep)
	s.mu.Lock()
	s.deltas = append(s.deltas, rdr)
	s.mem = fresh
	s.mu.Unlock()
	old.FlushObs(s.reg)

	s.reg.Counter("serve.flush.runs").Inc()
	s.reg.Counter("serve.flush.cells").Add(cells)
	if s.compactAfter > 0 && len(s.deltas) >= s.compactAfter {
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// cellRows adapts a generation file's cell stream to the merge's row
// shape: [4-byte big-endian point | packed key | encoded state]. The
// point+key prefix is the merge ordering; the state trails so equal
// prefixes from different generations merge.
type cellRows struct {
	it  *cellfile.CellIterator
	row []byte
}

func newCellRows(r *cellfile.IndexedReader) (*cellRows, error) {
	c := &cellRows{it: r.Iterate()}
	return c, c.Next()
}

func (c *cellRows) Cur() []byte { return c.row }

func (c *cellRows) Next() error {
	cell, err := c.it.Next()
	if err != nil {
		c.row = nil
		return err
	}
	if cell == nil {
		c.row = nil
		return nil
	}
	row := c.row[:0]
	row = append(row, byte(cell.Point>>24), byte(cell.Point>>16), byte(cell.Point>>8), byte(cell.Point))
	row = packKey(row, cell.Key)
	var enc [agg.EncodedSize]byte
	cell.State.Encode(enc[:])
	c.row = append(row, enc[:]...)
	return nil
}

// rowPrefix returns the merge-ordering prefix (point + key) of a row.
func rowPrefix(row []byte) []byte { return row[:len(row)-agg.EncodedSize] }

// Compact merges the base generation and every outstanding delta into a
// new base file — the loser-tree k-way merge of extsort, with equal
// (cuboid, group) cells re-aggregated across generations — and swaps the
// manifest to the single merged generation. The memtable and WAL are
// untouched: compaction changes the file layout, never the answer.
// Cancellable via ctx; a failure or crash at any point leaves the old
// generation set serving.
func (s *Store) Compact(ctx context.Context) error {
	if s.dir == "" {
		return fmt.Errorf("%w: store has no delta ladder (built with Build, not BuildDir)", ErrBadRequest)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return s.compactLocked(ctx)
}

func (s *Store) compactLocked(ctx context.Context) error {
	s.mu.RLock()
	oldRdr := s.rdr
	oldDeltas := append([]*cellfile.IndexedReader(nil), s.deltas...)
	s.mu.RUnlock()
	if len(oldDeltas) == 0 {
		return nil
	}
	start := time.Now()

	// Under a space budget the compaction is also the adaptation point:
	// re-run the cost-model selection with the live query weights and
	// cache hit rate, and filter dropped cuboids out of the merge. The
	// planner re-derives their answers from finer cuboids or base facts.
	newKeepSorted := s.man.Keep
	var newKeepSet map[uint32]bool
	var newDecisions []costmodel.Decision
	filter := false
	if s.spaceBudget > 0 {
		pids, set, decisions, err := s.budgetKeep(append([]*cellfile.IndexedReader{oldRdr}, oldDeltas...))
		if err != nil {
			return err
		}
		newKeepSorted, newKeepSet, newDecisions = pids, set, decisions
		filter = len(pids) != len(s.man.Keep)
	}

	srcs := make([]extsort.MergeSource, 0, 1+len(oldDeltas))
	for _, r := range append([]*cellfile.IndexedReader{oldRdr}, oldDeltas...) {
		cr, err := newCellRows(r)
		if err != nil {
			return err
		}
		srcs = append(srcs, cr)
	}

	name := genName("base", s.man.NextGen)
	full := filepath.Join(s.dir, name)
	tmp := full + ".tmp"
	sink := cellfile.CreateIndexed(tmp)
	sink.BlockCells = s.blockCells
	sink.Fault = s.fault

	var pending []byte
	emitPending := func() error {
		if pending == nil {
			return nil
		}
		pid := uint32(pending[0])<<24 | uint32(pending[1])<<16 | uint32(pending[2])<<8 | uint32(pending[3])
		if filter && !newKeepSet[pid] {
			return nil
		}
		key := unpackKey(pending[4 : len(pending)-agg.EncodedSize])
		st := agg.Decode(pending[len(pending)-agg.EncodedSize:])
		return sink.Cell(pid, key, st)
	}
	cmp := func(a, b []byte) int { return bytes.Compare(rowPrefix(a), rowPrefix(b)) }
	err := extsort.Merge(ctx, srcs, cmp, func(_ int, row []byte) error {
		if pending != nil && bytes.Equal(rowPrefix(pending), rowPrefix(row)) {
			st := agg.Decode(pending[len(pending)-agg.EncodedSize:])
			st.Merge(agg.Decode(row[len(row)-agg.EncodedSize:]))
			st.Encode(pending[len(pending)-agg.EncodedSize:])
			return nil
		}
		if err := emitPending(); err != nil {
			return err
		}
		pending = append(pending[:0], row...)
		return nil
	})
	if err == nil {
		err = emitPending()
	}
	if err != nil {
		sink.Close()
		os.Remove(tmp)
		return err
	}
	cells := sink.Cells()
	if err := sink.Close(); err != nil {
		return err
	}
	rdr, err := cellfile.OpenIndexedWith(tmp, cellfile.ReadOptions{Fault: s.fault, Retries: s.retries})
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, full); err != nil {
		rdr.Close()
		os.Remove(tmp)
		return err
	}
	s.adoptReader(rdr)

	newMan := s.man
	newMan.Base = name
	newMan.Deltas = nil
	newMan.NextGen++
	newMan.Keep = newKeepSorted
	if err := writeManifest(s.dir, newMan, s.fault); err != nil {
		rdr.Close()
		os.Remove(full)
		return err
	}
	oldBaseName := s.man.Base
	oldDeltaNames := s.man.Deltas
	s.man = newMan

	s.mu.Lock()
	s.rdr = rdr
	s.deltas = nil
	s.path = full
	if s.spaceBudget > 0 {
		s.keepSorted = newKeepSorted
		s.keep = newKeepSet
		s.decisions = newDecisions
	}
	s.mu.Unlock()

	s.bestEffort(oldRdr.Close())
	s.bestEffort(os.Remove(filepath.Join(s.dir, oldBaseName)))
	for i, d := range oldDeltas {
		s.bestEffort(d.Close())
		s.bestEffort(os.Remove(filepath.Join(s.dir, oldDeltaNames[i])))
	}

	s.reg.Counter("compact.runs").Inc()
	s.reg.Counter("compact.cells").Add(cells)
	s.reg.Counter("compact.inputs").Add(int64(1 + len(oldDeltas)))
	s.reg.Timer("compact.merge").Observe(time.Since(start))
	return nil
}

// CompactLoop runs compactions in the background until ctx is
// cancelled: each flush that leaves at least Options.CompactAfter
// outstanding deltas signals one compaction. Run it as a goroutine from
// the process entry layer (`go store.CompactLoop(ctx)`); it never
// spawns goroutines itself.
func (s *Store) CompactLoop(ctx context.Context) {
	if s.dir == "" || ctx == nil {
		return
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.compactCh:
			if err := s.compactLocked2(ctx); err != nil && !isCancellation(err) {
				s.reg.Counter("compact.errors").Inc()
			}
		}
	}
}

// compactLocked2 is Compact without the ladder-mode guard, for the loop.
func (s *Store) compactLocked2(ctx context.Context) error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return s.compactLocked(ctx)
}

// refreshLadder is RefreshDoc for ladder stores: the document rides the
// append path (gaining WAL durability the single-file refresh never
// had), then a flush and a full compaction restore the single-base
// layout RefreshDoc promises.
func (s *Store) refreshLadder(ctx context.Context, doc *xmltree.Document) (int64, error) {
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		return 0, err
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	added, err := s.appendLocked(ctx, buf.Bytes())
	if err != nil {
		return 0, err
	}
	if err := s.flushLocked(ctx); err != nil {
		return added, err
	}
	if err := s.compactLocked(ctx); err != nil {
		return added, err
	}
	s.reg.Counter("serve.refresh.runs").Inc()
	s.reg.Counter("serve.refresh.added").Add(added)
	return added, nil
}

// ReplayWAL re-replays the write-ahead log against the live store,
// applying only records the store has not already absorbed. It exists to
// make replay idempotence testable: immediately after OpenDir every
// record is already applied, so a second replay must return 0.
func (s *Store) ReplayWAL(ctx context.Context) (int, error) {
	if s.dir == "" {
		return 0, fmt.Errorf("%w: store has no write-ahead log (built with Build, not BuildDir)", ErrBadRequest)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	applied := 0
	_, err := wal.Replay(filepath.Join(s.dir, walName), wal.Options{Fault: s.fault, Registry: s.reg}, func(r wal.Record) error {
		if r.Seq < s.nextSeq {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrCancelled, err)
		}
		st, err := s.stage(r.Payload)
		if err != nil {
			return err
		}
		if _, err := s.commit(st); err != nil {
			return err
		}
		applied++
		return nil
	})
	return applied, err
}
