package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"x3/internal/cube"
	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/obs"
)

// TestConcurrentLadderMaintenance hammers a delta-ladder store with
// concurrent appenders, queriers, a refresher, explicit flushes, and the
// background compaction loop — the `make race` workload for the
// incremental-maintenance path. Appends serialize through the
// maintenance lock in nondeterministic order, so the final check builds
// the oracle from the store's own fact table: however the interleaving
// landed, the ladder must serve exactly the cube of the facts it
// acknowledged.
func TestConcurrentLadderMaintenance(t *testing.T) {
	axes := mixedAxes()
	fxLat, err := lattice.New(dataset.TreebankQuery(axes))
	if err != nil {
		t.Fatal(err)
	}
	oracle := newLadderOracle(t, fxLat)
	baseDoc := dataset.Treebank(dataset.TreebankConfig{Seed: 61, Facts: 40, Axes: axes})
	baseSet := oracle.add(t, baseDoc)

	reg := obs.New()
	s, err := BuildDir(t.TempDir(), fxLat, baseSet, Options{
		Registry: reg, Views: 3, BlockCells: 16, CacheBlocks: 32,
		FlushCells: 32, CompactAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var loopDone sync.WaitGroup
	loopDone.Add(1)
	go func() {
		defer loopDone.Done()
		s.CompactLoop(ctx)
	}()

	const (
		appenders   = 2
		perAppender = 5
		queriers    = 4
		perQuerier  = 30
	)
	var wg sync.WaitGroup
	errs := make(chan error, appenders+queriers+2)

	bodies := make([][][]byte, appenders)
	for a := range bodies {
		for i := 0; i < perAppender; i++ {
			doc := dataset.Treebank(dataset.TreebankConfig{
				Seed: int64(1000 + a*perAppender + i), Facts: 15, Axes: axes,
			})
			bodies[a] = append(bodies[a], docBytes(t, doc))
		}
	}
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for _, body := range bodies[a] {
				if _, err := s.Append(context.Background(), body); err != nil {
					errs <- fmt.Errorf("appender %d: %w", a, err)
					return
				}
			}
		}(a)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		doc := dataset.Treebank(dataset.TreebankConfig{Seed: 2000, Facts: 10, Axes: axes})
		if _, err := s.RefreshDoc(context.Background(), doc); err != nil {
			errs <- fmt.Errorf("refresher: %w", err)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Flush(context.Background()); err != nil {
				errs <- fmt.Errorf("flusher: %w", err)
				return
			}
		}
	}()

	points := fxLat.Points()
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perQuerier; i++ {
				p := points[(w*perQuerier+i)%len(points)]
				if _, err := s.Answer(context.Background(), Query{Point: p}); err != nil {
					errs <- fmt.Errorf("querier %d: %w", w, err)
					return
				}
			}
		}(w)
	}

	wg.Wait()
	cancel()
	loopDone.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesce the ladder and check the served cube against the oracle of
	// the store's own acknowledged facts.
	if err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := cube.RunOracle(fxLat, s.base, s.base.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	wantFacts := 40 + appenders*perAppender*15 + 10
	if got := s.NumFacts(); got != wantFacts {
		t.Fatalf("store acknowledged %d facts, want %d", got, wantFacts)
	}
	for _, p := range fxLat.Points() {
		assertCuboidMatchesOracle(t, s, res, p)
	}
}
