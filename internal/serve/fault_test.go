package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"x3/internal/cellfile"
	"x3/internal/cube"
	"x3/internal/dataset"
	"x3/internal/fault"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
)

// answerSnapshot answers every cuboid of the lattice and encodes the full
// result byte-exactly (plan excluded — only the data matters).
func answerSnapshot(tb testing.TB, s *Store) map[string]string {
	tb.Helper()
	snap := make(map[string]string, s.lat.Size())
	for _, p := range s.lat.Points() {
		ans, err := s.Answer(context.Background(), Query{Point: p})
		if err != nil {
			tb.Fatalf("%s: %v", s.lat.Label(p), err)
		}
		var enc []byte
		for _, r := range ans.Rows {
			enc = packKey(enc, r.Key)
			var st [32]byte
			r.State.Encode(st[:])
			enc = append(enc, st[:]...)
		}
		snap[s.lat.Label(p)] = string(enc)
	}
	return snap
}

// TestDifferentialFaultServing is the acceptance sweep under injected read
// faults: for every seed and dataset family a view-limited store is built
// and served with deterministic corruption and short reads injected into
// the cell-file read path. Every query must be byte-equal to the oracle or
// fail with an explicit wrapped sentinel — never a silently wrong cell.
func TestDifferentialFaultServing(t *testing.T) {
	const seeds = 10
	explicitFailure := func(err error) bool {
		return errors.Is(err, cellfile.ErrCorrupt) || errors.Is(err, cellfile.ErrTruncated) ||
			fault.IsInjected(err)
	}
	for _, ds := range diffServeDatasets() {
		t.Run(ds.name, func(t *testing.T) {
			reg := obs.New()
			var degraded int
			for seed := int64(1); seed <= seeds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					lat, set := ds.build(t, seed)
					inj := fault.New(fault.Config{Seed: seed, CorruptEvery: 7, ShortEvery: 9})
					inj.Observe(reg)
					s, err := Build(filepath.Join(t.TempDir(), "cube.x3ci"), lat, set, Options{
						Registry: reg, Views: ds.views, BlockCells: 16, CacheBlocks: -1,
						Fault: inj, Retries: 8,
					})
					if err != nil {
						// A build may fail when injection outlasts the open
						// retries — but only with an explicit sentinel.
						if !explicitFailure(err) {
							t.Fatalf("build failed without a sentinel: %v", err)
						}
						t.Logf("build failed explicitly: %v", err)
						return
					}
					defer s.Close()
					oracle, err := cube.RunOracle(lat, set, set.Dicts)
					if err != nil {
						t.Fatal(err)
					}
					for _, p := range lat.Points() {
						ans, err := s.Answer(context.Background(), Query{Point: p})
						if err != nil {
							if !explicitFailure(err) {
								t.Fatalf("%s: failed without a sentinel: %v", lat.Label(p), err)
							}
							continue
						}
						if ans.Degraded {
							degraded++
						}
						assertRowsMatchOracle(t, s, oracle, p, ans)
					}
				})
			}
			if reg.Counter("fault.injected.corrupt").Value() == 0 {
				t.Error("the sweep injected no corruption — the harness is not exercising faults")
			}
			t.Logf("%s: %d degraded answers, %d corruptions, %d short reads injected", ds.name, degraded,
				reg.Counter("fault.injected.corrupt").Value(), reg.Counter("fault.injected.short").Value())
		})
	}
}

// assertRowsMatchOracle compares one answer with the oracle cuboid cell by
// cell, byte-equal on keys and encoded aggregate states.
func assertRowsMatchOracle(tb testing.TB, s *Store, oracle *cube.Result, p lattice.Point, ans *Answer) {
	tb.Helper()
	keys := oracle.Keys(p)
	if len(ans.Rows) != len(keys) {
		tb.Fatalf("%s (plan %s): answered %d cells, oracle has %d",
			s.lat.Label(p), ans.Plan, len(ans.Rows), len(keys))
	}
	for i, row := range ans.Rows {
		if string(packKey(nil, row.Key)) != string(packKey(nil, keys[i])) {
			tb.Fatalf("%s (plan %s) cell %d: key %v, oracle %v", s.lat.Label(p), ans.Plan, i, row.Key, keys[i])
		}
		want, _ := oracle.State(p, keys[i])
		var got32, want32 [32]byte
		row.State.Encode(got32[:])
		want.Encode(want32[:])
		if got32 != want32 {
			tb.Fatalf("%s (plan %s) cell %v: state %+v, oracle %+v",
				s.lat.Label(p), ans.Plan, row.Key, row.State, want)
		}
	}
}

// TestDegradedServingLadder corrupts the store's cell file on disk and
// verifies the fallback ladder end to end: the indexed read detects the
// flipped bit by checksum, the sequential re-scan re-detects it (the
// corruption is persistent), and the base-fact recompute still produces
// byte-exact answers — flagged degraded, with the serve.degraded.*
// counters moving.
func TestDegradedServingLadder(t *testing.T) {
	lat, set, _ := treebankWorkload(t, 47, 120, cleanAxes(2))
	reg := obs.New()
	path := filepath.Join(t.TempDir(), "cube.x3ci")
	s, err := Build(path, lat, set, Options{Registry: reg, BlockCells: 8, CacheBlocks: -1, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	oracle, err := cube.RunOracle(lat, set, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one bit inside the first data block. The open reader sees the
	// change through its fd (same inode).
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[8] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	var degradedBase int
	for _, p := range lat.Points() {
		ans, err := s.Answer(context.Background(), Query{Point: p})
		if err != nil {
			t.Fatalf("%s: degraded serving failed: %v", lat.Label(p), err)
		}
		if ans.Degraded {
			if ans.Plan != PlanBase {
				t.Fatalf("%s: degraded answer with plan %s, want base", lat.Label(p), ans.Plan)
			}
			degradedBase++
		}
		assertRowsMatchOracle(t, s, oracle, p, ans)
	}
	if degradedBase == 0 {
		t.Fatal("no query hit the corrupt block — the ladder was never exercised")
	}
	if reg.Counter("serve.degraded.scan").Value() == 0 {
		t.Error("serve.degraded.scan did not move")
	}
	if reg.Counter("serve.degraded.base").Value() == 0 {
		t.Error("serve.degraded.base did not move")
	}
}

// TestCrashSafetyDuringRefresh kills the refresh write path at every
// injected fault point in turn: after each failed refresh the old
// generation must keep serving byte-identical answers, and once the sweep
// lets a refresh through, the store serves the combined data exactly.
func TestCrashSafetyDuringRefresh(t *testing.T) {
	axes := mixedAxes()
	lat, set, _ := treebankWorkload(t, 41, 50, axes)
	s, err := Build(filepath.Join(t.TempDir(), "cube.x3ci"), lat, set, Options{Views: 3, BlockCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	baseline := answerSnapshot(t, s)

	delta := dataset.Treebank(dataset.TreebankConfig{Seed: 42, Facts: 25, Axes: axes})
	deltaSet, err := match.EvaluateWith(delta, lat, set.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	combined := &match.Set{Lattice: lat, Dicts: set.Dicts,
		Facts: append(append([]*match.Fact{}, set.Facts...), deltaSet.Facts...)}

	ctx := context.Background()
	failures := 0
	for k := 0; ; k++ {
		if k > 500 {
			t.Fatalf("refresh did not survive the crash sweep after %d points", k)
		}
		s.fault = fault.NewCrash(int64(90+k), int64(k))
		if _, err := s.RefreshDoc(ctx, delta); err == nil {
			break
		}
		failures++
		// Old generation intact: every answer byte-identical. The old
		// reader was opened before the injector existed, so these reads
		// are clean.
		s.fault = nil
		if got := answerSnapshot(t, s); len(got) != len(baseline) {
			t.Fatalf("crash point %d: snapshot size changed", k)
		} else {
			for label, want := range baseline {
				if got[label] != want {
					t.Fatalf("crash point %d: cuboid %s changed after a failed refresh", k, label)
				}
			}
		}
	}
	if failures == 0 {
		t.Fatal("the sweep injected no refresh failures")
	}
	t.Logf("refresh survived after %d injected crash points", failures)

	// The surviving refresh serves the combined data — possibly through
	// the degraded ladder, since the new generation's reader still wears
	// the crash injector.
	oracle, err := cube.RunOracle(lat, combined, combined.Dicts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lat.Points() {
		ans, err := s.Answer(ctx, Query{Point: p})
		if err != nil {
			t.Fatalf("%s: %v", lat.Label(p), err)
		}
		assertRowsMatchOracle(t, s, oracle, p, ans)
	}
}

// TestServeCancellation pins the contract: a cancelled or expired context
// aborts answers, wire requests and refreshes with an error wrapping the
// context's, and a nil context means no deadline.
func TestServeCancellation(t *testing.T) {
	axes := cleanAxes(3)
	lat, set, _ := treebankWorkload(t, 43, 200, axes)
	s, err := Build(filepath.Join(t.TempDir(), "cube.x3ci"), lat, set, Options{BlockCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Answer(cancelled, Query{Point: lat.Top()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Answer under cancelled ctx: %v, want wrapped context.Canceled", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := s.Answer(expired, Query{Point: lat.Top()}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Answer under expired deadline: %v, want wrapped DeadlineExceeded", err)
	}
	if _, err := s.ServeRequest(cancelled, Request{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ServeRequest under cancelled ctx: %v", err)
	}
	delta := dataset.Treebank(dataset.TreebankConfig{Seed: 44, Facts: 10, Axes: axes})
	if _, err := s.RefreshDoc(cancelled, delta); !errors.Is(err, context.Canceled) {
		t.Fatalf("RefreshDoc under cancelled ctx: %v", err)
	}
	if n := s.NumFacts(); n != set.NumFacts() {
		t.Fatalf("cancelled refresh changed the fact count: %d, want %d", n, set.NumFacts())
	}
	if _, err := s.Answer(nil, Query{Point: lat.Top()}); err != nil {
		t.Fatalf("nil ctx must mean no deadline: %v", err)
	}
}

// TestRefreshWriteFaultLeavesOldGeneration injects persistent write
// errors (not a crash schedule) into the refresh path: the refresh must
// fail explicitly and the old generation keep serving.
func TestRefreshWriteFaultLeavesOldGeneration(t *testing.T) {
	axes := mixedAxes()
	lat, set, _ := treebankWorkload(t, 53, 40, axes)
	s, err := Build(filepath.Join(t.TempDir(), "cube.x3ci"), lat, set, Options{Views: 3, BlockCells: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	baseline := answerSnapshot(t, s)

	s.fault = fault.New(fault.Config{Seed: 5, ErrEvery: 1})
	delta := dataset.Treebank(dataset.TreebankConfig{Seed: 54, Facts: 10, Axes: axes})
	_, err = s.RefreshDoc(context.Background(), delta)
	if err == nil {
		t.Fatal("refresh succeeded with every write failing")
	}
	if !fault.IsInjected(err) {
		t.Fatalf("refresh error does not wrap the injected fault: %v", err)
	}
	s.fault = nil
	for label, want := range answerSnapshot(t, s) {
		if baseline[label] != want {
			t.Fatalf("cuboid %s changed after a failed refresh", label)
		}
	}
	if _, err := os.Stat(s.path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("failed refresh leaked the temp file: %v", err)
	}
}
