package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"x3/internal/cellfile"
	"x3/internal/cube"
	"x3/internal/dataset"
	"x3/internal/fault"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/wal"
	"x3/internal/xmltree"
)

// oracleSnapshot encodes every cuboid of an oracle result the way
// answerSnapshot encodes a store's answers, so expected states compare
// byte-for-byte against served ones.
func oracleSnapshot(tb testing.TB, lat *lattice.Lattice, res *cube.Result) map[string]string {
	tb.Helper()
	snap := make(map[string]string, lat.Size())
	for _, p := range lat.Points() {
		var enc []byte
		for _, key := range res.Keys(p) {
			enc = packKey(enc, key)
			st, _ := res.State(p, key)
			var b [32]byte
			st.Encode(b[:])
			enc = append(enc, b[:]...)
		}
		snap[lat.Label(p)] = string(enc)
	}
	return snap
}

func sameSnapshot(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// ladderCrashFixture is the shared workload of the maintenance crash
// sweeps: a base document plus three appends, with oracle snapshots of
// the store state before and after the final append.
type ladderCrashFixture struct {
	axes     []dataset.AxisConfig
	lat      *lattice.Lattice
	docs     []*xmltree.Document
	bodies   [][]byte
	preSnap  map[string]string // docs 0..2 absorbed
	postSnap map[string]string // docs 0..3 absorbed
}

func newLadderCrashFixture(t *testing.T, seed int64) *ladderCrashFixture {
	t.Helper()
	fx := &ladderCrashFixture{axes: mixedAxes()}
	lat, err := lattice.New(dataset.TreebankQuery(fx.axes))
	if err != nil {
		t.Fatal(err)
	}
	fx.lat = lat
	for i := int64(0); i < 4; i++ {
		doc := dataset.Treebank(dataset.TreebankConfig{Seed: seed + i, Facts: 30, Axes: fx.axes})
		fx.docs = append(fx.docs, doc)
		fx.bodies = append(fx.bodies, docBytes(t, doc))
	}
	oracle := newLadderOracle(t, lat)
	for i, doc := range fx.docs {
		oracle.add(t, doc)
		switch i {
		case 2:
			fx.preSnap = oracleSnapshot(t, lat, oracle.result(t))
		case 3:
			fx.postSnap = oracleSnapshot(t, lat, oracle.result(t))
		}
	}
	return fx
}

// buildTo builds a fresh ladder store in dir and absorbs docs 1 and 2 —
// doc 1 flushed as a delta generation, doc 2 left in the memtable — so a
// following maintenance burst exercises WAL, flush and compaction.
func (fx *ladderCrashFixture) buildTo(t *testing.T, dir string, reg *obs.Registry) *Store {
	t.Helper()
	ctx := context.Background()
	set := fx.evalBase(t)
	s, err := BuildDir(dir, fx.lat, set, Options{
		Registry: reg, Views: 3, BlockCells: 8, FlushCells: -1, CompactAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, fx.bodies[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, fx.bodies[2]); err != nil {
		t.Fatal(err)
	}
	return s
}

// evalBase evaluates the base document against fresh dictionaries — what
// both BuildDir and a recovery OpenDir receive.
func (fx *ladderCrashFixture) evalBase(t *testing.T) *match.Set {
	t.Helper()
	dicts := make([]*match.Dict, fx.lat.NumAxes())
	for i := range dicts {
		dicts[i] = match.NewDict()
	}
	set, err := match.EvaluateWith(fx.docs[0], fx.lat, dicts)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestCrashSweepLadderMaintenance kills the maintenance path — WAL
// append, memtable flush, compaction, manifest swap — at every injected
// fault point in turn. After each kill the live store must keep serving
// answers byte-identical to a store recovered from disk, and the
// recovered state must be exactly the pre-append or post-append oracle —
// never a torn mixture. The sweep ends when a fully armed burst runs
// clean past every fault site.
func TestCrashSweepLadderMaintenance(t *testing.T) {
	fx := newLadderCrashFixture(t, 71)
	reg := obs.New()
	ctx := context.Background()
	failures, kept, applied := 0, 0, 0
	for k := 0; ; k++ {
		if k > 800 {
			t.Fatalf("maintenance did not survive the crash sweep after %d points", k)
		}
		dir := t.TempDir()
		s := fx.buildTo(t, dir, reg)
		inj := fault.NewCrash(int64(700+k), int64(k))
		inj.Observe(reg)
		s.fault = inj
		s.walW.SetFault(inj)
		err := func() error {
			if _, err := s.Append(ctx, fx.bodies[3]); err != nil {
				return err
			}
			if err := s.Flush(ctx); err != nil {
				return err
			}
			return s.Compact(ctx)
		}()
		s.fault = nil
		s.walW.SetFault(nil)
		if err == nil {
			// The burst ran clean with the injector still armed: every
			// fault site has been swept. The final state must be the fully
			// compacted post-append cube.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := fx.reopen(t, dir, reg)
			if d, m := s2.Generations(); d != 0 || m != 0 {
				t.Fatalf("surviving burst left %d deltas, %d memtable cells", d, m)
			}
			// The sweep's flush and compaction writes all went through the
			// default (v4 columnar) encoder: the crash points cover the v4
			// write path, and what survives is a v4 file.
			if got := s2.rdr.Version(); got != 4 {
				t.Fatalf("surviving compacted base is v%d, want v4", got)
			}
			if got := answerSnapshot(t, s2); !sameSnapshot(got, fx.postSnap) {
				t.Fatal("surviving burst does not serve the post-append oracle")
			}
			s2.Close()
			break
		}
		failures++
		if !fault.IsInjected(err) && !errors.Is(err, cellfile.ErrCorrupt) && !errors.Is(err, cellfile.ErrTruncated) {
			t.Fatalf("crash point %d: burst failed without a sentinel: %v", k, err)
		}
		// The live store keeps answering — possibly through the degraded
		// ladder, since generations adopted mid-burst still wear the
		// injector — and must agree byte-for-byte with a recovery from
		// disk.
		live := answerSnapshot(t, s)
		if err := s.Close(); err != nil {
			t.Fatalf("crash point %d: close: %v", k, err)
		}
		s2 := fx.reopen(t, dir, reg)
		recovered := answerSnapshot(t, s2)
		if !sameSnapshot(live, recovered) {
			t.Fatalf("crash point %d: recovered answers differ from the live store's", k)
		}
		switch {
		case sameSnapshot(recovered, fx.preSnap):
			kept++
		case sameSnapshot(recovered, fx.postSnap):
			applied++
		default:
			t.Fatalf("crash point %d: recovered state is neither pre- nor post-append", k)
		}
		// Replay idempotence: recovery already absorbed the whole log.
		if n, err := s2.ReplayWAL(ctx); err != nil || n != 0 {
			t.Fatalf("crash point %d: second replay applied %d records (err %v)", k, n, err)
		}
		s2.Close()
	}
	if failures == 0 {
		t.Fatal("the sweep injected no maintenance failures")
	}
	for _, site := range []string{"fault.injected.wal.append", "fault.injected.cellfile.write", "fault.injected.serve.manifest.write"} {
		if reg.Counter(site).Value() == 0 {
			t.Errorf("the sweep never crossed %s", site)
		}
	}
	t.Logf("maintenance survived after %d crash points (%d kept pre-state, %d had applied the append)",
		failures, kept, applied)
}

// reopen recovers the store from disk with no injector.
func (fx *ladderCrashFixture) reopen(t *testing.T, dir string, reg *obs.Registry) *Store {
	t.Helper()
	s, err := OpenDir(dir, fx.lat, fx.evalBase(t), Options{
		Registry: reg, Views: 3, BlockCells: 8, FlushCells: -1, CompactAfter: -1,
	})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	return s
}

// TestCrashSweepWALReplay kills recovery itself — manifest read, cell
// file opens, WAL replay — at every injected fault point: a killed open
// must fail with an explicit sentinel and leave the on-disk state
// untouched, so the next clean open serves the full pre-crash data. The
// log is never truncated on an injected fault.
func TestCrashSweepWALReplay(t *testing.T) {
	fx := newLadderCrashFixture(t, 81)
	reg := obs.New()
	ctx := context.Background()
	dir := t.TempDir()
	s := fx.buildTo(t, dir, reg)
	if _, err := s.Append(ctx, fx.bodies[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	failures := 0
	for k := 0; ; k++ {
		if k > 800 {
			t.Fatalf("recovery did not survive the crash sweep after %d points", k)
		}
		inj := fault.NewCrash(int64(800+k), int64(k))
		inj.Observe(reg)
		s2, err := OpenDir(dir, fx.lat, fx.evalBase(t), Options{
			Registry: reg, Views: 3, BlockCells: 8, FlushCells: -1, CompactAfter: -1, Fault: inj,
		})
		if err == nil {
			s2.Close()
			break
		}
		failures++
		explicit := fault.IsInjected(err) ||
			errors.Is(err, cellfile.ErrCorrupt) || errors.Is(err, cellfile.ErrTruncated) ||
			errors.Is(err, wal.ErrCorrupt) || errors.Is(err, wal.ErrTruncated)
		if !explicit {
			t.Fatalf("crash point %d: open failed without a sentinel: %v", k, err)
		}
	}
	if failures == 0 {
		t.Fatal("the sweep injected no recovery failures")
	}
	t.Logf("recovery survived after %d crash points", failures)

	// The surviving on-disk state, opened cleanly, is the full oracle.
	s3 := fx.reopen(t, dir, reg)
	defer s3.Close()
	if got := answerSnapshot(t, s3); !sameSnapshot(got, fx.postSnap) {
		t.Fatal("post-sweep recovery does not serve the full oracle")
	}
	if n, err := s3.ReplayWAL(ctx); err != nil || n != 0 {
		t.Fatalf("post-sweep replay applied %d records (err %v), want 0", n, err)
	}
}

// TestCompactionCancelLeavesLadder pins compaction's cancellation
// contract: a cancelled merge aborts with a wrapped context error, the
// generation set is unchanged, and the store keeps serving.
func TestCompactionCancelLeavesLadder(t *testing.T) {
	fx := newLadderCrashFixture(t, 91)
	reg := obs.New()
	dir := t.TempDir()
	s := fx.buildTo(t, dir, reg)
	defer s.Close()
	ctx := context.Background()
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	before, _ := s.Generations()
	if before == 0 {
		t.Fatal("fixture produced no delta generations")
	}
	pre := answerSnapshot(t, s)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Compact(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled compact: %v, want wrapped context.Canceled", err)
	}
	if after, _ := s.Generations(); after != before {
		t.Fatalf("cancelled compact changed the ladder: %d generations, was %d", after, before)
	}
	for label, want := range answerSnapshot(t, s) {
		if pre[label] != want {
			t.Fatalf("cuboid %s changed after a cancelled compaction", label)
		}
	}
	if fmt.Sprint(s.Dir()) != dir {
		t.Fatalf("store dir changed: %q", s.Dir())
	}
}
