package serve

import (
	"context"
	"errors"
)

// Sentinel errors of the serving layer. Wrapped causes classify errors
// for HTTP status mapping: errors.Is(err, ErrBadRequest) is the caller's
// fault (4xx), everything else is the server's (5xx). Cancellations wrap
// the context error, so errors.Is(err, context.Canceled) or
// errors.Is(err, context.DeadlineExceeded) holds regardless of which
// layer (serve, cellfile, cube) noticed the cancellation first.
var (
	// ErrBadRequest marks a query the store cannot answer because the
	// request itself is malformed: unknown axis, unknown state, a
	// constraint on a deleted axis, an invalid lattice point.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrCancelled marks an answer abandoned because its context was
	// cancelled or its deadline passed.
	ErrCancelled = errors.New("serve: cancelled")
)

// isCancellation reports whether err is a context cancellation from any
// layer of the read path.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
