package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"x3/internal/lattice"
	"x3/internal/match"
)

// Request is the wire-level query form the HTTP server accepts: cuboid
// states and constraint values as strings, resolved against the store's
// lattice and dictionaries.
type Request struct {
	// Cuboid maps axis variables to relaxation-state labels, e.g.
	// {"$n": "rigid", "$y": "LND"}; omitted axes default to their most
	// relaxed state (so an empty map addresses the lattice bottom).
	Cuboid map[string]string `json:"cuboid,omitempty"`
	// Where pins axis variables to grouping values, e.g. {"$n": "smith"}.
	// Pinned axes must be live at the target cuboid.
	Where map[string]string `json:"where,omitempty"`
}

// ResponseRow is one answered cell with decoded group values.
type ResponseRow struct {
	Values []string `json:"values"`
	Value  float64  `json:"value"`
	Count  int64    `json:"count"`
}

// Response is the wire-level answer.
type Response struct {
	Cuboid string        `json:"cuboid"`
	Plan   string        `json:"plan"`
	From   string        `json:"from,omitempty"`
	Rows   []ResponseRow `json:"rows"`
	// Degraded is set when the fast indexed read failed and the answer
	// came from a fallback path (verified re-scan or base recompute).
	Degraded bool `json:"degraded,omitempty"`
}

// PointFromStates resolves axis-variable → state-label assignments to a
// lattice point; omitted axes default to their most relaxed state.
func (s *Store) PointFromStates(states map[string]string) (lattice.Point, error) {
	lat := s.lat
	p := lat.Bottom()
	used := map[string]bool{}
	for a, lad := range lat.Ladders {
		want, ok := states[lad.Spec.Var]
		if !ok {
			continue
		}
		used[lad.Spec.Var] = true
		found := false
		for si, st := range lad.States {
			if strings.EqualFold(st.Label, want) {
				p[a] = uint8(si)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("serve: axis %s has no state %q", lad.Spec.Var, want)
		}
	}
	// Sorted order, not map order: when several assignments name unknown
	// axes, every run must reject the same one.
	for _, v := range sortedVars(states) {
		if !used[v] {
			return nil, fmt.Errorf("serve: query has no axis %q", v)
		}
	}
	return p, nil
}

// sortedVars returns a string map's keys in sorted order, so request
// validation and resolution never depend on map iteration order.
func sortedVars(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m { //x3:nolint(detiter) keys are sorted below before anything observes the order
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// axisByVar returns the axis index of a grouping variable.
func (s *Store) axisByVar(v string) (int, error) {
	for a, lad := range s.lat.Ladders {
		if lad.Spec.Var == v {
			return a, nil
		}
	}
	return 0, fmt.Errorf("serve: query has no axis %q", v)
}

// ServeRequest resolves a wire-level request and answers it under ctx.
// Constraint values absent from the dictionaries yield an empty row set
// (the value has never been seen, so no group can match). Resolution
// failures — unknown axes, unknown states, constraints on deleted axes —
// wrap ErrBadRequest.
func (s *Store) ServeRequest(ctx context.Context, req Request) (*Response, error) {
	p, err := s.PointFromStates(req.Cuboid)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	q := Query{Point: p}
	dicts := s.Dicts()
	unseen := false
	if len(req.Where) > 0 {
		q.Where = make(map[int]match.ValueID, len(req.Where))
		// Sorted order, not map order: the first resolution failure is
		// the one the client sees, so it must be the same every run.
		for _, v := range sortedVars(req.Where) {
			val := req.Where[v]
			a, err := s.axisByVar(v)
			if err != nil {
				return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
			}
			if s.lat.Deleted(p, a) {
				return nil, fmt.Errorf("%w: axis %s is deleted at %s", ErrBadRequest, v, s.lat.Label(p))
			}
			id, ok := dicts[a].Lookup(val)
			if !ok {
				unseen = true
				continue
			}
			q.Where[a] = id
		}
	}
	resp := &Response{Cuboid: s.lat.Label(p)}
	if unseen {
		resp.Plan = PlanDirect.String()
		resp.Rows = []ResponseRow{}
		return resp, nil
	}
	ans, err := s.Answer(ctx, q)
	if err != nil {
		return nil, err
	}
	resp.Plan = ans.Plan.String()
	resp.Degraded = ans.Degraded
	if ans.From != nil {
		resp.From = s.lat.Label(ans.From)
	}
	live := s.lat.LiveAxes(p)
	aggFn := s.lat.Query.Agg
	resp.Rows = make([]ResponseRow, len(ans.Rows))
	for i, r := range ans.Rows {
		vals := make([]string, len(r.Key))
		for j, id := range r.Key {
			vals[j] = dicts[live[j]].Value(id)
		}
		resp.Rows[i] = ResponseRow{Values: vals, Value: r.State.Final(aggFn), Count: r.State.N}
	}
	return resp, nil
}
