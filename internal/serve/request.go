package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"x3/internal/agg"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/pattern"
)

// Request is the wire-level query form the HTTP server accepts: cuboid
// states and constraint values as strings, resolved against the store's
// lattice and dictionaries.
type Request struct {
	// Cuboid maps axis variables to relaxation-state labels, e.g.
	// {"$n": "rigid", "$y": "LND"}; omitted axes default to their most
	// relaxed state (so an empty map addresses the lattice bottom).
	Cuboid map[string]string `json:"cuboid,omitempty"`
	// Where pins axis variables to grouping values, e.g. {"$n": "smith"}.
	// Pinned axes must be live at the target cuboid.
	Where map[string]string `json:"where,omitempty"`
}

// ResponseRow is one answered cell with decoded group values.
type ResponseRow struct {
	Values []string `json:"values"`
	Value  float64  `json:"value"`
	Count  int64    `json:"count"`
}

// Response is the wire-level answer.
type Response struct {
	Cuboid string        `json:"cuboid"`
	Plan   string        `json:"plan"`
	From   string        `json:"from,omitempty"`
	Rows   []ResponseRow `json:"rows"`
	// Degraded is set when the fast indexed read failed and the answer
	// came from a fallback path (verified re-scan or base recompute).
	Degraded bool `json:"degraded,omitempty"`
	// Partial is set by a sharded coordinator when some fact partitions
	// could not be reached: the rows are correct for the facts that
	// answered but are not the full total. Missing names each lost
	// partition, so a partial answer is never silently incomplete.
	// Single-node stores never set these.
	Partial bool           `json:"partial,omitempty"`
	Missing []MissingShard `json:"missing,omitempty"`
}

// MissingShard identifies one unreachable fact partition of a partial
// sharded answer.
type MissingShard struct {
	Shard int `json:"shard"`
	// KeyRange describes the lost partition as a residue class of the
	// fact partition hash, e.g. "hash(fact)%4==2".
	KeyRange string `json:"key_range"`
	// Reason is the last per-replica failure the coordinator saw.
	Reason string `json:"reason"`
}

// CellRow is one answered cell in store-independent form: decoded group
// values plus the raw mergeable aggregate state. Because agg.State is
// distributive, CellRows from stores over disjoint fact sets re-aggregate
// exactly — this is the currency of cross-shard merging.
type CellRow struct {
	Values []string
	State  agg.State
}

// CellAnswer is an answered request before finalization: rows carry
// states, not finals, so a coordinator can merge answers from several
// stores and finalize once.
type CellAnswer struct {
	Cuboid   string
	Plan     PlanKind
	From     string
	Degraded bool
	Rows     []CellRow
}

// PointFromStates resolves axis-variable → state-label assignments to a
// lattice point; omitted axes default to their most relaxed state.
func (s *Store) PointFromStates(states map[string]string) (lattice.Point, error) {
	lat := s.lat
	p := lat.Bottom()
	used := map[string]bool{}
	for a, lad := range lat.Ladders {
		want, ok := states[lad.Spec.Var]
		if !ok {
			continue
		}
		used[lad.Spec.Var] = true
		found := false
		for si, st := range lad.States {
			if strings.EqualFold(st.Label, want) {
				p[a] = uint8(si)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("serve: axis %s has no state %q", lad.Spec.Var, want)
		}
	}
	// Sorted order, not map order: when several assignments name unknown
	// axes, every run must reject the same one.
	for _, v := range sortedVars(states) {
		if !used[v] {
			return nil, fmt.Errorf("serve: query has no axis %q", v)
		}
	}
	return p, nil
}

// sortedVars returns a string map's keys in sorted order, so request
// validation and resolution never depend on map iteration order.
func sortedVars(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m { //x3:nolint(detiter) keys are sorted below before anything observes the order
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// axisByVar returns the axis index of a grouping variable.
func (s *Store) axisByVar(v string) (int, error) {
	for a, lad := range s.lat.Ladders {
		if lad.Spec.Var == v {
			return a, nil
		}
	}
	return 0, fmt.Errorf("serve: query has no axis %q", v)
}

// AnswerCells resolves a wire-level request and answers it under ctx in
// mergeable form: decoded group values plus raw aggregate states.
// Constraint values absent from the dictionaries yield an empty row set
// (the value has never been seen, so no group can match). Resolution
// failures — unknown axes, unknown states, constraints on deleted axes —
// wrap ErrBadRequest.
func (s *Store) AnswerCells(ctx context.Context, req Request) (*CellAnswer, error) {
	p, err := s.PointFromStates(req.Cuboid)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	q := Query{Point: p}
	dicts := s.Dicts()
	unseen := false
	if len(req.Where) > 0 {
		q.Where = make(map[int]match.ValueID, len(req.Where))
		// Sorted order, not map order: the first resolution failure is
		// the one the client sees, so it must be the same every run.
		for _, v := range sortedVars(req.Where) {
			val := req.Where[v]
			a, err := s.axisByVar(v)
			if err != nil {
				return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
			}
			if s.lat.Deleted(p, a) {
				return nil, fmt.Errorf("%w: axis %s is deleted at %s", ErrBadRequest, v, s.lat.Label(p))
			}
			id, ok := dicts[a].Lookup(val)
			if !ok {
				unseen = true
				continue
			}
			q.Where[a] = id
		}
	}
	ca := &CellAnswer{Cuboid: s.lat.Label(p)}
	if unseen {
		ca.Plan = PlanDirect
		ca.Rows = []CellRow{}
		return ca, nil
	}
	ans, err := s.Answer(ctx, q)
	if err != nil {
		return nil, err
	}
	ca.Plan = ans.Plan
	ca.Degraded = ans.Degraded
	if ans.From != nil {
		ca.From = s.lat.Label(ans.From)
	}
	live := s.lat.LiveAxes(p)
	// Re-snapshot the dictionaries for decoding: an append publishes its
	// new cells and its grown dictionaries under one critical section, so
	// a dictionary view taken after Answer returns can decode every cell
	// Answer saw — the entry snapshot above may predate cells appended
	// while the query ran.
	dicts = s.Dicts()
	ca.Rows = make([]CellRow, len(ans.Rows))
	for i, r := range ans.Rows {
		vals := make([]string, len(r.Key))
		for j, id := range r.Key {
			vals[j] = dicts[live[j]].Value(id)
		}
		ca.Rows[i] = CellRow{Values: vals, State: r.State}
	}
	return ca, nil
}

// Finalize renders a mergeable answer into the wire-level response form,
// computing each row's final value under aggFn.
func (ca *CellAnswer) Finalize(aggFn pattern.AggFunc) *Response {
	resp := &Response{Cuboid: ca.Cuboid, Plan: ca.Plan.String(), From: ca.From, Degraded: ca.Degraded}
	resp.Rows = make([]ResponseRow, len(ca.Rows))
	for i, r := range ca.Rows {
		resp.Rows[i] = ResponseRow{Values: r.Values, Value: r.State.Final(aggFn), Count: r.State.N}
	}
	return resp
}

// ServeRequest resolves a wire-level request and answers it under ctx.
// It is AnswerCells plus finalization — the single-store serving path.
func (s *Store) ServeRequest(ctx context.Context, req Request) (*Response, error) {
	ca, err := s.AnswerCells(ctx, req)
	if err != nil {
		return nil, err
	}
	return ca.Finalize(s.lat.Query.Agg), nil
}
