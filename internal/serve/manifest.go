package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"x3/internal/fault"
)

// manifestName is the generation directory's manifest file.
const manifestName = "MANIFEST.json"

// walName is the generation directory's write-ahead log.
const walName = "wal.log"

// manifest is the durable root of a delta-ladder store: which cell files
// make up the current base and delta generations, which cuboids the
// ladder materializes, and how far into the write-ahead log the flushed
// files reach. It is swapped atomically (temp file + rename), so a
// reader always sees either the old generation set or the new one,
// never a mix.
type manifest struct {
	Version int `json:"version"`
	// NextGen numbers the next cell file to be written; every base and
	// delta file name embeds the generation that created it, so names
	// never collide across the store's lifetime.
	NextGen int `json:"next_gen"`
	// Base is the base generation's cell file, relative to the store dir.
	Base string `json:"base"`
	// Deltas are the outstanding delta generations, oldest first.
	Deltas []string `json:"deltas,omitempty"`
	// Keep is the ladder's materialized cuboid set (sorted). All
	// generations materialize exactly these cuboids, so the planner can
	// treat base+deltas+memtable as one store.
	Keep []uint32 `json:"keep"`
	// Applied is the first WAL sequence number whose facts are NOT yet
	// contained in the flushed cell files: recovery replays every record
	// (the log is the system of record for dictionaries and base facts)
	// but folds only records at or past Applied into the memtable.
	Applied uint64 `json:"applied"`
}

// manifestVersion is the current manifest format.
const manifestVersion = 1

// readManifest loads and validates the manifest of a store directory.
func readManifest(dir string) (manifest, error) {
	var m manifest
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return m, fmt.Errorf("serve: %w", err)
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, fmt.Errorf("serve: manifest %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("serve: manifest %s: unsupported version %d", dir, m.Version)
	}
	if m.Base == "" {
		return m, fmt.Errorf("serve: manifest %s: no base generation", dir)
	}
	if !sort.SliceIsSorted(m.Keep, func(i, j int) bool { return m.Keep[i] < m.Keep[j] }) {
		return m, fmt.Errorf("serve: manifest %s: keep set is not sorted", dir)
	}
	return m, nil
}

// writeManifest durably replaces the store's manifest: the new bytes go
// to a temp file that is synced before being renamed over the live name.
// A crash or injected fault at any point leaves the old manifest — and
// with it the old generation set — intact.
func writeManifest(dir string, m manifest, inj *fault.Injector) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: manifest: %w", err)
	}
	b = append(b, '\n')
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serve: manifest: %w", err)
	}
	w := inj.Writer("serve.manifest.write", f)
	if _, err := w.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: manifest %s: %w", dir, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: manifest %s: %w", dir, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: manifest %s: %w", dir, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: manifest %s: %w", dir, err)
	}
	return nil
}

// sweepOrphans removes cell files and temp files in dir that the
// manifest does not reference — the leftovers of a crash between writing
// a new generation file and committing the manifest that would have
// adopted it.
func sweepOrphans(dir string, m manifest) {
	referenced := map[string]bool{m.Base: true, manifestName: true, walName: true}
	for _, d := range m.Deltas {
		referenced[d] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || referenced[name] {
			continue
		}
		if filepath.Ext(name) == ".tmp" || filepath.Ext(name) == ".x3ci" {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
