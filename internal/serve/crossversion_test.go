package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"x3/internal/cellfile"
	"x3/internal/obs"
)

// rewriteGenVersion rewrites the indexed cell file at path in the given
// format version, preserving its cells exactly — simulating a generation
// written by an older binary.
func rewriteGenVersion(tb testing.TB, path string, ver int) {
	tb.Helper()
	var cells []cellfile.Cell
	if err := cellfile.Each(path, func(c cellfile.Cell) error {
		cells = append(cells, c)
		return nil
	}); err != nil {
		tb.Fatal(err)
	}
	tmp := path + ".rewrite"
	sink := cellfile.CreateIndexed(tmp)
	sink.Version = ver
	sink.BlockCells = 16
	for _, c := range cells {
		if err := sink.Cell(c.Point, c.Key, c.State); err != nil {
			tb.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		tb.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		tb.Fatal(err)
	}
}

// TestLadderServesMixedVersionGenerations reopens a delta ladder whose
// base generation was downgraded to v3 and whose delta to v2 — the
// upgrade-in-place scenario: a store written by an older binary must keep
// serving byte-equal answers under the v4 code, accept new (v4) delta
// generations alongside the old files, and compact the mixed-version
// ladder into a single v4 base.
func TestLadderServesMixedVersionGenerations(t *testing.T) {
	ctx := context.Background()
	ds := ladderDatasets()[1] // dblp
	seed := int64(7)
	lat := ds.lat(t)
	oracle := newLadderOracle(t, lat)
	baseDoc := ds.doc(seed)
	baseSet := oracle.add(t, baseDoc)

	dir := t.TempDir()
	opt := Options{Registry: obs.New(), Views: ds.views, BlockCells: 16, FlushCells: -1, CompactAfter: -1}
	s, err := BuildDir(dir, lat, baseSet, opt)
	if err != nil {
		t.Fatal(err)
	}
	doc := ds.doc(seed + 1)
	oracle.add(t, doc)
	if _, err := s.Append(ctx, docBytes(t, doc)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	baseName, deltaNames := s.man.Base, append([]string(nil), s.man.Deltas...)
	if len(deltaNames) != 1 {
		t.Fatalf("expected one delta generation, got %v", deltaNames)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Downgrade the on-disk generations to the older formats.
	rewriteGenVersion(t, filepath.Join(dir, baseName), 3)
	rewriteGenVersion(t, filepath.Join(dir, deltaNames[0]), 2)

	recBase := newLadderOracle(t, lat).add(t, baseDoc)
	s2, err := OpenDir(dir, lat, recBase, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.rdr.Version(); got != 3 {
		t.Fatalf("downgraded base generation reads as v%d, want v3", got)
	}
	plans := map[PlanKind]int{}
	res := oracle.result(t)
	sweepLadder(t, s2, res, plans)

	// A fresh append lands as a v4 delta next to the v3/v2 generations.
	doc2 := ds.doc(seed + 2)
	oracle.add(t, doc2)
	if _, err := s2.Append(ctx, docBytes(t, doc2)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	s2.mu.RLock()
	if n := len(s2.deltas); n != 2 {
		s2.mu.RUnlock()
		t.Fatalf("expected two delta generations, got %d", n)
	}
	if got := s2.deltas[1].Version(); got != 4 {
		s2.mu.RUnlock()
		t.Fatalf("fresh delta generation is v%d, want v4", got)
	}
	s2.mu.RUnlock()
	res = oracle.result(t)
	sweepLadder(t, s2, res, plans)

	// Compacting the mixed ladder produces a single v4 base with the same
	// answers.
	if err := s2.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if d, m := s2.Generations(); d != 0 || m != 0 {
		t.Fatalf("after compact: %d deltas, %d memtable cells", d, m)
	}
	if got := s2.rdr.Version(); got != 4 {
		t.Fatalf("compacted base is v%d, want v4", got)
	}
	sweepLadder(t, s2, res, plans)
}
