package serve

import (
	"sync/atomic"

	"x3/internal/cellfile"
	"x3/internal/costmodel"
	"x3/internal/cube"
	"x3/internal/lattice"
)

// selectBudget prices every cuboid of res with the v4 columnar encoder and
// runs the greedy benefit-per-byte selection under opt.SpaceBudget. weights
// and discount carry live workload stats into the model (nil/0 at build
// time, when no queries have been observed yet).
func selectBudget(lat *lattice.Lattice, props cube.Props, res *cube.Result, baseRows int, opt Options, weights []float64, discount float64) (map[uint32]bool, []costmodel.Decision, error) {
	cands := make([]costmodel.Candidate, 0, lat.Size())
	var buf []cellfile.Cell
	for _, p := range lat.Points() {
		pid := lat.ID(p)
		keys := res.Keys(p)
		buf = buf[:0]
		for _, key := range keys {
			st, _ := res.State(p, key)
			buf = append(buf, cellfile.Cell{Point: pid, Key: key, State: st})
		}
		cands = append(cands, costmodel.Candidate{
			PID:   pid,
			Cells: int64(len(keys)),
			Bytes: cellfile.EncodedCellsBytes(buf, opt.BlockCells),
		})
	}
	rows := int64(baseRows)
	if rows < 1 {
		rows = 1
	}
	pids, decisions, err := costmodel.Select(lat, props, cands, costmodel.Config{
		Budget:       opt.SpaceBudget,
		Weights:      weights,
		BaseCost:     rows,
		ScanDiscount: discount,
	})
	if err != nil {
		return nil, nil, err
	}
	keep := make(map[uint32]bool, len(pids))
	for _, pid := range pids {
		keep[pid] = true
	}
	return keep, decisions, nil
}

// budgetKeep re-runs the cost-model selection at compaction time: the
// candidates are the currently-kept cuboids (only cells already in the
// generation files can survive a merge — a dropped cuboid needs a rebuild
// to come back), priced from the live files' encoded bytes and weighted by
// the observed per-cuboid query counts and cache hit rate. Returns the new
// keep list (sorted), its set form, and the decisions. Caller holds
// refreshMu; the swappable state is read under s.mu.
func (s *Store) budgetKeep(gens []*cellfile.IndexedReader) ([]uint32, map[uint32]bool, []costmodel.Decision, error) {
	s.mu.RLock()
	props := s.props
	baseRows := int64(s.base.NumFacts())
	s.mu.RUnlock()
	if baseRows < 1 {
		baseRows = 1
	}
	cands := make([]costmodel.Candidate, 0, len(s.man.Keep))
	for _, pid := range s.man.Keep {
		var cells, bytes int64
		for _, g := range gens {
			n, _ := g.CuboidCells(pid)
			cells += n
			// Pro-rate the generation's encoded data bytes by cell share:
			// blocks span cuboid boundaries, so per-cuboid bytes are an
			// estimate, not an exact split.
			if total := g.NumCells(); total > 0 {
				bytes += n * g.DataBytes() / total
			}
		}
		cands = append(cands, costmodel.Candidate{PID: pid, Cells: cells, Bytes: bytes})
	}
	pids, decisions, err := costmodel.Select(s.lat, props, cands, costmodel.Config{
		Budget:       s.spaceBudget,
		Weights:      s.queryWeights(),
		BaseCost:     baseRows,
		ScanDiscount: s.cacheDiscount(),
	})
	if err != nil {
		return nil, nil, nil, err
	}
	set := make(map[uint32]bool, len(pids))
	for _, pid := range pids {
		set[pid] = true
	}
	return pids, set, decisions, nil
}

// recordQuery bumps the per-cuboid query counter the cost model reads as
// benefit weights. pid has been validated against the lattice.
func (s *Store) recordQuery(pid uint32) {
	if int(pid) < len(s.qcounts) {
		atomic.AddInt64(&s.qcounts[pid], 1)
	}
}

// queryWeights snapshots the per-cuboid query counts as cost-model
// weights, add-one smoothed so never-queried cuboids keep a floor weight
// and the selection stays total.
func (s *Store) queryWeights() []float64 {
	w := make([]float64, len(s.qcounts))
	for i := range s.qcounts {
		w[i] = 1 + float64(atomic.LoadInt64(&s.qcounts[i]))
	}
	return w
}

// cacheDiscount derives the cost model's ScanDiscount from the observed
// block-cache hit rate: a scan that hits cache is ~free next to a base
// recompute, so a hot cache shrinks the effective cost of materialized
// scans. With no observations (or no registry) the discount is 1.
func (s *Store) cacheDiscount() float64 {
	hits := s.reg.Counter("serve.cache.hits").Value()
	misses := s.reg.Counter("serve.cache.misses").Value()
	total := hits + misses
	if total == 0 {
		return 1
	}
	// Linear blend: all-miss → 1, all-hit → 0.1 (cached scans still cost
	// something — decode and merge are not free).
	rate := float64(hits) / float64(total)
	return 1 - 0.9*rate
}

// Decisions returns the cost-model verdicts from the most recent
// materialization selection (build or budgeted compaction), sorted by
// cuboid id. Empty when the store runs without a space budget.
func (s *Store) Decisions() []costmodel.Decision {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]costmodel.Decision(nil), s.decisions...)
}

// CuboidStatus describes one lattice point for the /cuboids endpoint:
// whether it is materialized, its physical cell count, its live query
// count, and — when the store runs under a space budget — the cost
// model's verdict.
type CuboidStatus struct {
	PID          uint32              `json:"pid"`
	Label        string              `json:"label"`
	Materialized bool                `json:"materialized"`
	Cells        int64               `json:"cells,omitempty"`
	Queries      int64               `json:"queries,omitempty"`
	Decision     *costmodel.Decision `json:"decision,omitempty"`
}

// CuboidReport lists every lattice point in id order with its
// materialization state, physical cell count, observed query count, and
// the latest cost-model decision (if the store runs under a budget).
func (s *Store) CuboidReport() []CuboidStatus {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mat := make(map[uint32]bool)
	for _, pid := range s.matPoints() {
		mat[pid] = true
	}
	byPID := make(map[uint32]*costmodel.Decision, len(s.decisions))
	for i := range s.decisions {
		byPID[s.decisions[i].PID] = &s.decisions[i]
	}
	out := make([]CuboidStatus, 0, s.lat.Size())
	for _, p := range s.lat.Points() {
		pid := s.lat.ID(p)
		cs := CuboidStatus{PID: pid, Label: s.lat.Label(p), Materialized: mat[pid]}
		if cs.Materialized {
			cs.Cells = s.matCells(pid)
		}
		if int(pid) < len(s.qcounts) {
			cs.Queries = atomic.LoadInt64(&s.qcounts[pid])
		}
		if d, ok := byPID[pid]; ok {
			dc := *d
			cs.Decision = &dc
		}
		out = append(out, cs)
	}
	return out
}
