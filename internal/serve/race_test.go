package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"x3/internal/dataset"
	"x3/internal/match"
	"x3/internal/obs"
)

// TestConcurrentQueriesDuringRefresh hammers a store with mixed point and
// slice queries while refreshes fold new facts in — the `make race`
// workload for the serving layer. Every answer must be internally
// consistent: a whole-lattice-bottom total below the pre-refresh fact
// count would be the tell of a torn swap. Nothing may race or panic.
func TestConcurrentQueriesDuringRefresh(t *testing.T) {
	axes := mixedAxes()
	lat, set, _ := treebankWorkload(t, 31, 60, axes)
	reg := obs.New()
	s, err := Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set,
		Options{Registry: reg, Views: 3, BlockCells: 16, CacheBlocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var baseline float64
	bottom, err := s.Answer(context.Background(), Query{Point: lat.Bottom()})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bottom.Rows {
		baseline += r.State.Sum
	}

	const (
		queriers  = 8
		perWorker = 40
		refreshes = 4
	)
	var wg sync.WaitGroup
	errs := make(chan error, queriers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < refreshes; i++ {
			delta := dataset.Treebank(dataset.TreebankConfig{Seed: int64(100 + i), Facts: 20, Axes: axes})
			if _, err := s.RefreshDoc(context.Background(), delta); err != nil {
				errs <- err
				return
			}
		}
	}()

	points := lat.Points()
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := points[(w*perWorker+i)%len(points)]
				q := Query{Point: p}
				if i%3 == 0 {
					// Point/slice flavour: pin the first live axis to
					// whatever the first row of the open slice holds.
					if live := lat.LiveAxes(p); len(live) > 0 {
						open, err := s.Answer(context.Background(), Query{Point: p})
						if err != nil {
							errs <- err
							return
						}
						if len(open.Rows) > 0 {
							q.Where = map[int]match.ValueID{live[0]: open.Rows[0].Key[0]}
						}
					}
				}
				ans, err := s.Answer(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				if len(q.Where) == 0 && lat.ID(p) == lat.ID(lat.Bottom()) {
					var sum float64
					for _, r := range ans.Rows {
						sum += r.State.Sum
					}
					if sum < baseline {
						errs <- fmt.Errorf("torn answer: bottom cuboid total %g below pre-refresh baseline %g", sum, baseline)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := reg.Counter("serve.refresh.runs").Value(); got != refreshes {
		t.Fatalf("recorded %d refreshes, want %d", got, refreshes)
	}
}
