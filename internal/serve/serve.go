// Package serve is the materialized-cube serving layer: it turns a
// computed relaxed cube into an answerable store. A Store owns an indexed
// cell file (internal/cellfile v2) holding the materialized cuboids, the
// base fact table, and the summarizability properties; a query planner
// (planner.go) answers point, slice and roll-up queries by routing each
// target cuboid to the cheapest materialized cuboid it can be *safely*
// derived from — reusing the §3.2/§3.7 safe-relaxation criterion that
// package views applies to view selection — and re-aggregating on the
// fly, falling back to base-fact recomputation when no safe ancestor is
// materialized.
//
// Refreshes ride on cube.Maintain: new facts are folded into the
// materialized cuboids without recomputing the cube, the indexed file is
// rewritten, and the reader is swapped atomically under the store lock,
// so a Store is safe for concurrent queries during a refresh.
package serve

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"sync"

	"x3/internal/agg"
	"x3/internal/cellfile"
	"x3/internal/costmodel"
	"x3/internal/cube"
	"x3/internal/fault"
	"x3/internal/gate"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
	"x3/internal/views"
	"x3/internal/wal"
	"x3/internal/xmltree"
)

// Options configure Build.
type Options struct {
	// Algorithm computes the initial cube (default COUNTER).
	Algorithm string
	// Views > 0 materializes only the cuboids picked by the greedy
	// view-selection of package views (under the store's safety
	// properties); 0 materializes every cuboid. Ignored when SpaceBudget
	// is set.
	Views int
	// SpaceBudget > 0 materializes only the cuboids picked by the greedy
	// benefit-per-byte cost model (internal/costmodel) within this many
	// encoded bytes; the planner's safe-relaxation routing answers the
	// rest. Ladder stores re-run the selection on every compaction with
	// the live per-cuboid query counts and cache hit rate, so the
	// materialized set adapts to the workload. Takes precedence over
	// Views.
	SpaceBudget int64
	// CacheBlocks sizes the LRU block cache in nominal uncompressed
	// blocks (default 64; negative disables caching). CacheBytes takes
	// precedence when set.
	CacheBlocks int
	// CacheBytes > 0 sizes the LRU block cache by encoded block bytes —
	// the native unit since cellfile v4: compressed blocks are charged
	// their on-disk length, so compression directly buys residency.
	CacheBytes int64
	// BlockCells overrides the indexed file's block granularity
	// (0 = cellfile.DefaultBlockCells).
	BlockCells int
	// Props certifies summarizability; nil measures the properties from
	// the base facts (and re-measures them on every refresh).
	Props cube.Props
	// Registry receives the serve.* counters and timers; nil disables
	// observability.
	Registry *obs.Registry
	// Fault injects deterministic faults into the store's file I/O —
	// reads of the indexed cell file and writes of new generations; nil
	// disables injection.
	Fault *fault.Injector
	// Retries bounds re-read attempts on the indexed read path; 0 selects
	// the cellfile default, negative disables retrying.
	Retries int
	// FlushCells makes a ladder store (BuildDir/OpenDir) flush its
	// memtable as a delta generation once it holds at least this many
	// cells; 0 selects the default (4096), negative disables auto-flush
	// (Flush must be called explicitly). Single-file stores ignore it.
	FlushCells int
	// CompactAfter signals the background compactor (CompactLoop) once a
	// flush leaves this many outstanding delta generations; 0 selects the
	// default (4), negative never signals. Single-file stores ignore it.
	CompactAfter int
}

// Store is a servable materialized cube. All exported methods are safe
// for concurrent use.
type Store struct {
	path        string
	lat         *lattice.Lattice
	reg         *obs.Registry
	cache       *cellfile.BlockCache
	blockCells  int
	fault       *fault.Injector
	retries     int
	spaceBudget int64
	// qcounts tracks per-cuboid query arrivals (indexed by pid, updated
	// with atomic adds); the cost model reads them as benefit weights.
	qcounts []int64

	// Ladder-mode state (BuildDir/OpenDir); zero for single-file stores.
	// dir, flushCells, compactAfter and compactCh are immutable after
	// open; walW, nextSeq and man belong to the maintenance path and are
	// guarded by refreshMu. keep and keepSorted mirror man.Keep for the
	// query path and are guarded by mu: a budgeted compaction may shrink
	// them (the cost model dropping a cold cuboid).
	dir          string
	keep         map[uint32]bool
	keepSorted   []uint32 // man.Keep mirror; queries read this, not man
	flushCells   int64
	compactAfter int
	compactCh    chan struct{}
	walW         *wal.Writer
	nextSeq      uint64
	man          manifest

	// refreshMu serializes maintenance (refresh, append, flush, compact);
	// mu guards the swappable state below. Queries hold mu.RLock for
	// their whole execution, so a maintenance swap waits for in-flight
	// answers and later answers see the new state. Maintenance holds the
	// gate across file I/O by design, which is why it is a gate.Gate and
	// not a sync.Mutex (lockhold forbids blocking under a mutex).
	refreshMu gate.Gate
	mu        sync.RWMutex
	rdr       *cellfile.IndexedReader
	deltas    []*cellfile.IndexedReader // ladder mode: delta generations, oldest first
	mem       *cube.Delta               // ladder mode: unflushed cells
	base      *match.Set
	dicts     []*match.Dict
	props     cube.Props
	measured  bool // props are data-measured: re-measure on refresh
	decisions []costmodel.Decision
}

// Build computes the cube of lat over base, materializes the selected
// cuboids as an indexed cell file at path, and returns the serving store.
// Iceberg queries (HAVING >= n) are refused: their discarded cells make
// both roll-up serving and maintenance unsound.
func Build(path string, lat *lattice.Lattice, base *match.Set, opt Options) (*Store, error) {
	res, props, measured, keep, decisions, err := computeCube(lat, base, opt)
	if err != nil {
		return nil, err
	}
	s := newStore(path, lat, base, props, measured, opt)
	s.decisions = decisions
	rdr, err := s.writeStore(res, keep)
	if err != nil {
		return nil, err
	}
	s.adoptReader(rdr)
	s.rdr = rdr
	return s, nil
}

// computeCube runs the initial cube computation shared by Build and
// BuildDir: resolve the algorithm, certify or measure the
// summarizability properties, compute the full cube, and pick the
// materialized point set. Iceberg queries are refused here.
func computeCube(lat *lattice.Lattice, base *match.Set, opt Options) (*cube.Result, cube.Props, bool, map[uint32]bool, []costmodel.Decision, error) {
	if lat.Query.MinSupport > 1 {
		return nil, nil, false, nil, nil, fmt.Errorf("serve: cannot serve an iceberg cube (HAVING >= %d)", lat.Query.MinSupport)
	}
	if opt.Algorithm == "" {
		opt.Algorithm = "COUNTER"
	}
	alg, err := cube.ByName(opt.Algorithm)
	if err != nil {
		return nil, nil, false, nil, nil, err
	}
	props := opt.Props
	measured := false
	if props == nil {
		mp, err := cube.MeasureProps(lat, base)
		if err != nil {
			return nil, nil, false, nil, nil, err
		}
		props, measured = mp, true
	}
	res := cube.NewResult(lat, base.Dicts)
	in := &cube.Input{Lattice: lat, Source: base, Dicts: base.Dicts, Props: props, Reg: opt.Registry}
	if _, err := alg.Run(in, res); err != nil {
		return nil, nil, false, nil, nil, err
	}
	if opt.SpaceBudget > 0 {
		keep, decisions, err := selectBudget(lat, props, res, base.NumFacts(), opt, nil, 0)
		if err != nil {
			return nil, nil, false, nil, nil, err
		}
		return res, props, measured, keep, decisions, nil
	}
	keep, err := selectPoints(lat, props, res, base.NumFacts(), opt.Views)
	if err != nil {
		return nil, nil, false, nil, nil, err
	}
	return res, props, measured, keep, nil, nil
}

// newStore assembles the Store fields common to every open path.
func newStore(path string, lat *lattice.Lattice, base *match.Set, props cube.Props, measured bool, opt Options) *Store {
	s := &Store{
		path:        path,
		lat:         lat,
		refreshMu:   gate.New(),
		reg:         opt.Registry,
		blockCells:  opt.BlockCells,
		fault:       opt.Fault,
		retries:     opt.Retries,
		spaceBudget: opt.SpaceBudget,
		qcounts:     make([]int64, lat.Size()),
		base:        base,
		dicts:       base.Dicts,
		props:       props,
		measured:    measured,
	}
	switch {
	case opt.CacheBytes > 0:
		s.cache = cellfile.NewBlockCacheBytes(opt.CacheBytes)
	case opt.CacheBlocks >= 0:
		n := opt.CacheBlocks
		if n == 0 {
			n = 64
		}
		s.cache = cellfile.NewBlockCache(n)
	}
	if s.cache != nil {
		s.cache.Observe(opt.Registry)
	}
	return s
}

// adoptReader hooks a freshly opened generation reader into the store's
// observability and block cache.
func (s *Store) adoptReader(rdr *cellfile.IndexedReader) {
	rdr.Observe(s.reg)
	if s.cache != nil {
		rdr.SetCache(s.cache)
	}
}

// bestEffort consumes the error of a cleanup step whose failure cannot
// change any answer (the data it touches is already superseded) but must
// not vanish either: failures count into serve.cleanup.errors.
func (s *Store) bestEffort(err error) {
	if err != nil {
		s.reg.Counter("serve.cleanup.errors").Inc()
	}
}

// closeReaders closes every open generation reader (partial-open cleanup
// and Close).
func (s *Store) closeReaders() {
	if s.rdr != nil {
		s.bestEffort(s.rdr.Close())
	}
	for _, d := range s.deltas {
		s.bestEffort(d.Close())
	}
}

// sortUint32 sorts pids ascending.
func sortUint32(v []uint32) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

// selectPoints returns the set of cuboid ids to materialize: every point,
// or the greedy top-k under the safety properties.
func selectPoints(lat *lattice.Lattice, props cube.Props, res *cube.Result, baseRows, k int) (map[uint32]bool, error) {
	keep := make(map[uint32]bool)
	if k <= 0 || k >= lat.Size() {
		for _, p := range lat.Points() {
			keep[lat.ID(p)] = true
		}
		return keep, nil
	}
	sizes := make(map[uint32]int64, lat.Size())
	for _, p := range lat.Points() {
		sizes[lat.ID(p)] = int64(res.CuboidSize(p))
	}
	rows := int64(baseRows)
	if rows < 1 {
		rows = 1
	}
	sugg, err := views.Select(lat, props, sizes, rows, k)
	if err != nil {
		return nil, err
	}
	for _, sg := range sugg {
		keep[lat.ID(sg.Point)] = true
	}
	return keep, nil
}

// writeStore writes the kept cuboids of res as an indexed cell file at
// the store's path, crash-safely: cells go to a temp file that is synced,
// re-opened and structurally validated before it is renamed over path. A
// write fault or crash at any point leaves path untouched — the previous
// generation, if one exists, keeps serving. On success the validated
// reader over the new generation is returned.
func (s *Store) writeStore(res *cube.Result, keep map[uint32]bool) (*cellfile.IndexedReader, error) {
	return s.writeStoreAt(s.path, res, keep)
}

// writeStoreAt is writeStore targeting an explicit path (ladder stores
// write generation-numbered files inside their directory).
func (s *Store) writeStoreAt(path string, res *cube.Result, keep map[uint32]bool) (*cellfile.IndexedReader, error) {
	lat := s.lat
	tmp := path + ".tmp"
	sink := cellfile.CreateIndexed(tmp)
	sink.BlockCells = s.blockCells
	sink.Fault = s.fault
	for _, p := range lat.Points() {
		pid := lat.ID(p)
		if !keep[pid] {
			continue
		}
		for _, key := range res.Keys(p) {
			st, ok := res.State(p, key)
			if !ok {
				sink.Close()
				os.Remove(tmp)
				return nil, fmt.Errorf("serve: cuboid %s lost cell %v", lat.Label(p), key)
			}
			if err := sink.Cell(pid, key, st); err != nil {
				sink.Close()
				os.Remove(tmp)
				return nil, err
			}
		}
	}
	if err := sink.Close(); err != nil {
		return nil, err // the sink removes tmp on a failed close
	}
	rdr, err := cellfile.OpenIndexedWith(tmp, cellfile.ReadOptions{Fault: s.fault, Retries: s.retries})
	if err != nil {
		os.Remove(tmp)
		return nil, err
	}
	// The reader holds an open fd, which follows the inode through the
	// rename; only after the new generation proves readable does it
	// replace the old one.
	if err := os.Rename(tmp, path); err != nil {
		rdr.Close()
		os.Remove(tmp)
		return nil, err
	}
	return rdr, nil
}

// Lattice returns the store's cuboid lattice.
func (s *Store) Lattice() *lattice.Lattice { return s.lat }

// Path returns the indexed cell file backing the store (the current
// base generation, for ladder stores).
func (s *Store) Path() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.path
}

// Dicts returns the store's current per-axis dictionaries. The returned
// dictionaries are replaced, never mutated, by a refresh; holders see a
// consistent (possibly slightly stale) view.
func (s *Store) Dicts() []*match.Dict {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dicts
}

// DataBytes returns the encoded size of the store's cell blocks — for
// ladder stores, summed across the base and every delta generation. This
// is the quantity a SpaceBudget constrains.
func (s *Store) DataBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := s.rdr.DataBytes()
	for _, d := range s.deltas {
		total += d.DataBytes()
	}
	return total
}

// NumFacts returns the number of base facts currently behind the store.
func (s *Store) NumFacts() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base.NumFacts()
}

// Materialized lists the materialized cuboids and their cell counts. In
// ladder mode a cuboid's count sums its cells across the base, every
// delta generation, and the memtable (same-group cells in different
// generations count once each — the physical, not logical, cell count).
func (s *Store) Materialized() []MaterializedCuboid {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []MaterializedCuboid
	for _, pid := range s.matPoints() {
		n := s.matCells(pid)
		p := s.lat.FromID(pid)
		out = append(out, MaterializedCuboid{Point: p, Label: s.lat.Label(p), Cells: n})
	}
	return out
}

// matPoints returns the materialized cuboid set under a held read lock:
// the single file's directory, or the ladder's keep set (which every
// generation shares).
func (s *Store) matPoints() []uint32 {
	if s.dir == "" {
		return s.rdr.Points()
	}
	return s.keepSorted
}

// matCells returns cuboid pid's physical cell count across every
// generation, under a held read lock.
func (s *Store) matCells(pid uint32) int64 {
	n, _ := s.rdr.CuboidCells(pid)
	if s.dir == "" {
		return n
	}
	for _, d := range s.deltas {
		m, _ := d.CuboidCells(pid)
		n += m
	}
	return n + s.mem.CuboidCells(pid)
}

// MaterializedCuboid describes one cuboid held by the indexed store.
type MaterializedCuboid struct {
	Point lattice.Point `json:"-"`
	Label string        `json:"label"`
	Cells int64         `json:"cells"`
}

// Close releases the store's readers and, for ladder stores, the
// write-ahead log handle. The memtable's unflushed cells stay durable in
// the log; reopening with OpenDir recovers them.
func (s *Store) Close() error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	// Snapshot the handles under the data mutex — taking the write lock
	// drains in-flight queries — then close them outside it: file closes
	// can block, and nothing may block while s.mu is held.
	s.mu.Lock()
	rdr := s.rdr
	deltas := s.deltas
	walW := s.walW
	s.mu.Unlock()
	var err error
	if rdr != nil {
		err = rdr.Close()
	}
	for _, d := range deltas {
		if cerr := d.Close(); err == nil {
			err = cerr
		}
	}
	if walW != nil {
		if cerr := walW.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// RefreshDoc evaluates the query over a new XML document with the store's
// dictionaries, folds the matched facts into the materialized cuboids via
// cube.Maintain, rewrites the indexed file, and swaps it in atomically.
// Queries keep running against the old state until the swap; a failure or
// cancellation at any point — including a crash mid-write — leaves the old
// generation serving unchanged. Returns the number of facts added.
func (s *Store) RefreshDoc(ctx context.Context, doc *xmltree.Document) (int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.dir != "" {
		return s.refreshLadder(ctx, doc)
	}
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()

	s.mu.RLock()
	oldRdr, oldBase := s.rdr, s.base
	s.mu.RUnlock()

	// Work on cloned dictionaries: match evaluation interns new values,
	// and the live dictionaries must stay immutable under readers.
	dicts := make([]*match.Dict, len(oldBase.Dicts))
	for i, d := range oldBase.Dicts {
		nd := match.NewDict()
		for _, v := range d.Values() {
			nd.ID(v)
		}
		dicts[i] = nd
	}
	delta, err := match.EvaluateWith(doc, s.lat, dicts)
	if err != nil {
		return 0, err
	}

	// Load the materialized cuboids back into a Result and maintain it.
	res := cube.NewResult(s.lat, dicts)
	keep := make(map[uint32]bool)
	for _, pid := range oldRdr.Points() {
		keep[pid] = true
		cells := make(map[string]agg.State)
		err := oldRdr.EachCuboidCtx(ctx, pid, func(c cellfile.Cell) error {
			cells[string(packKey(nil, c.Key))] = c.State
			return nil
		})
		if err != nil {
			return 0, err
		}
		res.Cuboids[pid] = cells
		res.Cells += int64(len(cells))
	}
	added, err := cube.Maintain(res, delta)
	if err != nil {
		return 0, err
	}

	facts := make([]*match.Fact, 0, len(oldBase.Facts)+len(delta.Facts))
	facts = append(facts, oldBase.Facts...)
	facts = append(facts, delta.Facts...)
	newBase := &match.Set{Lattice: s.lat, Dicts: dicts, Facts: facts}

	props := s.props
	if s.measured {
		mp, err := cube.MeasureProps(s.lat, newBase)
		if err != nil {
			return 0, err
		}
		props = mp
	}

	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	newRdr, err := s.writeStore(res, keep)
	if err != nil {
		return 0, err
	}
	newRdr.Observe(s.reg)
	if s.cache != nil {
		newRdr.SetCache(s.cache)
	}

	s.mu.Lock()
	s.rdr = newRdr
	s.base = newBase
	s.dicts = dicts
	s.props = props
	s.mu.Unlock()
	s.bestEffort(oldRdr.Close())

	s.reg.Counter("serve.refresh.runs").Inc()
	s.reg.Counter("serve.refresh.added").Add(added)
	return added, nil
}

// packKey encodes a group key as big-endian bytes (byte order = value
// order), mirroring the cube package's cell-table keys so refreshed
// results agree with cube.Maintain's.
func packKey(dst []byte, vals []match.ValueID) []byte {
	for _, v := range vals {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(v))
		dst = append(dst, b[:]...)
	}
	return dst
}

// unpackKey decodes a key packed by packKey.
func unpackKey(b []byte) []match.ValueID {
	out := make([]match.ValueID, 0, len(b)/4)
	for i := 0; i+4 <= len(b); i += 4 {
		out = append(out, match.ValueID(binary.BigEndian.Uint32(b[i:])))
	}
	return out
}

// sortRows orders rows by key, value order.
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].Key, rows[j].Key
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for k := 0; k < n; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
