package serve

import (
	"fmt"
	"path/filepath"
	"testing"

	"x3/internal/cube"
	"x3/internal/dataset"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/obs"
)

// The differential serving sweep (the PR's acceptance suite): for every
// seed and dataset family, every cuboid of the lattice is answered
// through the planner of a view-limited store — so answers arrive over
// all three plans (direct reads, safe roll-ups from a materialized
// ancestor, and the unsafe-rollup fallback to base facts on
// property-violating data) — and each answer must be byte-equal to
// recomputing that cuboid from the base facts with the oracle.

// diffServeDataset is one workload family of the sweep.
type diffServeDataset struct {
	name  string
	views int
	build func(tb testing.TB, seed int64) (*lattice.Lattice, *match.Set)
}

func diffServeDatasets() []diffServeDataset {
	return []diffServeDataset{
		// Treebank with per-axis property violations: axis 0 rolls up
		// safely, axis 1 breaks coverage, axis 2 breaks disjointness —
		// the planner must mix safe roll-ups with base fallbacks.
		{name: "treebank", views: 3, build: func(tb testing.TB, seed int64) (*lattice.Lattice, *match.Set) {
			lat, set, _ := treebankWorkload(tb, seed, 60, mixedAxes())
			return lat, set
		}},
		// DBLP (§4.5): author is repeated and optional, month/year/journal
		// are clean — the paper's own safe/unsafe blend.
		{name: "dblp", views: 5, build: func(tb testing.TB, seed int64) (*lattice.Lattice, *match.Set) {
			cfg := dataset.DefaultDBLPConfig(50, seed)
			cfg.Journals = 6
			cfg.Authors = 25
			doc := dataset.DBLP(cfg)
			lat, err := lattice.New(dataset.DBLPQuery())
			if err != nil {
				tb.Fatal(err)
			}
			dicts := make([]*match.Dict, lat.NumAxes())
			for i := range dicts {
				dicts[i] = match.NewDict()
			}
			set, err := match.EvaluateWith(doc, lat, dicts)
			if err != nil {
				tb.Fatal(err)
			}
			return lat, set
		}},
	}
}

func TestDifferentialServing(t *testing.T) {
	const seeds = 10
	for _, ds := range diffServeDatasets() {
		t.Run(ds.name, func(t *testing.T) {
			plans := map[PlanKind]int{}
			for seed := int64(1); seed <= seeds; seed++ {
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					lat, set := ds.build(t, seed)
					reg := obs.New()
					s, err := Build(filepath.Join(t.TempDir(), "cube.x3cf"), lat, set,
						Options{Registry: reg, Views: ds.views, BlockCells: 16})
					if err != nil {
						t.Fatal(err)
					}
					defer s.Close()
					oracle, err := cube.RunOracle(lat, set, set.Dicts)
					if err != nil {
						t.Fatal(err)
					}
					for _, p := range lat.Points() {
						plans[assertCuboidMatchesOracle(t, s, oracle, p)]++
					}
					// The indexed store must not degenerate to full-file
					// scans: across a whole-lattice sweep of a
					// view-limited store the reads stay bounded.
					total := s.rdr.NumCells()
					if n := s.rdr.NumBlocks(); n > 1 {
						perQuery := reg.Counter("serve.scan.cells").Value() / int64(lat.Size())
						if perQuery >= total {
							t.Errorf("average query scanned %d of %d cells", perQuery, total)
						}
					}
				})
			}
			t.Logf("%s plan mix over %d seeds: %d direct, %d rollup, %d base",
				ds.name, seeds, plans[PlanDirect], plans[PlanRollup], plans[PlanBase])
			// The sweep is only meaningful if it exercised every path.
			if plans[PlanDirect] == 0 || plans[PlanRollup] == 0 || plans[PlanBase] == 0 {
				t.Errorf("plan mix degenerate: %v — the sweep no longer covers all three serving paths", plans)
			}
		})
	}
}
