package dataset

import (
	"fmt"
	"math/rand"

	"x3/internal/pattern"
	"x3/internal/xmltree"
)

// DBLPConfig configures the DBLP-like corpus of §4.5.
type DBLPConfig struct {
	Seed     int64
	Articles int
	// Journals is the journal pool size; Authors the author pool size.
	Journals int
	Authors  int
	// MaxAuthors bounds the authors per article; PNoAuthor is the chance
	// of an authorless article (author is "possibly missing").
	MaxAuthors int
	PNoAuthor  float64
	// PNoMonth is the chance the optional month is absent.
	PNoMonth float64
	// YearFrom/YearTo bound the mandatory year.
	YearFrom, YearTo int
}

// DefaultDBLPConfig mirrors the paper's experiment scale knobs (220k
// articles at full scale; pass a smaller Articles for scaled-down runs).
func DefaultDBLPConfig(articles int, seed int64) DBLPConfig {
	return DBLPConfig{
		Seed:       seed,
		Articles:   articles,
		Journals:   50,
		Authors:    2000,
		MaxAuthors: 5,
		PNoAuthor:  0.05,
		PNoMonth:   0.30,
		YearFrom:   1990,
		YearTo:     2005,
	}
}

var months = []string{"jan", "feb", "mar", "apr", "may", "jun",
	"jul", "aug", "sep", "oct", "nov", "dec"}

// DBLP generates the corpus: <dblp> with Articles <article> records.
func DBLP(cfg DBLPConfig) *xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b xmltree.Builder
	b.Open("dblp")
	for i := 0; i < cfg.Articles; i++ {
		b.Open("article")
		b.Attr("key", fmt.Sprintf("journals/j%d/a%d", rng.Intn(cfg.Journals), i))
		if rng.Float64() >= cfg.PNoAuthor {
			n := 1 + rng.Intn(cfg.MaxAuthors)
			for k := 0; k < n; k++ {
				b.Open("author")
				b.Text(fmt.Sprintf("Author %d", rng.Intn(cfg.Authors)))
				b.Close()
			}
		}
		b.Open("title")
		b.Text(fmt.Sprintf("On the Theory of Topic %d", i))
		b.Close()
		b.Open("journal")
		b.Text(fmt.Sprintf("Journal %d", rng.Intn(cfg.Journals)))
		b.Close()
		b.Open("year")
		b.Text(fmt.Sprintf("%d", cfg.YearFrom+rng.Intn(cfg.YearTo-cfg.YearFrom+1)))
		b.Close()
		if rng.Float64() >= cfg.PNoMonth {
			b.Open("month")
			b.Text(months[rng.Intn(len(months))])
			b.Close()
		}
		b.Close()
	}
	b.Close()
	return b.MustDone()
}

// DBLPQuery is the §4.5 experiment query: cube articles by /author,
// /month, /year and /journal (COUNT, LND on every axis).
func DBLPQuery() *pattern.CubeQuery {
	return &pattern.CubeQuery{
		Doc:        "dblp.xml",
		FactVar:    "$a",
		FactPath:   pattern.MustParsePath("//article"),
		FactIDPath: pattern.MustParsePath("/@key"),
		Agg:        pattern.Count,
		Axes: []pattern.AxisSpec{
			{Var: "$au", Path: pattern.MustParsePath("/author"), Relax: pattern.RelaxSet(0).With(pattern.LND)},
			{Var: "$m", Path: pattern.MustParsePath("/month"), Relax: pattern.RelaxSet(0).With(pattern.LND)},
			{Var: "$y", Path: pattern.MustParsePath("/year"), Relax: pattern.RelaxSet(0).With(pattern.LND)},
			{Var: "$j", Path: pattern.MustParsePath("/journal"), Relax: pattern.RelaxSet(0).With(pattern.LND)},
		},
	}
}

// DBLPDTD is the DTD fragment of §4.5, consumed by schema.Infer for the
// customized algorithms.
const DBLPDTD = `
<!ELEMENT dblp (article*)>
<!ELEMENT article (author*, title, journal, year, month?)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT journal (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT month (#PCDATA)>
<!ATTLIST article key CDATA #REQUIRED>
`
