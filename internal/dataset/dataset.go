// Package dataset generates the synthetic workloads that stand in for the
// paper's two corpora (§4):
//
//   - Treebank: the original is a licensed, encrypted Wall Street Journal
//     parse-tree corpus (UW repository). The generator emits deep,
//     recursive, heterogeneous marked-up trees with the knobs the paper
//     tunes per experiment — per-axis coverage (probability an element is
//     missing), disjointness (probability it repeats), nesting (which
//     makes rigid paths miss and PC-AD recover), and value cardinality
//     (dense vs sparse cubes).
//
//   - DBLP: regular, shallow article records matching the DTD fragment of
//     §4.5 (author repeated and optional, month optional, year and journal
//     mandatory and unique).
//
// Generation is deterministic per seed, so experiments reproduce exactly.
package dataset

import (
	"fmt"
	"math/rand"

	"x3/internal/pattern"
	"x3/internal/xmltree"
)

// AxisConfig controls one grouping axis of the Treebank-like generator and
// the corresponding axis of the generated query.
type AxisConfig struct {
	// Tag is the marked-up element name (e.g. "w0").
	Tag string
	// Cardinality is the number of distinct text values; small values
	// yield dense cubes, large ones sparse cubes.
	Cardinality int
	// PMissing is the probability the fact has no such element at all —
	// a total-coverage violation.
	PMissing float64
	// PRepeat is the probability of each additional occurrence (with an
	// independently drawn value) — a disjointness violation.
	PRepeat float64
	// PNest is the probability the element hides under a <ph> wrapper, so
	// the rigid child path misses it and only PC-AD recovers it.
	PNest float64
	// Relax is the relaxation set the generated query grants this axis.
	Relax pattern.RelaxSet
}

// TreebankConfig configures the Treebank-like corpus.
type TreebankConfig struct {
	Seed  int64
	Facts int
	Axes  []AxisConfig
	// Noise adds that many filler elements (with text) per fact, wrapped
	// at random depth, mimicking Treebank's heterogeneous deep structure.
	Noise int
}

// Treebank generates the corpus. Facts are <s> elements (sentences) under
// nested section wrappers; each axis element carries its value as text.
func Treebank(cfg TreebankConfig) *xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b xmltree.Builder
	b.Open("corpus")
	// Nested file/section wrappers give the corpus Treebank-like depth.
	secLeft := 0
	depth := 0
	for i := 0; i < cfg.Facts; i++ {
		if secLeft == 0 {
			for depth > 0 {
				b.Close()
				depth--
			}
			depth = 1 + rng.Intn(3)
			for d := 0; d < depth; d++ {
				b.Open("section")
			}
			secLeft = 20 + rng.Intn(80)
		}
		secLeft--
		b.Open("s")
		b.Attr("id", fmt.Sprintf("s%d", i))
		for _, ax := range cfg.Axes {
			writeAxis(&b, rng, ax)
		}
		for n := 0; n < cfg.Noise; n++ {
			writeNoise(&b, rng, n)
		}
		b.Close()
	}
	for depth > 0 {
		b.Close()
		depth--
	}
	b.Close()
	return b.MustDone()
}

// writeAxis emits the occurrences of one axis element for one fact.
func writeAxis(b *xmltree.Builder, rng *rand.Rand, ax AxisConfig) {
	if rng.Float64() < ax.PMissing {
		return
	}
	emit := func() {
		nested := rng.Float64() < ax.PNest
		if nested {
			b.Open("ph")
		}
		b.Open(ax.Tag)
		b.Text(fmt.Sprintf("v%d", rng.Intn(ax.Cardinality)))
		b.Close()
		if nested {
			b.Close()
		}
	}
	emit()
	for rng.Float64() < ax.PRepeat {
		emit()
	}
}

// writeNoise emits a filler marked-up element.
func writeNoise(b *xmltree.Builder, rng *rand.Rand, n int) {
	deep := rng.Intn(3)
	for d := 0; d < deep; d++ {
		b.Open("np")
	}
	b.Open(fmt.Sprintf("nz%d", n%4))
	b.Text(fmt.Sprintf("t%d", rng.Intn(1000)))
	b.Close()
	for d := 0; d < deep; d++ {
		b.Close()
	}
}

// TreebankQuery builds the X³ query the Treebank experiments run: cube <s>
// facts by the configured axes, each granted its configured relaxations.
func TreebankQuery(axes []AxisConfig) *pattern.CubeQuery {
	q := &pattern.CubeQuery{
		Doc:        "treebank.xml",
		FactVar:    "$s",
		FactPath:   pattern.MustParsePath("//s"),
		FactIDPath: pattern.MustParsePath("/@id"),
		Agg:        pattern.Count,
	}
	for i, ax := range axes {
		q.Axes = append(q.Axes, pattern.AxisSpec{
			Var:   fmt.Sprintf("$v%d", i),
			Path:  pattern.Path{{Axis: pattern.Child, Tag: ax.Tag}},
			Relax: ax.Relax,
		})
	}
	return q
}

// TreebankDTD returns a DTD describing the generated corpus, for §3.7
// inference experiments. Axis occurrence declarations reflect the config:
// an axis with PMissing or PNest > 0 is optional, with PRepeat > 0
// repeatable.
func TreebankDTD(cfg TreebankConfig) string {
	model := ""
	decls := ""
	for _, ax := range cfg.Axes {
		occ := ""
		switch {
		case ax.PRepeat > 0:
			occ = "*"
		case ax.PMissing > 0 || ax.PNest > 0:
			occ = "?"
		}
		if model != "" {
			model += ", "
		}
		// Nesting makes the element reachable via ph as well.
		model += ax.Tag + occ
		decls += fmt.Sprintf("<!ELEMENT %s (#PCDATA)>\n", ax.Tag)
	}
	anyNest := false
	for _, ax := range cfg.Axes {
		if ax.PNest > 0 {
			anyNest = true
		}
	}
	sModel := "(" + model
	if anyNest {
		sModel += ", ph*"
	}
	if cfg.Noise > 0 {
		sModel += ", np*, nz0*, nz1*, nz2*, nz3*"
	}
	sModel += ")"
	dtd := "<!ELEMENT corpus (section*)>\n" +
		"<!ELEMENT section (section*, s*)>\n" +
		"<!ELEMENT s " + sModel + ">\n" +
		"<!ATTLIST s id ID #REQUIRED>\n" + decls
	if anyNest {
		inner := ""
		for _, ax := range cfg.Axes {
			if inner != "" {
				inner += " | "
			}
			inner += ax.Tag
		}
		dtd += "<!ELEMENT ph (" + inner + ")*>\n"
	}
	if cfg.Noise > 0 {
		dtd += "<!ELEMENT np (np*, nz0*, nz1*, nz2*, nz3*)>\n" +
			"<!ELEMENT nz0 (#PCDATA)>\n<!ELEMENT nz1 (#PCDATA)>\n" +
			"<!ELEMENT nz2 (#PCDATA)>\n<!ELEMENT nz3 (#PCDATA)>\n"
	}
	return dtd
}
