package dataset

import (
	"testing"

	"x3/internal/cube"
	"x3/internal/lattice"
	"x3/internal/match"
	"x3/internal/pattern"
	"x3/internal/schema"
)

func rsLND() pattern.RelaxSet { return pattern.RelaxSet(0).With(pattern.LND) }

func cleanAxes(n int) []AxisConfig {
	var out []AxisConfig
	for i := 0; i < n; i++ {
		out = append(out, AxisConfig{
			Tag:         tagName(i),
			Cardinality: 10,
			Relax:       rsLND(),
		})
	}
	return out
}

func tagName(i int) string { return "w" + string(rune('0'+i)) }

func evaluate(t *testing.T, cfg TreebankConfig) (*lattice.Lattice, *match.Set) {
	t.Helper()
	doc := Treebank(cfg)
	if err := doc.Validate(); err != nil {
		t.Fatalf("generated doc invalid: %v", err)
	}
	q := TreebankQuery(cfg.Axes)
	lat, err := lattice.New(q)
	if err != nil {
		t.Fatal(err)
	}
	set, err := match.Evaluate(doc, lat)
	if err != nil {
		t.Fatal(err)
	}
	return lat, set
}

func TestTreebankDeterministic(t *testing.T) {
	cfg := TreebankConfig{Seed: 42, Facts: 50, Axes: cleanAxes(3), Noise: 2}
	a := Treebank(cfg)
	b := Treebank(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Nodes {
		if a.Nodes[i].Tag != b.Nodes[i].Tag || a.Nodes[i].Value != b.Nodes[i].Value {
			t.Fatalf("node %d differs", i)
		}
	}
	c := Treebank(TreebankConfig{Seed: 43, Facts: 50, Axes: cleanAxes(3), Noise: 2})
	same := a.Len() == c.Len()
	if same {
		diff := false
		for i := range a.Nodes {
			if a.Nodes[i].Value != c.Nodes[i].Value {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestTreebankFactCount(t *testing.T) {
	cfg := TreebankConfig{Seed: 1, Facts: 123, Axes: cleanAxes(2)}
	lat, set := evaluate(t, cfg)
	if set.NumFacts() != 123 {
		t.Fatalf("facts = %d, want 123", set.NumFacts())
	}
	_ = lat
}

func TestTreebankCleanDataIsSummarizable(t *testing.T) {
	cfg := TreebankConfig{Seed: 2, Facts: 200, Axes: cleanAxes(3)}
	lat, set := evaluate(t, cfg)
	props, err := cube.MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	if !props.GloballyDisjoint() || !props.GloballyCovered() {
		t.Error("clean config produced non-summarizable data")
	}
}

func TestTreebankViolationsAppear(t *testing.T) {
	axes := cleanAxes(2)
	axes[0].PMissing = 0.4
	axes[1].PRepeat = 0.5
	cfg := TreebankConfig{Seed: 3, Facts: 300, Axes: axes}
	lat, set := evaluate(t, cfg)
	props, err := cube.MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	if props.Covered(0, 0) {
		t.Error("axis 0 with PMissing=0.4 measured covered")
	}
	if props.Disjoint(1, 0) {
		t.Error("axis 1 with PRepeat=0.5 measured disjoint")
	}
}

func TestTreebankNestingNeedsPCAD(t *testing.T) {
	axes := []AxisConfig{{
		Tag: "w0", Cardinality: 5, PNest: 0.5,
		Relax: rsLND().With(pattern.PCAD),
	}}
	cfg := TreebankConfig{Seed: 4, Facts: 300, Axes: axes}
	lat, set := evaluate(t, cfg)
	// Rigid state misses nested occurrences, PC-AD recovers them.
	var rigidMissing, pcadMissing int
	for _, f := range set.Facts {
		if len(f.Values(0, 0)) == 0 {
			rigidMissing++
		}
		if len(f.Values(0, 1)) == 0 {
			pcadMissing++
		}
	}
	if rigidMissing == 0 {
		t.Error("PNest=0.5 but no fact misses the rigid path")
	}
	if pcadMissing != 0 {
		t.Errorf("PC-AD state still missing for %d facts", pcadMissing)
	}
	_ = lat
}

func TestTreebankDTDMatchesGenerator(t *testing.T) {
	axes := cleanAxes(2)
	axes[0].PMissing = 0.2
	axes[1].PRepeat = 0.2
	cfg := TreebankConfig{Seed: 5, Facts: 100, Axes: axes, Noise: 2}
	d, err := schema.Parse(TreebankDTD(cfg))
	if err != nil {
		t.Fatalf("generated DTD does not parse: %v\n%s", err, TreebankDTD(cfg))
	}
	lat, set := evaluate(t, cfg)
	inferred, err := schema.Infer(d, lat)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := cube.MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	// Inference must never claim a property the data violates.
	for a := 0; a < lat.NumAxes(); a++ {
		if inferred.Covered(a, 0) && !measured.Covered(a, 0) {
			t.Errorf("axis %d: DTD claims covered, data violates", a)
		}
		if inferred.Disjoint(a, 0) && !measured.Disjoint(a, 0) {
			t.Errorf("axis %d: DTD claims disjoint, data violates", a)
		}
	}
}

func TestDBLPGenerator(t *testing.T) {
	cfg := DefaultDBLPConfig(500, 7)
	doc := DBLP(cfg)
	if err := doc.Validate(); err != nil {
		t.Fatal(err)
	}
	arts := doc.ByTag("article")
	if len(arts) != 500 {
		t.Fatalf("articles = %d", len(arts))
	}
	// Year and journal mandatory.
	if got := len(doc.ByTag("year")); got != 500 {
		t.Errorf("years = %d", got)
	}
	if got := len(doc.ByTag("journal")); got != 500 {
		t.Errorf("journals = %d", got)
	}
	// Months missing sometimes, authors repeated sometimes.
	if got := len(doc.ByTag("month")); got >= 500 || got == 0 {
		t.Errorf("months = %d, want in (0,500)", got)
	}
	if got := len(doc.ByTag("author")); got <= 500 {
		t.Errorf("authors = %d, want repetitions beyond 500", got)
	}
}

func TestDBLPPropsMatchPaper(t *testing.T) {
	cfg := DefaultDBLPConfig(800, 11)
	doc := DBLP(cfg)
	q := DBLPQuery()
	lat, err := lattice.New(q)
	if err != nil {
		t.Fatal(err)
	}
	set, err := match.Evaluate(doc, lat)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := cube.MeasureProps(lat, set)
	if err != nil {
		t.Fatal(err)
	}
	// author: repeated and missing; month: missing, unique; year/journal:
	// mandatory and unique.
	if measured.Disjoint(0, 0) || measured.Covered(0, 0) {
		t.Error("author axis should violate both properties")
	}
	if !measured.Disjoint(1, 0) || measured.Covered(1, 0) {
		t.Error("month axis should be disjoint but not covered")
	}
	for _, a := range []int{2, 3} {
		if !measured.Disjoint(a, 0) || !measured.Covered(a, 0) {
			t.Errorf("axis %d should satisfy both properties", a)
		}
	}
	// The DTD-inferred properties agree with the measured ones.
	d, err := schema.Parse(DBLPDTD)
	if err != nil {
		t.Fatal(err)
	}
	inferred, err := schema.Infer(d, lat)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		if inferred.Covered(a, 0) != measured.Covered(a, 0) {
			t.Errorf("axis %d: inferred covered %t, measured %t", a, inferred.Covered(a, 0), measured.Covered(a, 0))
		}
		if inferred.Disjoint(a, 0) != measured.Disjoint(a, 0) {
			t.Errorf("axis %d: inferred disjoint %t, measured %t", a, inferred.Disjoint(a, 0), measured.Disjoint(a, 0))
		}
	}
}

func TestDBLPDeterministic(t *testing.T) {
	a := DBLP(DefaultDBLPConfig(100, 3))
	b := DBLP(DefaultDBLPConfig(100, 3))
	if a.Len() != b.Len() {
		t.Fatal("same seed, different DBLP sizes")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Value != b.Nodes[i].Value {
			t.Fatal("same seed, different DBLP content")
		}
	}
}
