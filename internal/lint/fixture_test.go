package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE matches expectation markers inside fixture sources:
//
//	// want analyzer "message substring"
//
// The marker sits on the line the diagnostic must land on.
var wantRE = regexp.MustCompile(`// want (\w+) "([^"]*)"`)

type want struct {
	file     string
	line     int
	analyzer string
	sub      string
}

// scanWants collects every want marker under the fixture dir.
func scanWants(t *testing.T, dir string) []want {
	t.Helper()
	var wants []want
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		abs, aerr := filepath.Abs(path)
		if aerr != nil {
			return aerr
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				wants = append(wants, want{file: abs, line: i + 1, analyzer: m[1], sub: m[2]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// fixtureFile resolves a fixture-relative path to the absolute form the
// loader reports in diagnostics.
func fixtureFile(t *testing.T, fixture, rel string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", fixture, rel))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// checkFixture loads testdata/<name>, runs the analyzers through Run (so
// suppression and ordering apply, exactly as the driver does), and asserts
// the surviving diagnostics are precisely the fixture's want markers plus
// extra — no missing, no unexpected.
func checkFixture(t *testing.T, name string, analyzers []*Analyzer, extra ...want) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	prog, err := Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	diags := Run(prog, analyzers)
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename || (a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
	wants := append(scanWants(t, dir), extra...)
	used := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if used[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line || w.analyzer != d.Analyzer {
				continue
			}
			if !strings.Contains(d.Message, w.sub) {
				continue
			}
			used[i] = true
			continue outer
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !used[i] {
			t.Errorf("missing diagnostic: %s:%d: %s: ...%s...", w.file, w.line, w.analyzer, w.sub)
		}
	}
}

func TestCtxflowFixture(t *testing.T) {
	checkFixture(t, "ctxflow", []*Analyzer{Ctxflow()})
}

func TestSentinelerrFixture(t *testing.T) {
	checkFixture(t, "sentinelerr", []*Analyzer{Sentinelerr()})
}

func TestObskeyFixture(t *testing.T) {
	checkFixture(t, "obskey", []*Analyzer{Obskey()})
}

func TestDetiterFixture(t *testing.T) {
	checkFixture(t, "detiter", []*Analyzer{Detiter()})
}

func TestFaultsiteFixture(t *testing.T) {
	checkFixture(t, "faultsite", []*Analyzer{Faultsite()})
}

func TestGoleakFixture(t *testing.T) {
	checkFixture(t, "goleak", []*Analyzer{Goleak()})
}

func TestLockholdFixture(t *testing.T) {
	checkFixture(t, "lockhold", []*Analyzer{Lockhold()})
}

func TestAtomicfieldFixture(t *testing.T) {
	checkFixture(t, "atomicfield", []*Analyzer{Atomicfield()})
}

func TestErrdropFixture(t *testing.T) {
	checkFixture(t, "errdrop", []*Analyzer{Errdrop()})
}

func TestHonestpathFixture(t *testing.T) {
	checkFixture(t, "honestpath", []*Analyzer{Honestpath()})
}

// TestNolintFixture drives the suppression machinery end to end: both
// placements consume their diagnostic; a reason-less, an analyzer-less and
// a stale suppression are themselves violations.
func TestNolintFixture(t *testing.T) {
	bad := func(line int, sub string) want {
		return want{file: fixtureFile(t, "nolint", "bad/bad.go"), line: line, analyzer: "nolint", sub: sub}
	}
	checkFixture(t, "nolint", []*Analyzer{Sentinelerr()},
		bad(6, "without a reason"),
		bad(9, "names no analyzer"),
		bad(12, "matches no diagnostic"),
	)
}

// TestNolintInactiveAnalyzer re-runs the nolint fixture with an analyzer
// subset that leaves sentinelerr inactive: its suppressions go unused but
// must NOT be reported stale, while malformed ones still are.
func TestNolintInactiveAnalyzer(t *testing.T) {
	bad := func(line int, sub string) want {
		return want{file: fixtureFile(t, "nolint", "bad/bad.go"), line: line, analyzer: "nolint", sub: sub}
	}
	checkFixture(t, "nolint", []*Analyzer{Obskey()},
		bad(6, "without a reason"),
		bad(9, "names no analyzer"),
	)
}
