package lint

import (
	"runtime"
	"strings"
	"testing"
)

// TestLoadBuildConstraints drives the constraint filter through a real
// load: testdata/loadedges/p declares gated() three times — once behind
// a satisfied //go:build go1.1, once behind a never-satisfied tag, and
// once behind the legacy // +build form. If either excluded file were
// loaded the package would fail to type-check with a redeclaration, and
// the nested testdata module inside p/ is not even Go.
func TestLoadBuildConstraints(t *testing.T) {
	prog, err := Load("testdata/loadedges")
	if err != nil {
		t.Fatalf("Load(testdata/loadedges): %v", err)
	}
	pkg := prog.ByPath["loadedges/p"]
	if pkg == nil {
		t.Fatal("package loadedges/p not loaded")
	}
	if got := len(pkg.Files); got != 2 {
		t.Fatalf("loadedges/p loaded %d files, want 2 (p.go + gated.go)", got)
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("loaded %d packages, want 1 (nested testdata must be skipped)", len(prog.Packages))
	}
}

// TestLoadSyntaxErrorFixture keeps a broken-parse module on disk so the
// failure mode is pinned, not just synthesized in a temp dir.
func TestLoadSyntaxErrorFixture(t *testing.T) {
	_, err := Load("testdata/loadsyntax")
	if err == nil {
		t.Fatal("Load(testdata/loadsyntax): want parse error")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Fatalf("error %q does not name the broken file", err)
	}
}

func TestFileIncluded(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"plain.go", "package p\n", true},
		{"gated.go", "//go:build neverbuildme\n\npackage p\n", false},
		{"release.go", "//go:build go1.1\n\npackage p\n", true},
		{"negated.go", "//go:build !neverbuildme\n\npackage p\n", true},
		{"host.go", "//go:build " + runtime.GOOS + "\n\npackage p\n", true},
		{"othros.go", "//go:build " + otherOS() + "\n\npackage p\n", false},
		{"legacy.go", "// +build neverbuildme\n\npackage p\n", false},
		// A constraint after the package clause is a plain comment.
		{"late.go", "package p\n\n//go:build neverbuildme\n", true},
		// Malformed constraints defer to the parser for the real error.
		{"broken.go", "//go:build &&\n\npackage p\n", true},
		// The filename rule composes with the content rule.
		{"x_" + otherOS() + ".go", "package p\n", false},
	}
	for _, c := range cases {
		if got := fileIncluded(c.name, []byte(c.src)); got != c.want {
			t.Errorf("fileIncluded(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFilenameMatchesPlatform(t *testing.T) {
	hostOS, hostArch := runtime.GOOS, runtime.GOARCH
	cases := []struct {
		name string
		want bool
	}{
		{"plain.go", true},
		// No underscore: a bare OS name is unconstrained post-Go 1.4.
		{"linux.go", true},
		{"x_" + hostOS + ".go", true},
		{"x_" + hostArch + ".go", true},
		{"x_" + hostOS + "_" + hostArch + ".go", true},
		{"x_" + otherOS() + ".go", false},
		{"x_" + otherOS() + "_" + hostArch + ".go", false},
		// An unknown suffix is not a platform constraint at all.
		{"x_helper.go", true},
	}
	for _, c := range cases {
		if got := filenameMatchesPlatform(c.name); got != c.want {
			t.Errorf("filenameMatchesPlatform(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// otherOS returns a GOOS that is never the host's, so exclusion cases
// stay deterministic on any platform.
func otherOS() string {
	if runtime.GOOS == "plan9" {
		return "windows"
	}
	return "plan9"
}

// TestRunDetailed exercises the parallel driver: per-analyzer wall
// times, suppressed diagnostics reported separately, and the same
// surviving set Run returns.
func TestRunDetailed(t *testing.T) {
	prog, err := Load("testdata/errdrop")
	if err != nil {
		t.Fatal(err)
	}
	res := RunDetailed(prog, []*Analyzer{Errdrop(), Honestpath()})
	if len(res.Timings) != 2 || res.Timings[0].Analyzer != "errdrop" || res.Timings[1].Analyzer != "honestpath" {
		t.Fatalf("Timings = %+v, want errdrop then honestpath", res.Timings)
	}
	for _, tm := range res.Timings {
		if tm.Elapsed < 0 {
			t.Errorf("%s: negative elapsed %v", tm.Analyzer, tm.Elapsed)
		}
	}
	if len(res.Suppressed) != 1 || res.Suppressed[0].Analyzer != "errdrop" {
		t.Fatalf("Suppressed = %+v, want the one waived errdrop finding", res.Suppressed)
	}
	if !strings.Contains(res.Suppressed[0].Message, "work") {
		t.Errorf("suppressed message %q does not name the discarded call", res.Suppressed[0].Message)
	}
	// The fixture has 5 surviving errdrop findings (see its want markers).
	if got := len(res.Diagnostics); got != 5 {
		t.Fatalf("Diagnostics = %d, want 5", got)
	}
	plain := Run(prog, []*Analyzer{Errdrop(), Honestpath()})
	if len(plain) != len(res.Diagnostics) {
		t.Fatalf("Run returned %d diagnostics, RunDetailed %d; they must agree", len(plain), len(res.Diagnostics))
	}
}
