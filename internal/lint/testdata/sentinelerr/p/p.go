// Package p exercises sentinelerr: identity comparison of errors,
// switch-on-error, and fmt.Errorf flattening an error cause.
package p

import (
	"errors"
	"fmt"
	"io"
)

// ErrBroken is the fixture sentinel.
var ErrBroken = errors.New("broken")

// Classify compares error identity — both comparisons flagged.
func Classify(err error) string {
	if err == ErrBroken { // want sentinelerr "use errors.Is"
		return "broken"
	}
	if err != io.EOF { // want sentinelerr "use errors.Is"
		return "other"
	}
	return "eof"
}

// ClassifyOK uses errors.Is, and err != nil is the idiom, not a bug.
func ClassifyOK(err error) bool {
	return err != nil && errors.Is(err, ErrBroken)
}

// Switch compares with == through a switch tag — flagged.
func Switch(err error) string {
	switch err { // want sentinelerr "switch on an error value"
	case ErrBroken:
		return "broken"
	}
	return ""
}

// SwitchOK has no tag; errors.Is in the cases is the rewrite.
func SwitchOK(err error) string {
	switch {
	case errors.Is(err, ErrBroken):
		return "broken"
	}
	return ""
}

// Wrap flattens the cause with %v — flagged; %d on the int is fine.
func Wrap(err error, n int) error {
	return fmt.Errorf("op %d: %v", n, err) // want sentinelerr "use %w"
}

// WrapQ flattens with %q after a *-consumed width — flagged.
func WrapQ(err error, w int) error {
	return fmt.Errorf("pad %*d cause %q", w, 0, err) // want sentinelerr "use %w"
}

// WrapOK wraps with %w so errors.Is still sees the cause.
func WrapOK(err error) error {
	return fmt.Errorf("op: %w", err)
}

// Identity deliberately compares identity; suppressed with a reason.
func Identity(err error) bool {
	return err == ErrBroken //x3:nolint(sentinelerr) fixture: the sentinel is never wrapped on this path
}
