module sefix

go 1.24
