// Package store exercises the lockhold analyzer: nothing blocks while a
// write lock is held, and every path out releases it.
package store

import (
	"os"
	"sync"
	"time"
)

// S is the guarded state.
type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
	ch chan int
}

// Src is a module interface seam with a file-backed implementation.
type Src interface {
	Each() error
}

type fileSrc struct{}

func (fileSrc) Each() error {
	f, err := os.Open("f")
	if err != nil {
		return err
	}
	return f.Close()
}

func touch(p string) {
	os.Remove(p)
}

// SleepUnderLock blocks directly while holding mu.
func (s *S) SleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want lockhold "time.Sleep while s.mu is held"
	s.mu.Unlock()
}

// ReturnHoldingLock leaks the lock on the early-return path.
func (s *S) ReturnHoldingLock(b bool) int {
	s.mu.Lock()
	if b {
		return s.n // want lockhold "still held at this return"
	}
	s.mu.Unlock()
	return 0
}

// FallThrough never unlocks at all.
func (s *S) FallThrough() { // nothing releases mu below
	s.mu.Lock() // want lockhold "not released on the fall-through path"
	s.n++
}

// SendUnderLock performs a channel send while holding mu.
func (s *S) SendUnderLock() {
	s.mu.Lock()
	s.ch <- s.n // want lockhold "channel send while s.mu is held"
	s.mu.Unlock()
}

// SelectUnderLock waits on channels while holding mu.
func (s *S) SelectUnderLock() {
	s.mu.Lock()
	select { // want lockhold "blocking select while s.mu is held"
	case v := <-s.ch:
		s.n = v
	}
	s.mu.Unlock()
}

// InterprocBlock calls a helper whose interprocedural summary blocks.
func (s *S) InterprocBlock() {
	s.mu.Lock()
	touch("x") // want lockhold "call to touch"
	s.mu.Unlock()
}

// IfaceBlock dispatches through the seam: it blocks if any
// implementation does.
func (s *S) IfaceBlock(src Src) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return src.Each() // want lockhold "call to Src.Each"
}

// DeferUnlock licenses every return.
func (s *S) DeferUnlock(b bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b {
		return 1
	}
	return s.n
}

// PureCompute holds the lock over arithmetic only.
func (s *S) PureCompute() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// ReadLock may block under RLock: concurrent readers admit I/O by
// design, so only the write half is judged.
func (s *S) ReadLock() {
	s.rw.RLock()
	touch("y")
	s.rw.RUnlock()
}

// SpawnedScope: the goroutine body runs with its own lock state, so its
// blocking send is not charged to the spawner's hold region.
func (s *S) SpawnedScope(done chan struct{}) {
	s.mu.Lock()
	go func() {
		touch("z")
		done <- struct{}{}
	}()
	s.mu.Unlock()
}

// NonBlockingProbe is fine: the select has a default.
func (s *S) NonBlockingProbe() {
	s.mu.Lock()
	select {
	case v := <-s.ch:
		s.n = v
	default:
	}
	s.mu.Unlock()
}

// InfiniteLoop mirrors the worker-pool shape: the for never falls
// through and every exit path unlocks before returning.
func (s *S) InfiniteLoop() {
	s.mu.Lock()
	for {
		if s.n > 10 {
			s.mu.Unlock()
			return
		}
		s.n++
	}
}

// Suppressed blocks under the lock with a justified waiver.
func (s *S) Suppressed() {
	s.mu.Lock()
	//x3:nolint(lockhold) fixture: deliberate blocking hold for the suppression test
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}
