module lockholdfix

go 1.24
