// Package obs mirrors the real registry's metric-minting API so the
// path-scoped obskey analyzer binds to it.
package obs

import "time"

// Registry mints metrics by key.
type Registry struct{}

// Metric is a stand-in for every metric kind's handle.
type Metric struct{}

// Inc bumps the metric.
func (m *Metric) Inc() {}

// Add folds n into the metric.
func (m *Metric) Add(n int64) {}

// Observe records one duration.
func (m *Metric) Observe(d time.Duration) {}

// Counter mints a counter under name.
func (r *Registry) Counter(name string) *Metric { return &Metric{} }

// Gauge mints a gauge under name.
func (r *Registry) Gauge(name string) *Metric { return &Metric{} }

// Timer mints a timer under name.
func (r *Registry) Timer(name string) *Metric { return &Metric{} }

// Histogram mints a histogram under name.
func (r *Registry) Histogram(name string) *Metric { return &Metric{} }

// Span opens a span under name; the returned func closes it.
func (r *Registry) Span(name string) func() { return func() {} }

// HDR mints a high-dynamic-range latency histogram under name.
func (r *Registry) HDR(name string) *Metric { return &Metric{} }
