// Package user exercises obskey against the fixture registry.
package user

import (
	"fmt"

	"obsfix/internal/obs"
)

// Record registers metrics across the legal and illegal key shapes.
func Record(reg *obs.Registry, site string, shard int) {
	reg.Counter("user.events").Inc()                       // literal dotted key: clean
	reg.Counter("events").Inc()                            // want obskey "at least two dotted segments"
	reg.Counter("User.Events").Inc()                       // want obskey "at least two dotted segments"
	reg.Counter("user.fault." + site).Inc()                // dynamic family with dotted prefix: clean
	reg.Counter(site).Inc()                                // want obskey "no literal dotted prefix"
	reg.Counter("user" + site).Inc()                       // want obskey "not a dotted namespace"
	reg.Counter(fmt.Sprintf("user.shard.%d", shard)).Inc() // Sprintf family with dotted prefix: clean
	reg.Counter(fmt.Sprintf("shard%d", shard)).Inc()       // want obskey "not a dotted namespace"
	reg.Gauge("user.depth").Add(1)                         // clean
	done := reg.Span("user.op")                            // clean
	done()

	reg.HDR("user.latency").Observe(0) // clean
	reg.HDR("latency").Observe(0)      // want obskey "at least two dotted segments"

	// The same key under two kinds resolves two silent metrics.
	reg.Timer("user.mixed").Observe(0) // want obskey "multiple kinds"
	reg.Counter("user.mixed").Inc()    // want obskey "multiple kinds"
	reg.HDR("user.mixed").Observe(0)   // want obskey "multiple kinds"

	//x3:nolint(obskey) fixture: legacy single-segment key predates the namespace rule
	reg.Counter("legacy").Inc()
}
