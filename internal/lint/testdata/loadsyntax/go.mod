module loadsyntax

go 1.24
