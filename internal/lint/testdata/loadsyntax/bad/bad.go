package bad

func {
