module nolintfix

go 1.24
