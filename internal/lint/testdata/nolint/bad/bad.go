// Package bad holds the malformed and stale suppressions the nolint
// machinery must reject. Expectations live in the test, not in want
// markers: a second comment cannot share these lines.
package bad

//x3:nolint(sentinelerr)
func NoReason() {}

//x3:nolint() dropped the analyzer name
func NoAnalyzer() {}

//x3:nolint(sentinelerr) stale: nothing on this line or the next violates
func Unused() {}
