// Package p exercises the two placements of a well-formed suppression:
// end of the flagged line, and the line directly above it.
package p

import "errors"

// ErrX is the fixture sentinel.
var ErrX = errors.New("x")

// IsX suppresses on the flagged line itself.
func IsX(err error) bool {
	return err == ErrX //x3:nolint(sentinelerr) fixture: identity comparison is the point here
}

// IsY suppresses from the line directly above.
func IsY(err error) bool {
	//x3:nolint(sentinelerr) fixture: identity comparison is the point here too
	return err == ErrX
}
