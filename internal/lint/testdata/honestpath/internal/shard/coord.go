// Package shard exercises the honestpath analyzer: the coordinator
// commits answers, so the Partial/Missing pairing is judged here.
package shard

import "honestfix/internal/serve"

// GatherBoth sets both halves of the contract in one function.
func GatherBoth(missing []serve.MissingShard) *serve.Response {
	r := &serve.Response{}
	if len(missing) > 0 {
		r.Partial = true
		r.Missing = missing
	}
	return r
}

// HalfTruth marks Partial but never names what is missing.
func HalfTruth() *serve.Response {
	r := &serve.Response{}
	r.Partial = true // want honestpath "marks the answer Partial without populating Missing"
	return r
}

// SilentOmission populates Missing but forgets the Partial flag.
func SilentOmission(m []serve.MissingShard) *serve.Response {
	r := &serve.Response{}
	r.Missing = m // want honestpath "populates Missing without marking the answer Partial"
	return r
}

// CellHalf trips the same pairing rule through CellAnswer.
func CellHalf(a *serve.CellAnswer) {
	a.Partial = true // want honestpath "marks the answer Partial without populating Missing"
}

// LitBoth builds the pair in one composite literal.
func LitBoth(m []serve.MissingShard) serve.Response {
	return serve.Response{Partial: true, Missing: m}
}

// LitHalf is the literal form of the half-told truth.
func LitHalf() serve.Response {
	return serve.Response{Partial: true} // want honestpath "marks the answer Partial without populating Missing"
}

// NoRange loses the key range.
func NoRange(id int) serve.MissingShard {
	return serve.MissingShard{Shard: id, Reason: "down"} // want honestpath "does not name its KeyRange"
}

// WithRange is complete.
func WithRange(id int) serve.MissingShard {
	return serve.MissingShard{Shard: id, KeyRange: "[a,b)", Reason: "down"}
}

// FalseAndNil literals are explicit non-answers, not half-truths.
func FalseAndNil() serve.Response {
	return serve.Response{Partial: false, Missing: nil}
}

// Suppressed sets only Partial under a justified waiver.
func Suppressed() *serve.Response {
	r := &serve.Response{}
	//x3:nolint(honestpath) fixture: the caller attaches Missing before the answer commits, for the suppression test
	r.Partial = true
	return r
}
