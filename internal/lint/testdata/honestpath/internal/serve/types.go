// Package serve declares the answer envelope the honestpath analyzer
// guards: Partial and Missing travel together, and a MissingShard names
// its key range.
package serve

// Response mirrors the serving layer's answer envelope.
type Response struct {
	Partial bool
	Missing []MissingShard
	Cells   int
}

// CellAnswer mirrors the per-cell answer form.
type CellAnswer struct {
	Partial bool
	Missing []MissingShard
}

// MissingShard names one absent shard and its key range.
type MissingShard struct {
	Shard    int
	KeyRange string
	Reason   string
}
