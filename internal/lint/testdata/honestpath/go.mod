module honestfix

go 1.24
