module faultfix

go 1.24
