// Package fault mirrors the real injector's exported wrap API: any
// exported Injector method with a string parameter named "site" fixes a
// fault-injection site.
package fault

// Injector decides failures from (seed, site, op).
type Injector struct{}

// Wrap runs op, possibly failing it at site.
func (i *Injector) Wrap(site string, op func() error) error {
	if op == nil {
		return nil
	}
	return op()
}

// Delay possibly stalls at site.
func (i *Injector) Delay(site string) {}

// trace is unexported: it passes the site variable along internally and
// must not be treated as a wrap site.
func (i *Injector) trace(site string) {}
