// Package user exercises faultsite against the fixture injector.
package user

import "faultfix/internal/fault"

// Use wraps operations across the legal and illegal site shapes.
func Use(inj *fault.Injector, dyn string) error {
	inj.Delay("user.read") // unique dotted literal: clean
	if err := inj.Wrap("user.write", nil); err != nil {
		return err
	}
	inj.Delay("user.dup") // want faultsite "2 call sites"
	inj.Delay("user.dup") // want faultsite "2 call sites"
	inj.Delay(dyn)        // want faultsite "not a literal"
	inj.Delay("UserRead") // want faultsite "not a dotted lowercase name"

	//x3:nolint(faultsite) fixture: site is fixed by the test table one frame up
	inj.Delay(dyn)
	return nil
}
