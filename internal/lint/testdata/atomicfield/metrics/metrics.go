// Package metrics exercises the atomicfield analyzer: a field touched
// through sync/atomic anywhere must be touched atomically everywhere.
package metrics

import "sync/atomic"

// C is a counter sampled concurrently.
type C struct {
	hits int64
	cold int64
}

// Inc is the atomic side.
func (c *C) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

// Read races Inc: a plain load of an atomically written field.
func (c *C) Read() int64 {
	return c.hits // want atomicfield "field hits is accessed with atomic.AddInt64"
}

// Bump is fine: cold is never touched atomically.
func (c *C) Bump() {
	c.cold++
}

var total int64

// AddTotal and Total agree on atomic access to the package variable.
func AddTotal(n int64) { atomic.AddInt64(&total, n) }

// Total reads it atomically too.
func Total() int64 { return atomic.LoadInt64(&total) }

// T holds a slice whose elements are updated atomically; len and range
// observe only the slice header, and the make assignment initializes.
type T struct {
	counts []int64
}

// NewT builds the slice before it is shared.
func NewT(n int) *T {
	t := &T{}
	t.counts = make([]int64, n)
	return t
}

// Add is the atomic element write.
func (t *T) Add(i int) { atomic.AddInt64(&t.counts[i], 1) }

// Len observes the header only.
func (t *T) Len() int { return len(t.counts) }

// Sum ranges the header and loads elements atomically.
func (t *T) Sum() int64 {
	var s int64
	for i := range t.counts {
		s += atomic.LoadInt64(&t.counts[i])
	}
	return s
}

// Peek is the suppressed plain read.
func (c *C) Peek() int64 {
	//x3:nolint(atomicfield) fixture: benign monotonic sample for the suppression test
	return c.hits
}
