module atomicfix

go 1.24
