module errdropfix

go 1.24
