// Package serve exercises the errdrop analyzer on the serving layer's
// answer paths: methods on Store are roots, and everything they reach
// must let errors flow.
package serve

import (
	"errors"
	"fmt"
)

// Store mirrors the serving layer's entry type.
type Store struct{}

func work() error { return errors.New("work") }

func cleanup() error { return nil }

func value() (int, error) { return 2, nil }

// Answer is a root: the discarded error is flagged.
func (s *Store) Answer() int {
	work() // want errdrop "error result of work is discarded"
	return 1
}

// Blank discards through the blank identifier, in both assignment forms.
func (s *Store) Blank() int {
	v, _ := value() // want errdrop "error from value assigned to _"
	_ = work()      // want errdrop "error from work() assigned to _"
	return v
}

// Flush reaches the discard through a helper chain.
func (s *Store) Flush() { flushInner() }

func flushInner() {
	work() // want errdrop "error result of work is discarded"
}

// FailurePath is exempt: best-effort cleanup ahead of an error return.
func (s *Store) FailurePath() error {
	if err := work(); err != nil {
		cleanup()
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// SiblingReturn is exempt: the discard sits ahead of a sibling return
// that carries a non-nil error, inside a nested statement list.
func (s *Store) SiblingReturn(bad error) error {
	if bad != nil {
		cleanup()
		return bad
	}
	return nil
}

// Deferred cleanup runs after the answer is decided and is exempt.
func (s *Store) Deferred() error {
	defer cleanup()
	return nil
}

// orphan is not reachable from any root: its discard belongs to another
// layer's discipline and is not judged here.
func orphan() {
	work()
}

// Waived is the suppressed case.
func (s *Store) Waived() {
	work() //x3:nolint(errdrop) fixture: provably nil in this configuration, for the suppression test
}
