// Package shard exercises the errdrop analyzer on the fan-out layer:
// methods on Coordinator are roots.
package shard

import "errors"

// Coordinator mirrors the shard fan-out layer.
type Coordinator struct{}

func send() error { return errors.New("send") }

// Gather drops a shard error on the answer path.
func (c *Coordinator) Gather() {
	send() // want errdrop "error result of send is discarded"
}

// Forward lets the error flow and is clean.
func (c *Coordinator) Forward() error {
	return send()
}
