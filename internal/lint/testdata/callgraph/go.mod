module cgfix

go 1.24
