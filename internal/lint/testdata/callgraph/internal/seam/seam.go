// Package seam is the call-graph engine's unit-test subject: an
// interface seam with one blocking and one pure implementation, a
// mutually recursive SCC, a spawner, and a pure leaf.
package seam

import "os"

// Replica is the seam: calls through it fan out to every implementation.
type Replica interface {
	Query(q string) (int, error)
	Label() string
}

type fileReplica struct{}

func (fileReplica) Query(q string) (int, error) {
	f, err := os.Open(q)
	if err != nil {
		return 0, err
	}
	return 1, f.Close()
}

func (fileReplica) Label() string { return "file" }

type memReplica struct{}

func (memReplica) Query(q string) (int, error) { return len(q), nil }

func (memReplica) Label() string { return "mem" }

// Fan dispatches through the seam.
func Fan(r Replica) (int, error) { return r.Query("x") }

// Ping and Pong form an SCC whose blocking member is Pong.
func Ping(n int) {
	if n > 0 {
		Pong(n - 1)
	}
}

// Pong blocks directly and recurses back into Ping.
func Pong(n int) {
	os.Remove("p")
	Ping(n - 1)
}

// Spawn's send happens on the spawned goroutine, not on Spawn's own
// path: the inGo edge must not make Spawn blocking.
func Spawn(done chan int) {
	go func() {
		done <- 1
	}()
}

// Pure neither blocks nor errs.
func Pure(a int) int { return a + 1 }
