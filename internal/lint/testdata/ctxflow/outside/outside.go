// Package outside is NOT one of the ctxflow-scoped packages: the same
// patterns that are violations inside internal/cube are legal here.
package outside

import "context"

// Holder may store a context here; ctxflow does not bind to this package.
type Holder struct {
	Ctx context.Context
}

// Fabricate is out of scope — clean.
func Fabricate() context.Context {
	return context.Background()
}

// Spawn is out of scope — clean.
func Spawn() {
	go func() {}()
}
