// Package cube mirrors the layout of the real internal/cube so the
// path-scoped ctxflow analyzer binds to it.
package cube

import "context"

// Job stores a context in a struct — flagged.
type Job struct {
	Ctx context.Context // want ctxflow "stored in a struct"
}

// Param is the sanctioned parameter-object exception, suppressed with a
// reason.
type Param struct {
	//x3:nolint(ctxflow) fixture: per-run parameter object, context not retained past Run
	Ctx context.Context
}

// Detach fabricates a context below the entry layer — flagged.
func Detach() context.Context {
	return context.Background() // want ctxflow "severs cancellation"
}

// Guard is the sanctioned nil-guard idiom at an entry point — clean.
func Guard(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// Spawn starts a goroutine without accepting a context — flagged.
func Spawn() { // want ctxflow "accepts no context.Context"
	go func() {}()
}

// SpawnCtx accepts the context cancellation needs — clean.
func SpawnCtx(ctx context.Context) {
	go func() {}()
}

// SpawnDeep reaches a goroutine through a context-less helper — flagged.
func SpawnDeep() { // want ctxflow "accepts no context.Context"
	helper()
}

func helper() {
	go func() {}()
}

// SpawnBoundary crosses into a context-aware helper: that helper is the
// cancellation boundary, so SpawnBoundary itself is clean.
func SpawnBoundary() {
	helperCtx(nil)
}

func helperCtx(ctx context.Context) {
	go func() {}()
}

// SpawnFire is fire-and-forget by design, suppressed with a reason.
//
//x3:nolint(ctxflow) fixture: fire-and-forget goroutine outlives the call by design
func SpawnFire() {
	go func() {}()
}
