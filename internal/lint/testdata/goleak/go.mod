module goleakfix

go 1.24
