// Package worker exercises the goleak analyzer: reachable `go`
// statements must be joined (WaitGroup.Done, channel handoff) or
// bounded by a context.
package worker

import (
	"context"
	"sync"
)

func compute(n int) int { return n * 2 }

// Leak is exported API: the spawned goroutine has no join and no bound.
func Leak() {
	go func() { // want goleak "neither joined"
		compute(1)
	}()
}

// LeakNamed spawns a named function with no accounting signal anywhere
// in its reach.
func LeakNamed() {
	go pureWork() // want goleak "neither joined"
}

func pureWork() {
	for i := 0; i < 10; i++ {
		compute(i)
	}
}

// JoinedWG is accounted: the body calls WaitGroup.Done.
func JoinedWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		compute(2)
	}()
	wg.Wait()
}

// JoinedChan hands its result off on a channel.
func JoinedChan() int {
	ch := make(chan int, 1)
	go func() {
		ch <- compute(3)
	}()
	return <-ch
}

// BoundedCtx passes a context at the spawn site.
func BoundedCtx(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

// DeepJoin is accounted interprocedurally: the spawned body reaches a
// channel send two calls down.
func DeepJoin(ch chan int) {
	go func() {
		relay(ch)
	}()
	<-ch
}

func relay(ch chan int) { deepSend(ch) }

func deepSend(ch chan int) { ch <- 1 }

// StaticCallee spawns a named function whose own body does the handoff.
func StaticCallee(ch chan int) {
	go deepSend(ch)
	<-ch
}

// unreachable is not exported and has no exported caller: its spawn is
// outside the module's API surface and is not judged.
func unreachable() {
	go func() {
		compute(4)
	}()
}

// Suppressed carries the same defect as Leak under a justified waiver.
func Suppressed() {
	//x3:nolint(goleak) fixture: deliberate fire-and-forget for the suppression test
	go func() {
		compute(5)
	}()
}
