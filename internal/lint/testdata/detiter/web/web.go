// Package web exercises the http.ResponseWriter root: response encoders
// are byte-determinism roots even without a table entry.
package web

import "net/http"

// Dump encodes a map in iteration order — flagged via the handler root.
func Dump(w http.ResponseWriter, m map[string]string) {
	for k, v := range m { // want detiter "map iteration in Dump"
		w.Write([]byte(k + v))
	}
}

// List walks a slice — order is fixed, clean.
func List(w http.ResponseWriter, items []string) {
	for _, it := range items {
		w.Write([]byte(it))
	}
}
