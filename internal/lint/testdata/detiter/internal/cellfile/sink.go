// Package cellfile mirrors the real cell-file package: Sink methods and
// Create* functions are byte-determinism roots for detiter.
package cellfile

import "sort"

// Sink accumulates rows and emits them.
type Sink struct {
	rows map[string]int
	out  []string
}

// Flush emits in map order — flagged at the range.
func (s *Sink) Flush() {
	for k := range s.rows { // want detiter "map iteration in Sink.Flush"
		s.out = append(s.out, k)
	}
}

// Close collects, sorts, then emits — the sanctioned pattern, suppressed
// with a reason at the collection range.
func (s *Sink) Close() {
	keys := make([]string, 0, len(s.rows))
	for k := range s.rows { //x3:nolint(detiter) fixture: keys are sorted below before emission
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.out = append(s.out, keys...)
}

// Create reaches emit's map range through the call graph — the helper is
// flagged, naming Create as the root.
func Create() []string {
	return emit(map[string]int{"a": 1})
}

// emit is reachable only from Create.
func emit(rows map[string]int) []string {
	var out []string
	for k := range rows { // want detiter "map iteration in emit"
		out = append(out, k)
	}
	return out
}

// encoder dispatches dynamically; detiter fans interface calls out to
// every same-named concrete method.
type encoder interface {
	Encode(m map[string]int)
}

// Emit hands the map to an interface — the concrete impl is flagged.
func (s *Sink) Emit(e encoder, m map[string]int) {
	e.Encode(m)
}

type mapEncoder struct{}

// Encode ranges the map — flagged via the interface fan-out from Sink.Emit.
func (mapEncoder) Encode(m map[string]int) {
	for range m { // want detiter "map iteration in mapEncoder.Encode"
	}
}

// appendColumnarBlock mirrors the real v4 column encoder: a direct root
// even though nothing in this fixture calls it, so a detached encoder
// still gets flagged.
func appendColumnarBlock(dst []byte, dict map[string]int) []byte {
	for k := range dict { // want detiter "map iteration in appendColumnarBlock"
		dst = append(dst, k...)
	}
	return dst
}

// appendPackedState reaches its helper through the call graph — the
// helper is flagged, naming appendPackedState as the root.
func appendPackedState(dst []byte, vals map[int]int) []byte {
	return packVals(dst, vals)
}

func packVals(dst []byte, vals map[int]int) []byte {
	for v := range vals { // want detiter "map iteration in packVals"
		dst = append(dst, byte(v))
	}
	return dst
}

// Offline is neither a root nor reachable from one — clean.
func Offline(rows map[string]int) []string {
	var out []string
	for k := range rows {
		out = append(out, k)
	}
	return out
}
