//go:build go1.1

package p

func gated() int { return 1 }
