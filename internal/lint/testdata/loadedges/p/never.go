//go:build neverbuildme

package p

// gated would collide with the real declaration if this file loaded.
func gated() int { return 2 }
