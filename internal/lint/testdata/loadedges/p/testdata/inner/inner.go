package inner

this file is not Go at all; nested testdata directories must be skipped
