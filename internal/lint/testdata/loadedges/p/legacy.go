// +build neverbuildme

package p

// Legacy single-style tag: this duplicate must be excluded too.
func gated() int { return 3 }
