// Package p proves the loader honors build constraints: gated() resolves
// to the //go:build go1.1 file; if the never-satisfied or legacy-tagged
// files were wrongly included, gated would be redeclared and the load
// would fail.
package p

// Ok calls into the constraint-gated half of the package.
func Ok() int { return gated() }
