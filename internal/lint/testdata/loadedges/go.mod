module loadedges

go 1.24
