package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxflowPkgs are the package-path suffixes whose cancellation PR 4
// threaded end to end; ctxflow holds exactly these to the contract.
var ctxflowPkgs = []string{
	"internal/cube", "internal/serve", "internal/extsort", "internal/store", "internal/cellfile",
	"internal/shard",
}

// Ctxflow returns the analyzer enforcing the context contract of the
// storage and serving pipeline:
//
//   - a context.Context never lives in a struct field — contexts are
//     call-scoped, and a stored one outlives its request (suppressible
//     for per-run parameter objects such as cube.Input);
//   - context.Background()/TODO() never appears below the entry layer —
//     the only sanctioned form is the nil-guard `if ctx == nil { ctx =
//     context.Background() }` at an exported entry point;
//   - an exported function that (transitively, within its package,
//     through helpers that do not themselves accept a context) spawns a
//     goroutine must accept a context.Context, so cancellation can reach
//     the concurrency it creates.
func Ctxflow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "context is accepted and propagated, never stored or fabricated",
		Run:  runCtxflow,
	}
}

func runCtxflow(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if !inCtxflowScope(pkg) {
			continue
		}
		diags = append(diags, ctxStructFields(prog, pkg)...)
		diags = append(diags, ctxFabrications(prog, pkg)...)
		diags = append(diags, ctxGoroutineSpawns(prog, pkg)...)
	}
	return diags
}

func inCtxflowScope(pkg *Package) bool {
	for _, suffix := range ctxflowPkgs {
		if pkgPathHasSuffix(pkg.Types, suffix) {
			return true
		}
	}
	return false
}

// ctxStructFields flags struct fields of type context.Context.
func ctxStructFields(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, f := range st.Fields.List {
				tv, ok := pkg.Info.Types[f.Type]
				if !ok || !isContextType(tv.Type) {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos:      prog.Fset.Position(f.Pos()),
					Analyzer: "ctxflow",
					Message:  "context.Context stored in a struct outlives its call; pass it as a parameter",
				})
			}
			return true
		})
	}
	return diags
}

// ctxFabrications flags context.Background()/TODO() calls outside the
// nil-guard idiom.
func ctxFabrications(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Files {
		var stack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if fn.Name() != "Background" && fn.Name() != "TODO" {
				return true
			}
			if isNilGuardAssign(stack) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      prog.Fset.Position(call.Pos()),
				Analyzer: "ctxflow",
				Message:  "context." + fn.Name() + "() below the entry layer severs cancellation; propagate the caller's context (or nil-guard: if ctx == nil { ctx = context.Background() })",
			})
			return true
		}
		ast.Inspect(file, walk)
	}
	return diags
}

// isNilGuardAssign reports whether the node stack ends in
//
//	if <x> == nil { <x> = context.Background() }
//
// — the sanctioned entry-layer default. The stack holds the path from
// the file down to the Background() call.
func isNilGuardAssign(stack []ast.Node) bool {
	// Expect ... IfStmt > BlockStmt > AssignStmt > CallExpr.
	if len(stack) < 4 {
		return false
	}
	assign, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || assign.Tok != token.ASSIGN {
		return false
	}
	ifStmt, ok := stack[len(stack)-4].(*ast.IfStmt)
	if !ok {
		return false
	}
	cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	lhs := types.ExprString(assign.Lhs[0])
	x, y := types.ExprString(cond.X), types.ExprString(cond.Y)
	return (x == lhs && y == "nil") || (y == lhs && x == "nil")
}

// ctxGoroutineSpawns flags exported functions that reach a `go` statement
// through their own package without accepting a context.
func ctxGoroutineSpawns(prog *Program, pkg *Package) []Diagnostic {
	// Map every function declaration in the package to its body and
	// whether it directly spawns.
	type fnNode struct {
		decl     *ast.FuncDecl
		fn       *types.Func
		spawns   bool
		callees  []*types.Func
		hasCtx   bool
		exported bool
	}
	nodes := map[*types.Func]*fnNode{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			node := &fnNode{decl: fd, fn: fn}
			sig, _ := fn.Type().(*types.Signature)
			node.hasCtx = hasCtxParam(sig)
			node.exported = fd.Name.IsExported() && exportedReceiver(sig)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					node.spawns = true
				case *ast.CallExpr:
					if callee := calleeFunc(pkg.Info, n); callee != nil && callee.Pkg() == pkg.Types {
						node.callees = append(node.callees, callee)
					}
				}
				return true
			})
			nodes[fn] = node
		}
	}
	// reaches: does fn hit a `go` statement before crossing into a
	// context-aware callee? Helpers that accept ctx are cancellation-aware
	// boundaries — their own callers are judged separately.
	memo := map[*types.Func]bool{}
	visiting := map[*types.Func]bool{}
	var reaches func(fn *types.Func) bool
	reaches = func(fn *types.Func) bool {
		if v, ok := memo[fn]; ok {
			return v
		}
		if visiting[fn] {
			return false
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		node := nodes[fn]
		if node == nil {
			return false
		}
		result := node.spawns
		for _, callee := range node.callees {
			if result {
				break
			}
			calleeNode := nodes[callee]
			if calleeNode == nil || calleeNode.hasCtx {
				continue
			}
			result = reaches(callee)
		}
		memo[fn] = result
		return result
	}
	var diags []Diagnostic
	for _, node := range nodes {
		if !node.exported || node.hasCtx || !reaches(node.fn) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(node.decl.Name.Pos()),
			Analyzer: "ctxflow",
			Message:  "exported " + funcDisplay(node.fn) + " spawns goroutines but accepts no context.Context; cancellation cannot reach them",
		})
	}
	return diags
}

// exportedReceiver reports whether sig is receiver-less or its receiver
// type is exported — methods on unexported types are not package API.
func exportedReceiver(sig *types.Signature) bool {
	if sig == nil || sig.Recv() == nil {
		return true
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return true
	}
	return named.Obj().Exported()
}
