package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestAllStableOrder(t *testing.T) {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s: missing Doc or Run", a.Name)
		}
	}
	wantNames := []string{
		"ctxflow", "sentinelerr", "obskey", "detiter", "faultsite",
		"goleak", "lockhold", "atomicfield", "errdrop", "honestpath",
	}
	if !reflect.DeepEqual(names, wantNames) {
		t.Fatalf("All() = %v, want %v", names, wantNames)
	}
	if !reflect.DeepEqual(Names(), wantNames) {
		t.Fatalf("Names() = %v, want %v", Names(), wantNames)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want full suite", len(all), err)
	}
	sub, err := ByName(" obskey , ctxflow ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name != "obskey" || sub[1].Name != "ctxflow" {
		t.Fatalf("ByName subset = %v", sub)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch): want error")
	} else {
		// The error must be actionable: it names every valid analyzer.
		for _, name := range Names() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("ByName(nosuch) error %q does not name valid analyzer %q", err, name)
			}
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "a/b.go", Line: 3, Column: 7},
		Analyzer: "obskey",
		Message:  "bad key",
	}
	if got, want := d.String(), "a/b.go:3:7: obskey: bad key"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestSortDiagnostics(t *testing.T) {
	at := func(file string, line, col int, an, msg string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: file, Line: line, Column: col}, Analyzer: an, Message: msg}
	}
	diags := []Diagnostic{
		at("b.go", 1, 1, "x", "m"),
		at("a.go", 2, 1, "x", "m"),
		at("a.go", 1, 9, "x", "m"),
		at("a.go", 1, 2, "z", "m"),
		at("a.go", 1, 2, "y", "n"),
		at("a.go", 1, 2, "y", "m"),
	}
	SortDiagnostics(diags)
	want := []Diagnostic{
		at("a.go", 1, 2, "y", "m"),
		at("a.go", 1, 2, "y", "n"),
		at("a.go", 1, 2, "z", "m"),
		at("a.go", 1, 9, "x", "m"),
		at("a.go", 2, 1, "x", "m"),
		at("b.go", 1, 1, "x", "m"),
	}
	if !reflect.DeepEqual(diags, want) {
		t.Fatalf("SortDiagnostics order:\n got %v\nwant %v", diags, want)
	}
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verbUse
	}{
		{"plain", nil},
		{"%d %s", []verbUse{{'d', 0}, {'s', 1}}},
		{"100%% %v", []verbUse{{'v', 0}}},
		{"%+v %-8s %.3f", []verbUse{{'v', 0}, {'s', 1}, {'f', 2}}},
		// * consumes an argument before the verb's own.
		{"%*d %v", []verbUse{{'d', 1}, {'v', 2}}},
		// Explicit indexes abort the scan conservatively.
		{"%v %[1]s", []verbUse{{'v', 0}}},
		{"trailing %", nil},
	}
	for _, c := range cases {
		if got := formatVerbs(c.format); !reflect.DeepEqual(got, c.want) {
			t.Errorf("formatVerbs(%q) = %v, want %v", c.format, got, c.want)
		}
	}
}

func TestReadModulePath(t *testing.T) {
	dir := t.TempDir()
	mod := filepath.Join(dir, "go.mod")
	if err := os.WriteFile(mod, []byte("// comment\nmodule  example.com/m\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readModulePath(mod)
	if err != nil || got != "example.com/m" {
		t.Fatalf("readModulePath = %q, %v", got, err)
	}
	if err := os.WriteFile(mod, []byte("go 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readModulePath(mod); err == nil {
		t.Fatal("want error for go.mod without module line")
	}
	if _, err := readModulePath(filepath.Join(dir, "absent")); err == nil {
		t.Fatal("want error for missing go.mod")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("Load of dir without go.mod: want error")
	}
	// A module referencing a package directory that does not exist fails
	// with a module-scoped message, not a stdlib importer one.
	dir := t.TempDir()
	writeFile(t, dir, "go.mod", "module brokenfix\n\ngo 1.24\n")
	writeFile(t, dir, "a/a.go", "package a\n\nimport _ \"brokenfix/missing\"\n")
	_, err := Load(dir)
	if err == nil || !strings.Contains(err.Error(), "brokenfix/missing") {
		t.Fatalf("Load with missing module import: err = %v", err)
	}
	// A syntax error surfaces as a parse failure.
	dir2 := t.TempDir()
	writeFile(t, dir2, "go.mod", "module badsyntax\n\ngo 1.24\n")
	writeFile(t, dir2, "a/a.go", "package a\n\nfunc {\n")
	if _, err := Load(dir2); err == nil {
		t.Fatal("Load with syntax error: want error")
	}
}

func TestLoadProgramShape(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "go.mod", "module shapefix\n\ngo 1.24\n")
	writeFile(t, dir, "root.go", "package shapefix\n")
	writeFile(t, dir, "b/b.go", "package b\n\nconst N = 1\n")
	writeFile(t, dir, "a/a.go", "package a\n\nimport \"shapefix/b\"\n\nconst M = b.N\n")
	writeFile(t, dir, "a/testdata/skip.go", "package skipme\n\nfunc @@ not even go\n")
	writeFile(t, dir, "a/ignored_test.go", "package a\n\nconst bad = undefinedSymbol\n")
	prog, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range prog.Packages {
		paths = append(paths, p.Path)
	}
	want := []string{"shapefix", "shapefix/a", "shapefix/b"}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("loaded packages %v, want %v", paths, want)
	}
	if prog.ModPath != "shapefix" {
		t.Fatalf("ModPath = %q", prog.ModPath)
	}
	if prog.ByPath["shapefix/a"].Types.Name() != "a" {
		t.Fatalf("package a not type-checked")
	}
}

func writeFile(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
