package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// obsKindMethods are the Registry methods that mint a metric under a key;
// each is its own metric kind in the registry's namespace.
var obsKindMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Timer": true, "Histogram": true, "Span": true, "HDR": true,
}

// dynamic metric families ("fault.injected." + site) must open with a
// literal dotted prefix ending in a dot, so every key in the family is
// greppable and lands under a well-formed namespace.
var dottedPrefixRE = regexp.MustCompile(`^[a-z0-9]+(\.[a-z0-9_]+)*\.$`)

// Obskey returns the analyzer guarding the flat obs key namespace from
// PR 1: every key passed to Registry.{Counter,Gauge,Timer,Histogram,Span}
// must be a compile-time constant matching ^[a-z0-9]+(\.[a-z0-9_]+)+$ —
// or, for dynamic families, start with a literal dotted prefix — and no
// key may be registered under two different metric kinds. A typo'd or
// kind-colliding key does not fail at runtime; it just mints a silent
// second metric that tests and dashboards never see.
func Obskey() *Analyzer {
	return &Analyzer{
		Name: "obskey",
		Doc:  "obs metric keys are literal, well-formed and kind-unique",
		Run:  runObskey,
	}
}

type obsReg struct {
	pos  ast.Node
	kind string
	key  string
}

func runObskey(prog *Program) []Diagnostic {
	var diags []Diagnostic
	var regs []obsReg
	for _, pkg := range prog.Packages {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, ok := obsRegistryCall(info, call)
				if !ok || len(call.Args) == 0 {
					return true
				}
				nameArg := call.Args[0]
				if key, ok := constString(info, nameArg); ok {
					if !dottedKeyRE.MatchString(key) {
						diags = append(diags, Diagnostic{
							Pos:      prog.Fset.Position(nameArg.Pos()),
							Analyzer: "obskey",
							Message:  fmt.Sprintf("metric key %q does not match ^[a-z0-9]+(\\.[a-z0-9_]+)+$ (want at least two dotted segments)", key),
						})
					} else {
						regs = append(regs, obsReg{pos: nameArg, kind: kind, key: key})
					}
					return true
				}
				prefix, found := constPrefix(info, nameArg)
				switch {
				case !found:
					diags = append(diags, Diagnostic{
						Pos:      prog.Fset.Position(nameArg.Pos()),
						Analyzer: "obskey",
						Message:  "metric key is not a literal and has no literal dotted prefix; dynamic families must open with \"family.prefix.\"",
					})
				case !dottedPrefixRE.MatchString(prefix):
					diags = append(diags, Diagnostic{
						Pos:      prog.Fset.Position(nameArg.Pos()),
						Analyzer: "obskey",
						Message:  fmt.Sprintf("dynamic metric key prefix %q is not a dotted namespace ending in '.'", prefix),
					})
				}
				return true
			})
		}
	}
	// Kind-collision pass: the same key under two kinds is two silent
	// metrics behind one name.
	kinds := map[string]map[string]bool{}
	for _, r := range regs {
		if kinds[r.key] == nil {
			kinds[r.key] = map[string]bool{}
		}
		kinds[r.key][r.kind] = true
	}
	for _, r := range regs {
		if len(kinds[r.key]) < 2 {
			continue
		}
		var names []string
		for k := range kinds[r.key] {
			names = append(names, k)
		}
		sort.Strings(names)
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(r.pos.Pos()),
			Analyzer: "obskey",
			Message:  fmt.Sprintf("metric key %q is registered under multiple kinds %v — each resolves a distinct silent metric", r.key, names),
		})
	}
	return diags
}

// obsRegistryCall reports whether call invokes a metric-minting method on
// the obs Registry, returning the metric kind (the method name).
func obsRegistryCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !obsKindMethods[sel.Sel.Name] {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" || !pkgPathHasSuffix(named.Obj().Pkg(), "internal/obs") {
		return "", false
	}
	return fn.Name(), true
}

// constPrefix extracts the longest leading compile-time string prefix of
// expr: the leftmost operand chain of a + concatenation, or the text
// before the first conversion of a constant fmt.Sprintf format.
func constPrefix(info *types.Info, expr ast.Expr) (string, bool) {
	expr = ast.Unparen(expr)
	if s, ok := constString(info, expr); ok {
		return s, true
	}
	switch e := expr.(type) {
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return "", false
		}
		return constPrefix(info, e.X)
	case *ast.CallExpr:
		fn := calleeFunc(info, e)
		if fn != nil && fn.FullName() == "fmt.Sprintf" && len(e.Args) > 0 {
			if format, ok := constString(info, e.Args[0]); ok {
				for i := 0; i < len(format); i++ {
					if format[i] == '%' {
						return format[:i], true
					}
				}
				return format, true
			}
		}
	}
	return "", false
}
