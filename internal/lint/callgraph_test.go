package lint

import (
	"strings"
	"testing"
)

// loadCallgraph loads the engine fixture once per test and returns its
// graph.
func loadCallgraph(t *testing.T) *graph {
	t.Helper()
	prog, err := Load("testdata/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Graph()
	if g != prog.Graph() {
		t.Fatal("Graph() must build once and return the shared instance")
	}
	return g
}

// findNode resolves a graph node by its display name.
func findNode(t *testing.T, g *graph, display string) *graphNode {
	t.Helper()
	for _, n := range g.sorted() {
		if n.display == display {
			return n
		}
	}
	t.Fatalf("no graph node %q", display)
	return nil
}

func TestGraphInterfaceResolution(t *testing.T) {
	g := loadCallgraph(t)
	query := findNode(t, g, "Replica.Query")
	if !query.iface || query.decl != nil {
		t.Fatalf("Replica.Query: want interface pseudo-node, got iface=%v decl=%v", query.iface, query.decl)
	}
	var impls []string
	for _, e := range query.edges {
		impls = append(impls, g.nodes[e.callee].display)
	}
	want := []string{"fileReplica.Query", "memReplica.Query"}
	if len(impls) != 2 || impls[0] != want[0] || impls[1] != want[1] {
		t.Fatalf("Replica.Query implementations = %v, want %v", impls, want)
	}
	// Fan's dispatch through the seam produces an edge to the interface
	// method node, not to any one implementation.
	fan := findNode(t, g, "Fan")
	found := false
	for _, e := range fan.edges {
		if e.callee == query.fn {
			found = true
		}
	}
	if !found {
		t.Fatal("Fan has no edge to the Replica.Query seam node")
	}
}

func TestGraphBlockingSummaries(t *testing.T) {
	g := loadCallgraph(t)
	cases := []struct {
		display string
		blocks  bool
		whySub  string // substring of blocksWhy when blocks
	}{
		{"fileReplica.Query", true, "os.Open"},
		{"memReplica.Query", false, ""},
		// The seam blocks because one implementation does; the chain
		// names it.
		{"Replica.Query", true, "fileReplica.Query"},
		{"Fan", true, "Replica.Query"},
		// Ping/Pong form an SCC: the whole component shares Pong's
		// direct blocking verdict.
		{"Ping", true, "os.Remove"},
		{"Pong", true, "os.Remove"},
		// Spawn's send happens on the spawned goroutine: the inGo edge
		// must not bleed blocking into the spawner.
		{"Spawn", false, ""},
		{"Pure", false, ""},
	}
	for _, c := range cases {
		n := findNode(t, g, c.display)
		if n.blocks != c.blocks {
			t.Errorf("%s: blocks = %v (why %q), want %v", c.display, n.blocks, n.blocksWhy, c.blocks)
			continue
		}
		if c.blocks && !strings.Contains(n.blocksWhy, c.whySub) {
			t.Errorf("%s: blocksWhy = %q, want substring %q", c.display, n.blocksWhy, c.whySub)
		}
	}
}

func TestGraphReturnsErr(t *testing.T) {
	g := loadCallgraph(t)
	if !findNode(t, g, "Fan").returnsErr {
		t.Error("Fan returns an error; summary says it does not")
	}
	if findNode(t, g, "Pure").returnsErr {
		t.Error("Pure returns no error; summary says it does")
	}
}

func TestGraphReachability(t *testing.T) {
	g := loadCallgraph(t)
	roots := g.exportedRoots()
	var names []string
	for _, r := range roots {
		names = append(names, r.display)
	}
	for _, want := range []string{"Fan", "Ping", "Pong", "Spawn", "Pure"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("exportedRoots misses %s (got %v)", want, names)
		}
	}
	// Unexported implementations are not roots but are reachable through
	// the seam, with the exported entry point as provenance.
	for _, r := range roots {
		if strings.HasPrefix(r.display, "fileReplica.") || strings.HasPrefix(r.display, "memReplica.") {
			t.Errorf("unexported method %s must not be a root", r.display)
		}
	}
	reach := g.reachableFrom([]*graphNode{findNode(t, g, "Fan")})
	file := findNode(t, g, "fileReplica.Query")
	if why, ok := reach[file.fn]; !ok || why != "Fan" {
		t.Errorf("fileReplica.Query reachable from Fan = %q, %v; want \"Fan\", true", why, ok)
	}
	if _, ok := reach[findNode(t, g, "Pong").fn]; ok {
		t.Error("Pong must not be reachable from Fan")
	}
	// The spawner's goroutine body is reachable (goleak follows inGo
	// edges), and the go statement itself is recorded.
	spawn := findNode(t, g, "Spawn")
	if len(spawn.goStmts) != 1 {
		t.Fatalf("Spawn goStmts = %d, want 1", len(spawn.goStmts))
	}
	if why, ok := g.goAccounted(spawn, spawn.goStmts[0]); !ok || !strings.Contains(why, "channel") {
		t.Errorf("Spawn's goroutine accounting = %q, %v; want a channel handoff", why, ok)
	}
}
